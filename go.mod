module agnn

go 1.22
