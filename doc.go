// Package agnn is a from-scratch Go reproduction of "High-Performance and
// Programmable Attentional Graph Neural Networks with Global Tensor
// Formulations" (Besta et al., SC '23): global tensor formulations of
// attentional GNNs (VA, AGNN, GAT) for inference and training, built on
// sparse-dense tensor kernels (SpMM, SDDMM, SpMMM, MSpMM), semiring
// aggregation, kernel fusion over virtual score matrices, and a
// communication-minimizing 2D-grid distributed execution with a BSP cost
// model — all validated against an independent local (message-passing)
// implementation and finite-difference gradient checks.
//
// See README.md for the architecture overview, docs/ARCHITECTURE.md for
// the compile → fuse → execute operator-plan pipeline, DESIGN.md for the
// system inventory and experiment index, and EXPERIMENTS.md for
// paper-vs-measured results. The library lives under internal/; the
// runnable surfaces are cmd/ and examples/.
package agnn
