// Quickstart: build a GAT model with the global tensor formulation, run
// inference, then take a few full-batch training steps.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"agnn/internal/gnn"
	"agnn/internal/graph"
	"agnn/internal/tensor"
)

func main() {
	// 1. A graph: Graph500-style Kronecker, 1024 vertices, heavy-tail
	//    degrees — the workload family of the paper's evaluation.
	a := graph.Kronecker(10, 8, 42)
	st := graph.Summarize(a)
	fmt.Printf("graph: n=%d m=%d maxdeg=%d avgdeg=%.1f\n", st.N, st.M, st.MaxDeg, st.AvgDeg)

	// 2. A 3-layer GAT in the global formulation: every layer reduces to
	//    H' = H·W, the fused attention kernel over the virtual score matrix
	//    C = u·1ᵀ + 1·vᵀ, the graph softmax, and one SpMM.
	model, err := gnn.New(gnn.Config{
		Model:      gnn.GAT,
		Layers:     3,
		InDim:      16,
		HiddenDim:  32,
		OutDim:     4, // e.g. 4 output classes
		Activation: gnn.ELU(1),
		SelfLoops:  true,
		Seed:       1,
	}, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: GAT, %d layers, %d parameters\n", len(model.Layers), model.NumParams())

	// 3. Inference: the fused fast path never materializes the attention
	//    matrix Ψ (matching the artifact's --inference mode).
	h := tensor.RandN(st.N, 16, 0.5, rand.New(rand.NewSource(2)))
	out := model.Forward(h, false)
	fmt.Printf("inference output: %d×%d logits\n", out.Rows, out.Cols)

	// 4. Five full-batch training steps on synthetic labels.
	labels := make([]int, st.N)
	for i := range labels {
		labels[i] = i % 4
	}
	loss := &gnn.CrossEntropyLoss{Labels: labels}
	opt := gnn.NewAdam(0.01)
	for step := 1; step <= 5; step++ {
		l := model.TrainStep(h, loss, opt)
		fmt.Printf("step %d: loss %.4f\n", step, l)
	}
}
