// Citation-network node classification: the workload the GAT paper (and
// this paper's introduction) motivates. A synthetic citation graph with
// planted communities stands in for Cora/Citeseer; an AGNN and a GAT model
// are trained full-batch to convergence on a transductive split and their
// test accuracy is compared against a structure-blind baseline.
//
//	go run ./examples/citation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"agnn/internal/gnn"
	"agnn/internal/graph"
	"agnn/internal/tensor"
)

const (
	nPapers  = 1500
	nTopics  = 5 // label classes
	nFeats   = 32
	nHidden  = 32
	nEpochs  = 60
	trainPct = 0.1 // transductive: only 10% of papers are labeled
)

func main() {
	// Papers cite mostly within their topic; a few cross-topic citations
	// make the task non-trivial.
	a, labels := graph.PlantedPartition(nPapers, nTopics, 0.02, 0.001, 7)
	st := graph.Summarize(a)
	fmt.Printf("citation graph: %d papers, %d citations, avg degree %.1f\n",
		st.N, st.M/2, st.AvgDeg)

	// Bag-of-words-like features: noisy topic indicator plus dense noise.
	rng := rand.New(rand.NewSource(8))
	h := tensor.RandN(nPapers, nFeats, 1.0, rng)
	for i := 0; i < nPapers; i++ {
		h.Set(i, labels[i], h.At(i, labels[i])+0.8)
	}

	trainMask := make([]bool, nPapers)
	testMask := make([]bool, nPapers)
	for i := range trainMask {
		if rng.Float64() < trainPct {
			trainMask[i] = true
		} else {
			testMask[i] = true
		}
	}

	for _, kind := range []gnn.Kind{gnn.AGNN, gnn.GAT} {
		model, err := gnn.New(gnn.Config{
			Model: kind, Layers: 2, InDim: nFeats, HiddenDim: nHidden,
			OutDim: nTopics, Activation: gnn.ELU(1), SelfLoops: true, Seed: 9,
		}, a)
		if err != nil {
			log.Fatal(err)
		}
		loss := &gnn.CrossEntropyLoss{Labels: labels, Mask: trainMask}
		opt := gnn.NewAdam(0.01)
		fmt.Printf("\n== %s (%d parameters) ==\n", kind, model.NumParams())
		for e := 1; e <= nEpochs; e++ {
			l := model.TrainStep(h, loss, opt)
			if e%15 == 0 || e == 1 {
				out := model.Forward(h, false)
				fmt.Printf("epoch %3d  loss %.4f  test accuracy %.3f\n",
					e, l, gnn.Accuracy(out, labels, testMask))
			}
		}
	}

	// Structure-blind baseline: a logistic regression on raw features
	// (a GCN stack of depth 1 on the identity graph degenerates to it).
	baselineAcc := logisticBaseline(h, labels, trainMask, testMask)
	fmt.Printf("\nstructure-blind logistic baseline: test accuracy %.3f\n", baselineAcc)
	fmt.Println("(the attention models exploit the citation structure the baseline cannot)")
}

// logisticBaseline trains softmax regression on the raw features.
func logisticBaseline(h *tensor.Dense, labels []int, trainMask, testMask []bool) float64 {
	w := gnn.NewParam("W", tensor.NewDense(h.Cols, nTopics))
	loss := &gnn.CrossEntropyLoss{Labels: labels, Mask: trainMask}
	opt := gnn.NewAdam(0.05)
	for e := 0; e < nEpochs; e++ {
		w.ZeroGrad()
		out := tensor.MM(h, w.Value)
		_, g := loss.Eval(out)
		w.Grad.AddInPlace(tensor.TMM(h, g))
		opt.Step([]*gnn.Param{w})
	}
	return gnn.Accuracy(tensor.MM(h, w.Value), labels, testMask)
}
