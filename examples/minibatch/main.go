// Mini-batch training — the extension the paper's conclusion calls
// straightforward: seed batches are expanded to their L-hop neighborhood,
// the induced subgraph's adjacency is rebound into the *global tensor
// formulation* with shared parameters, and training proceeds batch by
// batch. Compared against full-batch training on the same task: full-batch
// converges in fewer epochs (the paper's motivation for full-batch), while
// mini-batch trades convergence for a smaller working set.
//
//	go run ./examples/minibatch
package main

import (
	"fmt"
	"log"

	"agnn/internal/gnn"
	"agnn/internal/graph"
	"agnn/internal/local"
	"agnn/internal/obs/metrics"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

func main() {
	ds := graph.SyntheticCitation(1200, 4, 16, 0.5, 11)
	st := graph.Summarize(ds.Adj)
	fmt.Printf("graph: n=%d m=%d classes=%d\n", st.N, st.M, ds.Classes)

	evalLoss := func(m *gnn.Model) (float64, float64) {
		out := m.Forward(ds.Features, false)
		l, _ := (&gnn.CrossEntropyLoss{Labels: ds.Labels}).Eval(out)
		return l, gnn.Accuracy(out, ds.Labels, ds.TestMask())
	}
	newModel := func() *gnn.Model {
		m, err := gnn.New(gnn.Config{Model: gnn.GAT, Layers: 2, InDim: 16,
			HiddenDim: 16, OutDim: ds.Classes, Activation: gnn.ELU(1),
			SelfLoops: true, Seed: 12}, ds.Adj)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	// Full-batch training (the paper's mode).
	full := newModel()
	opt := gnn.NewAdam(0.01)
	loss := &gnn.CrossEntropyLoss{Labels: ds.Labels, Mask: ds.TrainMask}
	fmt.Println("\n-- full-batch (global formulation) --")
	for e := 1; e <= 30; e++ {
		full.TrainStep(ds.Features, loss, opt)
		if e%10 == 0 {
			l, acc := evalLoss(full)
			fmt.Printf("epoch %2d  full-graph loss %.4f  test acc %.3f\n", e, l, acc)
		}
	}

	// Mini-batch training through the same global formulation: expand a
	// seed batch by L hops, induce the subgraph, rebind shared parameters.
	// The batch set is sampled ONCE and rotated over epochs — with the
	// process-wide plan cache (internal/fuse) each subgraph's plans compile
	// on first sight and every later epoch is a pure cache hit.
	mb := newModel()
	processed := mb.Layers[0].(*gnn.GATLayer).A // adjacency incl. self loops
	g := local.FromCSR(processed)
	sampler := local.NewSampler(g, 256, 2, 13)
	type miniBatch struct {
		sub      *sparse.CSR
		h        *tensor.Dense
		loss     *gnn.CrossEntropyLoss
		vertices int
	}
	var batches []miniBatch
	for b := 0; b < st.N/256; b++ {
		batch := sampler.Next()
		sub := graph.InducedSubgraph(processed, batch.Vertices)
		bh := tensor.NewDense(len(batch.Vertices), 16)
		bl := make([]int, len(batch.Vertices))
		bmask := make([]bool, len(batch.Vertices))
		for i, v := range batch.Vertices {
			copy(bh.Row(i), ds.Features.Row(int(v)))
			bl[i] = ds.Labels[v]
			bmask[i] = i < batch.NumSeeds && ds.TrainMask[v]
		}
		batches = append(batches, miniBatch{sub: sub, h: bh,
			loss: &gnn.CrossEntropyLoss{Labels: bl, Mask: bmask}, vertices: len(batch.Vertices)})
	}
	optMB := gnn.NewAdam(0.01)
	fmt.Println("\n-- mini-batch (induced subgraphs through the global formulation) --")
	hits0, misses0 := metrics.PlanCacheHits.Value(), metrics.PlanCacheMisses.Value()
	steps := 0
	for e := 1; e <= 30; e++ {
		for _, b := range batches {
			bm, err := gnn.RebindAdjacency(mb, b.sub)
			if err != nil {
				log.Fatal(err)
			}
			bm.TrainStep(b.h, b.loss, optMB)
			// Return the leased plans to the cache: the next epoch's visit
			// to this subgraph re-leases them — a hit, not a recompile.
			bm.ReleasePlans()
			steps++
		}
		if e%10 == 0 {
			l, acc := evalLoss(mb)
			fmt.Printf("epoch %2d  full-graph loss %.4f  test acc %.3f  (%d batch steps)\n",
				e, l, acc, steps)
		}
	}
	hits := metrics.PlanCacheHits.Value() - hits0
	misses := metrics.PlanCacheMisses.Value() - misses0
	fmt.Printf("\nplan cache over %d batch steps: %d compiles, %d hits (%.1f%% hit rate)\n",
		steps, misses, hits, 100*float64(hits)/float64(hits+misses))
	fmt.Println("\nBoth modes train through the same global tensor kernels. Note the")
	fmt.Println("step counts: mini-batch takes several optimizer steps per epoch, so")
	fmt.Println("per-epoch comparisons flatter it at this scale; per *step*, the")
	fmt.Println("full batch uses every vertex without sampling loss — the paper's")
	fmt.Println("argument for full-batch training, which dominates once the batch")
	fmt.Println("subgraphs stop fitting on one node.")
}
