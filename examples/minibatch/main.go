// Mini-batch training — the extension the paper's conclusion calls
// straightforward: seed batches are expanded to their L-hop neighborhood,
// the induced subgraph's adjacency is rebound into the *global tensor
// formulation* with shared parameters, and training proceeds batch by
// batch. Compared against full-batch training on the same task: full-batch
// converges in fewer epochs (the paper's motivation for full-batch), while
// mini-batch trades convergence for a smaller working set.
//
//	go run ./examples/minibatch
package main

import (
	"fmt"
	"log"

	"agnn/internal/gnn"
	"agnn/internal/graph"
	"agnn/internal/local"
	"agnn/internal/tensor"
)

func main() {
	ds := graph.SyntheticCitation(1200, 4, 16, 0.5, 11)
	st := graph.Summarize(ds.Adj)
	fmt.Printf("graph: n=%d m=%d classes=%d\n", st.N, st.M, ds.Classes)

	evalLoss := func(m *gnn.Model) (float64, float64) {
		out := m.Forward(ds.Features, false)
		l, _ := (&gnn.CrossEntropyLoss{Labels: ds.Labels}).Eval(out)
		return l, gnn.Accuracy(out, ds.Labels, ds.TestMask())
	}
	newModel := func() *gnn.Model {
		m, err := gnn.New(gnn.Config{Model: gnn.GAT, Layers: 2, InDim: 16,
			HiddenDim: 16, OutDim: ds.Classes, Activation: gnn.ELU(1),
			SelfLoops: true, Seed: 12}, ds.Adj)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	// Full-batch training (the paper's mode).
	full := newModel()
	opt := gnn.NewAdam(0.01)
	loss := &gnn.CrossEntropyLoss{Labels: ds.Labels, Mask: ds.TrainMask}
	fmt.Println("\n-- full-batch (global formulation) --")
	for e := 1; e <= 30; e++ {
		full.TrainStep(ds.Features, loss, opt)
		if e%10 == 0 {
			l, acc := evalLoss(full)
			fmt.Printf("epoch %2d  full-graph loss %.4f  test acc %.3f\n", e, l, acc)
		}
	}

	// Mini-batch training through the same global formulation: expand a
	// seed batch by L hops, induce the subgraph, rebind shared parameters.
	mb := newModel()
	processed := mb.Layers[0].(*gnn.GATLayer).A // adjacency incl. self loops
	g := local.FromCSR(processed)
	sampler := local.NewSampler(g, 256, 2, 13)
	optMB := gnn.NewAdam(0.01)
	fmt.Println("\n-- mini-batch (induced subgraphs through the global formulation) --")
	steps := 0
	for e := 1; e <= 30; e++ {
		for b := 0; b < st.N/256; b++ {
			batch := sampler.Next()
			sub := graph.InducedSubgraph(processed, batch.Vertices)
			bm, err := gnn.RebindAdjacency(mb, sub)
			if err != nil {
				log.Fatal(err)
			}
			bh := tensor.NewDense(len(batch.Vertices), 16)
			bl := make([]int, len(batch.Vertices))
			bmask := make([]bool, len(batch.Vertices))
			for i, v := range batch.Vertices {
				copy(bh.Row(i), ds.Features.Row(int(v)))
				bl[i] = ds.Labels[v]
				bmask[i] = i < batch.NumSeeds && ds.TrainMask[v]
			}
			bm.TrainStep(bh, &gnn.CrossEntropyLoss{Labels: bl, Mask: bmask}, optMB)
			steps++
		}
		if e%10 == 0 {
			l, acc := evalLoss(mb)
			fmt.Printf("epoch %2d  full-graph loss %.4f  test acc %.3f  (%d batch steps)\n",
				e, l, acc, steps)
		}
	}
	fmt.Println("\nBoth modes train through the same global tensor kernels. Note the")
	fmt.Println("step counts: mini-batch takes several optimizer steps per epoch, so")
	fmt.Println("per-epoch comparisons flatter it at this scale; per *step*, the")
	fmt.Println("full batch uses every vertex without sampling loss — the paper's")
	fmt.Println("argument for full-batch training, which dominates once the batch")
	fmt.Println("subgraphs stop fitting on one node.")
}
