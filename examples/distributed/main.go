// Distributed execution: run GAT training on the simulated cluster at
// p = 1, 4, 16 ranks, compare the measured per-rank communication volume of
// the global formulation against both the BSP cost model of Section 7 and
// the local-formulation (DistDGL-like) baseline.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"sync"
	"time"

	"agnn/internal/costmodel"
	"agnn/internal/dist"
	"agnn/internal/distgnn"
	"agnn/internal/gnn"
	"agnn/internal/graph"
	"agnn/internal/tensor"
)

func main() {
	const (
		n      = 4096
		k      = 16
		layers = 3
	)
	a := graph.Kronecker(12, 16, 5)
	st := graph.Summarize(a)
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", st.N, st.M, st.MaxDeg)
	h := tensor.NewDense(st.N, k)
	for i := range h.Data {
		h.Data[i] = 0.1 * float64(i%17-8)
	}
	labels := make([]int, st.N)
	for i := range labels {
		labels[i] = i % k
	}
	cfg := gnn.Config{Model: gnn.GAT, Layers: layers, InDim: k, HiddenDim: k,
		OutDim: k, Activation: gnn.Tanh(), SelfLoops: true, Seed: 6}

	fmt.Println("\n-- global formulation (2D grid, A-stationary) --")
	fmt.Println("p     time/step   max B/rank   predicted words   modeled net time")
	for _, p := range []int{1, 4, 16} {
		var elapsed time.Duration
		var loss float64
		var mu sync.Mutex
		cs := dist.Run(p, func(c *dist.Comm) {
			e, err := distgnn.NewGlobalEngine(c, a, cfg)
			if err != nil {
				panic(err)
			}
			xd := e.SliceOwnedBlock(h)
			opt := gnn.NewSGD(1e-3, 0)
			c.Barrier()
			t0 := time.Now()
			l := e.TrainStep(xd, labels, nil, opt)
			c.Barrier()
			if c.Rank() == 0 {
				mu.Lock()
				elapsed, loss = time.Since(t0), l
				mu.Unlock()
			}
		})
		m := dist.MaxCounters(cs)
		pred := float64(layers) * costmodel.GlobalVolume(st.N, k, p)
		fmt.Printf("%-4d  %-10s  %-11d  %-16.0f  %.4fms   (loss %.4f)\n",
			p, elapsed.Round(time.Microsecond), m.BytesSent, pred,
			1e3*dist.CrayAries().Time(m), loss)
	}

	fmt.Println("\n-- local formulation baseline (1D + halo exchange), inference --")
	fmt.Println("p     time/pass   max B/rank   halo rows")
	for _, p := range []int{4, 16} {
		var elapsed time.Duration
		var halo int
		var mu sync.Mutex
		cs := dist.Run(p, func(c *dist.Comm) {
			e, err := distgnn.NewLocalEngine(c, a, cfg)
			if err != nil {
				panic(err)
			}
			hOwned := h.SliceRows(e.Lo, e.Hi).Clone()
			c.Barrier()
			t0 := time.Now()
			e.Forward(hOwned)
			c.Barrier()
			if c.Rank() == 0 {
				mu.Lock()
				elapsed, halo = time.Since(t0), e.HaloSize()
				mu.Unlock()
			}
		})
		m := dist.MaxCounters(cs)
		fmt.Printf("%-4d  %-10s  %-11d  %d\n",
			p, elapsed.Round(time.Microsecond), m.BytesSent, halo)
	}
	fmt.Println("\nThe global formulation's per-rank volume shrinks with √p while the")
	fmt.Println("local baseline's halo stays ~n per rank on this heavy-tail graph —")
	fmt.Println("the Section 7 separation for d ∈ ω(√p).")
}
