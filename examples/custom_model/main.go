// Programmability: assemble custom A-GNN models from the Ψ/⊕/Φ pieces of
// the paper's generic global formulation (Eq. 1) — including semiring
// aggregations (max / min / average over tropical and ℝ² semirings,
// Section 4.3) and an MLP update (GIN-style Φ).
//
//	go run ./examples/custom_model
package main

import (
	"fmt"
	"math/rand"

	"agnn/internal/gnn"
	"agnn/internal/graph"
	"agnn/internal/kernels"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

func main() {
	a := graph.Kronecker(9, 6, 3) // 512 vertices
	n := a.Rows
	rng := rand.New(rand.NewSource(4))
	h := tensor.RandN(n, 8, 1, rng)
	w := tensor.GlorotInit(8, 8, rng)

	// 1. Dot-product attention with softmax (VA + sm) and the standard sum
	//    aggregation — assembled, not hard-coded.
	vaLike := &gnn.GenericLayer{
		A:        a,
		Psi:      gnn.SoftmaxDotPsi(),
		Agg:      gnn.SumAgg(),
		Phi:      gnn.LinearPhi(w),
		Act:      gnn.ReLU(),
		PhiFirst: true, // Φ∘⊕ order flexibility of Section 4.4
	}
	out := vaLike.Forward(h, false)
	fmt.Printf("softmax-dot attention + sum aggregation: %d×%d, ‖out‖=%.3f\n",
		out.Rows, out.Cols, out.FrobeniusNorm())

	// 2. The same attention with *max* aggregation — a sparse-dense product
	//    over the tropical-max semiring (ℝ∪{−∞}, max, +, −∞, 0).
	maxModel := &gnn.GenericLayer{A: a, Psi: gnn.SoftmaxDotPsi(), Agg: gnn.MaxAgg(), Act: gnn.ReLU()}
	out = maxModel.Forward(h, false)
	fmt.Printf("tropical-max aggregation:                %d×%d, ‖out‖=%.3f\n",
		out.Rows, out.Cols, out.FrobeniusNorm())

	// 3. Average aggregation over the paper's ℝ² tuple semiring: tuples
	//    (value, weight) merged by weighted mean.
	meanModel := &gnn.GenericLayer{A: a, Psi: gnn.AdjacencyPsi(), Agg: gnn.MeanAgg()}
	out = meanModel.Forward(h, false)
	fmt.Printf("ℝ²-semiring average aggregation:         %d×%d, ‖out‖=%.3f\n",
		out.Rows, out.Cols, out.FrobeniusNorm())

	// 4. A brand-new Ψ: distance-decayed attention exp(−‖h_i − h_j‖²),
	//    written directly against the fused virtual-matrix kernel — the
	//    score matrix is never materialized, exactly like GAT's C.
	gaussianPsi := func(a *sparse.CSR, h *tensor.Dense) *sparse.CSR {
		norms := tensor.RowNorms(h)
		score := func(i, j int32) float64 {
			// ‖h_i − h_j‖² = ‖h_i‖² + ‖h_j‖² − 2·h_i·h_j
			dot := tensor.Dot(h.Row(int(i)), h.Row(int(j)))
			d2 := norms[i]*norms[i] + norms[j]*norms[j] - 2*dot
			return -d2
		}
		return kernels.FusedSoftmaxScores(a, score)
	}
	gaussModel := &gnn.GenericLayer{
		A:   a,
		Psi: gnn.CustomPsi(gaussianPsi),
		Agg: gnn.SumAgg(),
		// GIN-style MLP update Φ: two projections with a ReLU between.
		Phi: gnn.MLPPhi(gnn.ReLU(), tensor.GlorotInit(8, 16, rng), tensor.GlorotInit(16, 8, rng)),
		Act: gnn.Tanh(),
	}
	out = gaussModel.Forward(h, false)
	fmt.Printf("custom Gaussian-kernel attention + MLP Φ: %d×%d, ‖out‖=%.3f\n",
		out.Rows, out.Cols, out.FrobeniusNorm())

	// 5. Stack heterogeneous layers into one model.
	stack := &gnn.Model{Layers: []gnn.Layer{vaLike, gaussModel, meanModel}}
	out = stack.Forward(h, false)
	fmt.Printf("3-layer heterogeneous stack:             %d×%d, ‖out‖=%.3f\n",
		out.Rows, out.Cols, out.FrobeniusNorm())
}
