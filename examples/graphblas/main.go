// GraphBLAS-style graph analytics on the same sparse substrate the A-GNNs
// run on: BFS, single-source shortest paths over the min-plus tropical
// semiring, triangle counting via masked mxm, connected components, and
// PageRank — the "irregular computations with linear algebra building
// blocks" lineage the paper extends to attention models.
//
//	go run ./examples/graphblas
package main

import (
	"fmt"
	"sort"

	"agnn/internal/graph"
	"agnn/internal/grb"
)

func main() {
	a := graph.Kronecker(11, 8, 9) // 2048 vertices, heavy-tail
	st := graph.Summarize(a)
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n\n", st.N, st.M, st.MaxDeg)

	// BFS from the highest-degree vertex (one masked VxM per level).
	hub := 0
	for v := 0; v < st.N; v++ {
		if a.RowNNZ(v) > a.RowNNZ(hub) {
			hub = v
		}
	}
	levels := grb.BFSLevels(a, hub)
	hist := map[int]int{}
	reached := 0
	for _, l := range levels {
		if l >= 0 {
			hist[l]++
			reached++
		}
	}
	fmt.Printf("BFS from hub %d: reached %d/%d vertices\n", hub, reached, st.N)
	var ls []int
	for l := range hist {
		ls = append(ls, l)
	}
	sort.Ints(ls)
	for _, l := range ls {
		fmt.Printf("  level %d: %d vertices\n", l, hist[l])
	}

	// SSSP over the min-plus semiring (unit weights here, so it matches BFS).
	dist := grb.SSSP(a, hub)
	agree := 0
	for v, l := range levels {
		if l >= 0 && int(dist[v]) == l {
			agree++
		}
	}
	fmt.Printf("\nSSSP (min-plus) agrees with BFS on %d/%d reachable vertices\n", agree, reached)

	// Triangle counting: reduce(L ⊙ (L·Lᵀ)) with one masked mxm.
	fmt.Printf("triangles: %d\n", grb.TriangleCount(a))

	// Connected components by min-label propagation.
	cc := grb.ConnectedComponents(a)
	comps := map[int]int{}
	for _, c := range cc {
		comps[c]++
	}
	fmt.Printf("connected components: %d (largest %d vertices)\n",
		len(comps), maxVal(comps))

	// PageRank: the hub should rank near the top.
	pr := grb.PageRank(a, 0.85, 40)
	rank := 0
	for v := range pr {
		if pr[v] > pr[hub] {
			rank++
		}
	}
	fmt.Printf("PageRank: hub vertex is ranked #%d of %d\n", rank+1, st.N)
}

func maxVal(m map[int]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
