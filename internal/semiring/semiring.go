// Package semiring implements the generalized-aggregation algebra of
// Section 4.3 of the paper. A semiring (X, op1, op2, el1, el2) generalizes
// the matrix product: op1 ("Plus") folds contributions across a vertex
// neighborhood and op2 ("Times") combines an adjacency entry with a feature.
// Sum aggregation is the real semiring; max/min are the tropical variants;
// average uses the paper's ℝ² tuple construction that threads partial sums
// and weights through op1.
package semiring

import "math"

// Semiring describes (X, Plus, Times, Zero, One) over an element type T.
// (X, Plus) must be a commutative monoid with identity Zero and (X, Times)
// a monoid with identity One. Implementations in this package additionally
// guarantee Times(Zero, x) == Zero for the sparse-skip optimization, except
// where documented (tropical semirings redefine the "missing edge" element).
type Semiring[T any] struct {
	Name  string
	Plus  func(a, b T) T
	Times func(a, b T) T
	Zero  T // identity of Plus
	One   T // identity of Times
}

// Real is the standard (ℝ, +, ·, 0, 1) semiring: sum aggregation.
func Real() Semiring[float64] {
	return Semiring[float64]{
		Name:  "real",
		Plus:  func(a, b float64) float64 { return a + b },
		Times: func(a, b float64) float64 { return a * b },
		Zero:  0,
		One:   1,
	}
}

// TropicalMin is (ℝ ∪ {∞}, min, +, ∞, 0): min aggregation. Off-diagonal
// structural zeros of the adjacency matrix must be mapped to +∞ before use
// (see sparse.SpMMSemiring's edge-value mapping).
func TropicalMin() Semiring[float64] {
	return Semiring[float64]{
		Name:  "tropical-min",
		Plus:  math.Min,
		Times: func(a, b float64) float64 { return a + b },
		Zero:  math.Inf(1),
		One:   0,
	}
}

// TropicalMax is (ℝ ∪ {−∞}, max, +, −∞, 0): max aggregation.
func TropicalMax() Semiring[float64] {
	return Semiring[float64]{
		Name:  "tropical-max",
		Plus:  math.Max,
		Times: func(a, b float64) float64 { return a + b },
		Zero:  math.Inf(-1),
		One:   0,
	}
}

// Boolean is ({false,true}, ∨, ∧, false, true): reachability aggregation.
func Boolean() Semiring[bool] {
	return Semiring[bool]{
		Name:  "boolean",
		Plus:  func(a, b bool) bool { return a || b },
		Times: func(a, b bool) bool { return a && b },
		Zero:  false,
		One:   true,
	}
}

// Pair is the ℝ² element of the averaging semiring: V is a running
// (weighted) average and W the accumulated weight that produced it.
type Pair struct {
	V, W float64
}

// Average implements the paper's averaging aggregation over ℝ² tuples.
// Plus merges two running averages by their weights:
//
//	(a₁,a₂) ⊕ (b₁,b₂) = ((a₁a₂ + b₁b₂)/(a₂+b₂), a₂+b₂)
//
// Times lifts an adjacency entry x (as the tuple (x,x)) and a feature value
// h (as (h,1)) into the contribution (h, x): value h carrying weight x.
// Aggregating a row of a binary adjacency matrix therefore yields the
// arithmetic mean of the neighbor features, and for weighted adjacency the
// edge-weighted mean.
func Average() Semiring[Pair] {
	return Semiring[Pair]{
		Name: "average",
		Plus: func(a, b Pair) Pair {
			w := a.W + b.W
			if w == 0 {
				return Pair{}
			}
			return Pair{V: (a.V*a.W + b.V*b.W) / w, W: w}
		},
		Times: func(a, b Pair) Pair {
			// a is the lifted adjacency entry (x, x); b the lifted feature
			// (h, 1). The contribution is value h with weight x.
			return Pair{V: b.V, W: a.V * b.W}
		},
		Zero: Pair{},
		One:  Pair{V: 0, W: 1},
	}
}

// LiftEdge converts a raw adjacency value into the averaging-semiring
// element the paper assigns to each initial matrix entry: (x, x).
func LiftEdge(x float64) Pair { return Pair{V: x, W: x} }

// LiftFeature converts a raw feature value into an averaging-semiring
// element with unit weight: (h, 1).
func LiftFeature(h float64) Pair { return Pair{V: h, W: 1} }
