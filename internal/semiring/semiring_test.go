package semiring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkMonoidLaws verifies associativity and identity for an operation.
func checkMonoidLaws(t *testing.T, name string, op func(a, b float64) float64, id float64, commutative bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	f := func(sa, sb, sc int16) bool {
		a, b, c := float64(sa), float64(sb), float64(sc)
		assoc := op(op(a, b), c) == op(a, op(b, c))
		ident := op(a, id) == a && op(id, a) == a
		comm := !commutative || op(a, b) == op(b, a)
		return assoc && ident && comm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatalf("%s monoid law violated: %v", name, err)
	}
}

func TestRealSemiringLaws(t *testing.T) {
	s := Real()
	checkMonoidLaws(t, "real.Plus", s.Plus, s.Zero, true)
	checkMonoidLaws(t, "real.Times", s.Times, s.One, true)
	// Annihilation: Times(Zero, x) == Zero.
	if s.Times(s.Zero, 5) != s.Zero {
		t.Fatal("real: Zero does not annihilate")
	}
	// Distributivity on a sample grid.
	for a := -3.0; a <= 3; a++ {
		for b := -3.0; b <= 3; b++ {
			for c := -3.0; c <= 3; c++ {
				if s.Times(a, s.Plus(b, c)) != s.Plus(s.Times(a, b), s.Times(a, c)) {
					t.Fatalf("real distributivity fails at %v %v %v", a, b, c)
				}
			}
		}
	}
}

func TestTropicalMinLaws(t *testing.T) {
	s := TropicalMin()
	checkMonoidLaws(t, "tropmin.Plus", s.Plus, s.Zero, true)
	checkMonoidLaws(t, "tropmin.Times", s.Times, s.One, true)
	// min distributes over +: a + min(b,c) == min(a+b, a+c).
	for a := -3.0; a <= 3; a++ {
		for b := -3.0; b <= 3; b++ {
			for c := -3.0; c <= 3; c++ {
				if s.Times(a, s.Plus(b, c)) != s.Plus(s.Times(a, b), s.Times(a, c)) {
					t.Fatalf("tropical-min distributivity fails at %v %v %v", a, b, c)
				}
			}
		}
	}
	if !math.IsInf(s.Plus(s.Zero, s.Zero), 1) {
		t.Fatal("min(∞,∞) != ∞")
	}
}

func TestTropicalMaxLaws(t *testing.T) {
	s := TropicalMax()
	checkMonoidLaws(t, "tropmax.Plus", s.Plus, s.Zero, true)
	checkMonoidLaws(t, "tropmax.Times", s.Times, s.One, true)
	if s.Plus(3, 7) != 7 || s.Times(3, 7) != 10 {
		t.Fatal("tropical-max semantics wrong")
	}
}

func TestBooleanLaws(t *testing.T) {
	s := Boolean()
	vals := []bool{false, true}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				if s.Plus(s.Plus(a, b), c) != s.Plus(a, s.Plus(b, c)) {
					t.Fatal("bool Plus not associative")
				}
				if s.Times(s.Times(a, b), c) != s.Times(a, s.Times(b, c)) {
					t.Fatal("bool Times not associative")
				}
				if s.Times(a, s.Plus(b, c)) != s.Plus(s.Times(a, b), s.Times(a, c)) {
					t.Fatal("bool distributivity fails")
				}
			}
		}
	}
	if s.Plus(false, true) != true || s.Times(true, false) != false {
		t.Fatal("bool semantics wrong")
	}
}

func TestAveragePlusAssociativeAndCommutative(t *testing.T) {
	s := Average()
	rng := rand.New(rand.NewSource(2))
	f := func(v1, v2, v3 int8, w1, w2, w3 uint8) bool {
		a := Pair{float64(v1), float64(w1)}
		b := Pair{float64(v2), float64(w2)}
		c := Pair{float64(v3), float64(w3)}
		l := s.Plus(s.Plus(a, b), c)
		r := s.Plus(a, s.Plus(b, c))
		comm := s.Plus(a, b)
		comm2 := s.Plus(b, a)
		return approxPair(l, r, 1e-9) && approxPair(comm, comm2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	// Identity.
	a := Pair{5, 3}
	if got := s.Plus(a, s.Zero); !approxPair(got, a, 0) {
		t.Fatalf("Plus identity: got %v", got)
	}
}

func TestAverageComputesMean(t *testing.T) {
	s := Average()
	// Aggregate features 2, 4, 9 over unit-weight edges: mean = 5.
	acc := s.Zero
	for _, h := range []float64{2, 4, 9} {
		acc = s.Plus(acc, s.Times(LiftEdge(1), LiftFeature(h)))
	}
	if math.Abs(acc.V-5) > 1e-12 || acc.W != 3 {
		t.Fatalf("average aggregation = %v, want (5,3)", acc)
	}
	// Weighted: edges 1,3 with features 10, 2 → (10 + 3·2)/4 = 4.
	acc = s.Zero
	acc = s.Plus(acc, s.Times(LiftEdge(1), LiftFeature(10)))
	acc = s.Plus(acc, s.Times(LiftEdge(3), LiftFeature(2)))
	if math.Abs(acc.V-4) > 1e-12 {
		t.Fatalf("weighted average = %v, want 4", acc.V)
	}
}

func TestAverageEmptyNeighborhood(t *testing.T) {
	s := Average()
	if got := s.Plus(s.Zero, s.Zero); got.V != 0 || got.W != 0 {
		t.Fatalf("empty aggregation = %v", got)
	}
}

func TestLiftHelpers(t *testing.T) {
	if LiftEdge(2) != (Pair{2, 2}) {
		t.Fatal("LiftEdge wrong")
	}
	if LiftFeature(7) != (Pair{7, 1}) {
		t.Fatal("LiftFeature wrong")
	}
}

func approxPair(a, b Pair, tol float64) bool {
	return math.Abs(a.V-b.V) <= tol && math.Abs(a.W-b.W) <= tol
}
