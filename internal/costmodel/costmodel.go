// Package costmodel implements the BSP communication-cost analysis of
// Section 7: closed-form per-processor communication volumes for the
// global and local formulations of A-GNN layers, the Erdős–Rényi
// specialization of Section 7.3, and helpers that compare the predictions
// against the volumes measured by the simulated runtime (internal/dist).
//
// All volumes are in *words* (float64 values), following the paper's
// convention of counting the maximum number of words sent by any processor
// per GNN layer.
package costmodel

import (
	"math"

	"agnn/internal/obs/metrics"
)

// GlobalVolume returns the Section 7.1 bound for one layer of the global
// formulation: O(nk/√p + k²) words per processor. The constant in front of
// nk/√p captures the column broadcast of feature blocks and the row
// reduction of partial sums (≈2 ring traversals each); k² covers the
// replicated parameter traffic.
func GlobalVolume(n, k, p int) float64 {
	if p <= 1 {
		return 0
	}
	sp := math.Sqrt(float64(p))
	return 4*float64(n)*float64(k)/sp + float64(k*k)
}

// LocalVolume returns the Section 7 bound for one layer of the local
// (message-passing) formulation: up to Ω(nkd/p + k²) words per processor —
// each of the n/p owned vertices pulls the k-word features of up to d
// remote neighbors. The min with (n−n/p)·k accounts for per-rank halo
// deduplication: a rank never needs more than every non-owned feature row
// once.
func LocalVolume(n, k, d, p int) float64 {
	if p <= 1 {
		return 0
	}
	raw := float64(n) * float64(k) * float64(d) / float64(p)
	cap := float64(n-n/p) * float64(k)
	return math.Min(raw, cap) + float64(k*k)
}

// ERLocalVolume returns the Section 7.3 high-probability bound for
// Erdős–Rényi graphs G_{n,q}: O(n²kq/p + log n) words. For G(n, q) the
// expected number of distinct remote neighbors of a rank's n/p vertices is
// ≈ n·(1−(1−q)^{n/p}), which the bound upper-approximates by n²q/p in the
// sparse regime.
func ERLocalVolume(n, k int, q float64, p int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(n)*float64(n)*float64(k)*q/float64(p) + math.Log(float64(n))
}

// ERExpectedHalo returns the expected number of distinct halo vertices per
// rank for an Erdős–Rényi graph — the deduplicated refinement of
// ERLocalVolume used to validate the simulated LocalEngine's measured halo.
func ERExpectedHalo(n int, q float64, p int) float64 {
	own := float64(n) / float64(p)
	return (float64(n) - own) * (1 - math.Pow(1-q, own))
}

// GlobalWins reports whether the theory predicts the global formulation
// moves less data: d ∈ ω(√p), evaluated as d > c·√p for the constant-factor
// threshold c implied by the two volume formulas.
func GlobalWins(n, k, d, p int) bool {
	return GlobalVolume(n, k, p) < LocalVolume(n, k, d, p)
}

// ERCrossoverQ returns the edge probability above which the global
// formulation is predicted to win for Erdős–Rényi graphs: q > √p/n
// (Section 7.3), scaled by the same constants as GlobalVolume/LocalVolume.
func ERCrossoverQ(n, p int) float64 {
	return 4 * math.Sqrt(float64(p)) / float64(n)
}

// WordsToBytes converts word counts to bytes (float64 = 8 bytes).
func WordsToBytes(words float64) float64 { return 8 * words }

// Prediction bundles the model outputs for one experimental configuration,
// for reporting alongside measured counters.
type Prediction struct {
	N, K, D, P  int
	Layers      int
	GlobalWords float64
	LocalWords  float64
}

// Predict evaluates both formulations for an L-layer model.
func Predict(n, k, d, p, layers int) Prediction {
	return Prediction{
		N: n, K: k, D: d, P: p, Layers: layers,
		GlobalWords: float64(layers) * GlobalVolume(n, k, p),
		LocalWords:  float64(layers) * LocalVolume(n, k, d, p),
	}
}

// Validation is the outcome of comparing an analytic communication
// prediction against the counters the simulated runtime measured — the
// closed loop between the Section 7 bounds and the Section 6 runtime.
type Validation struct {
	PredictedWords float64 `json:"predicted_words"`
	MeasuredWords  float64 `json:"measured_words"`
	Ratio          float64 `json:"ratio"` // measured / predicted; 0 when nothing was predicted
}

// Within reports whether the measurement is within factor f of the
// prediction in either direction.
func (v Validation) Within(f float64) bool {
	return WithinFactor(v.MeasuredWords, v.PredictedWords, f)
}

// ValidateComm compares a predicted max per-rank word count against the
// measured one and publishes both sides to the live metrics registry
// (agnn_comm_predicted_words / agnn_comm_measured_words), so the /metrics
// endpoint, run reports and BENCH_*.json records all carry the
// model-vs-measurement ratio.
func ValidateComm(predictedWords, measuredWords float64) Validation {
	metrics.CommPredictedWords.Set(predictedWords)
	metrics.CommMeasuredWords.Set(measuredWords)
	v := Validation{PredictedWords: predictedWords, MeasuredWords: measuredWords}
	if predictedWords > 0 {
		v.Ratio = measuredWords / predictedWords
	}
	return v
}

// WithinFactor reports whether measured is within factor f of predicted
// (both directions); used by the verification tests and benchmarks to
// assert that the simulated runtime tracks the theory.
func WithinFactor(measured, predicted, f float64) bool {
	if predicted == 0 {
		return measured == 0
	}
	r := measured / predicted
	return r <= f && r >= 1/f
}
