package costmodel

import (
	"fmt"
	"sort"
	"strings"

	"agnn/internal/fuse"
	"agnn/internal/tensor"
)

// This file closes the loop between the SOAP-style planner and the
// executable operator plans of internal/fuse: instead of estimating kernel
// counts from the model kind, the cost model reads them off a compiled
// plan — the same op list the runtime executes — together with the fusion
// savings and the resident workspace.

// ExecutionProfile summarizes a compiled operator plan for cost reporting.
type ExecutionProfile struct {
	Name            string
	Train           bool
	ForwardKernels  int // kernel launches per forward step
	BackwardKernels int // kernel launches per backward step (0 for inference plans)
	FusedVirtual    int // virtual nodes collapsed into sampling kernels (Section 6.2)
	SoftmaxFused    int // softmaxes folded into their mask's sampling sweep
	AttnFused       int // score→softmax→aggregate chains fused into single sweeps
	OpCounts        map[string]int
	WorkspaceBytes  int64        // preallocated intermediate storage held by the plan
	DType           tensor.DType // element width the kernels execute at
}

// ProfilePlan reads the execution counts off a compiled plan.
func ProfilePlan(p *fuse.Plan) ExecutionProfile {
	s := p.Stats()
	return ExecutionProfile{
		Name:            p.Name,
		Train:           p.Train(),
		ForwardKernels:  s.ForwardOps,
		BackwardKernels: s.BackwardOps,
		FusedVirtual:    s.FusedVirtual,
		SoftmaxFused:    s.SoftmaxFused,
		AttnFused:       s.AttnFused,
		OpCounts:        s.OpCounts,
		WorkspaceBytes:  s.WorkspaceBytes(),
		DType:           s.DType,
	}
}

// KernelInvocations returns the kernel launches of one training step
// (forward + backward), the quantity the BSP timeline model charges one
// synchronization to.
func (e ExecutionProfile) KernelInvocations() int {
	return e.ForwardKernels + e.BackwardKernels
}

// String renders the profile for reports.
func (e ExecutionProfile) String() string {
	ops := make([]string, 0, len(e.OpCounts))
	for op, c := range e.OpCounts {
		ops = append(ops, fmt.Sprintf("%s×%d", op, c))
	}
	sort.Strings(ops)
	mode := "inference"
	if e.Train {
		mode = "train"
	}
	return fmt.Sprintf("%s [%s, %s]: %d fwd + %d bwd kernels (%d virtual fused, %d softmax fused, %d attn fused), %d KiB workspace; %s",
		e.Name, mode, e.DType, e.ForwardKernels, e.BackwardKernels, e.FusedVirtual, e.SoftmaxFused,
		e.AttnFused, e.WorkspaceBytes/1024, strings.Join(ops, " "))
}
