package costmodel

import (
	"testing"

	"agnn/internal/obs/metrics"
)

func TestOverlappedLayerTime(t *testing.T) {
	cases := []struct {
		name                        string
		compute, comm, overlappable float64
		want                        float64
	}{
		{"comm-bound, full overlap", 1, 3, 1, 3},    // hides all compute-worth: 1+3-1
		{"compute-bound, full overlap", 3, 1, 1, 3}, // hides all comm: 3+1-1
		{"half overlappable", 2, 2, 0.5, 3},         // hides 0.5·2 = 1
		{"nothing overlappable", 2, 2, 0, 4},        // sequential
		{"clamped fraction", 2, 2, 1.5, 2},          // treated as 1
		{"negative fraction clamped", 2, 2, -1, 4},  // treated as 0
		{"no communication", 5, 0, 1, 5},            // nothing to hide
	}
	for _, c := range cases {
		if got := OverlappedLayerTime(c.compute, c.comm, c.overlappable); got != c.want {
			t.Errorf("%s: OverlappedLayerTime(%v,%v,%v) = %v, want %v",
				c.name, c.compute, c.comm, c.overlappable, got, c.want)
		}
		seq := SequentialLayerTime(c.compute, c.comm)
		if got := OverlappedLayerTime(c.compute, c.comm, c.overlappable); got > seq {
			t.Errorf("%s: overlapped %v exceeds sequential %v", c.name, got, seq)
		}
		wantHidden := seq - c.want
		if got := PredictedHiddenSeconds(c.compute, c.comm, c.overlappable); got != wantHidden {
			t.Errorf("%s: PredictedHiddenSeconds = %v, want %v", c.name, got, wantHidden)
		}
	}
}

func TestValidateTimePublishesGauges(t *testing.T) {
	v := ValidateTime(0.02, 0.03)
	if v.Ratio != 1.5 {
		t.Errorf("ratio %v, want 1.5", v.Ratio)
	}
	if !v.Within(2) || v.Within(1.2) {
		t.Errorf("Within misbehaves: %+v", v)
	}
	if got := metrics.LayerPredictedSeconds.Value(); got != 0.02 {
		t.Errorf("predicted gauge %v, want 0.02", got)
	}
	if got := metrics.LayerMeasuredSeconds.Value(); got != 0.03 {
		t.Errorf("measured gauge %v, want 0.03", got)
	}
	if v0 := ValidateTime(0, 0.01); v0.Ratio != 0 {
		t.Errorf("zero prediction must give ratio 0, got %v", v0.Ratio)
	}
}
