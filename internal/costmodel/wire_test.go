package costmodel

import (
	"math"
	"testing"
)

func TestWireModelPredictSeconds(t *testing.T) {
	m := WireModel{AlphaSeconds: 1e-5, BetaSecPerByte: 1e-9}
	if got := m.PredictSeconds(0, 0); got != 0 {
		t.Errorf("empty traffic predicts %v, want 0", got)
	}
	// 100 frames, 1 MB: 100·10µs + 1e6·1ns = 1ms + 1ms.
	want := 100*1e-5 + 1e6*1e-9
	if got := m.PredictSeconds(100, 1_000_000); math.Abs(got-want) > 1e-12 {
		t.Errorf("PredictSeconds = %v, want %v", got, want)
	}
	// Defensive: negative counters clamp to zero rather than predicting
	// negative time.
	if got := m.PredictSeconds(-5, -100); got != 0 {
		t.Errorf("negative counters predict %v, want 0", got)
	}
	// α dominates small-frame traffic, β dominates bulk traffic.
	small := m.PredictSeconds(1000, 1000)
	bulk := m.PredictSeconds(1, 100_000_000)
	if small < 1000*m.AlphaSeconds {
		t.Errorf("small-frame prediction %v below pure-α floor", small)
	}
	if bulk < 100_000_000*m.BetaSecPerByte {
		t.Errorf("bulk prediction %v below pure-β floor", bulk)
	}
}

func TestFitAlphaBetaRecoversModel(t *testing.T) {
	truth := WireModel{AlphaSeconds: 2e-5, BetaSecPerByte: 0.5e-9}
	// Two measurements at different frame/byte mixes.
	f1, b1 := int64(1000), int64(8_000)
	f2, b2 := int64(10), int64(80_000_000)
	got, ok := FitAlphaBeta(f1, b1, truth.PredictSeconds(f1, b1), f2, b2, truth.PredictSeconds(f2, b2))
	if !ok {
		t.Fatal("fit reported degenerate system for independent measurements")
	}
	if math.Abs(got.AlphaSeconds-truth.AlphaSeconds) > 1e-12 ||
		math.Abs(got.BetaSecPerByte-truth.BetaSecPerByte) > 1e-15 {
		t.Errorf("fit = %+v, want %+v", got, truth)
	}
}

func TestFitAlphaBetaDegenerate(t *testing.T) {
	// Same mix twice: no information to separate α from β.
	if _, ok := FitAlphaBeta(10, 100, 1e-3, 20, 200, 2e-3); ok {
		t.Error("colinear measurements accepted")
	}
	// Non-physical fits (negative coefficients) are rejected.
	if _, ok := FitAlphaBeta(1000, 8_000, 1e-6, 10, 80_000_000, 100); ok {
		t.Error("negative-α fit accepted")
	}
}

func TestValidateWirePublishesAndRatios(t *testing.T) {
	m := DefaultWireModel()
	frames, bytes := int64(500), int64(4_000_000)
	predicted := m.PredictSeconds(frames, bytes)
	v := ValidateWire(m, frames, bytes, 2*predicted)
	if v.PredictedSeconds != predicted {
		t.Errorf("PredictedSeconds = %v, want %v", v.PredictedSeconds, predicted)
	}
	if math.Abs(v.Ratio-2) > 1e-12 {
		t.Errorf("Ratio = %v, want 2", v.Ratio)
	}
	if !v.Within(3) || v.Within(1.5) {
		t.Errorf("Within misclassifies ratio 2: within(3)=%v within(1.5)=%v", v.Within(3), v.Within(1.5))
	}
	// Zero prediction (no traffic) must not divide by zero.
	z := ValidateWire(m, 0, 0, 0.5)
	if z.Ratio != 0 {
		t.Errorf("zero-prediction ratio = %v, want 0", z.Ratio)
	}
}
