package costmodel

import (
	"math"
	"sync"
	"testing"

	"agnn/internal/dist"
	"agnn/internal/distgnn"
	"agnn/internal/gnn"
	"agnn/internal/graph"
	"agnn/internal/obs/metrics"
	"agnn/internal/tensor"
)

func TestGlobalVolumeScaling(t *testing.T) {
	// Halving law: 4× more processors → ≈2× less volume (for the nk term).
	v4 := GlobalVolume(100000, 16, 4)
	v16 := GlobalVolume(100000, 16, 16)
	if math.Abs(v4/v16-2) > 0.01 {
		t.Fatalf("global volume ratio %v, want 2", v4/v16)
	}
	// k² term independent of p.
	if GlobalVolume(0, 64, 4) != 64*64 {
		t.Fatal("k² term wrong")
	}
	if GlobalVolume(100, 16, 1) != 0 {
		t.Fatal("single processor sends nothing")
	}
}

func TestLocalVolumeScalingAndCap(t *testing.T) {
	// Linear in d before the dedup cap.
	v1 := LocalVolume(100000, 16, 8, 64)
	v2 := LocalVolume(100000, 16, 16, 64)
	if math.Abs(v2/v1-2) > 0.05 {
		t.Fatalf("local volume should be linear in d: %v", v2/v1)
	}
	// Cap: d ≥ p means every remote feature row is needed once.
	capped := LocalVolume(1000, 16, 10000, 4)
	wantCap := float64(1000-250)*16 + 16*16
	if math.Abs(capped-wantCap) > 1e-9 {
		t.Fatalf("dedup cap = %v, want %v", capped, wantCap)
	}
}

func TestGlobalWinsRegime(t *testing.T) {
	// d ∈ ω(√p): with d far above √p the global formulation must win, far
	// below it must lose. n large enough that the k² term is negligible.
	n, k, p := 1<<20, 16, 64
	if !GlobalWins(n, k, 1024, p) {
		t.Fatal("global should win for d = 1024 ≫ √p = 8")
	}
	if GlobalWins(n, k, 2, p) {
		t.Fatal("local should win for d = 2 ≪ √p = 8")
	}
}

func TestERCrossover(t *testing.T) {
	n, p := 1<<20, 64
	qc := ERCrossoverQ(n, p)
	// Above the crossover density the global side should be cheaper (using
	// the ER volume with d ≈ nq).
	dAbove := int(3 * qc * float64(n))
	dBelow := int(qc * float64(n) / 3)
	if !GlobalWins(n, 16, dAbove, p) {
		t.Fatal("global should win above the ER crossover")
	}
	if GlobalWins(n, 16, dBelow, p) {
		t.Fatal("local should win below the ER crossover")
	}
}

func TestERExpectedHalo(t *testing.T) {
	// q = 1: everything is a neighbor → halo = n − n/p.
	if got := ERExpectedHalo(1000, 1, 4); math.Abs(got-750) > 1e-9 {
		t.Fatalf("full-density halo = %v", got)
	}
	// q = 0: nothing.
	if ERExpectedHalo(1000, 0, 4) != 0 {
		t.Fatal("zero-density halo must be 0")
	}
	// Monotone in q.
	if ERExpectedHalo(1000, 0.01, 4) >= ERExpectedHalo(1000, 0.05, 4) {
		t.Fatal("halo must grow with density")
	}
}

func TestWithinFactor(t *testing.T) {
	if !WithinFactor(10, 20, 3) || !WithinFactor(20, 10, 3) {
		t.Fatal("factor-3 band rejected valid ratios")
	}
	if WithinFactor(100, 10, 3) {
		t.Fatal("10× off accepted")
	}
	if !WithinFactor(0, 0, 2) || WithinFactor(1, 0, 2) {
		t.Fatal("zero-prediction handling wrong")
	}
}

// TestMeasuredGlobalVolumeTracksModel: validation strategy #5 — the
// simulated engine's measured per-rank volume must track GlobalVolume
// within a constant factor across a p-sweep.
func TestMeasuredGlobalVolumeTracksModel(t *testing.T) {
	n, k, layers := 128, 8, 2
	a := graph.ErdosRenyi(n, 8*n, 21)
	h := tensor.NewDense(n, k)
	for i := range h.Data {
		h.Data[i] = math.Cos(float64(i) * 0.13)
	}
	cfg := gnn.Config{Model: gnn.GCN, Layers: layers, InDim: k, HiddenDim: k,
		OutDim: k, Activation: gnn.Tanh(), Seed: 5}
	for _, p := range []int{4, 16, 64} {
		cs := dist.Run(p, func(c *dist.Comm) {
			e, err := distgnn.NewGlobalEngine(c, a, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			e.Forward(e.SliceOwnedBlock(h), false)
		})
		measured := float64(dist.MaxCounters(cs).BytesSent) / 8
		predicted := float64(layers) * GlobalVolume(n, k, p)
		if !WithinFactor(measured, predicted, 4) {
			t.Fatalf("p=%d: measured %v words vs predicted %v (off by >4×)",
				p, measured, predicted)
		}
	}
}

// TestMeasuredLocalHaloTracksER: the LocalEngine's halo size must match the
// ER expectation within a small factor.
func TestMeasuredLocalHaloTracksER(t *testing.T) {
	n := 256
	for _, q := range []float64{0.01, 0.05} {
		m := int(q * float64(n) * float64(n-1) / 2)
		a := graph.ErdosRenyi(n, m, 23)
		cfg := gnn.Config{Model: gnn.GCN, Layers: 1, InDim: 4, HiddenDim: 4,
			OutDim: 4, Seed: 5}
		var halo int
		var mu sync.Mutex
		dist.Run(4, func(c *dist.Comm) {
			e, err := distgnn.NewLocalEngine(c, a, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if c.Rank() == 0 {
				mu.Lock()
				halo = e.HaloSize()
				mu.Unlock()
			}
		})
		want := ERExpectedHalo(n, q, 4)
		if !WithinFactor(float64(halo), want, 1.6) {
			t.Fatalf("q=%v: halo %d vs expected %v", q, halo, want)
		}
	}
}

func TestERLocalVolumeAndHelpers(t *testing.T) {
	// Scales linearly with q and inversely with p.
	v1 := ERLocalVolume(10000, 16, 0.01, 16)
	v2 := ERLocalVolume(10000, 16, 0.02, 16)
	if v2 <= v1 {
		t.Fatal("ER volume must grow with q")
	}
	v3 := ERLocalVolume(10000, 16, 0.01, 64)
	if v3 >= v1 {
		t.Fatal("ER volume must shrink with p")
	}
	if ERLocalVolume(100, 16, 0.5, 1) != 0 {
		t.Fatal("p=1 must be free")
	}
	if WordsToBytes(10) != 80 {
		t.Fatal("WordsToBytes wrong")
	}
	pr := Predict(1000, 16, 32, 16, 3)
	if pr.GlobalWords != 3*GlobalVolume(1000, 16, 16) ||
		pr.LocalWords != 3*LocalVolume(1000, 16, 32, 16) {
		t.Fatalf("Predict inconsistent: %+v", pr)
	}
	if pr.Layers != 3 || pr.N != 1000 {
		t.Fatal("Predict metadata wrong")
	}
}

// TestRegistryMeasuredCommTracksModelKronecker is the live-registry
// counterpart of TestMeasuredGlobalVolumeTracksModel: on a Graph500-style
// Kronecker graph at p=16, the per-rank word counts accumulated in the
// metrics registry (agnn_comm_bytes_total{rank}) must agree with the
// Section 7.1 prediction within 2×, and ValidateComm must publish both
// sides to the registry gauges.
func TestRegistryMeasuredCommTracksModelKronecker(t *testing.T) {
	const (
		scale  = 7 // n = 128 vertices
		k      = 8
		layers = 2
		p      = 16
	)
	a := graph.Kronecker(scale, 8, 42)
	n := a.Rows
	h := tensor.NewDense(n, k)
	for i := range h.Data {
		h.Data[i] = math.Sin(float64(i) * 0.37)
	}
	cfg := gnn.Config{Model: gnn.GCN, Layers: layers, InDim: k, HiddenDim: k,
		OutDim: k, Activation: gnn.Tanh(), Seed: 7}

	// The Default registry is cumulative across the test binary, so measure
	// this run as a delta between snapshots.
	before := metrics.Default.Snapshot().CounterFamily("agnn_comm_bytes_total")
	dist.Run(p, func(c *dist.Comm) {
		e, err := distgnn.NewGlobalEngine(c, a, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		e.Forward(e.SliceOwnedBlock(h), false)
	})
	after := metrics.Default.Snapshot().CounterFamily("agnn_comm_bytes_total")

	var maxWords float64
	ranks := 0
	for rank, bytes := range after {
		if d := bytes - before[rank]; d > 0 {
			ranks++
			if w := float64(d) / 8; w > maxWords {
				maxWords = w
			}
		}
	}
	if ranks != p {
		t.Fatalf("registry saw traffic from %d ranks, want %d", ranks, p)
	}

	predicted := float64(layers) * GlobalVolume(n, k, p)
	v := ValidateComm(predicted, maxWords)
	t.Logf("kronecker n=%d k=%d p=%d: predicted %.0f words, measured %.0f (ratio %.2f)",
		n, k, p, predicted, maxWords, v.Ratio)
	if !v.Within(2) {
		t.Fatalf("measured %v words vs predicted %v: ratio %.2f exceeds 2×",
			maxWords, predicted, v.Ratio)
	}
	if got := metrics.CommPredictedWords.Value(); got != predicted {
		t.Fatalf("predicted gauge = %v, want %v", got, predicted)
	}
	if got := metrics.CommMeasuredWords.Value(); got != maxWords {
		t.Fatalf("measured gauge = %v, want %v", got, maxWords)
	}
}
