package costmodel

import (
	"strings"
	"testing"
)

func TestChoosePlanSingleNode(t *testing.T) {
	p := ChoosePlan(1000, 16, 10, 1)
	if p.Layout != LayoutSingle || p.PredictedWords != 0 {
		t.Fatalf("p=1 plan: %+v", p)
	}
	if !strings.Contains(p.String(), "single-node") {
		t.Fatal("String() wrong")
	}
}

func TestChoosePlanDenseGraphPrefers2D(t *testing.T) {
	// Heavy-tail / dense: d ≫ √p → the 2D global grid must win.
	p := ChoosePlan(1<<20, 16, 2048, 64)
	if p.Layout != LayoutGrid2D {
		t.Fatalf("dense plan = %v (alts %v)", p.Layout, p.Alternatives)
	}
	if p.GridSide != 8 {
		t.Fatalf("grid side = %d", p.GridSide)
	}
}

func TestChoosePlanSparseGraphPrefersLocal(t *testing.T) {
	// Very sparse: d ≪ √p → the halo-exchange local layout moves least.
	p := ChoosePlan(1<<20, 16, 2, 256)
	if p.Layout != LayoutLocal1D {
		t.Fatalf("sparse plan = %v (alts %v)", p.Layout, p.Alternatives)
	}
}

func TestChoosePlan1DNeverBeats2DAsymptotically(t *testing.T) {
	// The no-replication 1D layout costs ≈√p/4 more than the grid, so it
	// competes at small p (at p = 16 the two tie: 4nk/√p = nk — the very
	// reason the 1.5D family interpolates replication factors) but must
	// lose for sizable p.
	for _, p := range []int{64, 256} {
		plan := ChoosePlan(1<<18, 32, 64, p)
		if plan.Layout == LayoutRows1D {
			t.Fatalf("p=%d: planner chose the 1D layout over the grid", p)
		}
		if plan.Alternatives[LayoutRows1D] <= plan.Alternatives[LayoutGrid2D] {
			t.Fatalf("p=%d: 1D volume not above 2D volume", p)
		}
	}
}

func TestChoosePlanNonSquareP(t *testing.T) {
	// p = 8: the grid evaluates at p' = 4 (side 2).
	p := ChoosePlan(1<<16, 16, 512, 8)
	if p.GridSide != 2 {
		t.Fatalf("grid side for p=8: %d", p.GridSide)
	}
	if p.Alternatives[LayoutGrid2D] != GlobalVolume(1<<16, 16, 4) {
		t.Fatal("non-square grid volume not evaluated at the square subset")
	}
}

func TestChoosePlanReportsAllAlternatives(t *testing.T) {
	p := ChoosePlan(10000, 16, 32, 16)
	for _, l := range []Layout{LayoutGrid2D, LayoutRows1D, LayoutLocal1D} {
		if _, ok := p.Alternatives[l]; !ok {
			t.Fatalf("missing alternative %v", l)
		}
	}
	if !strings.Contains(p.String(), "words/rank/layer") {
		t.Fatalf("String() = %q", p.String())
	}
}
