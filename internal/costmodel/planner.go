package costmodel

import "fmt"

// This file plays the role of the paper's SOAP stage (Figure 4): given the
// problem parameters, it derives the execution plan — which formulation to
// run and on what layout — by minimizing the modeled per-processor
// communication volume. The paper derives the parametric distribution
// automatically from the data-access sets; here the candidate space is the
// three implemented layouts and the closed-form volumes of Section 7.

// Layout identifies an implemented execution strategy.
type Layout string

// Layouts.
const (
	LayoutSingle  Layout = "single-node"    // p == 1
	LayoutGrid2D  Layout = "global-2d-grid" // distgnn.GlobalEngine
	LayoutRows1D  Layout = "global-1d-rows" // distgnn.RowEngine (no replication)
	LayoutLocal1D Layout = "local-1d-halo"  // distgnn.LocalEngine
)

// Plan is the chosen execution strategy with its predicted per-rank volume.
type Plan struct {
	Layout         Layout
	GridSide       int     // √p for LayoutGrid2D
	PredictedWords float64 // per processor per layer
	Alternatives   map[Layout]float64
}

// rowsVolume is the 1D A-stationary layout's per-layer volume: a full
// feature allgather, Θ(nk) words per rank (ring algorithm ≈ nk).
func rowsVolume(n, k, p int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(n) * float64(k)
}

// ChoosePlan picks the minimum-volume layout for an L-layer A-GNN on a
// graph with n vertices, maximum degree d, feature width k, and p
// processors. The 2D grid requires a perfect-square p; when p is not
// square, the planner evaluates the largest square p' ≤ p and scales the
// prediction accordingly (idle ranks are wasted, which the volume reflects
// by using p').
func ChoosePlan(n, k, d, p int) Plan {
	if p <= 1 {
		return Plan{Layout: LayoutSingle, Alternatives: map[Layout]float64{LayoutSingle: 0}}
	}
	side := 1
	for (side+1)*(side+1) <= p {
		side++
	}
	pSquare := side * side

	alts := map[Layout]float64{
		LayoutGrid2D:  GlobalVolume(n, k, pSquare),
		LayoutRows1D:  rowsVolume(n, k, p),
		LayoutLocal1D: LocalVolume(n, k, d, p),
	}
	best := LayoutGrid2D
	for l, v := range alts {
		if v < alts[best] {
			best = l
		}
	}
	return Plan{Layout: best, GridSide: side, PredictedWords: alts[best], Alternatives: alts}
}

// String renders the plan for reporting.
func (p Plan) String() string {
	if p.Layout == LayoutSingle {
		return "single-node (p=1, no communication)"
	}
	return fmt.Sprintf("%s (predicted %.0f words/rank/layer)", p.Layout, p.PredictedWords)
}
