// Wire-time α-β model: the costmodel's volume bounds count words, but a
// real socket transport pays a per-frame latency (α) on top of the
// per-byte bandwidth cost (β). This file closes the loop for the TCP
// transport of internal/dist/net: predict wall-clock wire time from the
// frame and byte counters the transport keeps (WireStats), compare against
// the measured cumulative write time, and publish both sides to the live
// metrics registry. The package stays import-free of internal/dist — the
// caller passes plain counters, keeping the model a pure policy object.

package costmodel

import (
	"agnn/internal/obs/metrics"
)

// Loopback defaults: α dominated by syscall + scheduler handoff, β by
// memcpy through the loopback queue. These are deliberately conservative
// order-of-magnitude figures for validation runs, not calibrated
// constants — FitAlphaBeta derives machine-specific values from two
// measurements when available.
const (
	DefaultAlphaSeconds    = 10e-6   // ≈10µs per frame (send syscall + wakeup)
	DefaultBetaSecPerByte  = 0.25e-9 // ≈4 GB/s effective loopback bandwidth
	DefaultWireTimeSlackUp = 50.0    // accepted measured/predicted spread, either direction
)

// WireModel is the classic α-β (latency-bandwidth) point-to-point cost
// model: sending one frame of b bytes takes α + β·b seconds.
type WireModel struct {
	AlphaSeconds   float64 // fixed per-frame cost
	BetaSecPerByte float64 // marginal per-byte cost
}

// DefaultWireModel returns loopback-tuned constants.
func DefaultWireModel() WireModel {
	return WireModel{AlphaSeconds: DefaultAlphaSeconds, BetaSecPerByte: DefaultBetaSecPerByte}
}

// PredictSeconds returns the modeled wall-clock seconds to push the given
// frame and byte counts through one socket, serially: frames·α + bytes·β.
func (m WireModel) PredictSeconds(frames, bytes int64) float64 {
	if frames < 0 {
		frames = 0
	}
	if bytes < 0 {
		bytes = 0
	}
	return float64(frames)*m.AlphaSeconds + float64(bytes)*m.BetaSecPerByte
}

// FitAlphaBeta solves the two-point system for α and β from two
// measurements at different frame/byte mixes (e.g. a many-small-frames
// phase and a few-large-frames phase). Returns ok=false when the system is
// degenerate (same mix in both measurements) or yields a non-physical
// (negative) coefficient — callers should fall back to DefaultWireModel.
func FitAlphaBeta(frames1, bytes1 int64, sec1 float64, frames2, bytes2 int64, sec2 float64) (WireModel, bool) {
	f1, b1 := float64(frames1), float64(bytes1)
	f2, b2 := float64(frames2), float64(bytes2)
	det := f1*b2 - f2*b1
	if det == 0 {
		return WireModel{}, false
	}
	alpha := (sec1*b2 - sec2*b1) / det
	beta := (f1*sec2 - f2*sec1) / det
	if alpha < 0 || beta < 0 {
		return WireModel{}, false
	}
	return WireModel{AlphaSeconds: alpha, BetaSecPerByte: beta}, true
}

// ValidateWire compares the α-β prediction for one rank's transmit
// counters against the measured cumulative socket-write time, publishes
// both sides (agnn_wire_predicted_seconds / agnn_wire_measured_seconds),
// and returns the comparison. measuredSeconds is WireStats.WriteNanos
// converted to seconds.
func ValidateWire(m WireModel, framesTx, bytesTx int64, measuredSeconds float64) TimeValidation {
	predicted := m.PredictSeconds(framesTx, bytesTx)
	metrics.WirePredictedSeconds.Set(predicted)
	metrics.WireMeasuredSeconds.Set(measuredSeconds)
	v := TimeValidation{PredictedSeconds: predicted, MeasuredSeconds: measuredSeconds}
	if predicted > 0 {
		v.Ratio = measuredSeconds / predicted
	}
	return v
}
