package costmodel

import (
	"math"

	"agnn/internal/obs/metrics"
)

// This file extends the Section 7 volume analysis from *words* to *wall
// time*: with chunked collectives and arrival-gated plan fragments
// (internal/dist.AllgatherChunks + fuse.PartitionedPlan), part of a layer's
// communication no longer sits on the critical path. The model below is the
// standard overlap bound — communication can hide behind compute only up to
// the amount of compute that does not depend on in-flight data.

// SequentialLayerTime is the non-overlapped per-layer wall time: the
// collective completes before any compute starts, so the two terms add.
func SequentialLayerTime(computeSec, commSec float64) float64 {
	return computeSec + commSec
}

// OverlappedLayerTime is the overlap-adjusted per-layer wall time.
// overlappable is the fraction of the layer's compute that can run while
// the collective is still in flight — for the arrival-gated row plans this
// is bounded below by fuse.PartitionedPlan.LocalFraction (rank-resident
// rows) and above by 1 − the work gated on the final chunk. The hideable
// time is min(overlappable·compute, comm): overlap cannot hide more
// communication than exists, nor more than the eligible compute covers.
func OverlappedLayerTime(computeSec, commSec, overlappable float64) float64 {
	overlappable = math.Max(0, math.Min(1, overlappable))
	hidden := math.Min(overlappable*computeSec, commSec)
	return computeSec + commSec - hidden
}

// PredictedHiddenSeconds is the model's counterpart of the measured
// agnn_overlap_hidden_seconds gauge for one layer.
func PredictedHiddenSeconds(computeSec, commSec, overlappable float64) float64 {
	return SequentialLayerTime(computeSec, commSec) -
		OverlappedLayerTime(computeSec, commSec, overlappable)
}

// TimeValidation is the latency-side counterpart of Validation: predicted
// vs measured mean per-layer wall time.
type TimeValidation struct {
	PredictedSeconds float64 `json:"predicted_seconds"`
	MeasuredSeconds  float64 `json:"measured_seconds"`
	Ratio            float64 `json:"ratio"` // measured / predicted; 0 when nothing was predicted
}

// Within reports whether the measurement is within factor f of the
// prediction in either direction.
func (v TimeValidation) Within(f float64) bool {
	return WithinFactor(v.MeasuredSeconds, v.PredictedSeconds, f)
}

// ValidateTime compares a predicted mean per-layer wall time against the
// measured one and publishes both sides to the live metrics registry
// (agnn_layer_predicted_seconds / agnn_layer_measured_seconds) — the
// latency-side closed loop that ValidateComm provides for volumes.
func ValidateTime(predictedSec, measuredSec float64) TimeValidation {
	metrics.LayerPredictedSeconds.Set(predictedSec)
	metrics.LayerMeasuredSeconds.Set(measuredSec)
	v := TimeValidation{PredictedSeconds: predictedSec, MeasuredSeconds: measuredSec}
	if predictedSec > 0 {
		v.Ratio = measuredSec / predictedSec
	}
	return v
}

// ValidateCriticalPath compares the α-β-γ model's predicted epoch time
// against the measured cross-rank critical path (internal/obs/causal) and
// publishes both sides as agnn_critpath_predicted_seconds /
// agnn_critpath_measured_seconds. Where ValidateTime checks mean layer
// latency, this checks the end-to-end dependency chain: a ratio well above
// 1 with a low per-layer ratio means the slowdown is in waits between
// layers (stragglers, serialization), not in the kernels themselves.
func ValidateCriticalPath(predictedSec, measuredSec float64) TimeValidation {
	metrics.CritPathPredictedSeconds.Set(predictedSec)
	metrics.CritPathMeasuredSeconds.Set(measuredSec)
	v := TimeValidation{PredictedSeconds: predictedSec, MeasuredSeconds: measuredSec}
	if predictedSec > 0 {
		v.Ratio = measuredSec / predictedSec
	}
	return v
}
