package costmodel

import (
	"math/rand"
	"strings"
	"testing"

	"agnn/internal/gnn"
	"agnn/internal/graph"
	"agnn/internal/tensor"
)

// TestProfilePlanReadsCompiledCounts: the cost model must report the op
// counts of the plan the runtime actually executes — including the
// Section 6.2 fusion savings — rather than estimating them from the model
// kind.
func TestProfilePlanReadsCompiledCounts(t *testing.T) {
	a := graph.ErdosRenyi(30, 90, 1)
	at := a.Transpose()
	rng := rand.New(rand.NewSource(2))
	h := tensor.RandN(30, 4, 1, rng)

	agnn := gnn.NewAGNNLayer(a, at, 4, 3, gnn.Tanh(), rng)
	agnn.Forward(h, true)
	prof := ProfilePlan(agnn.Plan())
	if !prof.Train {
		t.Fatal("AGNN layer plan must be a training plan")
	}
	// AGNN forward: rownorm, mm, fused attention (sampling+softmax+spmm in
	// one sweep), sigma = 4.
	if prof.ForwardKernels != 4 {
		t.Fatalf("AGNN forward kernels = %d, want 4", prof.ForwardKernels)
	}
	if prof.AttnFused != 1 {
		t.Fatalf("AGNN attn-fused count = %d, want 1", prof.AttnFused)
	}
	if prof.BackwardKernels == 0 {
		t.Fatal("training plan must report backward kernels")
	}
	// The virtual chain HHᵀ ⊘ nnᵀ scaled by β is fully fused (4 virtual
	// nodes), and the softmax folded into the sampling sweep.
	if prof.FusedVirtual != 4 || prof.SoftmaxFused != 1 {
		t.Fatalf("AGNN fusion counts = (%d, %d), want (4, 1)",
			prof.FusedVirtual, prof.SoftmaxFused)
	}
	if prof.WorkspaceBytes <= 0 {
		t.Fatal("compiled plan must hold preallocated workspace")
	}
	if prof.KernelInvocations() != prof.ForwardKernels+prof.BackwardKernels {
		t.Fatal("KernelInvocations mismatch")
	}
	s := prof.String()
	for _, want := range []string{"agnn", "train", "fused-attn"} {
		if !strings.Contains(s, want) {
			t.Fatalf("profile string missing %q: %s", want, s)
		}
	}

	gat := gnn.NewGATLayer(a, at, 4, 3, gnn.Tanh(), 0.2, rng)
	gat.Forward(h, true)
	gprof := ProfilePlan(gat.Plan())
	// GAT forward: mm, matvec×2, fused attention, sigma = 5.
	if gprof.ForwardKernels != 5 {
		t.Fatalf("GAT forward kernels = %d, want 5", gprof.ForwardKernels)
	}
	if gprof.OpCounts["matvec"] != 2 {
		t.Fatalf("GAT matvec count = %d, want 2", gprof.OpCounts["matvec"])
	}
}
