package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCOOTextRoundtrip(t *testing.T) {
	a := Kronecker(6, 4, 1)
	var buf bytes.Buffer
	if err := WriteCOOText(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadCOOText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows > a.Rows || b.NNZ() != a.NNZ() {
		t.Fatalf("roundtrip shape %d/%d nnz %d/%d", b.Rows, a.Rows, b.NNZ(), a.NNZ())
	}
	for p := range a.Col {
		if a.Col[p] != b.Col[p] {
			t.Fatal("roundtrip column mismatch")
		}
	}
}

func TestReadCOOTextSkipsComments(t *testing.T) {
	in := "# SNAP header\n% matrix market\n0 1\n1 0\n\n2 0\n"
	a, err := ReadCOOText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 3 || a.NNZ() != 3 {
		t.Fatalf("parsed %d vertices %d edges", a.Rows, a.NNZ())
	}
}

func TestReadCOOTextRejectsBadLines(t *testing.T) {
	if _, err := ReadCOOText(strings.NewReader("0 x\n")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadCOOText(strings.NewReader("-1 2\n")); err == nil {
		t.Fatal("expected negative-id error")
	}
}

func TestCOOBinaryRoundtripPreservesValues(t *testing.T) {
	a := NormalizeGCN(Kronecker(6, 4, 2)) // non-unit values
	var buf bytes.Buffer
	if err := WriteCOOBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadCOOBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != a.Rows || b.NNZ() != a.NNZ() {
		t.Fatal("binary roundtrip shape mismatch")
	}
	for p := range a.Val {
		if a.Val[p] != b.Val[p] || a.Col[p] != b.Col[p] {
			t.Fatal("binary roundtrip content mismatch")
		}
	}
}

func TestReadCOOBinaryBadMagic(t *testing.T) {
	if _, err := ReadCOOBinary(bytes.NewReader([]byte("NOTMAGICethpadding"))); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	a := Kronecker(5, 4, 3)
	for _, name := range []string{"g.el", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, a); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.NNZ() != a.NNZ() {
			t.Fatalf("%s: nnz %d != %d", name, b.NNZ(), a.NNZ())
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
