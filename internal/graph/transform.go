package graph

import (
	"math"

	"agnn/internal/sparse"
)

// AddSelfLoops returns Â = A + I: the N̂(v) = N(v) ∪ {v} neighborhood used
// by GAT and GCN. Entries already on the diagonal are preserved (the union
// pattern merge keeps one entry per position).
func AddSelfLoops(a *sparse.CSR) *sparse.CSR {
	if a.Rows != a.Cols {
		panic("graph: AddSelfLoops needs a square matrix")
	}
	return a.Add(sparse.Identity(a.Rows)).Apply(func(v float64) float64 {
		if v != 0 {
			return 1
		}
		return 0
	})
}

// Symmetrize returns the pattern of A + Aᵀ with unit values.
func Symmetrize(a *sparse.CSR) *sparse.CSR {
	return a.AddTranspose().Apply(func(v float64) float64 {
		if v != 0 {
			return 1
		}
		return 0
	})
}

// RemoveSelfLoops drops diagonal entries.
func RemoveSelfLoops(a *sparse.CSR) *sparse.CSR {
	coo := sparse.NewCOO(a.Rows, a.Cols, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if int(a.Col[p]) != i {
				coo.AppendVal(int32(i), a.Col[p], a.Val[p])
			}
		}
	}
	return sparse.FromCOO(coo)
}

// NormalizeGCN returns D̂^{-1/2}·Â·D̂^{-1/2} with Â = A + I — the symmetric
// normalization of the GCN model (1/sqrt(d_v·d_u) edge coefficients of the
// paper's C-GNN local formulation). The result is the "normalized adjacency
// matrix" the paper folds into the symbol A.
func NormalizeGCN(a *sparse.CSR) *sparse.CSR {
	ah := AddSelfLoops(a)
	deg := ah.RowSums()
	inv := make([]float64, len(deg))
	for i, d := range deg {
		if d > 0 {
			inv[i] = 1 / math.Sqrt(d)
		}
	}
	return ah.ScaleRowsCols(inv, inv)
}

// NormalizeRW returns D^{-1}·A — the random-walk (mean) normalization.
func NormalizeRW(a *sparse.CSR) *sparse.CSR {
	deg := a.RowSums()
	inv := make([]float64, len(deg))
	for i, d := range deg {
		if d > 0 {
			inv[i] = 1 / d
		}
	}
	return a.ScaleRows(inv)
}

// Degrees returns the out-degree (row nnz) of every vertex.
func Degrees(a *sparse.CSR) []int {
	out := make([]int, a.Rows)
	for i := range out {
		out[i] = a.RowNNZ(i)
	}
	return out
}

// Stats summarizes the structural properties the paper's experiments are
// parameterized by.
type Stats struct {
	N, M      int     // vertices, directed non-zeros
	MaxDeg    int     // d in the communication bounds
	AvgDeg    float64 // m/n
	Density   float64 // ρ = m/n²
	Isolated  int     // vertices with no neighbors
	Symmetric bool    // pattern symmetry
}

// Summarize computes Stats for an adjacency matrix.
func Summarize(a *sparse.CSR) Stats {
	st := Stats{N: a.Rows, M: a.NNZ()}
	for i := 0; i < a.Rows; i++ {
		d := a.RowNNZ(i)
		if d > st.MaxDeg {
			st.MaxDeg = d
		}
		if d == 0 {
			st.Isolated++
		}
	}
	if st.N > 0 {
		st.AvgDeg = float64(st.M) / float64(st.N)
		st.Density = float64(st.M) / (float64(st.N) * float64(st.N))
	}
	st.Symmetric = a.IsSymmetricPattern()
	return st
}
