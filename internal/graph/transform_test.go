package graph

import (
	"math"
	"testing"

	"agnn/internal/sparse"
)

func pathGraph(n int) *sparse.CSR {
	c := sparse.NewCOO(n, n, 2*(n-1))
	for i := 0; i < n-1; i++ {
		c.Append(int32(i), int32(i+1))
		c.Append(int32(i+1), int32(i))
	}
	return sparse.FromCOO(c)
}

func TestAddSelfLoops(t *testing.T) {
	a := pathGraph(4)
	ah := AddSelfLoops(a)
	d := ah.ToDense()
	for i := 0; i < 4; i++ {
		if d.At(i, i) != 1 {
			t.Fatalf("missing self loop at %d", i)
		}
	}
	if ah.NNZ() != a.NNZ()+4 {
		t.Fatalf("nnz = %d", ah.NNZ())
	}
	// Idempotent on the pattern: adding again keeps value 1.
	ah2 := AddSelfLoops(ah)
	if ah2.NNZ() != ah.NNZ() {
		t.Fatal("AddSelfLoops not idempotent on pattern")
	}
	for _, v := range ah2.Val {
		if v != 1 {
			t.Fatal("self loop value must stay 1")
		}
	}
}

func TestRemoveSelfLoops(t *testing.T) {
	ah := AddSelfLoops(pathGraph(4))
	a := RemoveSelfLoops(ah)
	d := a.ToDense()
	for i := 0; i < 4; i++ {
		if d.At(i, i) != 0 {
			t.Fatal("self loop survived removal")
		}
	}
}

func TestSymmetrize(t *testing.T) {
	c := sparse.NewCOO(3, 3, 1)
	c.Append(0, 2)
	a := sparse.FromCOO(c)
	s := Symmetrize(a)
	if !s.IsSymmetricPattern() {
		t.Fatal("Symmetrize result not symmetric")
	}
	if s.ToDense().At(2, 0) != 1 || s.ToDense().At(0, 2) != 1 {
		t.Fatal("values must be unit")
	}
}

func TestNormalizeGCN(t *testing.T) {
	a := pathGraph(3) // degrees with self loops: 2, 3, 2
	n := NormalizeGCN(a)
	d := n.ToDense()
	// Entry (0,1) = 1/sqrt(2·3).
	if math.Abs(d.At(0, 1)-1/math.Sqrt(6)) > 1e-12 {
		t.Fatalf("normalized (0,1) = %v", d.At(0, 1))
	}
	if math.Abs(d.At(0, 0)-0.5) > 1e-12 {
		t.Fatalf("normalized (0,0) = %v", d.At(0, 0))
	}
	// Symmetric normalization keeps symmetry.
	if !n.ToDense().ApproxEqual(n.ToDense().T(), 1e-14) {
		t.Fatal("GCN normalization must be symmetric")
	}
}

func TestNormalizeRW(t *testing.T) {
	a := pathGraph(3)
	n := NormalizeRW(a)
	rows := n.RowSums()
	for i, v := range rows {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("row %d of D⁻¹A sums to %v", i, v)
		}
	}
}

func TestDegreesAndSummarize(t *testing.T) {
	a := pathGraph(5)
	deg := Degrees(a)
	want := []int{1, 2, 2, 2, 1}
	for i := range want {
		if deg[i] != want[i] {
			t.Fatalf("degree[%d] = %d, want %d", i, deg[i], want[i])
		}
	}
	st := Summarize(a)
	if st.MaxDeg != 2 || st.N != 5 || st.M != 8 || !st.Symmetric || st.Isolated != 0 {
		t.Fatalf("bad stats %+v", st)
	}
	if math.Abs(st.Density-8.0/25) > 1e-12 {
		t.Fatalf("density %v", st.Density)
	}
}
