package graph

import (
	"fmt"
	"math"

	"agnn/internal/sparse"
)

// Partition describes a contiguous 1D block partition of [0, n) into p
// ranges, the vertex ownership scheme of the distributed local baseline.
type Partition struct {
	N, P   int
	Bounds []int // len P+1, Bounds[r]..Bounds[r+1] owned by rank r
}

// Partition1D splits n vertices into p nearly equal contiguous blocks.
func Partition1D(n, p int) Partition {
	if p < 1 || n < 0 {
		panic(fmt.Sprintf("graph: Partition1D(%d, %d)", n, p))
	}
	bounds := make([]int, p+1)
	base, rem := n/p, n%p
	for r := 0; r < p; r++ {
		sz := base
		if r < rem {
			sz++
		}
		bounds[r+1] = bounds[r] + sz
	}
	return Partition{N: n, P: p, Bounds: bounds}
}

// Owner returns the rank owning vertex v.
func (pt Partition) Owner(v int) int {
	lo, hi := 0, pt.P
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if pt.Bounds[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Range returns the [lo, hi) vertex range of rank r.
func (pt Partition) Range(r int) (int, int) { return pt.Bounds[r], pt.Bounds[r+1] }

// SquareGrid returns s = √p for a perfect-square process count, or an error
// describing the requirement. The theoretical analysis (Section 7.1) and
// the distributed global engine slice A into √p × √p blocks.
func SquareGrid(p int) (int, error) {
	s := int(math.Round(math.Sqrt(float64(p))))
	if s*s != p {
		return 0, fmt.Errorf("graph: process count %d is not a perfect square", p)
	}
	return s, nil
}

// PadTo returns the smallest multiple of b that is >= n.
func PadTo(n, b int) int {
	if b <= 0 {
		panic("graph: PadTo with non-positive block")
	}
	return (n + b - 1) / b * b
}

// InducedSubgraph extracts the subgraph induced by the given (distinct)
// global vertex ids: entry (x, y) of the result carries a's (vertices[x],
// vertices[y]) value. This is the global-formulation side of mini-batching:
// the paper notes its routines "straightforwardly extend to mini-batching",
// and running any gnn model on the induced adjacency of an expanded seed
// batch is exactly that extension.
func InducedSubgraph(a *sparse.CSR, vertices []int32) *sparse.CSR {
	localID := make(map[int32]int32, len(vertices))
	for li, v := range vertices {
		if _, dup := localID[v]; dup {
			panic("graph: InducedSubgraph with duplicate vertex ids")
		}
		localID[v] = int32(li)
	}
	coo := sparse.NewCOO(len(vertices), len(vertices), len(vertices)*4)
	for li, v := range vertices {
		for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
			if lj, ok := localID[a.Col[p]]; ok {
				coo.AppendVal(int32(li), lj, a.Val[p])
			}
		}
	}
	return sparse.FromCOO(coo)
}

// Block2D extracts the dense-grid block (bi, bj) of a as a standalone CSR
// of size bs×bs, padding with empty rows/columns beyond a's bounds. Block
// (bi, bj) covers global rows [bi·bs, (bi+1)·bs) and columns
// [bj·bs, (bj+1)·bs). This realizes the 2D distribution of the adjacency
// matrix over the process grid.
func Block2D(a *sparse.CSR, bi, bj, bs int) *sparse.CSR {
	coo := sparse.NewCOO(bs, bs, a.NNZ()/((a.Rows/bs)+1)+1)
	rLo, rHi := bi*bs, (bi+1)*bs
	cLo, cHi := bj*bs, (bj+1)*bs
	if rLo >= a.Rows {
		return sparse.FromCOO(coo)
	}
	if rHi > a.Rows {
		rHi = a.Rows
	}
	for i := rLo; i < rHi; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := int(a.Col[p])
			if j >= cLo && j < cHi {
				coo.AppendVal(int32(i-rLo), int32(j-cLo), a.Val[p])
			}
		}
	}
	return sparse.FromCOO(coo)
}
