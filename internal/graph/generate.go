// Package graph provides the graph substrate: synthetic generators matching
// the paper's datasets (Graph500-style Kronecker graphs with heavy-tail
// degree skew, Erdős–Rényi random-uniform graphs, and an MAKG-like preset),
// COO file I/O replacing the artifact's .npz loading, structural
// transformations, degree statistics, and the partitioners used by the
// distributed engines.
package graph

import (
	"fmt"
	"math"
	"math/rand"

	"agnn/internal/sparse"
)

// Kronecker generates an undirected Graph500-style Kronecker graph with
// 2^scale vertices and approximately edgeFactor·2^scale undirected edges
// (before deduplication). It follows the Graph500 reference recipe the
// paper's artifact strips down: per-edge recursive quadrant sampling with
// initiator probabilities (A, B, C, D) = (0.57, 0.19, 0.19, 0.05),
// symmetrization, duplicate and self-loop removal, and a final pass that
// connects every isolated vertex so each vertex has at least one neighbor.
func Kronecker(scale int, edgeFactor float64, seed int64) *sparse.CSR {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("graph: Kronecker scale %d out of range [1,30]", scale))
	}
	n := 1 << scale
	m := int(edgeFactor * float64(n))
	rng := rand.New(rand.NewSource(seed))
	const a, b, c = 0.57, 0.19, 0.19 // d = 0.05

	coo := sparse.NewCOO(n, n, 2*m+n)
	for e := 0; e < m; e++ {
		var i, j int32
		for lvl := 0; lvl < scale; lvl++ {
			r := rng.Float64()
			switch {
			case r < a:
				// quadrant (0,0)
			case r < a+b:
				j |= 1 << lvl
			case r < a+b+c:
				i |= 1 << lvl
			default:
				i |= 1 << lvl
				j |= 1 << lvl
			}
		}
		if i == j {
			continue // drop self loops
		}
		coo.Append(i, j)
		coo.Append(j, i) // symmetrize
	}
	s := sparse.FromCOO(coo) // sorts + removes duplicates
	return connectIsolated(s, rng)
}

// ErdosRenyi generates an undirected Erdős–Rényi graph with n vertices and
// approximately m undirected edges sampled uniformly without replacement
// (the paper's "random uniform degree distribution" datasets). Self loops
// are excluded and every vertex ends up with at least one neighbor.
func ErdosRenyi(n, m int, seed int64) *sparse.CSR {
	if n < 2 {
		panic("graph: ErdosRenyi needs n >= 2")
	}
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n, 2*m+n)
	if float64(m) > 0.25*float64(maxM) {
		// Dense regime: Bernoulli per pair with q = m/maxM.
		q := float64(m) / float64(maxM)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < q {
					coo.Append(int32(i), int32(j))
					coo.Append(int32(j), int32(i))
				}
			}
		}
	} else {
		// Sparse regime: rejection sampling of distinct pairs.
		seen := make(map[uint64]struct{}, m)
		for len(seen) < m {
			i := rng.Intn(n)
			j := rng.Intn(n)
			if i == j {
				continue
			}
			if i > j {
				i, j = j, i
			}
			key := uint64(i)<<32 | uint64(j)
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			coo.Append(int32(i), int32(j))
			coo.Append(int32(j), int32(i))
		}
	}
	s := sparse.FromCOO(coo)
	return connectIsolated(s, rng)
}

// MAKGSim generates a scaled-down stand-in for the Microsoft Academic
// Knowledge Graph (111M vertices, 3.2B edges, average degree ≈ 29 when
// counted as directed non-zeros). The paper's MAKG experiments depend on
// its heavy-tail degree distribution and density; this preset reproduces
// both via a Kronecker graph with edge factor 14.5 (≈ 29 non-zeros per
// vertex after symmetrization).
func MAKGSim(scale int, seed int64) *sparse.CSR {
	return Kronecker(scale, 14.5, seed)
}

// PlantedPartition generates a graph with `classes` equally sized vertex
// communities: intra-community edges appear with probability pIn and
// inter-community edges with pOut. It returns the adjacency matrix and the
// ground-truth community label per vertex — the synthetic citation-network
// workload of examples/citation.
func PlantedPartition(n, classes int, pIn, pOut float64, seed int64) (*sparse.CSR, []int) {
	if classes < 1 || n < classes {
		panic("graph: PlantedPartition needs 1 <= classes <= n")
	}
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % classes
	}
	coo := sparse.NewCOO(n, n, int(float64(n*n)*pIn/float64(classes))+n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pOut
			if labels[i] == labels[j] {
				p = pIn
			}
			if rng.Float64() < p {
				coo.Append(int32(i), int32(j))
				coo.Append(int32(j), int32(i))
			}
		}
	}
	return connectIsolated(sparse.FromCOO(coo), rng), labels
}

// connectIsolated adds one undirected edge from each isolated vertex to a
// uniformly random other vertex, matching the artifact's post-processing.
func connectIsolated(s *sparse.CSR, rng *rand.Rand) *sparse.CSR {
	n := s.Rows
	var isolated []int32
	for i := 0; i < n; i++ {
		if s.RowNNZ(i) == 0 {
			isolated = append(isolated, int32(i))
		}
	}
	if len(isolated) == 0 {
		return s
	}
	coo := sparse.NewCOO(n, n, s.NNZ()+2*len(isolated))
	for i := 0; i < n; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			coo.Append(int32(i), s.Col[p])
		}
	}
	for _, i := range isolated {
		j := int32(rng.Intn(n - 1))
		if j >= i {
			j++
		}
		coo.Append(i, j)
		coo.Append(j, i)
	}
	return sparse.FromCOO(coo)
}

// KroneckerEdges returns the number of directed non-zeros to request from
// the Kronecker generator to approximate the paper's per-figure edge counts
// m at a scaled-down vertex count: it preserves density ρ = m/n².
func ScaledEdges(paperVertices, paperEdges, ourVertices int) int {
	rho := float64(paperEdges) / (float64(paperVertices) * float64(paperVertices))
	m := rho * float64(ourVertices) * float64(ourVertices)
	return int(math.Max(m, float64(ourVertices)))
}
