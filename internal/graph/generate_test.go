package graph

import (
	"math"
	"testing"
)

func TestKroneckerBasicProperties(t *testing.T) {
	a := Kronecker(8, 8, 42)
	st := Summarize(a)
	if st.N != 256 {
		t.Fatalf("n = %d, want 256", st.N)
	}
	if st.Isolated != 0 {
		t.Fatalf("%d isolated vertices after post-processing", st.Isolated)
	}
	if !st.Symmetric {
		t.Fatal("Kronecker graph must be symmetric")
	}
	if st.M == 0 || st.M > 2*8*256+2*256 {
		t.Fatalf("unexpected edge count %d", st.M)
	}
	// No self loops.
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if int(a.Col[p]) == i {
				t.Fatalf("self loop at %d", i)
			}
		}
	}
}

func TestKroneckerDeterministic(t *testing.T) {
	a := Kronecker(7, 6, 7)
	b := Kronecker(7, 6, 7)
	if a.NNZ() != b.NNZ() {
		t.Fatal("Kronecker not deterministic")
	}
	for p := range a.Col {
		if a.Col[p] != b.Col[p] {
			t.Fatal("Kronecker not deterministic")
		}
	}
	c := Kronecker(7, 6, 8)
	if c.NNZ() == a.NNZ() {
		same := true
		for p := range a.Col {
			if a.Col[p] != c.Col[p] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestKroneckerHeavyTail(t *testing.T) {
	// The Kronecker model must produce a skewed degree distribution:
	// max degree far above average.
	a := Kronecker(10, 16, 1)
	st := Summarize(a)
	if float64(st.MaxDeg) < 4*st.AvgDeg {
		t.Fatalf("degree distribution not heavy-tailed: max %d avg %.1f", st.MaxDeg, st.AvgDeg)
	}
}

func TestKroneckerScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Kronecker(0, 8, 1)
}

func TestErdosRenyiProperties(t *testing.T) {
	n, m := 500, 3000
	a := ErdosRenyi(n, m, 9)
	st := Summarize(a)
	if st.N != n || st.Isolated != 0 || !st.Symmetric {
		t.Fatalf("bad ER stats %+v", st)
	}
	// Directed nnz ≈ 2m (plus isolated-vertex repair edges).
	if st.M < 2*m || st.M > 2*m+2*n {
		t.Fatalf("nnz = %d, want ≈ %d", st.M, 2*m)
	}
	// Uniform-ish degrees: max degree should be within a small factor of avg.
	if float64(st.MaxDeg) > 5*st.AvgDeg {
		t.Fatalf("ER degrees too skewed: max %d avg %.1f", st.MaxDeg, st.AvgDeg)
	}
}

func TestErdosRenyiDenseRegime(t *testing.T) {
	n := 60
	m := n * (n - 1) / 3 // > 25% of max → Bernoulli path
	a := ErdosRenyi(n, m, 10)
	st := Summarize(a)
	if st.N != n || !st.Symmetric || st.Isolated != 0 {
		t.Fatalf("bad dense ER stats %+v", st)
	}
	got := float64(st.M) / 2
	if math.Abs(got-float64(m)) > 0.3*float64(m) {
		t.Fatalf("dense ER edges %v, want ≈ %d", got, m)
	}
}

func TestErdosRenyiCapsAtCompleteGraph(t *testing.T) {
	n := 10
	a := ErdosRenyi(n, 1000, 11) // request more than n(n-1)/2
	if a.NNZ() > n*(n-1) {
		t.Fatalf("nnz %d exceeds complete graph", a.NNZ())
	}
}

func TestMAKGSimDensity(t *testing.T) {
	a := MAKGSim(10, 3)
	st := Summarize(a)
	// Average degree should land near MAKG's ≈29 (symmetrized, pre-dedup
	// 2·14.5; duplicate removal on a small graph loses some).
	if st.AvgDeg < 15 || st.AvgDeg > 30 {
		t.Fatalf("MAKGSim avg degree %.1f outside [15,30]", st.AvgDeg)
	}
	if !st.Symmetric || st.Isolated != 0 {
		t.Fatal("MAKGSim must be symmetric with no isolated vertices")
	}
}

func TestPlantedPartition(t *testing.T) {
	n, classes := 120, 4
	a, labels := PlantedPartition(n, classes, 0.2, 0.01, 5)
	if len(labels) != n {
		t.Fatal("labels length")
	}
	// Count intra vs inter edges: intra should dominate per-pair rate.
	intra, inter := 0, 0
	for i := 0; i < n; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if labels[i] == labels[int(a.Col[p])] {
				intra++
			} else {
				inter++
			}
		}
	}
	// Pairs: intra pairs ≈ n²/(2·classes), inter ≈ n²(classes-1)/(2·classes).
	intraRate := float64(intra) / (float64(n*n) / float64(classes))
	interRate := float64(inter) / (float64(n*n) * float64(classes-1) / float64(classes))
	if intraRate < 2*interRate {
		t.Fatalf("planted structure too weak: intra %.4f inter %.4f", intraRate, interRate)
	}
}

func TestScaledEdgesPreservesDensity(t *testing.T) {
	// Paper: n=131072, m=171798692 → ρ = 1%.
	m := ScaledEdges(131072, 171798692, 4096)
	rho := float64(m) / (4096.0 * 4096.0)
	if math.Abs(rho-0.01) > 0.0005 {
		t.Fatalf("scaled density %v, want 0.01", rho)
	}
	if ScaledEdges(1000, 1, 100) < 100 {
		t.Fatal("ScaledEdges must be at least n")
	}
}
