package graph

import (
	"bytes"
	"testing"
)

// Fuzz targets for the three file-format parsers. Under plain `go test`
// only the seed corpus runs (as regression tests); `go test -fuzz=FuzzX`
// explores further. The invariant in all cases: arbitrary input must yield
// an error or a valid structure — never a panic or a malformed matrix.

func FuzzReadCOOText(f *testing.F) {
	f.Add([]byte("0 1\n1 0\n"))
	f.Add([]byte("# comment\n5 5\n"))
	f.Add([]byte(""))
	f.Add([]byte("not numbers\n"))
	f.Add([]byte("1 2 3 4\n"))
	f.Add([]byte("-3 7\n"))
	f.Add([]byte("999999999 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ReadCOOText(bytes.NewReader(data))
		if err != nil {
			return
		}
		if a.Rows != a.Cols {
			t.Fatalf("parser produced non-square adjacency %d×%d", a.Rows, a.Cols)
		}
		for _, j := range a.Col {
			if int(j) >= a.Cols || j < 0 {
				t.Fatal("column index out of range")
			}
		}
	})
}

func FuzzReadCOOBinary(f *testing.F) {
	// Seed with a valid file and mutations of it.
	var buf bytes.Buffer
	if err := WriteCOOBinary(&buf, Kronecker(4, 2, 1)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("AGNNCOO1garbage"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 20 {
		corrupt[15] = 0xFF // header byte
	}
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ReadCOOBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if a.Rows < 0 || a.Cols < 0 {
			t.Fatal("negative dimensions")
		}
		for _, j := range a.Col {
			if int(j) >= a.Cols || j < 0 {
				t.Fatal("column index out of range")
			}
		}
	})
}

func FuzzReadDataset(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteDataset(&buf, SyntheticCitation(20, 2, 4, 0.5, 1)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:30])
	f.Add([]byte("AGNNDS01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDataset(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("parser returned invalid dataset: %v", err)
		}
	})
}
