package graph

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSyntheticCitationIsValid(t *testing.T) {
	d := SyntheticCitation(200, 4, 16, 0.3, 7)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Adj.Rows != 200 || d.Features.Cols != 16 || d.Classes != 4 {
		t.Fatal("shape wrong")
	}
	// Roughly trainFrac of vertices in the training mask.
	train := 0
	for _, m := range d.TrainMask {
		if m {
			train++
		}
	}
	if train < 30 || train > 90 {
		t.Fatalf("train split %d of 200 for frac 0.3", train)
	}
	// TestMask is the complement.
	tm := d.TestMask()
	for i := range tm {
		if tm[i] == d.TrainMask[i] {
			t.Fatal("TestMask not complementary")
		}
	}
}

func TestDatasetRoundtrip(t *testing.T) {
	d := SyntheticCitation(80, 3, 8, 0.5, 8)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Adj.NNZ() != d.Adj.NNZ() || got.Classes != d.Classes {
		t.Fatal("structure mismatch")
	}
	if !got.Features.ApproxEqual(d.Features, 0) {
		t.Fatal("features mismatch")
	}
	for i := range d.Labels {
		if got.Labels[i] != d.Labels[i] || got.TrainMask[i] != d.TrainMask[i] {
			t.Fatal("labels/mask mismatch")
		}
	}
}

func TestDatasetFileRoundtrip(t *testing.T) {
	d := SyntheticCitation(50, 2, 4, 0.4, 9)
	path := filepath.Join(t.TempDir(), "ds.bin")
	if err := SaveDataset(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Adj.NNZ() != d.Adj.NNZ() {
		t.Fatal("file roundtrip mismatch")
	}
	if _, err := LoadDataset(filepath.Join(t.TempDir(), "none")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDatasetValidation(t *testing.T) {
	d := SyntheticCitation(40, 3, 4, 0.5, 10)
	d.Labels[0] = 99
	if err := d.Validate(); err == nil {
		t.Fatal("bad label accepted")
	}
	d = SyntheticCitation(40, 3, 4, 0.5, 10)
	d.Labels = d.Labels[:10]
	if err := d.Validate(); err == nil {
		t.Fatal("short labels accepted")
	}
	d = SyntheticCitation(40, 3, 4, 0.5, 10)
	d.Classes = 0
	if err := d.Validate(); err == nil {
		t.Fatal("zero classes accepted")
	}
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err == nil {
		t.Fatal("WriteDataset must validate")
	}
}

func TestReadDatasetRejectsGarbage(t *testing.T) {
	if _, err := ReadDataset(bytes.NewReader([]byte("NOTADATASETFILE..."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated after header.
	d := SyntheticCitation(30, 2, 4, 0.5, 11)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadDataset(bytes.NewReader(raw[:40])); err == nil {
		t.Fatal("truncated dataset accepted")
	}
}
