package graph

import (
	"testing"
	"testing/quick"

	"agnn/internal/tensor"
)

func TestPartition1DCoversAndBalances(t *testing.T) {
	for _, tc := range [][2]int{{10, 3}, {100, 7}, {5, 5}, {4, 8}, {0, 2}} {
		n, p := tc[0], tc[1]
		pt := Partition1D(n, p)
		if pt.Bounds[0] != 0 || pt.Bounds[p] != n {
			t.Fatalf("n=%d p=%d bounds %v", n, p, pt.Bounds)
		}
		for r := 0; r < p; r++ {
			lo, hi := pt.Range(r)
			if hi < lo {
				t.Fatalf("negative range for rank %d", r)
			}
			if hi-lo > n/p+1 {
				t.Fatalf("imbalanced range %d..%d", lo, hi)
			}
		}
	}
}

func TestPartitionOwnerProperty(t *testing.T) {
	f := func(rawN uint8, rawP uint8) bool {
		n := int(rawN) + 1
		p := int(rawP)%8 + 1
		pt := Partition1D(n, p)
		for v := 0; v < n; v++ {
			r := pt.Owner(v)
			lo, hi := pt.Range(r)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSquareGrid(t *testing.T) {
	for _, p := range []int{1, 4, 9, 16, 64, 256} {
		s, err := SquareGrid(p)
		if err != nil || s*s != p {
			t.Fatalf("SquareGrid(%d) = %d, %v", p, s, err)
		}
	}
	if _, err := SquareGrid(8); err == nil {
		t.Fatal("SquareGrid(8) should fail")
	}
}

func TestPadTo(t *testing.T) {
	cases := [][3]int{{10, 4, 12}, {12, 4, 12}, {0, 4, 0}, {1, 7, 7}}
	for _, c := range cases {
		if got := PadTo(c[0], c[1]); got != c[2] {
			t.Fatalf("PadTo(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestBlock2DReassembles(t *testing.T) {
	a := Kronecker(6, 6, 4) // n = 64
	s := 4                  // 4×4 grid of 16×16 blocks
	bs := a.Rows / s
	full := tensor.NewDense(a.Rows, a.Cols)
	for bi := 0; bi < s; bi++ {
		for bj := 0; bj < s; bj++ {
			blk := Block2D(a, bi, bj, bs)
			if blk.Rows != bs || blk.Cols != bs {
				t.Fatalf("block shape %d×%d", blk.Rows, blk.Cols)
			}
			bd := blk.ToDense()
			for i := 0; i < bs; i++ {
				for j := 0; j < bs; j++ {
					full.Set(bi*bs+i, bj*bs+j, bd.At(i, j))
				}
			}
		}
	}
	if !full.ApproxEqual(a.ToDense(), 0) {
		t.Fatal("2D blocks do not reassemble the matrix")
	}
}

func TestBlock2DPadding(t *testing.T) {
	a := pathGraph(5) // n = 5, pad to blocks of 3 → 2×2 grid with ragged edge
	blk := Block2D(a, 1, 1, 3)
	// Rows 3..5 and cols 3..5: contains edge (3,4) and (4,3).
	d := blk.ToDense()
	if d.At(0, 1) != 1 || d.At(1, 0) != 1 {
		t.Fatalf("padded block content wrong: %v", d)
	}
	// Block fully outside the matrix must be empty.
	empty := Block2D(a, 2, 2, 3)
	if empty.NNZ() != 0 {
		t.Fatal("out-of-range block must be empty")
	}
}
