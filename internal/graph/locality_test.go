package graph

import (
	"sort"
	"testing"

	"agnn/internal/tensor"
)

func TestLocalityOrderIsPermutation(t *testing.T) {
	a := Kronecker(8, 6, 60)
	perm := LocalityOrder(a)
	if len(perm) != a.Rows {
		t.Fatalf("perm length %d", len(perm))
	}
	seen := make([]bool, a.Rows)
	for _, v := range perm {
		if seen[v] {
			t.Fatal("duplicate in permutation")
		}
		seen[v] = true
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	a := ErdosRenyi(40, 120, 61)
	perm := LocalityOrder(a)
	r := Relabel(a, perm)
	if r.NNZ() != a.NNZ() {
		t.Fatal("relabel changed edge count")
	}
	// Degree multiset preserved.
	d1, d2 := Degrees(a), Degrees(r)
	sort.Ints(d1)
	sort.Ints(d2)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("degree multiset changed")
		}
	}
	// Spot-check edge correspondence: r[x][y] == a[perm[x]][perm[y]].
	ad, rd := a.ToDense(), r.ToDense()
	for x := 0; x < 40; x += 7 {
		for y := 0; y < 40; y += 5 {
			if rd.At(x, y) != ad.At(int(perm[x]), int(perm[y])) {
				t.Fatalf("relabel mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestLocalityOrderReducesCut(t *testing.T) {
	// A community graph labeled round-robin (i % classes) has terrible
	// locality; the BFS ordering must cut substantially fewer edges. (BFS
	// region growing is a lightweight heuristic, not a min-cut partitioner;
	// a leaked cross-community hop can shift block boundaries, so the bound
	// here is deliberately conservative.)
	a, _ := PlantedPartition(240, 4, 0.2, 0.002, 62)
	before := CutEdges(a, 4)
	after := CutEdges(Relabel(a, LocalityOrder(a)), 4)
	if after >= (4*before)/5 {
		t.Fatalf("locality ordering did not help: cut %d → %d", before, after)
	}
}

func TestRelabelRows(t *testing.T) {
	labels := []int{10, 11, 12, 13}
	perm := []int32{2, 0, 3, 1}
	got := RelabelRows(labels, perm)
	want := []int{12, 10, 13, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RelabelRows = %v", got)
		}
	}
}

func TestRelabelPanicsOnBadInput(t *testing.T) {
	a := ErdosRenyi(10, 20, 63)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Relabel(a, []int32{0, 1})
}

func TestRelabeledModelIsEquivalent(t *testing.T) {
	// Relabeling must not change GNN semantics: outputs permute with the
	// vertices (uses the dense reference to avoid importing gnn here).
	a := ErdosRenyi(12, 36, 64)
	perm := LocalityOrder(a)
	h := tensor.NewDense(12, 3)
	for i := range h.Data {
		h.Data[i] = float64(i%7) - 3
	}
	hp := tensor.NewDense(12, 3)
	for newID, oldID := range perm {
		copy(hp.Row(newID), h.Row(int(oldID)))
	}
	out := a.MulDense(h)
	outP := Relabel(a, perm).MulDense(hp)
	for newID, oldID := range perm {
		for j := 0; j < 3; j++ {
			if outP.At(newID, j) != out.At(int(oldID), j) {
				t.Fatal("relabeled aggregation differs")
			}
		}
	}
}
