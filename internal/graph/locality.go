package graph

import (
	"agnn/internal/sparse"
)

// Locality-aware vertex ordering — the role METIS plays in DistDGL's
// pipeline: relabeling vertices so that contiguous 1D blocks have few
// cross-block edges shrinks the local formulation's halo (and DistDGL's
// feature traffic). This implementation grows breadth-first regions, a
// lightweight stand-in for a multilevel partitioner that already captures
// community structure.

// LocalityOrder returns a permutation perm (perm[new] = old) that places
// BFS-contiguous vertices next to each other. Ties and new seeds follow
// vertex-id order, so the result is deterministic.
func LocalityOrder(a *sparse.CSR) []int32 {
	n := a.Rows
	perm := make([]int32, 0, n)
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	for seed := 0; seed < n; seed++ {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		queue = append(queue[:0], int32(seed))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			perm = append(perm, v)
			for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
				w := a.Col[p]
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return perm
}

// Relabel applies a permutation (perm[new] = old) to an adjacency matrix:
// result[x][y] = a[perm[x]][perm[y]].
func Relabel(a *sparse.CSR, perm []int32) *sparse.CSR {
	if len(perm) != a.Rows || a.Rows != a.Cols {
		panic("graph: Relabel needs a square matrix and a full permutation")
	}
	inv := make([]int32, len(perm))
	for newID, oldID := range perm {
		inv[oldID] = int32(newID)
	}
	coo := sparse.NewCOO(a.Rows, a.Cols, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			coo.AppendVal(inv[i], inv[a.Col[p]], a.Val[p])
		}
	}
	return sparse.FromCOO(coo)
}

// RelabelRows applies the same permutation to per-vertex data (feature
// matrices are handled by the caller row-wise; this helper covers label
// slices).
func RelabelRows[T any](data []T, perm []int32) []T {
	out := make([]T, len(data))
	for newID, oldID := range perm {
		out[newID] = data[oldID]
	}
	return out
}

// CutEdges counts edges crossing the 1D block boundaries of a p-way
// contiguous partition — the quantity a locality ordering minimizes and a
// direct proxy for the local formulation's halo traffic.
func CutEdges(a *sparse.CSR, p int) int {
	part := Partition1D(a.Rows, p)
	cut := 0
	for i := 0; i < a.Rows; i++ {
		ri := part.Owner(i)
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			if part.Owner(int(a.Col[q])) != ri {
				cut++
			}
		}
	}
	return cut
}
