package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"agnn/internal/sparse"
)

// File formats. The paper's artifact loads adjacency matrices from COO
// stored in compressed .npz files; this repository uses two self-contained
// equivalents: a one-edge-per-line text format ("src dst" pairs) and a
// little-endian binary format with a magic header.

const binMagic = "AGNNCOO1"

// WriteCOOText writes the pattern of a as "src dst" lines.
func WriteCOOText(w io.Writer, a *sparse.CSR) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d\n", i, a.Col[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCOOText parses "src dst" lines into an n×n adjacency matrix where n
// is one more than the largest vertex id. Lines starting with '#' or '%'
// are comments (SNAP / MatrixMarket headers).
func ReadCOOText(r io.Reader) (*sparse.CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	coo := sparse.NewCOO(0, 0, 1024)
	maxID := int32(-1)
	for sc.Scan() {
		line := sc.Text()
		if len(line) == 0 || line[0] == '#' || line[0] == '%' {
			continue
		}
		var i, j int32
		if _, err := fmt.Sscanf(line, "%d %d", &i, &j); err != nil {
			return nil, fmt.Errorf("graph: bad edge line %q: %w", line, err)
		}
		if i < 0 || j < 0 {
			return nil, fmt.Errorf("graph: negative vertex id in %q", line)
		}
		coo.Append(i, j)
		if i > maxID {
			maxID = i
		}
		if j > maxID {
			maxID = j
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Sanity limit mirroring ReadCOOBinary: the vertex-id space may exceed
	// the edge count only by a sane margin, otherwise a single bogus line
	// ("999999999 0") would allocate gigabytes of row pointers.
	if int64(maxID)+1 > 64*int64(coo.Len())+(1<<20) {
		return nil, fmt.Errorf("graph: implausible vertex id %d for %d edges", maxID, coo.Len())
	}
	coo.Rows = int(maxID) + 1
	coo.Cols = int(maxID) + 1
	return sparse.FromCOO(coo), nil
}

// WriteCOOBinary writes a (values included) in the repository's binary COO
// format: magic, rows, cols, nnz, then (row, col int32, val float64)
// triples, all little-endian.
func WriteCOOBinary(w io.Writer, a *sparse.CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	hdr := []int64{int64(a.Rows), int64(a.Cols), int64(a.NNZ())}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if err := binary.Write(bw, binary.LittleEndian, int32(i)); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, a.Col[p]); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, a.Val[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCOOBinary reads the binary COO format written by WriteCOOBinary.
func ReadCOOBinary(r io.Reader) (*sparse.CSR, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var hdr [3]int64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	rows, cols, nnz := int(hdr[0]), int(hdr[1]), int(hdr[2])
	const maxDim = 1<<31 - 1 // the sparse package's int32 index limit
	if rows < 0 || cols < 0 || nnz < 0 || rows > maxDim || cols > maxDim || nnz > maxDim {
		return nil, fmt.Errorf("graph: corrupt header %v", hdr)
	}
	// Disproportionate headers (huge dimension, tiny payload) are treated as
	// corruption: the nnz claim is bounded by the stream contents below, and
	// dimensions may exceed it only by a sane margin of isolated vertices.
	if int64(rows)+int64(cols) > 64*int64(nnz)+(1<<20) {
		return nil, fmt.Errorf("graph: implausible header %v", hdr)
	}
	// Cap the pre-allocation hint: a corrupt nnz must not allocate ahead of
	// the data actually present in the stream.
	capHint := nnz
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	coo := sparse.NewCOO(rows, cols, capHint)
	for e := 0; e < nnz; e++ {
		var i, j int32
		var v float64
		if err := binary.Read(br, binary.LittleEndian, &i); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &j); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		if i < 0 || int(i) >= rows || j < 0 || int(j) >= cols {
			return nil, fmt.Errorf("graph: entry (%d,%d) outside %d×%d", i, j, rows, cols)
		}
		coo.AppendVal(i, j, v)
	}
	return sparse.FromCOO(coo), nil
}

// SaveFile writes a to path, choosing the format by extension: ".txt"/".el"
// text, anything else binary.
func SaveFile(path string, a *sparse.CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if isTextPath(path) {
		return WriteCOOText(f, a)
	}
	return WriteCOOBinary(f, a)
}

// LoadFile reads an adjacency matrix from path, choosing the format by
// extension as in SaveFile.
func LoadFile(path string) (*sparse.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if isTextPath(path) {
		return ReadCOOText(f)
	}
	return ReadCOOBinary(f)
}

func isTextPath(path string) bool {
	for _, suf := range []string{".txt", ".el", ".edges"} {
		if len(path) >= len(suf) && path[len(path)-len(suf):] == suf {
			return true
		}
	}
	return false
}
