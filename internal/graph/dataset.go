package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"

	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// Dataset bundles everything a node-classification experiment needs: the
// adjacency matrix, dense vertex features, integer labels, and a
// transductive train/test split. It replaces the paper artifact's loose
// .npz-plus-scripts arrangement with one self-describing binary file.
type Dataset struct {
	Adj       *sparse.CSR
	Features  *tensor.Dense // n×k
	Labels    []int         // len n, in [0, Classes)
	Classes   int
	TrainMask []bool // len n; vertices not in train are test
}

const datasetMagic = "AGNNDS01"

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	n := d.Adj.Rows
	if d.Adj.Cols != n {
		return fmt.Errorf("graph: dataset adjacency %d×%d not square", d.Adj.Rows, d.Adj.Cols)
	}
	if d.Features.Rows != n {
		return fmt.Errorf("graph: %d feature rows for %d vertices", d.Features.Rows, n)
	}
	if len(d.Labels) != n || len(d.TrainMask) != n {
		return fmt.Errorf("graph: labels/mask length mismatch (%d/%d for n=%d)",
			len(d.Labels), len(d.TrainMask), n)
	}
	if d.Classes < 1 {
		return fmt.Errorf("graph: %d classes", d.Classes)
	}
	for i, y := range d.Labels {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("graph: label %d of vertex %d outside [0,%d)", y, i, d.Classes)
		}
	}
	return nil
}

// TestMask returns the complement of the training mask.
func (d *Dataset) TestMask() []bool {
	out := make([]bool, len(d.TrainMask))
	for i, v := range d.TrainMask {
		out[i] = !v
	}
	return out
}

// WriteDataset serializes the dataset.
func WriteDataset(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(datasetMagic); err != nil {
		return err
	}
	hdr := []int64{int64(d.Adj.Rows), int64(d.Features.Cols), int64(d.Classes), int64(d.Adj.NNZ())}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for i := 0; i < d.Adj.Rows; i++ {
		for p := d.Adj.RowPtr[i]; p < d.Adj.RowPtr[i+1]; p++ {
			if err := binary.Write(bw, binary.LittleEndian,
				[]int32{int32(i), d.Adj.Col[p]}); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, d.Adj.Val[p]); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, d.Features.Data); err != nil {
		return err
	}
	labels := make([]int32, len(d.Labels))
	for i, y := range d.Labels {
		labels[i] = int32(y)
	}
	if err := binary.Write(bw, binary.LittleEndian, labels); err != nil {
		return err
	}
	mask := make([]byte, len(d.TrainMask))
	for i, m := range d.TrainMask {
		if m {
			mask[i] = 1
		}
	}
	if _, err := bw.Write(mask); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadDataset parses a dataset written by WriteDataset.
func ReadDataset(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(datasetMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != datasetMagic {
		return nil, fmt.Errorf("graph: bad dataset magic %q", magic)
	}
	var hdr [4]int64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	n, k, classes, nnz := int(hdr[0]), int(hdr[1]), int(hdr[2]), int(hdr[3])
	const maxDim = 1<<31 - 1
	if n < 0 || k < 0 || classes < 1 || nnz < 0 ||
		n > maxDim || nnz > maxDim || k > maxDim || int64(n)*int64(k) > maxDim {
		return nil, fmt.Errorf("graph: corrupt dataset header %v", hdr)
	}
	if int64(n) > 64*int64(nnz)+(1<<20) {
		return nil, fmt.Errorf("graph: implausible dataset header %v", hdr)
	}
	capHint := nnz
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	coo := sparse.NewCOO(n, n, capHint)
	for e := 0; e < nnz; e++ {
		var ij [2]int32
		var v float64
		if err := binary.Read(br, binary.LittleEndian, &ij); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		if ij[0] < 0 || int(ij[0]) >= n || ij[1] < 0 || int(ij[1]) >= n {
			return nil, fmt.Errorf("graph: dataset entry (%d,%d) outside %d×%d", ij[0], ij[1], n, n)
		}
		coo.AppendVal(ij[0], ij[1], v)
	}
	feats := tensor.NewDense(n, k)
	if err := binary.Read(br, binary.LittleEndian, feats.Data); err != nil {
		return nil, err
	}
	rawLabels := make([]int32, n)
	if err := binary.Read(br, binary.LittleEndian, rawLabels); err != nil {
		return nil, err
	}
	mask := make([]byte, n)
	if _, err := io.ReadFull(br, mask); err != nil {
		return nil, err
	}
	d := &Dataset{
		Adj:       sparse.FromCOO(coo),
		Features:  feats,
		Labels:    make([]int, n),
		Classes:   classes,
		TrainMask: make([]bool, n),
	}
	for i := range rawLabels {
		d.Labels[i] = int(rawLabels[i])
		d.TrainMask[i] = mask[i] == 1
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// SaveDataset / LoadDataset are the file-path variants.
func SaveDataset(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteDataset(f, d)
}

// LoadDataset reads a dataset file.
func LoadDataset(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDataset(f)
}

// SyntheticCitation builds a ready-to-train planted-partition dataset:
// community-structured graph, noisy class-indicator features, and a
// trainFrac transductive split.
func SyntheticCitation(n, classes, featDim int, trainFrac float64, seed int64) *Dataset {
	adj, labels := PlantedPartition(n, classes, 0.02, 0.001, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	feats := tensor.RandN(n, featDim, 1, rng)
	mask := make([]bool, n)
	for i := 0; i < n; i++ {
		feats.Set(i, labels[i]%featDim, feats.At(i, labels[i]%featDim)+0.8)
		mask[i] = rng.Float64() < trainFrac
	}
	return &Dataset{Adj: adj, Features: feats, Labels: labels, Classes: classes, TrainMask: mask}
}
