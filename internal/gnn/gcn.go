package gnn

import (
	"math/rand"

	"agnn/internal/fuse"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// GCNLayer is the C-GNN special case used by the Section 8.4 verification
// experiment: Z = Â·H·W with Â the (pre-)normalized adjacency matrix. Ψ
// degenerates to Â itself, so — as the paper notes in Section 4.4 — once Ψ
// is fixed, the execution strategy is identical to the A-GNNs'.
type GCNLayer struct {
	A, AT *sparse.CSR // expected pre-normalized (graph.NormalizeGCN)
	W     *Param
	Act   Activation

	// Direct bypasses the compiled plan and trains through the hand-written
	// kernel path.
	Direct bool

	// DType selects the element width of the layer's compiled plans (see
	// VALayer.DType).
	DType tensor.DType

	pc planCache

	h *tensor.Dense
	z *tensor.Dense
}

// NewGCNLayer constructs a GCN layer; a should already carry the symmetric
// normalization (graph.NormalizeGCN).
func NewGCNLayer(a, at *sparse.CSR, inDim, outDim int, act Activation, rng *rand.Rand) *GCNLayer {
	return &GCNLayer{
		A: a, AT: at,
		W:   NewParam("W", tensor.GlorotInit(inDim, outDim, rng)),
		Act: act,
	}
}

// Name implements Layer.
func (l *GCNLayer) Name() string { return "gcn" }

// Params implements Layer.
func (l *GCNLayer) Params() []*Param { return []*Param{l.W} }

// ensurePlan compiles Z = Â·(H·W), σ into a reusable training plan.
func (l *GCNLayer) ensurePlan(in int) *fuse.Plan {
	return l.pc.get(l.A, in, l.DType, func() string {
		return planSig("gcn", true, l.Act, "", l.W)
	}, func(ws *tensor.Arena) *fuse.Plan {
		g := fuse.NewGraph("gcn", l.A)
		h := g.InputDense("H", l.A.Rows, in)
		w := g.ParamNode("W", planRef(l.W))
		z := g.SpMM("Z", g.Adj(), g.MM("HW", h, w))
		g.SetOutput(g.Sigma("Hout", z, planAct(l.Act)))
		return g.MustCompile(fuse.Options{Train: true, SpanPrefix: "gcn.", Workspace: ws, DType: l.DType})
	})
}

// Plan returns the compiled training plan (nil before the first planned
// training-mode Forward).
func (l *GCNLayer) Plan() *fuse.Plan { return l.pc.plan }

func (l *GCNLayer) releasePlans() { l.pc.release() }

// Forward implements Layer.
func (l *GCNLayer) Forward(h *tensor.Dense, training bool) *tensor.Dense {
	if training && !l.Direct {
		return l.ensurePlan(h.Cols).Forward(h)
	}
	hp := tensor.MM(h, l.W.Value)
	z := l.A.MulDense(hp)
	if training {
		l.h, l.z = h, z
	}
	return l.Act.apply(z)
}

// Backward implements Layer.
func (l *GCNLayer) Backward(gOut *tensor.Dense) *tensor.Dense {
	if !l.Direct {
		if l.pc.plan == nil {
			panic("gnn: GCNLayer.Backward before training-mode Forward")
		}
		return l.pc.plan.Backward(gOut)
	}
	if l.z == nil {
		panic("gnn: GCNLayer.Backward before training-mode Forward")
	}
	g := gOut.Hadamard(l.Act.derivAt(l.z))
	// Z = Â·(H·W): H̄p = Âᵀ·G; W̄ += Hᵀ·H̄p; H̄ = H̄p·Wᵀ.
	hpBar := l.AT.MulDense(g)
	l.W.Grad.AddInPlace(tensor.TMM(l.h, hpBar))
	return tensor.MM(hpBar, l.W.Value.T())
}
