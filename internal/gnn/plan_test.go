package gnn

import (
	"math/rand"
	"testing"

	"agnn/internal/graph"
	"agnn/internal/par"
	"agnn/internal/tensor"
)

// planLayerFixtures builds one instance of every plan-backed built-in layer
// (deterministic per seed).
func planLayerFixtures(seed int64) (layers []Layer, h *tensor.Dense) {
	a := testGraph(12, seed)
	at := a.Transpose()
	an := graph.NormalizeGCN(a)
	ant := an.Transpose()
	mk := func() *rand.Rand { return rand.New(rand.NewSource(seed + 1)) }
	layers = []Layer{
		NewVALayer(a, at, 4, 3, Tanh(), mk()),
		NewGCNLayer(an, ant, 4, 3, Tanh(), mk()),
		NewAGNNLayer(a, at, 4, 3, Tanh(), mk()),
		NewGATLayer(a, at, 4, 3, Tanh(), 0.2, mk()),
		NewGINLayer(a, at, 4, 5, 3, Tanh(), mk()),
		NewSGCLayer(an, ant, 2, 4, 3, Tanh(), mk()),
	}
	layers[4].(*GINLayer).ActMLP = Tanh()
	h = tensor.RandN(12, 4, 0.8, rand.New(rand.NewSource(seed+2)))
	return layers, h
}

// setDirect flips a built-in layer onto the hand-written kernel path.
func setDirect(l Layer) {
	switch ll := l.(type) {
	case *VALayer:
		ll.Direct = true
	case *GCNLayer:
		ll.Direct = true
	case *AGNNLayer:
		ll.Direct = true
	case *GATLayer:
		ll.Direct = true
	case *GINLayer:
		ll.Direct = true
	case *SGCLayer:
		ll.Direct = true
	}
}

// TestPlanBackwardMatchesDirectBackward differentially tests the compiled
// plans against the hand-derived Section 5 backward passes: identical
// layers, one planned and one direct, must produce matching outputs,
// parameter gradients, and input gradients.
func TestPlanBackwardMatchesDirectBackward(t *testing.T) {
	const seed = 800
	planned, h := planLayerFixtures(seed)
	direct, _ := planLayerFixtures(seed)
	gOut := tensor.RandN(12, 3, 1, rand.New(rand.NewSource(seed+3)))

	for i := range planned {
		p, d := planned[i], direct[i]
		setDirect(d)
		outP := p.Forward(h, true)
		outD := d.Forward(h, true)
		if !outP.ApproxEqual(outD, 1e-10) {
			t.Fatalf("%s: plan forward differs from direct by %g", p.Name(), outP.MaxAbsDiff(outD))
		}
		gInP := p.Backward(gOut)
		gInD := d.Backward(gOut)
		if !gInP.ApproxEqual(gInD, 1e-9) {
			t.Fatalf("%s: plan input grad differs from direct by %g", p.Name(), gInP.MaxAbsDiff(gInD))
		}
		pp, dp := p.Params(), d.Params()
		for j := range pp {
			if !pp[j].Grad.ApproxEqual(dp[j].Grad, 1e-9) {
				t.Fatalf("%s: plan %s grad differs from direct by %g",
					p.Name(), pp[j].Name, pp[j].Grad.MaxAbsDiff(dp[j].Grad))
			}
		}
	}
}

// TestPlannedLayerSteadyStateAllocs: after the first (compiling, warm-up)
// step, the planned forward/backward hot path must run with zero
// allocations — every intermediate lives in the plan's preallocated
// workspace. Pinned to one worker because the parallel runtime allocates
// goroutine bookkeeping when fanning out.
func TestPlannedLayerSteadyStateAllocs(t *testing.T) {
	prev := par.Workers()
	par.SetWorkers(1)
	defer par.SetWorkers(prev)

	layers, h := planLayerFixtures(801)
	gOut := tensor.NewDense(12, 3)
	gOut.Fill(0.25)

	for _, l := range layers {
		l.Forward(h, true) // compile + warm up lazily allocated scratch
		l.Backward(gOut)
		if n := testing.AllocsPerRun(20, func() { l.Forward(h, true) }); n > 0 {
			t.Fatalf("%s: planned forward allocates %v per step", l.Name(), n)
		}
		if n := testing.AllocsPerRun(20, func() { l.Forward(h, true); l.Backward(gOut) }); n > 0 {
			t.Fatalf("%s: planned forward+backward allocates %v per step", l.Name(), n)
		}
	}
}

func TestMultiHeadGATGradCheckPlanned(t *testing.T) {
	for _, concat := range []bool{true, false} {
		a := testGraph(9, 810)
		at := a.Transpose()
		rng := rand.New(rand.NewSource(811))
		mh := NewMultiHeadGATLayer(a, at, 3, 2, 3, concat, Tanh(), 0.2, rng)
		m := &Model{Layers: []Layer{mh}}
		h := tensor.RandN(9, 3, 0.8, rng)
		loss := &MSELoss{Target: tensor.RandN(9, mh.OutDim(), 1, rng)}
		gradCheckModel(t, m, h, loss, 5e-4)
	}
}

// TestGenericGradCheckPlanned: the generic Ψ/⊕/Φ layer gets a real trained
// backward from the plan compiler for built-in assemblies — linear and MLP
// Φ, both application orders.
func TestGenericGradCheckPlanned(t *testing.T) {
	a := testGraph(9, 820)
	rng := rand.New(rand.NewSource(821))
	cases := []struct {
		name string
		mk   func() *GenericLayer
	}{
		{"dot+linear+phiFirst", func() *GenericLayer {
			return &GenericLayer{A: a, Psi: DotPsi(), Agg: SumAgg(),
				Phi: LinearPhi(tensor.GlorotInit(3, 2, rng)), Act: Tanh(), PhiFirst: true}
		}},
		{"softmaxdot+linear", func() *GenericLayer {
			return &GenericLayer{A: a, Psi: SoftmaxDotPsi(), Agg: SumAgg(),
				Phi: LinearPhi(tensor.GlorotInit(3, 2, rng)), Act: Tanh()}
		}},
		{"adjacency+mlp", func() *GenericLayer {
			return &GenericLayer{A: a, Psi: AdjacencyPsi(), Agg: SumAgg(),
				Phi: MLPPhi(Tanh(), tensor.GlorotInit(3, 4, rng), tensor.GlorotInit(4, 2, rng)),
				Act: Tanh()}
		}},
	}
	for _, tc := range cases {
		gen := tc.mk()
		if err := gen.CanTrain(); err != nil {
			t.Fatalf("%s: expected trainable, got %v", tc.name, err)
		}
		m := &Model{Layers: []Layer{gen}}
		h := tensor.RandN(9, 3, 0.8, rand.New(rand.NewSource(822)))
		loss := &MSELoss{Target: tensor.RandN(9, 2, 1, rand.New(rand.NewSource(823)))}
		gradCheckModel(t, m, h, loss, 5e-4)
	}
}

// TestUntrainableGenericIsReportedNotPanicked: Model.Train must refuse an
// untrainable assembly with a descriptive error before any backward pass
// can panic (the TrainableLayer contract).
func TestUntrainableGenericIsReportedNotPanicked(t *testing.T) {
	a := testGraph(8, 830)
	h := tensor.RandN(8, 3, 1, rand.New(rand.NewSource(831)))
	m := &Model{Layers: []Layer{
		&GenericLayer{A: a, Psi: SoftmaxDotPsi(), Agg: MaxAgg()},
	}}
	if err := m.CheckTrainable(); err == nil {
		t.Fatal("semiring aggregation must be reported as untrainable")
	}
	hist, err := m.Train(h, &MSELoss{Target: tensor.NewDense(8, 3)}, NewSGD(0.1, 0), 3)
	if err == nil || hist != nil {
		t.Fatalf("Train must refuse untrainable models, got hist=%v err=%v", hist, err)
	}
	// Custom closures are equally untrainable — and say so.
	custom := &GenericLayer{A: a, Psi: CustomPsi(AdjacencyPsi().F)}
	if err := custom.CanTrain(); err == nil {
		t.Fatal("custom Ψ must be reported as untrainable")
	}
	// A trainable stack passes the check.
	ok := &Model{Layers: []Layer{&GenericLayer{A: a, Psi: DotPsi(), Agg: SumAgg(),
		Phi: LinearPhi(tensor.GlorotInit(3, 3, rand.New(rand.NewSource(832))))}}}
	if err := ok.CheckTrainable(); err != nil {
		t.Fatalf("trainable generic reported untrainable: %v", err)
	}
}

// FuzzGenericPlanVsDirect cross-checks the compiled plan against the raw
// closure composition for arbitrary built-in Ψ/⊕/Φ assemblies.
func FuzzGenericPlanVsDirect(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), false, uint8(0))
	f.Add(uint8(1), uint8(0), uint8(1), true, uint8(1))
	f.Add(uint8(2), uint8(1), uint8(2), false, uint8(2))
	f.Add(uint8(2), uint8(3), uint8(0), false, uint8(1))
	f.Fuzz(func(t *testing.T, psiSel, aggSel, phiSel uint8, phiFirst bool, actSel uint8) {
		psis := []Psi{AdjacencyPsi(), DotPsi(), SoftmaxDotPsi()}
		aggs := []Agg{SumAgg(), MaxAgg(), MinAgg(), MeanAgg()}
		acts := []Activation{Identity(), Tanh(), ReLU()}
		rng := rand.New(rand.NewSource(900))
		a := testGraph(10, 901)
		h := tensor.RandN(10, 3, 1, rng)
		phis := []Phi{
			{}, // identity
			LinearPhi(tensor.GlorotInit(3, 2, rng)),
			MLPPhi(Tanh(), tensor.GlorotInit(3, 4, rng), tensor.GlorotInit(4, 2, rng)),
		}
		mk := func() *GenericLayer {
			return &GenericLayer{
				A:        a,
				Psi:      psis[int(psiSel)%len(psis)],
				Agg:      aggs[int(aggSel)%len(aggs)],
				Phi:      phis[int(phiSel)%len(phis)],
				Act:      acts[int(actSel)%len(acts)],
				PhiFirst: phiFirst,
			}
		}
		planned := mk()
		direct := mk()
		direct.Direct = true
		got := planned.Forward(h, true)
		want := direct.Forward(h, true)
		if !got.ApproxEqual(want, 1e-10) {
			t.Fatalf("plan deviates from closures by %g (psi=%q agg=%q phi=%q first=%v)",
				got.MaxAbsDiff(want), planned.Psi.Kind, planned.Agg.Kind, planned.Phi.Kind, phiFirst)
		}
	})
}

// BenchmarkPlanVsHandwritten compares one training step (forward +
// backward) through the compiled plan against the hand-written kernel
// path. The plan's advantage is allocation-free steady state; the kernels
// themselves are shared.
func BenchmarkPlanVsHandwritten(b *testing.B) {
	a := graph.Kronecker(10, 8, 1) // 1024 vertices
	at := a.Transpose()
	h := tensor.RandN(a.Rows, 16, 1, rand.New(rand.NewSource(2)))
	gOut := tensor.RandN(a.Rows, 16, 1, rand.New(rand.NewSource(3)))
	for _, mode := range []string{"plan", "direct"} {
		b.Run(mode, func(b *testing.B) {
			l := NewAGNNLayer(a, at, 16, 16, Tanh(), rand.New(rand.NewSource(4)))
			l.Direct = mode == "direct"
			l.Forward(h, true)
			l.Backward(gOut)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Forward(h, true)
				l.Backward(gOut)
			}
		})
	}
}

// BenchmarkPlannedForwardAllocs isolates the planned forward hot path for
// the CI allocation gate.
func BenchmarkPlannedForwardAllocs(b *testing.B) {
	a := graph.Kronecker(9, 8, 1)
	at := a.Transpose()
	h := tensor.RandN(a.Rows, 16, 1, rand.New(rand.NewSource(5)))
	l := NewGATLayer(a, at, 16, 16, Tanh(), 0.2, rand.New(rand.NewSource(6)))
	l.Forward(h, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(h, true)
	}
}
