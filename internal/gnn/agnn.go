package gnn

import (
	"math/rand"

	"agnn/internal/fuse"
	"agnn/internal/kernels"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// AGNNLayer is the attention-based GNN of Thekumparampil et al. in the
// paper's global formulation (Figure 1, "AGNN"):
//
//	Forward:   n    = row L2 norms of H
//	           C    = (A ⊙ H·Hᵀ) ⊘ (n·nᵀ)      cosine scores; n·nᵀ virtual
//	           Ψ    = sm(β·C)                    graph softmax, β learnable
//	           Z    = Ψ·H·W
//	           H'   = σ(Z)
//
//	Backward (derived with the paper's VJP building blocks; ∂Ψ/∂W = 0 as
//	stated in Section 5.2, but ∂Ψ/∂β ≠ 0 and ∂Ψ/∂H ≠ 0):
//	           Ψ̄    = SDDMM(A, G, H·W)           from Z = Ψ·(H·W)
//	           T̄    = softmax-VJP(Ψ, Ψ̄)
//	           β̄    = Σ T̄ ⊙ C
//	           C̄    = β·T̄
//	           S̄    = C̄ ⊘ n·nᵀ ⊙ A               grad into the H·Hᵀ factor
//	           n̄_i  = −(1/n_i)·Σ_j (C̄⊙C)_{ij} + (C̄⊙C)_{ji}
//	           Γ    = Ψᵀ·G·Wᵀ + S̄·H + S̄ᵀ·H + diag(n̄⊘n)·H
type AGNNLayer struct {
	A, AT *sparse.CSR
	W     *Param
	Beta  *Param
	Act   Activation

	// Direct bypasses the compiled plan and trains through the hand-written
	// kernel path.
	Direct bool

	// DType selects the element width of the layer's compiled plans (see
	// VALayer.DType).
	DType tensor.DType

	// PlanInference routes non-training Forward through a compiled
	// inference plan (see VALayer.PlanInference).
	PlanInference bool

	pc  planCache
	ipc planCache // inference plans (PlanInference)

	// cached intermediates (direct training-mode forward)
	h     *tensor.Dense
	hp    *tensor.Dense
	norms []float64
	inv   []float64
	cos   *sparse.CSR // C (pre-β cosine scores)
	psi   *sparse.CSR // softmax output
	z     *tensor.Dense
}

// NewAGNNLayer constructs an AGNN layer with β initialized to 1.
func NewAGNNLayer(a, at *sparse.CSR, inDim, outDim int, act Activation, rng *rand.Rand) *AGNNLayer {
	return &AGNNLayer{
		A: a, AT: at,
		W:    NewParam("W", tensor.GlorotInit(inDim, outDim, rng)),
		Beta: NewScalarParam("beta", 1),
		Act:  act,
	}
}

// Name implements Layer.
func (l *AGNNLayer) Name() string { return "agnn" }

// Params implements Layer.
func (l *AGNNLayer) Params() []*Param { return []*Param{l.W, l.Beta} }

// Forward implements Layer.
func (l *AGNNLayer) Forward(h *tensor.Dense, training bool) *tensor.Dense {
	beta := l.Beta.Scalar()
	if !training {
		if l.PlanInference && !l.Direct {
			return l.ensureInferPlan(h.Cols).Forward(h)
		}
		// Fully fused inference: score evaluation, softmax and aggregation
		// in one kernel; Ψ never stored.
		norms := tensor.RowNorms(h)
		hp := tensor.MM(h, l.W.Value)
		score := kernels.AGNNEdgeScore(h, norms, beta)
		return l.Act.apply(kernels.FusedSoftmaxApply(l.A, score, hp))
	}
	if !l.Direct {
		return l.ensurePlan(h.Cols).Forward(h)
	}
	l.h = h
	l.norms = tensor.RowNorms(h)
	l.inv = make([]float64, len(l.norms))
	for i, v := range l.norms {
		if v > 0 {
			l.inv[i] = 1 / v
		}
	}
	s := sparse.SDDMMScaled(l.A, h, h)           // A ⊙ H·Hᵀ
	l.cos = s.ScaleRowsCols(l.inv, l.inv)        // ⊘ n·nᵀ (virtual outer product)
	l.psi = sparse.RowSoftmax(l.cos.Scale(beta)) // Ψ = sm(β·C)
	l.hp = tensor.MM(h, l.W.Value)
	l.z = l.psi.MulDense(l.hp)
	return l.Act.apply(l.z)
}

// ensurePlan compiles AGNN's DAG into a reusable training plan. The whole
// virtual chain H·Hᵀ ⊘ n·nᵀ scaled by β collapses into the softmax sampling
// sweep (mask+softmax fuse into one kernel), matching the Figure 5 analysis.
func (l *AGNNLayer) ensurePlan(in int) *fuse.Plan {
	return l.pc.get(l.A, in, l.DType, func() string {
		return planSig("agnn", true, l.Act, "", l.W, l.Beta)
	}, func(ws *tensor.Arena) *fuse.Plan {
		return l.buildGraph(in).MustCompile(
			fuse.Options{Train: true, SpanPrefix: "agnn.", Workspace: ws, DType: l.DType})
	})
}

// ensureInferPlan compiles the same DAG as an inference plan (see
// VALayer.ensureInferPlan).
func (l *AGNNLayer) ensureInferPlan(in int) *fuse.Plan {
	return l.ipc.get(l.A, in, l.DType, func() string {
		return planSig("agnn", false, l.Act, "", l.W, l.Beta)
	}, func(ws *tensor.Arena) *fuse.Plan {
		return l.buildGraph(in).MustCompile(
			fuse.Options{SpanPrefix: "agnn.", Workspace: ws, DType: l.DType})
	})
}

func (l *AGNNLayer) buildGraph(in int) *fuse.Graph {
	g := fuse.NewGraph("agnn", l.A)
	h := g.InputDense("H", l.A.Rows, in)
	wn := g.ParamNode("W", planRef(l.W))
	bn := g.ParamNode("beta", planRef(l.Beta))
	norms := g.RowNormsNode("n", h)
	cos := g.DivScores("C", g.DotScores("HHt", h, h), g.OuterScores("nnT", norms, norms))
	s := g.Mask("S", g.ScaleScores("betaC", cos, bn), true)
	psi := g.Softmax("Psi", s)
	z := g.SpMM("Z", psi, g.MM("HW", h, wn))
	g.SetOutput(g.Sigma("Hout", z, planAct(l.Act)))
	return g
}

// Plan returns the compiled training plan (nil before the first planned
// training-mode Forward).
func (l *AGNNLayer) Plan() *fuse.Plan { return l.pc.plan }

func (l *AGNNLayer) releasePlans() { l.pc.release(); l.ipc.release() }

// Backward implements Layer.
func (l *AGNNLayer) Backward(gOut *tensor.Dense) *tensor.Dense {
	if !l.Direct {
		if l.pc.plan == nil {
			panic("gnn: AGNNLayer.Backward before training-mode Forward")
		}
		return l.pc.plan.Backward(gOut)
	}
	if l.z == nil {
		panic("gnn: AGNNLayer.Backward before training-mode Forward")
	}
	beta := l.Beta.Scalar()
	g := gOut.Hadamard(l.Act.derivAt(l.z))

	// Z = Ψ·Hp.
	psiBar := sparse.SDDMM(l.A, g, l.hp)
	psiT := l.psi.Transpose()
	hpBar := psiT.MulDense(g)
	// Hp = H·W.
	hbar := tensor.MM(hpBar, l.W.Value.T())
	l.W.Grad.AddInPlace(tensor.TMM(l.h, hpBar))

	// Ψ = softmax(β·C).
	tBar := sparse.RowSoftmaxBackward(l.psi, psiBar)
	// β̄ = Σ T̄ ⊙ C.
	betaGrad := 0.0
	for p := range tBar.Val {
		betaGrad += tBar.Val[p] * l.cos.Val[p]
	}
	l.Beta.AddScalarGrad(betaGrad)
	cBar := tBar.Scale(beta)

	// C = (A ⊙ H·Hᵀ) ⊘ n·nᵀ: grad into the raw dot products.
	sBar := cBar.ScaleRowsCols(l.inv, l.inv).HadamardSamePattern(l.A)
	hbar.AddInPlace(sBar.MulDense(l.h))
	hbar.AddInPlace(sBar.Transpose().MulDense(l.h))

	// Norm gradient: n̄_i = −inv_i · (Σ_j D_ij + Σ_j D_ji) with D = C̄ ⊙ C,
	// then H̄[i,:] += n̄_i · inv_i · H[i,:].
	d := cBar.HadamardSamePattern(l.cos)
	rows := d.RowSums()
	cols := d.ColSums()
	for i := 0; i < hbar.Rows; i++ {
		nb := -l.inv[i] * (rows[i] + cols[i])
		coef := nb * l.inv[i]
		if coef == 0 {
			continue
		}
		tensor.Axpy(coef, l.h.Row(i), hbar.Row(i))
	}
	return hbar
}
