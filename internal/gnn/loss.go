package gnn

import (
	"fmt"
	"math"

	"agnn/internal/tensor"
)

// Loss computes a scalar training objective and its gradient ∇_{H^L}L with
// respect to the final-layer output, the quantity that bootstraps the
// backward pass (Eq. 4).
type Loss interface {
	// Eval returns the loss value and ∇_{out}L.
	Eval(out *tensor.Dense) (float64, *tensor.Dense)
	Name() string
}

// CrossEntropyLoss is the masked softmax cross-entropy over per-vertex
// class logits used for node-classification training. Vertices with
// Mask[i] == false (e.g. test vertices in a transductive split) contribute
// neither loss nor gradient; a nil Mask trains on all vertices.
type CrossEntropyLoss struct {
	Labels []int
	Mask   []bool
}

// Name implements Loss.
func (l *CrossEntropyLoss) Name() string { return "softmax-cross-entropy" }

// Eval implements Loss: mean over masked vertices of −log softmax(out)[label].
func (l *CrossEntropyLoss) Eval(out *tensor.Dense) (float64, *tensor.Dense) {
	if len(l.Labels) != out.Rows {
		panic(fmt.Sprintf("gnn: %d labels for %d rows", len(l.Labels), out.Rows))
	}
	if l.Mask != nil && len(l.Mask) != out.Rows {
		panic("gnn: mask length mismatch")
	}
	grad := tensor.NewDense(out.Rows, out.Cols)
	total := 0.0
	count := 0
	for i := 0; i < out.Rows; i++ {
		if l.Mask != nil && !l.Mask[i] {
			continue
		}
		y := l.Labels[i]
		if y < 0 || y >= out.Cols {
			panic(fmt.Sprintf("gnn: label %d out of range [0,%d)", y, out.Cols))
		}
		count++
		row := out.Row(i)
		m := math.Inf(-1)
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - m)
		}
		logZ := m + math.Log(sum)
		total += logZ - row[y]
		grow := grad.Row(i)
		for j, v := range row {
			grow[j] = math.Exp(v - logZ) // softmax probability
		}
		grow[y] -= 1
	}
	if count == 0 {
		return 0, grad
	}
	inv := 1 / float64(count)
	grad.ScaleInPlace(inv)
	return total * inv, grad
}

// MSELoss is the mean squared error ‖out − Target‖²/(n·k), used for
// regression-style targets and for gradient checking.
type MSELoss struct {
	Target *tensor.Dense
}

// Name implements Loss.
func (l *MSELoss) Name() string { return "mse" }

// Eval implements Loss.
func (l *MSELoss) Eval(out *tensor.Dense) (float64, *tensor.Dense) {
	if out.Rows != l.Target.Rows || out.Cols != l.Target.Cols {
		panic("gnn: MSE shape mismatch")
	}
	n := float64(out.Rows * out.Cols)
	diff := out.Sub(l.Target)
	loss := 0.0
	for _, v := range diff.Data {
		loss += v * v
	}
	return loss / n, diff.Scale(2 / n)
}

// Accuracy returns the fraction of (masked) vertices whose argmax logit
// equals the label.
func Accuracy(out *tensor.Dense, labels []int, mask []bool) float64 {
	correct, count := 0, 0
	for i := 0; i < out.Rows; i++ {
		if mask != nil && !mask[i] {
			continue
		}
		count++
		row := out.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(correct) / float64(count)
}
