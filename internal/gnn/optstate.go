package gnn

import (
	"fmt"

	"agnn/internal/tensor"
)

// OptState is a portable snapshot of an optimizer's internal state —
// moment/velocity slots aligned with a parameter sequence plus the step
// counter. It exists so checkpoint/resume reproduces training bitwise: the
// update rule depends on the accumulated moments and (for Adam's bias
// correction) on the step count, so restoring weights alone is not enough.
type OptState struct {
	Algo  string
	Step  int64
	Slots map[string][]*tensor.Dense // slot name → per-parameter tensor, aligned with params
}

// StatefulOptimizer is an Optimizer whose full update state can be
// exported for checkpointing and restored on resume.
type StatefulOptimizer interface {
	Optimizer
	ExportState(params []*Param) *OptState
	ImportState(params []*Param, st *OptState) error
}

// exportSlot materializes one slot tensor per parameter, cloning live state
// and substituting zeros for parameters the optimizer has not touched yet
// (lazy slot allocation before the first Step).
func exportSlot(params []*Param, slot map[*Param]*tensor.Dense) []*tensor.Dense {
	out := make([]*tensor.Dense, len(params))
	for i, p := range params {
		if t := slot[p]; t != nil {
			out[i] = t.Clone()
		} else {
			out[i] = tensor.NewDense(p.Value.Rows, p.Value.Cols)
		}
	}
	return out
}

// importSlot validates and installs one slot from a snapshot.
func importSlot(params []*Param, st *OptState, name string) (map[*Param]*tensor.Dense, error) {
	ts, ok := st.Slots[name]
	if !ok {
		return nil, fmt.Errorf("gnn: optimizer state missing slot %q", name)
	}
	if len(ts) != len(params) {
		return nil, fmt.Errorf("gnn: slot %q has %d tensors, model has %d parameters", name, len(ts), len(params))
	}
	slot := make(map[*Param]*tensor.Dense, len(params))
	for i, p := range params {
		t := ts[i]
		if t == nil {
			return nil, fmt.Errorf("gnn: slot %q tensor %d is nil", name, i)
		}
		if t.Rows != p.Value.Rows || t.Cols != p.Value.Cols {
			return nil, fmt.Errorf("gnn: slot %q for %q is %d×%d, model wants %d×%d",
				name, p.Name, t.Rows, t.Cols, p.Value.Rows, p.Value.Cols)
		}
		slot[p] = t.Clone()
	}
	return slot, nil
}

// ExportState implements StatefulOptimizer.
func (o *SGD) ExportState(params []*Param) *OptState {
	return &OptState{
		Algo:  o.Name(),
		Slots: map[string][]*tensor.Dense{"vel": exportSlot(params, o.vel)},
	}
}

// ImportState implements StatefulOptimizer.
func (o *SGD) ImportState(params []*Param, st *OptState) error {
	if st.Algo != o.Name() {
		return fmt.Errorf("gnn: optimizer state is for %q, optimizer is %q", st.Algo, o.Name())
	}
	vel, err := importSlot(params, st, "vel")
	if err != nil {
		return err
	}
	o.vel = vel
	return nil
}

// ExportState implements StatefulOptimizer.
func (o *Adam) ExportState(params []*Param) *OptState {
	return &OptState{
		Algo: o.Name(),
		Step: int64(o.t),
		Slots: map[string][]*tensor.Dense{
			"m": exportSlot(params, o.m),
			"v": exportSlot(params, o.v),
		},
	}
}

// ImportState implements StatefulOptimizer.
func (o *Adam) ImportState(params []*Param, st *OptState) error {
	if st.Algo != o.Name() {
		return fmt.Errorf("gnn: optimizer state is for %q, optimizer is %q", st.Algo, o.Name())
	}
	m, err := importSlot(params, st, "m")
	if err != nil {
		return err
	}
	v, err := importSlot(params, st, "v")
	if err != nil {
		return err
	}
	o.m, o.v, o.t = m, v, int(st.Step)
	return nil
}
