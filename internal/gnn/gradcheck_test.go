package gnn

import (
	"math"
	"math/rand"
	"testing"

	"agnn/internal/graph"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// testGraph builds a small connected symmetric graph for gradient checks.
func testGraph(n int, seed int64) *sparse.CSR {
	return graph.ErdosRenyi(n, 3*n, seed)
}

// gradCheckModel verifies every parameter gradient and the input-feature
// gradient of a model against central finite differences of the loss. This
// is validation strategy #2 of DESIGN.md: the hand-derived backward
// formulations of Section 5 must match the numerical Jacobian.
func gradCheckModel(t *testing.T, m *Model, h0 *tensor.Dense, loss Loss, tol float64) {
	t.Helper()
	m.ZeroGrad()
	out := m.Forward(h0, true)
	_, g := loss.Eval(out)
	inGrad := m.Backward(g)

	evalLoss := func() float64 {
		v, _ := loss.Eval(m.Forward(h0, true))
		return v
	}
	const eps = 1e-6
	check := func(name string, data []float64, analytic []float64) {
		for i := range data {
			orig := data[i]
			data[i] = orig + eps
			lp := evalLoss()
			data[i] = orig - eps
			lm := evalLoss()
			data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-analytic[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, analytic[i], num)
			}
		}
	}
	for _, p := range m.Params() {
		check(p.Name, p.Value.Data, p.Grad.Data)
	}
	check("input", h0.Data, inGrad.Data)
}

func modelForGradcheck(t *testing.T, kind Kind, seed int64) (*Model, *tensor.Dense) {
	t.Helper()
	a := testGraph(10, seed)
	cfg := Config{
		Model: kind, Layers: 2, InDim: 3, HiddenDim: 4, OutDim: 2,
		Activation: Tanh(), // smooth activation so finite differences are clean
		SelfLoops:  true,
		Seed:       seed,
	}
	m, err := New(cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	h0 := tensor.RandN(10, 3, 0.8, rand.New(rand.NewSource(seed+100)))
	return m, h0
}

func TestGradCheckVA(t *testing.T) {
	m, h0 := modelForGradcheck(t, VA, 1)
	loss := &CrossEntropyLoss{Labels: []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}}
	gradCheckModel(t, m, h0, loss, 2e-4)
}

func TestGradCheckVAReferenceBackward(t *testing.T) {
	m, h0 := modelForGradcheck(t, VA, 2)
	for _, l := range m.Layers {
		l.(*VALayer).UseReferenceBackward = true
	}
	loss := &MSELoss{Target: tensor.RandN(10, 2, 1, rand.New(rand.NewSource(7)))}
	gradCheckModel(t, m, h0, loss, 2e-4)
}

func TestGradCheckAGNN(t *testing.T) {
	m, h0 := modelForGradcheck(t, AGNN, 3)
	loss := &CrossEntropyLoss{Labels: []int{1, 0, 1, 0, 1, 0, 1, 0, 1, 0}}
	gradCheckModel(t, m, h0, loss, 5e-4)
}

func TestGradCheckGAT(t *testing.T) {
	m, h0 := modelForGradcheck(t, GAT, 4)
	loss := &CrossEntropyLoss{Labels: []int{0, 0, 1, 1, 0, 0, 1, 1, 0, 0}}
	gradCheckModel(t, m, h0, loss, 5e-4)
}

func TestGradCheckGCN(t *testing.T) {
	m, h0 := modelForGradcheck(t, GCN, 5)
	loss := &MSELoss{Target: tensor.RandN(10, 2, 1, rand.New(rand.NewSource(8)))}
	gradCheckModel(t, m, h0, loss, 2e-4)
}

func TestGradCheckSingleLayerMSE(t *testing.T) {
	// One-layer variants catch sign errors that two-layer chains can mask.
	for _, kind := range []Kind{VA, AGNN, GAT, GCN} {
		a := testGraph(8, 11)
		cfg := Config{Model: kind, Layers: 1, InDim: 3, HiddenDim: 3, OutDim: 3,
			Activation: Tanh(), SelfLoops: true, Seed: 11}
		m, err := New(cfg, a)
		if err != nil {
			t.Fatal(err)
		}
		h0 := tensor.RandN(8, 3, 1, rand.New(rand.NewSource(12)))
		loss := &MSELoss{Target: tensor.RandN(8, 3, 1, rand.New(rand.NewSource(13)))}
		gradCheckModel(t, m, h0, loss, 3e-4)
	}
}

// TestVAFusedBackwardMatchesReference asserts that the Eq.-(11) fused
// backward pass and the op-by-op VJP composition produce identical
// gradients — validation strategy #4 of DESIGN.md.
func TestVAFusedBackwardMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := testGraph(30, 21)
	at := a.Transpose()
	h0 := tensor.RandN(30, 5, 1, rng)
	gOut := tensor.RandN(30, 4, 1, rng)

	mk := func(ref bool) (*VALayer, *tensor.Dense) {
		l := NewVALayer(a, at, 5, 4, Tanh(), rand.New(rand.NewSource(22)))
		l.UseReferenceBackward = ref
		l.Forward(h0, true)
		return l, l.Backward(gOut)
	}
	fused, gFused := mk(false)
	ref, gRef := mk(true)
	if !gFused.ApproxEqual(gRef, 1e-10) {
		t.Fatalf("input grads differ by %g", gFused.MaxAbsDiff(gRef))
	}
	if !fused.W.Grad.ApproxEqual(ref.W.Grad, 1e-10) {
		t.Fatalf("W grads differ by %g", fused.W.Grad.MaxAbsDiff(ref.W.Grad))
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	a := testGraph(5, 30)
	at := a.Transpose()
	rng := rand.New(rand.NewSource(31))
	g := tensor.NewDense(5, 2)
	layers := []Layer{
		NewVALayer(a, at, 2, 2, ReLU(), rng),
		NewAGNNLayer(a, at, 2, 2, ReLU(), rng),
		NewGATLayer(a, at, 2, 2, ReLU(), 0.2, rng),
		NewGCNLayer(a, at, 2, 2, ReLU(), rng),
	}
	for _, l := range layers {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Backward before Forward must panic", l.Name())
				}
			}()
			l.Backward(g)
		}()
	}
}
