package gnn

import (
	"math"
	"math/rand"
	"testing"

	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

func TestGraphNetDegeneratesToSumAggregation(t *testing.T) {
	// EdgeUpdate = h_j (copy neighbor features), VertexUpdate = agg:
	// the block reduces to plain sum aggregation A·H.
	a := testGraph(14, 500)
	h := tensor.RandN(14, 3, 1, rand.New(rand.NewSource(501)))
	blk := &GraphNetBlock{
		A:            a,
		EdgeUpdate:   func(out, _, _, hj, _ []float64) { copy(out, hj) },
		EdgeOutDim:   3,
		VertexUpdate: func(out, _, agg, _ []float64) { copy(out, agg) },
		VertexOutDim: 3,
	}
	e := NewEdgeFeatures(a, 1)
	_, hOut, u := blk.Forward(e, h, nil)
	want := a.MulDense(h)
	if !hOut.ApproxEqual(want, 1e-12) {
		t.Fatalf("GN sum degeneration differs by %g", hOut.MaxAbsDiff(want))
	}
	if u != nil {
		t.Fatal("nil GlobalUpdate must pass u through")
	}
}

func TestGraphNetEdgeFeaturesFlow(t *testing.T) {
	// Edge update adds the old edge feature to the endpoint dot product;
	// the output edges must carry exactly that.
	a := testGraph(10, 502)
	h := tensor.RandN(10, 4, 1, rand.New(rand.NewSource(503)))
	e := NewEdgeFeatures(a, 1)
	for p := 0; p < a.NNZ(); p++ {
		e.At(p)[0] = float64(p)
	}
	blk := &GraphNetBlock{
		A: a,
		EdgeUpdate: func(out, eOld, hi, hj, _ []float64) {
			out[0] = eOld[0] + tensor.Dot(hi, hj)
		},
		EdgeOutDim:   1,
		VertexUpdate: func(out, _, agg, _ []float64) { copy(out, agg) },
		VertexOutDim: 1,
	}
	eOut, _, _ := blk.Forward(e, h, nil)
	// Check one row's edges explicitly.
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			want := float64(p) + tensor.Dot(h.Row(i), h.Row(int(a.Col[p])))
			if math.Abs(eOut.At(int(p))[0]-want) > 1e-12 {
				t.Fatalf("edge %d feature = %v want %v", p, eOut.At(int(p))[0], want)
			}
		}
	}
}

func TestGraphNetGlobalUpdate(t *testing.T) {
	a := testGraph(8, 504)
	h := tensor.NewDense(8, 2).Fill(1)
	e := NewEdgeFeatures(a, 1)
	blk := &GraphNetBlock{
		A:            a,
		EdgeUpdate:   func(out, _, _, _, u []float64) { out[0] = u[0] },
		EdgeOutDim:   1,
		VertexUpdate: func(out, hOld, _, _ []float64) { copy(out, hOld) },
		VertexOutDim: 2,
		GlobalUpdate: func(out, u, meanH, meanE []float64) {
			out[0] = u[0] + meanH[0] + meanE[0]
		},
		GlobalOutDim: 1,
	}
	_, _, u := blk.Forward(e, h, []float64{2})
	// meanH = 1 (all-ones features copied), meanE = u_old = 2 → u' = 2+1+2.
	if math.Abs(u[0]-5) > 1e-12 {
		t.Fatalf("global update = %v, want 5", u[0])
	}
}

func TestGraphNetValidation(t *testing.T) {
	a := testGraph(6, 505)
	h := tensor.NewDense(6, 2)
	e := NewEdgeFeatures(a, 1)
	blk := &GraphNetBlock{A: a}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("missing updates accepted")
			}
		}()
		blk.Forward(e, h, nil)
	}()
	blk = &GraphNetBlock{A: a,
		EdgeUpdate:   func(out, _, _, _, _ []float64) {},
		VertexUpdate: func(out, _, _, _ []float64) {},
	}
	other := sparse.Identity(6) // guaranteed different pattern
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("misaligned edge features accepted")
			}
		}()
		blk.Forward(NewEdgeFeatures(other, 1), h, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("wrong vertex count accepted")
			}
		}()
		blk.Forward(e, tensor.NewDense(3, 2), nil)
	}()
}

func TestEdgeFeaturesAtAliases(t *testing.T) {
	a := testGraph(5, 507)
	e := NewEdgeFeatures(a, 3)
	e.At(0)[1] = 7
	if e.Data[1] != 7 {
		t.Fatal("At must alias storage")
	}
}
