package gnn

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"agnn/internal/obs"
	"agnn/internal/tensor"
)

// Per-layer profiling: Instrument wraps every layer of a model so forward
// and backward wall times accumulate per layer — the shared-memory
// performance-analysis counterpart of the distributed engines' byte
// counters. The decorator is backed by internal/obs: when process-wide
// tracing is on, every forward/backward additionally emits a span (e.g.
// "layer0.forward(gat)") that nests the kernel spans fired inside it, so
// the Chrome trace shows layer boundaries around the SpMM/SDDMM work.

// LayerStats accumulates timings for one layer.
type LayerStats struct {
	Index    int
	Name     string
	Forward  time.Duration
	Backward time.Duration
	Calls    int
}

// Profile holds the per-layer statistics of an instrumented model.
type Profile struct {
	Stats []*LayerStats
}

// TotalForward sums forward time across layers.
func (p *Profile) TotalForward() time.Duration {
	var t time.Duration
	for _, s := range p.Stats {
		t += s.Forward
	}
	return t
}

// TotalBackward sums backward time across layers.
func (p *Profile) TotalBackward() time.Duration {
	var t time.Duration
	for _, s := range p.Stats {
		t += s.Backward
	}
	return t
}

// TotalCalls sums forward invocations across layers.
func (p *Profile) TotalCalls() int {
	n := 0
	for _, s := range p.Stats {
		n += s.Calls
	}
	return n
}

// Reset clears all accumulated timings.
func (p *Profile) Reset() {
	for _, s := range p.Stats {
		s.Forward, s.Backward, s.Calls = 0, 0, 0
	}
}

// String renders a table sorted by total time, heaviest first.
func (p *Profile) String() string {
	rows := append([]*LayerStats(nil), p.Stats...)
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].Forward+rows[i].Backward > rows[j].Forward+rows[j].Backward
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-14s %12s %12s %8s\n", "layer", "kind", "forward", "backward", "calls")
	for _, s := range rows {
		fmt.Fprintf(&b, "%-6d %-14s %12s %12s %8d\n",
			s.Index, s.Name, s.Forward.Round(time.Microsecond),
			s.Backward.Round(time.Microsecond), s.Calls)
	}
	fmt.Fprintf(&b, "total  %-14s %12s %12s %8d\n", "",
		p.TotalForward().Round(time.Microsecond), p.TotalBackward().Round(time.Microsecond),
		p.TotalCalls())
	return b.String()
}

// profiledLayer decorates a Layer with timing and obs spans.
type profiledLayer struct {
	inner Layer
	stats *LayerStats
	// Span names are precomputed so the enabled path does no formatting.
	spanFwd, spanBwd string
}

// Name implements Layer.
func (l *profiledLayer) Name() string { return l.inner.Name() }

// Params implements Layer.
func (l *profiledLayer) Params() []*Param { return l.inner.Params() }

// Forward implements Layer.
func (l *profiledLayer) Forward(h *tensor.Dense, training bool) *tensor.Dense {
	sp := obs.Start(l.spanFwd)
	t0 := time.Now()
	out := l.inner.Forward(h, training)
	l.stats.Forward += time.Since(t0)
	l.stats.Calls++
	sp.End()
	return out
}

// Backward implements Layer.
func (l *profiledLayer) Backward(g *tensor.Dense) *tensor.Dense {
	sp := obs.Start(l.spanBwd)
	t0 := time.Now()
	out := l.inner.Backward(g)
	l.stats.Backward += time.Since(t0)
	sp.End()
	return out
}

// Instrument wraps every layer of m with timing decorators and returns the
// instrumented model together with its live Profile. The original model is
// not modified; both share the same layer objects and parameters.
func Instrument(m *Model) (*Model, *Profile) {
	prof := &Profile{}
	out := &Model{}
	for i, l := range m.Layers {
		s := &LayerStats{Index: i, Name: l.Name()}
		prof.Stats = append(prof.Stats, s)
		out.Layers = append(out.Layers, &profiledLayer{
			inner: l, stats: s,
			spanFwd: fmt.Sprintf("layer%d.forward(%s)", i, l.Name()),
			spanBwd: fmt.Sprintf("layer%d.backward(%s)", i, l.Name()),
		})
	}
	return out, prof
}
