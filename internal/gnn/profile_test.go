package gnn

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"agnn/internal/obs"
	"agnn/internal/tensor"
)

func TestInstrumentPreservesSemantics(t *testing.T) {
	a := testGraph(15, 400)
	m, err := New(Config{Model: GAT, Layers: 2, InDim: 3, HiddenDim: 4, OutDim: 2,
		Activation: Tanh(), Seed: 401}, a)
	if err != nil {
		t.Fatal(err)
	}
	h := tensor.RandN(15, 3, 1, rand.New(rand.NewSource(402)))
	want := m.Forward(h, false)
	im, prof := Instrument(m)
	got := im.Forward(h, false)
	if !got.ApproxEqual(want, 0) {
		t.Fatal("instrumented model changed outputs")
	}
	if len(prof.Stats) != 2 || prof.Stats[0].Calls != 1 {
		t.Fatalf("profile stats wrong: %+v", prof.Stats)
	}
	if prof.TotalForward() <= 0 {
		t.Fatal("no forward time recorded")
	}
	if prof.TotalBackward() != 0 {
		t.Fatal("backward time recorded without Backward call")
	}
}

func TestInstrumentRecordsBackwardAndShares(t *testing.T) {
	a := testGraph(12, 403)
	m, err := New(Config{Model: VA, Layers: 2, InDim: 3, HiddenDim: 3, OutDim: 2,
		Activation: Tanh(), Seed: 404}, a)
	if err != nil {
		t.Fatal(err)
	}
	im, prof := Instrument(m)
	h := tensor.RandN(12, 3, 1, rand.New(rand.NewSource(405)))
	loss := &MSELoss{Target: tensor.RandN(12, 2, 1, rand.New(rand.NewSource(406)))}
	im.TrainStep(h, loss, NewSGD(0.01, 0))
	if prof.TotalBackward() <= 0 {
		t.Fatal("no backward time recorded")
	}
	// Parameters are shared: the training step must have updated the
	// original model's weights too.
	if m.Params()[0].Grad == nil {
		t.Fatal("params not shared")
	}
	// String table renders all layers and a total row.
	s := prof.String()
	if !strings.Contains(s, "va") || !strings.Contains(s, "total") {
		t.Fatalf("profile table missing content:\n%s", s)
	}
	prof.Reset()
	if prof.TotalForward() != 0 || prof.Stats[0].Calls != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestProfileTotalRowIncludesCalls(t *testing.T) {
	p := &Profile{Stats: []*LayerStats{
		{Index: 0, Name: "gat", Forward: time.Millisecond, Calls: 3},
		{Index: 1, Name: "gat", Backward: time.Millisecond, Calls: 2},
	}}
	lines := strings.Split(strings.TrimSpace(p.String()), "\n")
	total := lines[len(lines)-1]
	if !strings.HasPrefix(total, "total") {
		t.Fatalf("last row is not the total row: %q", total)
	}
	fields := strings.Fields(total)
	if fields[len(fields)-1] != "5" {
		t.Fatalf("total row must end with the summed calls column, got %q", total)
	}
}

func TestInstrumentEmitsObsSpans(t *testing.T) {
	tr := obs.New()
	obs.Enable(tr)
	defer obs.Disable()

	a := testGraph(12, 407)
	m, err := New(Config{Model: GAT, Layers: 2, InDim: 3, HiddenDim: 4, OutDim: 2,
		Activation: Tanh(), Seed: 408}, a)
	if err != nil {
		t.Fatal(err)
	}
	im, _ := Instrument(m)
	h := tensor.RandN(12, 3, 1, rand.New(rand.NewSource(409)))
	loss := &MSELoss{Target: tensor.RandN(12, 2, 1, rand.New(rand.NewSource(410)))}
	im.TrainStep(h, loss, NewSGD(0.01, 0))

	counts := map[string]int64{}
	for _, s := range tr.Report().Spans {
		counts[s.Name] = s.Count
	}
	for _, want := range []string{
		"layer0.forward(gat)", "layer1.forward(gat)",
		"layer0.backward(gat)", "layer1.backward(gat)",
	} {
		if counts[want] != 1 {
			t.Fatalf("span %q count = %d, want 1 (have %v)", want, counts[want], counts)
		}
	}
}
