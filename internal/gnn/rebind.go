package gnn

import (
	"fmt"

	"agnn/internal/sparse"
)

// RebindAdjacency builds a new model over a different adjacency matrix that
// *shares* the parameter objects of src. This is the global-formulation
// side of mini-batch training (the paper's "one can straightforwardly
// extend most of our routines to mini-batching"): extract the induced
// subgraph of an expanded seed batch (graph.InducedSubgraph), rebind the
// model to it, and train — gradients accumulate into the shared buffers.
// The matrix a must already carry the model's preprocessing (self loops /
// normalization), as it does when it is an induced subgraph of a processed
// layer adjacency.
func RebindAdjacency(src *Model, a *sparse.CSR) (*Model, error) {
	at := a.Transpose()
	out := &Model{}
	for _, l := range src.Layers {
		switch ll := l.(type) {
		case *VALayer:
			out.Layers = append(out.Layers, &VALayer{A: a, AT: at, W: ll.W, Act: ll.Act,
				UseReferenceBackward: ll.UseReferenceBackward})
		case *AGNNLayer:
			out.Layers = append(out.Layers, &AGNNLayer{A: a, AT: at, W: ll.W, Beta: ll.Beta, Act: ll.Act})
		case *GATLayer:
			out.Layers = append(out.Layers, &GATLayer{A: a, AT: at, W: ll.W, A1: ll.A1, A2: ll.A2,
				Act: ll.Act, NegSlope: ll.NegSlope})
		case *GCNLayer:
			out.Layers = append(out.Layers, &GCNLayer{A: a, AT: at, W: ll.W, Act: ll.Act})
		case *GINLayer:
			out.Layers = append(out.Layers, &GINLayer{A: a, AT: at, W1: ll.W1, W2: ll.W2,
				Eps: ll.Eps, ActMLP: ll.ActMLP, Act: ll.Act})
		case *SGCLayer:
			out.Layers = append(out.Layers, &SGCLayer{A: a, AT: at, K: ll.K, W: ll.W, Act: ll.Act})
		case *GenericLayer:
			// phiParams is forced before copying so both models share the
			// same *Param objects (and therefore the same plan signature).
			ll.phiParams()
			out.Layers = append(out.Layers, &GenericLayer{A: a, Psi: ll.Psi, Agg: ll.Agg,
				Phi: ll.Phi, Act: ll.Act, PhiFirst: ll.PhiFirst, params: ll.params})
		case *MultiHeadGATLayer:
			mh := &MultiHeadGATLayer{Concat: ll.Concat, headDim: ll.headDim}
			for _, head := range ll.Heads {
				mh.Heads = append(mh.Heads, &GATLayer{A: a, AT: at, W: head.W,
					A1: head.A1, A2: head.A2, Act: head.Act, NegSlope: head.NegSlope})
			}
			out.Layers = append(out.Layers, mh)
		case *DropoutLayer:
			out.Layers = append(out.Layers, ll)
		default:
			return nil, fmt.Errorf("gnn: cannot rebind layer type %T", l)
		}
	}
	return out, nil
}

// Adjacency returns the processed adjacency the model's first graph layer
// is bound to — the matrix with the construction-time preprocessing (self
// loops, GCN normalization) already applied. Induced subgraphs for
// mini-batching or serving must be taken from this matrix, not the raw
// input graph, so that rebinding preserves the layer semantics.
func (m *Model) Adjacency() (*sparse.CSR, error) {
	for _, l := range m.Layers {
		switch ll := l.(type) {
		case *VALayer:
			return ll.A, nil
		case *AGNNLayer:
			return ll.A, nil
		case *GATLayer:
			return ll.A, nil
		case *GCNLayer:
			return ll.A, nil
		case *GINLayer:
			return ll.A, nil
		case *SGCLayer:
			return ll.A, nil
		case *GenericLayer:
			return ll.A, nil
		case *MultiHeadGATLayer:
			if len(ll.Heads) > 0 {
				return ll.Heads[0].A, nil
			}
		case *DropoutLayer:
			continue
		}
	}
	return nil, fmt.Errorf("gnn: model has no adjacency-bound layer")
}

// Rebind swaps the model's adjacency in place: every layer keeps its
// parameters, options and plan-cache signature, and only the (A, Aᵀ) pair
// changes. Combined with the process-wide plan cache this makes subgraph
// rotation recompile-free: each layer releases its current plan lease back
// to the cache and, on the next planned Forward, leases the plan for the
// new adjacency — a cache hit whenever that structure has been executed
// before. Prefer this over RebindAdjacency in loops; the latter allocates
// fresh layer structs whose leases die with them.
func (m *Model) Rebind(a *sparse.CSR) error {
	at := a.Transpose()
	for _, l := range m.Layers {
		switch ll := l.(type) {
		case *VALayer:
			ll.A, ll.AT = a, at
		case *AGNNLayer:
			ll.A, ll.AT = a, at
		case *GATLayer:
			ll.A, ll.AT = a, at
		case *GCNLayer:
			ll.A, ll.AT = a, at
		case *GINLayer:
			ll.A, ll.AT = a, at
		case *SGCLayer:
			ll.A, ll.AT = a, at
		case *GenericLayer:
			ll.A = a
		case *MultiHeadGATLayer:
			for _, head := range ll.Heads {
				head.A, head.AT = a, at
			}
		case *DropoutLayer:
		default:
			return fmt.Errorf("gnn: cannot rebind layer type %T", l)
		}
	}
	return nil
}
