package gnn

import (
	"fmt"

	"agnn/internal/sparse"
)

// RebindAdjacency builds a new model over a different adjacency matrix that
// *shares* the parameter objects of src. This is the global-formulation
// side of mini-batch training (the paper's "one can straightforwardly
// extend most of our routines to mini-batching"): extract the induced
// subgraph of an expanded seed batch (graph.InducedSubgraph), rebind the
// model to it, and train — gradients accumulate into the shared buffers.
// The matrix a must already carry the model's preprocessing (self loops /
// normalization), as it does when it is an induced subgraph of a processed
// layer adjacency.
func RebindAdjacency(src *Model, a *sparse.CSR) (*Model, error) {
	at := a.Transpose()
	out := &Model{}
	for _, l := range src.Layers {
		switch ll := l.(type) {
		case *VALayer:
			out.Layers = append(out.Layers, &VALayer{A: a, AT: at, W: ll.W, Act: ll.Act,
				UseReferenceBackward: ll.UseReferenceBackward})
		case *AGNNLayer:
			out.Layers = append(out.Layers, &AGNNLayer{A: a, AT: at, W: ll.W, Beta: ll.Beta, Act: ll.Act})
		case *GATLayer:
			out.Layers = append(out.Layers, &GATLayer{A: a, AT: at, W: ll.W, A1: ll.A1, A2: ll.A2,
				Act: ll.Act, NegSlope: ll.NegSlope})
		case *GCNLayer:
			out.Layers = append(out.Layers, &GCNLayer{A: a, AT: at, W: ll.W, Act: ll.Act})
		case *MultiHeadGATLayer:
			mh := &MultiHeadGATLayer{Concat: ll.Concat, headDim: ll.headDim}
			for _, head := range ll.Heads {
				mh.Heads = append(mh.Heads, &GATLayer{A: a, AT: at, W: head.W,
					A1: head.A1, A2: head.A2, Act: head.Act, NegSlope: head.NegSlope})
			}
			out.Layers = append(out.Layers, mh)
		case *DropoutLayer:
			out.Layers = append(out.Layers, ll)
		default:
			return nil, fmt.Errorf("gnn: cannot rebind layer type %T", l)
		}
	}
	return out, nil
}
