package gnn

import (
	"math"
	"math/rand"
	"testing"

	"agnn/internal/tensor"
)

func TestConfusionMatrix(t *testing.T) {
	// 3 vertices, 2 classes: true = [0,1,1], preds = [0,0,1].
	out := tensor.NewDenseFrom(3, 2, []float64{2, 1, 5, 0, 1, 4})
	cm := ConfusionMatrix(out, []int{0, 1, 1}, nil, 2)
	if cm[0][0] != 1 || cm[1][0] != 1 || cm[1][1] != 1 || cm[0][1] != 0 {
		t.Fatalf("confusion matrix %v", cm)
	}
	// Mask out the misclassified vertex.
	cm = ConfusionMatrix(out, []int{0, 1, 1}, []bool{true, false, true}, 2)
	if cm[1][0] != 0 || cm[1][1] != 1 {
		t.Fatalf("masked confusion matrix %v", cm)
	}
}

func TestF1Scores(t *testing.T) {
	// Perfect predictions → all F1 = 1.
	cm := [][]int{{5, 0}, {0, 7}}
	per, macro, micro := F1Scores(cm)
	if per[0] != 1 || per[1] != 1 || macro != 1 || micro != 1 {
		t.Fatalf("perfect F1 = %v %v %v", per, macro, micro)
	}
	// Known case: class 0: tp=2 fp=1 fn=1 → F1 = 2·2/(4+1+1) = 2/3;
	// class 1: tp=3 fp=1 fn=1 → 0.75.
	cm = [][]int{{2, 1}, {1, 3}}
	per, macro, micro = F1Scores(cm)
	if math.Abs(per[0]-2.0/3) > 1e-12 || math.Abs(per[1]-0.75) > 1e-12 {
		t.Fatalf("per-class F1 = %v", per)
	}
	if math.Abs(macro-(2.0/3+0.75)/2) > 1e-12 {
		t.Fatalf("macro F1 = %v", macro)
	}
	// Micro = 2·5/(10+2+2) = 10/14.
	if math.Abs(micro-10.0/14) > 1e-12 {
		t.Fatalf("micro F1 = %v", micro)
	}
	// Empty class contributes nothing to macro.
	cm = [][]int{{2, 0, 0}, {0, 2, 0}, {0, 0, 0}}
	_, macro, _ = F1Scores(cm)
	if macro != 1 {
		t.Fatalf("macro with empty class = %v", macro)
	}
}

func TestSchedules(t *testing.T) {
	c := ConstantLR(0.1)
	if c.LR(0) != 0.1 || c.LR(100) != 0.1 || c.Name() != "constant" {
		t.Fatal("ConstantLR wrong")
	}
	s := StepLR{Base: 1, StepSize: 10, Gamma: 0.5}
	if s.LR(0) != 1 || s.LR(9) != 1 || s.LR(10) != 0.5 || s.LR(25) != 0.25 {
		t.Fatalf("StepLR: %v %v %v", s.LR(9), s.LR(10), s.LR(25))
	}
	cos := CosineLR{Base: 1, Min: 0.1, Span: 100}
	if cos.LR(0) != 1 {
		t.Fatalf("cosine start %v", cos.LR(0))
	}
	if math.Abs(cos.LR(50)-0.55) > 1e-12 {
		t.Fatalf("cosine midpoint %v", cos.LR(50))
	}
	if cos.LR(100) != 0.1 || cos.LR(500) != 0.1 {
		t.Fatal("cosine tail wrong")
	}
	// Monotone decreasing over the span.
	for e := 1; e < 100; e++ {
		if cos.LR(e) > cos.LR(e-1)+1e-12 {
			t.Fatalf("cosine not monotone at %d", e)
		}
	}
}

func TestEarlyStopper(t *testing.T) {
	es := &EarlyStopper{Patience: 2, MinDelta: 0.01, Mode: "min"}
	seq := []float64{1.0, 0.8, 0.79, 0.795, 0.80}
	var stoppedAt int
	for i, v := range seq {
		if es.Step(v) {
			stoppedAt = i
			break
		}
	}
	// 0.8 improves, 0.79 improves (>0.01? 0.8-0.79=0.01 → NOT > MinDelta...
	// improvement needs metric < best-MinDelta = 0.79; 0.79 is not <0.79 →
	// bad=1; 0.795 bad=2 → stop at index 3.
	if stoppedAt != 3 {
		t.Fatalf("stopped at %d", stoppedAt)
	}
	if es.Best() != 0.8 {
		t.Fatalf("best = %v", es.Best())
	}
	// Max mode.
	es = &EarlyStopper{Patience: 1, Mode: "max"}
	if es.Step(0.5) {
		t.Fatal("first step must not stop")
	}
	if !es.Step(0.4) {
		t.Fatal("no improvement with patience 1 must stop")
	}
	// Bad mode panics.
	defer func() {
		if recover() == nil {
			t.Fatal("bad mode accepted")
		}
	}()
	(&EarlyStopper{Mode: "sideways"}).Step(1)
}

func TestTrainWithScheduleAndEarlyStop(t *testing.T) {
	a := testGraph(20, 300)
	m, err := New(Config{Model: GCN, Layers: 2, InDim: 4, HiddenDim: 6, OutDim: 2,
		Activation: ReLU(), Seed: 301}, a)
	if err != nil {
		t.Fatal(err)
	}
	h := tensor.RandN(20, 4, 1, rand.New(rand.NewSource(302)))
	labels := make([]int, 20)
	for i := range labels {
		labels[i] = i % 2
		h.Set(i, labels[i], h.At(i, labels[i])+1)
	}
	loss := &CrossEntropyLoss{Labels: labels}
	hist := m.TrainWithSchedule(h, loss, CosineLR{Base: 0.1, Min: 0.001, Span: 40},
		0.9, 40, nil)
	if len(hist) != 40 || hist[39] >= hist[0] {
		t.Fatalf("scheduled training failed: %d epochs, %v → %v", len(hist), hist[0], hist[len(hist)-1])
	}
	// Early stopping cuts training short on a plateau (zero LR → no change).
	m2, _ := New(Config{Model: GCN, Layers: 1, InDim: 4, HiddenDim: 4, OutDim: 2, Seed: 303}, a)
	hist = m2.TrainWithSchedule(h, loss, ConstantLR(0), 0, 50,
		&EarlyStopper{Patience: 3, Mode: "min"})
	if len(hist) >= 50 {
		t.Fatalf("early stopping did not trigger: %d epochs", len(hist))
	}
}
