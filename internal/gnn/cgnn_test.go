package gnn

import (
	"math/rand"
	"testing"

	"agnn/internal/graph"
	"agnn/internal/tensor"
)

func TestGINForwardDefinition(t *testing.T) {
	a := testGraph(10, 600)
	at := a.Transpose()
	rng := rand.New(rand.NewSource(601))
	l := NewGINLayer(a, at, 3, 5, 2, Identity(), rng)
	l.Eps.Value.Set(0, 0, 0.5)
	h := tensor.RandN(10, 3, 1, rng)
	got := l.Forward(h, false)
	pre := a.MulDense(h).Add(h.Scale(1.5))
	want := tensor.MM(tensor.MM(pre, l.W1.Value).Apply(ReLU().F), l.W2.Value)
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("GIN forward differs by %g", got.MaxAbsDiff(want))
	}
}

func TestGINGradCheck(t *testing.T) {
	a := testGraph(9, 602)
	at := a.Transpose()
	rng := rand.New(rand.NewSource(603))
	l := NewGINLayer(a, at, 3, 4, 2, Tanh(), rng)
	l.ActMLP = Tanh() // smooth MLP non-linearity for finite differences
	m := &Model{Layers: []Layer{l}}
	h := tensor.RandN(9, 3, 0.7, rng)
	loss := &MSELoss{Target: tensor.RandN(9, 2, 1, rng)}
	gradCheckModel(t, m, h, loss, 3e-4)
}

func TestGINTrains(t *testing.T) {
	adj, labels := graph.PlantedPartition(50, 2, 0.3, 0.02, 604)
	rng := rand.New(rand.NewSource(605))
	at := adj.Transpose()
	m := &Model{Layers: []Layer{
		NewGINLayer(adj, at, 4, 8, 8, ReLU(), rng),
		NewGINLayer(adj, at, 8, 8, 2, Identity(), rng),
	}}
	h := tensor.RandN(50, 4, 0.5, rng)
	for i := range labels {
		h.Set(i, labels[i], h.At(i, labels[i])+1)
	}
	hist, err := m.Train(h, &CrossEntropyLoss{Labels: labels}, NewAdam(0.02), 30)
	if err != nil {
		t.Fatal(err)
	}
	if hist[len(hist)-1] >= 0.7*hist[0] {
		t.Fatalf("GIN did not train: %v → %v", hist[0], hist[len(hist)-1])
	}
	// ε is learnable: it should have moved.
	if m.Layers[0].(*GINLayer).Eps.Scalar() == 0 {
		t.Fatal("ε did not receive updates")
	}
}

func TestSGCForwardIsKHopGCNWithoutNonlinearity(t *testing.T) {
	raw := testGraph(12, 606)
	a := graph.NormalizeGCN(raw)
	at := a.Transpose()
	rng := rand.New(rand.NewSource(607))
	l := NewSGCLayer(a, at, 3, 4, 2, Identity(), rng)
	h := tensor.RandN(12, 4, 1, rng)
	got := l.Forward(h, false)
	want := tensor.MM(a.MulDense(a.MulDense(a.MulDense(h))), l.W.Value)
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("SGC forward differs by %g", got.MaxAbsDiff(want))
	}
}

func TestSGCGradCheck(t *testing.T) {
	raw := testGraph(8, 608)
	a := graph.NormalizeGCN(raw)
	at := a.Transpose()
	rng := rand.New(rand.NewSource(609))
	l := NewSGCLayer(a, at, 2, 3, 2, Tanh(), rng)
	m := &Model{Layers: []Layer{l}}
	h := tensor.RandN(8, 3, 1, rng)
	loss := &MSELoss{Target: tensor.RandN(8, 2, 1, rng)}
	gradCheckModel(t, m, h, loss, 3e-4)
}

func TestSGCKOneEqualsGCNForward(t *testing.T) {
	raw := testGraph(15, 610)
	a := graph.NormalizeGCN(raw)
	at := a.Transpose()
	sgc := NewSGCLayer(a, at, 1, 4, 3, ReLU(), rand.New(rand.NewSource(611)))
	gcn := NewGCNLayer(a, at, 4, 3, ReLU(), rand.New(rand.NewSource(612)))
	gcn.W.Value.CopyFrom(sgc.W.Value)
	h := tensor.RandN(15, 4, 1, rand.New(rand.NewSource(613)))
	// GCN computes Â·(H·W); SGC computes (Â·H)·W — associativity makes
	// the two identical, the Φ∘⊕ flexibility once more.
	if !sgc.Forward(h, false).ApproxEqual(gcn.Forward(h, false), 1e-10) {
		t.Fatal("SGC(K=1) != GCN")
	}
}

func TestSGCRejectsZeroHops(t *testing.T) {
	a := testGraph(5, 614)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSGCLayer(a, a.Transpose(), 0, 2, 2, ReLU(), rand.New(rand.NewSource(615)))
}

func TestCGNNBackwardBeforeForwardPanics(t *testing.T) {
	a := testGraph(5, 616)
	at := a.Transpose()
	rng := rand.New(rand.NewSource(617))
	for _, l := range []Layer{
		NewGINLayer(a, at, 2, 3, 2, ReLU(), rng),
		NewSGCLayer(a, at, 2, 2, 2, ReLU(), rng),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s must panic", l.Name())
				}
			}()
			l.Backward(tensor.NewDense(5, 2))
		}()
	}
}
