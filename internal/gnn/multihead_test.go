package gnn

import (
	"math/rand"
	"testing"

	"agnn/internal/tensor"
)

func TestMultiHeadShapes(t *testing.T) {
	a := testGraph(12, 60)
	at := a.Transpose()
	rng := rand.New(rand.NewSource(61))
	h := tensor.RandN(12, 5, 1, rng)

	concat := NewMultiHeadGATLayer(a, at, 5, 4, 3, true, Tanh(), 0.2, rng)
	if concat.OutDim() != 12 {
		t.Fatalf("concat OutDim = %d", concat.OutDim())
	}
	out := concat.Forward(h, false)
	if out.Rows != 12 || out.Cols != 12 {
		t.Fatalf("concat output %d×%d", out.Rows, out.Cols)
	}

	avg := NewMultiHeadGATLayer(a, at, 5, 4, 3, false, Tanh(), 0.2, rng)
	if avg.OutDim() != 4 {
		t.Fatalf("avg OutDim = %d", avg.OutDim())
	}
	out = avg.Forward(h, false)
	if out.Cols != 4 {
		t.Fatalf("avg output cols %d", out.Cols)
	}
	if got := len(concat.Params()); got != 9 { // 3 heads × (W, a1, a2)
		t.Fatalf("params = %d", got)
	}
	if concat.Name() != "gat-multihead" {
		t.Fatal("name wrong")
	}
}

func TestMultiHeadSingleHeadEqualsGAT(t *testing.T) {
	// One concat head must behave exactly like a plain GAT layer.
	a := testGraph(15, 62)
	at := a.Transpose()
	h := tensor.RandN(15, 4, 1, rand.New(rand.NewSource(63)))
	mh := NewMultiHeadGATLayer(a, at, 4, 3, 1, true, Tanh(), 0.2, rand.New(rand.NewSource(64)))
	plain := NewGATLayer(a, at, 4, 3, Tanh(), 0.2, rand.New(rand.NewSource(64)))
	if !mh.Forward(h, false).ApproxEqual(plain.Forward(h, false), 1e-12) {
		t.Fatal("1-head multi-head != single-head GAT")
	}
}

func TestMultiHeadAverageIsHeadMean(t *testing.T) {
	a := testGraph(10, 65)
	at := a.Transpose()
	h := tensor.RandN(10, 4, 1, rand.New(rand.NewSource(66)))
	mh := NewMultiHeadGATLayer(a, at, 4, 3, 4, false, Tanh(), 0.2, rand.New(rand.NewSource(67)))
	out := mh.Forward(h, false)
	want := tensor.NewDense(10, 3)
	for _, head := range mh.Heads {
		want.AddInPlace(head.Forward(h, false))
	}
	want.ScaleInPlace(0.25)
	if !out.ApproxEqual(want, 1e-12) {
		t.Fatal("average != mean of head outputs")
	}
}

func TestMultiHeadGradCheck(t *testing.T) {
	// Full finite-difference validation of the multi-head backward pass,
	// both concat and average variants, stacked into a 2-layer model.
	a := testGraph(8, 68)
	at := a.Transpose()
	rng := rand.New(rand.NewSource(69))
	l1 := NewMultiHeadGATLayer(a, at, 3, 2, 2, true, Tanh(), 0.2, rng) // out 4
	l2 := NewMultiHeadGATLayer(a, at, 4, 2, 3, false, Identity(), 0.2, rng)
	m := &Model{Layers: []Layer{l1, l2}}
	h0 := tensor.RandN(8, 3, 0.8, rng)
	loss := &MSELoss{Target: tensor.RandN(8, 2, 1, rng)}
	gradCheckModel(t, m, h0, loss, 5e-4)
}

func TestMultiHeadTrainsOnClassification(t *testing.T) {
	a := testGraph(30, 70)
	at := a.Transpose()
	rng := rand.New(rand.NewSource(71))
	m := &Model{Layers: []Layer{
		NewMultiHeadGATLayer(a, at, 6, 4, 2, true, ELU(1), 0.2, rng), // out 8
		NewMultiHeadGATLayer(a, at, 8, 3, 2, false, Identity(), 0.2, rng),
	}}
	h := tensor.RandN(30, 6, 0.5, rng)
	labels := make([]int, 30)
	for i := range labels {
		labels[i] = i % 3
		h.Set(i, labels[i], h.At(i, labels[i])+1)
	}
	hist, err := m.Train(h, &CrossEntropyLoss{Labels: labels}, NewAdam(0.02), 30)
	if err != nil {
		t.Fatal(err)
	}
	if hist[len(hist)-1] >= 0.8*hist[0] {
		t.Fatalf("multi-head training did not reduce loss: %v → %v", hist[0], hist[len(hist)-1])
	}
}

func TestMultiHeadPanicsOnZeroHeads(t *testing.T) {
	a := testGraph(5, 72)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiHeadGATLayer(a, a.Transpose(), 2, 2, 0, true, ReLU(), 0.2, rand.New(rand.NewSource(73)))
}

func TestConfigHeadsBuildsMultiHeadModel(t *testing.T) {
	a := testGraph(20, 74)
	m, err := New(Config{Model: GAT, Layers: 3, InDim: 5, HiddenDim: 4,
		OutDim: 3, Heads: 2, Activation: ELU(1), SelfLoops: true, Seed: 75}, a)
	if err != nil {
		t.Fatal(err)
	}
	for l, layer := range m.Layers {
		mh, ok := layer.(*MultiHeadGATLayer)
		if !ok {
			t.Fatalf("layer %d is %T, want MultiHeadGATLayer", l, layer)
		}
		if l < 2 && (!mh.Concat || mh.OutDim() != 8) {
			t.Fatalf("hidden layer %d: concat=%v out=%d", l, mh.Concat, mh.OutDim())
		}
		if l == 2 && (mh.Concat || mh.OutDim() != 3) {
			t.Fatalf("final layer: concat=%v out=%d", mh.Concat, mh.OutDim())
		}
	}
	// Whole stack runs and trains.
	h := tensor.RandN(20, 5, 0.5, rand.New(rand.NewSource(76)))
	labels := make([]int, 20)
	for i := range labels {
		labels[i] = i % 3
		h.Set(i, labels[i], h.At(i, labels[i])+1)
	}
	hist, err := m.Train(h, &CrossEntropyLoss{Labels: labels}, NewAdam(0.02), 25)
	if err != nil {
		t.Fatal(err)
	}
	if hist[len(hist)-1] >= hist[0] {
		t.Fatalf("multi-head config model did not train: %v → %v", hist[0], hist[len(hist)-1])
	}
	// Heads<=1 keeps single-head layers.
	m1, _ := New(Config{Model: GAT, Layers: 1, InDim: 5, HiddenDim: 4, OutDim: 3,
		Heads: 1, Seed: 77}, a)
	if _, ok := m1.Layers[0].(*GATLayer); !ok {
		t.Fatal("Heads=1 must build plain GAT layers")
	}
}
