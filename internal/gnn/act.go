// Package gnn implements the paper's primary contribution: global tensor
// formulations of attentional GNN models — vanilla attention (VA), AGNN,
// and GAT — for both inference (Section 4) and training (Section 5),
// together with the C-GNN special case (GCN), a programmable Ψ/⊕/Φ model
// builder (Eq. 1), activations, losses, optimizers, and a full-batch
// training loop.
//
// Every layer realizes H^{l+1} = σ(Z^l) with Z^l = (Φ∘⊕)(Ψ(A, H^l), H^l)
// and a backward pass G^{l-1} = σ'(Z^{l-1}) ⊙ Γ^l derived from the paper's
// tensor formulations. The VA backward pass follows Eq. (11)–(13) verbatim;
// AGNN and GAT compose the same vector-Jacobian building blocks (SDDMM,
// SpMM, sparse softmax, virtual-matrix score kernels).
package gnn

import (
	"math"

	"agnn/internal/tensor"
)

// Activation is an element-wise non-linearity σ with its derivative σ',
// both taking the pre-activation value.
type Activation struct {
	Name string
	F    func(float64) float64
	DF   func(float64) float64
}

// ReLU is max(0, x).
func ReLU() Activation {
	return Activation{
		Name: "relu",
		F:    func(x float64) float64 { return math.Max(0, x) },
		DF: func(x float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		},
	}
}

// LeakyReLU is x for x ≥ 0 and slope·x otherwise (GAT's score
// non-linearity, also usable as a layer activation).
func LeakyReLU(slope float64) Activation {
	return Activation{
		Name: "leaky-relu",
		F: func(x float64) float64 {
			if x < 0 {
				return slope * x
			}
			return x
		},
		DF: func(x float64) float64 {
			if x < 0 {
				return slope
			}
			return 1
		},
	}
}

// ELU is x for x ≥ 0 and α(eˣ−1) otherwise.
func ELU(alpha float64) Activation {
	return Activation{
		Name: "elu",
		F: func(x float64) float64 {
			if x < 0 {
				return alpha * (math.Exp(x) - 1)
			}
			return x
		},
		DF: func(x float64) float64 {
			if x < 0 {
				return alpha * math.Exp(x)
			}
			return 1
		},
	}
}

// Sigmoid is 1/(1+e⁻ˣ).
func Sigmoid() Activation {
	f := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	return Activation{
		Name: "sigmoid",
		F:    f,
		DF:   func(x float64) float64 { s := f(x); return s * (1 - s) },
	}
}

// Tanh is the hyperbolic tangent.
func Tanh() Activation {
	return Activation{
		Name: "tanh",
		F:    math.Tanh,
		DF:   func(x float64) float64 { t := math.Tanh(x); return 1 - t*t },
	}
}

// Identity is the no-op activation used on final (logit) layers.
func Identity() Activation {
	return Activation{
		Name: "identity",
		F:    func(x float64) float64 { return x },
		DF:   func(float64) float64 { return 1 },
	}
}

// ActivationByName resolves an activation by its Name; LeakyReLU and ELU
// use their conventional default parameters (0.01 and 1).
func ActivationByName(name string) (Activation, bool) {
	switch name {
	case "relu":
		return ReLU(), true
	case "leaky-relu":
		return LeakyReLU(0.01), true
	case "elu":
		return ELU(1), true
	case "sigmoid":
		return Sigmoid(), true
	case "tanh":
		return Tanh(), true
	case "identity", "":
		return Identity(), true
	}
	return Activation{}, false
}

// apply returns σ(Z) as a new matrix.
func (a Activation) apply(z *tensor.Dense) *tensor.Dense { return z.Apply(a.F) }

// derivAt returns σ'(Z) as a new matrix.
func (a Activation) derivAt(z *tensor.Dense) *tensor.Dense { return z.Apply(a.DF) }
