package gnn

import (
	"math/rand"

	"agnn/internal/tensor"
)

// DropoutLayer applies inverted-scaling dropout to the feature matrix
// during training and is the identity during inference. The original GAT
// applies dropout to both input features and attention coefficients; this
// layer covers the feature side and composes with any model layer in a
// gnn.Model stack.
type DropoutLayer struct {
	Rate float64 // drop probability in [0, 1)
	rng  *rand.Rand
	mask *tensor.Dense
}

// NewDropout creates a dropout layer with its own deterministic RNG.
func NewDropout(rate float64, seed int64) *DropoutLayer {
	if rate < 0 || rate >= 1 {
		panic("gnn: dropout rate must be in [0, 1)")
	}
	return &DropoutLayer{Rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Layer.
func (l *DropoutLayer) Name() string { return "dropout" }

// Params implements Layer.
func (l *DropoutLayer) Params() []*Param { return nil }

// Forward implements Layer.
func (l *DropoutLayer) Forward(h *tensor.Dense, training bool) *tensor.Dense {
	if !training || l.Rate == 0 {
		l.mask = nil
		return h
	}
	scale := 1 / (1 - l.Rate)
	l.mask = tensor.NewDense(h.Rows, h.Cols)
	for i := range l.mask.Data {
		if l.rng.Float64() >= l.Rate {
			l.mask.Data[i] = scale
		}
	}
	return h.Hadamard(l.mask)
}

// Backward implements Layer.
func (l *DropoutLayer) Backward(gOut *tensor.Dense) *tensor.Dense {
	if l.mask == nil {
		return gOut
	}
	return gOut.Hadamard(l.mask)
}
