package gnn

import (
	"math/rand"
	"testing"

	"agnn/internal/tensor"
)

func TestGenericLayerMatchesVAForward(t *testing.T) {
	// A GenericLayer assembled from DotPsi + SumAgg + LinearPhi must equal
	// the built-in VA layer's forward pass.
	a := testGraph(15, 40)
	rng := rand.New(rand.NewSource(41))
	h := tensor.RandN(15, 4, 1, rng)
	w := tensor.GlorotInit(4, 3, rand.New(rand.NewSource(42)))

	va := NewVALayer(a, a.Transpose(), 4, 3, ReLU(), rand.New(rand.NewSource(43)))
	va.W.Value.CopyFrom(w)

	gen := &GenericLayer{
		A: a, Psi: DotPsi(), Agg: SumAgg(), Phi: LinearPhi(w),
		Act: ReLU(), PhiFirst: true,
	}
	if !gen.Forward(h, false).ApproxEqual(va.Forward(h, false), 1e-10) {
		t.Fatal("generic VA != built-in VA")
	}
}

func TestGenericLayerMatchesGCNForward(t *testing.T) {
	a := testGraph(12, 44)
	rng := rand.New(rand.NewSource(45))
	h := tensor.RandN(12, 3, 1, rng)
	w := tensor.GlorotInit(3, 2, rng)
	gen := &GenericLayer{A: a, Psi: AdjacencyPsi(), Agg: SumAgg(), Phi: LinearPhi(w), Act: ReLU()}
	want := tensor.MM(a.MulDense(h), w).Apply(ReLU().F)
	if !gen.Forward(h, false).ApproxEqual(want, 1e-10) {
		t.Fatal("generic GCN forward wrong")
	}
}

func TestGenericPhiOrderEquivalenceForLinearPhi(t *testing.T) {
	// Section 4.4: for linear Φ, Φ∘⊕ commutes — both application orders
	// must agree.
	a := testGraph(10, 46)
	rng := rand.New(rand.NewSource(47))
	h := tensor.RandN(10, 4, 1, rng)
	w := tensor.GlorotInit(4, 4, rng)
	mk := func(first bool) *GenericLayer {
		return &GenericLayer{A: a, Psi: SoftmaxDotPsi(), Agg: SumAgg(),
			Phi: LinearPhi(w), Act: Identity(), PhiFirst: first}
	}
	x := mk(true).Forward(h, false)
	y := mk(false).Forward(h, false)
	if !x.ApproxEqual(y, 1e-10) {
		t.Fatalf("Φ∘⊕ order changed the result by %g for linear Φ", x.MaxAbsDiff(y))
	}
}

func TestGenericSemiringAggregations(t *testing.T) {
	a := testGraph(10, 48)
	rng := rand.New(rand.NewSource(49))
	h := tensor.RandN(10, 3, 1, rng)
	psi := SoftmaxDotPsi().F(a, h)

	maxOut := (&GenericLayer{A: a, Psi: SoftmaxDotPsi(), Agg: MaxAgg()}).Forward(h, false)
	minOut := (&GenericLayer{A: a, Psi: SoftmaxDotPsi(), Agg: MinAgg()}).Forward(h, false)
	meanOut := (&GenericLayer{A: a, Psi: SoftmaxDotPsi(), Agg: MeanAgg()}).Forward(h, false)
	sumOut := (&GenericLayer{A: a, Psi: SoftmaxDotPsi(), Agg: SumAgg()}).Forward(h, false)

	// max ≥ mean-of-features ≥ min per vertex neighborhood (feature-wise).
	for i := 0; i < 10; i++ {
		if a.RowNNZ(i) == 0 {
			continue
		}
		for j := 0; j < 3; j++ {
			if maxOut.At(i, j) < minOut.At(i, j)-1e-12 {
				t.Fatal("max < min")
			}
			if meanOut.At(i, j) > maxOut.At(i, j)+1e-12 || meanOut.At(i, j) < minOut.At(i, j)-1e-12 {
				t.Fatal("mean outside [min, max]")
			}
		}
	}
	// Sum with softmax-normalized Ψ equals the Ψ-weighted mean only when
	// weights sum to one — which they do, so sum == weighted mean.
	want := psi.MulDenseMean(h)
	if !sumOut.ApproxEqual(want, 1e-9) {
		t.Fatalf("softmax-weighted sum != weighted mean: %g", sumOut.MaxAbsDiff(want))
	}
}

func TestGenericDefaultsAndBackwardPanics(t *testing.T) {
	a := testGraph(6, 50)
	h := tensor.RandN(6, 2, 1, rand.New(rand.NewSource(51)))
	// nil Agg/Phi/Act default to sum/identity/identity.
	gen := &GenericLayer{A: a, Psi: AdjacencyPsi()}
	want := a.MulDense(h)
	if !gen.Forward(h, false).ApproxEqual(want, 1e-12) {
		t.Fatal("defaults wrong")
	}
	if gen.Params() != nil || gen.Name() != "generic" {
		t.Fatal("metadata wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Backward must panic")
		}
	}()
	gen.Backward(h)
}

func TestMLPPhi(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	x := tensor.RandN(5, 3, 1, rng)
	w1 := tensor.GlorotInit(3, 4, rng)
	w2 := tensor.GlorotInit(4, 2, rng)
	phi := MLPPhi(ReLU(), w1, w2)
	got := phi.F(x)
	want := tensor.MM(tensor.MM(x, w1).Apply(ReLU().F), w2)
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatal("MLPPhi composition wrong")
	}
	if got.Rows != 5 || got.Cols != 2 {
		t.Fatal("MLPPhi shape wrong")
	}
	// Single-matrix MLP == LinearPhi.
	if !MLPPhi(ReLU(), w1).F(x).ApproxEqual(LinearPhi(w1).F(x), 0) {
		t.Fatal("single-layer MLP != linear")
	}
}
