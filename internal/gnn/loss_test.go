package gnn

import (
	"math"
	"math/rand"
	"testing"

	"agnn/internal/tensor"
)

func TestCrossEntropyKnownValue(t *testing.T) {
	// Two vertices, two classes; uniform logits → loss = ln 2 each.
	out := tensor.NewDense(2, 2)
	loss := &CrossEntropyLoss{Labels: []int{0, 1}}
	v, g := loss.Eval(out)
	if math.Abs(v-math.Log(2)) > 1e-12 {
		t.Fatalf("loss = %v, want ln2", v)
	}
	// Gradient: (softmax - onehot)/count = ±0.25.
	want := tensor.NewDenseFrom(2, 2, []float64{-0.25, 0.25, 0.25, -0.25})
	if !g.ApproxEqual(want, 1e-12) {
		t.Fatalf("grad = %v", g)
	}
}

func TestCrossEntropyMask(t *testing.T) {
	out := tensor.NewDenseFrom(2, 2, []float64{10, -10, -10, 10})
	loss := &CrossEntropyLoss{Labels: []int{0, 0}, Mask: []bool{true, false}}
	v, g := loss.Eval(out)
	if v > 1e-6 {
		t.Fatalf("masked loss = %v, want ≈0 (vertex 0 is correct)", v)
	}
	for j := 0; j < 2; j++ {
		if g.At(1, j) != 0 {
			t.Fatal("masked vertex must have zero gradient")
		}
	}
}

func TestCrossEntropyAllMasked(t *testing.T) {
	out := tensor.NewDense(2, 2)
	loss := &CrossEntropyLoss{Labels: []int{0, 1}, Mask: []bool{false, false}}
	v, g := loss.Eval(out)
	if v != 0 || g.FrobeniusNorm() != 0 {
		t.Fatal("all-masked loss must be zero")
	}
}

func TestCrossEntropyGradFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	out := tensor.RandN(5, 4, 1, rng)
	labels := []int{1, 3, 0, 2, 2}
	loss := &CrossEntropyLoss{Labels: labels}
	_, g := loss.Eval(out)
	const eps = 1e-6
	for i := range out.Data {
		out.Data[i] += eps
		lp, _ := loss.Eval(out)
		out.Data[i] -= 2 * eps
		lm, _ := loss.Eval(out)
		out.Data[i] += eps
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-g.Data[i]) > 1e-6 {
			t.Fatalf("CE grad[%d] = %v, finite diff %v", i, g.Data[i], num)
		}
	}
}

func TestCrossEntropyPanics(t *testing.T) {
	out := tensor.NewDense(2, 2)
	for name, l := range map[string]*CrossEntropyLoss{
		"label count": {Labels: []int{0}},
		"bad label":   {Labels: []int{0, 5}},
		"mask length": {Labels: []int{0, 1}, Mask: []bool{true}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			l.Eval(out)
		}()
	}
}

func TestMSELoss(t *testing.T) {
	pred := tensor.NewDenseFrom(1, 2, []float64{1, 3})
	target := tensor.NewDenseFrom(1, 2, []float64{0, 1})
	loss := &MSELoss{Target: target}
	v, g := loss.Eval(pred)
	if math.Abs(v-2.5) > 1e-12 { // (1 + 4)/2
		t.Fatalf("MSE = %v", v)
	}
	if math.Abs(g.At(0, 0)-1) > 1e-12 || math.Abs(g.At(0, 1)-2) > 1e-12 {
		t.Fatalf("MSE grad = %v", g)
	}
}

func TestMSEGradFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pred := tensor.RandN(3, 3, 1, rng)
	loss := &MSELoss{Target: tensor.RandN(3, 3, 1, rng)}
	_, g := loss.Eval(pred)
	const eps = 1e-6
	for i := range pred.Data {
		pred.Data[i] += eps
		lp, _ := loss.Eval(pred)
		pred.Data[i] -= 2 * eps
		lm, _ := loss.Eval(pred)
		pred.Data[i] += eps
		if num := (lp - lm) / (2 * eps); math.Abs(num-g.Data[i]) > 1e-6 {
			t.Fatalf("MSE grad[%d] mismatch", i)
		}
	}
}

func TestAccuracy(t *testing.T) {
	out := tensor.NewDenseFrom(3, 2, []float64{2, 1, 0, 5, 1, 0})
	labels := []int{0, 1, 1}
	if got := Accuracy(out, labels, nil); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := Accuracy(out, labels, []bool{true, true, false}); got != 1 {
		t.Fatalf("masked accuracy = %v", got)
	}
	if got := Accuracy(out, labels, []bool{false, false, false}); got != 0 {
		t.Fatalf("empty-mask accuracy = %v", got)
	}
}
