package gnn

import (
	"fmt"
	"math/rand"

	"agnn/internal/fuse"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// The remaining C-GNN models the paper names (Sections 1, 2.2 and 4.4):
// GIN, whose Φ is an MLP ("a series of multiplications with different
// parameter matrices, interleaved with non-linearities"), and SGC, the
// Simple Graph Convolution that stacks K propagation hops with a single
// projection. Both fit the same σ((Φ∘⊕)(Ψ,H)) scheme with Ψ ≡ A.

// GINLayer implements the Graph Isomorphism Network layer:
//
//	Z = MLP((1+ε)·H + A·H),  MLP(X) = σm(X·W₁)·W₂
//
// with a trainable ε (as in GIN-ε).
type GINLayer struct {
	A, AT  *sparse.CSR
	W1, W2 *Param
	Eps    *Param
	ActMLP Activation // the MLP's internal non-linearity
	Act    Activation // the layer output non-linearity σ

	// Direct bypasses the compiled plan and trains through the hand-written
	// kernel path.
	Direct bool

	// DType selects the element width of the layer's compiled plans (see
	// VALayer.DType).
	DType tensor.DType

	pc planCache

	h, pre, mid1, mid2, z *tensor.Dense
}

// NewGINLayer constructs a GIN layer with a 2-layer MLP of the given
// hidden width and ε initialized to 0.
func NewGINLayer(a, at *sparse.CSR, inDim, hidden, outDim int, act Activation, rng *rand.Rand) *GINLayer {
	return &GINLayer{
		A: a, AT: at,
		W1:     NewParam("W1", tensor.GlorotInit(inDim, hidden, rng)),
		W2:     NewParam("W2", tensor.GlorotInit(hidden, outDim, rng)),
		Eps:    NewScalarParam("eps", 0),
		ActMLP: ReLU(),
		Act:    act,
	}
}

// Name implements Layer.
func (l *GINLayer) Name() string { return "gin" }

// Params implements Layer.
func (l *GINLayer) Params() []*Param { return []*Param{l.W1, l.W2, l.Eps} }

// ensurePlan compiles GIN's DAG — aggregation, the (1+ε) combine, and the
// two-layer MLP — into a reusable training plan.
func (l *GINLayer) ensurePlan(in int) *fuse.Plan {
	return l.pc.get(l.A, in, l.DType, func() string {
		return planSig("gin", true, l.Act, "mlpact="+planAct(l.ActMLP).Name, l.W1, l.W2, l.Eps)
	}, func(ws *tensor.Arena) *fuse.Plan {
		g := fuse.NewGraph("gin", l.A)
		h := g.InputDense("H", l.A.Rows, in)
		w1 := g.ParamNode("W1", planRef(l.W1))
		w2 := g.ParamNode("W2", planRef(l.W2))
		eps := g.ParamNode("eps", planRef(l.Eps))
		pre := g.GINCombine("pre", g.SpMM("AH", g.Adj(), h), h, eps)
		mid := g.Sigma("mid2", g.MM("mid1", pre, w1), planAct(l.ActMLP))
		z := g.MM("Z", mid, w2)
		g.SetOutput(g.Sigma("Hout", z, planAct(l.Act)))
		return g.MustCompile(fuse.Options{Train: true, SpanPrefix: "gin.", Workspace: ws, DType: l.DType})
	})
}

// Plan returns the compiled training plan (nil before the first planned
// training-mode Forward).
func (l *GINLayer) Plan() *fuse.Plan { return l.pc.plan }

func (l *GINLayer) releasePlans() { l.pc.release() }

// Forward implements Layer.
func (l *GINLayer) Forward(h *tensor.Dense, training bool) *tensor.Dense {
	if training && !l.Direct {
		return l.ensurePlan(h.Cols).Forward(h)
	}
	eps := l.Eps.Scalar()
	pre := l.A.MulDense(h)             // Σ_{j∈N(i)} h_j
	pre.AxpyInPlace(1+eps, h)          // + (1+ε)h_i
	mid1 := tensor.MM(pre, l.W1.Value) // MLP layer 1 pre-activation
	mid2 := mid1.Apply(l.ActMLP.F)
	z := tensor.MM(mid2, l.W2.Value)
	if training {
		l.h, l.pre, l.mid1, l.mid2, l.z = h, pre, mid1, mid2, z
	}
	return z.Apply(l.Act.F)
}

// Backward implements Layer.
func (l *GINLayer) Backward(gOut *tensor.Dense) *tensor.Dense {
	if !l.Direct {
		if l.pc.plan == nil {
			panic("gnn: GINLayer.Backward before training-mode Forward")
		}
		return l.pc.plan.Backward(gOut)
	}
	if l.z == nil {
		panic("gnn: GINLayer.Backward before training-mode Forward")
	}
	eps := l.Eps.Scalar()
	g := gOut.Hadamard(l.z.Apply(l.Act.DF))
	// Z = mid2·W2.
	l.W2.Grad.AddInPlace(tensor.TMM(l.mid2, g))
	gMid2 := tensor.MM(g, l.W2.Value.T())
	// mid2 = σm(mid1).
	gMid1 := gMid2.Hadamard(l.mid1.Apply(l.ActMLP.DF))
	// mid1 = pre·W1.
	l.W1.Grad.AddInPlace(tensor.TMM(l.pre, gMid1))
	gPre := tensor.MM(gMid1, l.W1.Value.T())
	// pre = (1+ε)·H + A·H.
	epsGrad := 0.0
	for i, v := range gPre.Data {
		epsGrad += v * l.h.Data[i]
	}
	l.Eps.AddScalarGrad(epsGrad)
	hbar := l.AT.MulDense(gPre)
	hbar.AxpyInPlace(1+eps, gPre)
	return hbar
}

// SGCLayer implements Simple Graph Convolution: K propagation hops with the
// symmetric-normalized adjacency and one projection,
//
//	Z = Â^K·H·W,
//
// the "simple graph convolution model" of the paper's Section 8.4
// verification, with no non-linearity between hops.
type SGCLayer struct {
	A, AT *sparse.CSR // expected pre-normalized
	K     int
	W     *Param
	Act   Activation

	// Direct bypasses the compiled plan and trains through the hand-written
	// kernel path.
	Direct bool

	// DType selects the element width of the layer's compiled plans (see
	// VALayer.DType).
	DType tensor.DType

	pc planCache

	hk *tensor.Dense // Â^K·H
	z  *tensor.Dense
}

// NewSGCLayer constructs a K-hop SGC layer; a should carry the GCN
// normalization.
func NewSGCLayer(a, at *sparse.CSR, k, inDim, outDim int, act Activation, rng *rand.Rand) *SGCLayer {
	if k < 1 {
		panic("gnn: SGC needs K >= 1 hops")
	}
	return &SGCLayer{A: a, AT: at, K: k,
		W: NewParam("W", tensor.GlorotInit(inDim, outDim, rng)), Act: act}
}

// Name implements Layer.
func (l *SGCLayer) Name() string { return "sgc" }

// Params implements Layer.
func (l *SGCLayer) Params() []*Param { return []*Param{l.W} }

// ensurePlan compiles SGC's DAG — K chained propagation hops and one
// projection — into a reusable training plan.
func (l *SGCLayer) ensurePlan(in int) *fuse.Plan {
	return l.pc.get(l.A, in, l.DType, func() string {
		return planSig("sgc", true, l.Act, fmt.Sprintf("K=%d", l.K), l.W)
	}, func(ws *tensor.Arena) *fuse.Plan {
		g := fuse.NewGraph("sgc", l.A)
		h := g.InputDense("H", l.A.Rows, in)
		wn := g.ParamNode("W", planRef(l.W))
		cur := h
		for t := 0; t < l.K; t++ {
			cur = g.SpMM(fmt.Sprintf("A%d", t+1), g.Adj(), cur)
		}
		z := g.MM("Z", cur, wn)
		g.SetOutput(g.Sigma("Hout", z, planAct(l.Act)))
		return g.MustCompile(fuse.Options{Train: true, SpanPrefix: "sgc.", Workspace: ws, DType: l.DType})
	})
}

// Plan returns the compiled training plan (nil before the first planned
// training-mode Forward).
func (l *SGCLayer) Plan() *fuse.Plan { return l.pc.plan }

func (l *SGCLayer) releasePlans() { l.pc.release() }

// Forward implements Layer.
func (l *SGCLayer) Forward(h *tensor.Dense, training bool) *tensor.Dense {
	if training && !l.Direct {
		return l.ensurePlan(h.Cols).Forward(h)
	}
	hk := h
	for t := 0; t < l.K; t++ {
		hk = l.A.MulDense(hk)
	}
	z := tensor.MM(hk, l.W.Value)
	if training {
		l.hk, l.z = hk, z
	}
	return z.Apply(l.Act.F)
}

// Backward implements Layer.
func (l *SGCLayer) Backward(gOut *tensor.Dense) *tensor.Dense {
	if !l.Direct {
		if l.pc.plan == nil {
			panic("gnn: SGCLayer.Backward before training-mode Forward")
		}
		return l.pc.plan.Backward(gOut)
	}
	if l.z == nil {
		panic("gnn: SGCLayer.Backward before training-mode Forward")
	}
	g := gOut.Hadamard(l.z.Apply(l.Act.DF))
	l.W.Grad.AddInPlace(tensor.TMM(l.hk, g))
	hbar := tensor.MM(g, l.W.Value.T())
	for t := 0; t < l.K; t++ {
		hbar = l.AT.MulDense(hbar)
	}
	return hbar
}
