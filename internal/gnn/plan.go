package gnn

import (
	"agnn/internal/fuse"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// This file adapts the gnn layer types to the executable plan runtime of
// internal/fuse. Every built-in layer describes its tensor-op DAG once with
// the fuse.Graph builder; Compile applies the Section 6.2 fusion rule,
// preallocates every intermediate from a shape-keyed arena, and derives the
// backward pass by reverse traversal. Training-mode Forward/Backward then
// execute the compiled op list with zero steady-state allocations.

// planRef adapts a Param to the fuse runtime's package-neutral handle. The
// plan reads Value on every step (optimizer updates are mutations of the
// shared buffer, so they are observed) and accumulates into Grad.
func planRef(p *Param) fuse.ParamRef {
	return fuse.ParamRef{Name: p.Name, Value: p.Value, Grad: p.Grad}
}

// planAct adapts an Activation; a zero Activation defaults to identity, the
// same convention the direct paths use.
func planAct(a Activation) fuse.Act {
	if a.F == nil {
		a = Identity()
	}
	return fuse.Act{Name: a.Name, F: a.F, DF: a.DF}
}

// planCache lazily compiles and caches one layer's plan, keyed on the
// adjacency matrix and the input feature width. Rebinding the layer to a new
// adjacency (RebindAdjacency, mini-batching) or feeding a different feature
// width triggers a recompile; the old plan's buffers are released into the
// layer-local arena first, so recompiles over same-shape graphs recycle the
// workspace instead of growing it.
type planCache struct {
	plan *fuse.Plan
	a    *sparse.CSR
	in   int
	ws   *tensor.Arena
}

func (c *planCache) get(a *sparse.CSR, in int, build func(ws *tensor.Arena) *fuse.Plan) *fuse.Plan {
	if c.plan != nil && c.a == a && c.in == in {
		return c.plan
	}
	if c.ws == nil {
		c.ws = tensor.NewArena()
	}
	if c.plan != nil {
		c.plan.Release()
	}
	c.plan = build(c.ws)
	c.a, c.in = a, in
	return c.plan
}
