package gnn

import (
	"fmt"
	"strings"

	"agnn/internal/fuse"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// This file adapts the gnn layer types to the executable plan runtime of
// internal/fuse. Every built-in layer describes its tensor-op DAG once with
// the fuse.Graph builder; Compile applies the Section 6.2 fusion rule,
// preallocates every intermediate from a shape-keyed arena, and derives the
// backward pass by reverse traversal. Training-mode Forward/Backward then
// execute the compiled op list with zero steady-state allocations.

// planRef adapts a Param to the fuse runtime's package-neutral handle. The
// plan reads Value on every step (optimizer updates are mutations of the
// shared buffer, so they are observed) and accumulates into Grad.
func planRef(p *Param) fuse.ParamRef {
	return fuse.ParamRef{Name: p.Name, Value: p.Value, Grad: p.Grad}
}

// planAct adapts an Activation; a zero Activation defaults to identity, the
// same convention the direct paths use.
func planAct(a Activation) fuse.Act {
	if a.F == nil {
		a = Identity()
	}
	return fuse.Act{Name: a.Name, F: a.F, DF: a.DF}
}

// planCache resolves one layer's compiled plan through the process-wide
// fuse.Shared cache. The steady-state path is a pointer comparison: as long
// as the layer keeps seeing the same adjacency pointer and input width, the
// leased plan is returned with zero allocations and zero hashing. Only a
// rebind (new adjacency pointer) or a width change goes to the shared
// cache, where the adjacency's content fingerprint × input width × layer
// signature either finds an already compiled plan (mini-batch rotation,
// serving fan-out) or compiles one into the cache.
//
// The layer signature is computed once per layer instance (layer kind,
// structural options and parameter identities are fixed after
// construction) and memoized.
type planCache struct {
	lease fuse.Lease
	plan  *fuse.Plan
	a     *sparse.CSR
	in    int
	dt    tensor.DType
	sig   string
}

func (c *planCache) get(a *sparse.CSR, in int, dt tensor.DType, sig func() string, build func(ws *tensor.Arena) *fuse.Plan) *fuse.Plan {
	if c.plan != nil && c.a == a && c.in == in && c.dt == dt {
		return c.plan
	}
	if c.sig == "" {
		c.sig = sig()
	}
	c.release()
	c.lease = fuse.Shared.Get(fuse.KeyFor(a, in, dt, c.sig), build)
	c.plan = c.lease.Plan()
	c.a, c.in, c.dt = a, in, dt
	return c.plan
}

// release returns the leased plan to the shared cache. The layer keeps its
// memoized signature; the next Forward re-leases (a cache hit when the
// same structure comes around again).
func (c *planCache) release() {
	if c.plan == nil {
		return
	}
	c.lease.Release()
	c.plan = nil
	c.a = nil
	c.in = 0
}

// planSig renders a layer signature: the layer kind, its structural
// options, and the identities of the parameters the plan closes over.
// Parameter identity (pointer, not value) is what keeps two models with
// identical shapes from sharing plans — a compiled plan reads and writes
// the specific Value/Grad buffers it captured.
func planSig(kind string, train bool, act Activation, extra string, params ...*Param) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|train=%t|act=%s", kind, train, planAct(act).Name)
	if extra != "" {
		b.WriteByte('|')
		b.WriteString(extra)
	}
	for _, p := range params {
		fmt.Fprintf(&b, "|%p", p)
	}
	return b.String()
}

// planReleaser is implemented by layers that hold cached-plan leases.
type planReleaser interface {
	releasePlans()
}

// PlannedForward runs one inference pass through the layers' compiled
// plans — the serving execution path. It is Forward with two differences:
// dropout layers are skipped (inference semantics) and every other layer
// takes its plan-backed branch, so repeated structures resolve through the
// process-wide plan cache instead of re-executing the direct kernels. The
// returned matrix is plan-owned: copy out the rows you need before calling
// ReleasePlans or running another batch.
func (m *Model) PlannedForward(h *tensor.Dense) *tensor.Dense {
	for _, l := range m.Layers {
		if _, ok := l.(*DropoutLayer); ok {
			continue
		}
		h = l.Forward(h, true)
	}
	return h
}

// ReleasePlans returns every layer's leased plan to the shared cache. Call
// it when a model (or a rebound mini-batch view of one) is done executing
// for now: released plans stay compiled in the cache, so the next model
// that binds the same adjacency structure — including this one — reuses
// them without recompiling.
func (m *Model) ReleasePlans() {
	for _, l := range m.Layers {
		if r, ok := l.(planReleaser); ok {
			r.releasePlans()
		}
	}
}
