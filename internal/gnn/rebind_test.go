package gnn

import (
	"math/rand"
	"testing"

	"agnn/internal/graph"
	"agnn/internal/tensor"
)

func TestRebindSharesParams(t *testing.T) {
	a := testGraph(12, 90)
	m, err := New(Config{Model: GAT, Layers: 2, InDim: 3, HiddenDim: 4, OutDim: 2, Seed: 91}, a)
	if err != nil {
		t.Fatal(err)
	}
	sub := graph.InducedSubgraph(m.Layers[0].(*GATLayer).A, []int32{0, 1, 2, 3, 4})
	rb, err := RebindAdjacency(m, sub)
	if err != nil {
		t.Fatal(err)
	}
	mp, rp := m.Params(), rb.Params()
	if len(mp) != len(rp) {
		t.Fatal("param count changed")
	}
	for i := range mp {
		if mp[i] != rp[i] {
			t.Fatal("rebound model must share parameter objects")
		}
	}
}

// unknownLayer is a Layer implementation RebindAdjacency has no case for.
type unknownLayer struct{}

func (unknownLayer) Forward(h *tensor.Dense, training bool) *tensor.Dense { return h }
func (unknownLayer) Backward(g *tensor.Dense) *tensor.Dense               { return g }
func (unknownLayer) Params() []*Param                                     { return nil }
func (unknownLayer) Name() string                                         { return "unknown" }

func TestRebindRejectsUnknownLayer(t *testing.T) {
	m := &Model{Layers: []Layer{unknownLayer{}}}
	if _, err := RebindAdjacency(m, testGraph(4, 92)); err == nil {
		t.Fatal("unknown layer accepted")
	}
	if err := m.Rebind(testGraph(4, 92)); err == nil {
		t.Fatal("unknown layer accepted by in-place Rebind")
	}
}

// TestGlobalMiniBatchTraining demonstrates the paper's mini-batching
// extension of the global formulation: induced-subgraph batches trained
// through the tensor-formulated layers with shared parameters.
func TestGlobalMiniBatchTraining(t *testing.T) {
	adj, labels := graph.PlantedPartition(60, 3, 0.25, 0.02, 93)
	n := 60
	rng := rand.New(rand.NewSource(94))
	h := tensor.RandN(n, 6, 0.5, rng)
	for i := 0; i < n; i++ {
		h.Set(i, labels[i], h.At(i, labels[i])+1)
	}
	m, err := New(Config{Model: GAT, Layers: 2, InDim: 6, HiddenDim: 8, OutDim: 3,
		Activation: ReLU(), SelfLoops: true, Seed: 95}, adj)
	if err != nil {
		t.Fatal(err)
	}
	processed := m.Layers[0].(*GATLayer).A // adjacency with self loops
	opt := NewAdam(0.02)
	fullLoss := func() float64 {
		v, _ := (&CrossEntropyLoss{Labels: labels}).Eval(m.Forward(h, false))
		return v
	}
	before := fullLoss()
	for step := 0; step < 30; step++ {
		// Batch: a third of the vertices plus their 2-hop closure is the
		// whole subgraph here (small n); we simply take the induced
		// subgraph of a random vertex subset — losses on all batch rows.
		var batch []int32
		for v := step % 3; v < n; v += 3 {
			batch = append(batch, int32(v))
		}
		sub := graph.InducedSubgraph(processed, batch)
		bm, err := RebindAdjacency(m, sub)
		if err != nil {
			t.Fatal(err)
		}
		bh := tensor.NewDense(len(batch), 6)
		bl := make([]int, len(batch))
		for i, v := range batch {
			copy(bh.Row(i), h.Row(int(v)))
			bl[i] = labels[v]
		}
		bm.TrainStep(bh, &CrossEntropyLoss{Labels: bl}, opt)
	}
	after := fullLoss()
	if !(after < 0.7*before) {
		t.Fatalf("global mini-batch training did not reduce loss: %v → %v", before, after)
	}
}

func TestInducedSubgraphContent(t *testing.T) {
	a := testGraph(10, 96)
	vs := []int32{2, 5, 7}
	sub := graph.InducedSubgraph(a, vs)
	if sub.Rows != 3 {
		t.Fatalf("subgraph size %d", sub.Rows)
	}
	ad, sd := a.ToDense(), sub.ToDense()
	for x, gx := range vs {
		for y, gy := range vs {
			if sd.At(int(x), int(y)) != ad.At(int(gx), int(gy)) {
				t.Fatalf("induced entry (%d,%d) mismatch", x, y)
			}
		}
	}
}

func TestInducedSubgraphDuplicatePanics(t *testing.T) {
	a := testGraph(5, 97)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	graph.InducedSubgraph(a, []int32{1, 1})
}
