package gnn

import (
	"math/rand"
	"testing"

	"agnn/internal/graph"
	"agnn/internal/obs/metrics"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// The ISSUE 7 acceptance sweep: rebinding a model across K structurally
// distinct subgraphs must compile each (layer × subgraph) plan exactly
// once — asserted through the agnn_plancache_{misses,hits} counters — and
// every cached execution must be bitwise identical to the fresh-compiled
// first execution of the same structure.

// sweepModel builds a single-layer model of the given kind over adjacency a
// with deterministic weights.
func sweepModel(t *testing.T, kind string, a *graphAdj, in, out int) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	switch kind {
	case "va":
		return &Model{Layers: []Layer{NewVALayer(a.A, a.AT, in, out, Tanh(), rng)}}
	case "agnn":
		return &Model{Layers: []Layer{NewAGNNLayer(a.A, a.AT, in, out, Tanh(), rng)}}
	case "gat":
		return &Model{Layers: []Layer{NewGATLayer(a.A, a.AT, in, out, Tanh(), 0.2, rng)}}
	case "gcn":
		return &Model{Layers: []Layer{NewGCNLayer(a.A, a.AT, in, out, Tanh(), rng)}}
	case "gin":
		return &Model{Layers: []Layer{NewGINLayer(a.A, a.AT, in, 5, out, Tanh(), rng)}}
	case "sgc":
		return &Model{Layers: []Layer{NewSGCLayer(a.A, a.AT, 2, in, out, Tanh(), rng)}}
	case "generic":
		w := tensor.GlorotInit(in, out, rng)
		return &Model{Layers: []Layer{&GenericLayer{
			A: a.A, Psi: SoftmaxDotPsi(), Agg: SumAgg(), Phi: LinearPhi(w), Act: Tanh(),
		}}}
	case "multihead":
		return &Model{Layers: []Layer{NewMultiHeadGATLayer(a.A, a.AT, in, out, 2, true, Tanh(), 0.2, rng)}}
	}
	t.Fatalf("unknown sweep kind %q", kind)
	return nil
}

type graphAdj struct{ A, AT *sparse.CSR }

func TestPlanCacheRebindSweep(t *testing.T) {
	const (
		K   = 3 // structurally distinct subgraphs
		in  = 4
		out = 3
	)
	full := testGraph(40, 70)
	subs := make([]*sparse.CSR, K)
	for k := range subs {
		var vs []int32
		for v := k; v < 40; v += K + 1 {
			vs = append(vs, int32(v))
		}
		subs[k] = graph.InducedSubgraph(full, vs)
	}

	// plansPer maps layer kind → compiled plans per model (multihead has one
	// plan per head).
	plansPer := map[string]int64{"va": 1, "agnn": 1, "gat": 1, "gcn": 1,
		"gin": 1, "sgc": 1, "generic": 1, "multihead": 2}

	for kind, nPlans := range plansPer {
		t.Run(kind, func(t *testing.T) {
			src := sweepModel(t, kind, &graphAdj{A: full, AT: full.Transpose()}, in, out)
			rng := rand.New(rand.NewSource(11))
			feats := make([]*tensor.Dense, K)
			for k := range feats {
				feats[k] = tensor.RandN(subs[k].Rows, in, 0.5, rng)
			}

			misses0 := metrics.PlanCacheMisses.Value()
			hits0 := metrics.PlanCacheHits.Value()

			// Round 0 compiles (fresh plans); rounds 1-2 must be pure cache
			// hits with bitwise-identical outputs.
			var fresh [K][]float64
			for round := 0; round < 3; round++ {
				for k := 0; k < K; k++ {
					bm, err := RebindAdjacency(src, subs[k])
					if err != nil {
						t.Fatal(err)
					}
					got := bm.PlannedForward(feats[k])
					if round == 0 {
						fresh[k] = append([]float64(nil), got.Data...)
					} else {
						for i, v := range got.Data {
							if v != fresh[k][i] {
								t.Fatalf("round %d subgraph %d: cached output differs "+
									"from fresh at %d: %v != %v", round, k, i, v, fresh[k][i])
							}
						}
					}
					bm.ReleasePlans()
				}
			}

			wantMisses := nPlans * K
			if d := metrics.PlanCacheMisses.Value() - misses0; d != wantMisses {
				t.Fatalf("agnn_plancache_misses delta = %d, want %d (one compile per distinct key)", d, wantMisses)
			}
			wantHits := nPlans * K * 2
			if d := metrics.PlanCacheHits.Value() - hits0; d != wantHits {
				t.Fatalf("agnn_plancache_hits delta = %d, want %d", d, wantHits)
			}
		})
	}
}

// TestModelRebindInPlace covers the Rebind path the mini-batch example and
// the serving engine use: one model rotating over fixed subgraphs must
// compile per structure once and hit thereafter, with training still
// converging through shared parameters.
func TestModelRebindInPlace(t *testing.T) {
	const K = 4
	full := testGraph(36, 71)
	m, err := New(Config{Model: GAT, Layers: 2, InDim: 5, HiddenDim: 6, OutDim: 3,
		Activation: ReLU(), SelfLoops: true, Seed: 72}, full)
	if err != nil {
		t.Fatal(err)
	}
	processed := m.Layers[0].(*GATLayer).A
	subs := make([]*sparse.CSR, K)
	feats := make([]*tensor.Dense, K)
	rng := rand.New(rand.NewSource(73))
	for k := range subs {
		var vs []int32
		for v := k; v < 36; v += K {
			vs = append(vs, int32(v))
		}
		subs[k] = graph.InducedSubgraph(processed, vs)
		feats[k] = tensor.RandN(len(vs), 5, 0.5, rng)
	}

	misses0 := metrics.PlanCacheMisses.Value()
	for epoch := 0; epoch < 3; epoch++ {
		for k := 0; k < K; k++ {
			if err := m.Rebind(subs[k]); err != nil {
				t.Fatal(err)
			}
			m.PlannedForward(feats[k])
		}
	}
	m.ReleasePlans()
	// 2 layers × K subgraphs compiled once each, regardless of epochs.
	if d := metrics.PlanCacheMisses.Value() - misses0; d != 2*K {
		t.Fatalf("in-place rebind misses delta = %d, want %d", d, 2*K)
	}

	// Rebinding back to the full processed adjacency restores normal use.
	if err := m.Rebind(processed); err != nil {
		t.Fatal(err)
	}
	h := tensor.RandN(36, 5, 0.5, rng)
	if got := m.Forward(h, false); got.Rows != 36 || got.Cols != 3 {
		t.Fatalf("forward after rebind: %dx%d", got.Rows, got.Cols)
	}
}

// TestReleasePlansIdempotent pins the lease lifecycle: releasing twice (or
// with nothing leased) must be harmless.
func TestReleasePlansIdempotent(t *testing.T) {
	a := testGraph(16, 74)
	m, err := New(Config{Model: VA, Layers: 1, InDim: 3, OutDim: 3, SelfLoops: true, Seed: 75}, a)
	if err != nil {
		t.Fatal(err)
	}
	m.ReleasePlans() // nothing leased yet
	h := tensor.RandN(16, 3, 0.5, rand.New(rand.NewSource(76)))
	m.Forward(h, true)
	m.ReleasePlans()
	m.ReleasePlans()
	m.Forward(h, true) // re-lease after release works
	m.ReleasePlans()
}
