package gnn

import (
	"fmt"

	"agnn/internal/par"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// Graph Networks (Battaglia et al.) — the conclusion's "models outside the
// A-GNN family" that the global formulation extends to. A GN block carries
// three feature sets: per-edge vectors (aligned with the adjacency
// pattern's non-zeros, the same alignment trick the sparse attention
// matrices use), per-vertex vectors, and a global vector; one block applies
// an edge update, a per-vertex aggregation of the updated edges, a vertex
// update, and a global update. This implementation targets inference (like
// GenericLayer); the built-in A-GNNs remain the trained models.

// EdgeFeatures stores an f-dimensional feature vector per stored entry of
// a sparsity pattern, in the pattern's nnz order.
type EdgeFeatures struct {
	Pat  *sparse.CSR
	Dim  int
	Data []float64 // len NNZ × Dim
}

// NewEdgeFeatures allocates zeroed edge features over a pattern.
func NewEdgeFeatures(pat *sparse.CSR, dim int) *EdgeFeatures {
	return &EdgeFeatures{Pat: pat, Dim: dim, Data: make([]float64, pat.NNZ()*dim)}
}

// At returns the feature slice of edge index p (aliasing storage).
func (e *EdgeFeatures) At(p int) []float64 { return e.Data[p*e.Dim : (p+1)*e.Dim] }

// GraphNetBlock is one GN block. All update functions write into out (whose
// length defines the respective output dimensionality).
type GraphNetBlock struct {
	A *sparse.CSR

	// EdgeUpdate computes e'_ij from (e_ij, h_i, h_j, u).
	EdgeUpdate func(out, e, hi, hj, u []float64)
	EdgeOutDim int

	// VertexUpdate computes h'_i from (h_i, agg_i, u) where agg_i is the
	// element-wise sum of i's updated out-edge features.
	VertexUpdate func(out, h, agg, u []float64)
	VertexOutDim int

	// GlobalUpdate computes u' from (u, meanH', meanE'); nil keeps u.
	GlobalUpdate func(out, u, meanH, meanE []float64)
	GlobalOutDim int
}

// Forward applies the block and returns (E', H', u').
func (b *GraphNetBlock) Forward(e *EdgeFeatures, h *tensor.Dense, u []float64) (*EdgeFeatures, *tensor.Dense, []float64) {
	if b.EdgeUpdate == nil || b.VertexUpdate == nil {
		panic("gnn: GraphNetBlock needs EdgeUpdate and VertexUpdate")
	}
	if e.Pat != b.A && !e.Pat.SamePattern(b.A) {
		panic("gnn: edge features not aligned with the block's adjacency")
	}
	if h.Rows != b.A.Rows {
		panic(fmt.Sprintf("gnn: %d feature rows for %d vertices", h.Rows, b.A.Rows))
	}
	a := b.A
	eOut := NewEdgeFeatures(a, b.EdgeOutDim)
	// Edge update, parallel over rows (all touched edges are row-local).
	par.RangeWeighted(a.Rows, func(i int) int64 { return int64(a.RowNNZ(i)) }, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			hi_ := h.Row(i)
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				b.EdgeUpdate(eOut.At(int(p)), e.At(int(p)), hi_, h.Row(int(a.Col[p])), u)
			}
		}
	})
	// Vertex update with summed out-edge aggregation.
	hOut := tensor.NewDense(a.Rows, b.VertexOutDim)
	par.RangeWeighted(a.Rows, func(i int) int64 { return int64(a.RowNNZ(i)) }, func(worker, lo, hi int) {
		agg := make([]float64, b.EdgeOutDim)
		for i := lo; i < hi; i++ {
			for t := range agg {
				agg[t] = 0
			}
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				row := eOut.At(int(p))
				for t, v := range row {
					agg[t] += v
				}
			}
			b.VertexUpdate(hOut.Row(i), h.Row(i), agg, u)
		}
	})
	// Global update from the means of the new vertex and edge features.
	uOut := u
	if b.GlobalUpdate != nil {
		meanH := tensor.SumT(hOut)
		for t := range meanH {
			meanH[t] /= float64(max(1, hOut.Rows))
		}
		meanE := make([]float64, b.EdgeOutDim)
		for p := 0; p < a.NNZ(); p++ {
			row := eOut.At(p)
			for t, v := range row {
				meanE[t] += v
			}
		}
		for t := range meanE {
			meanE[t] /= float64(max(1, a.NNZ()))
		}
		uOut = make([]float64, b.GlobalOutDim)
		b.GlobalUpdate(uOut, u, meanH, meanE)
	}
	return eOut, hOut, uOut
}
