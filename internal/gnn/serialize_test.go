package gnn

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"agnn/internal/tensor"
)

func trainedModel(t *testing.T, kind Kind, seed int64) (*Model, *tensor.Dense) {
	t.Helper()
	a := testGraph(15, 999) // same graph for every model; only weights vary
	m, err := New(Config{Model: kind, Layers: 2, InDim: 4, HiddenDim: 5, OutDim: 3,
		Activation: Tanh(), SelfLoops: true, Seed: seed}, a)
	if err != nil {
		t.Fatal(err)
	}
	h := tensor.RandN(15, 4, 1, rand.New(rand.NewSource(seed+1)))
	labels := make([]int, 15)
	for i := range labels {
		labels[i] = i % 3
	}
	if _, err := m.Train(h, &CrossEntropyLoss{Labels: labels}, NewAdam(0.01), 3); err != nil {
		t.Fatal(err)
	}
	return m, h
}

func TestWeightsRoundtrip(t *testing.T) {
	for _, kind := range []Kind{VA, AGNN, GAT, GCN} {
		src, h := trainedModel(t, kind, 200)
		var buf bytes.Buffer
		if err := SaveWeights(&buf, src); err != nil {
			t.Fatal(err)
		}
		// Fresh model with different (default) weights.
		dst, _ := trainedModel(t, kind, 201)
		if dst.Forward(h, false).ApproxEqual(src.Forward(h, false), 1e-12) {
			t.Fatal("test premise broken: fresh model already matches")
		}
		if err := LoadWeights(&buf, dst); err != nil {
			t.Fatal(err)
		}
		if !dst.Forward(h, false).ApproxEqual(src.Forward(h, false), 0) {
			t.Fatalf("%v: loaded model output differs", kind)
		}
	}
}

func TestWeightsFileRoundtrip(t *testing.T) {
	src, h := trainedModel(t, GAT, 202)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := SaveWeightsFile(path, src); err != nil {
		t.Fatal(err)
	}
	dst, _ := trainedModel(t, GAT, 203)
	if err := LoadWeightsFile(path, dst); err != nil {
		t.Fatal(err)
	}
	if !dst.Forward(h, false).ApproxEqual(src.Forward(h, false), 0) {
		t.Fatal("file roundtrip output differs")
	}
	if err := LoadWeightsFile(filepath.Join(t.TempDir(), "missing"), dst); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadWeightsValidation(t *testing.T) {
	src, _ := trainedModel(t, GAT, 204)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Wrong magic.
	bad := append([]byte("WRONGMAG"), raw[8:]...)
	if err := LoadWeights(bytes.NewReader(bad), src); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Parameter-count mismatch: load a GAT checkpoint into a GCN model.
	other, _ := trainedModel(t, GCN, 205)
	if err := LoadWeights(bytes.NewReader(raw), other); err == nil {
		t.Fatal("parameter-count mismatch accepted")
	}
	// Shape mismatch: a same-model-kind network with different dims.
	a := testGraph(15, 999)
	wrongDims, err := New(Config{Model: GAT, Layers: 2, InDim: 4, HiddenDim: 7,
		OutDim: 3, Seed: 206}, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(bytes.NewReader(raw), wrongDims); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	// Truncated stream.
	if err := LoadWeights(bytes.NewReader(raw[:len(raw)/2]), src); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestLoadWeightsRejectsCorruptCRC(t *testing.T) {
	src, _ := trainedModel(t, VA, 210)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if got := string(raw[:8]); got != weightsMagicV2 {
		t.Fatalf("save wrote magic %q, want %q", got, weightsMagicV2)
	}

	// A single flipped bit anywhere in the body must be caught.
	for _, pos := range []int{8, len(raw) / 2, len(raw) - 5} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x40
		if err := LoadWeights(bytes.NewReader(bad), src); err == nil {
			t.Errorf("bit flip at byte %d accepted", pos)
		}
	}
	// A corrupted trailer must be caught too.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 0xff
	if err := LoadWeights(bytes.NewReader(bad), src); err == nil {
		t.Error("corrupt checksum trailer accepted")
	}
	// Truncation that removes only the trailer must be caught.
	if err := LoadWeights(bytes.NewReader(raw[:len(raw)-2]), src); err == nil {
		t.Error("missing checksum trailer accepted")
	}
	// The pristine file still loads.
	if err := LoadWeights(bytes.NewReader(raw), src); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
}

func TestLoadWeightsAcceptsLegacyV1(t *testing.T) {
	src, h := trainedModel(t, GCN, 211)
	// Synthesize a v1 file: v1 magic + body, no checksum.
	var body bytes.Buffer
	if _, err := body.WriteString(weightsMagicV1); err != nil {
		t.Fatal(err)
	}
	if err := writeParamsBody(&body, src.Params(), tensor.F64); err != nil {
		t.Fatal(err)
	}
	dst, _ := trainedModel(t, GCN, 212)
	if err := LoadWeights(bytes.NewReader(body.Bytes()), dst); err != nil {
		t.Fatalf("legacy v1 checkpoint rejected: %v", err)
	}
	if !dst.Forward(h, false).ApproxEqual(src.Forward(h, false), 0) {
		t.Fatal("v1 load output differs")
	}
}

func TestCheckpointPortableToLocalEngine(t *testing.T) {
	// A checkpoint saved from the global model must load into the local
	// mirror (same parameter inventory) — done through the shared format.
	src, h := trainedModel(t, AGNN, 207)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst, _ := trainedModel(t, AGNN, 208)
	if err := LoadWeights(&buf, dst); err != nil {
		t.Fatal(err)
	}
	if !dst.Forward(h, false).ApproxEqual(src.Forward(h, false), 0) {
		t.Fatal("checkpoint not portable")
	}
}
