package gnn

import (
	"math/rand"
	"testing"

	"agnn/internal/tensor"
)

func optTestParams(t *testing.T, n int, seed int64) []*Param {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ps := make([]*Param, n)
	for i := range ps {
		ps[i] = &Param{
			Name:  string(rune('a' + i)),
			Value: tensor.RandN(3, 2, 1, rng),
			Grad:  tensor.NewDense(3, 2),
		}
	}
	return ps
}

func fillGrads(ps []*Param, rng *rand.Rand) {
	for _, p := range ps {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.NormFloat64()
		}
	}
}

// TestOptimizerStateRoundtrip: export after k steps, import into a fresh
// optimizer, then run both in lockstep — every subsequent update must be
// bitwise identical. This is the property checkpoint/resume relies on.
func TestOptimizerStateRoundtrip(t *testing.T) {
	mk := map[string]func() StatefulOptimizer{
		"adam":         func() StatefulOptimizer { return NewAdam(0.01) },
		"sgd-momentum": func() StatefulOptimizer { return NewSGD(0.05, 0.9) },
		"sgd-plain":    func() StatefulOptimizer { return NewSGD(0.05, 0) },
	}
	for name, newOpt := range mk {
		t.Run(name, func(t *testing.T) {
			orig := optTestParams(t, 4, 300)
			opt := newOpt()
			rng := rand.New(rand.NewSource(301))
			for step := 0; step < 5; step++ {
				fillGrads(orig, rng)
				opt.Step(orig)
			}

			// Clone params + optimizer state into a "resumed" twin.
			twin := optTestParams(t, 4, 300)
			for i, p := range orig {
				copy(twin[i].Value.Data, p.Value.Data)
			}
			resumed := newOpt()
			if err := resumed.ImportState(twin, opt.ExportState(orig)); err != nil {
				t.Fatal(err)
			}

			// Lockstep continuation with identical gradients.
			rngA := rand.New(rand.NewSource(302))
			rngB := rand.New(rand.NewSource(302))
			for step := 0; step < 5; step++ {
				fillGrads(orig, rngA)
				fillGrads(twin, rngB)
				opt.Step(orig)
				resumed.Step(twin)
			}
			for i := range orig {
				for j := range orig[i].Value.Data {
					if orig[i].Value.Data[j] != twin[i].Value.Data[j] {
						t.Fatalf("param %d word %d diverged after resume: %v vs %v",
							i, j, orig[i].Value.Data[j], twin[i].Value.Data[j])
					}
				}
			}
		})
	}
}

// TestOptimizerStateFreshExport: exporting before any Step yields zero
// slots that import cleanly — resuming from an epoch-0 checkpoint works.
func TestOptimizerStateFreshExport(t *testing.T) {
	ps := optTestParams(t, 3, 310)
	opt := NewAdam(0.01)
	st := opt.ExportState(ps)
	if st.Step != 0 {
		t.Fatalf("fresh Adam step = %d", st.Step)
	}
	for name, slot := range st.Slots {
		for i, tns := range slot {
			for _, v := range tns.Data {
				if v != 0 {
					t.Fatalf("fresh slot %q tensor %d not zero", name, i)
				}
			}
		}
	}
	if err := NewAdam(0.01).ImportState(ps, st); err != nil {
		t.Fatal(err)
	}
}

// TestOptimizerStateValidation: mismatched algorithms, slot inventories and
// shapes are rejected.
func TestOptimizerStateValidation(t *testing.T) {
	ps := optTestParams(t, 3, 320)
	adamState := NewAdam(0.01).ExportState(ps)
	sgdState := NewSGD(0.1, 0.9).ExportState(ps)

	if err := NewSGD(0.1, 0.9).ImportState(ps, adamState); err == nil {
		t.Error("SGD accepted Adam state")
	}
	if err := NewAdam(0.01).ImportState(ps, sgdState); err == nil {
		t.Error("Adam accepted SGD state")
	}
	// Wrong parameter count.
	short := optTestParams(t, 2, 321)
	if err := NewAdam(0.01).ImportState(short, adamState); err == nil {
		t.Error("state with extra parameters accepted")
	}
	// Wrong shape.
	bad := NewAdam(0.01).ExportState(ps)
	bad.Slots["m"][1] = tensor.NewDense(5, 5)
	if err := NewAdam(0.01).ImportState(ps, bad); err == nil {
		t.Error("shape-mismatched slot accepted")
	}
	// Missing slot.
	gone := NewAdam(0.01).ExportState(ps)
	delete(gone.Slots, "v")
	if err := NewAdam(0.01).ImportState(ps, gone); err == nil {
		t.Error("missing slot accepted")
	}
}

// TestOptimizerStateIsACopy: mutating exported state must not alias live
// optimizer slots (a checkpoint written during training must be a frozen
// snapshot).
func TestOptimizerStateIsACopy(t *testing.T) {
	ps := optTestParams(t, 2, 330)
	opt := NewAdam(0.01)
	fillGrads(ps, rand.New(rand.NewSource(331)))
	opt.Step(ps)
	st := opt.ExportState(ps)
	before := st.Slots["m"][0].Data[0]
	// Another training step must not change the already-exported snapshot.
	fillGrads(ps, rand.New(rand.NewSource(332)))
	opt.Step(ps)
	if st.Slots["m"][0].Data[0] != before {
		t.Fatal("exported state aliases live optimizer slot")
	}
}
