package gnn

import (
	"fmt"
	"math/rand"

	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// MultiHeadGATLayer is the K-head extension of GAT from Veličković et al.,
// one of the paper's "models beyond those considered" that the global
// formulation covers for free: each head h runs the single-head global
// pipeline with its own (W_h, a_h) parameters, and the head outputs are
// either concatenated (hidden layers) or averaged (final layer). Because σ
// is element-wise, σ(concat) = concat(σ), so the layer simply fans the
// gradient slices back into the per-head backward passes.
type MultiHeadGATLayer struct {
	Heads   []*GATLayer
	Concat  bool // true: concat head outputs (out = heads·headDim); false: average
	headDim int

	// Layer-owned buffers reused across steps. The heads' plan-backed
	// Forward/Backward return plan-owned buffers that must not be mutated,
	// so combination and gradient fan-out happen in these.
	out, gHead, gIn *tensor.Dense
}

// ensureBuf returns a layer-owned rows×cols buffer, reallocating only on
// shape change.
func ensureBuf(buf **tensor.Dense, rows, cols int) *tensor.Dense {
	if *buf == nil || (*buf).Rows != rows || (*buf).Cols != cols {
		*buf = tensor.NewDense(rows, cols)
	}
	return *buf
}

// NewMultiHeadGATLayer builds a K-head GAT layer. With Concat the output
// dimensionality is heads·headDim; with averaging it is headDim.
func NewMultiHeadGATLayer(a, at *sparse.CSR, inDim, headDim, heads int, concat bool,
	act Activation, negSlope float64, rng *rand.Rand) *MultiHeadGATLayer {
	if heads < 1 {
		panic(fmt.Sprintf("gnn: %d heads", heads))
	}
	l := &MultiHeadGATLayer{Concat: concat, headDim: headDim}
	for h := 0; h < heads; h++ {
		l.Heads = append(l.Heads, NewGATLayer(a, at, inDim, headDim, act, negSlope, rng))
	}
	return l
}

// Name implements Layer.
func (l *MultiHeadGATLayer) Name() string { return "gat-multihead" }

// Params implements Layer.
func (l *MultiHeadGATLayer) Params() []*Param {
	var ps []*Param
	for _, h := range l.Heads {
		ps = append(ps, h.Params()...)
	}
	return ps
}

func (l *MultiHeadGATLayer) releasePlans() {
	for _, h := range l.Heads {
		h.releasePlans()
	}
}

// OutDim returns the layer's output dimensionality.
func (l *MultiHeadGATLayer) OutDim() int {
	if l.Concat {
		return len(l.Heads) * l.headDim
	}
	return l.headDim
}

// Forward implements Layer.
func (l *MultiHeadGATLayer) Forward(h *tensor.Dense, training bool) *tensor.Dense {
	outs := make([]*tensor.Dense, len(l.Heads))
	for i, head := range l.Heads {
		outs[i] = head.Forward(h, training)
	}
	if l.Concat {
		out := ensureBuf(&l.out, h.Rows, len(l.Heads)*l.headDim)
		for i, o := range outs {
			for r := 0; r < h.Rows; r++ {
				copy(out.Row(r)[i*l.headDim:(i+1)*l.headDim], o.Row(r))
			}
		}
		return out
	}
	out := ensureBuf(&l.out, h.Rows, l.headDim)
	out.CopyFrom(outs[0])
	for _, o := range outs[1:] {
		out.AddInPlace(o)
	}
	return out.ScaleInPlace(1 / float64(len(l.Heads)))
}

// Backward implements Layer.
func (l *MultiHeadGATLayer) Backward(gOut *tensor.Dense) *tensor.Dense {
	var gHead *tensor.Dense
	if l.Concat {
		gHead = ensureBuf(&l.gHead, gOut.Rows, l.headDim)
	} else {
		// The averaged gradient is the same for every head; build it once.
		gHead = ensureBuf(&l.gHead, gOut.Rows, gOut.Cols)
		gHead.CopyFrom(gOut)
		gHead.ScaleInPlace(1 / float64(len(l.Heads)))
	}
	var gIn *tensor.Dense
	for i, head := range l.Heads {
		if l.Concat {
			for r := 0; r < gOut.Rows; r++ {
				copy(gHead.Row(r), gOut.Row(r)[i*l.headDim:(i+1)*l.headDim])
			}
		}
		g := head.Backward(gHead)
		if gIn == nil {
			gIn = ensureBuf(&l.gIn, g.Rows, g.Cols)
			gIn.CopyFrom(g)
		} else {
			gIn.AddInPlace(g)
		}
	}
	return gIn
}
