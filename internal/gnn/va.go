package gnn

import (
	"math/rand"

	"agnn/internal/fuse"
	"agnn/internal/kernels"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// VALayer is the vanilla-attention model (Figure 1, "VA"):
//
//	Forward:   Ψ = A ⊙ (H·Hᵀ)            (SDDMM on the adjacency pattern)
//	           Z = Ψ·H·W                 (SpMMM; computed as Ψ·(H·W))
//	           H' = σ(Z)
//
//	Backward (Eq. 11–13):
//	           M  = G·Wᵀ
//	           N  = A ⊙ (M·Hᵀ)
//	           Γ  = N₊·H + (Aᵀ ⊙ H×)·M   with N₊ = N + Nᵀ, Aᵀ⊙H× = Ψᵀ
//	           Y  = Hᵀ·(Aᵀ ⊙ H×)·G       (MSpMM)
//
// The layer keeps two interchangeable backward implementations: the fused
// Eq.-11 formulation (default) and an op-by-op vector-Jacobian composition
// (UseReferenceBackward) used to validate it.
type VALayer struct {
	A, AT *sparse.CSR
	W     *Param
	Act   Activation

	// Direct bypasses the compiled plan and trains through the hand-written
	// Eq.-11 kernels (the pre-plan code path, kept as an escape hatch and as
	// a differential-testing oracle).
	Direct bool
	// UseReferenceBackward switches to the op-composed backward pass
	// (implies Direct).
	UseReferenceBackward bool

	// DType selects the element width the layer's compiled plans run at.
	// F64 (the zero value) is the default double-precision path; F32
	// compiles mixed-precision plans (f64 master weights, f32 kernels).
	// The direct escape hatches always run f64.
	DType tensor.DType

	// PlanInference routes non-training Forward through a compiled
	// inference plan instead of the direct fused kernels. Inference plans
	// compile the attention chain into one fused sweep that never
	// materializes the per-edge score tensor, and they are the only
	// inference path with an f32 variant. Off by default: the direct
	// kernels remain the layer's historical inference arithmetic.
	PlanInference bool

	pc  planCache
	ipc planCache // inference plans (PlanInference)

	// cached intermediates (direct training-mode forward)
	h   *tensor.Dense
	psi *sparse.CSR
	z   *tensor.Dense
}

// NewVALayer constructs a VA layer on adjacency a (and its transpose) with
// Glorot-initialized weights.
func NewVALayer(a, at *sparse.CSR, inDim, outDim int, act Activation, rng *rand.Rand) *VALayer {
	return &VALayer{
		A: a, AT: at,
		W:   NewParam("W", tensor.GlorotInit(inDim, outDim, rng)),
		Act: act,
	}
}

// Name implements Layer.
func (l *VALayer) Name() string { return "va" }

// Params implements Layer.
func (l *VALayer) Params() []*Param { return []*Param{l.W} }

func (l *VALayer) direct() bool { return l.Direct || l.UseReferenceBackward }

// ensurePlan compiles the layer's execution DAG into a reusable training
// plan: Ψ = A ⊙ (H·Hᵀ) fuses into a single SDDMM-like sampling kernel, and
// the backward op list is derived by reverse traversal.
func (l *VALayer) ensurePlan(in int) *fuse.Plan {
	return l.pc.get(l.A, in, l.DType, func() string {
		return planSig("va", true, l.Act, "", l.W)
	}, func(ws *tensor.Arena) *fuse.Plan {
		return l.buildGraph(in).MustCompile(
			fuse.Options{Train: true, SpanPrefix: "va.", Workspace: ws, DType: l.DType})
	})
}

// ensureInferPlan compiles the same DAG as an inference plan: the fused
// attention sweep evaluates scores, softmax and aggregation per row in
// worker-local scratch, so no Ψ value array exists.
func (l *VALayer) ensureInferPlan(in int) *fuse.Plan {
	return l.ipc.get(l.A, in, l.DType, func() string {
		return planSig("va", false, l.Act, "", l.W)
	}, func(ws *tensor.Arena) *fuse.Plan {
		return l.buildGraph(in).MustCompile(
			fuse.Options{SpanPrefix: "va.", Workspace: ws, DType: l.DType})
	})
}

func (l *VALayer) buildGraph(in int) *fuse.Graph {
	g := fuse.NewGraph("va", l.A)
	h := g.InputDense("H", l.A.Rows, in)
	w := g.ParamNode("W", planRef(l.W))
	psi := g.Mask("Psi", g.DotScores("HHt", h, h), true)
	z := g.SpMM("Z", psi, g.MM("HW", h, w))
	g.SetOutput(g.Sigma("Hout", z, planAct(l.Act)))
	return g
}

// Plan returns the compiled training plan, or nil before the first planned
// training-mode Forward. Cost-model and observability consumers read its
// Stats.
func (l *VALayer) Plan() *fuse.Plan { return l.pc.plan }

func (l *VALayer) releasePlans() { l.pc.release(); l.ipc.release() }

// Forward implements Layer.
func (l *VALayer) Forward(h *tensor.Dense, training bool) *tensor.Dense {
	if !training {
		if l.PlanInference && !l.direct() {
			return l.ensureInferPlan(h.Cols).Forward(h)
		}
		// Inference fast path: Ψ applied through the fused kernel, scores
		// evaluated on the fly (scaled by A's values), Φ applied first.
		hp := tensor.MM(h, l.W.Value)
		score := kernels.VAEdgeScore(h)
		psi := scaleByPattern(kernels.FusedScores(l.A, score), l.A)
		return l.Act.apply(psi.MulDense(hp))
	}
	if !l.direct() {
		return l.ensurePlan(h.Cols).Forward(h)
	}
	l.h = h
	l.psi = sparse.SDDMMScaled(l.A, h, h) // Ψ = A ⊙ H·Hᵀ
	hp := tensor.MM(h, l.W.Value)         // Φ before ⊕ (Section 4.4)
	l.z = l.psi.MulDense(hp)              // ⊕: SpMM
	return l.Act.apply(l.z)
}

// Backward implements Layer.
func (l *VALayer) Backward(gOut *tensor.Dense) *tensor.Dense {
	if !l.direct() {
		if l.pc.plan == nil {
			panic("gnn: VALayer.Backward before training-mode Forward")
		}
		return l.pc.plan.Backward(gOut)
	}
	if l.z == nil {
		panic("gnn: VALayer.Backward before training-mode Forward")
	}
	g := gOut.Hadamard(l.Act.derivAt(l.z)) // G = ∂L/∂Z
	if l.UseReferenceBackward {
		return l.backwardReference(g)
	}
	// Fused Eq. (11)–(13).
	psiT := l.psi.Transpose() // Aᵀ ⊙ H× for symmetric-valued H·Hᵀ
	m := tensor.MM(g, l.W.Value.T())
	n := sparse.SDDMMScaled(l.A, m, l.h) // N = A ⊙ (M·Hᵀ)
	nPlus := n.AddTranspose()
	hbar := nPlus.MulDense(l.h)
	hbar.AddInPlace(psiT.MulDense(m)) // Γ = N₊H + ΨᵀM

	// Y = Hᵀ·Ψᵀ·G via the fused MSpMM kernel.
	l.W.Grad.AddInPlace(kernels.MSpMM(l.h, psiT, g))
	return hbar
}

// backwardReference recomputes the backward pass as a plain composition of
// per-operation vector-Jacobian products: Z = Ψ·(H·W) with Ψ = A ⊙ (H·Hᵀ).
// It must produce results identical to the Eq.-11 path; the equality is
// asserted by tests, demonstrating the paper's derivation op by op.
func (l *VALayer) backwardReference(g *tensor.Dense) *tensor.Dense {
	hp := tensor.MM(l.h, l.W.Value)
	// Z = Ψ·Hp: Ψ̄ = (G·Hpᵀ) sampled on Ψ's pattern; H̄p = Ψᵀ·G.
	psiBar := sparse.SDDMM(l.A, g, hp)
	hpBar := l.psi.Transpose().MulDense(g)
	// Hp = H·W: H̄ += H̄p·Wᵀ; W̄ += Hᵀ·H̄p.
	hbar := tensor.MM(hpBar, l.W.Value.T())
	l.W.Grad.AddInPlace(tensor.TMM(l.h, hpBar))
	// Ψ = A ⊙ (H·Hᵀ): grad into the dense factor is Ψ̄ ⊙ A (values), and
	// H̄ += S̄·H + S̄ᵀ·H for the symmetric product H·Hᵀ.
	sBar := scaleByPattern(psiBar, l.A)
	hbar.AddInPlace(sBar.MulDense(l.h))
	hbar.AddInPlace(sBar.Transpose().MulDense(l.h))
	return hbar
}

// scaleByPattern multiplies s's values element-wise by pat's values (same
// pattern); used to account for non-unit adjacency weights.
func scaleByPattern(s, pat *sparse.CSR) *sparse.CSR {
	return s.HadamardSamePattern(pat)
}
