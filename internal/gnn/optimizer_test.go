package gnn

import (
	"math"
	"testing"

	"agnn/internal/tensor"
)

// quadratic: L = ½‖x − c‖², grad = x − c. Every optimizer must converge.
func runQuadratic(t *testing.T, opt Optimizer, steps int, tol float64) {
	t.Helper()
	c := []float64{3, -2, 0.5, 7}
	p := NewParam("x", tensor.NewDense(1, 4))
	for s := 0; s < steps; s++ {
		p.ZeroGrad()
		for i := range c {
			p.Grad.Data[i] = p.Value.Data[i] - c[i]
		}
		opt.Step([]*Param{p})
	}
	for i := range c {
		if math.Abs(p.Value.Data[i]-c[i]) > tol {
			t.Fatalf("%s did not converge: x[%d] = %v, want %v", opt.Name(), i, p.Value.Data[i], c[i])
		}
	}
}

func TestSGDConverges(t *testing.T) {
	runQuadratic(t, NewSGD(0.1, 0), 200, 1e-6)
}

func TestSGDMomentumConverges(t *testing.T) {
	runQuadratic(t, NewSGD(0.05, 0.9), 400, 1e-6)
}

func TestAdamConverges(t *testing.T) {
	runQuadratic(t, NewAdam(0.3), 500, 1e-3)
}

func TestSGDStepDirection(t *testing.T) {
	p := NewParam("x", tensor.NewDenseFrom(1, 1, []float64{1}))
	p.Grad.Set(0, 0, 2)
	NewSGD(0.5, 0).Step([]*Param{p})
	if p.Value.At(0, 0) != 0 {
		t.Fatalf("SGD step: %v, want 0", p.Value.At(0, 0))
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// Adam's bias-corrected first step has magnitude ≈ lr regardless of
	// gradient scale.
	for _, g := range []float64{1e-4, 1, 1e4} {
		p := NewParam("x", tensor.NewDense(1, 1))
		p.Grad.Set(0, 0, g)
		NewAdam(0.01).Step([]*Param{p})
		if math.Abs(math.Abs(p.Value.At(0, 0))-0.01) > 1e-5 {
			t.Fatalf("Adam first step for g=%v moved %v, want ≈0.01", g, p.Value.At(0, 0))
		}
	}
}

func TestOptimizerHandlesMultipleParams(t *testing.T) {
	a := NewParam("a", tensor.NewDenseFrom(1, 1, []float64{5}))
	b := NewParam("b", tensor.NewDenseFrom(2, 2, []float64{1, 2, 3, 4}))
	a.Grad.Set(0, 0, 1)
	b.Grad.Fill(1)
	opt := NewSGD(1, 0.5)
	opt.Step([]*Param{a, b})
	opt.Step([]*Param{a, b})
	// After 2 steps with momentum 0.5 and constant grad 1: total = 1 + 1.5.
	if math.Abs(a.Value.At(0, 0)-(5-2.5)) > 1e-12 {
		t.Fatalf("a = %v", a.Value.At(0, 0))
	}
	if math.Abs(b.Value.At(0, 0)-(1-2.5)) > 1e-12 {
		t.Fatalf("b = %v", b.Value.At(0, 0))
	}
}

func TestScalarParamHelpers(t *testing.T) {
	p := NewScalarParam("beta", 2.5)
	if p.Scalar() != 2.5 {
		t.Fatal("Scalar roundtrip failed")
	}
	p.AddScalarGrad(1)
	p.AddScalarGrad(0.5)
	if p.Grad.At(0, 0) != 1.5 {
		t.Fatal("AddScalarGrad accumulation failed")
	}
	if p.NumElements() != 1 {
		t.Fatal("NumElements wrong")
	}
	w := NewParam("W", tensor.NewDense(3, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("Scalar on matrix param must panic")
		}
	}()
	w.Scalar()
}
