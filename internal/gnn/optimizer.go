package gnn

import (
	"math"

	"agnn/internal/tensor"
)

// Optimizer applies one update step to a parameter set using the gradients
// accumulated by the backward pass (the paper's W := W − αY learning rule
// and its momentum/Adam refinements).
type Optimizer interface {
	Step(params []*Param)
	Name() string
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param]*tensor.Dense
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param]*tensor.Dense)}
}

// Name implements Optimizer.
func (o *SGD) Name() string { return "sgd" }

// Step implements Optimizer: v = μv + g; W -= lr·v (or plain W -= lr·g when
// momentum is zero).
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum == 0 {
			p.Value.AxpyInPlace(-o.LR, p.Grad)
			continue
		}
		v := o.vel[p]
		if v == nil {
			v = tensor.NewDense(p.Value.Rows, p.Value.Cols)
			o.vel[p] = v
		}
		v.ScaleInPlace(o.Momentum)
		v.AddInPlace(p.Grad)
		p.Value.AxpyInPlace(-o.LR, v)
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param]*tensor.Dense
}

// NewAdam returns Adam with the conventional defaults β₁=0.9, β₂=0.999,
// ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Dense),
		v: make(map[*Param]*tensor.Dense),
	}
}

// Name implements Optimizer.
func (o *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = tensor.NewDense(p.Value.Rows, p.Value.Cols)
			v = tensor.NewDense(p.Value.Rows, p.Value.Cols)
			o.m[p] = m
			o.v[p] = v
		}
		for i, g := range p.Grad.Data {
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g*g
			mh := m.Data[i] / c1
			vh := v.Data[i] / c2
			p.Value.Data[i] -= o.LR * mh / (math.Sqrt(vh) + o.Eps)
		}
	}
}
