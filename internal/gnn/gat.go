package gnn

import (
	"fmt"
	"math/rand"

	"agnn/internal/fuse"
	"agnn/internal/kernels"
	"agnn/internal/par"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// GATLayer is the Graph Attention Network in the paper's global formulation
// (Figures 1 and 2):
//
//	Forward:   H' = H·W
//	           u  = H'·a₁,  v = H'·a₂          split of aᵀ[Wh_i ‖ Wh_j]
//	           C  = u·1ᵀ + 1·vᵀ                virtual n×n, never stored
//	           E  = A ⊙ LeakyReLU(C)           fused SDDMM-like kernel
//	           Ψ  = sm(E)
//	           Z  = Ψ·H'
//	           Hᵒ = σ(Z)
//
//	Backward (∂Ψ/∂W ≠ 0 — the second term of Eq. (7) is live for GAT):
//	           Ψ̄  = SDDMM(A, G, H')
//	           Ē  = softmax-VJP(Ψ, Ψ̄)
//	           C̄  = Ē ⊙ lrelu'(u_i + v_j)      fused, virtual C again
//	           ū  = sum(C̄),  v̄ = sumᵀ(C̄)
//	           H̄' = Ψᵀ·G + ū·a₁ᵀ + v̄·a₂ᵀ
//	           ā₁ = H'ᵀ·ū,  ā₂ = H'ᵀ·v̄
//	           Γ  = H̄'·Wᵀ,  Y = Hᵀ·H̄'
type GATLayer struct {
	A, AT    *sparse.CSR
	W        *Param
	A1, A2   *Param // the two halves of the attention vector a
	Act      Activation
	NegSlope float64

	// Direct bypasses the compiled plan and trains through the hand-written
	// kernel path.
	Direct bool

	// DType selects the element width of the layer's compiled plans (see
	// VALayer.DType).
	DType tensor.DType

	// PlanInference routes non-training Forward through a compiled
	// inference plan (see VALayer.PlanInference).
	PlanInference bool

	pc  planCache
	ipc planCache // inference plans (PlanInference)

	// cached intermediates (direct training-mode forward)
	h    *tensor.Dense
	hp   *tensor.Dense
	u, v []float64
	psi  *sparse.CSR
	z    *tensor.Dense
}

// NewGATLayer constructs a single-head GAT layer. The attention vector
// halves are initialized with Glorot fan-in k.
func NewGATLayer(a, at *sparse.CSR, inDim, outDim int, act Activation, negSlope float64, rng *rand.Rand) *GATLayer {
	return &GATLayer{
		A: a, AT: at,
		W:        NewParam("W", tensor.GlorotInit(inDim, outDim, rng)),
		A1:       NewParam("a1", tensor.GlorotInit(outDim, 1, rng)),
		A2:       NewParam("a2", tensor.GlorotInit(outDim, 1, rng)),
		Act:      act,
		NegSlope: negSlope,
	}
}

// Name implements Layer.
func (l *GATLayer) Name() string { return "gat" }

// Params implements Layer.
func (l *GATLayer) Params() []*Param { return []*Param{l.W, l.A1, l.A2} }

// ensurePlan compiles GAT's DAG into a reusable training plan. The virtual
// chain u·1ᵀ + 1·vᵀ → LeakyReLU fuses into the softmax sampling sweep.
func (l *GATLayer) ensurePlan(in int) *fuse.Plan {
	return l.pc.get(l.A, in, l.DType, func() string {
		return planSig("gat", true, l.Act, fmt.Sprintf("slope=%g", l.NegSlope), l.W, l.A1, l.A2)
	}, func(ws *tensor.Arena) *fuse.Plan {
		return l.buildGraph(in).MustCompile(
			fuse.Options{Train: true, SpanPrefix: "gat.", Workspace: ws, DType: l.DType})
	})
}

// ensureInferPlan compiles the same DAG as an inference plan (see
// VALayer.ensureInferPlan).
func (l *GATLayer) ensureInferPlan(in int) *fuse.Plan {
	return l.ipc.get(l.A, in, l.DType, func() string {
		return planSig("gat", false, l.Act, fmt.Sprintf("slope=%g", l.NegSlope), l.W, l.A1, l.A2)
	}, func(ws *tensor.Arena) *fuse.Plan {
		return l.buildGraph(in).MustCompile(
			fuse.Options{SpanPrefix: "gat.", Workspace: ws, DType: l.DType})
	})
}

func (l *GATLayer) buildGraph(in int) *fuse.Graph {
	g := fuse.NewGraph("gat", l.A)
	h := g.InputDense("H", l.A.Rows, in)
	wn := g.ParamNode("W", planRef(l.W))
	a1n := g.ParamNode("a1", planRef(l.A1))
	a2n := g.ParamNode("a2", planRef(l.A2))
	hp := g.MM("Hp", h, wn)
	u := g.MatVecNode("u", hp, a1n)
	v := g.MatVecNode("v", hp, a2n)
	c := g.AddScores("C", g.RepRow("u1T", u), g.RepCol("1vT", v))
	e := g.Mask("E", g.LReLUScores("lreluC", c, l.NegSlope), false)
	psi := g.Softmax("Psi", e)
	z := g.SpMM("Z", psi, hp)
	g.SetOutput(g.Sigma("Hout", z, planAct(l.Act)))
	return g
}

// Plan returns the compiled training plan (nil before the first planned
// training-mode Forward).
func (l *GATLayer) Plan() *fuse.Plan { return l.pc.plan }

func (l *GATLayer) releasePlans() { l.pc.release(); l.ipc.release() }

// Forward implements Layer.
func (l *GATLayer) Forward(h *tensor.Dense, training bool) *tensor.Dense {
	if training && !l.Direct {
		return l.ensurePlan(h.Cols).Forward(h)
	}
	if !training && l.PlanInference && !l.Direct {
		return l.ensureInferPlan(h.Cols).Forward(h)
	}
	hp := tensor.MM(h, l.W.Value)
	u := tensor.MatVec(hp, l.A1.Value.Data)
	v := tensor.MatVec(hp, l.A2.Value.Data)
	score := kernels.GATEdgeScore(u, v, l.NegSlope)
	if !training {
		return l.Act.apply(kernels.FusedSoftmaxApply(l.A, score, hp))
	}
	l.h, l.hp, l.u, l.v = h, hp, u, v
	l.psi = kernels.FusedSoftmaxScores(l.A, score) // sm(A ⊙ σ(C)), C virtual
	l.z = l.psi.MulDense(hp)
	return l.Act.apply(l.z)
}

// Backward implements Layer.
func (l *GATLayer) Backward(gOut *tensor.Dense) *tensor.Dense {
	if !l.Direct {
		if l.pc.plan == nil {
			panic("gnn: GATLayer.Backward before training-mode Forward")
		}
		return l.pc.plan.Backward(gOut)
	}
	if l.z == nil {
		panic("gnn: GATLayer.Backward before training-mode Forward")
	}
	g := gOut.Hadamard(l.Act.derivAt(l.z))

	// Z = Ψ·H'.
	psiBar := sparse.SDDMM(l.A, g, l.hp)
	hpBar := l.psi.Transpose().MulDense(g)

	// Softmax VJP, then the LeakyReLU mask on the virtual C = u·1ᵀ + 1·vᵀ.
	eBar := sparse.RowSoftmaxBackward(l.psi, psiBar)
	cBar := l.lreluMask(eBar)

	// Score gradients through the rep/sum building blocks: ū = sum(C̄),
	// v̄ = sumᵀ(C̄).
	uBar := cBar.RowSums()
	vBar := cBar.ColSums()

	// H̄' accumulates the aggregation path and the two score paths.
	tensor.AddOuterInPlace(hpBar, 1, uBar, l.A1.Value.Data)
	tensor.AddOuterInPlace(hpBar, 1, vBar, l.A2.Value.Data)

	// Attention-vector gradients ā₁ = H'ᵀ·ū, ā₂ = H'ᵀ·v̄.
	a1g := tensor.VecMat(uBar, l.hp)
	a2g := tensor.VecMat(vBar, l.hp)
	for i := range a1g {
		l.A1.Grad.Data[i] += a1g[i]
		l.A2.Grad.Data[i] += a2g[i]
	}

	// H' = H·W.
	l.W.Grad.AddInPlace(tensor.TMM(l.h, hpBar))
	return tensor.MM(hpBar, l.W.Value.T())
}

// lreluMask multiplies each stored entry of eBar by lrelu'(u_i + v_j),
// re-evaluating the virtual pre-activation scores instead of having stored
// them — the same fusion the forward pass uses.
func (l *GATLayer) lreluMask(eBar *sparse.CSR) *sparse.CSR {
	vals := make([]float64, eBar.NNZ())
	par.RangeWeighted(eBar.Rows, func(i int) int64 { return int64(eBar.RowNNZ(i)) }, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			for p := eBar.RowPtr[i]; p < eBar.RowPtr[i+1]; p++ {
				d := 1.0
				if l.u[i]+l.v[eBar.Col[p]] < 0 {
					d = l.NegSlope
				}
				vals[p] = eBar.Val[p] * d
			}
		}
	})
	return eBar.WithValues(vals)
}
