package gnn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// permute returns P·A·Pᵀ and P·H for a vertex permutation perm
// (perm[new] = old).
func permuteGraph(a *sparse.CSR, perm []int) *sparse.CSR {
	inv := make([]int32, len(perm))
	for newID, oldID := range perm {
		inv[oldID] = int32(newID)
	}
	c := sparse.NewCOO(a.Rows, a.Cols, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			c.AppendVal(inv[i], inv[a.Col[p]], a.Val[p])
		}
	}
	return sparse.FromCOO(c)
}

func permuteRows(h *tensor.Dense, perm []int) *tensor.Dense {
	out := tensor.NewDense(h.Rows, h.Cols)
	for newID, oldID := range perm {
		copy(out.Row(newID), h.Row(oldID))
	}
	return out
}

// TestPermutationEquivariance: GNN layers must be permutation-equivariant —
// relabeling the vertices permutes the outputs identically. This is a
// fundamental property-based check on all four global formulations, run
// via testing/quick over random permutations.
func TestPermutationEquivariance(t *testing.T) {
	for _, kind := range []Kind{VA, AGNN, GAT, GCN} {
		kind := kind
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 8 + rng.Intn(12)
			a := testGraph(n, seed)
			h := tensor.RandN(n, 4, 1, rng)
			m, err := New(Config{Model: kind, Layers: 2, InDim: 4, HiddenDim: 5,
				OutDim: 3, Activation: Tanh(), SelfLoops: true, Seed: seed}, a)
			if err != nil {
				return false
			}
			out := m.Forward(h, false)

			perm := rng.Perm(n)
			// Rebind the same weights onto the permuted graph. The layer's
			// stored adjacency already includes the preprocessing, so
			// permute that one.
			var procA *sparse.CSR
			switch l := m.Layers[0].(type) {
			case *VALayer:
				procA = l.A
			case *AGNNLayer:
				procA = l.A
			case *GATLayer:
				procA = l.A
			case *GCNLayer:
				procA = l.A
			}
			pm, err := RebindAdjacency(m, permuteGraph(procA, perm))
			if err != nil {
				return false
			}
			pout := pm.Forward(permuteRows(h, perm), false)
			return pout.ApproxEqual(permuteRows(out, perm), 1e-9)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
			t.Fatalf("%v not permutation-equivariant: %v", kind, err)
		}
	}
}

// TestAttentionRowsAreStochastic: after a training-mode forward, the cached
// attention matrices of AGNN and GAT must be row-stochastic over non-empty
// neighborhoods (Ψ = sm(·) rows sum to 1).
func TestAttentionRowsAreStochastic(t *testing.T) {
	a := testGraph(25, 100)
	at := a.Transpose()
	rng := rand.New(rand.NewSource(101))
	h := tensor.RandN(25, 4, 1, rng)

	// The cached Ψ belongs to the hand-written kernel path; the planned
	// path's softmax normalization is covered by the fuse package's
	// forward-equivalence tests.
	gat := NewGATLayer(a, at, 4, 3, ReLU(), 0.2, rng)
	gat.Direct = true
	gat.Forward(h, true)
	for i, s := range gat.psi.RowSums() {
		if gat.psi.RowNNZ(i) > 0 && math.Abs(s-1) > 1e-12 {
			t.Fatalf("GAT Ψ row %d sums to %v", i, s)
		}
	}
	agnn := NewAGNNLayer(a, at, 4, 3, ReLU(), rng)
	agnn.Direct = true
	agnn.Forward(h, true)
	for i, s := range agnn.psi.RowSums() {
		if agnn.psi.RowNNZ(i) > 0 && math.Abs(s-1) > 1e-12 {
			t.Fatalf("AGNN Ψ row %d sums to %v", i, s)
		}
	}
}

// TestGradientAccumulation: two Backward passes without ZeroGrad must
// accumulate, and equal exactly twice a single pass.
func TestGradientAccumulation(t *testing.T) {
	a := testGraph(12, 102)
	m, err := New(Config{Model: GAT, Layers: 2, InDim: 3, HiddenDim: 4, OutDim: 2,
		Activation: Tanh(), Seed: 103}, a)
	if err != nil {
		t.Fatal(err)
	}
	h := tensor.RandN(12, 3, 1, rand.New(rand.NewSource(104)))
	loss := &MSELoss{Target: tensor.RandN(12, 2, 1, rand.New(rand.NewSource(105)))}

	run := func() {
		out := m.Forward(h, true)
		_, g := loss.Eval(out)
		m.Backward(g)
	}
	m.ZeroGrad()
	run()
	single := make([]*tensor.Dense, 0)
	for _, p := range m.Params() {
		single = append(single, p.Grad.Clone())
	}
	m.ZeroGrad()
	run()
	run()
	for i, p := range m.Params() {
		if !p.Grad.ApproxEqual(single[i].Scale(2), 1e-12) {
			t.Fatalf("gradient of %s did not accumulate to 2×", p.Name)
		}
	}
}

// TestIsolatedVertexHandling: vertices without neighbors must produce zero
// aggregation (not NaN) in every model, forward and backward.
func TestIsolatedVertexHandling(t *testing.T) {
	// Star graph plus two isolated vertices; no self loops added.
	c := sparse.NewCOO(6, 6, 6)
	c.Append(0, 1)
	c.Append(1, 0)
	c.Append(0, 2)
	c.Append(2, 0)
	c.Append(1, 2)
	c.Append(2, 1)
	a := sparse.FromCOO(c) // vertices 3,4,5 isolated
	h := tensor.RandN(6, 3, 1, rand.New(rand.NewSource(106)))
	for _, kind := range []Kind{VA, AGNN, GAT, GCN} {
		m, err := New(Config{Model: kind, Layers: 2, InDim: 3, HiddenDim: 3,
			OutDim: 3, Activation: Tanh(), SelfLoops: false, Seed: 107}, a)
		if err != nil {
			t.Fatal(err)
		}
		out := m.Forward(h, true)
		for _, v := range out.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v produced non-finite output with isolated vertices", kind)
			}
		}
		_, g := (&MSELoss{Target: tensor.NewDense(6, 3)}).Eval(out)
		in := m.Backward(g)
		for _, v := range in.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v produced non-finite gradients with isolated vertices", kind)
			}
		}
	}
}

// TestZeroFeatureRobustness: all-zero input features (zero norms for AGNN)
// must not produce NaNs anywhere.
func TestZeroFeatureRobustness(t *testing.T) {
	a := testGraph(10, 108)
	h := tensor.NewDense(10, 3)
	for _, kind := range []Kind{VA, AGNN, GAT} {
		m, err := New(Config{Model: kind, Layers: 2, InDim: 3, HiddenDim: 3,
			OutDim: 2, Activation: ReLU(), SelfLoops: true, Seed: 109}, a)
		if err != nil {
			t.Fatal(err)
		}
		out := m.Forward(h, true)
		for _, v := range out.Data {
			if math.IsNaN(v) {
				t.Fatalf("%v produced NaN on zero features", kind)
			}
		}
		_, g := (&MSELoss{Target: tensor.NewDense(10, 2)}).Eval(out)
		in := m.Backward(g)
		for _, v := range in.Data {
			if math.IsNaN(v) {
				t.Fatalf("%v produced NaN gradient on zero features", kind)
			}
		}
	}
}
