package gnn

import (
	"fmt"
	"math"

	"agnn/internal/tensor"
)

// Param is a trainable tensor with its accumulated gradient. Scalar
// parameters (AGNN's β) are represented as 1×1 matrices so optimizers treat
// every parameter uniformly.
type Param struct {
	Name  string
	Value *tensor.Dense
	Grad  *tensor.Dense
}

// NewParam wraps an initialized value with a zeroed gradient buffer.
func NewParam(name string, value *tensor.Dense) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.NewDense(value.Rows, value.Cols)}
}

// NewScalarParam wraps a scalar as a 1×1 parameter.
func NewScalarParam(name string, v float64) *Param {
	m := tensor.NewDense(1, 1)
	m.Set(0, 0, v)
	return NewParam(name, m)
}

// Scalar returns the value of a 1×1 parameter.
func (p *Param) Scalar() float64 {
	if p.Value.Rows != 1 || p.Value.Cols != 1 {
		panic(fmt.Sprintf("gnn: parameter %q is not scalar (%d×%d)", p.Name, p.Value.Rows, p.Value.Cols))
	}
	return p.Value.At(0, 0)
}

// AddScalarGrad accumulates g into a 1×1 parameter's gradient.
func (p *Param) AddScalarGrad(g float64) {
	p.Grad.Set(0, 0, p.Grad.At(0, 0)+g)
}

// ZeroGrad clears the gradient buffer.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// NumElements returns the parameter count.
func (p *Param) NumElements() int { return p.Value.Rows * p.Value.Cols }

// GradNorm returns the global L2 norm over all parameters' gradients — the
// scalar training-health signal the per-epoch metrics record.
func GradNorm(params []*Param) float64 {
	ss := 0.0
	for _, p := range params {
		for _, v := range p.Grad.Data {
			ss += v * v
		}
	}
	return math.Sqrt(ss)
}
