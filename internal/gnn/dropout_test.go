package gnn

import (
	"math"
	"math/rand"
	"testing"

	"agnn/internal/tensor"
)

func TestDropoutInferenceIsIdentity(t *testing.T) {
	d := NewDropout(0.5, 1)
	h := tensor.RandN(10, 4, 1, rand.New(rand.NewSource(2)))
	if out := d.Forward(h, false); !out.ApproxEqual(h, 0) {
		t.Fatal("inference dropout must be the identity")
	}
	// Backward with no mask passes the gradient through unchanged.
	g := tensor.RandN(10, 4, 1, rand.New(rand.NewSource(3)))
	if !d.Backward(g).ApproxEqual(g, 0) {
		t.Fatal("inference backward must be identity")
	}
}

func TestDropoutPreservesExpectation(t *testing.T) {
	d := NewDropout(0.3, 4)
	h := tensor.NewDense(200, 50).Fill(1)
	out := d.Forward(h, true)
	mean := 0.0
	zeros := 0
	for _, v := range out.Data {
		mean += v
		if v == 0 {
			zeros++
		}
	}
	mean /= float64(len(out.Data))
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("inverted dropout mean %v, want ≈1", mean)
	}
	frac := float64(zeros) / float64(len(out.Data))
	if math.Abs(frac-0.3) > 0.05 {
		t.Fatalf("dropped fraction %v, want ≈0.3", frac)
	}
}

func TestDropoutBackwardUsesSameMask(t *testing.T) {
	d := NewDropout(0.5, 5)
	h := tensor.NewDense(20, 20).Fill(1)
	out := d.Forward(h, true)
	g := tensor.NewDense(20, 20).Fill(1)
	back := d.Backward(g)
	// The same entries must be dropped in forward and backward.
	for i := range out.Data {
		if (out.Data[i] == 0) != (back.Data[i] == 0) {
			t.Fatal("forward and backward masks differ")
		}
	}
}

func TestDropoutZeroRate(t *testing.T) {
	d := NewDropout(0, 6)
	h := tensor.RandN(5, 5, 1, rand.New(rand.NewSource(7)))
	if !d.Forward(h, true).ApproxEqual(h, 0) {
		t.Fatal("rate-0 dropout must be identity in training too")
	}
}

func TestDropoutRejectsBadRate(t *testing.T) {
	for _, r := range []float64{-0.1, 1.0, 2.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rate %v accepted", r)
				}
			}()
			NewDropout(r, 1)
		}()
	}
}

func TestDropoutInModelStack(t *testing.T) {
	// A model with dropout still trains; inference is deterministic.
	a := testGraph(20, 80)
	inner, err := New(Config{Model: GCN, Layers: 2, InDim: 4, HiddenDim: 6,
		OutDim: 2, Activation: ReLU(), Seed: 81}, a)
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Layers: []Layer{NewDropout(0.2, 82), inner.Layers[0], inner.Layers[1]}}
	h := tensor.RandN(20, 4, 1, rand.New(rand.NewSource(83)))
	labels := make([]int, 20)
	for i := range labels {
		labels[i] = i % 2
		h.Set(i, labels[i], h.At(i, labels[i])+1)
	}
	hist, err := m.Train(h, &CrossEntropyLoss{Labels: labels}, NewAdam(0.02), 25)
	if err != nil {
		t.Fatal(err)
	}
	if hist[len(hist)-1] >= hist[0] {
		t.Fatalf("dropout model did not train: %v → %v", hist[0], hist[len(hist)-1])
	}
	o1 := m.Forward(h, false)
	o2 := m.Forward(h, false)
	if !o1.ApproxEqual(o2, 0) {
		t.Fatal("inference must be deterministic")
	}
}
