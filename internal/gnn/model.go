package gnn

import (
	"fmt"
	"strings"

	"agnn/internal/tensor"
)

// Layer is one GNN layer: H_out = σ(Z(A, H_in, params)). Forward with
// training == true caches whatever intermediates the backward pass needs
// (Ψ, Z, projected features …), matching the paper's GnnLayer classes whose
// forward methods "allow caching of intermediate results for training";
// with training == false layers may use fused inference-only kernels that
// never materialize the attention matrix.
type Layer interface {
	// Forward computes the layer output σ(Z).
	Forward(h *tensor.Dense, training bool) *tensor.Dense
	// Backward consumes ∂L/∂H_out, accumulates parameter gradients, and
	// returns ∂L/∂H_in. It must be called after a training-mode Forward.
	Backward(gOut *tensor.Dense) *tensor.Dense
	// Params returns the layer's trainable parameters.
	Params() []*Param
	// Name identifies the layer kind for reporting.
	Name() string
}

// TrainableLayer is implemented by layers that may refuse training — e.g. a
// GenericLayer assembled from custom closures or a semiring aggregation has
// no plan-derived backward. Model.CheckTrainable (and Train) surface the
// refusal as a descriptive error before any backward pass can panic
// mid-epoch. Layers that do not implement the interface are assumed
// trainable.
type TrainableLayer interface {
	// CanTrain returns nil when the layer supports Backward, or an error
	// explaining why it does not.
	CanTrain() error
}

// Model is a stack of GNN layers trained full-batch.
type Model struct {
	Layers []Layer
	// DType records the element width the layers' plans execute at (set by
	// New from Config.DType). Checkpoints stamp it so a resume across
	// dtypes fails loudly instead of silently changing numerics.
	DType tensor.DType
}

// CheckTrainable reports whether every layer supports training, identifying
// the first offending layer by index and kind.
func (m *Model) CheckTrainable() error {
	for i, l := range m.Layers {
		if tl, ok := l.(TrainableLayer); ok {
			if err := tl.CanTrain(); err != nil {
				return fmt.Errorf("gnn: layer %d (%s) cannot train: %w", i, l.Name(), err)
			}
		}
	}
	return nil
}

// Forward runs all layers on the input feature matrix.
func (m *Model) Forward(h *tensor.Dense, training bool) *tensor.Dense {
	for _, l := range m.Layers {
		h = l.Forward(h, training)
	}
	return h
}

// Backward propagates ∇_{H^L}L through all layers in reverse, accumulating
// parameter gradients, and returns the gradient with respect to the input
// features (useful for gradient checking and for stacking models).
func (m *Model) Backward(g *tensor.Dense) *tensor.Dense {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		g = m.Layers[i].Backward(g)
	}
	return g
}

// Params returns all trainable parameters, layer order preserved.
func (m *Model) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all parameter gradients.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total number of trainable scalars.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.NumElements()
	}
	return n
}

// TrainStep runs one full-batch training iteration — forward, loss,
// backward, optimizer step — and returns the loss value.
func (m *Model) TrainStep(h *tensor.Dense, loss Loss, opt Optimizer) float64 {
	m.ZeroGrad()
	out := m.Forward(h, true)
	val, g := loss.Eval(out)
	m.Backward(g)
	opt.Step(m.Params())
	return val
}

// Train runs epochs full-batch training iterations and returns the loss
// trajectory. It refuses untrainable models (see TrainableLayer) with a
// descriptive error instead of panicking mid-epoch.
func (m *Model) Train(h *tensor.Dense, loss Loss, opt Optimizer, epochs int) ([]float64, error) {
	if err := m.CheckTrainable(); err != nil {
		return nil, err
	}
	hist := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		hist = append(hist, m.TrainStep(h, loss, opt))
	}
	return hist, nil
}

// Summary renders a human-readable table of the model's layers and
// parameter shapes (the quick architecture sanity check every framework
// grows eventually).
func (m *Model) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-16s %-24s %10s\n", "layer", "kind", "parameters", "#scalars")
	total := 0
	for i, l := range m.Layers {
		names := ""
		count := 0
		for _, p := range l.Params() {
			if names != "" {
				names += " "
			}
			names += fmt.Sprintf("%s[%d×%d]", p.Name, p.Value.Rows, p.Value.Cols)
			count += p.NumElements()
		}
		if names == "" {
			names = "—"
		}
		fmt.Fprintf(&b, "%-5d %-16s %-24s %10d\n", i, l.Name(), names, count)
		total += count
	}
	fmt.Fprintf(&b, "total %d trainable scalars\n", total)
	return b.String()
}
