package gnn

import (
	"math"
	"testing"
)

func TestActivationValues(t *testing.T) {
	cases := []struct {
		act  Activation
		x    float64
		want float64
	}{
		{ReLU(), 2, 2}, {ReLU(), -2, 0},
		{LeakyReLU(0.2), 3, 3}, {LeakyReLU(0.2), -3, -0.6},
		{ELU(1), 1, 1}, {ELU(1), -1, math.Exp(-1) - 1},
		{Identity(), -7, -7},
		{Sigmoid(), 0, 0.5},
		{Tanh(), 0, 0},
	}
	for _, c := range cases {
		if got := c.act.F(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s(%v) = %v, want %v", c.act.Name, c.x, got, c.want)
		}
	}
}

func TestActivationDerivativesFiniteDifference(t *testing.T) {
	acts := []Activation{ReLU(), LeakyReLU(0.2), ELU(1.3), Sigmoid(), Tanh(), Identity()}
	xs := []float64{-2.3, -0.7, 0.4, 1.9, 3.5} // avoid the ReLU kink at 0
	const eps = 1e-6
	for _, a := range acts {
		for _, x := range xs {
			num := (a.F(x+eps) - a.F(x-eps)) / (2 * eps)
			if math.Abs(num-a.DF(x)) > 1e-5 {
				t.Errorf("%s'(%v) = %v, finite diff %v", a.Name, x, a.DF(x), num)
			}
		}
	}
}

func TestActivationByName(t *testing.T) {
	for _, name := range []string{"relu", "leaky-relu", "elu", "sigmoid", "tanh", "identity", ""} {
		if _, ok := ActivationByName(name); !ok {
			t.Errorf("ActivationByName(%q) failed", name)
		}
	}
	if _, ok := ActivationByName("swish"); ok {
		t.Error("unknown activation resolved")
	}
}

func TestKindStringAndParse(t *testing.T) {
	for _, k := range []Kind{VA, AGNN, GAT, GCN} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%v) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("GIN"); err == nil {
		t.Error("ParseKind should reject unknown models")
	}
	if k, err := ParseKind("gat"); err != nil || k != GAT {
		t.Error("ParseKind must be case-insensitive")
	}
}
