package gnn

import (
	"fmt"

	"agnn/internal/fuse"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// This file implements the programmability story of Eq. (1): a user-defined
// A-GNN is assembled from three pluggable pieces,
//
//	H^{l+1} = σ(Z),  Z = (Φ∘⊕)(Ψ(A, H), H)
//
// where Ψ computes the (sparse) attention/coefficient matrix, ⊕ aggregates
// neighbor features through it, and Φ updates the aggregate. Configurations
// built entirely from the named constructors below compile to an executable
// fuse.Plan, which also derives a trained backward pass for linear Φ (and
// MLP Φ) under sum aggregation; custom closures and semiring aggregations
// remain inference-only, reported through CanTrain rather than a mid-epoch
// panic.

// PsiFunc computes the sparse coefficient matrix Ψ(A, H) — its output must
// have A's shape. Built-in examples: VA's A ⊙ H·Hᵀ, GAT's sm(A ⊙ σ(C)).
type PsiFunc func(a *sparse.CSR, h *tensor.Dense) *sparse.CSR

// AggFunc is the ⊕ aggregation: it combines Ψ with the feature matrix.
// The default is the real-semiring SpMM Ψ·H; semiring variants (max, min,
// average) plug in here.
type AggFunc func(psi *sparse.CSR, h *tensor.Dense) *tensor.Dense

// UpdateFunc is the Φ update applied around the aggregation. Typical
// instances are a linear projection (·W) or an MLP.
type UpdateFunc func(h *tensor.Dense) *tensor.Dense

// Psi is a named Ψ choice. Kind identifies the built-in formulations the
// plan compiler knows how to differentiate ("adjacency", "dot",
// "softmax-dot"); F is the executable closure (always usable for inference).
// The zero value means adjacency.
type Psi struct {
	Kind string
	F    PsiFunc
}

// Agg is a named ⊕ choice ("sum", "max", "min", "mean"); the zero value
// means sum. Only sum (the real semiring) has a linear backward.
type Agg struct {
	Kind string
	F    AggFunc
}

// Phi is a named Φ choice ("identity", "linear", "mlp"). For linear/MLP
// updates, Ws holds the projection matrices (shared with F's closure, so the
// optimizer and the closure see the same buffers) and Act the MLP's internal
// non-linearity. The zero value means identity.
type Phi struct {
	Kind string
	F    UpdateFunc
	Ws   []*tensor.Dense
	Act  Activation
}

// GenericLayer is a programmable A-GNN layer. PhiFirst selects the Φ∘⊕
// application order of Section 4.4: when true, Φ is applied to the features
// before aggregation (legal whenever Φ is linear), which is usually cheaper
// because the projection shrinks the feature dimension before the sparse
// product.
//
// When Ψ, ⊕ and Φ are all built-ins, training-mode forward/backward run
// through a compiled fuse.Plan; otherwise the layer executes the closures
// directly and is inference-only (CanTrain explains why).
type GenericLayer struct {
	A        *sparse.CSR
	Psi      Psi
	Agg      Agg
	Phi      Phi
	Act      Activation
	PhiFirst bool

	// Direct bypasses the compiled plan and always executes the closures
	// (inference-only, the pre-plan behavior).
	Direct bool

	// DType selects the element width of the layer's compiled plans (see
	// VALayer.DType). F32 requires sum aggregation — semiring ⊕ compiles
	// only to f64 plans.
	DType tensor.DType

	pc     planCache
	params []*Param
}

// Name implements Layer.
func (l *GenericLayer) Name() string { return "generic" }

// Params implements Layer: the wrapped Φ projection matrices for built-in
// linear/MLP updates; user-supplied closures own their parameters.
func (l *GenericLayer) Params() []*Param { return l.phiParams() }

func (l *GenericLayer) phiParams() []*Param {
	switch l.Phi.Kind {
	case "linear", "mlp":
	default:
		return nil
	}
	if l.params == nil {
		for i, w := range l.Phi.Ws {
			l.params = append(l.params, NewParam(fmt.Sprintf("W%d", i+1), w))
		}
	}
	return l.params
}

// CanTrain implements TrainableLayer: it reports, before any backward pass
// runs, whether this Ψ/⊕/Φ assembly has a plan-derived backward.
func (l *GenericLayer) CanTrain() error {
	if l.Direct {
		return fmt.Errorf("Direct mode executes raw closures with no backward; unset Direct to train")
	}
	switch l.Psi.Kind {
	case "", "adjacency", "dot", "softmax-dot":
	default:
		return fmt.Errorf("Ψ kind %q has no plan-derived backward; implement Layer directly to train it", l.Psi.Kind)
	}
	switch l.Agg.Kind {
	case "", "sum":
	case "max", "min", "mean":
		return fmt.Errorf("semiring aggregation %q is forward-only (Section 4.3); only sum has a linear backward", l.Agg.Kind)
	default:
		return fmt.Errorf("⊕ kind %q has no plan-derived backward", l.Agg.Kind)
	}
	switch l.Phi.Kind {
	case "", "identity", "linear", "mlp":
	default:
		return fmt.Errorf("Φ kind %q has no plan-derived backward", l.Phi.Kind)
	}
	if l.Act.F != nil && l.Act.DF == nil {
		return fmt.Errorf("activation %q has no derivative", l.Act.Name)
	}
	return nil
}

// plannable reports whether every piece is a built-in the graph builder can
// express (semiring aggregations included — they compile to forward-only
// plans).
func (l *GenericLayer) plannable() bool {
	switch l.Psi.Kind {
	case "", "adjacency", "dot", "softmax-dot":
	default:
		return false
	}
	switch l.Agg.Kind {
	case "", "sum", "max", "min", "mean":
	default:
		return false
	}
	switch l.Phi.Kind {
	case "", "identity", "linear", "mlp":
	default:
		return false
	}
	return true
}

// ensurePlan compiles the assembled Ψ/⊕/Φ DAG. The plan is a training plan
// exactly when CanTrain passes; otherwise (semiring ⊕) it is forward-only.
func (l *GenericLayer) ensurePlan(in int) *fuse.Plan {
	return l.pc.get(l.A, in, l.DType, func() string {
		extra := fmt.Sprintf("psi=%s|agg=%s|phi=%s|phiFirst=%t|phiAct=%s",
			l.Psi.Kind, l.Agg.Kind, l.Phi.Kind, l.PhiFirst, planAct(l.Phi.Act).Name)
		return planSig("generic", l.CanTrain() == nil, l.Act, extra, l.phiParams()...)
	}, func(ws *tensor.Arena) *fuse.Plan {
		train := l.CanTrain() == nil
		g := fuse.NewGraph("generic", l.A)
		h := g.InputDense("H", l.A.Rows, in)

		phi := func(x *fuse.Node) *fuse.Node {
			params := l.phiParams()
			for i, p := range params {
				w := g.ParamNode(p.Name, planRef(p))
				x = g.MM(fmt.Sprintf("phi%d", i+1), x, w)
				if i < len(params)-1 {
					x = g.Sigma(fmt.Sprintf("phiAct%d", i+1), x, planAct(l.Phi.Act))
				}
			}
			return x
		}

		var psi *fuse.Node
		switch l.Psi.Kind {
		case "", "adjacency":
			psi = g.Adj()
		case "dot":
			psi = g.Mask("Psi", g.DotScores("HHt", h, h), true)
		case "softmax-dot":
			psi = g.Softmax("Psi", g.Mask("S", g.DotScores("HHt", h, h), true))
		}

		x := h
		if l.PhiFirst {
			x = phi(x)
		}
		var z *fuse.Node
		switch l.Agg.Kind {
		case "", "sum":
			z = g.SpMM("Z", psi, x)
		default:
			z = g.SpMMSemiring("Z", psi, x, l.Agg.Kind)
		}
		if !l.PhiFirst {
			z = phi(z)
		}
		g.SetOutput(g.Sigma("Hout", z, planAct(l.Act)))
		return g.MustCompile(fuse.Options{Train: train, SpanPrefix: "generic.", Workspace: ws, DType: l.DType})
	})
}

// Plan returns the compiled plan (nil before the first planned Forward).
func (l *GenericLayer) Plan() *fuse.Plan { return l.pc.plan }

func (l *GenericLayer) releasePlans() { l.pc.release() }

// Forward implements Layer (Eq. 1).
func (l *GenericLayer) Forward(h *tensor.Dense, training bool) *tensor.Dense {
	if training && !l.Direct && l.plannable() {
		return l.ensurePlan(h.Cols).Forward(h)
	}
	psi := l.psiFn()(l.A, h)
	agg := l.aggFn()
	phi := l.phiFn()
	act := l.Act
	if act.F == nil {
		act = Identity()
	}
	var z *tensor.Dense
	if l.PhiFirst {
		z = agg(psi, phi(h))
	} else {
		z = phi(agg(psi, h))
	}
	return act.apply(z)
}

// Backward implements Layer: the plan-derived backward for trainable
// assemblies; a descriptive panic otherwise (Model.CheckTrainable surfaces
// the same condition as an error before training starts).
func (l *GenericLayer) Backward(gOut *tensor.Dense) *tensor.Dense {
	if err := l.CanTrain(); err != nil {
		panic("gnn: GenericLayer.Backward: " + err.Error())
	}
	if l.pc.plan == nil || !l.pc.plan.Train() {
		panic("gnn: GenericLayer.Backward before training-mode Forward")
	}
	return l.pc.plan.Backward(gOut)
}

// psiFn resolves the executable Ψ closure (constructor-supplied, or rebuilt
// from the kind for struct literals).
func (l *GenericLayer) psiFn() PsiFunc {
	if l.Psi.F != nil {
		return l.Psi.F
	}
	switch l.Psi.Kind {
	case "", "adjacency":
		return AdjacencyPsi().F
	case "dot":
		return DotPsi().F
	case "softmax-dot":
		return SoftmaxDotPsi().F
	}
	panic(fmt.Sprintf("gnn: Ψ kind %q has no closure", l.Psi.Kind))
}

func (l *GenericLayer) aggFn() AggFunc {
	if l.Agg.F != nil {
		return l.Agg.F
	}
	switch l.Agg.Kind {
	case "", "sum":
		return SumAgg().F
	case "max":
		return MaxAgg().F
	case "min":
		return MinAgg().F
	case "mean":
		return MeanAgg().F
	}
	panic(fmt.Sprintf("gnn: ⊕ kind %q has no closure", l.Agg.Kind))
}

func (l *GenericLayer) phiFn() UpdateFunc {
	if l.Phi.F != nil {
		return l.Phi.F
	}
	switch l.Phi.Kind {
	case "", "identity":
		return func(x *tensor.Dense) *tensor.Dense { return x }
	case "linear", "mlp":
		ws := l.Phi.Ws
		act := l.Phi.Act
		return func(x *tensor.Dense) *tensor.Dense { return applyMLP(x, act, ws) }
	}
	panic(fmt.Sprintf("gnn: Φ kind %q has no closure", l.Phi.Kind))
}

func applyMLP(x *tensor.Dense, act Activation, ws []*tensor.Dense) *tensor.Dense {
	for i, w := range ws {
		x = tensor.MM(x, w)
		if i < len(ws)-1 {
			x = x.Apply(act.F)
		}
	}
	return x
}

// SumAgg is the standard sum aggregation — a sparse-dense product over the
// real semiring (Section 4.3).
func SumAgg() Agg {
	return Agg{Kind: "sum",
		F: func(psi *sparse.CSR, h *tensor.Dense) *tensor.Dense { return psi.MulDense(h) }}
}

// MaxAgg aggregates with the tropical-max semiring.
func MaxAgg() Agg {
	return Agg{Kind: "max",
		F: func(psi *sparse.CSR, h *tensor.Dense) *tensor.Dense { return psi.MulDenseMax(h) }}
}

// MinAgg aggregates with the tropical-min semiring.
func MinAgg() Agg {
	return Agg{Kind: "min",
		F: func(psi *sparse.CSR, h *tensor.Dense) *tensor.Dense { return psi.MulDenseMin(h) }}
}

// MeanAgg aggregates with the ℝ² averaging semiring.
func MeanAgg() Agg {
	return Agg{Kind: "mean",
		F: func(psi *sparse.CSR, h *tensor.Dense) *tensor.Dense { return psi.MulDenseMean(h) }}
}

// CustomAgg wraps a user aggregation closure (inference-only).
func CustomAgg(f AggFunc) Agg { return Agg{Kind: "custom", F: f} }

// LinearPhi returns the projection update Φ(X) = X·W.
func LinearPhi(w *tensor.Dense) Phi {
	return Phi{Kind: "linear", Ws: []*tensor.Dense{w},
		F: func(x *tensor.Dense) *tensor.Dense { return tensor.MM(x, w) }}
}

// MLPPhi returns an MLP update: alternating projections and non-linearities
// (the GIN-style Φ of Section 4.4).
func MLPPhi(act Activation, ws ...*tensor.Dense) Phi {
	return Phi{Kind: "mlp", Ws: ws, Act: act,
		F: func(x *tensor.Dense) *tensor.Dense { return applyMLP(x, act, ws) }}
}

// CustomPhi wraps a user update closure (inference-only).
func CustomPhi(f UpdateFunc) Phi { return Phi{Kind: "custom", F: f} }

// AdjacencyPsi returns the degenerate Ψ(A, H) = A of C-GNNs.
func AdjacencyPsi() Psi {
	return Psi{Kind: "adjacency",
		F: func(a *sparse.CSR, _ *tensor.Dense) *sparse.CSR { return a }}
}

// DotPsi returns VA's Ψ(A, H) = A ⊙ H·Hᵀ.
func DotPsi() Psi {
	return Psi{Kind: "dot",
		F: func(a *sparse.CSR, h *tensor.Dense) *sparse.CSR {
			return sparse.SDDMMScaled(a, h, h)
		}}
}

// SoftmaxDotPsi returns sm(A ⊙ H·Hᵀ) — dot-product attention with
// neighborhood softmax.
func SoftmaxDotPsi() Psi {
	return Psi{Kind: "softmax-dot",
		F: func(a *sparse.CSR, h *tensor.Dense) *sparse.CSR {
			return sparse.RowSoftmax(sparse.SDDMMScaled(a, h, h))
		}}
}

// CustomPsi wraps a user coefficient closure (inference-only).
func CustomPsi(f PsiFunc) Psi { return Psi{Kind: "custom", F: f} }
