package gnn

import (
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// This file implements the programmability story of Eq. (1): a user-defined
// A-GNN is assembled from three pluggable pieces,
//
//	H^{l+1} = σ(Z),  Z = (Φ∘⊕)(Ψ(A, H), H)
//
// where Ψ computes the (sparse) attention/coefficient matrix, ⊕ aggregates
// neighbor features through it, and Φ updates the aggregate. The generic
// layer targets inference — the paper's built-in models provide trained
// backward passes; a custom model supplies one by implementing Layer
// directly.

// PsiFunc computes the sparse coefficient matrix Ψ(A, H) — its output must
// have A's shape. Built-in examples: VA's A ⊙ H·Hᵀ, GAT's sm(A ⊙ σ(C)).
type PsiFunc func(a *sparse.CSR, h *tensor.Dense) *sparse.CSR

// AggFunc is the ⊕ aggregation: it combines Ψ with the feature matrix.
// The default is the real-semiring SpMM Ψ·H; semiring variants (max, min,
// average) plug in here.
type AggFunc func(psi *sparse.CSR, h *tensor.Dense) *tensor.Dense

// UpdateFunc is the Φ update applied around the aggregation. Typical
// instances are a linear projection (·W) or an MLP.
type UpdateFunc func(h *tensor.Dense) *tensor.Dense

// GenericLayer is a programmable, inference-only A-GNN layer. PhiFirst
// selects the Φ∘⊕ application order of Section 4.4: when true, Φ is applied
// to the features before aggregation (legal whenever Φ is linear), which is
// usually cheaper because the projection shrinks the feature dimension
// before the sparse product.
type GenericLayer struct {
	A        *sparse.CSR
	Psi      PsiFunc
	Agg      AggFunc
	Phi      UpdateFunc
	Act      Activation
	PhiFirst bool
}

// Name implements Layer.
func (l *GenericLayer) Name() string { return "generic" }

// Params implements Layer; user-supplied closures own their parameters.
func (l *GenericLayer) Params() []*Param { return nil }

// Forward implements Layer (Eq. 1).
func (l *GenericLayer) Forward(h *tensor.Dense, _ bool) *tensor.Dense {
	psi := l.Psi(l.A, h)
	agg := l.Agg
	if agg == nil {
		agg = SumAgg()
	}
	phi := l.Phi
	if phi == nil {
		phi = func(x *tensor.Dense) *tensor.Dense { return x }
	}
	act := l.Act
	if act.F == nil {
		act = Identity()
	}
	var z *tensor.Dense
	if l.PhiFirst {
		z = agg(psi, phi(h))
	} else {
		z = phi(agg(psi, h))
	}
	return act.apply(z)
}

// Backward implements Layer; the generic layer is inference-only.
func (l *GenericLayer) Backward(*tensor.Dense) *tensor.Dense {
	panic("gnn: GenericLayer supports inference only; implement Layer for training")
}

// SumAgg is the standard sum aggregation — a sparse-dense product over the
// real semiring (Section 4.3).
func SumAgg() AggFunc {
	return func(psi *sparse.CSR, h *tensor.Dense) *tensor.Dense { return psi.MulDense(h) }
}

// MaxAgg aggregates with the tropical-max semiring.
func MaxAgg() AggFunc {
	return func(psi *sparse.CSR, h *tensor.Dense) *tensor.Dense { return psi.MulDenseMax(h) }
}

// MinAgg aggregates with the tropical-min semiring.
func MinAgg() AggFunc {
	return func(psi *sparse.CSR, h *tensor.Dense) *tensor.Dense { return psi.MulDenseMin(h) }
}

// MeanAgg aggregates with the ℝ² averaging semiring.
func MeanAgg() AggFunc {
	return func(psi *sparse.CSR, h *tensor.Dense) *tensor.Dense { return psi.MulDenseMean(h) }
}

// LinearPhi returns the projection update Φ(X) = X·W.
func LinearPhi(w *tensor.Dense) UpdateFunc {
	return func(x *tensor.Dense) *tensor.Dense { return tensor.MM(x, w) }
}

// MLPPhi returns an MLP update: alternating projections and non-linearities
// (the GIN-style Φ of Section 4.4).
func MLPPhi(act Activation, ws ...*tensor.Dense) UpdateFunc {
	return func(x *tensor.Dense) *tensor.Dense {
		for i, w := range ws {
			x = tensor.MM(x, w)
			if i < len(ws)-1 {
				x = x.Apply(act.F)
			}
		}
		return x
	}
}

// AdjacencyPsi returns the degenerate Ψ(A, H) = A of C-GNNs.
func AdjacencyPsi() PsiFunc {
	return func(a *sparse.CSR, _ *tensor.Dense) *sparse.CSR { return a }
}

// DotPsi returns VA's Ψ(A, H) = A ⊙ H·Hᵀ.
func DotPsi() PsiFunc {
	return func(a *sparse.CSR, h *tensor.Dense) *sparse.CSR {
		return sparse.SDDMMScaled(a, h, h)
	}
}

// SoftmaxDotPsi returns sm(A ⊙ H·Hᵀ) — dot-product attention with
// neighborhood softmax.
func SoftmaxDotPsi() PsiFunc {
	return func(a *sparse.CSR, h *tensor.Dense) *sparse.CSR {
		return sparse.RowSoftmax(sparse.SDDMMScaled(a, h, h))
	}
}
