package gnn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
)

// Weight checkpointing. The format is self-describing and validated on
// load: magic, parameter count, then per parameter its name, shape and
// row-major float64 data (little-endian). Version 2 appends a CRC-32C
// checksum over everything before it, so torn or bit-flipped files are
// rejected instead of silently loading garbage. Loading requires a model
// with an identical parameter inventory (same construction config), so
// checkpoints are portable across the single-node, local-formulation and
// distributed engines — they all draw the same parameter sequence.

const (
	weightsMagicV1 = "AGNNWTS1" // legacy: no checksum
	weightsMagicV2 = "AGNNWTS2" // current: trailing CRC-32C (Castagnoli)
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcWriter tees everything written into a running CRC.
type crcWriter struct {
	w io.Writer
	h hash.Hash32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if n > 0 {
		c.h.Write(p[:n])
	}
	return n, err
}

// crcReader hashes everything read while on; the trailer itself is read
// with hashing switched off.
type crcReader struct {
	r  io.Reader
	h  hash.Hash32
	on bool
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 && c.on {
		c.h.Write(p[:n])
	}
	return n, err
}

// SaveWeights serializes all parameters of a model.
func SaveWeights(w io.Writer, m *Model) error { return SaveParams(w, m.Params()) }

// SaveParams serializes an explicit parameter list in the current (v2,
// CRC-protected) format — the engine-agnostic entry point (the distributed
// engines expose the same parameter sequence as their single-node
// counterparts, so checkpoints are interchangeable).
func SaveParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw, h: crc32.New(crcTable)}
	if _, err := io.WriteString(cw, weightsMagicV2); err != nil {
		return err
	}
	if err := writeParamsBody(cw, params); err != nil {
		return err
	}
	// The checksum covers magic + body and is written outside the tee.
	if err := binary.Write(bw, binary.LittleEndian, cw.h.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

func writeParamsBody(w io.Writer, params []*Param) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(w, binary.LittleEndian, int64(len(name))); err != nil {
			return err
		}
		if _, err := w.Write(name); err != nil {
			return err
		}
		hdr := []int64{int64(p.Value.Rows), int64(p.Value.Cols)}
		if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, p.Value.Data); err != nil {
			return err
		}
	}
	return nil
}

// LoadWeights restores parameters into an already-constructed model. The
// checkpoint's parameter sequence (names and shapes) must match the
// model's exactly.
func LoadWeights(r io.Reader, m *Model) error { return LoadParams(r, m.Params()) }

// LoadParams restores an explicit parameter list (see SaveParams). Both the
// current CRC-protected v2 format and the legacy v1 format are accepted;
// v2 files whose checksum does not match are rejected.
func LoadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br, h: crc32.New(crcTable), on: true}
	magic := make([]byte, len(weightsMagicV2))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return fmt.Errorf("gnn: truncated checkpoint header: %w", err)
	}
	switch string(magic) {
	case weightsMagicV2:
		if err := readParamsBody(cr, params); err != nil {
			return err
		}
		cr.on = false
		var want uint32
		if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
			return fmt.Errorf("gnn: checkpoint missing checksum trailer: %w", err)
		}
		if got := cr.h.Sum32(); got != want {
			return fmt.Errorf("gnn: checkpoint checksum mismatch (file %08x, computed %08x)", want, got)
		}
		return nil
	case weightsMagicV1:
		return readParamsBody(br, params)
	default:
		return fmt.Errorf("gnn: bad checkpoint magic %q", magic)
	}
}

func readParamsBody(r io.Reader, params []*Param) error {
	var count int64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("gnn: truncated checkpoint: %w", err)
	}
	if int(count) != len(params) {
		return fmt.Errorf("gnn: checkpoint has %d parameters, model has %d", count, len(params))
	}
	for _, p := range params {
		var nameLen int64
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("gnn: truncated checkpoint: %w", err)
		}
		if nameLen < 0 || nameLen > 1<<16 {
			return fmt.Errorf("gnn: corrupt checkpoint (name length %d)", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return fmt.Errorf("gnn: truncated checkpoint: %w", err)
		}
		if string(name) != p.Name {
			return fmt.Errorf("gnn: checkpoint parameter %q does not match model parameter %q", name, p.Name)
		}
		var hdr [2]int64
		if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
			return fmt.Errorf("gnn: truncated checkpoint: %w", err)
		}
		if int(hdr[0]) != p.Value.Rows || int(hdr[1]) != p.Value.Cols {
			return fmt.Errorf("gnn: checkpoint %q is %d×%d, model wants %d×%d",
				p.Name, hdr[0], hdr[1], p.Value.Rows, p.Value.Cols)
		}
		if err := binary.Read(r, binary.LittleEndian, p.Value.Data); err != nil {
			return fmt.Errorf("gnn: truncated checkpoint: %w", err)
		}
	}
	return nil
}

// SaveWeightsFile writes a checkpoint to path.
func SaveWeightsFile(path string, m *Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return SaveWeights(f, m)
}

// LoadWeightsFile restores a checkpoint from path.
func LoadWeightsFile(path string, m *Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadWeights(f, m)
}
