package gnn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Weight checkpointing. The format is self-describing and validated on
// load: magic, parameter count, then per parameter its name, shape and
// row-major float64 data (little-endian). Loading requires a model with an
// identical parameter inventory (same construction config), so checkpoints
// are portable across the single-node, local-formulation and distributed
// engines — they all draw the same parameter sequence.

const weightsMagic = "AGNNWTS1"

// SaveWeights serializes all parameters of a model.
func SaveWeights(w io.Writer, m *Model) error { return SaveParams(w, m.Params()) }

// SaveParams serializes an explicit parameter list — the engine-agnostic
// entry point (the distributed engines expose the same parameter sequence
// as their single-node counterparts, so checkpoints are interchangeable).
func SaveParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(weightsMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(bw, binary.LittleEndian, int64(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		hdr := []int64{int64(p.Value.Rows), int64(p.Value.Cols)}
		if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, p.Value.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadWeights restores parameters into an already-constructed model. The
// checkpoint's parameter sequence (names and shapes) must match the
// model's exactly.
func LoadWeights(r io.Reader, m *Model) error { return LoadParams(r, m.Params()) }

// LoadParams restores an explicit parameter list (see SaveParams).
func LoadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(weightsMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return err
	}
	if string(magic) != weightsMagic {
		return fmt.Errorf("gnn: bad checkpoint magic %q", magic)
	}
	var count int64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	if int(count) != len(params) {
		return fmt.Errorf("gnn: checkpoint has %d parameters, model has %d", count, len(params))
	}
	for _, p := range params {
		var nameLen int64
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen < 0 || nameLen > 1<<16 {
			return fmt.Errorf("gnn: corrupt checkpoint (name length %d)", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("gnn: checkpoint parameter %q does not match model parameter %q", name, p.Name)
		}
		var hdr [2]int64
		if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
			return err
		}
		if int(hdr[0]) != p.Value.Rows || int(hdr[1]) != p.Value.Cols {
			return fmt.Errorf("gnn: checkpoint %q is %d×%d, model wants %d×%d",
				p.Name, hdr[0], hdr[1], p.Value.Rows, p.Value.Cols)
		}
		if err := binary.Read(br, binary.LittleEndian, p.Value.Data); err != nil {
			return err
		}
	}
	return nil
}

// SaveWeightsFile writes a checkpoint to path.
func SaveWeightsFile(path string, m *Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return SaveWeights(f, m)
}

// LoadWeightsFile restores a checkpoint from path.
func LoadWeightsFile(path string, m *Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadWeights(f, m)
}
