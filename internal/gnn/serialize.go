package gnn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"

	"agnn/internal/tensor"
)

// Weight checkpointing. The format is self-describing and validated on
// load: magic, parameter count, then per parameter its name, shape and
// row-major data (little-endian). Version 2 appends a CRC-32C checksum
// over everything before it, so torn or bit-flipped files are rejected
// instead of silently loading garbage. Version 3 inserts a dtype byte
// after the magic: f64 bodies stay float64, f32 bodies store the
// parameters rounded to float32 (half the bytes — the master weights of a
// mixed-precision run carry no information the f32 kernels ever see
// beyond that rounding anyway, and the stamp makes a cross-dtype resume a
// loud error instead of a silent numerics change). F64 checkpoints are
// still written as v2, so default-path output is byte-identical to
// dtype-unaware builds, and v1/v2 files load as f64. Loading requires a
// model with an identical parameter inventory (same construction config),
// so checkpoints are portable across the single-node, local-formulation
// and distributed engines — they all draw the same parameter sequence.

const (
	weightsMagicV1 = "AGNNWTS1" // legacy: no checksum
	weightsMagicV2 = "AGNNWTS2" // f64: trailing CRC-32C (Castagnoli)
	weightsMagicV3 = "AGNNWTS3" // dtype byte after magic; CRC-32C trailer
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcWriter tees everything written into a running CRC.
type crcWriter struct {
	w io.Writer
	h hash.Hash32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if n > 0 {
		c.h.Write(p[:n])
	}
	return n, err
}

// crcReader hashes everything read while on; the trailer itself is read
// with hashing switched off.
type crcReader struct {
	r  io.Reader
	h  hash.Hash32
	on bool
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 && c.on {
		c.h.Write(p[:n])
	}
	return n, err
}

// SaveWeights serializes all parameters of a model at the model's dtype.
func SaveWeights(w io.Writer, m *Model) error { return SaveParamsDType(w, m.Params(), m.DType) }

// SaveParams serializes an explicit parameter list in the v2 (f64,
// CRC-protected) format — the engine-agnostic entry point (the distributed
// engines expose the same parameter sequence as their single-node
// counterparts, so checkpoints are interchangeable).
func SaveParams(w io.Writer, params []*Param) error {
	return SaveParamsDType(w, params, tensor.F64)
}

// SaveParamsDType serializes a parameter list at the given element width:
// F64 writes the v2 format byte-for-byte, F32 writes the v3 format with an
// F32 dtype stamp and float32 parameter data.
func SaveParamsDType(w io.Writer, params []*Param, dt tensor.DType) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw, h: crc32.New(crcTable)}
	magic := weightsMagicV2
	if dt == tensor.F32 {
		magic = weightsMagicV3
	}
	if _, err := io.WriteString(cw, magic); err != nil {
		return err
	}
	if dt == tensor.F32 {
		if _, err := cw.Write([]byte{byte(dt)}); err != nil {
			return err
		}
	}
	if err := writeParamsBody(cw, params, dt); err != nil {
		return err
	}
	// The checksum covers magic (+ dtype) + body and is written outside
	// the tee.
	if err := binary.Write(bw, binary.LittleEndian, cw.h.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

func writeParamsBody(w io.Writer, params []*Param, dt tensor.DType) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(w, binary.LittleEndian, int64(len(name))); err != nil {
			return err
		}
		if _, err := w.Write(name); err != nil {
			return err
		}
		hdr := []int64{int64(p.Value.Rows), int64(p.Value.Cols)}
		if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
			return err
		}
		if dt == tensor.F32 {
			data32 := make([]float32, len(p.Value.Data))
			tensor.Floats64To32(data32, p.Value.Data)
			if err := binary.Write(w, binary.LittleEndian, data32); err != nil {
				return err
			}
		} else if err := binary.Write(w, binary.LittleEndian, p.Value.Data); err != nil {
			return err
		}
	}
	return nil
}

// LoadWeights restores parameters into an already-constructed model,
// requiring the checkpoint's dtype stamp to match the model's dtype. The
// checkpoint's parameter sequence (names and shapes) must match the
// model's exactly.
func LoadWeights(r io.Reader, m *Model) error { return LoadParamsDType(r, m.Params(), m.DType) }

// LoadParams restores an explicit parameter list (see SaveParams) for an
// f64 consumer. The CRC-protected v2 format, the legacy v1 format and v3
// f64 files are accepted; files whose checksum does not match are
// rejected.
func LoadParams(r io.Reader, params []*Param) error {
	return LoadParamsDType(r, params, tensor.F64)
}

// LoadParamsDType restores a parameter list, enforcing that the
// checkpoint's element width matches want: resuming an f32 run from an f64
// checkpoint (or vice versa) silently changes every subsequent numeric
// result, so the mismatch is a hard error rather than an implicit cast.
// v1/v2 files carry an implicit f64 stamp.
func LoadParamsDType(r io.Reader, params []*Param, want tensor.DType) error {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br, h: crc32.New(crcTable), on: true}
	magic := make([]byte, len(weightsMagicV2))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return fmt.Errorf("gnn: truncated checkpoint header: %w", err)
	}
	checkDType := func(got tensor.DType) error {
		if got != want {
			return fmt.Errorf("gnn: checkpoint dtype %s does not match model dtype %s; rebuild the model with DType=%s (or re-save the checkpoint) to resume", got, want, got)
		}
		return nil
	}
	readChecked := func(body io.Reader, dt tensor.DType) error {
		if err := readParamsBody(body, params, dt); err != nil {
			return err
		}
		cr.on = false
		var wantSum uint32
		if err := binary.Read(br, binary.LittleEndian, &wantSum); err != nil {
			return fmt.Errorf("gnn: checkpoint missing checksum trailer: %w", err)
		}
		if got := cr.h.Sum32(); got != wantSum {
			return fmt.Errorf("gnn: checkpoint checksum mismatch (file %08x, computed %08x)", wantSum, got)
		}
		return nil
	}
	switch string(magic) {
	case weightsMagicV3:
		var dtb [1]byte
		if _, err := io.ReadFull(cr, dtb[:]); err != nil {
			return fmt.Errorf("gnn: truncated checkpoint dtype: %w", err)
		}
		dt := tensor.DType(dtb[0])
		if dt != tensor.F64 && dt != tensor.F32 {
			return fmt.Errorf("gnn: corrupt checkpoint (dtype byte %d)", dtb[0])
		}
		if err := checkDType(dt); err != nil {
			return err
		}
		return readChecked(cr, dt)
	case weightsMagicV2:
		if err := checkDType(tensor.F64); err != nil {
			return err
		}
		return readChecked(cr, tensor.F64)
	case weightsMagicV1:
		if err := checkDType(tensor.F64); err != nil {
			return err
		}
		return readParamsBody(br, params, tensor.F64)
	default:
		return fmt.Errorf("gnn: bad checkpoint magic %q", magic)
	}
}

func readParamsBody(r io.Reader, params []*Param, dt tensor.DType) error {
	var count int64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("gnn: truncated checkpoint: %w", err)
	}
	if int(count) != len(params) {
		return fmt.Errorf("gnn: checkpoint has %d parameters, model has %d", count, len(params))
	}
	for _, p := range params {
		var nameLen int64
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("gnn: truncated checkpoint: %w", err)
		}
		if nameLen < 0 || nameLen > 1<<16 {
			return fmt.Errorf("gnn: corrupt checkpoint (name length %d)", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return fmt.Errorf("gnn: truncated checkpoint: %w", err)
		}
		if string(name) != p.Name {
			return fmt.Errorf("gnn: checkpoint parameter %q does not match model parameter %q", name, p.Name)
		}
		var hdr [2]int64
		if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
			return fmt.Errorf("gnn: truncated checkpoint: %w", err)
		}
		if int(hdr[0]) != p.Value.Rows || int(hdr[1]) != p.Value.Cols {
			return fmt.Errorf("gnn: checkpoint %q is %d×%d, model wants %d×%d",
				p.Name, hdr[0], hdr[1], p.Value.Rows, p.Value.Cols)
		}
		if dt == tensor.F32 {
			data32 := make([]float32, len(p.Value.Data))
			if err := binary.Read(r, binary.LittleEndian, data32); err != nil {
				return fmt.Errorf("gnn: truncated checkpoint: %w", err)
			}
			tensor.Floats32To64(p.Value.Data, data32)
		} else if err := binary.Read(r, binary.LittleEndian, p.Value.Data); err != nil {
			return fmt.Errorf("gnn: truncated checkpoint: %w", err)
		}
	}
	return nil
}

// SaveWeightsFile writes a checkpoint to path.
func SaveWeightsFile(path string, m *Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return SaveWeights(f, m)
}

// LoadWeightsFile restores a checkpoint from path.
func LoadWeightsFile(path string, m *Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadWeights(f, m)
}
