package gnn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"agnn/internal/par"
	"agnn/internal/tensor"
)

// dtypeCfg is the model configuration the f32-vs-f64 differential tests
// run: Tanh keeps magnitudes bounded so relative tolerances are meaningful.
func dtypeCfg(kind Kind, heads int, dt tensor.DType) Config {
	return Config{Model: kind, Layers: 2, InDim: 4, HiddenDim: 5, OutDim: 3,
		Activation: Tanh(), SelfLoops: true, Heads: heads, Seed: 71, DType: dt}
}

// maxRelDev is the elementwise relative deviation max |a-b| / (1+|b|).
func maxRelDev(a, b *tensor.Dense) float64 {
	worst := 0.0
	for i := range a.Data {
		d := math.Abs(a.Data[i]-b.Data[i]) / (1 + math.Abs(b.Data[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestModelF32ForwardMatchesF64 runs the mixed-precision differential
// across every built-in model kind and across worker counts: the f32 plans
// must track the f64 path within single-precision rounding both in training
// mode and through the planned-inference route (the only inference path
// with an f32 variant).
func TestModelF32ForwardMatchesF64(t *testing.T) {
	prev := par.Workers()
	defer par.SetWorkers(prev)

	a := testGraph(24, 70)
	h := tensor.RandN(24, 4, 0.8, rand.New(rand.NewSource(72)))
	kinds := []struct {
		kind  Kind
		heads int
	}{{VA, 1}, {AGNN, 1}, {GAT, 1}, {GAT, 2}, {GCN, 1}}

	for _, workers := range []int{1, 4} {
		par.SetWorkers(workers)
		for _, tc := range kinds {
			m64, err := New(dtypeCfg(tc.kind, tc.heads, tensor.F64), a)
			if err != nil {
				t.Fatal(err)
			}
			m32, err := New(dtypeCfg(tc.kind, tc.heads, tensor.F32), a)
			if err != nil {
				t.Fatal(err)
			}
			const tol = 1e-5
			got, want := m32.Forward(h, true), m64.Forward(h, true)
			if d := maxRelDev(got, want); d > tol {
				t.Errorf("%v heads=%d workers=%d: f32 training forward deviates by %.3g relative, want <= %g",
					tc.kind, tc.heads, workers, d, tol)
			}
			if tc.kind == GCN {
				continue // no attention chain; inference plans are attention-only
			}
			m32.SetPlanInference(true)
			got, want = m32.Forward(h, false), m64.Forward(h, false)
			if d := maxRelDev(got, want); d > tol {
				t.Errorf("%v heads=%d workers=%d: f32 planned inference deviates by %.3g relative, want <= %g",
					tc.kind, tc.heads, workers, d, tol)
			}
		}
	}
}

// TestModelF32GradsMatchF64: one backward pass through every kind — the f32
// plans flush their gradients into the f64 accumulators, which must agree
// with the f64 plans' gradients to a few f32 rounding steps.
func TestModelF32GradsMatchF64(t *testing.T) {
	a := testGraph(20, 73)
	h := tensor.RandN(20, 4, 0.8, rand.New(rand.NewSource(74)))
	gOut := tensor.RandN(20, 3, 0.5, rand.New(rand.NewSource(75)))
	const tol = 1e-3

	for _, kind := range []Kind{VA, AGNN, GAT, GCN} {
		m64, err := New(dtypeCfg(kind, 1, tensor.F64), a)
		if err != nil {
			t.Fatal(err)
		}
		m32, err := New(dtypeCfg(kind, 1, tensor.F32), a)
		if err != nil {
			t.Fatal(err)
		}
		m64.Forward(h, true)
		m32.Forward(h, true)
		in64, in32 := m64.Backward(gOut), m32.Backward(gOut)
		if d := maxRelDev(in32, in64); d > tol {
			t.Errorf("%v: f32 input grad deviates by %.3g relative, want <= %g", kind, d, tol)
		}
		p64, p32 := m64.Params(), m32.Params()
		for i := range p64 {
			if d := maxRelDev(p32[i].Grad, p64[i].Grad); d > tol {
				t.Errorf("%v: f32 %s grad deviates by %.3g relative, want <= %g",
					kind, p64[i].Name, d, tol)
			}
		}
	}
}

// TestGradCheckF32 is the finite-difference check against the f32 plans
// directly, with loosened steps: the f32 forward carries ~1e-7 relative
// noise, so the perturbation must be large enough for the loss difference
// to rise above it, and the tolerance absorbs what remains.
func TestGradCheckF32(t *testing.T) {
	a := testGraph(10, 76)
	m, err := New(Config{Model: AGNN, Layers: 2, InDim: 3, HiddenDim: 4, OutDim: 2,
		Activation: Tanh(), SelfLoops: true, Seed: 77, DType: tensor.F32}, a)
	if err != nil {
		t.Fatal(err)
	}
	h0 := tensor.RandN(10, 3, 0.8, rand.New(rand.NewSource(78)))
	loss := &MSELoss{Target: tensor.RandN(10, 2, 1, rand.New(rand.NewSource(79)))}

	m.ZeroGrad()
	out := m.Forward(h0, true)
	_, g := loss.Eval(out)
	inGrad := m.Backward(g)
	evalLoss := func() float64 {
		v, _ := loss.Eval(m.Forward(h0, true))
		return v
	}
	const eps, tol = 1e-3, 2e-2
	check := func(name string, data, analytic []float64) {
		for i := range data {
			orig := data[i]
			data[i] = orig + eps
			lp := evalLoss()
			data[i] = orig - eps
			lm := evalLoss()
			data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-analytic[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, analytic[i], num)
			}
		}
	}
	for _, p := range m.Params() {
		check(p.Name, p.Value.Data, p.Grad.Data)
	}
	check("input", h0.Data, inGrad.Data)
}

// TestPlanInferenceMatchesDirectF64: flipping the f64 default onto compiled
// inference plans must reproduce the direct kernels' answers — same
// arithmetic, different executor.
func TestPlanInferenceMatchesDirectF64(t *testing.T) {
	a := testGraph(22, 80)
	h := tensor.RandN(22, 4, 0.8, rand.New(rand.NewSource(81)))
	for _, kind := range []Kind{VA, AGNN, GAT} {
		direct, err := New(dtypeCfg(kind, 1, tensor.F64), a)
		if err != nil {
			t.Fatal(err)
		}
		planned, err := New(dtypeCfg(kind, 1, tensor.F64), a)
		if err != nil {
			t.Fatal(err)
		}
		planned.SetPlanInference(true)
		got, want := planned.Forward(h, false), direct.Forward(h, false)
		if !got.ApproxEqual(want, 1e-10) {
			t.Errorf("%v: planned inference deviates from direct kernels by %g", kind, got.MaxAbsDiff(want))
		}
	}
}

// TestWeightsF32RoundTrip: an f32 model checkpoints in the v3 format with
// float32 parameter data, and restores exactly (load values are the f32
// rounding of the saved masters).
func TestWeightsF32RoundTrip(t *testing.T) {
	a := testGraph(12, 82)
	m, err := New(dtypeCfg(GAT, 1, tensor.F32), a)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveWeights(&buf, m); err != nil {
		t.Fatal(err)
	}
	if magic := buf.String()[:8]; magic != "AGNNWTS3" {
		t.Fatalf("f32 checkpoint magic %q, want AGNNWTS3", magic)
	}

	cfg2 := dtypeCfg(GAT, 1, tensor.F32)
	cfg2.Seed = 999 // different init; load must overwrite it
	m2, err := New(cfg2, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(bytes.NewReader(buf.Bytes()), m2); err != nil {
		t.Fatal(err)
	}
	ps, qs := m.Params(), m2.Params()
	for i := range ps {
		for j, v := range ps[i].Value.Data {
			if got := qs[i].Value.Data[j]; got != float64(float32(v)) {
				t.Fatalf("%s[%d]: loaded %v, want f32 rounding of %v", ps[i].Name, j, got, v)
			}
		}
	}
}

// TestWeightsCrossDtypeRefused: resuming a checkpoint at the other dtype is
// a loud error, not a silent numerics change.
func TestWeightsCrossDtypeRefused(t *testing.T) {
	a := testGraph(12, 83)
	m32, err := New(dtypeCfg(AGNN, 1, tensor.F32), a)
	if err != nil {
		t.Fatal(err)
	}
	m64, err := New(dtypeCfg(AGNN, 1, tensor.F64), a)
	if err != nil {
		t.Fatal(err)
	}

	var f32ckpt, f64ckpt bytes.Buffer
	if err := SaveWeights(&f32ckpt, m32); err != nil {
		t.Fatal(err)
	}
	if err := SaveWeights(&f64ckpt, m64); err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(bytes.NewReader(f32ckpt.Bytes()), m64); err == nil {
		t.Error("f32 checkpoint loaded into an f64 model without error")
	}
	if err := LoadWeights(bytes.NewReader(f64ckpt.Bytes()), m32); err == nil {
		t.Error("f64 checkpoint loaded into an f32 model without error")
	}
}

// TestWeightsF64StaysV2: the default path's checkpoint bytes are identical
// to the dtype-unaware format — SaveWeights of an f64 model and the
// engine-agnostic SaveParams produce the same v2 stream.
func TestWeightsF64StaysV2(t *testing.T) {
	a := testGraph(12, 84)
	m, err := New(dtypeCfg(VA, 1, tensor.F64), a)
	if err != nil {
		t.Fatal(err)
	}
	var viaModel, viaParams bytes.Buffer
	if err := SaveWeights(&viaModel, m); err != nil {
		t.Fatal(err)
	}
	if err := SaveParams(&viaParams, m.Params()); err != nil {
		t.Fatal(err)
	}
	if magic := viaModel.String()[:8]; magic != "AGNNWTS2" {
		t.Fatalf("f64 checkpoint magic %q, want AGNNWTS2", magic)
	}
	if !bytes.Equal(viaModel.Bytes(), viaParams.Bytes()) {
		t.Fatal("f64 SaveWeights bytes differ from the dtype-unaware SaveParams format")
	}
}
