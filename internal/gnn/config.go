package gnn

import (
	"fmt"
	"math/rand"
	"strings"

	"agnn/internal/graph"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// Kind identifies a built-in GNN model.
type Kind int

// Built-in model kinds. VA, AGNN and GAT are the A-GNNs of the paper;
// GCN is the C-GNN special case used for the theory-verification runs.
const (
	VA Kind = iota
	AGNN
	GAT
	GCN
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case VA:
		return "VA"
	case AGNN:
		return "AGNN"
	case GAT:
		return "GAT"
	case GCN:
		return "GCN"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a model name (case-insensitive) to its Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(s) {
	case "VA":
		return VA, nil
	case "AGNN":
		return AGNN, nil
	case "GAT":
		return GAT, nil
	case "GCN", "SGC":
		return GCN, nil
	}
	return 0, fmt.Errorf("gnn: unknown model %q (want VA, AGNN, GAT, or GCN)", s)
}

// Config describes a full GNN model. Dims follow the paper's convention:
// feature dimensionality k may vary per layer but is typically constant.
type Config struct {
	Model     Kind
	Layers    int // L ≥ 1
	InDim     int // k of the input features
	HiddenDim int // k of intermediate layers
	OutDim    int // k of the final layer (e.g. #classes)

	Activation Activation // hidden-layer σ; the final layer emits raw logits
	NegSlope   float64    // GAT LeakyReLU slope (default 0.2)
	SelfLoops  bool       // add self loops (GAT/GCN convention)
	Heads      int        // GAT only: attention heads (≤1 = single-head).
	// With Heads > 1, hidden layers concatenate head outputs (width
	// Heads·HiddenDim) and the final layer averages them (Veličković et
	// al.'s convention).
	Seed int64

	// DType selects the element width of every layer's compiled execution
	// plans. F64 (the zero value) keeps the default double-precision path,
	// bitwise-identical to dtype-unaware builds; F32 runs mixed precision —
	// f64 master weights, float32 plan kernels and buffers — halving the
	// memory traffic of the bandwidth-bound sparse sweeps.
	DType tensor.DType
}

// Defaults fills zero-valued fields with the conventions used throughout
// the paper's experiments: 3 layers, ReLU, slope 0.2.
func (c Config) Defaults() Config {
	if c.Layers == 0 {
		c.Layers = 3
	}
	if c.HiddenDim == 0 {
		c.HiddenDim = c.InDim
	}
	if c.OutDim == 0 {
		c.OutDim = c.HiddenDim
	}
	if c.Activation.F == nil {
		c.Activation = ReLU()
	}
	if c.NegSlope == 0 {
		c.NegSlope = 0.2
	}
	return c
}

// New builds a model of cfg.Model on adjacency a. The adjacency matrix is
// preprocessed per model convention: self loops for GAT/GCN (when
// SelfLoops), symmetric normalization for GCN. The transpose is built once
// and shared by all layers for the backward pass.
func New(cfg Config, a *sparse.CSR) (*Model, error) {
	cfg = cfg.Defaults()
	if cfg.Layers < 1 {
		return nil, fmt.Errorf("gnn: need at least one layer, got %d", cfg.Layers)
	}
	if cfg.InDim < 1 || cfg.HiddenDim < 1 || cfg.OutDim < 1 {
		return nil, fmt.Errorf("gnn: non-positive feature dimensions %d/%d/%d", cfg.InDim, cfg.HiddenDim, cfg.OutDim)
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("gnn: adjacency matrix must be square, got %d×%d", a.Rows, a.Cols)
	}
	switch cfg.Model {
	case GCN:
		a = graph.NormalizeGCN(a) // includes self loops
	default:
		if cfg.SelfLoops {
			a = graph.AddSelfLoops(a)
		}
	}
	at := a.Transpose()
	rng := rand.New(rand.NewSource(cfg.Seed))

	m := &Model{DType: cfg.DType}
	multiHead := cfg.Model == GAT && cfg.Heads > 1
	for l := 0; l < cfg.Layers; l++ {
		in := cfg.HiddenDim
		if multiHead {
			in = cfg.Heads * cfg.HiddenDim
		}
		if l == 0 {
			in = cfg.InDim
		}
		out := cfg.HiddenDim
		act := cfg.Activation
		if l == cfg.Layers-1 {
			out = cfg.OutDim
			act = Identity()
		}
		var layer Layer
		switch cfg.Model {
		case VA:
			layer = NewVALayer(a, at, in, out, act, rng)
		case AGNN:
			layer = NewAGNNLayer(a, at, in, out, act, rng)
		case GAT:
			if multiHead {
				if l == cfg.Layers-1 {
					// Final layer: average the heads into OutDim.
					layer = NewMultiHeadGATLayer(a, at, in, out, cfg.Heads, false, act, cfg.NegSlope, rng)
				} else {
					layer = NewMultiHeadGATLayer(a, at, in, cfg.HiddenDim, cfg.Heads, true, act, cfg.NegSlope, rng)
				}
			} else {
				layer = NewGATLayer(a, at, in, out, act, cfg.NegSlope, rng)
			}
		case GCN:
			layer = NewGCNLayer(a, at, in, out, act, rng)
		default:
			return nil, fmt.Errorf("gnn: unknown model kind %v", cfg.Model)
		}
		setLayerDType(layer, cfg.DType)
		m.Layers = append(m.Layers, layer)
	}
	return m, nil
}

// SetPlanInference flips the attention layers' planned-inference routing
// (see VALayer.PlanInference) across the whole model: non-training Forward
// then executes compiled inference plans — fused attention sweeps with no
// per-edge score tensor — instead of the direct kernels.
func (m *Model) SetPlanInference(on bool) {
	for _, l := range m.Layers {
		switch t := l.(type) {
		case *VALayer:
			t.PlanInference = on
		case *AGNNLayer:
			t.PlanInference = on
		case *GATLayer:
			t.PlanInference = on
		case *MultiHeadGATLayer:
			for _, h := range t.Heads {
				h.PlanInference = on
			}
		}
	}
}

// setLayerDType threads the model-level plan dtype into a plan-carrying
// layer (multi-head layers fan it out to every head).
func setLayerDType(l Layer, dt tensor.DType) {
	switch t := l.(type) {
	case *VALayer:
		t.DType = dt
	case *AGNNLayer:
		t.DType = dt
	case *GATLayer:
		t.DType = dt
	case *GCNLayer:
		t.DType = dt
	case *GINLayer:
		t.DType = dt
	case *SGCLayer:
		t.DType = dt
	case *GenericLayer:
		t.DType = dt
	case *MultiHeadGATLayer:
		for _, h := range t.Heads {
			h.DType = dt
		}
	}
}
