package gnn

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"agnn/internal/graph"
	"agnn/internal/tensor"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{InDim: 8}.Defaults()
	if c.Layers != 3 || c.HiddenDim != 8 || c.OutDim != 8 || c.NegSlope != 0.2 {
		t.Fatalf("bad defaults %+v", c)
	}
	if c.Activation.Name != "relu" {
		t.Fatalf("default activation %q", c.Activation.Name)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	a := testGraph(6, 1)
	if _, err := New(Config{Model: VA, Layers: -1, InDim: 2}, a); err == nil {
		t.Fatal("negative layers accepted")
	}
	if _, err := New(Config{Model: VA, InDim: 0, HiddenDim: 2, OutDim: 2, Layers: 1}, a); err == nil {
		t.Fatal("zero InDim accepted")
	}
	rect := graph.Block2D(a, 0, 0, 3)
	rect.Cols = 5 // force non-square
	if _, err := New(Config{Model: VA, InDim: 2, Layers: 1}, rect); err == nil {
		t.Fatal("non-square adjacency accepted")
	}
}

func TestNewBuildsRequestedLayers(t *testing.T) {
	a := testGraph(8, 2)
	for _, kind := range []Kind{VA, AGNN, GAT, GCN} {
		m, err := New(Config{Model: kind, Layers: 4, InDim: 3, HiddenDim: 5, OutDim: 2, Seed: 1}, a)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Layers) != 4 {
			t.Fatalf("%v: %d layers", kind, len(m.Layers))
		}
		h := tensor.RandN(8, 3, 1, rand.New(rand.NewSource(3)))
		out := m.Forward(h, false)
		if out.Rows != 8 || out.Cols != 2 {
			t.Fatalf("%v: output shape %d×%d", kind, out.Rows, out.Cols)
		}
	}
}

func TestInferenceMatchesTrainingForward(t *testing.T) {
	// The fused inference path (no Ψ materialization) must produce the same
	// outputs as the training-mode forward pass.
	a := testGraph(25, 4)
	h := tensor.RandN(25, 6, 1, rand.New(rand.NewSource(5)))
	for _, kind := range []Kind{VA, AGNN, GAT, GCN} {
		m, err := New(Config{Model: kind, Layers: 3, InDim: 6, HiddenDim: 6, OutDim: 4,
			Activation: ReLU(), SelfLoops: true, Seed: 6}, a)
		if err != nil {
			t.Fatal(err)
		}
		train := m.Forward(h, true)
		infer := m.Forward(h, false)
		if !train.ApproxEqual(infer, 1e-10) {
			t.Fatalf("%v: inference differs from training forward by %g",
				kind, train.MaxAbsDiff(infer))
		}
	}
}

func TestParamsAndZeroGrad(t *testing.T) {
	a := testGraph(6, 7)
	m, err := New(Config{Model: GAT, Layers: 2, InDim: 3, HiddenDim: 4, OutDim: 2, Seed: 7}, a)
	if err != nil {
		t.Fatal(err)
	}
	ps := m.Params()
	if len(ps) != 6 { // per GAT layer: W, a1, a2
		t.Fatalf("GAT params = %d, want 6", len(ps))
	}
	wantN := 3*4 + 4 + 4 + 4*2 + 2 + 2
	if m.NumParams() != wantN {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), wantN)
	}
	for _, p := range ps {
		p.Grad.Fill(1)
	}
	m.ZeroGrad()
	for _, p := range ps {
		if p.Grad.FrobeniusNorm() != 0 {
			t.Fatal("ZeroGrad left non-zero gradient")
		}
	}
}

func TestAGNNParamCount(t *testing.T) {
	a := testGraph(6, 8)
	m, _ := New(Config{Model: AGNN, Layers: 2, InDim: 3, HiddenDim: 3, OutDim: 3, Seed: 8}, a)
	ps := m.Params()
	if len(ps) != 4 { // W + beta per layer
		t.Fatalf("AGNN params = %d, want 4", len(ps))
	}
	foundBeta := false
	for _, p := range ps {
		if p.Name == "beta" && p.Scalar() == 1 {
			foundBeta = true
		}
	}
	if !foundBeta {
		t.Fatal("beta not initialized to 1")
	}
}

// TestTrainingReducesLoss: full-batch training must monotonically-ish
// reduce loss on a learnable planted-partition classification task for
// every A-GNN. This is the "training actually works" end-to-end test.
func TestTrainingReducesLoss(t *testing.T) {
	a, labels := graph.PlantedPartition(60, 3, 0.3, 0.02, 9)
	n := 60
	rng := rand.New(rand.NewSource(10))
	// Features: noisy one-hot of the label (learnable but not trivial).
	h := tensor.RandN(n, 6, 0.5, rng)
	for i := 0; i < n; i++ {
		h.Set(i, labels[i], h.At(i, labels[i])+1)
	}
	for _, kind := range []Kind{VA, AGNN, GAT, GCN} {
		m, err := New(Config{Model: kind, Layers: 2, InDim: 6, HiddenDim: 8, OutDim: 3,
			Activation: ReLU(), SelfLoops: true, Seed: 11}, a)
		if err != nil {
			t.Fatal(err)
		}
		loss := &CrossEntropyLoss{Labels: labels}
		hist, err := m.Train(h, loss, NewAdam(0.01), 40)
		if err != nil {
			t.Fatal(err)
		}
		first, last := hist[0], hist[len(hist)-1]
		if !(last < 0.7*first) {
			t.Fatalf("%v: loss did not decrease: %v → %v", kind, first, last)
		}
		if math.IsNaN(last) || math.IsInf(last, 0) {
			t.Fatalf("%v: loss diverged", kind)
		}
		acc := Accuracy(m.Forward(h, false), labels, nil)
		if acc < 0.6 {
			t.Fatalf("%v: train accuracy %v too low", kind, acc)
		}
	}
}

func TestTrainStepAccumulatesIntoOptimizer(t *testing.T) {
	a := testGraph(10, 12)
	m, _ := New(Config{Model: VA, Layers: 1, InDim: 2, HiddenDim: 2, OutDim: 2, Seed: 12}, a)
	h := tensor.RandN(10, 2, 1, rand.New(rand.NewSource(13)))
	loss := &MSELoss{Target: tensor.RandN(10, 2, 1, rand.New(rand.NewSource(14)))}
	before := m.Layers[0].(*VALayer).W.Value.Clone()
	m.TrainStep(h, loss, NewSGD(0.1, 0))
	after := m.Layers[0].(*VALayer).W.Value
	if before.ApproxEqual(after, 0) {
		t.Fatal("TrainStep did not update weights")
	}
}

func TestDeterministicTraining(t *testing.T) {
	// Same seed ⇒ identical loss trajectory.
	run := func() []float64 {
		a := graph.Kronecker(5, 4, 3)
		m, _ := New(Config{Model: GAT, Layers: 2, InDim: 4, HiddenDim: 4, OutDim: 2,
			Activation: Tanh(), SelfLoops: true, Seed: 15}, a)
		h := tensor.RandN(a.Rows, 4, 1, rand.New(rand.NewSource(16)))
		labels := make([]int, a.Rows)
		for i := range labels {
			labels[i] = i % 2
		}
		hist, err := m.Train(h, &CrossEntropyLoss{Labels: labels}, NewSGD(0.05, 0.9), 5)
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	h1, h2 := run(), run()
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("training not deterministic at epoch %d: %v vs %v", i, h1[i], h2[i])
		}
	}
}

func TestModelSummary(t *testing.T) {
	a := testGraph(8, 700)
	m, err := New(Config{Model: GAT, Layers: 2, InDim: 3, HiddenDim: 4, OutDim: 2, Seed: 701}, a)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	for _, want := range []string{"gat", "W[3×4]", "a1[4×1]", "total"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	// Parameter-free layers render a dash.
	m2 := &Model{Layers: []Layer{NewDropout(0.1, 1)}}
	if !strings.Contains(m2.Summary(), "—") {
		t.Fatal("param-free layer marker missing")
	}
}
