package gnn

import (
	"fmt"
	"math"

	"agnn/internal/tensor"
)

// Evaluation metrics beyond plain accuracy, for the downstream ML tasks the
// final GNN layer feeds (Section 2).

// ConfusionMatrix returns the classes×classes count matrix C with C[y][ŷ] =
// number of (masked) vertices of true class y predicted as ŷ.
func ConfusionMatrix(out *tensor.Dense, labels []int, mask []bool, classes int) [][]int {
	cm := make([][]int, classes)
	for i := range cm {
		cm[i] = make([]int, classes)
	}
	for i := 0; i < out.Rows; i++ {
		if mask != nil && !mask[i] {
			continue
		}
		row := out.Row(i)
		pred := 0
		for j, v := range row {
			if v > row[pred] {
				pred = j
			}
		}
		cm[labels[i]][pred]++
	}
	return cm
}

// F1Scores computes the per-class F1 from a confusion matrix, plus the
// macro (unweighted class mean) and micro (global) averages. Classes with
// no support and no predictions get F1 = 0.
func F1Scores(cm [][]int) (perClass []float64, macro, micro float64) {
	classes := len(cm)
	perClass = make([]float64, classes)
	var tpTotal, fpTotal, fnTotal int
	nonEmpty := 0
	for c := 0; c < classes; c++ {
		tp := cm[c][c]
		fn, fp := 0, 0
		for j := 0; j < classes; j++ {
			if j != c {
				fn += cm[c][j]
				fp += cm[j][c]
			}
		}
		tpTotal += tp
		fpTotal += fp
		fnTotal += fn
		if tp+fp+fn == 0 {
			continue
		}
		nonEmpty++
		perClass[c] = 2 * float64(tp) / float64(2*tp+fp+fn)
		macro += perClass[c]
	}
	if nonEmpty > 0 {
		macro /= float64(nonEmpty)
	}
	if tpTotal+fpTotal+fnTotal > 0 {
		micro = 2 * float64(tpTotal) / float64(2*tpTotal+fpTotal+fnTotal)
	}
	return perClass, macro, micro
}

// Schedule adjusts a learning rate across epochs.
type Schedule interface {
	// LR returns the learning rate for 0-indexed epoch e.
	LR(e int) float64
	Name() string
}

// ConstantLR is the trivial schedule.
type ConstantLR float64

// LR implements Schedule.
func (c ConstantLR) LR(int) float64 { return float64(c) }

// Name implements Schedule.
func (c ConstantLR) Name() string { return "constant" }

// StepLR multiplies the base rate by Gamma every StepSize epochs.
type StepLR struct {
	Base     float64
	StepSize int
	Gamma    float64
}

// LR implements Schedule.
func (s StepLR) LR(e int) float64 {
	lr := s.Base
	for i := s.StepSize; i <= e; i += s.StepSize {
		lr *= s.Gamma
	}
	return lr
}

// Name implements Schedule.
func (s StepLR) Name() string { return "step" }

// CosineLR anneals from Base to Min over Span epochs (then stays at Min).
type CosineLR struct {
	Base, Min float64
	Span      int
}

// LR implements Schedule.
func (s CosineLR) LR(e int) float64 {
	if e >= s.Span {
		return s.Min
	}
	t := float64(e) / float64(s.Span)
	return s.Min + (s.Base-s.Min)*0.5*(1+math.Cos(math.Pi*t))
}

// Name implements Schedule.
func (s CosineLR) Name() string { return "cosine" }

// EarlyStopper tracks a validation metric and reports when to stop:
// Patience epochs without improvement of at least MinDelta.
type EarlyStopper struct {
	Patience int
	MinDelta float64
	Mode     string // "min" (loss) or "max" (accuracy)

	best    float64
	bad     int
	started bool
}

// Step records an epoch's metric and returns true when training should
// stop.
func (e *EarlyStopper) Step(metric float64) bool {
	if e.Mode != "min" && e.Mode != "max" {
		panic(fmt.Sprintf("gnn: EarlyStopper mode %q", e.Mode))
	}
	improved := false
	if !e.started {
		e.started = true
		improved = true
	} else if e.Mode == "min" && metric < e.best-e.MinDelta {
		improved = true
	} else if e.Mode == "max" && metric > e.best+e.MinDelta {
		improved = true
	}
	if improved {
		e.best = metric
		e.bad = 0
		return false
	}
	e.bad++
	return e.bad >= e.Patience
}

// Best returns the best metric seen so far.
func (e *EarlyStopper) Best() float64 { return e.best }

// TrainWithSchedule runs full-batch training with a per-epoch learning-rate
// schedule (applied to an SGD optimizer) and optional early stopping on the
// training loss. Returns the loss history.
func (m *Model) TrainWithSchedule(h *tensor.Dense, loss Loss, sched Schedule,
	momentum float64, epochs int, stopper *EarlyStopper) []float64 {
	opt := NewSGD(sched.LR(0), momentum)
	var hist []float64
	for e := 0; e < epochs; e++ {
		opt.LR = sched.LR(e)
		l := m.TrainStep(h, loss, opt)
		hist = append(hist, l)
		if stopper != nil && stopper.Step(l) {
			break
		}
	}
	return hist
}
