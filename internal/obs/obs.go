// Package obs is the unified tracing and metrics substrate of the
// repository: cheap start/stop spans over a monotonic clock, one track per
// rank (or per bound goroutine) so BSP supersteps line up visually across
// ranks, a Chrome trace-event exporter loadable in chrome://tracing or
// Perfetto, and an aggregated run-report that cmd/agnn-report summarizes.
//
// The package is zero-dependency (stdlib only) and safe to leave compiled
// into every hot path: the global tracer defaults to disabled, and a span
// on the disabled path costs one atomic load and allocates nothing. Enable
// tracing for a region with
//
//	tr := obs.New()
//	obs.Enable(tr)
//	defer obs.Disable()
//	...
//	tr.WriteChromeTraceFile("trace.json")
//
// or, in the CLI binaries, with the shared -trace/-metrics flags (see CLI).
//
// Spans started through the package-level Start land on the track bound to
// the calling goroutine (Tracer.BindGoroutine), falling back to the "main"
// track. internal/dist binds one track per simulated rank, so kernel spans
// fired inside rank goroutines are attributed to the right rank
// automatically.
package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one integer span attribute (communication bytes, message counts,
// nnz …). Attributes are attached at End and exported both as Chrome trace
// args and as per-span-name sums in the aggregated report.
type Attr struct {
	Key string
	Val int64
}

// Int64 constructs a span attribute.
func Int64(key string, val int64) Attr { return Attr{Key: key, Val: val} }

// Flow-event markers (event.flow): a flow pair shares an id and draws an
// arrow between tracks in the Chrome trace — the causal message edges of
// internal/obs/causal.
const (
	flowNone uint8 = iota
	flowOut        // "s": flow starts here (message send)
	flowIn         // "f": flow ends here (message receive)
)

// event is one completed span on a track, or a flow endpoint (flow !=
// flowNone; dur and attrs unused).
type event struct {
	name   string
	start  time.Duration // since tracer epoch (monotonic)
	dur    time.Duration
	attrs  []Attr
	flow   uint8
	flowID uint64
}

// Track is an ordered sequence of spans rendered as one horizontal timeline
// (one Chrome trace tid). Tracks are cheap; create one per rank or per
// logical thread of activity. All methods are safe for concurrent use, but
// spans on a single track should be well-nested (the natural shape when one
// goroutine owns the track).
type Track struct {
	tracer *Tracer
	id     int
	name   string

	open atomic.Int64 // spans started but not yet ended

	mu     sync.Mutex
	events []event
}

// Name returns the track's display name.
func (t *Track) Name() string { return t.name }

// ID returns the track's numeric id (the Chrome trace tid).
func (t *Track) ID() int { return t.id }

// Start begins a span on the track. Starting on a nil track returns an
// inert span, so handles threaded through un-traced runs cost only a nil
// check.
func (t *Track) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	t.open.Add(1)
	return Span{track: t, name: name, start: t.tracer.now()}
}

// FlowOut records the sending endpoint of a cross-track flow arrow; the
// matching FlowIn on the receiver's track shares id. No-op on nil tracks.
func (t *Track) FlowOut(name string, id uint64) { t.flowEvent(name, flowOut, id) }

// FlowIn records the receiving endpoint of a cross-track flow arrow.
func (t *Track) FlowIn(name string, id uint64) { t.flowEvent(name, flowIn, id) }

func (t *Track) flowEvent(name string, kind uint8, id uint64) {
	if t == nil {
		return
	}
	now := t.tracer.now()
	t.mu.Lock()
	t.events = append(t.events, event{name: name, start: now, flow: kind, flowID: id})
	t.mu.Unlock()
}

// Open returns the number of spans started on the track that have not
// ended yet. Live snapshots (the /report endpoint) surface it so a
// mid-superstep report is not mistaken for a complete one.
func (t *Track) Open() int64 {
	if t == nil {
		return 0
	}
	return t.open.Load()
}

// Span is an in-flight timed region. The zero value is inert: End on it
// does nothing, which is what the disabled path returns.
type Span struct {
	track *Track
	name  string
	start time.Duration
}

// Active reports whether the span records anything. Use it to skip
// attribute computation on un-traced runs.
func (s Span) Active() bool { return s.track != nil }

// End completes the span, attaching any attributes. Calling End() with no
// attributes does not allocate.
func (s Span) End(attrs ...Attr) {
	if s.track == nil {
		return
	}
	d := s.track.tracer.now() - s.start
	s.track.mu.Lock()
	s.track.events = append(s.track.events, event{name: s.name, start: s.start, dur: d, attrs: attrs})
	s.track.mu.Unlock()
	s.track.open.Add(-1)
}

// Tracer owns a set of tracks plus the epoch all spans are timed against.
type Tracer struct {
	epoch time.Time
	nowFn func() time.Duration // test hook; defaults to time.Since(epoch)

	mu     sync.Mutex
	tracks []*Track
	main   *Track

	seriesMu sync.Mutex
	series   []*series
	byName   map[string]*series

	byGID sync.Map // goroutine id (uint64) → *Track
}

// counterSample is one point of a counter timeline.
type counterSample struct {
	ts  time.Duration
	val int64
}

// series is one named counter timeline, rendered by the Chrome exporter as
// "C" (counter) events — the memory/communication graphs Perfetto draws
// alongside the span tracks.
type series struct {
	name string

	mu      sync.Mutex
	samples []counterSample
}

// Sample appends one point to the named counter timeline. Instrumented
// gauges (arena bytes, cumulative communication bytes) call this on every
// update while tracing is enabled.
func (t *Tracer) Sample(name string, val int64) {
	t.seriesMu.Lock()
	s := t.byName[name]
	if s == nil {
		if t.byName == nil {
			t.byName = make(map[string]*series)
		}
		s = &series{name: name}
		t.byName[name] = s
		t.series = append(t.series, s)
	}
	t.seriesMu.Unlock()
	now := t.now()
	s.mu.Lock()
	s.samples = append(s.samples, counterSample{ts: now, val: val})
	s.mu.Unlock()
}

// Sample records a counter point on the process-wide tracer; a no-op (one
// atomic load) when tracing is disabled.
func Sample(name string, val int64) {
	if t := global.Load(); t != nil {
		t.Sample(name, val)
	}
}

// New creates a Tracer with a "main" default track.
func New() *Tracer {
	t := &Tracer{epoch: time.Now()}
	t.main = t.Track("main")
	return t
}

// now returns the monotonic time since the tracer epoch.
func (t *Tracer) now() time.Duration {
	if t.nowFn != nil {
		return t.nowFn()
	}
	return time.Since(t.epoch)
}

// Track creates a new track. Track ids are assigned in creation order, so
// ranks created 0..p-1 render in rank order.
func (t *Tracer) Track(name string) *Track {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := &Track{tracer: t, id: len(t.tracks), name: name}
	t.tracks = append(t.tracks, tr)
	return tr
}

// Tracks returns a snapshot of all tracks in id order.
func (t *Tracer) Tracks() []*Track {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Track(nil), t.tracks...)
}

// Main returns the default track used by unbound goroutines.
func (t *Tracer) Main() *Track { return t.main }

// BindGoroutine routes package-level Start calls made from the current
// goroutine to tr. internal/dist binds each rank goroutine to its rank
// track so kernel spans nest under the rank's timeline.
func (t *Tracer) BindGoroutine(tr *Track) { t.byGID.Store(gid(), tr) }

// UnbindGoroutine removes the current goroutine's binding.
func (t *Tracer) UnbindGoroutine() { t.byGID.Delete(gid()) }

// current resolves the calling goroutine's track (main when unbound).
func (t *Tracer) current() *Track {
	if tr, ok := t.byGID.Load(gid()); ok {
		return tr.(*Track)
	}
	return t.main
}

// global is the process-wide tracer; nil means tracing is disabled and
// instrumented hot paths pay exactly one atomic load.
var global atomic.Pointer[Tracer]

// Enable installs t as the process-wide tracer.
func Enable(t *Tracer) { global.Store(t) }

// Disable turns process-wide tracing off.
func Disable() { global.Store(nil) }

// Enabled reports whether a process-wide tracer is installed.
func Enabled() bool { return global.Load() != nil }

// Get returns the process-wide tracer, or nil when disabled.
func Get() *Tracer { return global.Load() }

// Start begins a span on the calling goroutine's track of the process-wide
// tracer. When tracing is disabled it returns an inert span after a single
// atomic load and does not allocate.
func Start(name string) Span {
	t := global.Load()
	if t == nil {
		return Span{}
	}
	return t.current().Start(name)
}

// gid returns the current goroutine id, parsed from the runtime stack
// header ("goroutine N [status]:"). This costs on the order of a
// microsecond and is paid only on the enabled path, where spans wrap
// kernel- or collective-sized work.
func gid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for i := len("goroutine "); i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
