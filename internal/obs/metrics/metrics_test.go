package metrics

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Get-or-create: same handle back.
	if r.Counter("ops_total", "ops") != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("level", "level")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
	g.SetMax(1.0)
	if g.Value() != 1.5 {
		t.Fatal("SetMax lowered the gauge")
	}
	g.SetMax(3.0)
	if g.Value() != 3.0 {
		t.Fatal("SetMax did not raise the gauge")
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge after a counter must panic")
		}
	}()
	r.Gauge("x", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "a-b", "a b", "ü"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q must be rejected", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("bytes_total", "bytes", "rank")
	v.With("0").Add(10)
	v.With("1").Add(20)
	v.With("0").Add(5)
	s := r.Snapshot()
	fam := s.CounterFamily("bytes_total")
	if fam["0"] != 15 || fam["1"] != 20 {
		t.Fatalf("family values wrong: %v", fam)
	}
	// A second vec handle for the same family shares children.
	v2 := r.CounterVec("bytes_total", "bytes", "rank")
	v2.With("1").Inc()
	if got, _ := r.Snapshot().Counter("bytes_total", "1"); got != 21 {
		t.Fatalf("shared family child = %d, want 21", got)
	}
}

// TestConcurrentCounters exercises the atomic paths under -race: many
// goroutines hammer one counter, one gauge, one histogram and one labeled
// family concurrently, and the totals must come out exact.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits", "")
	g := r.Gauge("live", "")
	peak := r.Gauge("peak", "")
	h := r.Histogram("lat", "", LinearBuckets(1, 1, 8))
	v := r.CounterVec("per_rank", "", "rank")

	const workers, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rank := v.With(fmt.Sprint(id % 4))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				peak.SetMax(float64(id*iters + i))
				h.Observe(float64(i % 10))
				rank.Inc()
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*iters)
	}
	if peak.Value() != workers*iters-1 {
		t.Fatalf("peak = %v, want %d", peak.Value(), workers*iters-1)
	}
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	var famTotal int64
	for _, n := range r.Snapshot().CounterFamily("per_rank") {
		famTotal += n
	}
	if famTotal != workers*iters {
		t.Fatalf("family total = %d, want %d", famTotal, workers*iters)
	}
}

func TestResetZeroesInPlace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	v := r.CounterVec("v", "", "rank")
	rk := v.With("3")
	c.Add(7)
	g.Set(7)
	h.Observe(7)
	rk.Add(7)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || rk.Value() != 0 {
		t.Fatalf("reset left values behind: c=%d g=%v h=%d/%v rk=%d",
			c.Value(), g.Value(), h.Count(), h.Sum(), rk.Value())
	}
	// Old handles remain live after reset.
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("counter handle dead after reset")
	}
}

func TestSnapshotLookups(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(3)
	r.Gauge("b", "").Set(1.25)
	s := r.Snapshot()
	if v, ok := s.Counter("a_total", ""); !ok || v != 3 {
		t.Fatalf("counter lookup: %v %v", v, ok)
	}
	if v, ok := s.Gauge("b", ""); !ok || v != 1.25 {
		t.Fatalf("gauge lookup: %v %v", v, ok)
	}
	if _, ok := s.Counter("missing", ""); ok {
		t.Fatal("missing counter reported present")
	}
}
