package metrics

// Standard instruments: the shared vocabulary the hot-path wiring records
// into and the reporting tools read back. Declaring them here (against the
// Default registry, with get-or-create semantics) keeps the names, help
// strings and bucket layouts in one place; internal/fuse, internal/dist,
// internal/tensor and the CLIs all reference these variables.
var (
	// Compiled-plan execution (internal/fuse).
	PlanOpSeconds = Default.HistogramVec("agnn_plan_op_seconds",
		"Latency of one compiled-plan op execution, by op kind.", "op", DefLatencyBuckets)
	PlanOpsTotal = Default.CounterVec("agnn_plan_ops_total",
		"Compiled-plan ops executed, by op kind.", "op")
	PlanFlopsTotal = Default.Counter("agnn_plan_flops_total",
		"Estimated floating-point operations retired by compiled-plan ops.")
	PlanNNZTotal = Default.Counter("agnn_plan_nnz_total",
		"Sparse non-zeros swept by compiled-plan ops.")
	PlanBytesTotal = Default.Counter("agnn_plan_bytes_total",
		"Estimated bytes moved by compiled-plan ops under the static CSR + dense traffic model.")

	// Roofline accounting (internal/fuse): per-op-class flop and byte
	// totals. GF/s = flops/op-seconds; arithmetic intensity = flops/bytes.
	OpFlopsTotal = Default.CounterVec("agnn_op_flops_total",
		"Estimated floating-point operations retired, by op kind (roofline numerator).", "op")
	OpBytesTotal = Default.CounterVec("agnn_op_bytes_total",
		"Estimated bytes moved under the static traffic model, by op kind (roofline denominator).", "op")

	// Simulated distributed runtime (internal/dist).
	CommBytesTotal = Default.CounterVec("agnn_comm_bytes_total",
		"Bytes sent by each simulated rank.", "rank")
	CommMsgsTotal = Default.CounterVec("agnn_comm_msgs_total",
		"Point-to-point messages sent by each simulated rank.", "rank")
	CommRoundsTotal = Default.CounterVec("agnn_comm_rounds_total",
		"Communication rounds (BSP supersteps) entered by each simulated rank.", "rank")
	CollectiveBytes = Default.HistogramVec("agnn_collective_bytes",
		"Bytes one rank moved in one collective call, by collective kind.",
		"kind", ExpBuckets(64, 4, 12))

	// Straggler and imbalance diagnostics (internal/dist; docs/OBSERVABILITY.md).
	RankWaitSeconds = Default.HistogramVec("agnn_rank_wait_seconds",
		"Blocking receive wait one rank accumulated during one BSP superstep, by rank.",
		"rank", DefLatencyBuckets)
	WaitImbalanceRatio = Default.Gauge("agnn_wait_imbalance_ratio",
		"Max/median cross-rank superstep wait of the most recent completed superstep.")
	StragglersTotal = Default.CounterVec("agnn_stragglers_total",
		"Supersteps in which a rank waited more than the straggler factor times the cross-rank median, by rank.", "rank")

	// Workspace arenas (internal/tensor).
	ArenaLiveBytes = Default.Gauge("agnn_arena_live_bytes",
		"Workspace bytes currently held by plan buffers across all arenas.")
	ArenaPeakBytes = Default.Gauge("agnn_arena_peak_bytes",
		"High-water mark of live workspace bytes.")

	// Training loop (cmd/agnn-train, internal/distgnn).
	TrainEpoch = Default.Gauge("agnn_train_epoch",
		"Last completed training epoch.")
	TrainLoss = Default.Gauge("agnn_train_loss",
		"Training loss of the last completed epoch.")
	TrainGradNorm = Default.Gauge("agnn_train_grad_norm",
		"Global L2 norm of all parameter gradients after the last epoch.")
	TrainEdgesPerSec = Default.Gauge("agnn_train_edges_per_second",
		"Adjacency non-zeros processed per second over the last epoch.")
	EpochSeconds = Default.Histogram("agnn_epoch_seconds",
		"Wall time of one training epoch.", DefLatencyBuckets)

	// Fault tolerance (internal/dist, internal/distgnn, internal/ckpt;
	// docs/ROBUSTNESS.md).
	FaultsInjectedTotal = Default.CounterVec("agnn_faults_injected_total",
		"Faults applied by the deterministic injector, by kind (crash, delay, drop, reorder).", "kind")
	CommRetriesTotal = Default.Counter("agnn_comm_retries_total",
		"Point-to-point send retries after injected transient failures.")
	RankFailuresTotal = Default.Counter("agnn_rank_failures_total",
		"Rank failures detected by the runtime (injected crashes, receive timeouts, retry exhaustion).")
	CheckpointSeconds = Default.Histogram("agnn_checkpoint_seconds",
		"Wall time of one atomic training-state checkpoint write.", DefLatencyBuckets)
	RecoverySeconds = Default.Histogram("agnn_recovery_seconds",
		"Wall time from failure detection to a rebuilt world resuming training from the last checkpoint.", DefLatencyBuckets)

	// Wire transport (internal/dist/net; docs/ROBUSTNESS.md).
	NetDialRetriesTotal = Default.Counter("agnn_net_dial_retries_total",
		"Failed dial attempts during rendezvous bootstrap and post-drop reconnects.")
	NetBytesTotal = Default.CounterVec("agnn_net_bytes_total",
		"Frame bytes moved over the wire transport, by direction (tx, rx).", "dir")

	// Cost-model validation (internal/costmodel, benchutil).
	CommPredictedWords = Default.Gauge("agnn_comm_predicted_words",
		"Cost-model predicted max per-rank words for the run's configuration.")
	CommMeasuredWords = Default.Gauge("agnn_comm_measured_words",
		"Measured max per-rank words for the run.")
	WirePredictedSeconds = Default.Gauge("agnn_wire_predicted_seconds",
		"α-β model predicted wire time for this rank's measured traffic.")
	WireMeasuredSeconds = Default.Gauge("agnn_wire_measured_seconds",
		"Measured wall time this rank spent blocked in socket writes.")

	// Compute/communication overlap (internal/distgnn overlapped engines).
	OverlapHiddenSeconds = Default.Gauge("agnn_overlap_hidden_seconds",
		"Collective wall time hidden behind arrival-gated plan fragments: gather duration minus the compute stall waiting on chunks, accumulated over layers.")
	OverlapChunksTotal = Default.Counter("agnn_overlap_chunks_total",
		"Chunks drained through arrival-gated plan steps by overlapped engines.")
	OverlapLocalFraction = Default.Gauge("agnn_overlap_local_fraction",
		"Fraction of block rows executable before the first remote chunk lands, for the last partitioned layer plan.")

	// Overlap-adjusted layer-time validation (internal/costmodel).
	LayerPredictedSeconds = Default.Gauge("agnn_layer_predicted_seconds",
		"Cost-model predicted per-layer wall time (overlap-adjusted when overlap is on).")
	LayerMeasuredSeconds = Default.Gauge("agnn_layer_measured_seconds",
		"Measured mean per-layer wall time for the run.")

	// Process-wide compiled-plan cache (internal/fuse).
	PlanCacheHits = Default.Counter("agnn_plancache_hits",
		"Plan-cache lookups satisfied by an already compiled plan.")
	PlanCacheMisses = Default.Counter("agnn_plancache_misses",
		"Plan-cache lookups that compiled a new plan.")
	PlanCacheEvictions = Default.Counter("agnn_plancache_evictions",
		"Compiled plans evicted from the cache to enforce the byte budget.")
	PlanCacheBytes = Default.Gauge("agnn_plancache_bytes",
		"Workspace bytes of idle compiled plans resident in the cache (the evictable set).")

	// Online inference serving (internal/serving, cmd/agnn-serve).
	ServeRequestsTotal = Default.CounterVec("agnn_serve_requests_total",
		"HTTP inference requests handled, by endpoint.", "endpoint")
	ServeRejectedTotal = Default.Counter("agnn_serve_rejected_total",
		"Inference requests rejected with 429 by admission control (queue full).")
	ServeRequestSeconds = Default.HistogramVec("agnn_serve_request_seconds",
		"End-to-end latency of one inference request, by endpoint.", "endpoint", DefLatencyBuckets)
	ServeLatencyP50 = Default.GaugeVec("agnn_serve_latency_p50_seconds",
		"Interpolated median request latency since startup, by endpoint.", "endpoint")
	ServeLatencyP99 = Default.GaugeVec("agnn_serve_latency_p99_seconds",
		"Interpolated 99th-percentile request latency since startup, by endpoint.", "endpoint")
	ServeBatchVertices = Default.Histogram("agnn_serve_batch_vertices",
		"Seed vertices coalesced into one micro-batched plan execution.", ExpBuckets(1, 2, 12))
	ServeStageSeconds = Default.HistogramVec("agnn_serve_stage_seconds",
		"Per-stage serving latency decomposition (queue, batch, expand, plan), by stage.",
		"stage", DefLatencyBuckets)

	// Cross-rank causal critical path (internal/obs/causal;
	// docs/OBSERVABILITY.md). Published when a causally traced run is
	// summarized (CLI Stop, /report, benchutil).
	CritPathSeconds = Default.Gauge("agnn_critpath_seconds",
		"Total reconstructed critical-path time across the analyzed windows.")
	CritPathComputeSeconds = Default.Gauge("agnn_critpath_compute_seconds",
		"Critical-path time attributed to kernel/compute spans.")
	CritPathCollectiveSeconds = Default.Gauge("agnn_critpath_collective_seconds",
		"Critical-path time attributed to collective hops.")
	CritPathWaitSeconds = Default.Gauge("agnn_critpath_wait_seconds",
		"Critical-path time attributed to blocked receives.")
	CritPathCheckpointSeconds = Default.Gauge("agnn_critpath_checkpoint_seconds",
		"Critical-path time attributed to checkpoint writes.")
	CritPathCoverage = Default.Gauge("agnn_critpath_coverage",
		"Reconstructed path time over analyzed window time (1.0 = exact reconstruction).")

	// costmodel.ValidateCriticalPath: measured epoch critical path vs the
	// α-β-γ model's prediction.
	CritPathPredictedSeconds = Default.Gauge("agnn_critpath_predicted_seconds",
		"Cost-model predicted per-epoch critical-path time.")
	CritPathMeasuredSeconds = Default.Gauge("agnn_critpath_measured_seconds",
		"Measured mean per-epoch critical-path time.")
)
