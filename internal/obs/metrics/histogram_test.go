package metrics

import (
	"math"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// Boundary semantics are Prometheus's: bucket i counts v ≤ bounds[i].
	for _, v := range []float64{0.5, 1.0} { // both land in the ≤1 bucket
		h.Observe(v)
	}
	h.Observe(1.5) // ≤2
	h.Observe(2.0) // ≤2 (boundary is inclusive)
	h.Observe(3.0) // ≤4
	h.Observe(9.0) // +Inf
	got := h.BucketCounts()
	want := []int64{2, 2, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 0.5+1+1.5+2+3+9 {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	// 10 observations uniformly in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	// Median rank = 10 falls exactly at the top of the first bucket.
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %v, want 10", q)
	}
	// p75: rank 15, halfway through the second bucket → 15.
	if q := h.Quantile(0.75); q != 15 {
		t.Fatalf("p75 = %v, want 15", q)
	}
	// p25: rank 5, halfway through the first bucket → 5.
	if q := h.Quantile(0.25); q != 5 {
		t.Fatalf("p25 = %v, want 5", q)
	}
	// q clamps.
	if q := h.Quantile(-1); q != h.Quantile(0) {
		t.Fatalf("q<0 must clamp: %v vs %v", q, h.Quantile(0))
	}
	if q := h.Quantile(2); q != h.Quantile(1) {
		t.Fatal("q>1 must clamp")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	// All mass in the +Inf bucket clamps to the largest finite bound.
	h.Observe(100)
	h.Observe(200)
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("overflow quantile = %v, want clamp to 2", q)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(0, 5, 3)
	want = []float64{0, 5, 10}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds must panic")
		}
	}()
	newHistogram([]float64{2, 2})
}

func TestDefaultBucketsUsedWhenNil(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", nil)
	if len(h.Bounds()) != len(DefLatencyBuckets) {
		t.Fatalf("nil buckets must default: got %v", h.Bounds())
	}
	h.Observe(1e-6)
	if h.BucketCounts()[0] != 1 {
		t.Fatal("1µs must land in the first default bucket")
	}
}
