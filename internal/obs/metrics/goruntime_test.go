package metrics

import (
	"math"
	"runtime"
	rtm "runtime/metrics"
	"strings"
	"testing"
)

// TestGoRuntimeGaugesPopulatedOnSnapshot: reading the registry must refresh
// the agnn_go_* gauges with live values — a running process always has at
// least one goroutine and a nonzero heap.
func TestGoRuntimeGaugesPopulatedOnSnapshot(t *testing.T) {
	runtime.GC() // guarantee at least one GC cycle for the pause histogram
	snap := Default.Snapshot()

	if v := GoGoroutines.Value(); v < 1 {
		t.Errorf("agnn_go_goroutines = %v, want >= 1", v)
	}
	if v := GoHeapLiveBytes.Value(); v <= 0 {
		t.Errorf("agnn_go_heap_live_bytes = %v, want > 0", v)
	}
	if v := GoHeapGoalBytes.Value(); v <= 0 {
		t.Errorf("agnn_go_heap_goal_bytes = %v, want > 0", v)
	}
	if v := GoGCCycles.Value(); v < 1 {
		t.Errorf("agnn_go_gc_cycles_total = %v, want >= 1 after runtime.GC()", v)
	}
	for _, g := range []struct {
		name string
		v    float64
	}{
		{"agnn_go_gc_pause_seconds_p50", GoGCPauseP50.Value()},
		{"agnn_go_gc_pause_seconds_p99", GoGCPauseP99.Value()},
		{"agnn_go_sched_latency_seconds_p50", GoSchedLatencyP50.Value()},
		{"agnn_go_sched_latency_seconds_p99", GoSchedLatencyP99.Value()},
	} {
		if g.v < 0 || math.IsInf(g.v, 0) || math.IsNaN(g.v) {
			t.Errorf("%s = %v, want finite and >= 0", g.name, g.v)
		}
	}

	// The gauges must flow into the snapshot (and thus BENCH records and
	// the run-report) under their agnn_go_ names.
	found := map[string]bool{}
	for _, g := range snap.Gauges {
		if strings.HasPrefix(g.Name, "agnn_go_") {
			found[g.Name] = true
		}
	}
	for _, want := range []string{
		"agnn_go_goroutines", "agnn_go_heap_live_bytes",
		"agnn_go_gc_pause_seconds_p50", "agnn_go_gc_cycles_total",
	} {
		if !found[want] {
			t.Errorf("snapshot missing gauge %s (have %v)", want, found)
		}
	}
}

// TestGoRuntimeGaugesInPrometheusExposition: the text exposition must carry
// the agnn_go_ series the CI smoke greps for.
func TestGoRuntimeGaugesInPrometheusExposition(t *testing.T) {
	var sb strings.Builder
	Default.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{"agnn_go_gc_pause", "agnn_go_goroutines", "agnn_go_heap_live_bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// histQuantile edge cases: empty histograms yield 0, a single loaded bucket
// returns its finite lower edge, and ±Inf edges never leak out.
func TestHistQuantile(t *testing.T) {
	empty := &rtm.Float64Histogram{
		Counts:  []uint64{0, 0},
		Buckets: []float64{0, 1, 2},
	}
	if v := histQuantile(empty, 0.5); v != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", v)
	}

	h := &rtm.Float64Histogram{
		Counts:  []uint64{0, 10, 0},
		Buckets: []float64{0, 1, 2, 3},
	}
	if v := histQuantile(h, 0.5); v != 1 {
		t.Errorf("single-bucket p50 = %v, want bucket lower edge 1", v)
	}

	inf := &rtm.Float64Histogram{
		Counts:  []uint64{5, 5},
		Buckets: []float64{math.Inf(-1), 1, math.Inf(1)},
	}
	for _, q := range []float64{0.25, 0.99} {
		if v := histQuantile(inf, q); math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("quantile %v with infinite edges = %v, want finite", q, v)
		}
	}
}
