package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// expoRegistry builds a fixed registry covering every exposition shape:
// unlabeled counter, labeled family, gauge, histogram.
func expoRegistry() *Registry {
	r := NewRegistry()
	r.Counter("agnn_plan_flops_total", "Estimated FLOPs retired.").Add(123456)
	v := r.CounterVec("agnn_comm_bytes_total", "Bytes sent by each simulated rank.", "rank")
	v.With("0").Add(4096)
	v.With("1").Add(2048)
	v.With("10").Add(512) // sorts lexically after "1"
	r.Gauge("agnn_train_loss", "Training loss of the last completed epoch.").Set(0.6931471805599453)
	h := r.Histogram("agnn_epoch_seconds", "Wall time of one training epoch.", []float64{0.001, 0.01, 0.1, 1})
	h.Observe(0.0005)
	h.Observe(0.02)
	h.Observe(0.02)
	h.Observe(5) // +Inf bucket
	return r
}

func TestPrometheusExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := expoRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "expo_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestPrometheusExpositionShape(t *testing.T) {
	var buf bytes.Buffer
	if err := expoRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Cumulative histogram buckets with an +Inf terminator equal to _count.
	for _, want := range []string{
		`agnn_epoch_seconds_bucket{le="0.001"} 1`,
		`agnn_epoch_seconds_bucket{le="0.01"} 1`,
		`agnn_epoch_seconds_bucket{le="0.1"} 3`,
		`agnn_epoch_seconds_bucket{le="1"} 3`,
		`agnn_epoch_seconds_bucket{le="+Inf"} 4`,
		`agnn_epoch_seconds_count 4`,
		`# TYPE agnn_comm_bytes_total counter`,
		`agnn_comm_bytes_total{rank="0"} 4096`,
		`agnn_train_loss 0.6931471805599453`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line is "series value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}
