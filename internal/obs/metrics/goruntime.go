package metrics

// Go runtime/metrics bridge: GC pauses, scheduler latency, heap size and
// goroutine count land in the Default registry as agnn_go_* gauges, so
// every /metrics scrape, -metrics run-report and BENCH_*.json baseline
// carries the runtime-health context next to the workload metrics — a
// regression in allocation behavior shows up beside the op latencies it
// perturbs. Refreshed by a registry collector (RegisterCollector), i.e.
// exactly when the registry is read; nothing polls in the background.

import rtm "runtime/metrics"

// Go runtime gauges (agnn_go_*).
var (
	GoGCPauseP50 = Default.Gauge("agnn_go_gc_pause_seconds_p50",
		"Median stop-the-world GC pause since process start (runtime/metrics /gc/pauses).")
	GoGCPauseP99 = Default.Gauge("agnn_go_gc_pause_seconds_p99",
		"99th-percentile stop-the-world GC pause since process start.")
	GoSchedLatencyP50 = Default.Gauge("agnn_go_sched_latency_seconds_p50",
		"Median time goroutines spent runnable before running (runtime/metrics /sched/latencies).")
	GoSchedLatencyP99 = Default.Gauge("agnn_go_sched_latency_seconds_p99",
		"99th-percentile goroutine scheduling latency.")
	GoHeapLiveBytes = Default.Gauge("agnn_go_heap_live_bytes",
		"Bytes of live heap objects (runtime/metrics /memory/classes/heap/objects).")
	GoHeapGoalBytes = Default.Gauge("agnn_go_heap_goal_bytes",
		"Heap size target of the current GC cycle (runtime/metrics /gc/heap/goal).")
	GoGoroutines = Default.Gauge("agnn_go_goroutines",
		"Live goroutine count.")
	GoGCCycles = Default.Gauge("agnn_go_gc_cycles_total",
		"Completed GC cycles since process start.")
)

// goSamples is the fixed sample batch read from runtime/metrics on every
// collection; the slice is package-owned, so collection does not allocate
// after init (collectors run serially under the registry's collect()).
var goSamples = []rtm.Sample{
	{Name: "/gc/pauses:seconds"},
	{Name: "/sched/latencies:seconds"},
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/gc/heap/goal:bytes"},
	{Name: "/sched/goroutines:goroutines"},
	{Name: "/gc/cycles/total:gc-cycles"},
}

func init() {
	Default.RegisterCollector(collectGoRuntime)
}

// collectGoRuntime refreshes the agnn_go_* gauges from runtime/metrics.
func collectGoRuntime() {
	rtm.Read(goSamples)
	for _, s := range goSamples {
		switch s.Name {
		case "/gc/pauses:seconds":
			if s.Value.Kind() == rtm.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				GoGCPauseP50.Set(histQuantile(h, 0.50))
				GoGCPauseP99.Set(histQuantile(h, 0.99))
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == rtm.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				GoSchedLatencyP50.Set(histQuantile(h, 0.50))
				GoSchedLatencyP99.Set(histQuantile(h, 0.99))
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == rtm.KindUint64 {
				GoHeapLiveBytes.Set(float64(s.Value.Uint64()))
			}
		case "/gc/heap/goal:bytes":
			if s.Value.Kind() == rtm.KindUint64 {
				GoHeapGoalBytes.Set(float64(s.Value.Uint64()))
			}
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == rtm.KindUint64 {
				GoGoroutines.Set(float64(s.Value.Uint64()))
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == rtm.KindUint64 {
				GoGCCycles.Set(float64(s.Value.Uint64()))
			}
		}
	}
}

// histQuantile extracts an approximate quantile from a runtime/metrics
// histogram: the lower bound of the bucket holding the q-th sample
// (0 when the histogram is empty). Infinite bucket edges fall back to
// the adjacent finite edge.
func histQuantile(h *rtm.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > target {
			lo := h.Buckets[i]
			hi := h.Buckets[i+1]
			switch {
			case lo > -1e308 && lo < 1e308:
				return lo
			case hi > -1e308 && hi < 1e308:
				return hi
			default:
				return 0
			}
		}
	}
	for i := len(h.Buckets) - 1; i >= 0; i-- {
		if b := h.Buckets[i]; b > -1e308 && b < 1e308 {
			return b
		}
	}
	return 0
}
