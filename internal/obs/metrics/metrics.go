// Package metrics is the live counterpart of the span tracer in
// internal/obs: a lock-cheap registry of counters, gauges and fixed-bucket
// histograms that the hot paths update unconditionally — compiled-plan ops
// record kernel latency and arithmetic volume, the simulated distributed
// runtime records words and messages moved per rank, the workspace arenas
// record live and peak bytes, and the training loop records loss and
// throughput. Where the tracer answers "what happened during that run"
// post-mortem, the registry answers "what is happening right now": its
// values are readable at any instant, either programmatically (Snapshot)
// or over HTTP in Prometheus exposition format (internal/obs/serve).
//
// Every instrument is updated with a handful of atomic operations and no
// locks or allocations, so leaving them compiled into kernel-sized hot
// paths is free for practical purposes. The package is stdlib-only and —
// deliberately — does not import internal/obs, so obs can embed metric
// snapshots into its run-reports without an import cycle.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer — bytes sent, kernels
// launched, FLOPs retired. All methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be ≥ 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value — current loss, live workspace
// bytes, words predicted by the cost model. All methods are safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d to the gauge (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the
// peak-tracking primitive behind the high-water-mark gauges.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metric is one registered instrument, with everything the exposition
// encoders need.
type metric struct {
	name string
	help string
	kind string // "counter" | "gauge" | "histogram"

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	// Labeled families: label is the single label name ("rank"), children
	// maps label value → child instrument. Guarded by the registry lock for
	// structural changes; reads go through the lock-free cache in the Vec.
	label    string
	children map[string]*metric
}

// Registry owns a namespace of instruments. Registration takes a lock;
// updating a registered instrument never does. Get-or-create semantics
// make registration idempotent, so package-level wiring in different
// subsystems can name the same metric without coordinating.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric

	cmu        sync.Mutex
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Default is the process-wide registry the hot-path wiring records into
// and the -serve endpoint exposes.
var Default = NewRegistry()

// RegisterCollector adds a pre-collection hook run at the top of every
// Snapshot and WritePrometheus, outside the registry lock — the hook is
// expected to Set gauges / Observe histograms. Pull-style sources (the
// Go runtime/metrics bridge in goruntime.go) use this to refresh their
// instruments exactly when the registry is read.
func (r *Registry) RegisterCollector(f func()) {
	r.cmu.Lock()
	r.collectors = append(r.collectors, f)
	r.cmu.Unlock()
}

// collect runs the registered collectors. The slice is append-only, so
// holding only a snapshot of it is safe.
func (r *Registry) collect() {
	r.cmu.Lock()
	cs := r.collectors
	r.cmu.Unlock()
	for _, f := range cs {
		f()
	}
}

// validName enforces the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup returns the named metric, creating it with mk on first use and
// panicking on a kind clash — a wiring bug, not a runtime condition.
func (r *Registry) lookup(name, help, kind string, mk func() *metric) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %q already registered as %s, requested %s", name, m.kind, kind))
		}
		return m
	}
	m := mk()
	m.name, m.help, m.kind = name, help, kind
	r.metrics[name] = m
	return m
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, "counter", func() *metric {
		return &metric{counter: &Counter{}}
	}).counter
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, "gauge", func() *metric {
		return &metric{gauge: &Gauge{}}
	}).gauge
}

// Histogram returns the named histogram, registering it on first use with
// the given bucket upper bounds (see ExpBuckets / LinearBuckets). Bounds
// are fixed at registration; later calls may pass nil.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.lookup(name, help, "histogram", func() *metric {
		return &metric{hist: newHistogram(buckets)}
	}).hist
}

// CounterVec is a family of counters sharing a name and distinguished by
// one label (per-rank byte counters, per-op-kind kernel counters). With
// resolves a child once; hot paths cache the returned *Counter.
type CounterVec struct {
	r *Registry
	m *metric

	cache sync.Map // label value → *Counter
}

// CounterVec returns the named counter family with the given label name.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if !validName(label) {
		panic(fmt.Sprintf("metrics: invalid label name %q", label))
	}
	m := r.lookup(name, help, "counter", func() *metric {
		return &metric{label: label, children: make(map[string]*metric)}
	})
	if m.children == nil {
		panic(fmt.Sprintf("metrics: %q registered as an unlabeled counter", name))
	}
	return &CounterVec{r: r, m: m}
}

// With returns the child counter for one label value, creating it on first
// use. The fast path is one lock-free map load.
func (v *CounterVec) With(value string) *Counter {
	if c, ok := v.cache.Load(value); ok {
		return c.(*Counter)
	}
	v.r.mu.Lock()
	child, ok := v.m.children[value]
	if !ok {
		child = &metric{counter: &Counter{}}
		v.m.children[value] = child
	}
	v.r.mu.Unlock()
	v.cache.Store(value, child.counter)
	return child.counter
}

// GaugeVec is a family of gauges sharing a name and distinguished by one
// label (per-endpoint latency quantiles). With resolves a child once; hot
// paths cache the returned *Gauge.
type GaugeVec struct {
	r *Registry
	m *metric

	cache sync.Map // label value → *Gauge
}

// GaugeVec returns the named gauge family with the given label name.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if !validName(label) {
		panic(fmt.Sprintf("metrics: invalid label name %q", label))
	}
	m := r.lookup(name, help, "gauge", func() *metric {
		return &metric{label: label, children: make(map[string]*metric)}
	})
	if m.children == nil {
		panic(fmt.Sprintf("metrics: %q registered as an unlabeled gauge", name))
	}
	return &GaugeVec{r: r, m: m}
}

// With returns the child gauge for one label value, creating it on first
// use. The fast path is one lock-free map load.
func (v *GaugeVec) With(value string) *Gauge {
	if g, ok := v.cache.Load(value); ok {
		return g.(*Gauge)
	}
	v.r.mu.Lock()
	child, ok := v.m.children[value]
	if !ok {
		child = &metric{gauge: &Gauge{}}
		v.m.children[value] = child
	}
	v.r.mu.Unlock()
	v.cache.Store(value, child.gauge)
	return child.gauge
}

// HistogramVec is a family of histograms sharing a name and bucket layout,
// distinguished by one label (per-op-kind kernel latency).
type HistogramVec struct {
	r       *Registry
	m       *metric
	buckets []float64

	cache sync.Map // label value → *Histogram
}

// HistogramVec returns the named histogram family.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if !validName(label) {
		panic(fmt.Sprintf("metrics: invalid label name %q", label))
	}
	m := r.lookup(name, help, "histogram", func() *metric {
		return &metric{label: label, children: make(map[string]*metric)}
	})
	if m.children == nil {
		panic(fmt.Sprintf("metrics: %q registered as an unlabeled histogram", name))
	}
	return &HistogramVec{r: r, m: m, buckets: buckets}
}

// With returns the child histogram for one label value.
func (v *HistogramVec) With(value string) *Histogram {
	if h, ok := v.cache.Load(value); ok {
		return h.(*Histogram)
	}
	v.r.mu.Lock()
	child, ok := v.m.children[value]
	if !ok {
		child = &metric{hist: newHistogram(v.buckets)}
		v.m.children[value] = child
	}
	v.r.mu.Unlock()
	v.cache.Store(value, child.hist)
	return child.hist
}

// sorted returns the registry's metrics in name order, and each family's
// children in label-value order — the deterministic iteration behind both
// exposition formats.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// childValues returns a family's label values in sorted order.
func (r *Registry) childValues(m *metric) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	vals := make([]string, 0, len(m.children))
	for v := range m.children {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// Reset zeroes every registered instrument in place. Handles returned
// earlier stay valid — tests and benchmark harnesses use this to measure
// deltas without re-wiring the hot paths.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		m.reset()
		for _, c := range m.children {
			c.reset()
		}
	}
}

func (m *metric) reset() {
	switch {
	case m.counter != nil:
		m.counter.v.Store(0)
	case m.gauge != nil:
		m.gauge.bits.Store(0)
	case m.hist != nil:
		m.hist.reset()
	}
}
