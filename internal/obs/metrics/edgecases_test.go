package metrics

import (
	"fmt"
	"sync"
	"testing"
)

// A single finite bucket puts every in-range observation in one bin;
// interpolation must stay inside [0, bound] and hit the exact fraction of
// the bucket that the rank demands.
func TestQuantileSingleBucketInterpolation(t *testing.T) {
	h := newHistogram([]float64{10})
	for i := 0; i < 4; i++ {
		h.Observe(5)
	}
	// rank = q·total within the only bucket [0, 10): lower 0, upper 10,
	// frac = rank/4.
	if q := h.Quantile(0.5); q != 5 {
		t.Fatalf("p50 = %v, want midpoint 5", q)
	}
	if q := h.Quantile(1); q != 10 {
		t.Fatalf("p100 = %v, want upper bound 10", q)
	}
	if q := h.Quantile(0); q < 0 || q > 10 {
		t.Fatalf("p0 = %v outside the bucket", q)
	}
	// Out-of-range q clamps rather than extrapolating.
	if q := h.Quantile(2); q != 10 {
		t.Fatalf("q>1 = %v, want clamp to 10", q)
	}
	if q := h.Quantile(-1); q < 0 || q > 10 {
		t.Fatalf("q<0 = %v outside the bucket", q)
	}
}

// The first bucket's lower edge is 0 even when the bound layout starts
// higher — interpolation must never return a negative latency.
func TestQuantileFirstBucketLowerEdgeIsZero(t *testing.T) {
	h := newHistogram([]float64{100, 200})
	h.Observe(1) // lands in [0, 100)
	if q := h.Quantile(0.5); q < 0 || q > 100 {
		t.Fatalf("p50 = %v, want within [0, 100]", q)
	}
}

// Concurrent With() on the same fresh label value must converge on ONE
// child — two goroutines racing the get-or-create path must not each get a
// private counter whose increments the exposition then loses. Run under
// -race this also pins the lock discipline of the cache fast path.
func TestVecConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_race_total", "", "rank")
	hv := r.HistogramVec("test_race_seconds", "", "rank", []float64{1, 2})

	const goroutines, perG, labels = 8, 100, 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lv := fmt.Sprint(i % labels)
				cv.With(lv).Inc()
				hv.With(lv).Observe(0.5)
			}
		}()
	}
	wg.Wait()

	for l := 0; l < labels; l++ {
		lv := fmt.Sprint(l)
		wantPer := int64(goroutines * perG / labels)
		if v := cv.With(lv).Value(); v != wantPer {
			t.Errorf("counter child %q = %d, want %d (split children?)", lv, v, wantPer)
		}
		if c := hv.With(lv).Count(); c != wantPer {
			t.Errorf("histogram child %q count = %d, want %d", lv, c, wantPer)
		}
	}
	// The registry sees exactly one series per label value.
	snap := r.Snapshot()
	if got := len(snap.CounterFamily("test_race_total")); got != labels {
		t.Fatalf("snapshot has %d counter children, want %d", got, labels)
	}
}

// Two handles to the same family (separate CounterVec values from separate
// registrations) must still share children.
func TestVecReRegistrationSharesChildren(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("test_shared_total", "", "op")
	b := r.CounterVec("test_shared_total", "", "op")
	a.With("x").Add(3)
	b.With("x").Add(4)
	if v := a.With("x").Value(); v != 7 {
		t.Fatalf("re-registered family split its children: %d, want 7", v)
	}
}
