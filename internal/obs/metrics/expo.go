package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition format (version 0.0.4): the wire format of
// the /metrics endpoint. One # HELP / # TYPE pair per metric family,
// children rendered with their label, histograms expanded into cumulative
// _bucket series plus _sum and _count.

// WritePrometheus renders the registry in exposition format. Families are
// emitted in name order and label values in sorted order, so the output is
// deterministic for a given registry state (the property the golden test
// pins down).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.collect()
	bw := bufio.NewWriter(w)
	for _, m := range r.sorted() {
		if m.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
		if m.children != nil {
			for _, lv := range r.childValues(m) {
				r.mu.Lock()
				child := m.children[lv]
				r.mu.Unlock()
				writeOne(bw, m.name, m.label, lv, child)
			}
		} else {
			writeOne(bw, m.name, "", "", m)
		}
	}
	return bw.Flush()
}

// writeOne renders one instrument (a family child or an unlabeled metric).
func writeOne(w io.Writer, name, label, lv string, m *metric) {
	series := func(suffix, extraLabel, extraVal string) string {
		var b strings.Builder
		b.WriteString(name)
		b.WriteString(suffix)
		if label != "" || extraLabel != "" {
			b.WriteByte('{')
			sep := ""
			if label != "" {
				fmt.Fprintf(&b, "%s=%q", label, lv)
				sep = ","
			}
			if extraLabel != "" {
				fmt.Fprintf(&b, "%s%s=%q", sep, extraLabel, extraVal)
			}
			b.WriteByte('}')
		}
		return b.String()
	}
	switch {
	case m.counter != nil:
		fmt.Fprintf(w, "%s %d\n", series("", "", ""), m.counter.Value())
	case m.gauge != nil:
		fmt.Fprintf(w, "%s %s\n", series("", "", ""), formatFloat(m.gauge.Value()))
	case m.hist != nil:
		h := m.hist
		counts := h.BucketCounts()
		var cum int64
		for i, ub := range h.bounds {
			cum += counts[i]
			fmt.Fprintf(w, "%s %d\n", series("_bucket", "le", formatFloat(ub)), cum)
		}
		cum += counts[len(counts)-1]
		fmt.Fprintf(w, "%s %d\n", series("_bucket", "le", "+Inf"), cum)
		fmt.Fprintf(w, "%s %s\n", series("_sum", "", ""), formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s %d\n", series("_count", "", ""), h.Count())
	}
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trippable representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
