package metrics

import (
	"math"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets, Prometheus-style: the
// i-th bucket counts observations ≤ bounds[i], plus an implicit +Inf
// bucket. Observation is a binary search over a handful of bounds and two
// atomic adds — cheap enough to time every compiled-plan op. Quantiles are
// estimated by linear interpolation inside the bucket containing the
// target rank, the same estimate Prometheus's histogram_quantile computes
// server-side.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds, +Inf excluded
	counts []atomic.Int64
	inf    atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefLatencyBuckets spans 1 µs – ~16 s in powers of four: wide enough for
// whole-epoch timings, fine enough to separate kernel classes.
var DefLatencyBuckets = ExpBuckets(1e-6, 4, 13)

// ExpBuckets returns count upper bounds growing geometrically from start
// by factor.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, count ≥ 1")
	}
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns count upper bounds from start in steps of width.
func LinearBuckets(start, width float64, count int) []float64 {
	if width <= 0 || count < 1 {
		panic("metrics: LinearBuckets needs width > 0, count ≥ 1")
	}
	b := make([]float64, count)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(cp))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound ≥ v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.bounds) {
		h.counts[lo].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the finite bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	cp := make([]float64, len(h.bounds))
	copy(cp, h.bounds)
	return cp
}

// BucketCounts returns the per-bucket counts, the +Inf bucket last. The
// snapshot is not atomic across buckets; concurrent observers can make the
// per-bucket sum momentarily lag Count.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts)+1)
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	out[len(h.counts)] = h.inf.Load()
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank. Observations in the +Inf
// bucket clamp to the largest finite bound. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.BucketCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.bounds[i]
		if c == 0 {
			return upper
		}
		frac := (rank - float64(cum)) / float64(c)
		return lower + (upper-lower)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.inf.Store(0)
	h.count.Store(0)
	h.sum.Store(0)
}
