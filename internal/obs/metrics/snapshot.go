package metrics

// Snapshot is a point-in-time, JSON-serializable copy of a registry's
// values: the payload of the /report endpoint and the metrics section of
// the obs run-report. Series appear in the same deterministic order as the
// Prometheus exposition (families by name, children by label value).
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// CounterSnap is one counter series. Label/LabelValue are set for family
// children only.
type CounterSnap struct {
	Name       string `json:"name"`
	Label      string `json:"label,omitempty"`
	LabelValue string `json:"label_value,omitempty"`
	Value      int64  `json:"value"`
}

// GaugeSnap is one gauge series.
type GaugeSnap struct {
	Name       string  `json:"name"`
	Label      string  `json:"label,omitempty"`
	LabelValue string  `json:"label_value,omitempty"`
	Value      float64 `json:"value"`
}

// HistogramSnap is one histogram series with its raw buckets and the
// interpolated convenience quantiles every consumer wants.
type HistogramSnap struct {
	Name       string    `json:"name"`
	Label      string    `json:"label,omitempty"`
	LabelValue string    `json:"label_value,omitempty"`
	Count      int64     `json:"count"`
	Sum        float64   `json:"sum"`
	Bounds     []float64 `json:"bounds"`
	Counts     []int64   `json:"counts"` // per bucket, +Inf last
	P50        float64   `json:"p50"`
	P90        float64   `json:"p90"`
	P99        float64   `json:"p99"`
}

// Snapshot copies the registry's current values, after running any
// registered collectors (pull-style sources refresh themselves here).
func (r *Registry) Snapshot() *Snapshot {
	r.collect()
	s := &Snapshot{}
	for _, m := range r.sorted() {
		if m.children != nil {
			for _, lv := range r.childValues(m) {
				r.mu.Lock()
				child := m.children[lv]
				r.mu.Unlock()
				s.add(m.name, m.label, lv, child)
			}
		} else {
			s.add(m.name, "", "", m)
		}
	}
	return s
}

func (s *Snapshot) add(name, label, lv string, m *metric) {
	switch {
	case m.counter != nil:
		s.Counters = append(s.Counters, CounterSnap{
			Name: name, Label: label, LabelValue: lv, Value: m.counter.Value()})
	case m.gauge != nil:
		s.Gauges = append(s.Gauges, GaugeSnap{
			Name: name, Label: label, LabelValue: lv, Value: m.gauge.Value()})
	case m.hist != nil:
		h := m.hist
		hs := HistogramSnap{
			Name: name, Label: label, LabelValue: lv,
			Count: h.Count(), Sum: h.Sum(),
			Bounds: h.Bounds(), Counts: h.BucketCounts(),
		}
		if hs.Count > 0 {
			hs.P50, hs.P90, hs.P99 = h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
		}
		s.Histograms = append(s.Histograms, hs)
	}
}

// Counter returns the value of the named counter series ("" labelValue for
// unlabeled counters) and whether it exists.
func (s *Snapshot) Counter(name, labelValue string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name && c.LabelValue == labelValue {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the value of the named gauge series and whether it exists.
func (s *Snapshot) Gauge(name, labelValue string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name && g.LabelValue == labelValue {
			return g.Value, true
		}
	}
	return 0, false
}

// CounterFamily returns every series of the named counter family as a
// label-value → value map (empty when absent).
func (s *Snapshot) CounterFamily(name string) map[string]int64 {
	out := map[string]int64{}
	for _, c := range s.Counters {
		if c.Name == name {
			out[c.LabelValue] = c.Value
		}
	}
	return out
}
