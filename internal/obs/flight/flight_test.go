package flight

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCodeInternAndResolve(t *testing.T) {
	a := Code("spmm")
	b := Code("mm")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("codes must be distinct and non-zero: %d %d", a, b)
	}
	if Code("spmm") != a {
		t.Fatal("re-interning must be stable")
	}
	if CodeName(a) != "spmm" || CodeName(b) != "mm" {
		t.Fatalf("resolve: %q %q", CodeName(a), CodeName(b))
	}
	if CodeName(0) != "" || CodeName(1<<30) != "" {
		t.Fatal("unknown codes must resolve to empty")
	}
}

func TestRecordAndEventsOrdered(t *testing.T) {
	r := New(8)
	l := r.Lane(3)
	c := Code("test-ev")
	for i := int64(1); i <= 5; i++ {
		l.Record(KindSuperstep, c, i, i*10, 0)
	}
	evs := l.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.A != int64(i+1) || ev.Kind != "superstep" || ev.Name != "test-ev" {
			t.Fatalf("event %d wrong: %+v", i, ev)
		}
		if i > 0 && evs[i-1].Seq >= ev.Seq {
			t.Fatal("events must be seq-ordered")
		}
	}
	if l.Rank() != 3 {
		t.Fatalf("rank = %d", l.Rank())
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := New(4)
	l := r.Lane(0)
	for i := int64(1); i <= 10; i++ {
		l.Record(KindSpan, 0, i, 0, 0)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("ring must cap at 4, got %d", len(evs))
	}
	for i, ev := range evs {
		if want := int64(7 + i); ev.A != want {
			t.Fatalf("event %d = %d, want %d (most recent survive)", i, ev.A, want)
		}
	}
	if l.Recorded() != 10 {
		t.Fatalf("recorded = %d, want 10", l.Recorded())
	}
}

func TestNilLaneIsInert(t *testing.T) {
	var l *Lane
	l.Record(KindSpan, 0, 1, 2, 3) // must not panic
	if l.Events() != nil || l.Recorded() != 0 || l.Rank() != -1 {
		t.Fatal("nil lane must be a no-op")
	}
}

func TestRecordZeroAllocs(t *testing.T) {
	r := New(64)
	l := r.Lane(0)
	c := Code("alloc-test")
	if n := testing.AllocsPerRun(100, func() {
		l.Record(KindSpan, c, 1, 2, 3)
	}); n != 0 {
		t.Fatalf("Record allocates: %v allocs/op", n)
	}
	// The cached-lane lookup must also be allocation-free so hot paths that
	// re-resolve are still safe.
	if n := testing.AllocsPerRun(100, func() {
		r.Lane(0).Record(KindSpan, c, 1, 2, 3)
	}); n != 0 {
		t.Fatalf("Lane+Record allocates: %v allocs/op", n)
	}
}

func TestConcurrentRecordAndCapture(t *testing.T) {
	r := New(32)
	var wg sync.WaitGroup
	for rank := 0; rank < 4; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			l := r.Lane(rank)
			c := Code("race-ev")
			for i := int64(0); i < 2000; i++ {
				l.Record(KindComm, c, i, 0, 0)
			}
		}(rank)
	}
	// Capture concurrently with the writers: the seqlock must keep every
	// surfaced event internally consistent (A is the only varying field).
	for i := 0; i < 20; i++ {
		d := r.Capture("manual")
		for _, lane := range d.Lanes {
			for _, ev := range lane.Events {
				if ev.Kind != "comm" && ev.Kind != "unknown" {
					t.Fatalf("torn event surfaced: %+v", ev)
				}
			}
		}
	}
	wg.Wait()
	if got := len(r.Capture("manual").Lanes); got != 4 {
		t.Fatalf("lanes = %d, want 4", got)
	}
}

func TestOnRankFailureWritesDump(t *testing.T) {
	dir := t.TempDir()
	prev := SetDumpDir(dir)
	defer SetDumpDir(prev)

	l := Default.Lane(2)
	l.Record(KindSuperstep, Code("round"), 11, 0, 0)
	path := OnRankFailure(2, 12, errors.New("injected crash: rank=2 round=12"))
	if path == "" {
		t.Fatal("no dump written")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	if d.Schema != DumpSchema || d.Reason != "rank-failure" {
		t.Fatalf("header wrong: %+v", d)
	}
	if d.FailedRank == nil || *d.FailedRank != 2 {
		t.Fatalf("failed rank not named: %+v", d.FailedRank)
	}
	if d.LastSuperstep == nil || *d.LastSuperstep != 12 {
		t.Fatalf("last superstep not named: %+v", d.LastSuperstep)
	}
	if !strings.Contains(d.Cause, "injected crash") {
		t.Fatalf("cause missing: %q", d.Cause)
	}
	found := false
	for _, lane := range d.Lanes {
		if lane.Rank != 2 {
			continue
		}
		for _, ev := range lane.Events {
			if ev.Kind == "failure" && ev.A == 12 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("failure event missing from failed rank's lane")
	}
}

func TestOnRankFailureNoDirStillRecords(t *testing.T) {
	prev := SetDumpDir("")
	defer SetDumpDir(prev)
	before := Default.Lane(7).Recorded()
	if path := OnRankFailure(7, 3, nil); path != "" {
		t.Fatalf("dump written with no dir: %s", path)
	}
	if Default.Lane(7).Recorded() != before+1 {
		t.Fatal("failure event not recorded")
	}
}

func TestHandlerServesDump(t *testing.T) {
	r := New(8)
	r.Lane(0).Record(KindSpan, Code("handler-ev"), 42, 0, 0)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var d Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("body not a Dump: %v", err)
	}
	if d.Reason != "request" || len(d.Lanes) != 1 || d.Lanes[0].Events[0].A != 42 {
		t.Fatalf("dump wrong: %+v", d)
	}
}

func TestSignalDumpFallsBackWithoutDir(t *testing.T) {
	prev := SetDumpDir("")
	defer SetDumpDir(prev)
	// Just exercise the path; output goes to stderr.
	dumpOnSignal()

	dir := t.TempDir()
	SetDumpDir(dir)
	dumpOnSignal()
	matches, err := filepath.Glob(filepath.Join(dir, "flight-signal-*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("signal dump not written: %v %v", matches, err)
	}
}

func TestWriteFileCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "flight")
	d := New(4).Capture("manual")
	path, err := d.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecord(b *testing.B) {
	r := New(DefaultLaneSize)
	l := r.Lane(0)
	c := Code("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Record(KindSpan, c, int64(i), 64, 128)
	}
}

// TestOnShutdownWritesDump: a clean shutdown with a configured dump dir
// must produce the same agnn-flight/v1 artifact as the crash path, with
// reason "shutdown" and the recorder's lanes intact.
func TestOnShutdownWritesDump(t *testing.T) {
	dir := t.TempDir()
	prev := SetDumpDir(dir)
	defer SetDumpDir(prev)

	Default.Lane(3).Record(KindSpan, Code("serve-req"), 7, 0, 0)
	path := OnShutdown()
	if path == "" {
		t.Fatal("no shutdown dump written")
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("dump %s not in configured dir %s", path, dir)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	if d.Schema != DumpSchema {
		t.Fatalf("schema %q, want %q", d.Schema, DumpSchema)
	}
	if d.Reason != "shutdown" {
		t.Fatalf("reason %q, want shutdown", d.Reason)
	}
	found := false
	for _, lane := range d.Lanes {
		if lane.Rank != 3 {
			continue
		}
		for _, ev := range lane.Events {
			if ev.Name == "serve-req" && ev.A == 7 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("recorded event missing from shutdown dump")
	}
}

// TestOnShutdownNoDirIsSilent: without a dump dir the clean-shutdown hook
// must be a no-op, not an error.
func TestOnShutdownNoDirIsSilent(t *testing.T) {
	prev := SetDumpDir("")
	defer SetDumpDir(prev)
	if path := OnShutdown(); path != "" {
		t.Fatalf("dump written with no dir: %s", path)
	}
}
