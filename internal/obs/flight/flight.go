// Package flight is the always-on postmortem layer of the observability
// stack (docs/OBSERVABILITY.md): a lock-free, fixed-size ring buffer of
// recent events — compiled-plan op spans, BSP supersteps, collective calls,
// straggler detections, counter deltas — recorded unconditionally on every
// hot path at zero allocations per event, and serialized to a JSON dump
// only when something goes wrong (a rank failure, a SIGQUIT poke, or a
// /debug/flight request on the diagnostics server).
//
// Where internal/obs answers "what happened during that run" (opt-in
// tracing) and internal/obs/metrics answers "what is happening right now"
// (live aggregates), flight answers "what happened in the last few
// milliseconds before the crash" — the black-box recorder of the compiled
// runtime. The ring keeps only the most recent events per lane, so memory
// is bounded regardless of run length and the recorder can stay enabled in
// production.
//
// The recorder is organized into lanes, one per simulated rank (plus a
// process lane for rank-less events such as plan ops in single-rank mode).
// Each lane is an independent ring with its own atomic sequence counter,
// so concurrent ranks never contend on a shared cursor. Event payloads are
// three opaque int64s whose meaning depends on the Kind; names (span
// names, collective kinds) are interned once at wiring time into small
// integer codes (Code), so the steady-state record path touches only
// atomics.
//
// The package is stdlib-only and imports nothing from the repository, so
// every layer (fuse, dist, distgnn, serve) can record into it without
// import cycles.
package flight

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one recorded event. The A/B/C payload meaning is fixed
// per kind (documented on each constant) so dumps are self-describing.
type Kind uint8

// Event kinds.
const (
	// KindSpan is one timed region (a compiled-plan op execution).
	// A = duration ns, B = bytes moved (static model), C = flops.
	KindSpan Kind = 1 + iota
	// KindSuperstep is one BSP communication round entered by a rank.
	// A = round number, B = wait ns accumulated during the previous
	// superstep, C unused.
	KindSuperstep
	// KindComm is one collective call. A = bytes sent by this rank during
	// the call, B = messages, C unused. The code names the collective.
	KindComm
	// KindCounter is an instrument delta worth keeping in the black box.
	// A = delta, B = new value (when cheap to compute), C unused.
	KindCounter
	// KindStraggler marks a rank whose superstep wait exceeded the
	// straggler threshold. A = this rank's wait ns, B = median wait ns
	// across ranks, C = round number.
	KindStraggler
	// KindFailure marks a rank failure. A = the rank's last superstep,
	// B/C unused; the cause is carried by the dump header, not the ring.
	KindFailure
	// KindCausalSend is one causally stamped message departure
	// (internal/obs/causal). A = sender-local message sequence number,
	// B = destination rank, C = superstep; the code names the enclosing
	// collective. Together with the matching KindCausalRecv on the
	// destination lane this reconstructs cross-rank message edges from a
	// postmortem dump alone.
	KindCausalSend
	// KindCausalRecv is one causally stamped message arrival. A = the
	// sender's message sequence number, B = source rank, C = blocked
	// wait ns before the arrival.
	KindCausalRecv
)

// String names a kind for dumps.
func (k Kind) String() string {
	switch k {
	case KindSpan:
		return "span"
	case KindSuperstep:
		return "superstep"
	case KindComm:
		return "comm"
	case KindCounter:
		return "counter"
	case KindStraggler:
		return "straggler"
	case KindFailure:
		return "failure"
	case KindCausalSend:
		return "causal-send"
	case KindCausalRecv:
		return "causal-recv"
	}
	return "unknown"
}

// codes is the process-wide intern table mapping event names to small
// integer codes. Interning happens at wiring time (plan compile, world
// construction); the record path carries only the code.
var codes struct {
	mu    sync.Mutex
	index sync.Map // name → uint32, lock-free readers
	names atomic.Pointer[[]string]
}

// Code interns name and returns its stable code. Safe for concurrent use;
// the fast path (already interned) is one lock-free map load. Code 0 is
// reserved for "unnamed".
func Code(name string) uint32 {
	if v, ok := codes.index.Load(name); ok {
		return v.(uint32)
	}
	codes.mu.Lock()
	defer codes.mu.Unlock()
	if v, ok := codes.index.Load(name); ok {
		return v.(uint32)
	}
	var cur []string
	if p := codes.names.Load(); p != nil {
		cur = *p
	}
	next := make([]string, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = name
	codes.names.Store(&next)
	c := uint32(len(next)) // 1-based: 0 = unnamed
	codes.index.Store(name, c)
	return c
}

// CodeName resolves a code back to its name ("" for 0 or unknown).
func CodeName(c uint32) string {
	if c == 0 {
		return ""
	}
	p := codes.names.Load()
	if p == nil || int(c) > len(*p) {
		return ""
	}
	return (*p)[c-1]
}

// slot is one ring entry. Every field is accessed atomically so concurrent
// record/dump is race-free; seq doubles as the seqlock word — it is zeroed
// before the payload is written and set to the claiming sequence after, so
// a reader that sees the same non-zero seq before and after reading the
// payload knows the slot was stable.
type slot struct {
	seq  atomic.Uint64
	t    atomic.Int64  // ns since the recorder epoch
	meta atomic.Uint64 // kind<<32 | code
	a    atomic.Int64
	b    atomic.Int64
	c    atomic.Int64
}

// Lane is one rank's ring. The zero Lane is unusable; obtain lanes from a
// Recorder. A nil *Lane is inert: Record on it is a no-op, so handles can
// be threaded through paths that may run without a recorder.
type Lane struct {
	rank  int
	next  atomic.Uint64
	slots []slot
	rec   *Recorder
}

// Rank returns the lane's rank (-1 for the process lane).
func (l *Lane) Rank() int {
	if l == nil {
		return -1
	}
	return l.rank
}

// Record appends one event to the lane's ring, overwriting the oldest
// entry once the ring is full. It performs a handful of atomic operations
// and never allocates or locks — cheap enough for kernel-sized hot paths.
func (l *Lane) Record(k Kind, code uint32, a, b, c int64) {
	if l == nil {
		return
	}
	seq := l.next.Add(1)
	s := &l.slots[(seq-1)%uint64(len(l.slots))]
	s.seq.Store(0) // invalidate while the payload is torn
	s.t.Store(int64(time.Since(l.rec.epoch)))
	s.meta.Store(uint64(k)<<32 | uint64(code))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.seq.Store(seq)
}

// Recorded returns the number of events ever recorded on the lane (the
// ring holds only the most recent len ≤ size of them).
func (l *Lane) Recorded() uint64 {
	if l == nil {
		return 0
	}
	return l.next.Load()
}

// Recorder owns a set of lanes sharing one epoch and ring size.
type Recorder struct {
	epoch time.Time
	size  int

	mu    sync.Mutex
	lanes map[int]*Lane
	cache sync.Map // rank → *Lane, lock-free fast path
}

// DefaultLaneSize is the per-lane ring capacity of the Default recorder:
// large enough to hold several supersteps of plan-op spans per rank, small
// enough that a 64-rank world stays under a few MiB.
const DefaultLaneSize = 2048

// New creates a recorder whose lanes hold size events each.
func New(size int) *Recorder {
	if size < 1 {
		panic("flight: recorder size must be >= 1")
	}
	return &Recorder{epoch: time.Now(), size: size, lanes: make(map[int]*Lane)}
}

// Default is the process-wide recorder every subsystem records into.
var Default = New(DefaultLaneSize)

// Lane returns the ring for one rank, creating it on first use. Use rank
// -1 (or Process) for events with no rank attribution. The fast path is
// one lock-free map load; hot paths should still cache the returned
// pointer, mirroring how metric handles are resolved at wiring time.
func (r *Recorder) Lane(rank int) *Lane {
	if v, ok := r.cache.Load(rank); ok {
		return v.(*Lane)
	}
	r.mu.Lock()
	l, ok := r.lanes[rank]
	if !ok {
		l = &Lane{rank: rank, slots: make([]slot, r.size), rec: r}
		r.lanes[rank] = l
	}
	r.mu.Unlock()
	r.cache.Store(rank, l)
	return l
}

// Process returns the Default recorder's rank-less lane.
func Process() *Lane { return Default.Lane(-1) }

// Event is one decoded ring entry, ordered by Seq within its lane.
type Event struct {
	Seq    uint64 `json:"seq"`
	TimeNs int64  `json:"t_ns"` // ns since the recorder epoch
	Kind   string `json:"kind"`
	Name   string `json:"name,omitempty"`
	A      int64  `json:"a"`
	B      int64  `json:"b,omitempty"`
	C      int64  `json:"c,omitempty"`
}

// Events decodes the lane's current contents, oldest first. Slots being
// concurrently overwritten are skipped (the seqlock re-check), so a dump
// taken mid-flight is consistent if momentarily incomplete.
func (l *Lane) Events() []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, 0, len(l.slots))
	for i := range l.slots {
		s := &l.slots[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue
		}
		ev := Event{
			Seq:    seq,
			TimeNs: s.t.Load(),
			A:      s.a.Load(),
			B:      s.b.Load(),
			C:      s.c.Load(),
		}
		meta := s.meta.Load()
		if s.seq.Load() != seq {
			continue // torn: overwritten while reading
		}
		k := Kind(meta >> 32)
		ev.Kind = k.String()
		ev.Name = CodeName(uint32(meta))
		out = append(out, ev)
	}
	// Ring order: slots are claimed round-robin, so sorting by seq restores
	// chronological order. Insertion sort — the slice is nearly sorted
	// (two runs split at the wrap point).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
