package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
)

// watchSignal blocks on sig forever, writing one dump per delivery. Split
// from NotifySignal so tests can drive it without real signals.
func watchSignal(sig os.Signal) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sig)
	for range ch {
		dumpOnSignal()
	}
}

// dumpOnSignal captures the Default recorder with reason "signal" and
// writes it to the dump directory, falling back to stderr so a SIGQUIT
// always yields something even in unconfigured processes.
func dumpOnSignal() {
	d := Default.Capture("signal")
	if dir := DumpDir(); dir != "" {
		if path, err := d.WriteFile(dir); err == nil {
			fmt.Fprintf(os.Stderr, "flight: signal dump written to %s\n", path)
			return
		}
	}
	raw, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return
	}
	fmt.Fprintf(os.Stderr, "flight: signal dump:\n%s\n", raw)
}
