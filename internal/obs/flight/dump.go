package flight

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Dump is the JSON artifact written when the black box is cracked open:
// one header naming why (and, for failures, which rank died at which
// superstep) plus every lane's recent events.
type Dump struct {
	Schema        string     `json:"schema"` // "agnn-flight/v1"
	Reason        string     `json:"reason"` // "rank-failure" | "signal" | "request" | "manual"
	CapturedAt    time.Time  `json:"captured_at"`
	GoVersion     string     `json:"go_version"`
	FailedRank    *int       `json:"failed_rank,omitempty"`
	LastSuperstep *int64     `json:"last_superstep,omitempty"`
	Cause         string     `json:"cause,omitempty"`
	Lanes         []LaneDump `json:"lanes"`
}

// LaneDump is one lane's contribution to a Dump.
type LaneDump struct {
	Rank     int     `json:"rank"` // -1 = process lane
	Recorded uint64  `json:"recorded"`
	Events   []Event `json:"events"`
}

// DumpSchema identifies the flight-dump JSON layout.
const DumpSchema = "agnn-flight/v1"

// Capture snapshots every lane of the recorder. reason is recorded in the
// header verbatim.
func (r *Recorder) Capture(reason string) *Dump {
	r.mu.Lock()
	lanes := make([]*Lane, 0, len(r.lanes))
	for _, l := range r.lanes {
		lanes = append(lanes, l)
	}
	r.mu.Unlock()
	sort.Slice(lanes, func(i, j int) bool { return lanes[i].rank < lanes[j].rank })

	d := &Dump{
		Schema:     DumpSchema,
		Reason:     reason,
		CapturedAt: time.Now().UTC(),
		GoVersion:  runtime.Version(),
		Lanes:      make([]LaneDump, 0, len(lanes)),
	}
	for _, l := range lanes {
		d.Lanes = append(d.Lanes, LaneDump{Rank: l.rank, Recorded: l.Recorded(), Events: l.Events()})
	}
	return d
}

// dumpDir is where failure/signal dumps land; empty disables file output.
// Process-wide because the failure unwind in internal/dist has no natural
// place to thread configuration through.
var dumpDir atomic.Pointer[string]

func init() {
	if dir := os.Getenv("AGNN_FLIGHT_DIR"); dir != "" {
		dumpDir.Store(&dir)
	}
}

// SetDumpDir directs failure and signal dumps to dir ("" disables file
// output). The AGNN_FLIGHT_DIR environment variable provides the initial
// value. Returns the previous directory.
func SetDumpDir(dir string) string {
	var prev string
	if p := dumpDir.Swap(&dir); p != nil {
		prev = *p
	}
	return prev
}

// DumpDir returns the currently configured dump directory ("" when file
// output is disabled).
func DumpDir() string {
	if p := dumpDir.Load(); p != nil {
		return *p
	}
	return ""
}

// WriteFile serializes the dump into dir with a reason- and time-stamped
// name, returning the written path. The directory is created if needed.
func (d *Dump) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("flight-%s-%s.json", d.Reason, d.CapturedAt.Format("20060102T150405.000000000"))
	path := filepath.Join(dir, name)
	raw, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// OnRankFailure records a failure event on the rank's lane and, when a
// dump directory is configured, writes a postmortem dump naming the failed
// rank, its last superstep, and the cause. Called from the ErrRankFailed
// unwind in internal/dist; allocation on this path is fine — the run is
// already dead. Returns the dump path ("" when file output is disabled).
func OnRankFailure(rank int, lastSuperstep int64, cause error) string {
	l := Default.Lane(rank)
	l.Record(KindFailure, 0, lastSuperstep, 0, 0)
	dir := DumpDir()
	if dir == "" {
		return ""
	}
	d := Default.Capture("rank-failure")
	d.FailedRank = &rank
	d.LastSuperstep = &lastSuperstep
	if cause != nil {
		d.Cause = cause.Error()
	}
	path, err := d.WriteFile(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flight: failed to write rank-failure dump: %v\n", err)
		return ""
	}
	fmt.Fprintf(os.Stderr, "flight: rank %d failed at superstep %d; dump written to %s\n", rank, lastSuperstep, path)
	return path
}

// OnShutdown writes a clean-shutdown dump of the Default recorder to the
// configured dump directory, mirroring the rank-failure path so graceful
// exits leave the same postmortem artifact a crash would. No-op (returns
// "") when no dump directory is configured. Callers provide once-only
// semantics (obs/serve's final-snapshot flush, agnn-serve's shutdown).
func OnShutdown() string {
	dir := DumpDir()
	if dir == "" {
		return ""
	}
	path, err := Default.Capture("shutdown").WriteFile(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flight: failed to write shutdown dump: %v\n", err)
		return ""
	}
	return path
}

// Handler serves the recorder's current contents as a Dump with reason
// "request" — mounted at /debug/flight by internal/obs/serve.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Capture("request")) //nolint:errcheck // client gone mid-write is fine
	})
}

var signalOnce sync.Once

// NotifySignal arranges for sig (conventionally SIGQUIT) to write a dump
// of the Default recorder to the configured dump directory (stderr when
// none is configured). The process keeps running — the signal is a
// diagnostic poke, not a kill. Installed at most once per process.
func NotifySignal(sig os.Signal) {
	signalOnce.Do(func() { go watchSignal(sig) })
}
