package obs

import (
	"fmt"

	"agnn/internal/obs/causal"
	"agnn/internal/obs/metrics"
)

// Cross-rank critical path: the causal log (internal/obs/causal) carries
// the message edges, the tracer's per-rank tracks carry the named spans;
// this file joins the two — converting "rank N" / "rank N gather" track
// events into causal.Spans on the log's time base — and publishes the
// reconstruction as agnn_critpath_* gauges.

// CriticalPath reconstructs the run's cross-rank critical path from the
// process-wide causal log and tracer. Returns nil when causal tracing is
// off or nothing was recorded.
func CriticalPath() *causal.Summary {
	return criticalPath(Get(), causal.Get())
}

func criticalPath(t *Tracer, l *causal.Log) *causal.Summary {
	if l == nil {
		return nil
	}
	spans := map[int][]causal.Span{}
	if t != nil {
		// Span times count from the tracer epoch, causal times from the
		// log epoch; offset converts (zero when the CLI created both).
		off := t.epoch.Sub(l.Epoch()).Nanoseconds()
		for _, tr := range t.Tracks() {
			var r int
			// Matches both "rank N" and "rank N gather".
			if n, _ := fmt.Sscanf(tr.name, "rank %d", &r); n != 1 {
				continue
			}
			tr.mu.Lock()
			for _, e := range tr.events {
				if e.flow != flowNone {
					continue
				}
				spans[r] = append(spans[r], causal.Span{Name: e.name,
					T0: e.start.Nanoseconds() + off,
					T1: (e.start + e.dur).Nanoseconds() + off})
			}
			tr.mu.Unlock()
		}
	}
	return causal.Analyze(l, spans, causal.Options{})
}

// PublishCriticalPath sets the agnn_critpath_* gauges from a summary.
// No-op on nil.
func PublishCriticalPath(s *causal.Summary) {
	if s == nil {
		return
	}
	metrics.CritPathSeconds.Set(float64(s.PathNs) / 1e9)
	metrics.CritPathComputeSeconds.Set(float64(s.ComputeNs) / 1e9)
	metrics.CritPathCollectiveSeconds.Set(float64(s.CollectiveNs) / 1e9)
	metrics.CritPathWaitSeconds.Set(float64(s.WaitNs) / 1e9)
	metrics.CritPathCheckpointSeconds.Set(float64(s.CheckpointNs) / 1e9)
	metrics.CritPathCoverage.Set(s.Coverage)
}
