package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// CLI is the shared observability flag surface of the binaries: every
// command that does real work registers the same four flags and brackets
// its run with Start/Stop.
//
//	var o obs.CLI
//	o.Register(flag.CommandLine)
//	flag.Parse()
//	if err := o.Start(); err != nil { ... }
//	defer o.Stop()
type CLI struct {
	Trace      string // Chrome trace-event JSON output path
	Metrics    string // aggregated run-report JSON output path
	CPUProfile string // runtime/pprof CPU profile output path
	MemProfile string // runtime/pprof heap profile output path

	tracer  *Tracer
	cpuFile *os.File
}

// Register adds the -trace, -metrics, -cpuprofile and -memprofile flags.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Trace, "trace", "", "write a Chrome trace-event JSON (chrome://tracing, Perfetto) here")
	fs.StringVar(&c.Metrics, "metrics", "", "write the aggregated run-report JSON here (see agnn-report)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile here")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile here (captured at exit)")
}

// Active reports whether any observability output was requested.
func (c *CLI) Active() bool {
	return c.Trace != "" || c.Metrics != "" || c.CPUProfile != "" || c.MemProfile != ""
}

// Tracing reports whether span collection is on (-trace or -metrics).
func (c *CLI) Tracing() bool { return c.Trace != "" || c.Metrics != "" }

// Start begins CPU profiling and enables the process-wide tracer as
// requested by the flags.
func (c *CLI) Start() error {
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: start cpu profile: %w", err)
		}
		c.cpuFile = f
	}
	if c.Tracing() {
		c.tracer = New()
		Enable(c.tracer)
	}
	return nil
}

// Stop flushes every requested output: stops the CPU profile, writes the
// heap profile, the Chrome trace and the run-report, and disables the
// process-wide tracer. Returns the first error encountered but attempts
// all outputs.
func (c *CLI) Stop() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(c.cpuFile.Close())
		c.cpuFile = nil
	}
	if c.tracer != nil {
		Disable()
		if c.Trace != "" {
			keep(c.tracer.WriteChromeTraceFile(c.Trace))
		}
		if c.Metrics != "" {
			keep(c.tracer.WriteReportFile(c.Metrics))
		}
		c.tracer = nil
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			keep(err)
		} else {
			runtime.GC() // materialize up-to-date heap statistics
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	return first
}
