package obs

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"agnn/internal/obs/causal"
	"agnn/internal/obs/flight"
	"agnn/internal/obs/metrics"
	"agnn/internal/obs/serve"
)

// CLI is the shared observability flag surface of the binaries: every
// command that does real work registers the same flags and brackets its
// run with Start/Stop.
//
//	var o obs.CLI
//	o.Register(flag.CommandLine)
//	flag.Parse()
//	if err := o.Start(); err != nil { ... }
//	defer o.Stop()
type CLI struct {
	Trace        string // Chrome trace-event JSON output path
	Metrics      string // aggregated run-report JSON output path
	CPUProfile   string // runtime/pprof CPU profile output path
	MemProfile   string // runtime/pprof heap profile output path
	Serve        string // live diagnostics HTTP address (/metrics, /report, /debug/pprof)
	MetricsFinal string // Prometheus snapshot written when the server shuts down
	FlightDir    string // directory for flight-recorder dumps (failures, SIGQUIT)

	tracer  *Tracer
	cpuFile *os.File
	server  *serve.Server
}

// Register adds the -trace, -metrics, -cpuprofile, -memprofile and -serve
// flags.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Trace, "trace", "", "write a Chrome trace-event JSON (chrome://tracing, Perfetto) here")
	fs.StringVar(&c.Metrics, "metrics", "", "write the aggregated run-report JSON here (see agnn-report)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile here")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile here (captured at exit)")
	fs.StringVar(&c.Serve, "serve", "", "serve live diagnostics on this address (/metrics, /report, /debug/pprof), e.g. :6060")
	fs.StringVar(&c.MetricsFinal, "metrics-final", "", "with -serve: write a final Prometheus metrics snapshot here at shutdown")
	fs.StringVar(&c.FlightDir, "flight-dir", "", "write flight-recorder dumps (rank failures, SIGQUIT) to this directory (default $AGNN_FLIGHT_DIR)")
}

// Active reports whether any observability output was requested.
func (c *CLI) Active() bool {
	return c.Trace != "" || c.Metrics != "" || c.CPUProfile != "" || c.MemProfile != "" || c.Serve != ""
}

// Tracing reports whether span collection is on (-trace, -metrics or
// -serve; the live /report endpoint snapshots the tracer too).
func (c *CLI) Tracing() bool { return c.Trace != "" || c.Metrics != "" || c.Serve != "" }

// report aggregates the tracer's spans (empty when tracing is off) and
// attaches the live metrics snapshot — the payload of both the -metrics
// file and the /report endpoint.
func (c *CLI) report() *Report {
	var rep *Report
	if t := Get(); t != nil {
		rep = t.Report()
	} else {
		rep = &Report{}
	}
	// Critical path before the snapshot, so the agnn_critpath_* gauges it
	// publishes land in the same metrics payload.
	if sum := CriticalPath(); sum != nil {
		rep.CriticalPath = sum
		PublishCriticalPath(sum)
	}
	rep.Metrics = metrics.Default.Snapshot()
	return rep
}

// Start begins CPU profiling, enables the process-wide tracer, arms the
// SIGQUIT flight-dump handler, and starts the diagnostics server, as
// requested by the flags.
func (c *CLI) Start() error {
	if c.FlightDir != "" {
		flight.SetDumpDir(c.FlightDir)
	}
	// Always-on: SIGQUIT dumps the flight recorder's recent-event ring
	// (to -flight-dir / $AGNN_FLIGHT_DIR when set, stderr otherwise) —
	// the postmortem for a hung run that never reaches Stop.
	flight.NotifySignal(syscall.SIGQUIT)
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: start cpu profile: %w", err)
		}
		c.cpuFile = f
	}
	if c.Tracing() {
		c.tracer = New()
		Enable(c.tracer)
		// Causal stamping shares the tracer's epoch, so message edges and
		// spans line up without time-base conversion.
		causal.Enable(causal.NewAt(c.tracer.epoch))
	}
	if c.Serve != "" {
		s, err := serve.Start(c.Serve, serve.Options{
			Registry:          metrics.Default,
			Report:            func() any { return c.report() },
			FinalSnapshotPath: c.MetricsFinal,
		})
		if err != nil {
			return err
		}
		c.server = s
		fmt.Fprintf(os.Stderr, "obs: serving diagnostics on http://%s (/metrics, /report, /debug/pprof)\n", s.Addr())
	}
	return nil
}

// ServeAddr returns the bound diagnostics address ("" when -serve is off).
func (c *CLI) ServeAddr() string {
	if c.server == nil {
		return ""
	}
	return c.server.Addr()
}

// Stop flushes every requested output: stops the CPU profile, writes the
// heap profile, the Chrome trace and the run-report, shuts down the
// diagnostics server, and disables the process-wide tracer. Returns the
// first error encountered but attempts all outputs.
func (c *CLI) Stop() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(c.cpuFile.Close())
		c.cpuFile = nil
	}
	if c.tracer != nil {
		// Publish the critical-path gauges even without -metrics, so the
		// -metrics-final Prometheus snapshot carries them.
		PublishCriticalPath(criticalPath(c.tracer, causal.Get()))
	}
	if c.Metrics != "" {
		keep(writeReportFile(c.Metrics, c.report()))
	}
	if c.tracer != nil {
		Disable()
		causal.Disable()
		if c.Trace != "" {
			keep(c.tracer.WriteChromeTraceFile(c.Trace))
		}
		c.tracer = nil
	}
	if c.server != nil {
		// Graceful: let an in-flight scrape finish, bounded so a stuck
		// client cannot stall process exit.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		keep(c.server.Shutdown(ctx))
		cancel()
		c.server = nil
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			keep(err)
		} else {
			runtime.GC() // materialize up-to-date heap statistics
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	return first
}

// writeReportFile writes an already-built report to path.
func writeReportFile(path string, rep *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
