package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"strconv"
)

// Chrome trace-event export: the JSON object format understood by
// chrome://tracing and https://ui.perfetto.dev. Every track becomes a
// thread (tid) of a single process; spans are "X" (complete) events with
// microsecond timestamps relative to the tracer epoch, and span attributes
// become event args.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Ts   float64          `json:"ts"`
	Dur  *float64         `json:"dur,omitempty"`
	Cat  string           `json:"cat,omitempty"` // flow events: binding category
	ID   string           `json:"id,omitempty"`  // flow events: shared pair id
	BP   string           `json:"bp,omitempty"`  // flow end: "e" binds enclosing slice
	Args map[string]int64 `json:"args,omitempty"`
}

// chromeMeta is a metadata ("M") event naming a process or thread.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes every completed span as Chrome trace-event
// JSON. Safe to call while tracing continues; it snapshots each track under
// its lock.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	out := chromeTrace{DisplayTimeUnit: "ms"}
	add := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		out.TraceEvents = append(out.TraceEvents, raw)
		return nil
	}
	if err := add(chromeMeta{Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]string{"name": "agnn"}}); err != nil {
		return err
	}
	for _, tr := range t.Tracks() {
		if err := add(chromeMeta{Name: "thread_name", Ph: "M", Pid: 0, Tid: tr.id,
			Args: map[string]string{"name": tr.name}}); err != nil {
			return err
		}
		tr.mu.Lock()
		evs := append([]event(nil), tr.events...)
		tr.mu.Unlock()
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].start < evs[j].start })
		for _, e := range evs {
			if e.flow != flowNone {
				// Causal message edge: "s"/"f" pairs sharing (cat, id)
				// render as arrows across the rank tracks.
				fe := chromeEvent{Name: e.name, Ph: "s", Cat: "msg", Pid: 0, Tid: tr.id,
					Ts: float64(e.start.Nanoseconds()) / 1e3,
					ID: "0x" + strconv.FormatUint(e.flowID, 16)}
				if e.flow == flowIn {
					fe.Ph = "f"
					fe.BP = "e"
				}
				if err := add(fe); err != nil {
					return err
				}
				continue
			}
			dur := float64(e.dur.Nanoseconds()) / 1e3
			ce := chromeEvent{Name: e.name, Ph: "X", Pid: 0, Tid: tr.id,
				Ts: float64(e.start.Nanoseconds()) / 1e3, Dur: &dur}
			if len(e.attrs) > 0 {
				ce.Args = make(map[string]int64, len(e.attrs))
				for _, a := range e.attrs {
					ce.Args[a.Key] = a.Val
				}
			}
			if err := add(ce); err != nil {
				return err
			}
		}
	}
	// Counter timelines (Tracer.Sample) become "C" events, which Perfetto
	// renders as per-process value graphs — the memory and communication
	// timelines drawn alongside the span tracks.
	t.seriesMu.Lock()
	allSeries := append([]*series(nil), t.series...)
	t.seriesMu.Unlock()
	for _, s := range allSeries {
		s.mu.Lock()
		samples := append([]counterSample(nil), s.samples...)
		s.mu.Unlock()
		for _, smp := range samples {
			if err := add(chromeEvent{Name: s.name, Ph: "C", Pid: 0, Tid: 0,
				Ts:   float64(smp.ts.Nanoseconds()) / 1e3,
				Args: map[string]int64{"value": smp.val}}); err != nil {
				return err
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteChromeTraceFile writes the Chrome trace to path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
