// Package causal records the cross-rank message edges of a distributed
// run so the per-rank span timelines (internal/obs) can be stitched into
// one BSP dependency DAG and walked for the critical path
// (docs/OBSERVABILITY.md, "Causal tracing & critical path").
//
// Every dist.Comm send carries a Header — the sender's global rank, a
// sender-local sequence number, the superstep and a Lamport logical
// clock — and every receive merges that clock. The headers travel by
// value inside the runtime's channel messages, and the per-rank logs
// append into preallocated buffers, so stamping adds zero allocations
// to the Send/Recv hot path.
//
// The log is process-global and opt-in, mirroring obs.Enable: when no
// log is installed the runtime still maintains clocks (they are plain
// atomics) but records nothing.
package causal

import (
	"sync"
	"sync/atomic"
	"time"
)

// Header is the causal stamp carried by every runtime message. It is a
// small value type: embedding it in the channel message adds no
// allocations and no indirection.
type Header struct {
	Src   int32  // sender's global rank
	Seq   uint64 // sender-local message sequence number (1-based)
	Step  int64  // sender's superstep at send time
	Clock uint64 // sender's Lamport clock after the send tick
}

// FlowID packs (Src, Seq) into the identifier shared by the Chrome
// trace flow-event pair ("s" on the sender track, "f" on the receiver
// track) for this message.
func (h Header) FlowID() uint64 {
	return uint64(uint32(h.Src))<<40 | (h.Seq & (1<<40 - 1))
}

// Event kinds recorded in a RankLog.
const (
	// KindSend: one message sent. T0==T1 is the send completion time,
	// Peer the destination rank.
	KindSend uint8 = 1 + iota
	// KindRecv: one message received. T0 is when the receiver started
	// waiting, T1 when the message arrived, Peer the source rank.
	KindRecv
	// KindEpoch: a rank-0 marker bracketing one training epoch /
	// timed benchmark execution; Seq carries the epoch number. Epoch
	// marks define the analysis windows and never appear on the path.
	KindEpoch
	// KindCheckpoint: a marker bracketing a blocking checkpoint save.
	KindCheckpoint
)

// Event is one record in a per-rank causal log. Times are nanoseconds
// since the owning Log's epoch.
type Event struct {
	Kind  uint8
	Peer  int32
	T0    int64
	T1    int64
	Seq   uint64
	Step  int64
	Clock uint64
	Bytes int64
	Code  uint32 // flight.Code of the enclosing collective (0 = none)
}

// initialEvents is the per-rank preallocation; sized so short runs and
// the alloc-regression tests never grow the buffer.
const initialEvents = 4096

// maxEventsPerRank bounds memory on very long runs; past it new events
// are counted but dropped.
const maxEventsPerRank = 1 << 21

// RankLog is one rank's append-only causal event log. Appends take a
// per-rank mutex (uncontended: each rank goroutine owns its log) and
// stay allocation-free while within the buffer's capacity.
type RankLog struct {
	rank    int
	mu      sync.Mutex
	events  []Event
	dropped int64
}

func (l *RankLog) add(e Event) {
	l.mu.Lock()
	if len(l.events) < maxEventsPerRank {
		l.events = append(l.events, e)
	} else {
		l.dropped++
	}
	l.mu.Unlock()
}

// Send records a stamped message departure at time t.
func (l *RankLog) Send(t int64, hdr Header, dst int32, bytes int64, code uint32) {
	l.add(Event{Kind: KindSend, Peer: dst, T0: t, T1: t,
		Seq: hdr.Seq, Step: hdr.Step, Clock: hdr.Clock, Bytes: bytes, Code: code})
}

// Recv records a stamped message arrival: the receiver started waiting
// at t0 and the message (stamped with hdr by its sender) arrived at t1.
func (l *RankLog) Recv(t0, t1 int64, hdr Header, bytes int64, code uint32) {
	l.add(Event{Kind: KindRecv, Peer: hdr.Src, T0: t0, T1: t1,
		Seq: hdr.Seq, Step: hdr.Step, Clock: hdr.Clock, Bytes: bytes, Code: code})
}

// MarkEpoch brackets one epoch (or timed benchmark execution) spanning
// [t0, t1]. Recorded by global rank 0 only; defines an analysis window.
func (l *RankLog) MarkEpoch(epoch int64, t0, t1 int64) {
	l.add(Event{Kind: KindEpoch, T0: t0, T1: t1, Seq: uint64(epoch)})
}

// MarkCheckpoint brackets a blocking checkpoint save spanning [t0, t1].
func (l *RankLog) MarkCheckpoint(t0, t1 int64) {
	l.add(Event{Kind: KindCheckpoint, T0: t0, T1: t1})
}

// Events returns a copy of the log.
func (l *RankLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Dropped reports how many events were discarded at the buffer cap.
func (l *RankLog) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Log collects per-rank causal logs against a shared time epoch.
type Log struct {
	epoch time.Time
	mu    sync.Mutex
	ranks map[int]*RankLog
	cache sync.Map // rank → *RankLog fast path
}

// New returns a Log whose timestamps count from now.
func New() *Log { return NewAt(time.Now()) }

// NewAt returns a Log whose timestamps count from epoch. Pass the
// tracer's epoch so causal times and span times share one time base.
func NewAt(epoch time.Time) *Log {
	return &Log{epoch: epoch, ranks: make(map[int]*RankLog)}
}

// Epoch returns the log's time base.
func (l *Log) Epoch() time.Time { return l.epoch }

// Now returns nanoseconds since the log's epoch.
func (l *Log) Now() int64 { return int64(time.Since(l.epoch)) }

// Rank returns (creating on first use) the log for one global rank.
func (l *Log) Rank(r int) *RankLog {
	if v, ok := l.cache.Load(r); ok {
		return v.(*RankLog)
	}
	l.mu.Lock()
	rl, ok := l.ranks[r]
	if !ok {
		rl = &RankLog{rank: r, events: make([]Event, 0, initialEvents)}
		l.ranks[r] = rl
	}
	l.mu.Unlock()
	l.cache.Store(r, rl)
	return rl
}

// snapshot copies every rank's events.
func (l *Log) snapshot() map[int][]Event {
	l.mu.Lock()
	logs := make([]*RankLog, 0, len(l.ranks))
	for _, rl := range l.ranks {
		logs = append(logs, rl)
	}
	l.mu.Unlock()
	out := make(map[int][]Event, len(logs))
	for _, rl := range logs {
		out[rl.rank] = rl.Events()
	}
	return out
}

var global atomic.Pointer[Log]

// Enable installs l as the process-wide causal log picked up by worlds
// created afterwards (dist.NewWorld resolves it at construction).
func Enable(l *Log) { global.Store(l) }

// Disable removes the process-wide log.
func Disable() { global.Store(nil) }

// Get returns the process-wide log, or nil when causal tracing is off.
func Get() *Log { return global.Load() }
