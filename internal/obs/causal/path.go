package causal

import (
	"sort"
)

// Span is one named interval on a rank's timeline, in nanoseconds since
// the log's epoch. The obs tracer's per-rank tracks convert into these
// for attribution (obs.CriticalPath does the epoch alignment).
type Span struct {
	Name string
	T0   int64
	T1   int64
}

// Options tunes the critical-path reconstruction.
type Options struct {
	// TopK bounds the contributor list (default 10).
	TopK int
	// BlockedMinNs is the minimum recv wait treated as a blocking
	// dependency edge; shorter waits are charged to the receiver as
	// local time (default 20µs — below that, channel handoff jitter
	// dominates and the "wait" is not actionable).
	BlockedMinNs int64
	// MaxSegments bounds the stored segment list (default 4096); the
	// aggregate totals and contributors always cover the full path.
	MaxSegments int
}

const (
	defaultTopK         = 10
	defaultBlockedMinNs = 20_000
	defaultMaxSegments  = 4096
)

// Segment classes.
const (
	ClassCompute    = "compute"
	ClassCollective = "collective"
	ClassWait       = "wait"
	ClassCheckpoint = "checkpoint"
)

// Segment is one contiguous stretch of the critical path, attributed to
// a single rank, superstep and time class.
type Segment struct {
	Rank    int    `json:"rank"`
	Step    int64  `json:"step"`
	Class   string `json:"class"`
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
}

// Contributor aggregates path time by (rank, class, name); Step is the
// superstep of the largest single segment in the group.
type Contributor struct {
	Rank  int     `json:"rank"`
	Step  int64   `json:"step"`
	Class string  `json:"class"`
	Name  string  `json:"name"`
	Ns    int64   `json:"ns"`
	Pct   float64 `json:"pct"` // share of PathNs
}

// RankWait is one rank's total blocked-recv time inside the analyzed
// windows (on or off the path) and its fraction of the window time.
type RankWait struct {
	Rank      int     `json:"rank"`
	BlockedNs int64   `json:"blocked_ns"`
	Frac      float64 `json:"frac"`
}

// EpochPath summarizes the critical path of one epoch window.
type EpochPath struct {
	Epoch        int64 `json:"epoch"`
	WindowNs     int64 `json:"window_ns"`
	ComputeNs    int64 `json:"compute_ns"`
	CollectiveNs int64 `json:"collective_ns"`
	WaitNs       int64 `json:"wait_ns"`
	CheckpointNs int64 `json:"checkpoint_ns"`
	Hops         int   `json:"hops"` // cross-rank jumps on the path
}

// SummarySchema identifies the Summary JSON layout.
const SummarySchema = "agnn-critpath/v1"

// Summary is the reconstructed cross-rank critical path of a run. The
// walk is time-contiguous inside each analysis window, so PathNs equals
// the summed window lengths and Coverage sits at 1.0 by construction;
// CI uses it as an integrity check on the reconstruction.
type Summary struct {
	Schema        string `json:"schema"`
	Ranks         int    `json:"ranks"`
	WindowStartNs int64  `json:"window_start_ns"`
	WindowEndNs   int64  `json:"window_end_ns"`
	PathNs        int64  `json:"path_ns"`
	// Coverage = PathNs / summed analysis-window time.
	Coverage     float64 `json:"coverage"`
	Hops         int     `json:"hops"`
	ComputeNs    int64   `json:"compute_ns"`
	CollectiveNs int64   `json:"collective_ns"`
	WaitNs       int64   `json:"wait_ns"`
	CheckpointNs int64   `json:"checkpoint_ns"`
	// OverlapHiddenPct is the share of total collective span time that
	// stayed OFF the critical path — communication hidden behind
	// compute by the overlapped engines.
	OverlapHiddenPct  float64       `json:"overlap_hidden_pct"`
	Top               []Contributor `json:"top"`
	PerRankWait       []RankWait    `json:"per_rank_wait"`
	Epochs            []EpochPath   `json:"epochs,omitempty"`
	Segments          []Segment     `json:"segments"`
	SegmentsTruncated bool          `json:"segments_truncated,omitempty"`
	DroppedEvents     int64         `json:"dropped_events,omitempty"`
}

// collectiveSpanNames is the span vocabulary emitted by the dist
// collectives (internal/dist/collectives.go, chunked.go); any path time
// under one of these counts as a collective hop.
var collectiveSpanNames = map[string]bool{
	"barrier": true, "bcast": true, "allgather": true,
	"reduce_scatter": true, "allreduce": true, "reduce": true,
	"gatherv": true, "scatterv": true, "alltoallv": true,
	"allgather_chunks": true, "gather.hop": true,
}

func classify(name string) string {
	switch {
	case collectiveSpanNames[name]:
		return ClassCollective
	case name == "checkpoint":
		return ClassCheckpoint
	default:
		return ClassCompute
	}
}

// msgKey identifies one message across the send and receive logs.
type msgKey struct {
	src int32
	seq uint64
}

// flatIv is one innermost-span interval from the flattened per-rank
// span timeline (non-overlapping, sorted by t0).
type flatIv struct {
	t0, t1 int64
	name   string
}

// analyzer holds the indexed run state shared by the window walks.
type analyzer struct {
	walkEvs map[int][]Event // per rank, KindEpoch removed, sorted by T1
	sends   map[msgKey]Event
	flat    map[int][]flatIv
	opt     Options
}

// rawSeg is an unattributed walk segment.
type rawSeg struct {
	rank  int
	step  int64
	class string // ClassWait / ClassCheckpoint, or "" = attribute by spans
	name  string
	a, b  int64
}

// Analyze reconstructs the critical path of the run captured in l,
// attributing local time with the per-rank spans (times in l's epoch).
// Returns nil when the log holds no events.
func Analyze(l *Log, spans map[int][]Span, opt Options) *Summary {
	if l == nil {
		return nil
	}
	if opt.TopK <= 0 {
		opt.TopK = defaultTopK
	}
	if opt.BlockedMinNs <= 0 {
		opt.BlockedMinNs = defaultBlockedMinNs
	}
	if opt.MaxSegments <= 0 {
		opt.MaxSegments = defaultMaxSegments
	}
	events := l.snapshot()
	total := 0
	for _, evs := range events {
		total += len(evs)
	}
	if total == 0 {
		return nil
	}

	az := &analyzer{
		walkEvs: make(map[int][]Event, len(events)),
		sends:   make(map[msgKey]Event),
		flat:    make(map[int][]flatIv, len(spans)),
		opt:     opt,
	}
	var epochs []Event
	minT, maxT := int64(1<<62), int64(-1<<62)
	for r, evs := range events {
		keep := evs[:0:0]
		for _, e := range evs {
			if e.T0 < minT {
				minT = e.T0
			}
			if e.T1 > maxT {
				maxT = e.T1
			}
			switch e.Kind {
			case KindEpoch:
				epochs = append(epochs, e)
				continue
			case KindSend:
				az.sends[msgKey{int32(r), e.Seq}] = e
			}
			keep = append(keep, e)
		}
		sort.SliceStable(keep, func(i, j int) bool { return keep[i].T1 < keep[j].T1 })
		az.walkEvs[r] = keep
	}
	for r, sp := range spans {
		az.flat[r] = flatten(sp)
	}

	// Analysis windows: the epoch marks when present, else the whole run.
	sort.Slice(epochs, func(i, j int) bool { return epochs[i].T0 < epochs[j].T0 })
	type window struct {
		a, b  int64
		epoch int64
		mark  bool
	}
	var windows []window
	for _, e := range epochs {
		if e.T1 > e.T0 {
			windows = append(windows, window{a: e.T0, b: e.T1, epoch: int64(e.Seq), mark: true})
		}
	}
	if len(windows) == 0 && maxT > minT {
		windows = append(windows, window{a: minT, b: maxT})
	}
	if len(windows) == 0 {
		return nil
	}

	sum := &Summary{Schema: SummarySchema, Ranks: len(events),
		WindowStartNs: windows[0].a, WindowEndNs: windows[len(windows)-1].b}
	var windowNs int64
	contrib := map[Contributor]*Contributor{} // keyed on (rank,class,name) with zeroed Ns/Pct/Step
	maxSeg := map[Contributor]int64{}
	for _, w := range windows {
		segs, hops := az.walk(w.a, w.b)
		windowNs += w.b - w.a
		sum.Hops += hops
		var ep EpochPath
		ep.Epoch = w.epoch
		ep.WindowNs = w.b - w.a
		ep.Hops = hops
		for _, s := range segs {
			d := s.EndNs - s.StartNs
			sum.PathNs += d
			switch s.Class {
			case ClassCompute:
				sum.ComputeNs += d
				ep.ComputeNs += d
			case ClassCollective:
				sum.CollectiveNs += d
				ep.CollectiveNs += d
			case ClassWait:
				sum.WaitNs += d
				ep.WaitNs += d
			case ClassCheckpoint:
				sum.CheckpointNs += d
				ep.CheckpointNs += d
			}
			key := Contributor{Rank: s.Rank, Class: s.Class, Name: s.Name}
			c := contrib[key]
			if c == nil {
				c = &Contributor{Rank: s.Rank, Class: s.Class, Name: s.Name, Step: s.Step}
				contrib[key] = c
			}
			c.Ns += d
			if d > maxSeg[key] {
				maxSeg[key] = d
				c.Step = s.Step
			}
		}
		if w.mark {
			sum.Epochs = append(sum.Epochs, ep)
		}
		if len(sum.Segments) < opt.MaxSegments {
			room := opt.MaxSegments - len(sum.Segments)
			if len(segs) > room {
				segs = segs[:room]
				sum.SegmentsTruncated = true
			}
			sum.Segments = append(sum.Segments, segs...)
		} else {
			sum.SegmentsTruncated = true
		}
	}
	if windowNs > 0 {
		sum.Coverage = float64(sum.PathNs) / float64(windowNs)
	}

	// Top contributors by path time.
	for _, c := range contrib {
		cc := *c
		if sum.PathNs > 0 {
			cc.Pct = 100 * float64(cc.Ns) / float64(sum.PathNs)
		}
		sum.Top = append(sum.Top, cc)
	}
	sort.Slice(sum.Top, func(i, j int) bool {
		if sum.Top[i].Ns != sum.Top[j].Ns {
			return sum.Top[i].Ns > sum.Top[j].Ns
		}
		if sum.Top[i].Rank != sum.Top[j].Rank {
			return sum.Top[i].Rank < sum.Top[j].Rank
		}
		return sum.Top[i].Name < sum.Top[j].Name
	})
	if len(sum.Top) > opt.TopK {
		sum.Top = sum.Top[:opt.TopK]
	}

	// Per-rank blocked time inside the windows, path or not.
	ranks := make([]int, 0, len(events))
	for r := range events {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		var blocked int64
		for _, e := range events[r] {
			if e.Kind != KindRecv || e.T1-e.T0 < opt.BlockedMinNs {
				continue
			}
			for _, w := range windows {
				a, b := e.T0, e.T1
				if a < w.a {
					a = w.a
				}
				if b > w.b {
					b = w.b
				}
				if b > a {
					blocked += b - a
				}
			}
		}
		rw := RankWait{Rank: r, BlockedNs: blocked}
		if windowNs > 0 {
			rw.Frac = float64(blocked) / float64(windowNs)
		}
		sum.PerRankWait = append(sum.PerRankWait, rw)
	}

	// Overlap effectiveness: how much total collective span time stayed
	// off the path (hidden behind compute on other ranks).
	var collTotal int64
	for _, ivs := range az.flat {
		for _, iv := range ivs {
			if classify(iv.name) != ClassCollective {
				continue
			}
			for _, w := range windows {
				a, b := iv.t0, iv.t1
				if a < w.a {
					a = w.a
				}
				if b > w.b {
					b = w.b
				}
				if b > a {
					collTotal += b - a
				}
			}
		}
	}
	if collTotal > 0 {
		hidden := collTotal - sum.CollectiveNs
		if hidden < 0 {
			hidden = 0
		}
		sum.OverlapHiddenPct = 100 * float64(hidden) / float64(collTotal)
	}
	var dropped int64
	l.mu.Lock()
	for _, rl := range l.ranks {
		dropped += rl.Dropped()
	}
	l.mu.Unlock()
	sum.DroppedEvents = dropped
	return sum
}

// walk runs the backward critical-path walk over one window [ws, we]:
// starting from the rank active last, local time extends backward until
// a blocked receive, which jumps to the sender's rank at its send time.
// The walk is time-contiguous — every instant in the window lands in
// exactly one segment — and the returned segments are in time order.
func (az *analyzer) walk(ws, we int64) ([]Segment, int) {
	rank := az.startRank(ws, we)
	var raw []rawSeg
	hops := 0
	t := we
	for t > ws {
		evs := az.walkEvs[rank]
		// Last event on this rank finishing at or before t, inside the window.
		i := sort.Search(len(evs), func(i int) bool { return evs[i].T1 > t }) - 1
		if i < 0 || evs[i].T1 <= ws {
			raw = append(raw, rawSeg{rank: rank, a: ws, b: t})
			t = ws
			break
		}
		e := evs[i]
		if e.T1 < t {
			// Local time after the event.
			raw = append(raw, rawSeg{rank: rank, step: e.Step, a: e.T1, b: t})
			t = e.T1
			continue
		}
		switch {
		case e.Kind == KindRecv && e.T1-e.T0 >= az.opt.BlockedMinNs:
			// Blocked receive: the path came from the sender.
			if s, ok := az.sends[msgKey{e.Peer, e.Seq}]; ok && s.T1 < t {
				jt := s.T1
				if jt < ws {
					jt = ws
				}
				raw = append(raw, rawSeg{rank: rank, step: e.Step,
					class: ClassWait, name: "blocked-recv", a: jt, b: t})
				hops++
				rank = int(e.Peer)
				t = jt
				continue
			}
			st := e.T0
			if st < ws {
				st = ws
			}
			if st >= t {
				st = t - 1 // zero-width event: force progress
			}
			raw = append(raw, rawSeg{rank: rank, step: e.Step,
				class: ClassWait, name: "blocked-recv", a: st, b: t})
			t = st
		case e.Kind == KindCheckpoint:
			nt := e.T0
			if nt < ws {
				nt = ws
			}
			if nt >= t {
				nt = t - 1
			}
			raw = append(raw, rawSeg{rank: rank, step: e.Step,
				class: ClassCheckpoint, name: "checkpoint", a: nt, b: t})
			t = nt
		default:
			// Send, quick recv, or other local event: local time across it.
			nt := e.T0
			if nt < ws {
				nt = ws
			}
			if nt >= t {
				nt = t - 1
			}
			raw = append(raw, rawSeg{rank: rank, step: e.Step, a: nt, b: t})
			t = nt
		}
	}
	// Reverse into time order, clamp the possible -1 overshoot.
	for i, j := 0, len(raw)-1; i < j; i, j = i+1, j-1 {
		raw[i], raw[j] = raw[j], raw[i]
	}
	if len(raw) > 0 && raw[0].a < ws {
		raw[0].a = ws
	}

	var segs []Segment
	for _, rs := range raw {
		if rs.b <= rs.a {
			continue
		}
		if rs.class != "" {
			segs = appendSeg(segs, Segment{Rank: rs.rank, Step: rs.step,
				Class: rs.class, Name: rs.name, StartNs: rs.a, EndNs: rs.b})
			continue
		}
		az.attribute(rs, &segs)
	}
	return segs, hops
}

// startRank picks the rank whose recorded activity reaches latest into
// the window — the rank that finished the window's work.
func (az *analyzer) startRank(ws, we int64) int {
	best, bestT := -1, int64(-1<<62)
	for r, evs := range az.walkEvs {
		i := sort.Search(len(evs), func(i int) bool { return evs[i].T1 > we }) - 1
		if i < 0 || evs[i].T1 <= ws {
			continue
		}
		if evs[i].T1 > bestT || (evs[i].T1 == bestT && r < best) {
			best, bestT = r, evs[i].T1
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// attribute splits a local walk segment by the rank's innermost spans.
func (az *analyzer) attribute(rs rawSeg, segs *[]Segment) {
	ivs := az.flat[rs.rank]
	t := rs.a
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].t1 > rs.a })
	for t < rs.b && i < len(ivs) {
		iv := ivs[i]
		if iv.t0 >= rs.b {
			break
		}
		if iv.t0 > t {
			*segs = appendSeg(*segs, Segment{Rank: rs.rank, Step: rs.step,
				Class: ClassCompute, Name: "(untraced)", StartNs: t, EndNs: iv.t0})
			t = iv.t0
		}
		end := iv.t1
		if end > rs.b {
			end = rs.b
		}
		*segs = appendSeg(*segs, Segment{Rank: rs.rank, Step: rs.step,
			Class: classify(iv.name), Name: iv.name, StartNs: t, EndNs: end})
		t = end
		i++
	}
	if t < rs.b {
		*segs = appendSeg(*segs, Segment{Rank: rs.rank, Step: rs.step,
			Class: ClassCompute, Name: "(untraced)", StartNs: t, EndNs: rs.b})
	}
}

// appendSeg appends s, merging into the previous segment when it
// continues the same (rank, class, name) stretch.
func appendSeg(segs []Segment, s Segment) []Segment {
	if n := len(segs); n > 0 {
		p := &segs[n-1]
		if p.Rank == s.Rank && p.Class == s.Class && p.Name == s.Name && p.EndNs == s.StartNs {
			p.EndNs = s.EndNs
			if s.Step > p.Step {
				p.Step = s.Step
			}
			return segs
		}
	}
	return append(segs, s)
}

// flatten turns a rank's (possibly overlapping, multi-track) span list
// into non-overlapping innermost-span intervals sorted by start time:
// at every instant the latest-started active span wins, matching the
// "innermost wins" attribution of nested spans.
func flatten(spans []Span) []flatIv {
	type boundary struct {
		t     int64
		open  bool
		span  int
		start int64
	}
	var bs []boundary
	for i, s := range spans {
		if s.T1 <= s.T0 {
			continue
		}
		bs = append(bs, boundary{t: s.T0, open: true, span: i, start: s.T0})
		bs = append(bs, boundary{t: s.T1, open: false, span: i, start: s.T0})
	}
	if len(bs) == 0 {
		return nil
	}
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].t != bs[j].t {
			return bs[i].t < bs[j].t
		}
		// Closes before opens at the same instant.
		return !bs[i].open && bs[j].open
	})
	var out []flatIv
	active := map[int]bool{}
	innermost := func() (int, bool) {
		best, bestStart, bestIdx := -1, int64(-1<<62), -1
		for idx := range active {
			s := spans[idx]
			if s.T0 > bestStart || (s.T0 == bestStart && idx > bestIdx) {
				best, bestStart, bestIdx = idx, s.T0, idx
			}
		}
		return best, best >= 0
	}
	prev := bs[0].t
	for _, b := range bs {
		if b.t > prev {
			if idx, ok := innermost(); ok {
				out = append(out, flatIv{t0: prev, t1: b.t, name: spans[idx].Name})
			}
			prev = b.t
		}
		if b.open {
			active[b.span] = true
		} else {
			delete(active, b.span)
		}
	}
	// Merge adjacent same-name intervals.
	merged := out[:0]
	for _, iv := range out {
		if n := len(merged); n > 0 && merged[n-1].name == iv.name && merged[n-1].t1 == iv.t0 {
			merged[n-1].t1 = iv.t1
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}
