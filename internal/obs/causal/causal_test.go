package causal

import (
	"testing"
	"time"
)

func TestFlowIDPacksSrcAndSeq(t *testing.T) {
	h := Header{Src: 3, Seq: 41}
	want := uint64(3)<<40 | 41
	if h.FlowID() != want {
		t.Fatalf("FlowID = %#x, want %#x", h.FlowID(), want)
	}
	if (Header{Src: 3, Seq: 42}).FlowID() == h.FlowID() {
		t.Fatal("distinct seqs must yield distinct flow ids")
	}
	if (Header{Src: 4, Seq: 41}).FlowID() == h.FlowID() {
		t.Fatal("distinct src ranks must yield distinct flow ids")
	}
}

func TestLogRankReuseAndEvents(t *testing.T) {
	l := NewAt(time.Now())
	if l.Rank(2) != l.Rank(2) {
		t.Fatal("Rank must return a stable per-rank log")
	}
	rl := l.Rank(0)
	rl.Send(10, Header{Src: 0, Seq: 1, Clock: 5}, 1, 64, 0)
	rl.Recv(20, 30, Header{Src: 1, Seq: 7, Clock: 9}, 32, 0)
	rl.MarkEpoch(3, 0, 100)
	rl.MarkCheckpoint(40, 60)
	evs := rl.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Kind != KindSend || evs[0].Peer != 1 || evs[0].Clock != 5 {
		t.Fatalf("bad send event: %+v", evs[0])
	}
	if evs[1].Kind != KindRecv || evs[1].Peer != 1 || evs[1].Seq != 7 {
		t.Fatalf("bad recv event: %+v", evs[1])
	}
	if evs[2].Kind != KindEpoch || evs[2].Seq != 3 {
		t.Fatalf("bad epoch mark: %+v", evs[2])
	}
	if evs[3].Kind != KindCheckpoint || evs[3].T0 != 40 {
		t.Fatalf("bad checkpoint mark: %+v", evs[3])
	}
}

func TestEnableDisable(t *testing.T) {
	prev := Get()
	defer Enable(prev)
	l := New()
	Enable(l)
	if Get() != l {
		t.Fatal("Get after Enable")
	}
	Disable()
	if Get() != nil {
		t.Fatal("Get after Disable")
	}
}

// syntheticRun builds a 2-rank scenario: rank 1 computes [0,90µs] then
// runs a 5µs collective send finishing at 95µs; rank 0 computes
// [0,40µs], blocks on the recv from 40µs until the 100µs arrival, then
// computes [100µs,150µs]. The critical path must be rank 1 compute +
// collective → wait hop → rank 0 compute.
func syntheticRun(t *testing.T) (*Log, map[int][]Span) {
	t.Helper()
	const us = int64(time.Microsecond)
	l := NewAt(time.Now())
	h := Header{Src: 1, Seq: 1, Step: 1, Clock: 3}
	l.Rank(1).Send(95*us, h, 0, 1024, 0)
	l.Rank(0).Recv(40*us, 100*us, h, 1024, 0)
	l.Rank(0).MarkEpoch(0, 0, 150*us)
	spans := map[int][]Span{
		0: {{Name: "spmm", T0: 0, T1: 40 * us}, {Name: "softmax", T0: 100 * us, T1: 150 * us}},
		1: {{Name: "sddmm", T0: 0, T1: 90 * us}, {Name: "allgather", T0: 90 * us, T1: 95 * us}},
	}
	return l, spans
}

func TestAnalyzeBlockedRecvJumpsToSender(t *testing.T) {
	l, spans := syntheticRun(t)
	sum := Analyze(l, spans, Options{})
	if sum == nil {
		t.Fatal("nil summary")
	}
	const us = int64(time.Microsecond)
	if sum.Hops != 1 {
		t.Fatalf("hops = %d, want 1", sum.Hops)
	}
	if sum.PathNs != 150*us {
		t.Fatalf("path = %d, want %d", sum.PathNs, 150*us)
	}
	if sum.Coverage < 0.999 || sum.Coverage > 1.001 {
		t.Fatalf("coverage = %f, want 1.0", sum.Coverage)
	}
	// Time-contiguous segments spanning the whole window.
	if sum.Segments[0].StartNs != 0 || sum.Segments[len(sum.Segments)-1].EndNs != 150*us {
		t.Fatalf("segments do not span window: %+v", sum.Segments)
	}
	for i := 1; i < len(sum.Segments); i++ {
		if sum.Segments[i].StartNs != sum.Segments[i-1].EndNs {
			t.Fatalf("segment gap at %d: %+v", i, sum.Segments)
		}
	}
	classNs := map[string]int64{}
	names := map[string]int64{}
	for _, s := range sum.Segments {
		classNs[s.Class] += s.EndNs - s.StartNs
		names[s.Name] += s.EndNs - s.StartNs
		if s.Class == ClassCompute && s.Rank == 0 && s.StartNs < 40*us && s.Name != "spmm" {
			t.Fatalf("early rank-0 compute misattributed: %+v", s)
		}
	}
	// Path: rank1 sddmm 90µs + allgather 5µs → 5µs wait (send done at
	// 95µs, arrival at 100µs) → rank0 softmax 50µs.
	if names["sddmm"] != 90*us || names["allgather"] != 5*us || names["softmax"] != 50*us {
		t.Fatalf("bad attribution: %v", names)
	}
	if classNs[ClassCollective] != 5*us || classNs[ClassWait] != 5*us {
		t.Fatalf("collective/wait ns: %v", classNs)
	}
	// Rank 0's spans include 40µs of off-path spmm; it must NOT be on the path.
	if names["spmm"] != 0 {
		t.Fatalf("off-path spmm appeared on the path: %v", names)
	}
	if sum.ComputeNs+sum.CollectiveNs+sum.WaitNs+sum.CheckpointNs != sum.PathNs {
		t.Fatal("class totals do not sum to path")
	}
	// Rank 0 blocked 60µs out of 150µs.
	if len(sum.PerRankWait) != 2 || sum.PerRankWait[0].BlockedNs != 60*us {
		t.Fatalf("per-rank wait: %+v", sum.PerRankWait)
	}
	if len(sum.Epochs) != 1 || sum.Epochs[0].WindowNs != 150*us {
		t.Fatalf("epochs: %+v", sum.Epochs)
	}
}

func TestAnalyzeWaitWithoutMatchingSend(t *testing.T) {
	const us = int64(time.Microsecond)
	l := NewAt(time.Now())
	// Recv with no recorded send (e.g. sender's log dropped): charge the
	// blocked time to the receiver as wait.
	l.Rank(0).Recv(10*us, 90*us, Header{Src: 1, Seq: 9}, 8, 0)
	l.Rank(0).MarkEpoch(0, 0, 100*us)
	sum := Analyze(l, nil, Options{})
	if sum == nil {
		t.Fatal("nil summary")
	}
	if sum.WaitNs != 80*us {
		t.Fatalf("wait = %d, want %d", sum.WaitNs, 80*us)
	}
	if sum.Hops != 0 {
		t.Fatalf("hops = %d, want 0", sum.Hops)
	}
	if sum.PathNs != 100*us {
		t.Fatalf("path = %d, want window", sum.PathNs)
	}
}

func TestAnalyzeCheckpointClass(t *testing.T) {
	const us = int64(time.Microsecond)
	l := NewAt(time.Now())
	l.Rank(0).MarkCheckpoint(20*us, 70*us)
	l.Rank(0).MarkEpoch(0, 0, 100*us)
	sum := Analyze(l, nil, Options{})
	if sum == nil {
		t.Fatal("nil summary")
	}
	if sum.CheckpointNs != 50*us {
		t.Fatalf("checkpoint ns = %d, want %d", sum.CheckpointNs, 50*us)
	}
}

func TestAnalyzeEmptyLog(t *testing.T) {
	if Analyze(New(), nil, Options{}) != nil {
		t.Fatal("empty log must yield nil")
	}
	if Analyze(nil, nil, Options{}) != nil {
		t.Fatal("nil log must yield nil")
	}
}

func TestAnalyzeZeroDurationEventsTerminate(t *testing.T) {
	l := NewAt(time.Now())
	h := Header{Src: 0, Seq: 1}
	// Degenerate: all events at the same instant.
	l.Rank(0).Send(50, h, 0, 0, 0)
	l.Rank(0).Recv(50, 50, h, 0, 0)
	l.Rank(0).MarkEpoch(0, 0, 100)
	done := make(chan *Summary, 1)
	go func() { done <- Analyze(l, nil, Options{}) }()
	select {
	case sum := <-done:
		if sum == nil {
			t.Fatal("nil summary")
		}
		if sum.PathNs != 100 {
			t.Fatalf("path = %d, want 100", sum.PathNs)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Analyze did not terminate")
	}
}

func TestFlattenInnermostWins(t *testing.T) {
	ivs := flatten([]Span{
		{Name: "outer", T0: 0, T1: 100},
		{Name: "inner", T0: 20, T1: 60},
	})
	want := []flatIv{{0, 20, "outer"}, {20, 60, "inner"}, {60, 100, "outer"}}
	if len(ivs) != len(want) {
		t.Fatalf("got %v, want %v", ivs, want)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("interval %d: got %v, want %v", i, ivs[i], want[i])
		}
	}
}

func TestSummaryTopContributors(t *testing.T) {
	l, spans := syntheticRun(t)
	sum := Analyze(l, spans, Options{TopK: 2})
	if len(sum.Top) != 2 {
		t.Fatalf("topk: %+v", sum.Top)
	}
	if sum.Top[0].Name != "sddmm" || sum.Top[0].Rank != 1 {
		t.Fatalf("top contributor: %+v", sum.Top[0])
	}
	if sum.Top[0].Pct < sum.Top[1].Pct {
		t.Fatal("top not sorted by share")
	}
}
