package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func osStat(p string) (int64, error) {
	fi, err := os.Stat(p)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// deterministicTracer builds a fixed little trace: a nested pair on the
// main track, one attributed collective span on a rank track, and a
// two-point counter timeline.
func deterministicTracer() *Tracer {
	tr := New()
	fakeClock(tr, time.Millisecond)
	r0 := tr.Track("rank 0")
	outer := tr.Main().Start("train")
	k := tr.Main().Start("spmm")
	k.End()
	outer.End()
	c := r0.Start("allreduce")
	c.End(Int64("bytes", 1024), Int64("msgs", 4))
	tr.Sample("arena bytes", 4096)
	tr.Sample("arena bytes", 8192)
	tr.Sample("comm bytes", 1024)
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := deterministicTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := deterministicTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  *int            `json:"pid"`
			Tid  *int            `json:"tid"`
			Ts   *float64        `json:"ts"`
			Dur  *float64        `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}
	var metas, spans, counters int
	counterVals := map[string][]int64{}
	threadNames := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		if e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %q missing pid/tid", e.Name)
		}
		switch e.Ph {
		case "M":
			metas++
			if e.Name == "thread_name" {
				var args map[string]string
				if err := json.Unmarshal(e.Args, &args); err != nil || args["name"] == "" {
					t.Fatalf("thread_name meta malformed: %s", e.Args)
				}
				threadNames[args["name"]] = true
			}
		case "X":
			spans++
			if e.Ts == nil || *e.Ts < 0 || e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("span %q has invalid ts/dur", e.Name)
			}
			if e.Name == "allreduce" {
				var args map[string]int64
				if err := json.Unmarshal(e.Args, &args); err != nil {
					t.Fatalf("span args malformed: %s", e.Args)
				}
				if args["bytes"] != 1024 || args["msgs"] != 4 {
					t.Fatalf("collective attrs not exported: %v", args)
				}
			}
		case "C":
			counters++
			if e.Ts == nil || *e.Ts < 0 {
				t.Fatalf("counter %q has invalid ts", e.Name)
			}
			var args map[string]int64
			if err := json.Unmarshal(e.Args, &args); err != nil {
				t.Fatalf("counter args malformed: %s", e.Args)
			}
			counterVals[e.Name] = append(counterVals[e.Name], args["value"])
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if spans != 3 {
		t.Fatalf("got %d X events, want 3", spans)
	}
	if counters != 3 {
		t.Fatalf("got %d C events, want 3", counters)
	}
	if v := counterVals["arena bytes"]; len(v) != 2 || v[0] != 4096 || v[1] != 8192 {
		t.Fatalf("arena bytes counter timeline wrong: %v", v)
	}
	if v := counterVals["comm bytes"]; len(v) != 1 || v[0] != 1024 {
		t.Fatalf("comm bytes counter timeline wrong: %v", v)
	}
	if !threadNames["main"] || !threadNames["rank 0"] {
		t.Fatalf("thread names missing: %v", threadNames)
	}
}
