package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"agnn/internal/obs/flight"
	"agnn/internal/obs/metrics"
)

func TestHealthzEndpoint(t *testing.T) {
	s, err := Start("127.0.0.1:0", Options{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body, hdr := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	if strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz body %q", body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

func TestBuildinfoEndpoint(t *testing.T) {
	s, err := Start("127.0.0.1:0", Options{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body, hdr := get(t, "http://"+s.Addr()+"/buildinfo")
	if code != http.StatusOK {
		t.Fatalf("/buildinfo status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var bi BuildInfo
	if err := json.Unmarshal([]byte(body), &bi); err != nil {
		t.Fatalf("/buildinfo not JSON: %v\n%s", err, body)
	}
	if bi.GoVersion == "" || bi.GOOS == "" || bi.GOARCH == "" {
		t.Fatalf("buildinfo incomplete: %+v", bi)
	}
	if bi.GOMAXPROCS < 1 || bi.PID < 1 {
		t.Fatalf("buildinfo runtime fields wrong: %+v", bi)
	}
}

// The /debug/flight endpoint serves the live event ring of the process's
// Default recorder as a reason="request" dump.
func TestDebugFlightEndpoint(t *testing.T) {
	code := flight.Code("serve-endpoint-test")
	flight.Process().Record(flight.KindCounter, code, 11, 0, 0)

	s, err := Start("127.0.0.1:0", Options{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	status, body, hdr := get(t, "http://"+s.Addr()+"/debug/flight")
	if status != http.StatusOK {
		t.Fatalf("/debug/flight status %d", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var d flight.Dump
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("/debug/flight not JSON: %v\n%s", err, body)
	}
	if d.Schema != flight.DumpSchema || d.Reason != "request" {
		t.Fatalf("dump header wrong: schema=%q reason=%q", d.Schema, d.Reason)
	}
	found := false
	for _, l := range d.Lanes {
		for _, ev := range l.Events {
			if ev.Name == "serve-endpoint-test" && ev.A == 11 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("recorded event not visible through /debug/flight")
	}
}

// The index page must advertise the diagnostic surface, new routes
// included.
func TestIndexListsEndpoints(t *testing.T) {
	s, err := Start("127.0.0.1:0", Options{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, body, _ := get(t, "http://"+s.Addr()+"/")
	for _, want := range []string{"/metrics", "/report", "/debug/flight", "/healthz", "/buildinfo", "/debug/pprof/"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index page missing %q:\n%s", want, body)
		}
	}
}
