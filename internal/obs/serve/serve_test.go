package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"agnn/internal/obs/metrics"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestMetricsEndpoint(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("test_requests_total", "requests").Add(42)
	r.CounterVec("test_rank_bytes_total", "bytes", "rank").With("3").Add(8)

	s, err := Start("127.0.0.1:0", Options{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, body, hdr := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"test_requests_total 42",
		`test_rank_bytes_total{rank="3"} 8`,
		"# TYPE test_requests_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestReportEndpoint(t *testing.T) {
	r := metrics.NewRegistry()
	r.Gauge("test_loss", "").Set(0.5)
	s, err := Start("127.0.0.1:0", Options{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, body, hdr := get(t, "http://"+s.Addr()+"/report")
	if code != http.StatusOK {
		t.Fatalf("/report status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var payload struct {
		Metrics metrics.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/report not JSON: %v\n%s", err, body)
	}
	if v, ok := payload.Metrics.Gauge("test_loss", ""); !ok || v != 0.5 {
		t.Fatalf("/report metrics wrong: %v %v", v, ok)
	}
}

func TestCustomReportPayload(t *testing.T) {
	s, err := Start("127.0.0.1:0", Options{
		Registry: metrics.NewRegistry(),
		Report:   func() any { return map[string]string{"state": "mid-epoch"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, body, _ := get(t, "http://"+s.Addr()+"/report")
	if !strings.Contains(body, "mid-epoch") {
		t.Fatalf("custom report payload not served: %s", body)
	}
}

func TestPprofAndIndex(t *testing.T) {
	s, err := Start("127.0.0.1:0", Options{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, body, _ := get(t, "http://"+s.Addr()+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline: status %d body %q", code, body)
	}
	if code, body, _ := get(t, "http://"+s.Addr()+"/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: status %d", code)
	}
	if code, _, _ := get(t, "http://"+s.Addr()+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}
