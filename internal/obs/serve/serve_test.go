package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"agnn/internal/obs/metrics"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestMetricsEndpoint(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("test_requests_total", "requests").Add(42)
	r.CounterVec("test_rank_bytes_total", "bytes", "rank").With("3").Add(8)

	s, err := Start("127.0.0.1:0", Options{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, body, hdr := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"test_requests_total 42",
		`test_rank_bytes_total{rank="3"} 8`,
		"# TYPE test_requests_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestReportEndpoint(t *testing.T) {
	r := metrics.NewRegistry()
	r.Gauge("test_loss", "").Set(0.5)
	s, err := Start("127.0.0.1:0", Options{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, body, hdr := get(t, "http://"+s.Addr()+"/report")
	if code != http.StatusOK {
		t.Fatalf("/report status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var payload struct {
		Metrics metrics.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/report not JSON: %v\n%s", err, body)
	}
	if v, ok := payload.Metrics.Gauge("test_loss", ""); !ok || v != 0.5 {
		t.Fatalf("/report metrics wrong: %v %v", v, ok)
	}
}

func TestCustomReportPayload(t *testing.T) {
	s, err := Start("127.0.0.1:0", Options{
		Registry: metrics.NewRegistry(),
		Report:   func() any { return map[string]string{"state": "mid-epoch"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, body, _ := get(t, "http://"+s.Addr()+"/report")
	if !strings.Contains(body, "mid-epoch") {
		t.Fatalf("custom report payload not served: %s", body)
	}
}

func TestGracefulShutdownDrainsInFlightScrape(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("test_slow_total", "").Add(7)
	release := make(chan struct{})
	s, err := Start("127.0.0.1:0", Options{
		Registry: r,
		Report: func() any {
			<-release // hold the scrape open across Shutdown
			return map[string]string{"state": "drained"}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var code int
	var body string
	go func() {
		defer wg.Done()
		code, body, _ = get(t, "http://"+s.Addr()+"/report")
	}()
	time.Sleep(50 * time.Millisecond) // let the scrape reach the handler

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Shutdown returned while a scrape was still in flight")
	default:
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if code != http.StatusOK || !strings.Contains(body, "drained") {
		t.Fatalf("in-flight scrape dropped: status %d body %q", code, body)
	}
	// New connections must be refused after shutdown.
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

func TestShutdownDeadlineForcesClose(t *testing.T) {
	stall := make(chan struct{})
	s, err := Start("127.0.0.1:0", Options{
		Registry: metrics.NewRegistry(),
		Report:   func() any { <-stall; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer close(stall)
	go http.Get("http://" + s.Addr() + "/report") //nolint:errcheck // cut off intentionally
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	s.Shutdown(ctx) // the stuck scrape must not stall us past the deadline
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Shutdown took %v despite a %v deadline", d, 100*time.Millisecond)
	}
}

func TestFinalSnapshotWrittenOnShutdown(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "final.prom")
	r := metrics.NewRegistry()
	r.Counter("test_final_total", "").Add(13)
	s, err := Start("127.0.0.1:0", Options{Registry: r, FinalSnapshotPath: path})
	if err != nil {
		t.Fatal(err)
	}
	r.Counter("test_final_total", "").Add(2) // post-start activity must be captured
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("final snapshot not written: %v", err)
	}
	if !strings.Contains(string(raw), "test_final_total 15") {
		t.Fatalf("final snapshot stale:\n%s", raw)
	}
	// A second close must not rewrite (or error on) the snapshot.
	if err := s.Close(); err != nil {
		t.Fatalf("idempotent close: %v", err)
	}
}

func TestFinalSnapshotWrittenOnClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "final.prom")
	r := metrics.NewRegistry()
	r.Gauge("test_done", "").Set(1)
	s, err := Start("127.0.0.1:0", Options{Registry: r, FinalSnapshotPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("final snapshot not written on Close: %v", err)
	}
	if !strings.Contains(string(raw), "test_done 1") {
		t.Fatalf("snapshot content wrong:\n%s", raw)
	}
}

func TestPprofAndIndex(t *testing.T) {
	s, err := Start("127.0.0.1:0", Options{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, body, _ := get(t, "http://"+s.Addr()+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline: status %d body %q", code, body)
	}
	if code, body, _ := get(t, "http://"+s.Addr()+"/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: status %d", code)
	}
	if code, _, _ := get(t, "http://"+s.Addr()+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}
