// Package serve is the opt-in HTTP diagnostics endpoint of the binaries:
// a tiny stdlib server exposing the live metrics registry in Prometheus
// exposition format (/metrics), the standard pprof handlers
// (/debug/pprof/*), a JSON run-report snapshot (/report), the flight
// recorder's recent-event ring (/debug/flight), a liveness probe
// (/healthz), and the binary's build identity (/buildinfo), so a
// long-running training or benchmark job can be inspected while it runs
// instead of only post-mortem.
//
// The package intentionally does not import internal/obs — it accepts the
// /report payload as a closure — so obs.CLI can start a server without an
// import cycle.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"agnn/internal/obs/flight"
	"agnn/internal/obs/metrics"
)

// Options configures the diagnostics handler.
type Options struct {
	// Registry is the metrics registry behind /metrics and the metrics
	// section of /report. Nil means metrics.Default.
	Registry *metrics.Registry
	// Report, when set, produces the /report JSON payload (typically the
	// obs run-report with the metrics snapshot attached). Nil serves the
	// registry snapshot alone.
	Report func() any
	// FinalSnapshotPath, when set, makes shutdown write one last Prometheus
	// exposition of the registry to this file — the terminal scrape a
	// monitoring system would otherwise miss when the process exits between
	// scrape intervals.
	FinalSnapshotPath string
}

func (o Options) registry() *metrics.Registry {
	if o.Registry != nil {
		return o.Registry
	}
	return metrics.Default
}

// Handler returns the diagnostics mux: /metrics, /report, /debug/pprof/*.
func Handler(opt Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>agnn diagnostics</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>
<li><a href="/report">/report</a> — JSON run-report snapshot</li>
<li><a href="/debug/flight">/debug/flight</a> — flight-recorder event ring</li>
<li><a href="/healthz">/healthz</a> — liveness probe</li>
<li><a href="/buildinfo">/buildinfo</a> — binary build identity</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — pprof profiles</li>
</ul></body></html>`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := opt.registry().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		var payload any
		if opt.Report != nil {
			payload = opt.Report()
		} else {
			payload = map[string]any{"metrics": opt.registry().Snapshot()}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/flight", flight.Default.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(buildInfo()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// BuildInfo is the /buildinfo payload: what binary is answering, built
// from what, on what runtime — the first question of any incident triage.
type BuildInfo struct {
	GoVersion  string `json:"go_version"`
	Path       string `json:"path,omitempty"`       // main module path
	GitCommit  string `json:"git_commit,omitempty"` // embedded VCS revision
	GitDirty   bool   `json:"git_dirty,omitempty"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	PID        int    `json:"pid"`
}

func buildInfo() BuildInfo {
	b := BuildInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PID:        os.Getpid(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		b.Path = bi.Main.Path
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				b.GitCommit = kv.Value
			case "vcs.modified":
				b.GitDirty = kv.Value == "true"
			}
		}
	}
	return b
}

// Server is a running diagnostics endpoint.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	opt   Options
	flush sync.Once
}

// Start listens on addr (":0" picks a free port) and serves the
// diagnostics handler in a background goroutine.
func Start(addr string, opt Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, opt: opt, srv: &http.Server{
		Handler:           Handler(opt),
		ReadHeaderTimeout: 5 * time.Second,
	}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:43121").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops the server gracefully: new connections are refused while
// in-flight scrapes run to completion, bounded by ctx — a scrape still
// open at the deadline is cut off by an immediate close. The final metrics
// snapshot (when configured) is written either way.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		if cerr := s.srv.Close(); cerr != nil {
			err = cerr
		}
	}
	if ferr := s.writeFinalSnapshot(); ferr != nil && err == nil {
		err = ferr
	}
	return err
}

// Close stops the server immediately, dropping in-flight scrapes. The
// final metrics snapshot (when configured) is still written.
func (s *Server) Close() error {
	err := s.srv.Close()
	if ferr := s.writeFinalSnapshot(); ferr != nil && err == nil {
		err = ferr
	}
	return err
}

// writeFinalSnapshot flushes the registry once per Server lifetime.
func (s *Server) writeFinalSnapshot() error {
	if s.opt.FinalSnapshotPath == "" {
		return nil
	}
	var err error
	s.flush.Do(func() {
		var f *os.File
		f, err = os.Create(s.opt.FinalSnapshotPath)
		if err != nil {
			return
		}
		if werr := s.opt.registry().WritePrometheus(f); werr != nil {
			f.Close()
			err = werr
			return
		}
		err = f.Close()
	})
	return err
}
