package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a tracer deterministically: every call to now advances
// by step.
func fakeClock(t *Tracer, step time.Duration) {
	var tick time.Duration
	t.nowFn = func() time.Duration {
		tick += step
		return tick
	}
}

func TestSpanNesting(t *testing.T) {
	tr := New()
	fakeClock(tr, time.Millisecond)
	outer := tr.Main().Start("outer")
	inner := tr.Main().Start("inner")
	inner.End()
	outer.End()

	evs := tr.Main().events
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// End order: inner completes first.
	in, out := evs[0], evs[1]
	if in.name != "inner" || out.name != "outer" {
		t.Fatalf("event order wrong: %q, %q", in.name, out.name)
	}
	if in.start <= out.start {
		t.Fatalf("inner must start after outer: %v vs %v", in.start, out.start)
	}
	if in.start+in.dur > out.start+out.dur {
		t.Fatalf("inner must end before outer: inner ends %v, outer ends %v",
			in.start+in.dur, out.start+out.dur)
	}
}

func TestConcurrentRanksDisjointTracks(t *testing.T) {
	tr := New()
	Enable(tr)
	defer Disable()

	const p = 8
	tracks := make([]*Track, p)
	for r := 0; r < p; r++ {
		tracks[r] = tr.Track(fmt.Sprintf("rank %d", r))
	}
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr.BindGoroutine(tracks[rank])
			defer tr.UnbindGoroutine()
			for i := 0; i < 10; i++ {
				// Package-level Start must resolve to this rank's track.
				sp := Start("step")
				sp.End(Int64("rank", int64(rank)))
			}
		}(r)
	}
	wg.Wait()

	if got := len(tr.Tracks()); got != p+1 { // + main
		t.Fatalf("got %d tracks, want %d", got, p+1)
	}
	if n := len(tr.Main().events); n != 0 {
		t.Fatalf("main track has %d stray events", n)
	}
	for r, trk := range tracks {
		if len(trk.events) != 10 {
			t.Fatalf("rank %d: got %d events, want 10", r, len(trk.events))
		}
		for _, e := range trk.events {
			if len(e.attrs) != 1 || e.attrs[0].Val != int64(r) {
				t.Fatalf("rank %d: event leaked from another goroutine: %+v", r, e)
			}
		}
	}
}

func TestDisabledPathDoesNotAllocate(t *testing.T) {
	Disable()
	allocs := testing.AllocsPerRun(200, func() {
		sp := Start("hot")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f times per op, want 0", allocs)
	}
	// Nil-track handles (the un-traced distributed path) are free too.
	var trk *Track
	allocs = testing.AllocsPerRun(200, func() {
		sp := trk.Start("hot")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-track span path allocates %.1f times per op, want 0", allocs)
	}
}

func TestReportAggregation(t *testing.T) {
	tr := New()
	fakeClock(tr, time.Millisecond)
	r0 := tr.Track("rank 0")
	r1 := tr.Track("rank 1")
	for i := 0; i < 3; i++ {
		sp := r0.Start("allreduce")
		sp.End(Int64("bytes", 100), Int64("msgs", 2))
	}
	sp := r1.Start("allreduce")
	sp.End(Int64("bytes", 50), Int64("msgs", 1))
	sp = r1.Start("spmm")
	sp.End()

	rep := tr.Report()
	stats := map[string]SpanStat{}
	for _, s := range rep.Spans {
		stats[s.Name] = s
	}
	ar := stats["allreduce"]
	if ar.Count != 4 {
		t.Fatalf("allreduce count = %d, want 4", ar.Count)
	}
	if ar.Attrs["bytes"] != 350 || ar.Attrs["msgs"] != 7 {
		t.Fatalf("allreduce attrs wrong: %v", ar.Attrs)
	}
	if ar.TotalNs <= 0 || ar.MaxNs <= 0 || ar.MaxNs > ar.TotalNs {
		t.Fatalf("allreduce timing stats wrong: %+v", ar)
	}
	if stats["spmm"].Count != 1 {
		t.Fatalf("spmm count = %d, want 1", stats["spmm"].Count)
	}
	if len(rep.Tracks) != 3 {
		t.Fatalf("got %d track stats, want 3", len(rep.Tracks))
	}
	byTrack := map[string]TrackStat{}
	for _, ts := range rep.Tracks {
		byTrack[ts.Track] = ts
	}
	if byTrack["rank 0"].Attrs["bytes"] != 300 || byTrack["rank 1"].Attrs["bytes"] != 50 {
		t.Fatalf("per-rank byte totals wrong: %v", byTrack)
	}
}

// TestReportCountsOpenSpans: a live snapshot must not silently drop spans
// that are still in flight — they show up in the per-track open count.
func TestReportCountsOpenSpans(t *testing.T) {
	tr := New()
	fakeClock(tr, time.Millisecond)
	r0 := tr.Track("rank 0")
	done := r0.Start("allreduce")
	done.End()
	inFlight := r0.Start("spmm") // never ended before the snapshot
	alsoInFlight := tr.Main().Start("epoch")

	rep := tr.Report()
	byTrack := map[string]TrackStat{}
	for _, ts := range rep.Tracks {
		byTrack[ts.Track] = ts
	}
	if got := byTrack["rank 0"]; got.Spans != 1 || got.Open != 1 {
		t.Fatalf("rank 0 stats = %+v, want 1 completed + 1 open", got)
	}
	if got := byTrack["main"]; got.Spans != 0 || got.Open != 1 {
		t.Fatalf("main stats = %+v, want 0 completed + 1 open", got)
	}

	// After the spans end, a fresh snapshot reports them closed.
	inFlight.End()
	alsoInFlight.End()
	rep = tr.Report()
	for _, ts := range rep.Tracks {
		if ts.Open != 0 {
			t.Fatalf("track %q still reports %d open spans after End", ts.Track, ts.Open)
		}
	}
	// And the open count survives the JSON round trip.
	tr2 := New()
	fakeClock(tr2, time.Millisecond)
	tr2.Main().Start("pending") // left open
	var buf bytes.Buffer
	if err := tr2.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Tracks) != 1 || parsed.Tracks[0].Open != 1 {
		t.Fatalf("open count lost in round trip: %+v", parsed.Tracks)
	}
}

func TestSampleDisabledIsNoop(t *testing.T) {
	Disable()
	allocs := testing.AllocsPerRun(200, func() { Sample("arena bytes", 1) })
	if allocs != 0 {
		t.Fatalf("disabled Sample allocates %.1f times per op, want 0", allocs)
	}
}

func TestReportRoundTrip(t *testing.T) {
	tr := New()
	fakeClock(tr, time.Millisecond)
	sp := tr.Main().Start("work")
	sp.End(Int64("bytes", 7))
	path := t.TempDir() + "/report.json"
	if err := tr.WriteReportFile(path); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "work" || rep.Spans[0].Attrs["bytes"] != 7 {
		t.Fatalf("round-tripped report wrong: %+v", rep)
	}
}

func TestCLIWritesAllOutputs(t *testing.T) {
	dir := t.TempDir()
	c := CLI{
		Trace:      dir + "/trace.json",
		Metrics:    dir + "/metrics.json",
		CPUProfile: dir + "/cpu.pprof",
		MemProfile: dir + "/mem.pprof",
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("CLI.Start did not enable tracing")
	}
	sp := Start("work")
	time.Sleep(time.Millisecond)
	sp.End()
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("CLI.Stop did not disable tracing")
	}
	for _, p := range []string{c.Trace, c.Metrics, c.CPUProfile, c.MemProfile} {
		if fi, err := osStat(p); err != nil || fi == 0 {
			t.Fatalf("output %s missing or empty (err %v, size %d)", p, err, fi)
		}
	}
}
