package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"

	"agnn/internal/obs/causal"
	"agnn/internal/obs/metrics"
)

// Aggregated run-report: the compact JSON summary written by -metrics and
// consumed by cmd/agnn-report. It collapses the trace into per-span-name
// statistics (count, total, max, summed integer attributes) plus per-track
// totals, which for distributed runs are the per-rank communication bytes
// and message counts.

// SpanStat aggregates every span sharing one name.
type SpanStat struct {
	Name    string           `json:"name"`
	Count   int64            `json:"count"`
	TotalNs int64            `json:"total_ns"`
	MaxNs   int64            `json:"max_ns"`
	Attrs   map[string]int64 `json:"attrs,omitempty"` // summed over spans
}

// TrackStat aggregates one track (one rank, in distributed runs). Open
// counts spans still in flight at snapshot time: a post-mortem report has
// Open == 0 everywhere, while a live /report snapshot taken mid-superstep
// reports how many regions each rank has entered but not finished — the
// signal that the span stats undercount ongoing work.
type TrackStat struct {
	Track string           `json:"track"`
	Spans int64            `json:"spans"`
	Open  int64            `json:"open,omitempty"`
	Attrs map[string]int64 `json:"attrs,omitempty"` // summed over the track's spans
}

// Report is the aggregated run-report. Metrics carries the live-registry
// snapshot (counters, gauges, histogram quantiles) when the producer had
// one — the CLI attaches metrics.Default at exit, the /report endpoint at
// request time.
type Report struct {
	Spans  []SpanStat  `json:"spans"`
	Tracks []TrackStat `json:"tracks"`
	// CriticalPath is the cross-rank causal reconstruction (present when
	// the run had causal tracing enabled and recorded messages).
	CriticalPath *causal.Summary   `json:"critical_path,omitempty"`
	Metrics      *metrics.Snapshot `json:"metrics,omitempty"`
}

// Report aggregates the tracer's completed spans. Span stats are sorted by
// total time, heaviest first; tracks stay in id order.
func (t *Tracer) Report() *Report {
	byName := map[string]*SpanStat{}
	var order []string
	rep := &Report{}
	for _, tr := range t.Tracks() {
		tr.mu.Lock()
		evs := append([]event(nil), tr.events...)
		tr.mu.Unlock()
		ts := TrackStat{Track: tr.name, Open: tr.Open()}
		for _, e := range evs {
			if e.flow != flowNone {
				continue // flow endpoints are not spans
			}
			s := byName[e.name]
			if s == nil {
				s = &SpanStat{Name: e.name}
				byName[e.name] = s
				order = append(order, e.name)
			}
			s.Count++
			s.TotalNs += e.dur.Nanoseconds()
			if ns := e.dur.Nanoseconds(); ns > s.MaxNs {
				s.MaxNs = ns
			}
			ts.Spans++
			for _, a := range e.attrs {
				if s.Attrs == nil {
					s.Attrs = map[string]int64{}
				}
				s.Attrs[a.Key] += a.Val
				if ts.Attrs == nil {
					ts.Attrs = map[string]int64{}
				}
				ts.Attrs[a.Key] += a.Val
			}
		}
		rep.Tracks = append(rep.Tracks, ts)
	}
	for _, n := range order {
		rep.Spans = append(rep.Spans, *byName[n])
	}
	sort.SliceStable(rep.Spans, func(i, j int) bool {
		return rep.Spans[i].TotalNs > rep.Spans[j].TotalNs
	})
	return rep
}

// WriteJSON serializes the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// WriteReportFile aggregates and writes the run-report to path.
func (t *Tracer) WriteReportFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Report().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport parses a run-report previously written by WriteReportFile.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// ReadReportFile parses the run-report at path.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadReport(f)
}
