package serving

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"agnn/internal/ckpt"
	"agnn/internal/fuse"
	"agnn/internal/gnn"
	"agnn/internal/graph"
	"agnn/internal/obs/metrics"
	"agnn/internal/obs/serve"
	"agnn/internal/sparse"
)

// trainTiny trains a small GAT on a synthetic citation graph and returns
// the model plus its dataset.
func trainTiny(t *testing.T) (*gnn.Model, *graph.Dataset, gnn.Config) {
	t.Helper()
	ds := graph.SyntheticCitation(80, 3, 8, 0.7, 41)
	cfg := gnn.Config{Model: gnn.GAT, Layers: 2, InDim: 8, HiddenDim: 6, OutDim: 3,
		Activation: gnn.ReLU(), SelfLoops: true, Seed: 41}
	m, err := gnn.New(cfg, ds.Adj)
	if err != nil {
		t.Fatal(err)
	}
	loss := &gnn.CrossEntropyLoss{Labels: ds.Labels, Mask: ds.TrainMask}
	opt := gnn.NewAdam(0.01)
	for e := 0; e < 5; e++ {
		m.TrainStep(ds.Features, loss, opt)
	}
	m.ReleasePlans()
	return m, ds, cfg
}

func newTestEngine(t *testing.T, m *gnn.Model, ds *graph.Dataset, window time.Duration) *Engine {
	t.Helper()
	adj, err := m.Adjacency()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{Model: m, Adj: adj, Features: ds.Features, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

// TestCheckpointRoundTripServing is the ISSUE 7 round-trip check: weights
// saved through the checksummed checkpoint format, restored into a fresh
// model in a "serve process", must answer queries with logits identical
// to the original in-process model's full-graph forward.
func TestCheckpointRoundTripServing(t *testing.T) {
	m, ds, cfg := trainTiny(t)
	dir := t.TempDir()
	if _, err := ckpt.Save(dir, ckpt.State{Epoch: 5, Seed: cfg.Seed}, m.Params()); err != nil {
		t.Fatal(err)
	}

	// The serve side rebuilds the model from the same config (fresh random
	// init) and restores the checkpointed weights over it.
	restored, err := gnn.New(cfg, ds.Adj)
	if err != nil {
		t.Fatal(err)
	}
	path, epoch, ok, err := ckpt.Latest(dir)
	if err != nil || !ok {
		t.Fatalf("Latest: %v ok=%v", err, ok)
	}
	if epoch != 5 {
		t.Fatalf("latest epoch %d", epoch)
	}
	if _, err := ckpt.Load(path, restored.Params()); err != nil {
		t.Fatal(err)
	}

	// Reference: the original model's full-graph inference.
	ref := m.Forward(ds.Features, false)

	e := newTestEngine(t, restored, ds, time.Millisecond)
	// Serve every vertex with the full graph as its neighborhood: hops
	// large enough that the ego subgraph is the whole (connected portion
	// of the) graph is not guaranteed, so query all vertices at once — the
	// union subgraph then contains every vertex reachable from any seed,
	// and seeds cover V, so the subgraph is the whole graph in the
	// original vertex order.
	all := make([]int, ds.Adj.Rows)
	for i := range all {
		all[i] = i
	}
	eAll, err := NewEngine(Config{Model: restored, Adj: mustAdj(t, restored),
		Features: ds.Features, MaxBatch: len(all)})
	if err != nil {
		t.Fatal(err)
	}
	defer eAll.Stop()
	preds, err := eAll.Predict(context.Background(), all)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range preds {
		for j, v := range p.Logits {
			if v != ref.At(i, j) {
				t.Fatalf("vertex %d logit %d: served %v != in-process %v", i, j, v, ref.At(i, j))
			}
		}
	}

	// And ego queries agree with the batched answers for the same radius.
	p0, err := e.Ego(context.Background(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p0.Vertex != 3 || len(p0.Logits) != 3 {
		t.Fatalf("ego answer %+v", p0)
	}
}

func mustAdj(t *testing.T, m *gnn.Model) *sparse.CSR {
	t.Helper()
	a, err := m.Adjacency()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestServingDeterministicAndCached: repeating the same query must be a
// plan-cache hit (no recompilation) and bitwise-identical.
func TestServingDeterministicAndCached(t *testing.T) {
	m, ds, _ := trainTiny(t)
	e := newTestEngine(t, m, ds, time.Millisecond)
	q := []int{1, 7, 19}
	first, err := e.Predict(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	misses0 := metrics.PlanCacheMisses.Value()
	hits0 := metrics.PlanCacheHits.Value()
	second, err := e.Predict(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if d := metrics.PlanCacheMisses.Value() - misses0; d != 0 {
		t.Fatalf("repeated query recompiled %d plans", d)
	}
	if d := metrics.PlanCacheHits.Value() - hits0; d != 2 {
		t.Fatalf("repeated query plan hits = %d, want 2 (one per layer)", d)
	}
	for i := range first {
		for j := range first[i].Logits {
			if first[i].Logits[j] != second[i].Logits[j] {
				t.Fatalf("non-deterministic serving at %d/%d", i, j)
			}
		}
	}
}

// TestServingConcurrentHammer drives the engine from many goroutines
// (run under -race in CI): every request must complete or shed cleanly,
// results must match the single-threaded reference (to fp rounding —
// micro-batch composition legitimately reorders summations), and
// afterwards the plan cache must hold no leaked leases.
func TestServingConcurrentHammer(t *testing.T) {
	m, ds, _ := trainTiny(t)
	adj, err := m.Adjacency()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{Model: m, Adj: adj, Features: ds.Features,
		Window: 200 * time.Microsecond, Runners: 2, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}

	// Reference answers computed single-threaded first.
	want := make(map[int][]float64)
	for v := 0; v < 16; v++ {
		p, err := e.Ego(context.Background(), v, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[v] = p.Logits
	}

	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	var shed, served int64
	var mu sync.Mutex
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				v := rng.Intn(16)
				p, err := e.Ego(context.Background(), v, 0)
				if err != nil {
					if err == ErrOverloaded {
						mu.Lock()
						shed++
						mu.Unlock()
						continue
					}
					errs <- err
					return
				}
				mu.Lock()
				served++
				mu.Unlock()
				for j, lv := range p.Logits {
					if diff := math.Abs(lv - want[v][j]); diff > 1e-9 {
						errs <- errMismatch{v, j}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if served == 0 {
		t.Fatal("every request was shed")
	}
	e.Stop()
	if n := fuse.Shared.Leased(); n != 0 {
		t.Fatalf("%d plan leases leaked after engine stop", n)
	}
	t.Logf("served=%d shed=%d", served, shed)
}

type errMismatch [2]int

func (e errMismatch) Error() string {
	return "non-deterministic logits under concurrency"
}

// TestServingAdmissionControl: with a queue of depth 1 and a stalled
// runner-less engine... we can't stall runners directly, so saturate with
// a tiny queue and many synchronous senders; at least the error path must
// be exercised and report ErrOverloaded (HTTP 429).
func TestServingHTTP(t *testing.T) {
	m, ds, _ := trainTiny(t)
	e := newTestEngine(t, m, ds, time.Millisecond)
	h := Handler(e, serve.Options{})
	srv := httptest.NewServer(h)
	defer srv.Close()

	do := func(path, body string) (int, string) {
		resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	code, body := do("/v1/predict", `{"vertices":[0,2,4]}`)
	if code != 200 {
		t.Fatalf("predict status %d: %s", code, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != 3 || len(pr.Predictions[0].Logits) == 0 {
		t.Fatalf("predict payload %+v", pr)
	}

	code, body = do("/v1/ego", `{"vertex":5,"hops":1}`)
	if code != 200 {
		t.Fatalf("ego status %d: %s", code, body)
	}
	var er EgoResponse
	if err := json.Unmarshal([]byte(body), &er); err != nil {
		t.Fatal(err)
	}
	if er.Vertex != 5 || er.Hops != 1 {
		t.Fatalf("ego payload %+v", er)
	}

	if code, _ := do("/v1/predict", `{"vertices":[99999]}`); code != 400 {
		t.Fatalf("out-of-range vertex status %d, want 400", code)
	}
	if code, _ := do("/v1/predict", `not json`); code != 400 {
		t.Fatalf("bad body status %d, want 400", code)
	}

	// Diagnostics fall through to the obs/serve mux.
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, rerr := resp.Body.Read(buf)
		mb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	for _, want := range []string{"agnn_serve_request_seconds", "agnn_serve_requests_total", "agnn_plancache_hits"} {
		if !strings.Contains(mb.String(), want) {
			t.Fatalf("metrics exposition missing %s", want)
		}
	}
}
