package serving

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"agnn/internal/obs/serve"
)

// TestPredictTracedTimingPopulated: the traced entry points must return a
// Timing with a non-empty trace ID and plausible per-stage decomposition —
// plan time and batch seeds are always observable for a served request.
func TestPredictTracedTimingPopulated(t *testing.T) {
	m, ds, _ := trainTiny(t)
	e := newTestEngine(t, m, ds, time.Millisecond)

	preds, tm, err := e.PredictTraced(context.Background(), []int{1, 3}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 {
		t.Fatalf("want 2 predictions, got %d", len(preds))
	}
	if tm.TraceID == "" {
		t.Error("traced predict returned empty trace ID")
	}
	if tm.QueueNs < 0 || tm.BatchNs < 0 || tm.ExpandNs < 0 {
		t.Errorf("negative stage time: %+v", tm)
	}
	if tm.PlanNs <= 0 {
		t.Errorf("plan stage %dns, want > 0", tm.PlanNs)
	}
	if tm.Seeds < 2 {
		t.Errorf("batch seeds %d, want >= 2 (the request's own vertices)", tm.Seeds)
	}

	// A caller-supplied trace ID must ride through unchanged.
	_, tm2, err := e.PredictTraced(context.Background(), []int{0}, "client-abc-1")
	if err != nil {
		t.Fatal(err)
	}
	if tm2.TraceID != "client-abc-1" {
		t.Errorf("trace ID %q, want caller's client-abc-1", tm2.TraceID)
	}

	// Ego path shares the machinery.
	_, tm3, err := e.EgoTraced(context.Background(), 5, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if tm3.TraceID == "" || tm3.PlanNs <= 0 {
		t.Errorf("ego timing %+v", tm3)
	}
}

// TestNewTraceIDUnique: IDs must be unique within a process (monotonic
// counter) and carry the process prefix.
func TestNewTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
		if !strings.Contains(id, "-") {
			t.Fatalf("trace ID %s missing prefix-counter separator", id)
		}
	}
}

// TestTraceHeaderPropagation: the HTTP layer must echo X-Agnn-Trace on
// success AND error responses, honor a client-supplied ID, and embed the
// per-stage timing in the response body.
func TestTraceHeaderPropagation(t *testing.T) {
	m, ds, _ := trainTiny(t)
	e := newTestEngine(t, m, ds, time.Millisecond)
	h := Handler(e, serve.Options{})
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func(path, body, trace string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("POST", srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if trace != "" {
			req.Header.Set(TraceHeader, trace)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Server-assigned ID on a success response, echoed in header and body.
	resp := post("/v1/predict", `{"vertices":[0,2]}`, "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("predict status %d: %s", resp.StatusCode, body)
	}
	hdr := resp.Header.Get(TraceHeader)
	if hdr == "" {
		t.Fatal("success response missing X-Agnn-Trace header")
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Trace == nil {
		t.Fatal("predict response missing trace timing")
	}
	if pr.Trace.TraceID != hdr {
		t.Errorf("body trace ID %q != header %q", pr.Trace.TraceID, hdr)
	}
	if pr.Trace.PlanNs <= 0 || pr.Trace.Seeds <= 0 {
		t.Errorf("response timing not populated: %+v", pr.Trace)
	}

	// Client-supplied ID must round-trip through header and body.
	resp = post("/v1/predict", `{"vertices":[1]}`, "edge-req-42")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "edge-req-42" {
		t.Errorf("header trace %q, want edge-req-42", got)
	}
	var pr2 PredictResponse
	if err := json.Unmarshal(body, &pr2); err != nil {
		t.Fatal(err)
	}
	if pr2.Trace == nil || pr2.Trace.TraceID != "edge-req-42" {
		t.Errorf("body trace %+v, want edge-req-42", pr2.Trace)
	}

	// Error responses still carry the header, so failed requests remain
	// correlatable in client logs.
	resp = post("/v1/predict", `{"vertices":[99999]}`, "edge-req-43")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("out-of-range status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceHeader); got != "edge-req-43" {
		t.Errorf("error response trace %q, want edge-req-43", got)
	}
	resp = post("/v1/ego", `not json`, "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad-body status %d, want 400", resp.StatusCode)
	}
	if resp.Header.Get(TraceHeader) == "" {
		t.Error("bad-body error response missing X-Agnn-Trace header")
	}

	// Ego success carries timing too.
	resp = post("/v1/ego", `{"vertex":4,"hops":1}`, "")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ego status %d: %s", resp.StatusCode, body)
	}
	var er EgoResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Trace == nil || er.Trace.TraceID == "" {
		t.Errorf("ego response trace %+v", er.Trace)
	}
}
