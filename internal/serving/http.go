package serving

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"agnn/internal/obs/metrics"
	"agnn/internal/obs/serve"
)

// PredictRequest is the POST /v1/predict body.
type PredictRequest struct {
	Vertices []int `json:"vertices"`
}

// PredictResponse is the /v1/predict reply.
type PredictResponse struct {
	Predictions []Prediction `json:"predictions"`
}

// EgoRequest is the POST /v1/ego body. Hops 0 uses the model depth.
type EgoRequest struct {
	Vertex int `json:"vertex"`
	Hops   int `json:"hops"`
}

// EgoResponse is the /v1/ego reply.
type EgoResponse struct {
	Prediction
	Hops int `json:"hops"`
}

// Handler returns the serving mux: POST /v1/predict and POST /v1/ego on
// top of the standard diagnostics endpoints (/metrics, /healthz, /report,
// pprof) from internal/obs/serve. Every inference endpoint records a
// per-endpoint request counter and latency histogram, plus live p50/p99
// gauges derived from the histogram.
func Handler(e *Engine, opt serve.Options) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", serve.Handler(opt))
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		instrument("predict", w, r, func() (any, error) {
			var req PredictRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				return nil, badRequest{err}
			}
			preds, err := e.Predict(r.Context(), req.Vertices)
			if err != nil {
				return nil, err
			}
			return PredictResponse{Predictions: preds}, nil
		})
	})
	mux.HandleFunc("/v1/ego", func(w http.ResponseWriter, r *http.Request) {
		instrument("ego", w, r, func() (any, error) {
			var req EgoRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				return nil, badRequest{err}
			}
			p, err := e.Ego(r.Context(), req.Vertex, req.Hops)
			if err != nil {
				return nil, err
			}
			hops := req.Hops
			if hops <= 0 {
				hops = e.Hops()
			}
			return EgoResponse{Prediction: p, Hops: hops}, nil
		})
	})
	return mux
}

// badRequest marks a client error (malformed body, bad vertex id) → 400.
type badRequest struct{ error }

// instrument runs one inference handler with method enforcement, latency
// accounting and error → status mapping.
func instrument(endpoint string, w http.ResponseWriter, r *http.Request, fn func() (any, error)) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	metrics.ServeRequestsTotal.With(endpoint).Inc()
	t0 := time.Now()
	payload, err := fn()
	dt := time.Since(t0).Seconds()
	h := metrics.ServeRequestSeconds.With(endpoint)
	h.Observe(dt)
	metrics.ServeLatencyP50.With(endpoint).Set(h.Quantile(0.5))
	metrics.ServeLatencyP99.With(endpoint).Set(h.Quantile(0.99))
	if err != nil {
		var br badRequest
		switch {
		case errors.As(err, &br), errors.Is(err, ErrBadRequest):
			http.Error(w, err.Error(), http.StatusBadRequest)
		case errors.Is(err, ErrOverloaded):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.Is(err, ErrStopped):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
