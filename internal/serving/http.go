package serving

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"agnn/internal/obs/metrics"
	"agnn/internal/obs/serve"
)

// TraceHeader is the request/response header carrying the per-request
// trace ID. A client-supplied value is propagated through the pipeline
// and echoed back; otherwise the engine allocates one. Either way the
// response's trace timing decomposes the request's latency into queue,
// batch, expand and plan stages.
const TraceHeader = "X-Agnn-Trace"

// PredictRequest is the POST /v1/predict body.
type PredictRequest struct {
	Vertices []int `json:"vertices"`
}

// PredictResponse is the /v1/predict reply.
type PredictResponse struct {
	Predictions []Prediction `json:"predictions"`
	Trace       *Timing      `json:"trace,omitempty"`
}

// EgoRequest is the POST /v1/ego body. Hops 0 uses the model depth.
type EgoRequest struct {
	Vertex int `json:"vertex"`
	Hops   int `json:"hops"`
}

// EgoResponse is the /v1/ego reply.
type EgoResponse struct {
	Prediction
	Hops  int     `json:"hops"`
	Trace *Timing `json:"trace,omitempty"`
}

// Handler returns the serving mux: POST /v1/predict and POST /v1/ego on
// top of the standard diagnostics endpoints (/metrics, /healthz, /report,
// pprof) from internal/obs/serve. Every inference endpoint records a
// per-endpoint request counter and latency histogram, plus live p50/p99
// gauges derived from the histogram.
func Handler(e *Engine, opt serve.Options) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", serve.Handler(opt))
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		instrument("predict", w, r, func() (any, error) {
			trace := traceFor(w, r)
			var req PredictRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				return nil, badRequest{err}
			}
			preds, tm, err := e.PredictTraced(r.Context(), req.Vertices, trace)
			if err != nil {
				return nil, err
			}
			return PredictResponse{Predictions: preds, Trace: &tm}, nil
		})
	})
	mux.HandleFunc("/v1/ego", func(w http.ResponseWriter, r *http.Request) {
		instrument("ego", w, r, func() (any, error) {
			trace := traceFor(w, r)
			var req EgoRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				return nil, badRequest{err}
			}
			p, tm, err := e.EgoTraced(r.Context(), req.Vertex, req.Hops, trace)
			if err != nil {
				return nil, err
			}
			hops := req.Hops
			if hops <= 0 {
				hops = e.Hops()
			}
			return EgoResponse{Prediction: p, Hops: hops, Trace: &tm}, nil
		})
	})
	return mux
}

// traceFor resolves the request's trace ID (client-supplied or fresh) and
// echoes it on the response before the body — error responses carry it too.
func traceFor(w http.ResponseWriter, r *http.Request) string {
	trace := r.Header.Get(TraceHeader)
	if trace == "" {
		trace = NewTraceID()
	}
	w.Header().Set(TraceHeader, trace)
	return trace
}

// badRequest marks a client error (malformed body, bad vertex id) → 400.
type badRequest struct{ error }

// instrument runs one inference handler with method enforcement, latency
// accounting and error → status mapping.
func instrument(endpoint string, w http.ResponseWriter, r *http.Request, fn func() (any, error)) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	metrics.ServeRequestsTotal.With(endpoint).Inc()
	t0 := time.Now()
	payload, err := fn()
	dt := time.Since(t0).Seconds()
	h := metrics.ServeRequestSeconds.With(endpoint)
	h.Observe(dt)
	metrics.ServeLatencyP50.With(endpoint).Set(h.Quantile(0.5))
	metrics.ServeLatencyP99.With(endpoint).Set(h.Quantile(0.99))
	if err != nil {
		var br badRequest
		switch {
		case errors.As(err, &br), errors.Is(err, ErrBadRequest):
			http.Error(w, err.Error(), http.StatusBadRequest)
		case errors.Is(err, ErrOverloaded):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.Is(err, ErrStopped):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
