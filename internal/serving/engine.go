// Package serving is the online-inference side of the repo: it takes a
// trained model (typically restored from an internal/ckpt checkpoint), the
// processed adjacency it was built over, and the full feature matrix, and
// answers per-vertex classification queries over HTTP.
//
// The execution strategy is the paper's global tensor formulation applied
// to serving: a query for vertices S is answered by extracting the induced
// subgraph of S's h-hop neighborhood, rebinding the model to it, and
// running one compiled-plan forward over the whole subgraph. Because plans
// resolve through the process-wide cache (internal/fuse), a repeated query
// structure — the common case under load, and always the case for repeated
// identical queries — executes with zero recompilation.
//
// Requests are micro-batched: a runner collects queries for up to Window
// (or MaxBatch seeds), unions their seed sets, and answers them with one
// subgraph execution. Admission control is a bounded queue — when it is
// full the engine sheds load with ErrOverloaded rather than queuing
// unboundedly (the HTTP layer maps this to 429).
package serving

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"agnn/internal/gnn"
	"agnn/internal/graph"
	"agnn/internal/obs/metrics"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// ErrOverloaded is returned when the admission queue is full. HTTP callers
// receive 429 Too Many Requests.
var ErrOverloaded = errors.New("serving: admission queue full")

// ErrStopped is returned for requests caught in a stopping engine.
var ErrStopped = errors.New("serving: engine stopped")

// ErrBadRequest wraps client-side errors (empty or out-of-range vertex
// lists). HTTP callers receive 400 Bad Request.
var ErrBadRequest = errors.New("serving: bad request")

// Config parameterizes an Engine.
type Config struct {
	Model    *gnn.Model    // trained model (layers bound to Adj)
	Adj      *sparse.CSR   // processed adjacency (Model.Adjacency())
	Features *tensor.Dense // full n×k feature matrix

	// Hops is the neighborhood radius of a prediction subgraph. 0 means
	// the model depth (every layer aggregates one hop).
	Hops int
	// MaxBatch caps the number of distinct seed vertices answered by one
	// compiled execution (default 64).
	MaxBatch int
	// Window is how long a runner waits to fill a micro-batch after the
	// first request arrives (default 2ms).
	Window time.Duration
	// QueueDepth bounds the admission queue (default 4×MaxBatch requests).
	QueueDepth int
	// Runners is the number of batch-execution goroutines (default 1).
	// Each runner rebinds its own layer structs per batch, so runners
	// share only the parameter buffers (read-only during inference) and
	// the plan cache (concurrency-safe).
	Runners int
}

func (c Config) withDefaults() (Config, error) {
	if c.Model == nil || c.Adj == nil || c.Features == nil {
		return c, errors.New("serving: Config requires Model, Adj and Features")
	}
	if c.Features.Rows != c.Adj.Rows {
		return c, fmt.Errorf("serving: %d feature rows for %d vertices", c.Features.Rows, c.Adj.Rows)
	}
	if c.Hops <= 0 {
		c.Hops = 0
		for _, l := range c.Model.Layers {
			if _, ok := l.(*gnn.DropoutLayer); !ok {
				c.Hops++
			}
		}
		if c.Hops == 0 {
			c.Hops = 1
		}
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.Runners <= 0 {
		c.Runners = 1
	}
	return c, nil
}

// Prediction is one vertex's answer.
type Prediction struct {
	Vertex int       `json:"vertex"`
	Class  int       `json:"class"`
	Logits []float64 `json:"logits"`
}

// Timing decomposes one request's latency along the serving pipeline:
// admission-queue wait, micro-batch collection wait, ego expansion, and
// compiled-plan execution. ExpandNs/PlanNs are shared by every request in
// the same micro-batch; QueueNs/BatchNs are per request. A p99 outlier
// with a large QueueNs is an admission problem, a large BatchNs points at
// the Window, and a large PlanNs at the query structure itself.
type Timing struct {
	TraceID  string `json:"trace_id,omitempty"` // request trace ID (X-Agnn-Trace)
	QueueNs  int64  `json:"queue_ns"`           // enqueue → picked up by a runner
	BatchNs  int64  `json:"batch_ns"`           // picked up → micro-batch closed
	ExpandNs int64  `json:"expand_ns"`          // seed union → induced subgraph + features
	PlanNs   int64  `json:"plan_ns"`            // rebind + planned forward + output copy
	Seeds    int    `json:"batch_seeds"`        // distinct seeds in the shared execution
}

// tracePrefix makes trace IDs unique across processes; the counter makes
// them unique within one.
var tracePrefix = func() string {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

var traceCounter atomic.Uint64

// NewTraceID returns a process-unique request trace ID
// ("<8 hex chars>-<counter>").
func NewTraceID() string {
	return fmt.Sprintf("%s-%d", tracePrefix, traceCounter.Add(1))
}

// request is one enqueued query: answer these seeds at this radius.
type request struct {
	seeds []int
	hops  int
	reply chan result

	trace string    // request trace ID (propagated into the reply's Timing)
	enq   time.Time // admission time
	pick  time.Time // when a runner dequeued it
}

type result struct {
	preds  []Prediction
	timing Timing
	err    error
}

// Engine executes micro-batched subgraph inference.
type Engine struct {
	cfg  Config
	reqs chan request

	mu      sync.Mutex
	stopped bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewEngine validates the config and starts the runner goroutines.
func NewEngine(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, reqs: make(chan request, cfg.QueueDepth), done: make(chan struct{})}
	e.wg.Add(cfg.Runners)
	for i := 0; i < cfg.Runners; i++ {
		go e.runner()
	}
	return e, nil
}

// Stop drains the engine: no new requests are admitted, queued requests
// are answered with ErrStopped, and the runners exit.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	close(e.done)
	e.mu.Unlock()
	e.wg.Wait()
	// Fail anything that was admitted but never picked up.
	for {
		select {
		case r := <-e.reqs:
			r.reply <- result{err: ErrStopped}
		default:
			return
		}
	}
}

// N returns the number of vertices served.
func (e *Engine) N() int { return e.cfg.Adj.Rows }

// Hops returns the default neighborhood radius.
func (e *Engine) Hops() int { return e.cfg.Hops }

// Predict answers a batch of per-vertex queries at the default radius.
// Queries may be coalesced with concurrent ones into a single compiled
// subgraph execution. Results align with vertices.
func (e *Engine) Predict(ctx context.Context, vertices []int) ([]Prediction, error) {
	preds, _, err := e.PredictTraced(ctx, vertices, "")
	return preds, err
}

// PredictTraced is Predict with an explicit trace ID ("" allocates one)
// and the request's pipeline timing decomposition.
func (e *Engine) PredictTraced(ctx context.Context, vertices []int, trace string) ([]Prediction, Timing, error) {
	return e.submit(ctx, vertices, e.cfg.Hops, trace)
}

// Ego answers one vertex at an explicit radius (hops ≤ 0 uses the
// default). It rides the same batching path; only queries with the same
// radius share an execution.
func (e *Engine) Ego(ctx context.Context, vertex, hops int) (Prediction, error) {
	p, _, err := e.EgoTraced(ctx, vertex, hops, "")
	return p, err
}

// EgoTraced is Ego with an explicit trace ID and timing decomposition.
func (e *Engine) EgoTraced(ctx context.Context, vertex, hops int, trace string) (Prediction, Timing, error) {
	if hops <= 0 {
		hops = e.cfg.Hops
	}
	preds, tm, err := e.submit(ctx, []int{vertex}, hops, trace)
	if err != nil {
		return Prediction{}, tm, err
	}
	return preds[0], tm, nil
}

func (e *Engine) submit(ctx context.Context, vertices []int, hops int, trace string) ([]Prediction, Timing, error) {
	if trace == "" {
		trace = NewTraceID()
	}
	tm := Timing{TraceID: trace}
	if len(vertices) == 0 {
		return nil, tm, fmt.Errorf("%w: empty vertex list", ErrBadRequest)
	}
	n := e.cfg.Adj.Rows
	for _, v := range vertices {
		if v < 0 || v >= n {
			return nil, tm, fmt.Errorf("%w: vertex %d outside [0,%d)", ErrBadRequest, v, n)
		}
	}
	r := request{seeds: vertices, hops: hops, reply: make(chan result, 1),
		trace: trace, enq: time.Now()}
	select {
	case <-e.done:
		return nil, tm, ErrStopped
	default:
	}
	select {
	case e.reqs <- r:
	default:
		metrics.ServeRejectedTotal.Inc()
		return nil, tm, ErrOverloaded
	}
	select {
	case res := <-r.reply:
		if res.timing.TraceID == "" {
			res.timing.TraceID = trace
		}
		return res.preds, res.timing, res.err
	case <-ctx.Done():
		return nil, tm, ctx.Err()
	case <-e.done:
		return nil, tm, ErrStopped
	}
}

// runner collects micro-batches and executes them.
func (e *Engine) runner() {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case first := <-e.reqs:
			first.pick = time.Now()
			e.runBatch(e.collect(first))
		}
	}
}

// collect gathers requests after the first until the window closes or the
// batch holds MaxBatch seed slots (counting duplicates conservatively).
func (e *Engine) collect(first request) []request {
	batch := []request{first}
	seedCount := len(first.seeds)
	timer := time.NewTimer(e.cfg.Window)
	defer timer.Stop()
	for seedCount < e.cfg.MaxBatch {
		select {
		case r := <-e.reqs:
			r.pick = time.Now()
			batch = append(batch, r)
			seedCount += len(r.seeds)
		case <-timer.C:
			return batch
		case <-e.done:
			return batch
		}
	}
	return batch
}

// runBatch groups the collected requests by radius (different radii need
// different subgraphs) and answers each group with one execution.
func (e *Engine) runBatch(batch []request) {
	byHops := make(map[int][]request)
	for _, r := range batch {
		byHops[r.hops] = append(byHops[r.hops], r)
	}
	for hops, group := range byHops {
		e.runGroup(group, hops)
	}
}

// runGroup executes one micro-batch: union the seeds, expand to the h-hop
// induced subgraph, rebind, run the compiled plans once, and slice each
// request's rows out of the shared output.
func (e *Engine) runGroup(group []request, hops int) {
	start := time.Now()
	// Union of seeds in first-seen order — the subgraph's leading rows.
	var seeds []int32
	index := make(map[int32]int)
	for _, r := range group {
		for _, v := range r.seeds {
			if _, ok := index[int32(v)]; !ok {
				index[int32(v)] = len(seeds)
				seeds = append(seeds, int32(v))
			}
		}
	}
	metrics.ServeBatchVertices.Observe(float64(len(seeds)))

	timing := func(r request, tm Timing) Timing {
		tm.TraceID = r.trace
		tm.Seeds = len(seeds)
		if !r.enq.IsZero() && !r.pick.IsZero() {
			tm.QueueNs = r.pick.Sub(r.enq).Nanoseconds()
			tm.BatchNs = start.Sub(r.pick).Nanoseconds()
		}
		metrics.ServeStageSeconds.With("queue").Observe(float64(tm.QueueNs) / 1e9)
		metrics.ServeStageSeconds.With("batch").Observe(float64(tm.BatchNs) / 1e9)
		metrics.ServeStageSeconds.With("expand").Observe(float64(tm.ExpandNs) / 1e9)
		metrics.ServeStageSeconds.With("plan").Observe(float64(tm.PlanNs) / 1e9)
		return tm
	}

	verts := Expand(e.cfg.Adj, seeds, hops)
	sub := graph.InducedSubgraph(e.cfg.Adj, verts)
	feats := tensor.NewDense(len(verts), e.cfg.Features.Cols)
	for i, v := range verts {
		copy(feats.Row(i), e.cfg.Features.Row(int(v)))
	}
	expandDone := time.Now()

	// Fresh layer structs per execution keep runners independent; the
	// parameter buffers and the plan cache are the only shared state.
	bm, err := gnn.RebindAdjacency(e.cfg.Model, sub)
	if err != nil {
		for _, r := range group {
			r.reply <- result{timing: timing(r, Timing{ExpandNs: expandDone.Sub(start).Nanoseconds()}), err: err}
		}
		return
	}
	out := bm.PlannedForward(feats)
	// The output matrix is plan-owned: copy the seed rows before the
	// leases go back to the cache.
	logits := make([][]float64, len(seeds))
	for i := range seeds {
		logits[i] = append([]float64(nil), out.Row(i)...)
	}
	bm.ReleasePlans()
	shared := Timing{
		ExpandNs: expandDone.Sub(start).Nanoseconds(),
		PlanNs:   time.Since(expandDone).Nanoseconds(),
	}

	for _, r := range group {
		preds := make([]Prediction, len(r.seeds))
		for j, v := range r.seeds {
			lg := logits[index[int32(v)]]
			preds[j] = Prediction{Vertex: v, Class: argmax(lg), Logits: lg}
		}
		r.reply <- result{preds: preds, timing: timing(r, shared)}
	}
}

func argmax(x []float64) int {
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// Expand returns the vertices of the h-hop out-neighborhood of the seeds
// in deterministic order: the seeds first (in the given order), then each
// BFS frontier sorted ascending. The order is what makes two executions of
// the same query bitwise-identical — the induced subgraph, and therefore
// the compiled plan's arithmetic, depends on it.
func Expand(a *sparse.CSR, seeds []int32, hops int) []int32 {
	verts := append([]int32(nil), seeds...)
	seen := make(map[int32]bool, len(seeds))
	for _, s := range seeds {
		seen[s] = true
	}
	frontier := seeds
	for h := 0; h < hops; h++ {
		var next []int32
		for _, v := range frontier {
			for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
				c := a.Col[p]
				if !seen[c] {
					seen[c] = true
					next = append(next, c)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		verts = append(verts, next...)
		frontier = next
	}
	return verts
}
