package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRangeCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 257, 1000, 4096} {
		seen := make([]int32, n)
		Range(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestRangeZeroAndNegative(t *testing.T) {
	called := false
	Range(0, func(_, _, _ int) { called = true })
	Range(-5, func(_, _, _ int) { called = true })
	if called {
		t.Fatal("fn called for non-positive n")
	}
}

func TestRangeWeightedCoversAllIndices(t *testing.T) {
	weights := []int64{0, 1, 1000, 3, 0, 0, 50, 50, 50, 1}
	n := 5000
	seen := make([]int32, n)
	RangeWeighted(n, func(i int) int64 { return weights[i%len(weights)] }, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestRangeWeightedAllZeroWeights(t *testing.T) {
	n := 4000
	var count int64
	RangeWeighted(n, func(int) int64 { return 0 }, func(_, lo, hi int) {
		atomic.AddInt64(&count, int64(hi-lo))
	})
	if count != int64(n) {
		t.Fatalf("covered %d of %d indices", count, n)
	}
}

func TestRangePropertyPartition(t *testing.T) {
	// Property: for any n, the emitted ranges are a disjoint partition of [0,n).
	f := func(raw uint16) bool {
		n := int(raw)
		var mu sync.Mutex
		var ranges [][2]int
		Range(n, func(_, lo, hi int) {
			mu.Lock()
			ranges = append(ranges, [2]int{lo, hi})
			mu.Unlock()
		})
		covered := 0
		for _, r := range ranges {
			if r[0] < 0 || r[1] > n || r[0] >= r[1] {
				return false
			}
			covered += r[1] - r[0]
		}
		return covered == n || (n == 0 && covered == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	if Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", Workers())
	}
	// Worker ids must stay within the cap.
	var bad int32
	Range(100000, func(id, _, _ int) {
		if id >= 2 && Workers() == 2 {
			// ids can exceed cap only if chunking produced more chunks
			// than workers; Range guarantees at most Workers chunks.
			atomic.AddInt32(&bad, 1)
		}
	})
	if bad != 0 {
		t.Fatalf("%d chunks had worker id >= cap", bad)
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatal("SetWorkers(0) should reset to >=1")
	}
}

func TestDo(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("Do did not run all thunks: %d %d %d", a, b, c)
	}
	Do(func() { atomic.AddInt32(&a, 1) }) // single-thunk fast path
	if a != 2 {
		t.Fatal("single-thunk Do did not run")
	}
}

func TestRangeWeightedSmallNRunsInline(t *testing.T) {
	count := 0
	RangeWeighted(10, func(int) int64 { return 1 }, func(w, lo, hi int) {
		if w != 0 {
			t.Fatal("small n must run on worker 0")
		}
		count += hi - lo
	})
	if count != 10 {
		t.Fatalf("covered %d", count)
	}
	RangeWeighted(0, func(int) int64 { return 1 }, func(_, _, _ int) {
		t.Fatal("fn called for n=0")
	})
}

func TestRangeWeightedParallelBalancing(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	// One extremely heavy index: its chunk should be (nearly) alone.
	n := 4000
	weight := func(i int) int64 {
		if i == 0 {
			return 1_000_000
		}
		return 1
	}
	var mu sync.Mutex
	var chunks [][2]int
	RangeWeighted(n, weight, func(_, lo, hi int) {
		mu.Lock()
		chunks = append(chunks, [2]int{lo, hi})
		mu.Unlock()
	})
	covered := 0
	var heavy [2]int
	for _, c := range chunks {
		covered += c[1] - c[0]
		if c[0] == 0 {
			heavy = c
		}
	}
	if covered != n {
		t.Fatalf("covered %d of %d", covered, n)
	}
	if heavy[1]-heavy[0] > 2 {
		t.Fatalf("heavy index chunk spans %d indices; balancing broken", heavy[1]-heavy[0])
	}
}

func TestRangeWeightedSingleWorker(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	count := 0
	RangeWeighted(5000, func(int) int64 { return 2 }, func(_, lo, hi int) {
		count += hi - lo
	})
	if count != 5000 {
		t.Fatalf("covered %d", count)
	}
}
