// Package par provides small parallel-execution helpers shared by all
// compute kernels in this repository. The kernels follow the same pattern
// the paper's CUDA implementation uses — grid-stride work distribution over
// contiguous index ranges — translated to goroutines: a persistent worker
// pool processes disjoint [lo, hi) ranges of rows or non-zeros.
//
// Work is dispatched to long-lived pool workers over a buffered channel
// (see pool.go) instead of spawning a goroutine per chunk, so overlapped
// kernels and collectives don't fight the scheduler, and the dispatch path
// performs no allocations in steady state (tasks travel by value, completion
// channels are recycled).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers is the process-wide parallelism cap. It defaults to
// runtime.GOMAXPROCS(0) and can be lowered for deterministic profiling.
var (
	mu         sync.RWMutex
	maxWorkers = runtime.GOMAXPROCS(0)
)

// SetWorkers sets the number of workers used by Range and Do.
// n < 1 resets to runtime.GOMAXPROCS(0). It returns the previous value.
func SetWorkers(n int) int {
	mu.Lock()
	defer mu.Unlock()
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// Workers reports the current worker cap.
func Workers() int {
	mu.RLock()
	defer mu.RUnlock()
	return maxWorkers
}

// minGrain is the smallest total range worth parallelizing at all. Below
// this the dispatch overhead dominates the work and fn runs inline.
const minGrain = 256

// chunkGrain is the smallest per-chunk range worth dispatching to a pool
// worker once a range is split. Without it, n barely above minGrain with a
// large worker cap degenerates into dozens of tiny chunks (n=257 with 64
// workers used to dispatch ~52 chunks of ~5 rows each).
const chunkGrain = 64

// splitWorkers returns the effective number of chunks to split n indices
// into under cap w, enforcing the chunkGrain floor.
func splitWorkers(n, w int) int {
	if w > n {
		w = n
	}
	if max := (n + chunkGrain - 1) / chunkGrain; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Range runs fn over [0, n) split into at most Workers() contiguous chunks.
// fn receives a worker id in [0, workers) and its [lo, hi) range. Ranges are
// balanced by count; use RangeWeighted when per-index work is skewed.
// When n is small, fn runs inline on the calling goroutine.
func Range(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w == 1 || n <= minGrain {
		fn(0, 0, n)
		return
	}
	w = splitWorkers(n, w)
	if w == 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + w - 1) / w
	runEven(n, chunk, fn)
}

// RangeWeighted runs fn over [0, n) split into chunks of approximately equal
// total weight, where weight(i) is the cost of index i (e.g. the number of
// non-zeros in row i of a sparse matrix). This is the nnz-balanced schedule
// used by every sparse kernel; DESIGN.md calls the row-count-balanced
// alternative out for ablation. For steady-state call sites (compiled plan
// ops) prefer NewCuts + RangeCuts, which hoists the O(n) weight scan out of
// the hot path.
func RangeWeighted(n int, weight func(i int) int64, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w == 1 || n <= minGrain {
		fn(0, 0, n)
		return
	}
	w = splitWorkers(n, w)
	if w == 1 {
		fn(0, 0, n)
		return
	}
	var bounds [maxStackChunks + 1]int
	cuts := weightedCuts(n, weight, w, bounds[:0])
	if cuts == nil { // zero total weight: fall back to count balancing
		chunk := (n + w - 1) / w
		runEven(n, chunk, fn)
		return
	}
	runBounds(cuts, fn)
}

// maxStackChunks bounds the scratch boundary array RangeWeighted keeps on
// the stack: the weighted scheduler emits at most w+1 chunks.
const maxStackChunks = 512

// weightedCuts computes the chunk boundaries of the weighted schedule into
// dst (reused storage): dst[0] = 0, dst[len-1] = n. Returns nil when the
// total weight is zero.
func weightedCuts(n int, weight func(i int) int64, w int, dst []int) []int {
	var total int64
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	if total <= 0 {
		return nil
	}
	target := (total + int64(w) - 1) / int64(w)
	dst = append(dst, 0)
	var acc int64
	for i := 0; i < n; i++ {
		acc += weight(i)
		if acc >= target || i == n-1 {
			dst = append(dst, i+1)
			acc = 0
		}
	}
	return dst
}

// Cuts caches the weight-balanced chunk boundaries for a fixed weight
// layout (e.g. one sparsity pattern's row-nnz profile), so steady-state
// callers — compiled plan ops above all — pay zero scan cost per call.
// Compute once at plan-compile time with NewCuts, execute with RangeCuts.
// The cuts transparently recompute if the worker cap changes.
type Cuts struct {
	n      int
	weight func(i int) int64
	cached atomic.Pointer[cutSet]
}

type cutSet struct {
	w      int // worker cap the boundaries were computed for
	bounds []int
}

// NewCuts precomputes weight-balanced boundaries over [0, n) for the
// current worker cap. The weight closure is retained for recomputation
// when SetWorkers changes the cap.
func NewCuts(n int, weight func(i int) int64) *Cuts {
	c := &Cuts{n: n, weight: weight}
	c.compute(Workers())
	return c
}

func (c *Cuts) compute(w int) *cutSet {
	cs := &cutSet{w: w}
	if c.n > 0 {
		eff := splitWorkers(c.n, w)
		if eff > 1 {
			cs.bounds = weightedCuts(c.n, c.weight, eff, make([]int, 0, eff+2))
		}
		if cs.bounds == nil {
			cs.bounds = evenCuts(c.n, eff)
		}
	}
	c.cached.Store(cs)
	return cs
}

func evenCuts(n, w int) []int {
	chunk := (n + w - 1) / w
	bounds := make([]int, 1, w+1)
	for lo := chunk; lo < n; lo += chunk {
		bounds = append(bounds, lo)
	}
	return append(bounds, n)
}

// RangeCuts is RangeWeighted over precomputed boundaries: fn runs over the
// cached chunks with distinct worker ids, with no weight scan on the call
// path. Inline fast paths match Range/RangeWeighted.
func RangeCuts(c *Cuts, fn func(worker, lo, hi int)) {
	n := c.n
	if n <= 0 {
		return
	}
	w := Workers()
	if w == 1 || n <= minGrain {
		fn(0, 0, n)
		return
	}
	cs := c.cached.Load()
	if cs == nil || cs.w != w {
		cs = c.compute(w)
	}
	if len(cs.bounds) <= 2 {
		fn(0, 0, n)
		return
	}
	runBounds(cs.bounds, fn)
}

// Do runs the given thunks concurrently on the worker pool and waits for
// all of them.
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	if Workers() == 1 {
		for _, f := range fns {
			f()
		}
		return
	}
	runEven(len(fns), 1, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}
