// Package par provides small parallel-execution helpers shared by all
// compute kernels in this repository. The kernels follow the same pattern
// the paper's CUDA implementation uses — grid-stride work distribution over
// contiguous index ranges — translated to goroutines: a fixed worker pool
// processes disjoint [lo, hi) ranges of rows or non-zeros.
package par

import (
	"runtime"
	"sync"
)

// maxWorkers is the process-wide parallelism cap. It defaults to
// runtime.GOMAXPROCS(0) and can be lowered for deterministic profiling.
var (
	mu         sync.RWMutex
	maxWorkers = runtime.GOMAXPROCS(0)
)

// SetWorkers sets the number of workers used by Range and Do.
// n < 1 resets to runtime.GOMAXPROCS(0). It returns the previous value.
func SetWorkers(n int) int {
	mu.Lock()
	defer mu.Unlock()
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// Workers reports the current worker cap.
func Workers() int {
	mu.RLock()
	defer mu.RUnlock()
	return maxWorkers
}

// minGrain is the smallest per-worker range worth spawning a goroutine for.
// Below this the scheduling overhead dominates the work.
const minGrain = 256

// Range runs fn over [0, n) split into at most Workers() contiguous chunks.
// fn receives a worker id in [0, workers) and its [lo, hi) range. Ranges are
// balanced by count; use RangeWeighted when per-index work is skewed.
// When n is small, fn runs inline on the calling goroutine.
func Range(n int, fn func(worker, lo, hi int)) {
	w := Workers()
	if n <= 0 {
		return
	}
	if w == 1 || n <= minGrain {
		fn(0, 0, n)
		return
	}
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	worker := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(id, lo, hi int) {
			defer wg.Done()
			fn(id, lo, hi)
		}(worker, lo, hi)
		worker++
	}
	wg.Wait()
}

// RangeWeighted runs fn over [0, n) split into chunks of approximately equal
// total weight, where weight(i) is the cost of index i (e.g. the number of
// non-zeros in row i of a sparse matrix). This is the nnz-balanced schedule
// used by every sparse kernel; DESIGN.md calls the row-count-balanced
// alternative out for ablation.
func RangeWeighted(n int, weight func(i int) int64, fn func(worker, lo, hi int)) {
	w := Workers()
	if n <= 0 {
		return
	}
	if w == 1 || n <= minGrain {
		fn(0, 0, n)
		return
	}
	if w > n {
		w = n
	}
	var total int64
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	if total <= 0 {
		Range(n, fn)
		return
	}
	target := (total + int64(w) - 1) / int64(w)

	var wg sync.WaitGroup
	worker := 0
	lo := 0
	var acc int64
	for i := 0; i < n; i++ {
		acc += weight(i)
		if acc >= target || i == n-1 {
			hi := i + 1
			wg.Add(1)
			go func(id, lo, hi int) {
				defer wg.Done()
				fn(id, lo, hi)
			}(worker, lo, hi)
			worker++
			lo = hi
			acc = 0
		}
	}
	wg.Wait()
}

// Do runs the given thunks concurrently and waits for all of them.
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}
