package par

import (
	"sync"
	"sync/atomic"
)

// The persistent worker pool. Every parallel helper (Range, RangeWeighted,
// RangeCuts, Do) dispatches its chunks here instead of spawning goroutines:
// tasks travel by value over one shared buffered channel, long-lived workers
// drain it, and completion is signalled on a per-call channel recycled
// through a sync.Pool. The caller always executes its first chunk inline and
// then *helps*: while waiting for its outstanding chunks it pulls queued
// tasks off the shared channel and runs them itself. Helping makes the
// scheme deadlock-free under nesting (a task blocked waiting for sub-tasks
// will execute them itself if every pool worker is busy) and keeps the
// caller's core hot instead of parked.

// task is one dispatched chunk. It is sent by value — no allocation.
type task struct {
	fn             func(worker, lo, hi int)
	worker, lo, hi int
	done           chan struct{}
}

// taskQueueCap bounds queued-but-unclaimed chunks; submissions beyond it
// run inline on the caller, so the channel send never blocks.
const taskQueueCap = 4096

var (
	taskCh = make(chan task, taskQueueCap)

	poolMu   sync.Mutex
	poolSize atomic.Int32
)

// grow ensures at least n pool workers exist. Workers are goroutines that
// live for the rest of the process; they park on the channel receive when
// idle, which costs nothing. The fast path is one atomic load.
func grow(n int) {
	if int(poolSize.Load()) >= n {
		return
	}
	poolMu.Lock()
	for have := int(poolSize.Load()); have < n; have++ {
		go worker()
		poolSize.Store(int32(have + 1))
	}
	poolMu.Unlock()
}

func worker() {
	for t := range taskCh {
		t.fn(t.worker, t.lo, t.hi)
		t.done <- struct{}{}
	}
}

// doneCap is the buffer of pooled completion channels. It must cover the
// largest possible number of outstanding chunks per call (Workers()+1 for
// the weighted scheduler); calls needing more get a fresh channel that is
// not returned to the pool.
const doneCap = 1024

var donePool = sync.Pool{New: func() any { return make(chan struct{}, doneCap) }}

func getDone(need int) chan struct{} {
	if need > doneCap {
		return make(chan struct{}, need)
	}
	return donePool.Get().(chan struct{})
}

func putDone(ch chan struct{}) {
	if cap(ch) == doneCap {
		donePool.Put(ch)
	}
}

// runEven executes fn over [0, n) in contiguous chunks of the given size:
// chunk 0 inline on the caller, the rest on the pool.
func runEven(n, chunk int, fn func(worker, lo, hi int)) {
	grow(Workers() - 1)
	done := getDone(n / chunk)
	pending := 0
	worker := 1
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case taskCh <- task{fn: fn, worker: worker, lo: lo, hi: hi, done: done}:
			pending++
		default:
			fn(worker, lo, hi)
		}
		worker++
	}
	first := chunk
	if first > n {
		first = n
	}
	fn(0, 0, first)
	wait(done, pending)
	putDone(done)
}

// runBounds is runEven over explicit chunk boundaries (bounds[0] = 0,
// bounds[len-1] = n), as produced by the weighted scheduler.
func runBounds(bounds []int, fn func(worker, lo, hi int)) {
	grow(Workers() - 1)
	done := getDone(len(bounds) - 2)
	pending := 0
	for i := 1; i < len(bounds)-1; i++ {
		select {
		case taskCh <- task{fn: fn, worker: i, lo: bounds[i], hi: bounds[i+1], done: done}:
			pending++
		default:
			fn(i, bounds[i], bounds[i+1])
		}
	}
	fn(0, bounds[0], bounds[1])
	wait(done, pending)
	putDone(done)
}

// wait blocks until pending completions arrive, executing queued tasks
// (its own or other callers') while it waits.
func wait(done chan struct{}, pending int) {
	for pending > 0 {
		select {
		case <-done:
			pending--
		case t := <-taskCh:
			t.fn(t.worker, t.lo, t.hi)
			t.done <- struct{}{}
		}
	}
}
