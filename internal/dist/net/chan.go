package net

import (
	"fmt"
	"sync"
)

// DefaultMailboxCap bounds in-flight messages per (sender, receiver) pair.
// Ring collectives keep at most a couple of messages in flight; the slack
// covers pipelined point-to-point phases.
const DefaultMailboxCap = 1024

// ChanWorld is the in-process transport: all p ranks live in one process
// and exchange messages over a shared matrix of buffered channels. It is
// the pre-seam simulated runtime verbatim — the implementation every test,
// benchmark and -race run exercises.
type ChanWorld struct {
	p    int
	box  [][]chan Message // box[to][from]
	down chan struct{}    // closed on the first Abort: world poisoned
	once sync.Once
}

// NewChanWorld creates the shared mailbox matrix of a p-rank world.
func NewChanWorld(p int) (*ChanWorld, error) {
	if p < 1 {
		return nil, fmt.Errorf("net: world size %d, want >= 1", p)
	}
	w := &ChanWorld{p: p, down: make(chan struct{})}
	w.box = make([][]chan Message, p)
	for to := 0; to < p; to++ {
		w.box[to] = make([]chan Message, p)
		for from := 0; from < p; from++ {
			w.box[to][from] = make(chan Message, DefaultMailboxCap)
		}
	}
	return w, nil
}

// Endpoint returns rank's endpoint. All endpoints share the matrix; the
// world is fully connected by construction, so there is no bootstrap.
func (w *ChanWorld) Endpoint(rank int) Endpoint {
	return &chanEndpoint{w: w, rank: rank}
}

// poison marks the world dead: every sender blocked on a full mailbox (or
// arriving later) unwinds with ErrWorldDown instead of queueing into a
// world no rank will drain.
func (w *ChanWorld) poison() { w.once.Do(func() { close(w.down) }) }

type chanEndpoint struct {
	w    *ChanWorld
	rank int
	hmu  sync.Mutex
	h    FailureHandler // unused by the in-process world, kept for symmetry
}

func (e *chanEndpoint) Size() int { return e.w.p }
func (e *chanEndpoint) Rank() int { return e.rank }

func (e *chanEndpoint) Send(to int, m Message) error {
	select {
	case e.w.box[to][e.rank] <- m:
		return nil
	case <-e.w.down:
		return ErrWorldDown
	}
}

func (e *chanEndpoint) Inbox(from int) <-chan Message { return e.w.box[e.rank][from] }

// Abort poisons the shared matrix. The dist runtime performs its own
// failure broadcast (the closed failCh every blocked receive selects on);
// the transport's job is only to unblock senders.
func (e *chanEndpoint) Abort(failedRank int, cause error) { e.w.poison() }

// Goodbye is a no-op: in-process ranks share a lifetime, so there is no
// connection teardown to disambiguate.
func (e *chanEndpoint) Goodbye() {}

func (e *chanEndpoint) SetFailureHandler(h FailureHandler) {
	e.hmu.Lock()
	e.h = h
	e.hmu.Unlock()
}

func (e *chanEndpoint) Close() error { return nil }
