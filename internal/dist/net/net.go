// Package net is the wire-transport seam of the distributed runtime: the
// point at which "ranks exchanging message payloads" stops being an
// abstraction and becomes either goroutines over buffered channels (the
// simulated world every test and benchmark runs on) or OS processes over
// TCP/Unix-domain sockets (the deployable world the paper's Piz Daint runs
// assume).
//
// internal/dist builds its World on an Endpoint — one rank's connection to
// the world — and everything above the endpoint (collectives, counters,
// fault broadcast, causal stamping, straggler diagnostics) is transport-
// agnostic. The two implementations:
//
//   - ChanWorld (chan.go): the in-process world. All p endpoints share one
//     mailbox matrix of buffered channels; Abort poisons the matrix so
//     blocked senders unwind instead of queueing into a dead world.
//     Identical semantics and performance to the pre-seam runtime.
//
//   - TCPEndpoint (tcp.go): one OS process per rank. Frames are
//     length-prefixed binary (payload words + the causal Header), the
//     bootstrap is a rank-0 rendezvous with bounded dial retry, and
//     liveness is heartbeat-based: a silent peer past the timeout is
//     declared failed, which internal/dist turns into its usual
//     ErrRankFailed broadcast.
//
// The interface is deliberately channel-shaped on the receive side
// (Inbox returns a Go channel): the dist runtime's failure detection is a
// select over {message, world-failure, deadline}, and keeping the inbox a
// channel lets that select survive the transport swap unchanged.
package net

import (
	"errors"

	"agnn/internal/obs/causal"
)

// Message is one point-to-point transfer: the payload words (float64, or
// packed-f32 pairs from the row engine's packWords32 — the transport does
// not care) plus the causal header stamped by the sender.
type Message struct {
	Data []float64
	Hdr  causal.Header
}

// ErrWorldDown reports that the world has been poisoned by a rank failure:
// the send was refused because no rank should queue messages into a dead
// world. The dist runtime maps it to its survivor-unwind path.
var ErrWorldDown = errors.New("net: world down")

// FailureHandler is invoked by a transport when it detects that a peer
// rank has failed (heartbeat silence, connection loss without a clean
// goodbye, or an explicit failure broadcast from the peer). Handlers must
// be safe for concurrent use; the transport may call them from reader or
// monitor goroutines.
type FailureHandler func(rank int, cause error)

// Endpoint is one rank's connection to a p-rank world.
//
// Send delivers a message to a peer; it returns ErrWorldDown once the
// world is poisoned and a transport error when the peer is unreachable
// (both are terminal for the calling rank). Inbox returns the FIFO
// arrival channel for messages from one peer; the same channel is
// returned on every call, so callers may cache it. Abort announces this
// rank's failure to every peer (idempotent, best-effort), and Goodbye
// announces a clean departure so peers do not mistake the closing
// connection for a crash.
type Endpoint interface {
	// Size returns the world size p.
	Size() int
	// Rank returns the local rank in [0, p).
	Rank() int
	// Send transfers m to peer rank `to`. The implementation owns m.Data
	// after the call returns (callers pass a private copy).
	Send(to int, m Message) error
	// Inbox returns the arrival channel for messages from peer `from`.
	// Messages from one peer are delivered in send order, exactly once.
	Inbox(from int) <-chan Message
	// Abort broadcasts that failedRank is down — this rank itself, or a
	// relay of a failure detected locally — and poisons the endpoint so
	// blocked sends unwind. Idempotent.
	Abort(failedRank int, cause error)
	// Goodbye announces a clean departure (normal completion) so peers
	// treat the subsequent connection teardown as benign. Idempotent.
	Goodbye()
	// SetFailureHandler installs the callback for detected peer failures.
	// Must be called before the endpoint is used for traffic.
	SetFailureHandler(h FailureHandler)
	// Close releases the endpoint's resources. After Close, Send fails
	// and inbox channels stop receiving.
	Close() error
}
