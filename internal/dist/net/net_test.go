package net

import (
	"errors"
	"fmt"
	gonet "net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"agnn/internal/obs/causal"
)

// ---------------------------------------------------------------- framing

func TestDataFrameRoundTrip(t *testing.T) {
	m := Message{
		Data: []float64{1.5, -2.25, 0, 3e300},
		Hdr:  causal.Header{Src: 3, Seq: 41, Step: 7, Clock: 99},
	}
	frame := encodeData(nil, 12345, m)
	payload := frame[4:] // strip the length prefix readFrame consumes
	seq, got, err := decodeData(payload)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 12345 {
		t.Errorf("wire seq = %d, want 12345", seq)
	}
	if got.Hdr != m.Hdr {
		t.Errorf("header = %+v, want %+v", got.Hdr, m.Hdr)
	}
	if len(got.Data) != len(m.Data) {
		t.Fatalf("payload length %d, want %d", len(got.Data), len(m.Data))
	}
	for i, v := range m.Data {
		if got.Data[i] != v {
			t.Errorf("word %d = %v, want %v", i, got.Data[i], v)
		}
	}
}

func TestDataFrameRejectsCorruption(t *testing.T) {
	m := Message{Data: []float64{1, 2, 3}}
	frame := encodeData(nil, 7, m)
	payload := frame[4:]

	if _, _, err := decodeData(payload[:len(payload)-3]); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, _, err := decodeData(payload[:dataFrameHeaderLen-2]); err == nil {
		t.Error("truncated header accepted")
	}
	// Inflate the word count without supplying the words.
	bad := append([]byte(nil), payload...)
	bad[dataFrameHeaderLen-4] = 0xff
	if _, _, err := decodeData(bad); err == nil {
		t.Error("word-count mismatch accepted")
	}
}

func TestControlFrameRoundTrips(t *testing.T) {
	rank, addr, err := decodeHello(encodeHello(3, "127.0.0.1:9999")[4:])
	if err != nil || rank != 3 || addr != "127.0.0.1:9999" {
		t.Errorf("hello round trip: rank=%d addr=%q err=%v", rank, addr, err)
	}
	addrs, err := decodeAddrs(encodeAddrs([]string{"a:1", "b:2", "c:3"})[4:])
	if err != nil || len(addrs) != 3 || addrs[1] != "b:2" {
		t.Errorf("addrs round trip: %v err=%v", addrs, err)
	}
	frank, cause, err := decodeFail(encodeFail(2, "boom")[4:])
	if err != nil || frank != 2 || cause != "boom" {
		t.Errorf("fail round trip: rank=%d cause=%q err=%v", frank, cause, err)
	}
	brank, err := decodeBye(encodeBye(1)[4:])
	if err != nil || brank != 1 {
		t.Errorf("bye round trip: rank=%d err=%v", brank, err)
	}
}

// ---------------------------------------------------------------- chan world

func TestChanWorldSendRecv(t *testing.T) {
	w, err := NewChanWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := w.Endpoint(0), w.Endpoint(1)
	want := Message{Data: []float64{42}, Hdr: causal.Header{Src: 0, Seq: 1}}
	if err := a.Send(1, want); err != nil {
		t.Fatal(err)
	}
	got := <-b.Inbox(0)
	if got.Data[0] != 42 || got.Hdr.Src != 0 {
		t.Errorf("got %+v", got)
	}

	// Abort poisons the world: subsequent sends fail with ErrWorldDown
	// once mailboxes fill (the poison path races a buffered send, so fill
	// the box first).
	a.Abort(0, errors.New("test"))
	for i := 0; ; i++ {
		if err := b.Send(0, Message{Data: []float64{1}}); err != nil {
			if !errors.Is(err, ErrWorldDown) {
				t.Fatalf("got %v, want ErrWorldDown", err)
			}
			break
		}
		if i > DefaultMailboxCap {
			t.Fatal("send never failed after Abort")
		}
	}
}

// ---------------------------------------------------------------- tcp

// reservePort grabs an ephemeral loopback port for a rendezvous address.
// There is a tiny window where another process could claim it; fine for
// tests.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func fastCfg(rank, size int, rendezvous string) TCPConfig {
	return TCPConfig{
		Rank: rank, Size: size, Rendezvous: rendezvous,
		DialBackoff:      2 * time.Millisecond,
		HeartbeatEvery:   10 * time.Millisecond,
		PeerTimeout:      300 * time.Millisecond,
		BootstrapTimeout: 10 * time.Second,
	}
}

// dialWorld brings up a full in-test world of TCP endpoints (one per rank,
// all in this process over loopback).
func dialWorld(t *testing.T, size int, mutate func(cfg *TCPConfig)) []*TCPEndpoint {
	t.Helper()
	rdv := reservePort(t)
	eps := make([]*TCPEndpoint, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := fastCfg(r, size, rdv)
			if mutate != nil {
				mutate(&cfg)
			}
			eps[r], errs[r] = DialTCP(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			if ep != nil {
				ep.Close()
			}
		}
	})
	return eps
}

func TestTCPAllPairsDelivery(t *testing.T) {
	const p = 3
	eps := dialWorld(t, p, nil)
	for from := 0; from < p; from++ {
		for to := 0; to < p; to++ {
			m := Message{Data: []float64{float64(100*from + to)},
				Hdr: causal.Header{Src: int32(from), Seq: uint64(to)}}
			if err := eps[from].Send(to, m); err != nil {
				t.Fatalf("send %d→%d: %v", from, to, err)
			}
		}
	}
	for to := 0; to < p; to++ {
		for from := 0; from < p; from++ {
			select {
			case m := <-eps[to].Inbox(from):
				if want := float64(100*from + to); m.Data[0] != want {
					t.Errorf("rank %d from %d: got %v, want %v", to, from, m.Data[0], want)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("rank %d never heard from rank %d", to, from)
			}
		}
	}
}

func TestTCPOrderedDelivery(t *testing.T) {
	eps := dialWorld(t, 2, nil)
	const n = 200
	for i := 0; i < n; i++ {
		if err := eps[0].Send(1, Message{Data: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case m := <-eps[1].Inbox(0):
			if m.Data[0] != float64(i) {
				t.Fatalf("message %d arrived out of order (payload %v)", i, m.Data[0])
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("message %d never arrived", i)
		}
	}
}

// TestTCPLateRendezvous: peers dialing before rank 0 listens retry with
// backoff instead of failing, so process start order does not matter.
func TestTCPLateRendezvous(t *testing.T) {
	rdv := reservePort(t)
	var ep1 *TCPEndpoint
	var err1 error
	done := make(chan struct{})
	go func() {
		defer close(done)
		ep1, err1 = DialTCP(fastCfg(1, 2, rdv))
	}()
	time.Sleep(150 * time.Millisecond) // let rank 1 burn a few dial attempts
	ep0, err := DialTCP(fastCfg(0, 2, rdv))
	if err != nil {
		t.Fatal(err)
	}
	defer ep0.Close()
	<-done
	if err1 != nil {
		t.Fatal(err1)
	}
	defer ep1.Close()
	if ep1.WireStats().DialRetries == 0 {
		t.Error("expected at least one recorded dial retry")
	}
	if err := ep1.Send(0, Message{Data: []float64{7}}); err != nil {
		t.Fatal(err)
	}
	m := <-ep0.Inbox(1)
	if m.Data[0] != 7 {
		t.Errorf("got %v", m.Data[0])
	}
}

// TestTCPConnDropResend: an injected connection drop before a data write
// forces the redial+resend path; the message still arrives exactly once.
func TestTCPConnDropResend(t *testing.T) {
	var drops atomic.Int64
	eps := dialWorld(t, 2, func(cfg *TCPConfig) {
		if cfg.Rank == 0 {
			cfg.OnWire = func(attempt int) (bool, time.Duration) {
				// Drop the first write attempt of the first two frames.
				if attempt == 1 && drops.Add(1) <= 2 {
					return true, 0
				}
				return false, 0
			}
		}
	})
	for i := 0; i < 5; i++ {
		if err := eps[0].Send(1, Message{Data: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		select {
		case m := <-eps[1].Inbox(0):
			if m.Data[0] != float64(i) {
				t.Fatalf("message %d: got payload %v (duplicate or reorder)", i, m.Data[0])
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("message %d never arrived after drop", i)
		}
	}
	select {
	case m := <-eps[1].Inbox(0):
		t.Fatalf("unexpected extra message %v (resend duplicated)", m.Data)
	case <-time.After(50 * time.Millisecond):
	}
	if eps[0].WireStats().Reconnects == 0 {
		t.Error("expected at least one reconnect")
	}
}

// TestTCPConnDropBidirectionalNoLoss (regression): a connection drop
// initiated by ONE side also discards the OTHER side's in-flight frames —
// frames whose Write already succeeded, so that sender has no failure to
// react to. Only the ACK-pruned retransmit buffer replayed on reconnect
// recovers them; before it existed this test starved on the reverse
// direction. Both ranks stream concurrently while rank 0 keeps dropping
// its connection mid-stream.
func TestTCPConnDropBidirectionalNoLoss(t *testing.T) {
	const msgs = 200
	var writes atomic.Int64
	eps := dialWorld(t, 2, func(cfg *TCPConfig) {
		if cfg.Rank == 0 {
			cfg.OnWire = func(attempt int) (bool, time.Duration) {
				// Drop the first attempt of every 20th frame: repeated
				// mid-stream connection loss under full-duplex traffic.
				if attempt == 1 && writes.Add(1)%20 == 0 {
					return true, 0
				}
				return false, 0
			}
		}
	})
	var wg sync.WaitGroup
	sendErrs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				if err := eps[r].Send(1-r, Message{Data: []float64{float64(i)}}); err != nil {
					sendErrs[r] = err
					return
				}
			}
		}(r)
	}
	for r := 0; r < 2; r++ {
		for i := 0; i < msgs; i++ {
			select {
			case m := <-eps[r].Inbox(1 - r):
				if m.Data[0] != float64(i) {
					t.Fatalf("rank %d message %d: got payload %v (lost, duplicated, or reordered)", r, i, m.Data[0])
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("rank %d message %d never arrived: in-flight frame lost across reconnect", r, i)
			}
		}
	}
	wg.Wait()
	for r, err := range sendErrs {
		if err != nil {
			t.Fatalf("rank %d send: %v", r, err)
		}
	}
	if eps[0].WireStats().Reconnects == 0 {
		t.Error("expected at least one reconnect")
	}
}

// TestAckFrameRoundTrip: the cumulative-ACK control frame survives its
// encode/decode cycle and rejects wrong sizes.
func TestAckFrameRoundTrip(t *testing.T) {
	frame := encodeAck(123456789)
	upto, err := decodeAck(frame[4:])
	if err != nil || upto != 123456789 {
		t.Fatalf("ack round trip: upto=%d err=%v", upto, err)
	}
	if _, err := decodeAck(frame[4 : len(frame)-1]); err == nil {
		t.Error("truncated ack accepted")
	}
}

// TestTCPCrashDetection: a peer vanishing without a BYE is declared failed
// within the grace window and the failure handler names it.
func TestTCPCrashDetection(t *testing.T) {
	eps := dialWorld(t, 2, nil)
	failed := make(chan int, 1)
	eps[0].SetFailureHandler(func(rank int, cause error) {
		select {
		case failed <- rank:
		default:
		}
	})
	eps[1].Close() // abrupt death: no Goodbye
	select {
	case r := <-failed:
		if r != 1 {
			t.Errorf("handler named rank %d, want 1", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("peer death never detected")
	}
}

// TestTCPGoodbyeIsBenign: a clean Goodbye+Close must not be reported as a
// failure.
func TestTCPGoodbyeIsBenign(t *testing.T) {
	eps := dialWorld(t, 2, nil)
	var failures atomic.Int64
	eps[0].SetFailureHandler(func(rank int, cause error) { failures.Add(1) })
	eps[1].Goodbye()
	time.Sleep(50 * time.Millisecond) // let the BYE land before the teardown
	eps[1].Close()
	time.Sleep(2 * fastCfg(0, 2, "").PeerTimeout)
	if n := failures.Load(); n != 0 {
		t.Errorf("%d failure reports after a clean goodbye", n)
	}
}

// TestTCPAbortRelaysFailedRank: Abort names the originally failed rank, so
// a relayed FAIL frame blames the right peer, not the relay.
func TestTCPAbortRelaysFailedRank(t *testing.T) {
	eps := dialWorld(t, 3, nil)
	failed := make(chan int, 1)
	eps[0].SetFailureHandler(func(rank int, cause error) {
		select {
		case failed <- rank:
		default:
		}
	})
	// Rank 1 relays that rank 2 is down.
	eps[1].Abort(2, fmt.Errorf("simulated crash of rank 2"))
	select {
	case r := <-failed:
		if r != 2 {
			t.Errorf("FAIL frame named rank %d, want 2", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("FAIL frame never arrived")
	}
	if err := eps[1].Send(0, Message{Data: []float64{1}}); !errors.Is(err, ErrWorldDown) {
		t.Errorf("send after Abort: %v, want ErrWorldDown", err)
	}
}

func TestTCPSingleRankWorld(t *testing.T) {
	ep, err := DialTCP(TCPConfig{Rank: 0, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Send(0, Message{Data: []float64{9}}); err != nil {
		t.Fatal(err)
	}
	m := <-ep.Inbox(0)
	if m.Data[0] != 9 {
		t.Errorf("got %v", m.Data[0])
	}
}

func TestDialTCPValidation(t *testing.T) {
	if _, err := DialTCP(TCPConfig{Rank: 2, Size: 2}); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := DialTCP(TCPConfig{Rank: 0, Size: 2}); err == nil ||
		!strings.Contains(err.Error(), "rendezvous") {
		t.Errorf("missing rendezvous accepted (err=%v)", err)
	}
}
