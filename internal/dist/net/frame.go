package net

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"agnn/internal/obs/causal"
)

// Wire framing: every frame is a u32 little-endian payload length followed
// by the payload; payload byte 0 is the frame kind. Data frames carry a
// per-connection-pair wire sequence (for in-order, exactly-once delivery
// across reconnects), the causal Header, and the payload words as raw
// little-endian float64 bits — the same 8-bytes-per-word accounting the
// BSP counters use.
const (
	frameHello     byte = 1 + iota // u32 rank, u16 addrLen, addr — opens a conn
	frameAddrs                     // u32 p, p × (u16 len, addr) — rendezvous address table
	frameData                      // u64 wireSeq, Header, u32 nwords, words
	frameHeartbeat                 // empty — liveness
	frameFail                      // u32 rank, u16 len, cause — failure broadcast
	frameBye                       // u32 rank — clean departure
	frameAck                       // u64 cumulative wireSeq — receiver has released all frames below it
)

// maxFrameBytes bounds a single frame so a corrupt length prefix cannot
// drive an allocation of arbitrary size. 1 GiB covers any realistic
// feature-block chunk.
const maxFrameBytes = 1 << 30

// dataFrameHeaderLen is the payload length of a data frame before its
// words: kind(1) + wireSeq(8) + Src(4) + Seq(8) + Step(8) + Clock(8) +
// nwords(4).
const dataFrameHeaderLen = 1 + 8 + 4 + 8 + 8 + 8 + 4

// appendU16/U32/U64 are little-endian append helpers.
func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// encodeData builds a complete data frame (length prefix included) into
// buf, reusing its capacity.
func encodeData(buf []byte, wireSeq uint64, m Message) []byte {
	n := dataFrameHeaderLen + 8*len(m.Data)
	buf = buf[:0]
	buf = appendU32(buf, uint32(n))
	buf = append(buf, frameData)
	buf = appendU64(buf, wireSeq)
	buf = appendU32(buf, uint32(m.Hdr.Src))
	buf = appendU64(buf, m.Hdr.Seq)
	buf = appendU64(buf, uint64(m.Hdr.Step))
	buf = appendU64(buf, m.Hdr.Clock)
	buf = appendU32(buf, uint32(len(m.Data)))
	for _, v := range m.Data {
		buf = appendU64(buf, math.Float64bits(v))
	}
	return buf
}

// decodeData parses a data frame payload (kind byte already verified).
// The returned Message owns freshly allocated Data.
func decodeData(p []byte) (wireSeq uint64, m Message, err error) {
	if len(p) < dataFrameHeaderLen {
		return 0, m, fmt.Errorf("net: short data frame (%d bytes)", len(p))
	}
	le := binary.LittleEndian
	wireSeq = le.Uint64(p[1:])
	m.Hdr = causal.Header{
		Src:   int32(le.Uint32(p[9:])),
		Seq:   le.Uint64(p[13:]),
		Step:  int64(le.Uint64(p[21:])),
		Clock: le.Uint64(p[29:]),
	}
	nwords := int(le.Uint32(p[37:]))
	if nwords < 0 || dataFrameHeaderLen+8*nwords != len(p) {
		return 0, m, fmt.Errorf("net: data frame declares %d words in %d bytes", nwords, len(p))
	}
	m.Data = make([]float64, nwords)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(le.Uint64(p[dataFrameHeaderLen+8*i:]))
	}
	return wireSeq, m, nil
}

// encodeHello builds a hello frame: the dialing rank introduces itself and
// advertises its own data listener for reconnects.
func encodeHello(rank int, addr string) []byte {
	n := 1 + 4 + 2 + len(addr)
	buf := appendU32(make([]byte, 0, 4+n), uint32(n))
	buf = append(buf, frameHello)
	buf = appendU32(buf, uint32(rank))
	buf = appendU16(buf, uint16(len(addr)))
	return append(buf, addr...)
}

func decodeHello(p []byte) (rank int, addr string, err error) {
	if len(p) < 7 {
		return 0, "", fmt.Errorf("net: short hello frame (%d bytes)", len(p))
	}
	le := binary.LittleEndian
	rank = int(int32(le.Uint32(p[1:])))
	n := int(le.Uint16(p[5:]))
	if 7+n != len(p) {
		return 0, "", fmt.Errorf("net: hello frame declares %d addr bytes in %d", n, len(p))
	}
	return rank, string(p[7 : 7+n]), nil
}

// encodeAddrs builds the rendezvous address table rank 0 broadcasts once
// every peer has registered.
func encodeAddrs(addrs []string) []byte {
	n := 1 + 4
	for _, a := range addrs {
		n += 2 + len(a)
	}
	buf := appendU32(make([]byte, 0, 4+n), uint32(n))
	buf = append(buf, frameAddrs)
	buf = appendU32(buf, uint32(len(addrs)))
	for _, a := range addrs {
		buf = appendU16(buf, uint16(len(a)))
		buf = append(buf, a...)
	}
	return buf
}

func decodeAddrs(p []byte) ([]string, error) {
	if len(p) < 5 {
		return nil, fmt.Errorf("net: short addrs frame (%d bytes)", len(p))
	}
	le := binary.LittleEndian
	count := int(le.Uint32(p[1:]))
	if count < 0 || count > 1<<16 {
		return nil, fmt.Errorf("net: addrs frame declares %d entries", count)
	}
	addrs := make([]string, count)
	off := 5
	for i := range addrs {
		if off+2 > len(p) {
			return nil, fmt.Errorf("net: truncated addrs frame")
		}
		n := int(le.Uint16(p[off:]))
		off += 2
		if off+n > len(p) {
			return nil, fmt.Errorf("net: truncated addrs frame")
		}
		addrs[i] = string(p[off : off+n])
		off += n
	}
	return addrs, nil
}

// encodeFail builds a failure broadcast naming the failed rank.
func encodeFail(rank int, cause string) []byte {
	if len(cause) > 1<<12 {
		cause = cause[:1<<12]
	}
	n := 1 + 4 + 2 + len(cause)
	buf := appendU32(make([]byte, 0, 4+n), uint32(n))
	buf = append(buf, frameFail)
	buf = appendU32(buf, uint32(rank))
	buf = appendU16(buf, uint16(len(cause)))
	return append(buf, cause...)
}

func decodeFail(p []byte) (rank int, cause string, err error) {
	if len(p) < 7 {
		return 0, "", fmt.Errorf("net: short fail frame (%d bytes)", len(p))
	}
	le := binary.LittleEndian
	rank = int(int32(le.Uint32(p[1:])))
	n := int(le.Uint16(p[5:]))
	if 7+n != len(p) {
		return 0, "", fmt.Errorf("net: fail frame declares %d cause bytes in %d", n, len(p))
	}
	return rank, string(p[7 : 7+n]), nil
}

// encodeBye / encodeHeartbeat build the two fixed control frames.
func encodeBye(rank int) []byte {
	buf := appendU32(make([]byte, 0, 9), 5)
	buf = append(buf, frameBye)
	return appendU32(buf, uint32(rank))
}

func decodeBye(p []byte) (int, error) {
	if len(p) != 5 {
		return 0, fmt.Errorf("net: bad bye frame (%d bytes)", len(p))
	}
	return int(int32(binary.LittleEndian.Uint32(p[1:]))), nil
}

func encodeHeartbeat() []byte {
	buf := appendU32(make([]byte, 0, 5), 1)
	return append(buf, frameHeartbeat)
}

// encodeAck builds a cumulative acknowledgement: every data frame with
// wireSeq < upto has been released to the inbox, so the sender can drop it
// from its retransmit buffer.
func encodeAck(upto uint64) []byte {
	buf := appendU32(make([]byte, 0, 13), 9)
	buf = append(buf, frameAck)
	return appendU64(buf, upto)
}

func decodeAck(p []byte) (uint64, error) {
	if len(p) != 9 {
		return 0, fmt.Errorf("net: bad ack frame (%d bytes)", len(p))
	}
	return binary.LittleEndian.Uint64(p[1:]), nil
}

// readFrame reads one length-prefixed frame payload into buf (grown as
// needed) and returns the payload slice, which aliases buf.
func readFrame(r io.Reader, buf []byte) ([]byte, []byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, buf, err
	}
	n := int(binary.LittleEndian.Uint32(lenb[:]))
	if n < 1 || n > maxFrameBytes {
		return nil, buf, fmt.Errorf("net: frame length %d outside (0, %d]", n, maxFrameBytes)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, buf, fmt.Errorf("net: truncated frame: %w", err)
	}
	return buf, buf, nil
}
