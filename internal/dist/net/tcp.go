package net

import (
	"errors"
	"fmt"
	"math/rand"
	gonet "net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"agnn/internal/obs/flight"
	"agnn/internal/obs/metrics"
)

// TCPConfig describes one rank's place in a multi-process world.
type TCPConfig struct {
	Rank int // this rank, in [0, Size)
	Size int // world size p

	// Rendezvous is rank 0's listen address (host:port for tcp, a socket
	// path for unix). Rank 0 listens there; every other rank dials it.
	Rendezvous string
	// Network is "tcp" (default) or "unix".
	Network string
	// Addr is this rank's own data-listener address. Empty means
	// loopback-auto for tcp ("127.0.0.1:0"); unix ranks > 0 must set it.
	// Rank 0 always listens on Rendezvous.
	Addr string

	DialRetries      int           // bounded dial attempts (default 40)
	DialBackoff      time.Duration // initial backoff, doubles with jitter (default 10ms, cap 1s)
	DialTimeout      time.Duration // per-attempt dial deadline (default 2s)
	WriteTimeout     time.Duration // per-frame write deadline (default 5s)
	HeartbeatEvery   time.Duration // liveness beacon period (default 100ms)
	PeerTimeout      time.Duration // silence/reconnect grace before a peer is declared failed (default 3s)
	BootstrapTimeout time.Duration // full-mesh establishment deadline (default 30s)

	// OnWire, when set, is consulted before every outbound data-frame
	// write: drop closes the connection before writing (forcing the
	// redial+resend path), delay stalls the socket write. attempt is
	// 1-based and increments across resends of one frame, letting the hook
	// bound consecutive drops. It is the hook the wire-level fault
	// injector (internal/dist/faults OnWire) plugs into.
	OnWire func(attempt int) (drop bool, delay time.Duration)
}

func (c *TCPConfig) defaults() {
	if c.Network == "" {
		c.Network = "tcp"
	}
	if c.DialRetries == 0 {
		c.DialRetries = 40
	}
	if c.DialBackoff == 0 {
		c.DialBackoff = 10 * time.Millisecond
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 100 * time.Millisecond
	}
	if c.PeerTimeout == 0 {
		c.PeerTimeout = 3 * time.Second
	}
	if c.BootstrapTimeout == 0 {
		c.BootstrapTimeout = 30 * time.Second
	}
}

// maxPendingFrames bounds the receiver-side reorder buffer per peer. The
// sender writes in order on one connection at a time, so pending frames
// only accumulate across a reconnect window; past this the stream is
// declared corrupt.
const maxPendingFrames = 4096

// WireStats is the endpoint's cumulative socket accounting, the measured
// side of the α-β wire-time validation (internal/costmodel).
type WireStats struct {
	BytesTx, BytesRx   uint64 // frame bytes written / read (length prefixes included)
	FramesTx, FramesRx uint64
	DialRetries        uint64 // failed dial attempts (bootstrap + reconnect)
	Reconnects         uint64 // connections re-established after a drop
	WriteNanos         uint64 // wall time blocked in socket writes (data + control)
}

// tcpPeer is the local view of one remote rank: the current connection
// (writes serialized under mu), outbound wire sequence, and the receive
// side's in-order release state.
type tcpPeer struct {
	rank int

	mu      sync.Mutex // guards conn, addr, wbuf, wireOut, unacked, grace; serializes writes
	conn    gonet.Conn
	addr    string // advertised data listener, for redial
	wbuf    []byte
	wireOut uint64
	grace   *time.Timer // armed when the conn is lost; fires peerFailed if no replacement

	// unacked holds every data frame written but not yet covered by the
	// peer's cumulative ACK, keyed by wire sequence. A closed socket
	// silently discards in-flight bytes in BOTH directions — a sender
	// whose Write succeeded cannot know whether the peer read the frame —
	// so every reconnect replays the whole buffer and the receiver's
	// sequence dedup discards what already arrived. ACKs ride the
	// heartbeat cadence, bounding the buffer to a beacon period of
	// traffic.
	unacked map[uint64][]byte

	rmu     sync.Mutex // guards wireIn, pending
	wireIn  uint64
	pending map[uint64]Message

	inbox    chan Message
	attached atomic.Bool // a connection was attached at least once (bootstrap count)
	departed atomic.Bool // peer said BYE: teardown is benign
	failed   atomic.Bool // peer declared failed: stop detecting it again
}

// TCPEndpoint is one rank of a multi-process world over TCP or Unix
// sockets. One connection per unordered rank pair (full duplex), a
// per-pair wire sequence for exactly-once in-order delivery across
// reconnects, heartbeat liveness, and FAIL/BYE control frames that feed
// the dist runtime's failure broadcast.
type TCPEndpoint struct {
	cfg   TCPConfig
	ln    gonet.Listener
	peers []*tcpPeer // peers[rank]; peers[self] carries only the loopback inbox

	hmu sync.Mutex
	h   FailureHandler

	down   atomic.Bool // world poisoned (Abort, or FAIL received)
	closed atomic.Bool
	bye    atomic.Bool // Goodbye sent: suppress heartbeats and redials

	stopOnce sync.Once
	stopCh   chan struct{} // closed on first of Abort/Close: unblocks inbox feeds

	firstAttach chan struct{} // one token per peer's first connection (bootstrap count)

	bytesTx, bytesRx, framesTx, framesRx atomic.Uint64
	dialRetries, reconnects, writeNanos  atomic.Uint64

	lane            *flight.Lane
	mTx, mRx, mDial *metrics.Counter
	codeDialRetry   uint32
	codeReconnect   uint32
	codeConnLost    uint32
	codePeerTimeout uint32
}

// DialTCP bootstraps this rank into the world and blocks until the full
// mesh is established: rank 0 listens at the rendezvous address and
// collects a HELLO from every peer, answers with the address table, and
// each rank then dials every lower-ranked peer directly. Dials use
// bounded retry with exponential backoff and jitter, so start order does
// not matter.
func DialTCP(cfg TCPConfig) (*TCPEndpoint, error) {
	cfg.defaults()
	if cfg.Size < 1 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("net: rank %d of world %d", cfg.Rank, cfg.Size)
	}
	if cfg.Size > 1 && cfg.Rendezvous == "" {
		return nil, errors.New("net: rendezvous address required for world size > 1")
	}

	e := &TCPEndpoint{
		cfg:             cfg,
		stopCh:          make(chan struct{}),
		firstAttach:     make(chan struct{}, cfg.Size),
		lane:            flight.Default.Lane(cfg.Rank),
		mTx:             metrics.NetBytesTotal.With("tx"),
		mRx:             metrics.NetBytesTotal.With("rx"),
		mDial:           metrics.NetDialRetriesTotal,
		codeDialRetry:   flight.Code("net.dial-retry"),
		codeReconnect:   flight.Code("net.reconnect"),
		codeConnLost:    flight.Code("net.conn-lost"),
		codePeerTimeout: flight.Code("net.peer-timeout"),
	}
	e.peers = make([]*tcpPeer, cfg.Size)
	for r := 0; r < cfg.Size; r++ {
		e.peers[r] = &tcpPeer{
			rank:    r,
			inbox:   make(chan Message, DefaultMailboxCap),
			pending: make(map[uint64]Message),
		}
	}
	if cfg.Size == 1 {
		return e, nil
	}

	// Every rank listens: rank 0 at the rendezvous, others at their own
	// (possibly auto-assigned loopback) address.
	listenAddr := cfg.Addr
	if cfg.Rank == 0 {
		listenAddr = cfg.Rendezvous
	} else if listenAddr == "" {
		if cfg.Network != "tcp" {
			return nil, fmt.Errorf("net: rank %d needs an explicit -addr on network %q", cfg.Rank, cfg.Network)
		}
		listenAddr = "127.0.0.1:0"
	}
	ln, err := gonet.Listen(cfg.Network, listenAddr)
	if err != nil {
		return nil, fmt.Errorf("net: rank %d listen %s: %w", cfg.Rank, listenAddr, err)
	}
	e.ln = ln
	go e.acceptLoop()

	deadline := time.Now().Add(cfg.BootstrapTimeout)
	if cfg.Rank == 0 {
		err = e.bootstrapRoot(deadline)
	} else {
		err = e.bootstrapPeer(ln.Addr().String(), deadline)
	}
	if err != nil {
		e.Close()
		return nil, err
	}
	go e.heartbeatLoop()
	return e, nil
}

// bootstrapRoot waits for a HELLO from every peer (the accept loop
// attaches each connection), then broadcasts the address table.
func (e *TCPEndpoint) bootstrapRoot(deadline time.Time) error {
	if err := e.awaitMesh(e.cfg.Size-1, deadline); err != nil {
		return err
	}
	addrs := make([]string, e.cfg.Size)
	addrs[0] = e.ln.Addr().String()
	for r := 1; r < e.cfg.Size; r++ {
		p := e.peers[r]
		p.mu.Lock()
		addrs[r] = p.addr
		p.mu.Unlock()
	}
	table := encodeAddrs(addrs)
	for r := 1; r < e.cfg.Size; r++ {
		if err := e.writeControl(e.peers[r], table); err != nil {
			return fmt.Errorf("net: rendezvous reply to rank %d: %w", r, err)
		}
	}
	return nil
}

// bootstrapPeer dials the rendezvous, reads the address table, then dials
// every rank between 0 and itself and waits for the ranks above to dial in.
func (e *TCPEndpoint) bootstrapPeer(ownAddr string, deadline time.Time) error {
	conn, err := e.dialRetry(e.cfg.Rendezvous)
	if err != nil {
		return fmt.Errorf("net: rank %d rendezvous %s: %w", e.cfg.Rank, e.cfg.Rendezvous, err)
	}
	hello := encodeHello(e.cfg.Rank, ownAddr)
	conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return fmt.Errorf("net: rank %d hello: %w", e.cfg.Rank, err)
	}
	// The address table arrives on this connection before any other
	// traffic from rank 0; read it synchronously, then hand the
	// connection to the normal reader.
	conn.SetReadDeadline(deadline)
	payload, _, err := readFrame(conn, nil)
	if err != nil || len(payload) == 0 || payload[0] != frameAddrs {
		conn.Close()
		if err == nil {
			err = fmt.Errorf("unexpected frame kind %d", payload[0])
		}
		return fmt.Errorf("net: rank %d awaiting address table: %w", e.cfg.Rank, err)
	}
	addrs, err := decodeAddrs(payload)
	if err != nil || len(addrs) != e.cfg.Size {
		conn.Close()
		if err == nil {
			err = fmt.Errorf("table has %d entries, world is %d", len(addrs), e.cfg.Size)
		}
		return fmt.Errorf("net: rank %d address table: %w", e.cfg.Rank, err)
	}
	for r, a := range addrs {
		if r == e.cfg.Rank {
			continue
		}
		p := e.peers[r]
		p.mu.Lock()
		p.addr = a
		p.mu.Unlock()
	}
	e.attach(0, addrs[0], conn)

	// Dial the ranks below us (rank 0 already connected); ranks above dial us.
	for r := 1; r < e.cfg.Rank; r++ {
		c, err := e.dialRetry(addrs[r])
		if err != nil {
			return fmt.Errorf("net: rank %d dialing rank %d at %s: %w", e.cfg.Rank, r, addrs[r], err)
		}
		c.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
		if _, err := c.Write(encodeHello(e.cfg.Rank, ownAddr)); err != nil {
			c.Close()
			return fmt.Errorf("net: rank %d hello to rank %d: %w", e.cfg.Rank, r, err)
		}
		e.attach(r, addrs[r], c)
	}
	return e.awaitMesh(e.cfg.Size-1, deadline)
}

// awaitMesh blocks until `want` distinct peers have attached their first
// connection.
func (e *TCPEndpoint) awaitMesh(want int, deadline time.Time) error {
	for got := 0; got < want; {
		select {
		case <-e.firstAttach:
			got++
		case <-e.stopCh:
			return errors.New("net: endpoint closed during bootstrap")
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("net: rank %d bootstrap timeout with %d/%d peers connected", e.cfg.Rank, got, want)
		}
	}
	return nil
}

// dialRetry dials with bounded attempts, exponential backoff and jitter.
func (e *TCPEndpoint) dialRetry(addr string) (gonet.Conn, error) {
	backoff := e.cfg.DialBackoff
	var lastErr error
	for attempt := 0; attempt < e.cfg.DialRetries; attempt++ {
		if e.closed.Load() || e.down.Load() {
			return nil, ErrWorldDown
		}
		conn, err := gonet.DialTimeout(e.cfg.Network, addr, e.cfg.DialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		e.noteDialRetry()
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff)))
		select {
		case <-time.After(sleep):
		case <-e.stopCh:
			return nil, ErrWorldDown
		}
		if backoff < time.Second {
			backoff *= 2
		}
	}
	return nil, fmt.Errorf("net: dial %s: %d attempts exhausted: %w", addr, e.cfg.DialRetries, lastErr)
}

// acceptLoop admits inbound connections for the endpoint's whole lifetime:
// bootstrap HELLOs and post-drop reconnects alike.
func (e *TCPEndpoint) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go e.handleInbound(conn)
	}
}

// handleInbound reads the identifying HELLO and attaches the connection.
func (e *TCPEndpoint) handleInbound(conn gonet.Conn) {
	conn.SetReadDeadline(time.Now().Add(e.cfg.BootstrapTimeout))
	payload, _, err := readFrame(conn, nil)
	if err != nil || len(payload) == 0 || payload[0] != frameHello {
		conn.Close()
		return
	}
	rank, addr, err := decodeHello(payload)
	if err != nil || rank < 0 || rank >= e.cfg.Size || rank == e.cfg.Rank {
		conn.Close()
		return
	}
	e.attach(rank, addr, conn)
}

// attach installs conn as the current connection to peer `rank`,
// replacing (and closing) any previous one, cancelling a pending failure
// grace timer, and starting a reader.
func (e *TCPEndpoint) attach(rank int, addr string, conn gonet.Conn) {
	p := e.peers[rank]
	p.mu.Lock()
	first := !p.attached.Swap(true)
	if addr != "" {
		p.addr = addr
	}
	if p.conn != nil {
		p.conn.Close()
	}
	p.conn = conn
	if p.grace != nil {
		p.grace.Stop()
		p.grace = nil
	}
	e.retransmitLocked(p) // replay unacked frames; a dead conn surfaces via readLoop
	p.mu.Unlock()
	if first {
		select {
		case e.firstAttach <- struct{}{}:
		default:
		}
	}
	go e.readLoop(p, conn)
}

// readLoop drains one connection until it dies, dispatching frames.
func (e *TCPEndpoint) readLoop(p *tcpPeer, conn gonet.Conn) {
	var buf []byte
	for {
		conn.SetReadDeadline(time.Now().Add(e.cfg.PeerTimeout))
		payload, nbuf, err := readFrame(conn, buf)
		buf = nbuf
		if err != nil {
			conn.Close()
			e.connLost(p, conn, err)
			return
		}
		e.noteRx(4 + len(payload))
		switch payload[0] {
		case frameData:
			seq, m, derr := decodeData(payload)
			if derr != nil {
				conn.Close()
				e.peerFailed(p.rank, fmt.Errorf("net: corrupt stream from rank %d: %w", p.rank, derr))
				return
			}
			if !e.deliver(p, seq, m) {
				return // world stopped while the inbox was full
			}
		case frameHeartbeat:
			// Nothing to do: the next loop iteration renews the deadline.
		case frameAck:
			if upto, derr := decodeAck(payload); derr == nil {
				p.mu.Lock()
				for s := range p.unacked {
					if s < upto {
						delete(p.unacked, s)
					}
				}
				p.mu.Unlock()
			}
		case frameFail:
			rank, cause, derr := decodeFail(payload)
			if derr == nil {
				e.peerFailed(rank, fmt.Errorf("net: rank %d reported failed: %s", rank, cause))
			}
		case frameBye:
			if rank, derr := decodeBye(payload); derr == nil && rank == p.rank {
				p.departed.Store(true)
			}
		default:
			// Unknown or late bootstrap frame: ignore.
		}
	}
}

// deliver releases data frames to the inbox in wire-sequence order,
// discarding duplicates from resends after a reconnect. Returns false if
// the world stopped while blocked on a full inbox.
func (e *TCPEndpoint) deliver(p *tcpPeer, seq uint64, m Message) bool {
	p.rmu.Lock()
	defer p.rmu.Unlock()
	if seq < p.wireIn {
		return true // duplicate of an already released frame
	}
	if len(p.pending) >= maxPendingFrames {
		e.peerFailed(p.rank, fmt.Errorf("net: rank %d reorder buffer overflow (seq %d, expecting %d)", p.rank, seq, p.wireIn))
		return false
	}
	p.pending[seq] = m
	for {
		next, ok := p.pending[p.wireIn]
		if !ok {
			return true
		}
		delete(p.pending, p.wireIn)
		p.wireIn++
		select {
		case p.inbox <- next:
		case <-e.stopCh:
			return false
		}
	}
}

// connLost handles a dead connection: benign if the peer said goodbye or
// we are shutting down, otherwise it arms a grace timer — if no
// replacement connection attaches within PeerTimeout, the peer is
// declared failed.
func (e *TCPEndpoint) connLost(p *tcpPeer, conn gonet.Conn, err error) {
	if e.closed.Load() || e.down.Load() || p.departed.Load() || p.failed.Load() {
		return
	}
	p.mu.Lock()
	if p.conn != conn {
		p.mu.Unlock()
		return // already replaced: stale reader
	}
	p.conn = nil
	if p.grace == nil {
		cause := fmt.Errorf("net: lost connection to rank %d: %w", p.rank, err)
		e.lane.Record(flight.KindCounter, e.codeConnLost, int64(p.rank), 0, 0)
		p.grace = time.AfterFunc(e.cfg.PeerTimeout, func() {
			p.mu.Lock()
			dead := p.conn == nil
			p.grace = nil
			p.mu.Unlock()
			if dead && !e.closed.Load() && !e.down.Load() && !p.departed.Load() {
				e.lane.Record(flight.KindCounter, e.codePeerTimeout, int64(p.rank), 0, 0)
				e.peerFailed(p.rank, cause)
			}
		})
	}
	p.mu.Unlock()
}

// peerFailed reports a failed peer to the installed handler exactly once
// per rank.
func (e *TCPEndpoint) peerFailed(rank int, cause error) {
	if rank < 0 || rank >= e.cfg.Size {
		return
	}
	if e.peers[rank].failed.Swap(true) {
		return
	}
	e.hmu.Lock()
	h := e.h
	e.hmu.Unlock()
	if h != nil {
		h(rank, cause)
	}
}

// Size returns the world size.
func (e *TCPEndpoint) Size() int { return e.cfg.Size }

// Rank returns the local rank.
func (e *TCPEndpoint) Rank() int { return e.cfg.Rank }

// Inbox returns the in-order arrival channel for one peer.
func (e *TCPEndpoint) Inbox(from int) <-chan Message { return e.peers[from].inbox }

// SetFailureHandler installs the peer-failure callback.
func (e *TCPEndpoint) SetFailureHandler(h FailureHandler) {
	e.hmu.Lock()
	e.h = h
	e.hmu.Unlock()
}

// Send frames m to peer `to`, redialing and resending on connection loss.
// Self-sends bypass the wire.
func (e *TCPEndpoint) Send(to int, m Message) error {
	if e.down.Load() {
		return ErrWorldDown
	}
	if e.closed.Load() {
		return errors.New("net: endpoint closed")
	}
	p := e.peers[to]
	if to == e.cfg.Rank {
		select {
		case p.inbox <- m:
			return nil
		case <-e.stopCh:
			return ErrWorldDown
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.unacked) >= maxPendingFrames {
		err := fmt.Errorf("net: rank %d retransmit buffer overflow (%d unacked frames)", to, len(p.unacked))
		p.mu.Unlock()
		e.peerFailed(to, err)
		p.mu.Lock()
		return err
	}
	seq := p.wireOut
	p.wireOut++
	p.wbuf = encodeData(p.wbuf, seq, m)

	backoff := e.cfg.DialBackoff
	var lastErr error
	for attempt := 0; attempt <= e.cfg.DialRetries; attempt++ {
		if e.down.Load() {
			return ErrWorldDown
		}
		if p.failed.Load() {
			return fmt.Errorf("net: rank %d already declared failed", to)
		}
		if p.conn == nil {
			if _, err := e.redialLocked(p, &backoff); err != nil {
				lastErr = err
				continue
			}
		}
		if e.cfg.OnWire != nil {
			drop, delay := e.cfg.OnWire(attempt + 1)
			if delay > 0 {
				time.Sleep(delay)
			}
			if drop {
				p.conn.Close()
				p.conn = nil
				continue // redial and resend the same frame
			}
		}
		conn := p.conn
		conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
		t0 := time.Now()
		_, err := conn.Write(p.wbuf)
		e.writeNanos.Add(uint64(time.Since(t0).Nanoseconds()))
		if err == nil {
			e.noteTx(len(p.wbuf))
			// Keep the frame for replay until the peer ACKs past it: the
			// write reaching the kernel does not mean the peer read it.
			if p.unacked == nil {
				p.unacked = make(map[uint64][]byte)
			}
			p.unacked[seq] = p.wbuf
			p.wbuf = nil
			return nil
		}
		lastErr = err
		conn.Close()
		if p.conn == conn {
			p.conn = nil
		}
	}
	err := fmt.Errorf("net: send to rank %d: %w", to, lastErr)
	p.mu.Unlock() // peerFailed → handler → dist fail → Abort wants peer mutexes
	e.peerFailed(to, err)
	p.mu.Lock() // re-lock for the deferred unlock
	return err
}

// redialLocked re-establishes p's connection (single attempt with the
// caller's evolving backoff); the caller holds p.mu.
func (e *TCPEndpoint) redialLocked(p *tcpPeer, backoff *time.Duration) (gonet.Conn, error) {
	if p.addr == "" {
		return nil, fmt.Errorf("net: no known address for rank %d", p.rank)
	}
	conn, err := gonet.DialTimeout(e.cfg.Network, p.addr, e.cfg.DialTimeout)
	if err != nil {
		e.noteDialRetry()
		sleep := *backoff + time.Duration(rand.Int63n(int64(*backoff)))
		if *backoff < time.Second {
			*backoff *= 2
		}
		select {
		case <-time.After(sleep):
		case <-e.stopCh:
		}
		return nil, err
	}
	conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
	if _, err := conn.Write(encodeHello(e.cfg.Rank, e.ownAddr())); err != nil {
		conn.Close()
		return nil, err
	}
	p.conn = conn
	if p.grace != nil {
		p.grace.Stop()
		p.grace = nil
	}
	if err := e.retransmitLocked(p); err != nil {
		conn.Close()
		p.conn = nil
		return nil, err
	}
	e.reconnects.Add(1)
	e.lane.Record(flight.KindCounter, e.codeReconnect, int64(p.rank), 0, 0)
	go e.readLoop(p, conn)
	return conn, nil
}

// retransmitLocked replays every unacknowledged data frame in wire-
// sequence order on p's current connection. The receiver's in-order
// release state drops the ones that did arrive before the old connection
// died. Caller holds p.mu.
func (e *TCPEndpoint) retransmitLocked(p *tcpPeer) error {
	if len(p.unacked) == 0 || p.conn == nil {
		return nil
	}
	seqs := make([]uint64, 0, len(p.unacked))
	for s := range p.unacked {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		frame := p.unacked[s]
		p.conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
		t0 := time.Now()
		_, err := p.conn.Write(frame)
		e.writeNanos.Add(uint64(time.Since(t0).Nanoseconds()))
		if err != nil {
			return err
		}
		e.noteTx(len(frame))
	}
	return nil
}

func (e *TCPEndpoint) ownAddr() string {
	if e.ln != nil {
		return e.ln.Addr().String()
	}
	return ""
}

// writeControl writes a prebuilt control frame on p's current connection.
func (e *TCPEndpoint) writeControl(p *tcpPeer, frame []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		return fmt.Errorf("net: no connection to rank %d", p.rank)
	}
	p.conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
	t0 := time.Now()
	_, err := p.conn.Write(frame)
	e.writeNanos.Add(uint64(time.Since(t0).Nanoseconds()))
	if err == nil {
		e.noteTx(len(frame))
	}
	return err
}

// heartbeatLoop beacons liveness to every peer and heals idle dropped
// connections with a single redial attempt per tick.
func (e *TCPEndpoint) heartbeatLoop() {
	hb := encodeHeartbeat()
	t := time.NewTicker(e.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case <-t.C:
		}
		if e.down.Load() || e.bye.Load() {
			return
		}
		for _, p := range e.peers {
			if p.rank == e.cfg.Rank || p.departed.Load() || p.failed.Load() {
				continue
			}
			// Beacon = heartbeat + cumulative ACK of what this side has
			// released from the peer's stream, pruning its replay buffer.
			p.rmu.Lock()
			released := p.wireIn
			p.rmu.Unlock()
			beacon := append(append([]byte(nil), hb...), encodeAck(released)...)
			p.mu.Lock()
			if p.conn != nil {
				p.conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
				if _, err := p.conn.Write(beacon); err != nil {
					p.conn.Close()
					p.conn = nil
				} else {
					e.noteTx(len(beacon))
				}
			} else if p.addr != "" && !e.bye.Load() {
				if conn, err := gonet.DialTimeout(e.cfg.Network, p.addr, e.cfg.DialTimeout); err == nil {
					conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
					if _, werr := conn.Write(encodeHello(e.cfg.Rank, e.ownAddr())); werr == nil {
						p.conn = conn
						if p.grace != nil {
							p.grace.Stop()
							p.grace = nil
						}
						if rerr := e.retransmitLocked(p); rerr != nil {
							conn.Close()
							p.conn = nil
						} else {
							e.reconnects.Add(1)
							e.lane.Record(flight.KindCounter, e.codeReconnect, int64(p.rank), 0, 0)
							go e.readLoop(p, conn)
						}
					} else {
						conn.Close()
					}
				} else {
					e.noteDialRetry()
				}
			}
			p.mu.Unlock()
		}
	}
}

// Abort broadcasts that rank failedRank is down (usually this rank, or a
// relay of a locally detected failure) and poisons the endpoint so
// blocked sends and inbox feeds unwind.
func (e *TCPEndpoint) Abort(failedRank int, cause error) {
	if e.down.Swap(true) {
		return
	}
	msg := ""
	if cause != nil {
		msg = cause.Error()
	}
	frame := encodeFail(failedRank, msg)
	for _, p := range e.peers {
		if p.rank == e.cfg.Rank || p.departed.Load() {
			continue
		}
		e.writeControl(p, frame)
	}
	e.stopOnce.Do(func() { close(e.stopCh) })
}

// Goodbye announces clean completion so peers treat the connection
// teardown as benign rather than a crash.
func (e *TCPEndpoint) Goodbye() {
	if e.bye.Swap(true) {
		return
	}
	frame := encodeBye(e.cfg.Rank)
	for _, p := range e.peers {
		if p.rank == e.cfg.Rank || p.failed.Load() {
			continue
		}
		e.writeControl(p, frame)
	}
}

// Close tears the endpoint down: listener, connections, and any blocked
// send or inbox feed.
func (e *TCPEndpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	e.stopOnce.Do(func() { close(e.stopCh) })
	if e.ln != nil {
		e.ln.Close()
	}
	for _, p := range e.peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		if p.grace != nil {
			p.grace.Stop()
			p.grace = nil
		}
		p.mu.Unlock()
	}
	return nil
}

// WireStats returns the endpoint's cumulative socket accounting.
func (e *TCPEndpoint) WireStats() WireStats {
	return WireStats{
		BytesTx:     e.bytesTx.Load(),
		BytesRx:     e.bytesRx.Load(),
		FramesTx:    e.framesTx.Load(),
		FramesRx:    e.framesRx.Load(),
		DialRetries: e.dialRetries.Load(),
		Reconnects:  e.reconnects.Load(),
		WriteNanos:  e.writeNanos.Load(),
	}
}

func (e *TCPEndpoint) noteTx(n int) {
	e.bytesTx.Add(uint64(n))
	e.framesTx.Add(1)
	e.mTx.Add(int64(n))
}

func (e *TCPEndpoint) noteRx(n int) {
	e.bytesRx.Add(uint64(n))
	e.framesRx.Add(1)
	e.mRx.Add(int64(n))
}

func (e *TCPEndpoint) noteDialRetry() {
	e.dialRetries.Add(1)
	e.mDial.Inc()
	e.lane.Record(flight.KindCounter, e.codeDialRetry, 1, 0, 0)
}
