package dist

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"agnn/internal/dist/faults"
	"agnn/internal/obs/flight"
	"agnn/internal/obs/metrics"
)

// TestWaitHistogramRecordsBlockedRecvs: a rank made slow by an injected
// delay forces its peers to block in Recv; the peers' superstep wait must
// land in their per-rank histograms.
func TestWaitHistogramRecordsBlockedRecvs(t *testing.T) {
	const p = 4
	before := make([]int64, p)
	for r := 0; r < p; r++ {
		before[r] = metrics.RankWaitSeconds.With(strconv.Itoa(r)).Count()
	}

	Run(p, func(c *Comm) {
		if c.Rank() == 2 {
			time.Sleep(20 * time.Millisecond) // the deliberate straggler
		}
		for i := 0; i < 3; i++ {
			c.Allreduce(make([]float64, 8))
		}
	})

	sawWait := false
	for r := 0; r < p; r++ {
		h := metrics.RankWaitSeconds.With(strconv.Itoa(r))
		if h.Count() == before[r] {
			t.Errorf("rank %d recorded no superstep waits", r)
		}
		if r != 2 && h.Sum() > 0.005 {
			sawWait = true
		}
	}
	if !sawWait {
		t.Error("no peer of the delayed rank accumulated visible wait time")
	}
}

// TestStragglerDetectionFlagsWaitingRank: with one rank consistently slow,
// its *peers* wait far beyond the median and must be flagged as straggler
// victims — counter incremented, flight event recorded with the wait,
// median and round payload.
func TestStragglerDetectionFlagsWaitingRank(t *testing.T) {
	const p = 4
	before := make([]int64, p)
	recBefore := make([]uint64, p)
	for r := 0; r < p; r++ {
		before[r] = metrics.StragglersTotal.With(strconv.Itoa(r)).Value()
		recBefore[r] = flight.Default.Lane(r).Recorded()
	}

	// Ring pattern: rank 0 sleeps before sending, so rank 1 blocks hard in
	// Recv every superstep while ranks 2,3 exchange instantly — a sharp
	// max-vs-median wait split.
	Run(p, func(c *Comm) {
		right := (c.Rank() + 1) % p
		left := (c.Rank() - 1 + p) % p
		for i := 0; i < 6; i++ {
			c.round()
			if c.Rank() == 0 {
				time.Sleep(5 * time.Millisecond)
			}
			c.Send(right, make([]float64, 4))
			c.Recv(left)
		}
	})

	flagged := 0
	for r := 0; r < p; r++ {
		if metrics.StragglersTotal.With(strconv.Itoa(r)).Value() > before[r] {
			flagged++
			found := false
			for _, ev := range flight.Default.Lane(r).Events() {
				if ev.Kind == "straggler" && ev.A > ev.B && ev.C > 0 {
					found = true
				}
			}
			if !found {
				t.Errorf("rank %d flagged as straggler but has no straggler flight event", r)
			}
		}
	}
	if flagged == 0 {
		t.Fatal("no rank flagged despite a 5ms/superstep stall")
	}
	// The gauge is only set on supersteps with a non-zero median wait; when
	// set it must report max ≥ median.
	if v := metrics.WaitImbalanceRatio.Value(); v != 0 && v < 1 {
		t.Errorf("imbalance gauge %v, want >= 1 when set", v)
	}
	for r := 0; r < p; r++ {
		if flight.Default.Lane(r).Recorded() == recBefore[r] {
			t.Errorf("rank %d recorded no flight events", r)
		}
	}
}

// TestCrashWritesFlightDump is the postmortem acceptance path at the dist
// layer: an injected crash must produce a dump artifact naming the failed
// rank and its last superstep, with that rank's lane holding the preceding
// superstep events.
func TestCrashWritesFlightDump(t *testing.T) {
	dir := t.TempDir()
	prev := flight.SetDumpDir(dir)
	defer flight.SetDumpDir(prev)

	const p, victim, crashRound = 4, 1, 3
	inj := faults.New(faults.Spec{Clauses: []faults.Clause{{
		Kind: faults.Crash, Rank: victim, Round: crashRound,
	}}}, 1, p)
	_, errs, err := TryRun(p, Options{Faults: inj, RecvTimeout: 5 * time.Second}, func(c *Comm) error {
		for i := 0; i < 6; i++ {
			c.Allreduce(make([]float64, 4))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first := FirstError(errs); !errors.Is(first, ErrRankFailed) {
		t.Fatalf("expected rank failure, got %v", first)
	}

	matches, err := filepath.Glob(filepath.Join(dir, "flight-rank-failure-*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one dump, got %v (%v)", matches, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var d flight.Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	if d.FailedRank == nil || *d.FailedRank != victim {
		t.Fatalf("dump names rank %v, want %d", d.FailedRank, victim)
	}
	if d.LastSuperstep == nil || *d.LastSuperstep != crashRound {
		t.Fatalf("dump names superstep %v, want %d", d.LastSuperstep, crashRound)
	}
	var lane *flight.LaneDump
	for i := range d.Lanes {
		if d.Lanes[i].Rank == victim {
			lane = &d.Lanes[i]
		}
	}
	if lane == nil {
		t.Fatal("failed rank has no lane in the dump")
	}
	super, failure := false, false
	for _, ev := range lane.Events {
		switch ev.Kind {
		case "superstep":
			super = true
		case "failure":
			if ev.A == crashRound {
				failure = true
			}
		}
	}
	if !super || !failure {
		t.Fatalf("victim lane missing superstep (%v) or failure (%v) events", super, failure)
	}
}
