package dist

// Collective operations. All use volume-optimal algorithms: per-rank volume
// is O(n) words for an n-word vector regardless of group size (ring
// reduce-scatter / allgather, scatter + ring-allgather broadcast), matching
// the costs assumed by the Section 7 analysis. Round counts are O(p) for
// the rings — the BSP superstep bound of O(log p) could be recovered with
// recursive doubling, but the paper's bounds are on *volume*, which is what
// the simulated counters must reproduce.

// chunkBounds splits n words into g nearly equal chunks.
func chunkBounds(n, g int) []int {
	b := make([]int, g+1)
	base, rem := n/g, n%g
	for i := 0; i < g; i++ {
		sz := base
		if i < rem {
			sz++
		}
		b[i+1] = b[i] + sz
	}
	return b
}

// Barrier synchronizes the group with a two-pass token ring: the first
// circulation proves every rank has entered, the second releases them.
func (c *Comm) Barrier() {
	sp, c0 := c.beginCollective("barrier")
	defer c.endCollective("barrier", sp, c0)
	g := c.Size()
	if g == 1 {
		return
	}
	c.round()
	right := (c.me + 1) % g
	left := (c.me - 1 + g) % g
	if c.me == 0 {
		c.Send(right, nil) // arm token
		c.Recv(left)       // token returned: everyone entered
		c.Send(right, nil) // release token
		c.Recv(left)       // release returned
		return
	}
	c.Recv(left)
	c.Send(right, nil)
	c.Recv(left)
	c.Send(right, nil)
}

// Bcast broadcasts root's data to every group member and returns the local
// copy (root returns its input). Implemented as direct scatter from root
// followed by a ring allgather: root sends ≈n words, everyone else ≈n.
func (c *Comm) Bcast(data []float64, root int) []float64 {
	sp, c0 := c.beginCollective("bcast")
	defer c.endCollective("bcast", sp, c0)
	g := c.Size()
	if g == 1 {
		return data
	}
	c.round()
	// Length exchange: root tells everyone the size (counted as one small
	// message within the scatter below; we piggyback by sending the chunk
	// with an explicit first element header-free — lengths are agreed upon
	// by the SPMD program, so ranks must pass a correctly sized buffer).
	var n int
	if c.me == root {
		n = len(data)
		hdr := []float64{float64(n)}
		for r := 0; r < g; r++ {
			if r != root {
				c.Send(r, hdr)
			}
		}
	} else {
		n = int(c.Recv(root)[0])
	}
	bounds := chunkBounds(n, g)
	out := make([]float64, n)
	// Scatter: root sends chunk r to rank r.
	if c.me == root {
		copy(out, data)
		for r := 0; r < g; r++ {
			if r != root {
				c.Send(r, data[bounds[r]:bounds[r+1]])
			}
		}
	} else {
		chunk := c.Recv(root)
		copy(out[bounds[c.me]:bounds[c.me+1]], chunk)
	}
	// Ring allgather of the chunks.
	c.ringAllgather(out, bounds)
	return out
}

// ringAllgather completes `out` given that each rank holds its own chunk.
func (c *Comm) ringAllgather(out []float64, bounds []int) {
	g := c.Size()
	right := (c.me + 1) % g
	left := (c.me - 1 + g) % g
	for t := 0; t < g-1; t++ {
		sendIdx := (c.me - t + g) % g
		recvIdx := (c.me - 1 - t + 2*g) % g
		c.Send(right, out[bounds[sendIdx]:bounds[sendIdx+1]])
		chunk := c.Recv(left)
		copy(out[bounds[recvIdx]:bounds[recvIdx+1]], chunk)
	}
}

// Allgather concatenates every rank's (equal-length or varying) vector in
// group-rank order and returns the full concatenation.
func (c *Comm) Allgather(data []float64) []float64 {
	sp, c0 := c.beginCollective("allgather")
	defer c.endCollective("allgather", sp, c0)
	g := c.Size()
	if g == 1 {
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	c.round()
	// Exchange lengths around the ring first (g-1 tiny messages).
	lens := make([]int, g)
	lens[c.me] = len(data)
	right := (c.me + 1) % g
	left := (c.me - 1 + g) % g
	for t := 0; t < g-1; t++ {
		sendIdx := (c.me - t + g) % g
		recvIdx := (c.me - 1 - t + 2*g) % g
		c.Send(right, []float64{float64(lens[sendIdx])})
		lens[recvIdx] = int(c.Recv(left)[0])
	}
	bounds := make([]int, g+1)
	for i := 0; i < g; i++ {
		bounds[i+1] = bounds[i] + lens[i]
	}
	out := make([]float64, bounds[g])
	copy(out[bounds[c.me]:bounds[c.me+1]], data)
	c.ringAllgather(out, bounds)
	return out
}

// ReduceOp is a commutative, associative element-wise reduction operator.
type ReduceOp func(a, b float64) float64

// OpSum, OpMax and OpMin are the standard reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// ReduceScatter sums the group's equal-length vectors element-wise and
// returns this rank's chunk of the result (chunk boundaries from
// chunkBounds). Ring algorithm: per-rank volume ≈ n words.
func (c *Comm) ReduceScatter(data []float64) []float64 {
	return c.ReduceScatterOp(data, OpSum)
}

// ReduceScatterOp is ReduceScatter with an arbitrary reduction operator.
func (c *Comm) ReduceScatterOp(data []float64, op ReduceOp) []float64 {
	sp, c0 := c.beginCollective("reduce_scatter")
	defer c.endCollective("reduce_scatter", sp, c0)
	g := c.Size()
	bounds := chunkBounds(len(data), g)
	if g == 1 {
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	c.round()
	acc := make([]float64, len(data))
	copy(acc, data)
	right := (c.me + 1) % g
	left := (c.me - 1 + g) % g
	for t := 0; t < g-1; t++ {
		sendIdx := (c.me - 1 - t + 2*g) % g
		recvIdx := (c.me - 2 - t + 3*g) % g
		c.Send(right, acc[bounds[sendIdx]:bounds[sendIdx+1]])
		chunk := c.Recv(left)
		dst := acc[bounds[recvIdx]:bounds[recvIdx+1]]
		for i, v := range chunk {
			dst[i] = op(dst[i], v)
		}
	}
	mine := make([]float64, bounds[c.me+1]-bounds[c.me])
	copy(mine, acc[bounds[c.me]:bounds[c.me+1]])
	return mine
}

// Allreduce returns the element-wise sum of the group's equal-length
// vectors on every rank (reduce-scatter + allgather; ≈2n words per rank).
func (c *Comm) Allreduce(data []float64) []float64 {
	return c.AllreduceOp(data, OpSum)
}

// AllreduceOp is Allreduce with an arbitrary reduction operator.
func (c *Comm) AllreduceOp(data []float64, op ReduceOp) []float64 {
	sp, c0 := c.beginCollective("allreduce")
	defer c.endCollective("allreduce", sp, c0)
	g := c.Size()
	if g == 1 {
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	mine := c.ReduceScatterOp(data, op)
	bounds := chunkBounds(len(data), g)
	out := make([]float64, len(data))
	copy(out[bounds[c.me]:bounds[c.me+1]], mine)
	c.round()
	c.ringAllgather(out, bounds)
	return out
}

// Reduce sums the group's vectors onto root (reduce-scatter + gather).
// Non-root ranks return nil.
func (c *Comm) Reduce(data []float64, root int) []float64 {
	sp, c0 := c.beginCollective("reduce")
	defer c.endCollective("reduce", sp, c0)
	g := c.Size()
	if g == 1 {
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	mine := c.ReduceScatter(data)
	bounds := chunkBounds(len(data), g)
	c.round()
	if c.me == root {
		out := make([]float64, len(data))
		copy(out[bounds[root]:bounds[root+1]], mine)
		for r := 0; r < g; r++ {
			if r == root {
				continue
			}
			chunk := c.Recv(r)
			copy(out[bounds[r]:bounds[r+1]], chunk)
		}
		return out
	}
	c.Send(root, mine)
	return nil
}

// Gatherv collects every rank's vector on root in group-rank order;
// non-root ranks return nil.
func (c *Comm) Gatherv(data []float64, root int) [][]float64 {
	sp, c0 := c.beginCollective("gatherv")
	defer c.endCollective("gatherv", sp, c0)
	g := c.Size()
	if g == 1 {
		cp := make([]float64, len(data))
		copy(cp, data)
		return [][]float64{cp}
	}
	c.round()
	if c.me != root {
		c.Send(root, data)
		return nil
	}
	out := make([][]float64, g)
	cp := make([]float64, len(data))
	copy(cp, data)
	out[root] = cp
	for r := 0; r < g; r++ {
		if r != root {
			out[r] = c.Recv(r)
		}
	}
	return out
}

// Scatterv sends chunks[r] to each group rank r from root and returns the
// local chunk. Non-root callers pass nil.
func (c *Comm) Scatterv(chunks [][]float64, root int) []float64 {
	sp, c0 := c.beginCollective("scatterv")
	defer c.endCollective("scatterv", sp, c0)
	g := c.Size()
	if g == 1 {
		cp := make([]float64, len(chunks[0]))
		copy(cp, chunks[0])
		return cp
	}
	c.round()
	if c.me == root {
		for r := 0; r < g; r++ {
			if r != root {
				c.Send(r, chunks[r])
			}
		}
		cp := make([]float64, len(chunks[root]))
		copy(cp, chunks[root])
		return cp
	}
	return c.Recv(root)
}

// Alltoallv sends out[r] to each rank r and returns the vectors received
// from every rank (in group-rank order).
func (c *Comm) Alltoallv(out [][]float64) [][]float64 {
	sp, c0 := c.beginCollective("alltoallv")
	defer c.endCollective("alltoallv", sp, c0)
	g := c.Size()
	in := make([][]float64, g)
	if g == 1 {
		cp := make([]float64, len(out[0]))
		copy(cp, out[0])
		in[0] = cp
		return in
	}
	c.round()
	for r := 0; r < g; r++ {
		if r == c.me {
			cp := make([]float64, len(out[r]))
			copy(cp, out[r])
			in[r] = cp
			continue
		}
		c.Send(r, out[r])
	}
	for r := 0; r < g; r++ {
		if r != c.me {
			in[r] = c.Recv(r)
		}
	}
	return in
}
