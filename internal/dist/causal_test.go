package dist

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"agnn/internal/obs"
	"agnn/internal/obs/causal"
	"agnn/internal/obs/metrics"
)

// withCausal installs a fresh process-wide causal log for one test.
func withCausal(t *testing.T) *causal.Log {
	t.Helper()
	prev := causal.Get()
	l := causal.New()
	causal.Enable(l)
	t.Cleanup(func() { causal.Enable(prev) })
	return l
}

func filterKind(evs []causal.Event, kind uint8) []causal.Event {
	var out []causal.Event
	for _, e := range evs {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Every send must appear in the sender's log and its stamped header in
// the receiver's, linkable via (Src, Seq); the receiver's recv interval
// must contain the send time.
func TestCausalStampingRecordsSendRecvPairs(t *testing.T) {
	l := withCausal(t)
	Run(2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, []float64{1, 2, 3})
			c.Send(1, []float64{4})
		case 1:
			c.Recv(0)
			c.Recv(0)
		}
	})
	sends := filterKind(l.Rank(0).Events(), causal.KindSend)
	recvs := filterKind(l.Rank(1).Events(), causal.KindRecv)
	if len(sends) != 2 || len(recvs) != 2 {
		t.Fatalf("got %d sends, %d recvs, want 2 and 2", len(sends), len(recvs))
	}
	for i := range sends {
		s, r := sends[i], recvs[i]
		if s.Seq != uint64(i+1) {
			t.Errorf("send %d: seq %d, want %d", i, s.Seq, i+1)
		}
		if s.Peer != 1 {
			t.Errorf("send %d: peer %d, want 1", i, s.Peer)
		}
		if r.Peer != 0 || r.Seq != s.Seq || r.Clock != s.Clock {
			t.Errorf("recv %d: (peer,seq,clock)=(%d,%d,%d) does not match send (0,%d,%d)",
				i, r.Peer, r.Seq, r.Clock, s.Seq, s.Clock)
		}
		if r.T1 < s.T1 {
			t.Errorf("recv %d arrived at %d before send completed at %d", i, r.T1, s.T1)
		}
		if r.T0 > r.T1 {
			t.Errorf("recv %d: T0 %d > T1 %d", i, r.T0, r.T1)
		}
	}
	if sends[0].Bytes != 24 || sends[1].Bytes != 8 {
		t.Errorf("send bytes (%d,%d), want (24,8)", sends[0].Bytes, sends[1].Bytes)
	}
}

// The Lamport clock must strictly increase along every message edge:
// a message sent after receiving another carries a larger clock.
func TestCausalLamportClockMergesAcrossRanks(t *testing.T) {
	l := withCausal(t)
	Run(3, func(c *Comm) {
		// 0 → 1 → 2 relay: rank 1's forward happens-after rank 0's send.
		switch c.Rank() {
		case 0:
			c.Send(1, []float64{1})
		case 1:
			v := c.Recv(0)
			c.Send(2, v)
		case 2:
			c.Recv(1)
		}
	})
	s0 := filterKind(l.Rank(0).Events(), causal.KindSend)
	s1 := filterKind(l.Rank(1).Events(), causal.KindSend)
	if len(s0) != 1 || len(s1) != 1 {
		t.Fatalf("got %d/%d sends on ranks 0/1, want 1/1", len(s0), len(s1))
	}
	if s1[0].Clock <= s0[0].Clock {
		t.Errorf("relayed send clock %d not after original send clock %d",
			s1[0].Clock, s0[0].Clock)
	}
}

// Collective messages must carry the collective's superstep and an
// interned code naming it, so the critical-path walk can attribute hops.
func TestCausalCollectiveMessagesCarryStepAndCode(t *testing.T) {
	l := withCausal(t)
	Run(2, func(c *Comm) {
		c.Allreduce([]float64{float64(c.Rank())})
		c.Barrier()
	})
	evs := l.Rank(0).Events()
	if len(evs) == 0 {
		t.Fatal("no causal events recorded for rank 0")
	}
	var coded int
	for _, e := range evs {
		if e.Code != 0 {
			coded++
		}
	}
	if coded == 0 {
		t.Error("no event carries a collective code")
	}
	// Barrier follows the allreduce round, so late events must carry a
	// positive superstep.
	last := evs[len(evs)-1]
	if last.Step == 0 {
		t.Errorf("final event superstep = 0, want > 0 (rounds advance stepNow)")
	}
}

// With no process-wide log, stamping must stay silent (clocks still run).
func TestCausalDisabledRecordsNothing(t *testing.T) {
	prev := causal.Get()
	causal.Disable()
	t.Cleanup(func() { causal.Enable(prev) })
	l := causal.New() // never installed
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, []float64{1})
		} else {
			c.Recv(0)
		}
	})
	if evs := l.Rank(0).Events(); len(evs) != 0 {
		t.Fatalf("uninstalled log has %d events", len(evs))
	}
}

// The Send/Recv hot path must not allocate when causal tracing is on:
// the header travels by value and the log appends into its preallocated
// buffer. Empty payloads keep the message copy itself allocation-free,
// isolating the stamping overhead.
func TestCausalStampedSendRecvZeroAlloc(t *testing.T) {
	withCausal(t)
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c := w.Comm(0)
	payload := make([]float64, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Send(0, payload) // self-send: the mailbox buffers it
		c.Recv(0)
	})
	if allocs != 0 {
		t.Fatalf("stamped Send+Recv allocates %.1f times per op, want 0", allocs)
	}
}

// Same assertion with causal tracing off — the baseline must not regress.
func TestUnstampedSendRecvZeroAlloc(t *testing.T) {
	prev := causal.Get()
	causal.Disable()
	t.Cleanup(func() { causal.Enable(prev) })
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c := w.Comm(0)
	payload := make([]float64, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Send(0, payload)
		c.Recv(0)
	})
	if allocs != 0 {
		t.Fatalf("Send+Recv allocates %.1f times per op, want 0", allocs)
	}
}

// Chrome-trace flow events: a traced run must emit one "s"/"f" pair per
// message, sharing an ID, on the sender and receiver rank tracks.
func TestCausalFlowEventsInChromeTrace(t *testing.T) {
	withCausal(t)
	tr := obs.New()
	cs := RunTraced(2, tr, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, []float64{1, 2})
		} else {
			c.Recv(0)
		}
	})
	if len(cs) != 2 {
		t.Fatalf("want 2 ranks, got %d", len(cs))
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph": "s"`, `"ph": "f"`, `"cat": "msg"`, `"bp": "e"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s:\n%s", want, out)
		}
	}
}

// Straggler floor: a wait above a tiny configured floor must flag, and a
// huge floor must suppress detection for the same workload.
func TestStragglerFloorTunable(t *testing.T) {
	const p = 4
	run := func(floor time.Duration) {
		t.Helper()
		// Ring with one slow sender: rank 1 blocks ~3ms per superstep while
		// ranks 2,3 exchange instantly, so the cross-rank median stays near
		// zero and only the floor decides whether rank 1 is flagged.
		_, errs, err := TryRun(p, Options{StragglerFloor: floor, StragglerFactor: 1.5},
			func(c *Comm) error {
				right, left := (c.Rank()+1)%p, (c.Rank()+p-1)%p
				for i := 0; i < 4; i++ {
					c.round()
					if c.Rank() == 0 {
						time.Sleep(3 * time.Millisecond)
					}
					c.Send(right, []float64{1})
					c.Recv(left)
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if e := FirstError(errs); e != nil {
			t.Fatal(e)
		}
	}
	// The per-rank straggler counters are process-global (metrics registry),
	// so compare deltas around each run.
	delta := func(floor time.Duration) int64 {
		before := stragglerCount(p)
		run(floor)
		return stragglerCount(p) - before
	}
	if d := delta(50 * time.Microsecond); d == 0 {
		t.Error("2ms blocked wait above a 50µs floor not flagged as straggler")
	}
	if d := delta(10 * time.Second); d != 0 {
		t.Errorf("straggler flagged despite 10s floor (delta %d)", d)
	}
}

func stragglerCount(p int) int64 {
	var total int64
	for r := 0; r < p; r++ {
		total += metrics.StragglersTotal.With(strconv.Itoa(r)).Value()
	}
	return total
}
