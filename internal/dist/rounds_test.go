package dist

import (
	"testing"

	"agnn/internal/obs"
)

// roundsOf runs one collective on p ranks and returns the per-rank Rounds
// counters (which must agree across ranks: every rank enters the same BSP
// supersteps).
func roundsOf(t *testing.T, p int, f func(c *Comm)) int64 {
	t.Helper()
	cs := Run(p, f)
	want := cs[0].Rounds
	for r, c := range cs {
		if c.Rounds != want {
			t.Fatalf("rank %d entered %d rounds, rank 0 entered %d", r, c.Rounds, want)
		}
	}
	return want
}

// TestCollectiveRoundCounts pins each collective to the round count its
// volume-optimal algorithm promises (package doc): one superstep for the
// single-phase rings (scatter, allgather, reduce-scatter, broadcast,
// all-to-all), two for the composed ones (allreduce and reduce, which run
// reduce-scatter followed by an allgather/gather phase).
func TestCollectiveRoundCounts(t *testing.T) {
	const p = 4
	const n = 64
	cases := []struct {
		name string
		f    func(c *Comm)
		want int64
	}{
		{"barrier", func(c *Comm) { c.Barrier() }, 1},
		{"bcast", func(c *Comm) { c.Bcast(seq(n, float64(c.Rank())), 0) }, 1},
		{"allgather", func(c *Comm) { c.Allgather(seq(n, float64(c.Rank()))) }, 1},
		{"reduce_scatter", func(c *Comm) { c.ReduceScatter(seq(n, float64(c.Rank()))) }, 1},
		{"allreduce", func(c *Comm) { c.Allreduce(seq(n, float64(c.Rank()))) }, 2},
		{"reduce", func(c *Comm) { c.Reduce(seq(n, float64(c.Rank())), 0) }, 2},
		{"gatherv", func(c *Comm) { c.Gatherv(seq(n, float64(c.Rank())), 0) }, 1},
		{"scatterv", func(c *Comm) {
			var chunks [][]float64
			if c.Rank() == 0 {
				for r := 0; r < p; r++ {
					chunks = append(chunks, seq(n, float64(r)))
				}
			}
			c.Scatterv(chunks, 0)
		}, 1},
		{"alltoallv", func(c *Comm) {
			out := make([][]float64, p)
			for r := 0; r < p; r++ {
				out[r] = seq(n, float64(c.Rank()*p+r))
			}
			c.Alltoallv(out)
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := roundsOf(t, p, tc.f); got != tc.want {
				t.Fatalf("%s recorded %d rounds per rank, want %d", tc.name, got, tc.want)
			}
		})
	}
}

// TestRoundsCountersAccumulate checks Rounds flows through Add/Max/Total
// like the other counters.
func TestRoundsCountersAccumulate(t *testing.T) {
	cs := Run(4, func(c *Comm) {
		c.Barrier()
		c.Allreduce(seq(16, 0))
	})
	if got := MaxCounters(cs).Rounds; got != 3 {
		t.Fatalf("max rounds = %d, want 3 (barrier + allreduce's two phases)", got)
	}
	if got := TotalCounters(cs).Rounds; got != 12 {
		t.Fatalf("total rounds = %d, want 12", got)
	}
}

// TestRunTracedRecordsPerRankCollectives checks the tracing integration:
// each rank gets its own track, collective spans carry byte/message deltas,
// and the per-track byte totals in the report match the rank counters.
func TestRunTracedRecordsPerRankCollectives(t *testing.T) {
	const p = 4
	tr := obs.New()
	cs := RunTraced(p, tr, func(c *Comm) {
		c.Allreduce(seq(32, float64(c.Rank())))
	})

	tracks := tr.Tracks()
	if len(tracks) != p+1 { // main + one per rank
		t.Fatalf("got %d tracks, want %d", len(tracks), p+1)
	}
	rep := tr.Report()
	spanStats := map[string]obs.SpanStat{}
	for _, s := range rep.Spans {
		spanStats[s.Name] = s
	}
	if spanStats["allreduce"].Count != p {
		t.Fatalf("allreduce span count = %d, want %d", spanStats["allreduce"].Count, p)
	}
	if spanStats["reduce_scatter"].Count != p {
		t.Fatalf("nested reduce_scatter span count = %d, want %d",
			spanStats["reduce_scatter"].Count, p)
	}
	byTrack := map[string]obs.TrackStat{}
	for _, ts := range rep.Tracks {
		byTrack[ts.Track] = ts
	}
	for r := 0; r < p; r++ {
		name := tracks[r+1].Name()
		ts, ok := byTrack[name]
		if !ok {
			t.Fatalf("no track stats for %q", name)
		}
		// The outer allreduce span's delta covers all bytes the rank sent;
		// the nested reduce_scatter span counts its share again.
		if ts.Attrs["bytes"] < cs[r].BytesSent {
			t.Fatalf("rank %d track bytes %d < counter bytes %d",
				r, ts.Attrs["bytes"], cs[r].BytesSent)
		}
		if ts.Attrs["msgs"] == 0 {
			t.Fatalf("rank %d track has no message attribute", r)
		}
	}
}
