package dist

import (
	"testing"
)

// TestAllgatherChunksMatchesAllgather checks the chunked gather's completed
// output, arrival order and per-chunk accounting against the blocking ring.
func TestAllgatherChunksMatchesAllgather(t *testing.T) {
	for _, p := range []int{1, 4, 16} {
		lens := make([]int, p)
		total := 0
		for r := range lens {
			lens[r] = 3 + r%4 // varying contributions
			total += lens[r]
		}
		want := make([]float64, total)
		{
			off := 0
			for r := 0; r < p; r++ {
				for i := 0; i < lens[r]; i++ {
					want[off] = float64(100*r + i)
					off++
				}
			}
		}
		results := make([][]float64, p)
		counters := Run(p, func(c *Comm) {
			me := c.Rank()
			data := make([]float64, lens[me])
			for i := range data {
				data[i] = float64(100*me + i)
			}
			cg, err := c.AllgatherChunks(data, lens)
			if err != nil {
				t.Error(err)
				return
			}
			seen := 0
			for ch := range cg.Chunks() {
				wantSrc := ((me-ch.Step)%p + p) % p
				if ch.Src != wantSrc {
					t.Errorf("p=%d rank %d step %d: chunk from %d, want ring order %d", p, me, ch.Step, ch.Src, wantSrc)
				}
				// The announced range must already hold the source's data.
				out := cg.Out()
				for i := ch.Lo; i < ch.Hi; i++ {
					if out[i] != want[i] {
						t.Errorf("p=%d rank %d step %d: word %d = %v before/after arrival, want %v", p, me, ch.Step, i, out[i], want[i])
						break
					}
				}
				seen++
			}
			if seen != p {
				t.Errorf("p=%d rank %d: %d chunks delivered, want %d", p, me, seen, p)
			}
		})
		for r, c := range counters {
			_ = results
			if wantRounds := int64(p - 1); c.Rounds != wantRounds {
				t.Errorf("p=%d rank %d: %d rounds, want %d (one per ring hop)", p, r, c.Rounds, wantRounds)
			}
		}
	}
}

// TestAllgatherChunksWaitEquivalence checks Wait() returns the same
// concatenation as the blocking Allgather, with the same per-rank volume.
func TestAllgatherChunksWaitEquivalence(t *testing.T) {
	const p = 8
	const chunk = 5
	lens := make([]int, p)
	for r := range lens {
		lens[r] = chunk
	}
	var blocking, chunked []Counters
	var blockOut, chunkOut [][]float64

	mk := func(me int) []float64 {
		d := make([]float64, chunk)
		for i := range d {
			d[i] = float64(me)*1000 + float64(i)
		}
		return d
	}
	blockOut = make([][]float64, p)
	blocking = Run(p, func(c *Comm) {
		blockOut[c.Rank()] = c.Allgather(mk(c.Rank()))
	})
	chunkOut = make([][]float64, p)
	chunked = Run(p, func(c *Comm) {
		cg, err := c.AllgatherChunks(mk(c.Rank()), lens)
		if err != nil {
			t.Error(err)
			return
		}
		out, err := cg.Wait()
		if err != nil {
			t.Error(err)
			return
		}
		chunkOut[c.Rank()] = out
	})
	for r := 0; r < p; r++ {
		if len(blockOut[r]) != len(chunkOut[r]) {
			t.Fatalf("rank %d: length %d vs %d", r, len(chunkOut[r]), len(blockOut[r]))
		}
		for i := range blockOut[r] {
			if blockOut[r][i] != chunkOut[r][i] {
				t.Fatalf("rank %d word %d: chunked %v, blocking %v", r, i, chunkOut[r][i], blockOut[r][i])
			}
		}
		// The chunked ring moves exactly the payload words; the blocking
		// Allgather additionally runs its length-exchange ring.
		payload := int64(8 * chunk * (p - 1))
		if chunked[r].BytesSent != payload {
			t.Errorf("rank %d: chunked gather sent %d bytes, want %d", r, chunked[r].BytesSent, payload)
		}
		if blocking[r].BytesSent < payload {
			t.Errorf("rank %d: blocking gather sent %d bytes, want >= %d", r, blocking[r].BytesSent, payload)
		}
	}
}

// TestAllgatherChunksOverlappedConsumer drains the chunk stream while doing
// unrelated work between receives — the engine's consumption pattern — and
// is the -race anchor for the chunked-collective handoff.
func TestAllgatherChunksOverlappedConsumer(t *testing.T) {
	const p = 4
	const chunk = 64
	lens := []int{chunk, chunk, chunk, chunk}
	sums := make([]float64, p)
	Run(p, func(c *Comm) {
		me := c.Rank()
		data := make([]float64, chunk)
		for i := range data {
			data[i] = 1
		}
		cg, err := c.AllgatherChunks(data, lens)
		if err != nil {
			t.Error(err)
			return
		}
		acc := 0.0
		for ch := range cg.Chunks() {
			out := cg.Out()
			for i := ch.Lo; i < ch.Hi; i++ {
				acc += out[i]
			}
		}
		sums[me] = acc
	})
	for r, s := range sums {
		if s != float64(p*chunk) {
			t.Errorf("rank %d: consumed sum %v, want %v", r, s, float64(p*chunk))
		}
	}
}
