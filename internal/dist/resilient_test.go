package dist

import (
	"errors"
	"testing"
	"time"

	"agnn/internal/dist/faults"
	"agnn/internal/obs/metrics"
)

// mustParse parses a fault spec or fails the test.
func mustParse(t *testing.T, s string) faults.Spec {
	t.Helper()
	spec, err := faults.Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return spec
}

// TestCrashPropagatesToAllRanks is the core recovery contract: a seeded
// crash on one rank must surface as ErrRankFailed on EVERY rank — the
// crashed one and all survivors — with no deadlock.
func TestCrashPropagatesToAllRanks(t *testing.T) {
	for _, p := range []int{4, 16} {
		for _, victim := range []int{0, p / 2, p - 1} {
			inj := faults.New(mustParse(t, "crash:rank=2,round=3"), 1, p)
			// Re-target the victim via a fresh spec to vary the crash site.
			inj = faults.New(faults.Spec{Clauses: []faults.Clause{{
				Kind: faults.Crash, Rank: victim, Round: 3,
			}}}, 1, p)
			opts := Options{Faults: inj, RecvTimeout: 5 * time.Second}
			done := make(chan struct{})
			var errs []error
			var runErr error
			go func() {
				defer close(done)
				_, errs, runErr = TryRun(p, opts, func(c *Comm) error {
					// Enough supersteps that every rank passes round 3.
					for i := 0; i < 8; i++ {
						c.Allreduce(make([]float64, 4))
					}
					return nil
				})
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatalf("p=%d victim=%d: deadlock — ranks never returned", p, victim)
			}
			if runErr != nil {
				t.Fatalf("p=%d victim=%d: setup error: %v", p, victim, runErr)
			}
			for r, err := range errs {
				if err == nil {
					t.Errorf("p=%d victim=%d rank %d: nil error, want ErrRankFailed", p, victim, r)
					continue
				}
				if !errors.Is(err, ErrRankFailed) {
					t.Errorf("p=%d victim=%d rank %d: %v does not wrap ErrRankFailed", p, victim, r, err)
				}
			}
			if first := FirstError(errs); first == nil || !errors.Is(first, ErrRankFailed) {
				t.Errorf("p=%d victim=%d: FirstError = %v", p, victim, first)
			}
		}
	}
}

// TestCrashFiresOncePerInjector: after a recovery the same injector must not
// re-crash the rebuilt world, so the retried epoch completes.
func TestCrashFiresOncePerInjector(t *testing.T) {
	const p = 4
	inj := faults.New(mustParse(t, "crash:rank=1,round=2"), 7, p)
	opts := Options{Faults: inj, RecvTimeout: 5 * time.Second}

	_, errs, err := TryRun(p, opts, func(c *Comm) error {
		for i := 0; i < 4; i++ {
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if FirstError(errs) == nil {
		t.Fatal("first attempt should have failed")
	}

	// Second attempt with the SAME injector: the crash clause is spent.
	_, errs, err = TryRun(p, opts, func(c *Comm) error {
		for i := 0; i < 4; i++ {
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first := FirstError(errs); first != nil {
		t.Fatalf("retry with spent injector failed: %v", first)
	}
}

// TestRecvTimeoutAborts: a rank that never sends must trip the receive
// deadline on its peer, and the abort must release both ranks.
func TestRecvTimeoutAborts(t *testing.T) {
	opts := Options{RecvTimeout: 50 * time.Millisecond}
	done := make(chan struct{})
	var errs []error
	go func() {
		defer close(done)
		_, errs, _ = TryRun(2, opts, func(c *Comm) error {
			if c.Rank() == 0 {
				c.Recv(1) // rank 1 never sends
			} else {
				c.Recv(0) // symmetric: both starve
			}
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("recv timeout did not release the ranks")
	}
	first := FirstError(errs)
	if first == nil {
		t.Fatal("expected a timeout error")
	}
	if !errors.Is(first, ErrRecvTimeout) {
		t.Errorf("error %v does not wrap ErrRecvTimeout", first)
	}
	if !errors.Is(first, ErrRankFailed) {
		t.Errorf("error %v does not wrap ErrRankFailed", first)
	}
}

// TestDropRetrySucceeds: a bounded drop clause (max < retries) must be
// absorbed by the retry loop — the run completes, and the retry counter
// advances.
func TestDropRetrySucceeds(t *testing.T) {
	const p = 4
	inj := faults.New(mustParse(t, "drop:p=1,max=2"), 3, p)
	opts := Options{Faults: inj, SendRetries: 4, RetryBackoff: 10 * time.Microsecond}
	before := metrics.CommRetriesTotal.Value()
	_, errs, err := TryRun(p, opts, func(c *Comm) error {
		got := c.Allreduce([]float64{1})
		if got[0] != float64(p) {
			t.Errorf("rank %d: allreduce = %v, want %v", c.Rank(), got[0], float64(p))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first := FirstError(errs); first != nil {
		t.Fatalf("bounded drops should be retried through: %v", first)
	}
	if d := metrics.CommRetriesTotal.Value() - before; d <= 0 {
		t.Errorf("retry counter did not advance (delta %d)", d)
	}
}

// TestDropExhaustionFails: with retries below the drop budget the send must
// give up and abort the world rather than spin forever.
func TestDropExhaustionFails(t *testing.T) {
	const p = 2
	inj := faults.New(mustParse(t, "drop:p=1,max=100"), 5, p)
	opts := Options{Faults: inj, SendRetries: 2, RetryBackoff: time.Microsecond}
	done := make(chan struct{})
	var errs []error
	go func() {
		defer close(done)
		_, errs, _ = TryRun(p, opts, func(c *Comm) error {
			c.Allreduce([]float64{1})
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("exhausted sender never aborted")
	}
	first := FirstError(errs)
	if first == nil || !errors.Is(first, ErrRankFailed) {
		t.Fatalf("want ErrRankFailed after retry exhaustion, got %v", first)
	}
}

// TestDelayPreservesResults: pure-latency faults must not change any
// collective's value — only its timing.
func TestDelayPreservesResults(t *testing.T) {
	const p = 4
	inj := faults.New(mustParse(t, "delay:p=0.5,ms=0.2"), 11, p)
	opts := Options{Faults: inj}
	_, errs, err := TryRun(p, opts, func(c *Comm) error {
		sum := c.Allreduce([]float64{float64(c.Rank() + 1)})
		want := float64(p*(p+1)) / 2
		if sum[0] != want {
			t.Errorf("rank %d: delayed allreduce = %v, want %v", c.Rank(), sum[0], want)
		}
		all := c.Allgather([]float64{float64(c.Rank())})
		for r := 0; r < p; r++ {
			if all[r] != float64(r) {
				t.Errorf("rank %d: delayed allgather word %d = %v", c.Rank(), r, all[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first := FirstError(errs); first != nil {
		t.Fatal(first)
	}
}

// TestReorderPreservesChunkedGather: reordered chunk *notifications* must not
// change the gathered words — data is already placed when announced — and
// every chunk must still be announced exactly once.
func TestReorderPreservesChunkedGather(t *testing.T) {
	const p = 8
	const chunk = 6
	lens := make([]int, p)
	for r := range lens {
		lens[r] = chunk
	}
	inj := faults.New(mustParse(t, "reorder:p=1"), 13, p)
	opts := Options{Faults: inj}
	outs := make([][]float64, p)
	_, errs, err := TryRun(p, opts, func(c *Comm) error {
		me := c.Rank()
		data := make([]float64, chunk)
		for i := range data {
			data[i] = float64(1000*me + i)
		}
		cg, err := c.AllgatherChunks(data, lens)
		if err != nil {
			return err
		}
		seen := 0
		for range cg.Chunks() {
			seen++
		}
		if err := cg.Err(); err != nil {
			return err
		}
		if seen != p {
			t.Errorf("rank %d: %d chunk notifications, want %d", me, seen, p)
		}
		outs[me] = cg.Out()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first := FirstError(errs); first != nil {
		t.Fatal(first)
	}
	for r := 0; r < p; r++ {
		for src := 0; src < p; src++ {
			for i := 0; i < chunk; i++ {
				want := float64(1000*src + i)
				if got := outs[r][src*chunk+i]; got != want {
					t.Fatalf("rank %d word (%d,%d): %v, want %v", r, src, i, got, want)
				}
			}
		}
	}
}

// TestCrashDuringChunkedGather: the chunked collective's helper goroutine
// must convert a mid-stream failure into a closed channel + Err(), not a
// leaked goroutine or deadlocked consumer.
func TestCrashDuringChunkedGather(t *testing.T) {
	const p = 4
	const chunk = 8
	lens := make([]int, p)
	for r := range lens {
		lens[r] = chunk
	}
	inj := faults.New(faults.Spec{Clauses: []faults.Clause{{
		Kind: faults.Crash, Rank: 1, Round: 2,
	}}}, 17, p)
	opts := Options{Faults: inj, RecvTimeout: 5 * time.Second}
	done := make(chan struct{})
	var errs []error
	go func() {
		defer close(done)
		_, errs, _ = TryRun(p, opts, func(c *Comm) error {
			// Burn a round so the gather itself crosses the crash round.
			c.Barrier()
			cg, err := c.AllgatherChunks(make([]float64, chunk), lens)
			if err != nil {
				return err
			}
			if _, err := cg.Wait(); err != nil {
				return err
			}
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("chunked gather deadlocked after crash")
	}
	first := FirstError(errs)
	if first == nil || !errors.Is(first, ErrRankFailed) {
		t.Fatalf("want ErrRankFailed from chunked gather, got %v", first)
	}
}

// TestTryRunSetupError: invalid world sizes surface as a setup error, not a
// panic, with no per-rank results.
func TestTryRunSetupError(t *testing.T) {
	cs, errs, err := TryRun(0, Options{}, func(c *Comm) error { return nil })
	if err == nil {
		t.Fatal("expected setup error for p=0")
	}
	if cs != nil || errs != nil {
		t.Fatalf("expected nil results on setup error, got %v %v", cs, errs)
	}
}

// TestTryRunUserError: a plain application error from one rank is reported
// on that rank only, without aborting the others.
func TestTryRunUserError(t *testing.T) {
	const p = 3
	sentinel := errors.New("application failure")
	_, errs, err := TryRun(p, Options{}, func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, e := range errs {
		if r == 1 && !errors.Is(e, sentinel) {
			t.Errorf("rank 1: %v, want sentinel", e)
		}
		if r != 1 && e != nil {
			t.Errorf("rank %d: unexpected error %v", r, e)
		}
	}
}

// TestFailedWorldRejectsNewTraffic: after an abort the world stays poisoned —
// later sends/receives on any surviving Comm abort immediately instead of
// touching mailboxes.
func TestFailedWorldRejectsNewTraffic(t *testing.T) {
	const p = 2
	inj := faults.New(faults.Spec{Clauses: []faults.Clause{{
		Kind: faults.Crash, Rank: 0, Round: 1,
	}}}, 19, p)
	opts := Options{Faults: inj, RecvTimeout: time.Second}
	_, errs, err := TryRun(p, opts, func(c *Comm) error {
		c.Barrier()
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if errs[r] == nil || !errors.Is(errs[r], ErrRankFailed) {
			t.Errorf("rank %d: %v, want ErrRankFailed", r, errs[r])
		}
	}
}
