// Package faults is the deterministic fault injector of the simulated
// distributed runtime (docs/ROBUSTNESS.md). A Spec — parsed from a compact
// string such as
//
//	crash:rank=3,round=12;delay:p=0.01,ms=5;drop:p=0.005,max=2
//
// — describes which faults to inject; an Injector seeded with the spec
// answers the runtime's per-event questions ("should this send be delayed?
// dropped? should this rank crash at this superstep?") from per-rank RNG
// streams, so a given (spec, seed) pair replays the same fault schedule on
// every run regardless of goroutine interleaving across ranks.
//
// Injected faults never corrupt payloads: delays stretch time, drops force
// bounded retransmission of an identical message, reorders permute chunk
// *notification* order (the data is already in place), and crashes stop a
// rank at a chosen BSP round. A fault-injected run that completes therefore
// produces bitwise-identical results to a fault-free run — the property the
// checkpoint/resume determinism tests assert.
//
// The package deliberately does not import internal/dist: dist imports
// faults and applies the decisions, keeping the injector a pure, easily
// testable policy object.
package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind string

// Fault kinds. Crash halts a rank at a chosen communication round (BSP
// superstep count); Delay sleeps before a send (straggler emulation); Drop
// fails a send transiently, forcing the runtime's bounded retry; Reorder
// swaps the delivery order of adjacent chunked-allgather arrival
// notifications.
const (
	Crash   Kind = "crash"
	Delay   Kind = "delay"
	Drop    Kind = "drop"
	Reorder Kind = "reorder"
)

// Wire-level fault kinds, applied by the TCP transport (internal/dist/net)
// at the socket layer rather than by the BSP runtime. ConnDrop closes the
// connection immediately before a frame write, forcing the transport's
// redial-and-resend path; SlowSock stalls socket writes (wire-level
// straggler emulation); Partition stalls every outbound write of one rank
// — heartbeats included — for a window, so peers exercise their liveness
// timeout.
const (
	ConnDrop  Kind = "conndrop"
	SlowSock  Kind = "slowsock"
	Partition Kind = "partition"
)

// Clause is one parsed fault directive.
type Clause struct {
	Kind  Kind
	Rank  int           // target rank; -1 = any rank (delay/drop/reorder)
	Round int64         // crash: the communication round to crash at
	P     float64       // delay/drop/reorder: per-event probability
	Dur   time.Duration // delay: sleep duration
	Max   int           // drop: max consecutive drops of one message (bounds retries)
}

// Spec is a parsed fault specification.
type Spec struct {
	Clauses []Clause
}

// Empty reports whether the spec injects nothing.
func (s Spec) Empty() bool { return len(s.Clauses) == 0 }

// String renders the spec back into the grammar it was parsed from.
func (s Spec) String() string {
	var parts []string
	for _, c := range s.Clauses {
		switch c.Kind {
		case Crash:
			parts = append(parts, fmt.Sprintf("crash:rank=%d,round=%d", c.Rank, c.Round))
		case Delay:
			p := fmt.Sprintf("delay:p=%g,ms=%g", c.P, float64(c.Dur)/float64(time.Millisecond))
			if c.Rank >= 0 {
				p += fmt.Sprintf(",rank=%d", c.Rank)
			}
			parts = append(parts, p)
		case Drop:
			parts = append(parts, fmt.Sprintf("drop:p=%g,max=%d", c.P, c.Max))
		case Reorder:
			parts = append(parts, fmt.Sprintf("reorder:p=%g", c.P))
		case ConnDrop:
			parts = append(parts, fmt.Sprintf("conndrop:p=%g,max=%d", c.P, c.Max))
		case SlowSock:
			p := fmt.Sprintf("slowsock:p=%g,ms=%g", c.P, float64(c.Dur)/float64(time.Millisecond))
			if c.Rank >= 0 {
				p += fmt.Sprintf(",rank=%d", c.Rank)
			}
			parts = append(parts, p)
		case Partition:
			parts = append(parts, fmt.Sprintf("partition:rank=%d,ms=%g", c.Rank, float64(c.Dur)/float64(time.Millisecond)))
		}
	}
	return strings.Join(parts, ";")
}

// Parse reads a fault spec string. The grammar is
//
//	spec    := clause (';' clause)*
//	clause  := kind ':' param (',' param)*
//	param   := key '=' value
//	kind    := 'crash' | 'delay' | 'drop' | 'reorder'
//
// with per-kind parameters:
//
//	crash:rank=<int>,round=<int>      halt rank at its round-th superstep
//	delay:p=<float>,ms=<float>[,rank=<int>]   sleep ms before a send, prob p
//	drop:p=<float>[,max=<int>]        fail a send transiently, prob p,
//	                                  at most max consecutive drops (default 2)
//	reorder:p=<float>                 swap adjacent chunk arrivals, prob p
//	conndrop:p=<float>[,max=<int>]    close the socket before a frame write,
//	                                  prob p, at most max consecutive (default 2)
//	slowsock:p=<float>,ms=<float>[,rank=<int>]   stall a socket write, prob p
//	partition:rank=<int>,ms=<float>   stall all of rank's outbound writes
//	                                  (heartbeats included) for a one-shot window
//
// An empty string parses to an empty spec.
func Parse(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, raw := range strings.Split(s, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		kind, rest, _ := strings.Cut(raw, ":")
		params := map[string]string{}
		if rest != "" {
			for _, kv := range strings.Split(rest, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return Spec{}, fmt.Errorf("faults: clause %q: parameter %q is not key=value", raw, kv)
				}
				params[strings.TrimSpace(k)] = strings.TrimSpace(v)
			}
		}
		getInt := func(key string, def int64) (int64, error) {
			v, ok := params[key]
			if !ok {
				return def, nil
			}
			delete(params, key)
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return 0, fmt.Errorf("faults: clause %q: %s=%q is not an integer", raw, key, v)
			}
			return n, nil
		}
		getFloat := func(key string, def float64) (float64, error) {
			v, ok := params[key]
			if !ok {
				return def, nil
			}
			delete(params, key)
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return 0, fmt.Errorf("faults: clause %q: %s=%q is not a number", raw, key, v)
			}
			return f, nil
		}
		c := Clause{Kind: Kind(strings.TrimSpace(kind)), Rank: -1}
		var err error
		switch c.Kind {
		case Crash:
			var rank, round int64
			if rank, err = getInt("rank", -1); err != nil {
				return Spec{}, err
			}
			if round, err = getInt("round", -1); err != nil {
				return Spec{}, err
			}
			if rank < 0 || round < 0 {
				return Spec{}, fmt.Errorf("faults: clause %q: crash needs rank= and round=", raw)
			}
			c.Rank, c.Round = int(rank), round
		case Delay:
			var ms float64
			var rank int64
			if c.P, err = getFloat("p", 1); err != nil {
				return Spec{}, err
			}
			if ms, err = getFloat("ms", 0); err != nil {
				return Spec{}, err
			}
			if rank, err = getInt("rank", -1); err != nil {
				return Spec{}, err
			}
			if ms <= 0 {
				return Spec{}, fmt.Errorf("faults: clause %q: delay needs ms>0", raw)
			}
			c.Dur = time.Duration(ms * float64(time.Millisecond))
			c.Rank = int(rank)
		case Drop:
			var max int64
			if c.P, err = getFloat("p", 0); err != nil {
				return Spec{}, err
			}
			if max, err = getInt("max", 2); err != nil {
				return Spec{}, err
			}
			if c.P <= 0 {
				return Spec{}, fmt.Errorf("faults: clause %q: drop needs p>0", raw)
			}
			if max < 1 {
				return Spec{}, fmt.Errorf("faults: clause %q: drop needs max>=1", raw)
			}
			c.Max = int(max)
		case Reorder:
			if c.P, err = getFloat("p", 0); err != nil {
				return Spec{}, err
			}
			if c.P <= 0 {
				return Spec{}, fmt.Errorf("faults: clause %q: reorder needs p>0", raw)
			}
		case ConnDrop:
			var max int64
			if c.P, err = getFloat("p", 0); err != nil {
				return Spec{}, err
			}
			if max, err = getInt("max", 2); err != nil {
				return Spec{}, err
			}
			if c.P <= 0 {
				return Spec{}, fmt.Errorf("faults: clause %q: conndrop needs p>0", raw)
			}
			if max < 1 {
				return Spec{}, fmt.Errorf("faults: clause %q: conndrop needs max>=1", raw)
			}
			c.Max = int(max)
		case SlowSock:
			var ms float64
			var rank int64
			if c.P, err = getFloat("p", 1); err != nil {
				return Spec{}, err
			}
			if ms, err = getFloat("ms", 0); err != nil {
				return Spec{}, err
			}
			if rank, err = getInt("rank", -1); err != nil {
				return Spec{}, err
			}
			if ms <= 0 {
				return Spec{}, fmt.Errorf("faults: clause %q: slowsock needs ms>0", raw)
			}
			c.Dur = time.Duration(ms * float64(time.Millisecond))
			c.Rank = int(rank)
		case Partition:
			var ms float64
			var rank int64
			if rank, err = getInt("rank", -1); err != nil {
				return Spec{}, err
			}
			if ms, err = getFloat("ms", 0); err != nil {
				return Spec{}, err
			}
			if rank < 0 || ms <= 0 {
				return Spec{}, fmt.Errorf("faults: clause %q: partition needs rank= and ms>0", raw)
			}
			c.Rank = int(rank)
			c.Dur = time.Duration(ms * float64(time.Millisecond))
		default:
			return Spec{}, fmt.Errorf("faults: unknown fault kind %q in clause %q", kind, raw)
		}
		if len(params) > 0 {
			for k := range params {
				return Spec{}, fmt.Errorf("faults: clause %q: unknown parameter %q", raw, k)
			}
		}
		if c.P < 0 || c.P > 1 {
			return Spec{}, fmt.Errorf("faults: clause %q: probability %g outside [0,1]", raw, c.P)
		}
		spec.Clauses = append(spec.Clauses, c)
	}
	return spec, nil
}

// MaxDrops returns the largest max parameter over drop clauses (0 when the
// spec has none) — the retry budget the runtime must exceed for bounded
// retransmission to always succeed.
func (s Spec) MaxDrops() int {
	m := 0
	for _, c := range s.Clauses {
		if c.Kind == Drop && c.Max > m {
			m = c.Max
		}
	}
	return m
}

// SendAction is the injector's decision for one point-to-point send attempt.
type SendAction struct {
	Delay time.Duration // sleep this long before sending (0 = none)
	Drop  bool          // fail this attempt transiently (caller retries)
}

// WireAction is the injector's decision for one outbound frame write at
// the socket layer (TCP transport only).
type WireAction struct {
	Delay time.Duration // stall the socket write this long (slowsock, partition)
	Drop  bool          // close the connection before writing (caller redials and resends)
}

// Injector applies a Spec deterministically. Each rank draws from its own
// seeded RNG stream (guarded by a per-rank mutex: a rank's main goroutine
// and its chunked-gather helper may both consult the stream), so fault
// decisions on rank r do not depend on the scheduling of other ranks.
// Crash clauses fire exactly once per Injector lifetime: a training loop
// that rebuilds the world after a failure keeps the same Injector, so the
// crash does not re-fire on the recovered incarnation.
type Injector struct {
	spec Spec
	seed int64

	mu      []sync.Mutex
	rngs    []*rand.Rand
	crashed []sync.Once // one per crash clause

	// Partition windows are one-shot per clause: the window opens at the
	// target rank's first wire action and every subsequent write stalls
	// until it closes.
	partMu    sync.Mutex
	partStart []time.Time // one per clause (zero until armed; only partition entries used)
}

// maxRanks bounds the lazily sized per-rank state; the simulated runtime
// never exceeds a few hundred ranks.
const maxRanks = 1 << 12

// New builds an injector for up to p ranks.
func New(spec Spec, seed int64, p int) *Injector {
	if p < 1 || p > maxRanks {
		p = maxRanks
	}
	in := &Injector{
		spec:      spec,
		seed:      seed,
		mu:        make([]sync.Mutex, p),
		rngs:      make([]*rand.Rand, p),
		crashed:   make([]sync.Once, len(spec.Clauses)),
		partStart: make([]time.Time, len(spec.Clauses)),
	}
	for r := 0; r < p; r++ {
		// Distinct, reproducible stream per rank.
		in.rngs[r] = rand.New(rand.NewSource(seed*1_000_003 + int64(r)))
	}
	return in
}

// Spec returns the injector's parsed spec.
func (in *Injector) Spec() Spec { return in.spec }

// roll draws a uniform [0,1) sample from rank's stream.
func (in *Injector) roll(rank int) float64 {
	if rank < 0 || rank >= len(in.rngs) {
		return 1 // out of managed range: never fires
	}
	in.mu[rank].Lock()
	v := in.rngs[rank].Float64()
	in.mu[rank].Unlock()
	return v
}

// OnSend decides the fate of one send attempt from rank. attempt is 1-based
// and increments across retries of the same message; drop clauses stop
// firing once attempt exceeds their max, so retransmission always succeeds
// within a bounded number of retries.
func (in *Injector) OnSend(rank, attempt int) SendAction {
	var act SendAction
	for _, c := range in.spec.Clauses {
		switch c.Kind {
		case Delay:
			if c.Rank >= 0 && c.Rank != rank {
				continue
			}
			if in.roll(rank) < c.P {
				act.Delay += c.Dur
			}
		case Drop:
			if attempt <= c.Max && in.roll(rank) < c.P {
				act.Drop = true
			}
		}
	}
	return act
}

// CrashNow reports whether rank should crash upon entering its round-th
// communication round. Each crash clause fires at most once per Injector.
func (in *Injector) CrashNow(rank int, round int64) bool {
	for i, c := range in.spec.Clauses {
		if c.Kind != Crash || c.Rank != rank || round < c.Round {
			continue
		}
		fired := false
		in.crashed[i].Do(func() { fired = true })
		if fired {
			return true
		}
	}
	return false
}

// OnWire decides the fate of one outbound frame write from rank at the
// socket layer. attempt is 1-based and increments across redial-and-resend
// retries of the same frame; conndrop clauses stop firing once attempt
// exceeds their max, so resends succeed within a bounded number of
// reconnects. Partition clauses arm on the target rank's first wire action
// and stall every write until their window closes.
func (in *Injector) OnWire(rank, attempt int) WireAction {
	var act WireAction
	for i, c := range in.spec.Clauses {
		switch c.Kind {
		case SlowSock:
			if c.Rank >= 0 && c.Rank != rank {
				continue
			}
			if in.roll(rank) < c.P {
				act.Delay += c.Dur
			}
		case ConnDrop:
			if attempt <= c.Max && in.roll(rank) < c.P {
				act.Drop = true
			}
		case Partition:
			if c.Rank != rank {
				continue
			}
			in.partMu.Lock()
			if in.partStart[i].IsZero() {
				in.partStart[i] = time.Now()
			}
			remain := c.Dur - time.Since(in.partStart[i])
			in.partMu.Unlock()
			if remain > 0 {
				act.Delay += remain
			}
		}
	}
	return act
}

// HasWire reports whether the spec contains any wire-level clause, so the
// transport only installs its fault hook when one exists.
func (s Spec) HasWire() bool {
	for _, c := range s.Clauses {
		switch c.Kind {
		case ConnDrop, SlowSock, Partition:
			return true
		}
	}
	return false
}

// ReorderChunk reports whether the chunked-gather notification for the
// current hop on rank should be held back and swapped with the next one.
func (in *Injector) ReorderChunk(rank int) bool {
	for _, c := range in.spec.Clauses {
		if c.Kind == Reorder && in.roll(rank) < c.P {
			return true
		}
	}
	return false
}
