package faults

import (
	"strings"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	spec, err := Parse("crash:rank=3,round=12;delay:p=0.01,ms=5;drop:p=0.005,max=2;reorder:p=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Clauses) != 4 {
		t.Fatalf("parsed %d clauses, want 4", len(spec.Clauses))
	}
	c := spec.Clauses[0]
	if c.Kind != Crash || c.Rank != 3 || c.Round != 12 {
		t.Errorf("crash clause = %+v", c)
	}
	d := spec.Clauses[1]
	if d.Kind != Delay || d.P != 0.01 || d.Dur != 5*time.Millisecond || d.Rank != -1 {
		t.Errorf("delay clause = %+v", d)
	}
	dr := spec.Clauses[2]
	if dr.Kind != Drop || dr.P != 0.005 || dr.Max != 2 {
		t.Errorf("drop clause = %+v", dr)
	}
	if spec.MaxDrops() != 2 {
		t.Errorf("MaxDrops = %d, want 2", spec.MaxDrops())
	}
	// String() re-parses to the same clause set.
	spec2, err := Parse(spec.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", spec.String(), err)
	}
	if len(spec2.Clauses) != len(spec.Clauses) {
		t.Errorf("round trip changed clause count: %q", spec.String())
	}
}

func TestParseEmpty(t *testing.T) {
	spec, err := Parse("  ")
	if err != nil || !spec.Empty() {
		t.Fatalf("empty spec: %v %v", spec, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"boom:p=1",              // unknown kind
		"crash:rank=1",          // missing round
		"crash:round=4",         // missing rank
		"delay:p=0.5",           // missing ms
		"delay:p=2,ms=1",        // probability out of range
		"drop:max=3",            // missing p
		"drop:p=0.1,max=0",      // max < 1
		"reorder:",              // missing p
		"delay:p=0.1,ms=1,x=2",  // unknown parameter
		"delay:p=zebra,ms=1",    // non-numeric
		"crash:rank=1,round=xy", // non-integer
		"delay:p 0.1",           // not key=value
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

// TestDeterministicStreams: the same (spec, seed) pair replays identical
// per-rank decisions, and distinct ranks draw independent streams.
func TestDeterministicStreams(t *testing.T) {
	spec, err := Parse("drop:p=0.3,max=2;delay:p=0.2,ms=1")
	if err != nil {
		t.Fatal(err)
	}
	record := func() []SendAction {
		in := New(spec, 42, 4)
		var out []SendAction
		for r := 0; r < 4; r++ {
			for i := 1; i <= 16; i++ {
				out = append(out, in.OnSend(r, 1))
			}
		}
		return out
	}
	a, b := record(), record()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical injectors: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must eventually diverge.
	in2 := New(spec, 43, 4)
	diverged := false
	in1 := New(spec, 42, 4)
	for i := 0; i < 64 && !diverged; i++ {
		if in1.OnSend(0, 1) != in2.OnSend(0, 1) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 42 and 43 produced identical decision streams")
	}
}

// TestDropBoundedByMax: attempts beyond max are never dropped, so a sender
// with retries > max always gets through.
func TestDropBoundedByMax(t *testing.T) {
	spec, err := Parse("drop:p=1,max=2")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec, 7, 2)
	if !in.OnSend(0, 1).Drop || !in.OnSend(0, 2).Drop {
		t.Error("p=1 drop did not fire within max attempts")
	}
	if in.OnSend(0, 3).Drop {
		t.Error("drop fired beyond max attempts: retransmission can never succeed")
	}
}

// TestCrashFiresOnce: the crash clause fires at the first round >= target
// and never again — the rebuilt world after recovery must not re-crash.
func TestCrashFiresOnce(t *testing.T) {
	spec, err := Parse("crash:rank=1,round=5")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec, 0, 4)
	if in.CrashNow(1, 4) {
		t.Error("crashed before target round")
	}
	if in.CrashNow(0, 5) {
		t.Error("wrong rank crashed")
	}
	if !in.CrashNow(1, 5) {
		t.Error("rank 1 did not crash at round 5")
	}
	for round := int64(1); round < 10; round++ {
		if in.CrashNow(1, round) {
			t.Fatalf("crash re-fired at round %d after recovery", round)
		}
	}
}

func TestSpecStringContainsKinds(t *testing.T) {
	spec, _ := Parse("crash:rank=0,round=1;reorder:p=0.5")
	s := spec.String()
	for _, want := range []string{"crash:", "reorder:"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
