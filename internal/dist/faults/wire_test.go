package faults

import (
	"strings"
	"testing"
	"time"
)

// TestParseWireRoundTrip: the wire-level verbs parse into the expected
// clauses and String() renders back into the same grammar.
func TestParseWireRoundTrip(t *testing.T) {
	spec, err := Parse("conndrop:p=1,max=3;slowsock:p=0.5,ms=2,rank=1;partition:rank=2,ms=250")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Clauses) != 3 {
		t.Fatalf("parsed %d clauses, want 3", len(spec.Clauses))
	}
	cd := spec.Clauses[0]
	if cd.Kind != ConnDrop || cd.P != 1 || cd.Max != 3 {
		t.Errorf("conndrop clause = %+v", cd)
	}
	ss := spec.Clauses[1]
	if ss.Kind != SlowSock || ss.P != 0.5 || ss.Dur != 2*time.Millisecond || ss.Rank != 1 {
		t.Errorf("slowsock clause = %+v", ss)
	}
	pt := spec.Clauses[2]
	if pt.Kind != Partition || pt.Rank != 2 || pt.Dur != 250*time.Millisecond {
		t.Errorf("partition clause = %+v", pt)
	}
	spec2, err := Parse(spec.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", spec.String(), err)
	}
	for i := range spec.Clauses {
		if spec2.Clauses[i] != spec.Clauses[i] {
			t.Errorf("clause %d changed across round trip: %+v vs %+v",
				i, spec.Clauses[i], spec2.Clauses[i])
		}
	}
}

// TestParseWireErrors: malformed wire clauses fail with an error that names
// the offending clause and the constraint it violated — the operator pasting
// a -faults string needs to know which part to fix.
func TestParseWireErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string // substring the error must carry
	}{
		{"conndrop:", "conndrop needs p>0"},
		{"conndrop:max=2", "conndrop needs p>0"},
		{"conndrop:p=0,max=2", "conndrop needs p>0"},
		{"conndrop:p=0.5,max=0", "conndrop needs max>=1"},
		{"conndrop:p=1.5,max=2", "outside [0,1]"},
		{"conndrop:p=-0.5,max=2", "conndrop needs p>0"},
		{"conndrop:p=zebra", "not a number"},
		{"conndrop:p=1,max=1.5", "not an integer"},
		{"conndrop:p=1,burst=3", `unknown parameter "burst"`},
		{"slowsock:p=1", "slowsock needs ms>0"},
		{"slowsock:p=1,ms=0", "slowsock needs ms>0"},
		{"slowsock:p=1,ms=-2", "slowsock needs ms>0"},
		{"slowsock:p=2,ms=1", "outside [0,1]"},
		{"slowsock:ms=1,rank=x", "not an integer"},
		{"partition:ms=5", "partition needs rank= and ms>0"},
		{"partition:rank=1", "partition needs rank= and ms>0"},
		{"partition:rank=-1,ms=5", "partition needs rank= and ms>0"},
		{"partition:rank=1,ms=0", "partition needs rank= and ms>0"},
		{"partition:rank=1,ms=5,p=0.5", `unknown parameter "p"`},
		{"partition rank=1", "unknown fault kind"},
		{"conndrop:p", "not key=value"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.in, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) = %q, want substring %q", tc.in, err.Error(), tc.want)
		}
		if !strings.Contains(err.Error(), "faults:") {
			t.Errorf("Parse(%q) error %q lacks the faults: prefix", tc.in, err.Error())
		}
	}
}

// TestHasWire: only specs with wire-level clauses make the transport
// install its fault hook.
func TestHasWire(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want bool
	}{
		{"", false},
		{"crash:rank=1,round=5;drop:p=0.1,max=2", false},
		{"conndrop:p=0.5,max=2", true},
		{"slowsock:p=1,ms=1", true},
		{"partition:rank=0,ms=10", true},
		{"crash:rank=1,round=5;slowsock:p=1,ms=1", true},
	} {
		spec, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if got := spec.HasWire(); got != tc.want {
			t.Errorf("HasWire(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestOnWireConnDropBounded: with p=1 the drop fires on every attempt up to
// max and never beyond — the transport's redial-and-resend loop is
// guaranteed to terminate.
func TestOnWireConnDropBounded(t *testing.T) {
	spec, err := Parse("conndrop:p=1,max=2")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec, 11, 2)
	if !in.OnWire(0, 1).Drop || !in.OnWire(0, 2).Drop {
		t.Error("p=1 conndrop did not fire within max attempts")
	}
	for attempt := 3; attempt <= 6; attempt++ {
		if in.OnWire(0, attempt).Drop {
			t.Fatalf("conndrop fired at attempt %d beyond max=2: resend can never succeed", attempt)
		}
	}
}

// TestOnWireSlowSockDelay: slowsock stalls writes of the targeted rank by
// the configured duration and leaves other ranks untouched.
func TestOnWireSlowSockDelay(t *testing.T) {
	spec, err := Parse("slowsock:p=1,ms=7,rank=1")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec, 3, 3)
	if d := in.OnWire(1, 1).Delay; d != 7*time.Millisecond {
		t.Errorf("targeted rank delay = %v, want 7ms", d)
	}
	for _, r := range []int{0, 2} {
		if act := in.OnWire(r, 1); act.Delay != 0 || act.Drop {
			t.Errorf("rank %d got %+v from a rank=1 slowsock clause", r, act)
		}
	}
}

// TestOnWirePartitionWindow: the partition window arms at the target rank's
// first wire action, stalls writes while open, and closes for good — and it
// never touches other ranks.
func TestOnWirePartitionWindow(t *testing.T) {
	spec, err := Parse("partition:rank=0,ms=40")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec, 1, 2)
	if act := in.OnWire(1, 1); act.Delay != 0 || act.Drop {
		t.Fatalf("non-target rank got %+v", act)
	}
	first := in.OnWire(0, 1) // arms the window
	if first.Delay <= 0 || first.Delay > 40*time.Millisecond {
		t.Fatalf("first write in window stalled %v, want (0, 40ms]", first.Delay)
	}
	if d := in.OnWire(0, 1).Delay; d > first.Delay {
		t.Errorf("remaining window grew from %v to %v", first.Delay, d)
	}
	time.Sleep(50 * time.Millisecond) // let the one-shot window lapse
	for i := 0; i < 3; i++ {
		if d := in.OnWire(0, 1).Delay; d != 0 {
			t.Fatalf("partition window re-opened: delay %v after expiry", d)
		}
	}
}

// TestOnWireDeterministicStreams: like OnSend, OnWire decisions replay
// bitwise for a fixed (spec, seed) pair.
func TestOnWireDeterministicStreams(t *testing.T) {
	spec, err := Parse("conndrop:p=0.4,max=3;slowsock:p=0.3,ms=1")
	if err != nil {
		t.Fatal(err)
	}
	record := func() []WireAction {
		in := New(spec, 99, 3)
		var out []WireAction
		for r := 0; r < 3; r++ {
			for i := 1; i <= 16; i++ {
				out = append(out, in.OnWire(r, 1))
			}
		}
		return out
	}
	a, b := record(), record()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wire decision %d differs across identical injectors: %+v vs %+v", i, a[i], b[i])
		}
	}
}
