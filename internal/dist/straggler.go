package dist

// Straggler and imbalance diagnostics: every rank times the blocking
// portion of its receives, and on each BSP superstep boundary (round) the
// accumulated wait is published as a per-rank histogram, compared against
// the cross-rank median, and — when one rank waited far longer than its
// peers — flagged as a straggler in both the metrics registry and the
// flight recorder. This is the runtime answer to "which rank stalled and
// by how much" for overlap and fault runs (docs/OBSERVABILITY.md): a rank
// that waits is a rank whose *peers* are slow, so the straggler event
// names the victim and the dump shows the perpetrator's lane.

import (
	"time"

	"agnn/internal/obs/flight"
	"agnn/internal/obs/metrics"
)

// Straggler detection thresholds.
const (
	// DefaultStragglerFactor flags a rank when its superstep wait exceeds
	// this multiple of the cross-rank median wait.
	DefaultStragglerFactor = 4.0
	// DefaultStragglerFloor suppresses detections below this absolute
	// wait: scheduling jitter makes sub-100µs ratios meaningless.
	// Tunable per run via Options.StragglerFloor (agnn-train
	// -straggler-floor).
	DefaultStragglerFloor = 100 * time.Microsecond
)

func (o Options) stragglerFactor() float64 {
	if o.StragglerFactor > 0 {
		return o.StragglerFactor
	}
	return DefaultStragglerFactor
}

func (o Options) stragglerFloorNs() int64 {
	if o.StragglerFloor > 0 {
		return o.StragglerFloor.Nanoseconds()
	}
	return DefaultStragglerFloor.Nanoseconds()
}

// noteWait adds one blocked-receive duration to the rank's current
// superstep accumulator. Two atomic adds; called on the Recv hot path.
func (w *World) noteWait(rank int, ns int64) {
	if ns > 0 {
		w.waitNs[rank].Add(ns)
	}
}

// superstep closes rank's current superstep: it drains the wait
// accumulator into the per-rank histogram and flight lane, then compares
// the wait against the cross-rank median of last-superstep waits (scratch
// is the caller's preallocated sort buffer, so the steady state does not
// allocate). Detected stragglers increment the rank's counter and leave a
// straggler event on its lane; the max/median ratio lands on the
// imbalance gauge.
func (w *World) superstep(rank int, round int64, scratch []int64) {
	wait := w.waitNs[rank].Swap(0)
	w.lastWait[rank].Store(wait)
	w.mWait[rank].Observe(float64(wait) / 1e9)
	w.flanes[rank].Record(flight.KindSuperstep, codeSuperstep, round, wait, 0)
	if w.local >= 0 {
		// Wire-transport world: peer waits live in other processes, so the
		// cross-rank median is unknowable here. Per-rank wait histograms and
		// superstep events still record; cross-rank straggler attribution is
		// an offline merge of the per-process dumps.
		return
	}

	maxW := int64(0)
	for r := 0; r < w.P; r++ {
		v := w.lastWait[r].Load()
		scratch[r] = v
		if v > maxW {
			maxW = v
		}
	}
	// Insertion sort: p is small and the slice is reused, so this is the
	// cheapest allocation-free median.
	for i := 1; i < len(scratch); i++ {
		for j := i; j > 0 && scratch[j-1] > scratch[j]; j-- {
			scratch[j-1], scratch[j] = scratch[j], scratch[j-1]
		}
	}
	median := scratch[len(scratch)/2]
	if median > 0 {
		metrics.WaitImbalanceRatio.Set(float64(maxW) / float64(median))
	}
	// A zero median (peers not waiting at all) does not suppress detection:
	// a rank blocked past the absolute floor while the median rank sails
	// through is the sharpest straggler signal there is.
	if wait >= w.opts.stragglerFloorNs() && float64(wait) > w.opts.stragglerFactor()*float64(median) {
		w.mStrag[rank].Inc()
		w.flanes[rank].Record(flight.KindStraggler, codeStraggler, wait, median, round)
	}
}

// Interned flight codes for the runtime's event names, resolved once at
// package init so hot paths carry plain integers.
var (
	codeSuperstep = flight.Code("superstep")
	codeStraggler = flight.Code("straggler-wait")
)
