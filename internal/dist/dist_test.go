package dist

import (
	"math"
	"sync/atomic"
	"testing"
)

func seq(n int, offset float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = offset + float64(i)
	}
	return v
}

func TestRunSpawnsAllRanks(t *testing.T) {
	var count int64
	Run(7, func(c *Comm) {
		atomic.AddInt64(&count, 1)
		if c.Size() != 7 || c.Rank() != c.GlobalRank() {
			t.Error("world communicator metadata wrong")
		}
	})
	if count != 7 {
		t.Fatalf("ran %d ranks", count)
	}
}

func TestSendRecv(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, []float64{1, 2, 3})
		} else {
			got := c.Recv(0)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("Recv = %v", got)
			}
		}
	})
}

func TestSendCopiesData(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{1}
			c.Send(1, buf)
			buf[0] = 99 // must not affect the receiver
		} else {
			if got := c.Recv(0); got[0] != 1 {
				t.Errorf("message aliased sender buffer: %v", got)
			}
		}
	})
}

func TestBcastAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		for _, n := range []int{1, 5, 100, 1003} {
			for root := 0; root < p; root += max(1, p-1) {
				want := seq(n, 42)
				Run(p, func(c *Comm) {
					var in []float64
					if c.Rank() == root {
						in = want
					}
					got := c.Bcast(in, root)
					for i := range want {
						if got[i] != want[i] {
							t.Errorf("p=%d n=%d rank %d: bcast[%d] = %v", p, n, c.Rank(), i, got[i])
							return
						}
					}
				})
			}
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		Run(p, func(c *Comm) {
			// Varying lengths: rank r contributes r+1 values of value r.
			mine := make([]float64, c.Rank()+1)
			for i := range mine {
				mine[i] = float64(c.Rank())
			}
			got := c.Allgather(mine)
			wantLen := p * (p + 1) / 2
			if len(got) != wantLen {
				t.Errorf("p=%d: allgather length %d, want %d", p, len(got), wantLen)
				return
			}
			idx := 0
			for r := 0; r < p; r++ {
				for i := 0; i <= r; i++ {
					if got[idx] != float64(r) {
						t.Errorf("p=%d: allgather[%d] = %v, want %d", p, idx, got[idx], r)
						return
					}
					idx++
				}
			}
		})
	}
}

func TestReduceScatterAndAllreduce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6} {
		n := 17
		Run(p, func(c *Comm) {
			data := seq(n, float64(c.Rank()))
			// Element-wise sum over ranks: Σ_r (i + r) = p·i + p(p-1)/2.
			wantAt := func(i int) float64 { return float64(p*i) + float64(p*(p-1))/2 }

			full := c.Allreduce(data)
			for i := 0; i < n; i++ {
				if math.Abs(full[i]-wantAt(i)) > 1e-12 {
					t.Errorf("p=%d: allreduce[%d] = %v, want %v", p, i, full[i], wantAt(i))
					return
				}
			}
			bounds := chunkBounds(n, p)
			mine := c.ReduceScatter(data)
			if len(mine) != bounds[c.Rank()+1]-bounds[c.Rank()] {
				t.Errorf("p=%d: reduce-scatter chunk length %d", p, len(mine))
				return
			}
			for i, v := range mine {
				if math.Abs(v-wantAt(bounds[c.Rank()]+i)) > 1e-12 {
					t.Errorf("p=%d rank %d: rs[%d] = %v", p, c.Rank(), i, v)
					return
				}
			}
		})
	}
}

func TestReduce(t *testing.T) {
	for _, root := range []int{0, 2} {
		Run(3, func(c *Comm) {
			data := []float64{float64(c.Rank() + 1), 10}
			got := c.Reduce(data, root)
			if c.Rank() != root {
				if got != nil {
					t.Error("non-root must return nil")
				}
				return
			}
			if got[0] != 6 || got[1] != 30 {
				t.Errorf("reduce = %v", got)
			}
		})
	}
}

func TestGathervScatterv(t *testing.T) {
	Run(4, func(c *Comm) {
		got := c.Gatherv([]float64{float64(c.Rank())}, 1)
		if c.Rank() == 1 {
			for r := 0; r < 4; r++ {
				if got[r][0] != float64(r) {
					t.Errorf("gatherv[%d] = %v", r, got[r])
				}
			}
		} else if got != nil {
			t.Error("non-root gatherv must return nil")
		}
		var chunks [][]float64
		if c.Rank() == 0 {
			chunks = [][]float64{{0}, {10}, {20}, {30}}
		}
		mine := c.Scatterv(chunks, 0)
		if mine[0] != float64(10*c.Rank()) {
			t.Errorf("scatterv rank %d = %v", c.Rank(), mine)
		}
	})
}

func TestAlltoallv(t *testing.T) {
	p := 4
	Run(p, func(c *Comm) {
		out := make([][]float64, p)
		for r := 0; r < p; r++ {
			out[r] = []float64{float64(100*c.Rank() + r)}
		}
		in := c.Alltoallv(out)
		for r := 0; r < p; r++ {
			want := float64(100*r + c.Rank())
			if in[r][0] != want {
				t.Errorf("alltoall in[%d] = %v, want %v", r, in[r][0], want)
			}
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	var entered int64
	Run(5, func(c *Comm) {
		atomic.AddInt64(&entered, 1)
		c.Barrier()
		if atomic.LoadInt64(&entered) != 5 {
			t.Error("rank left barrier before all entered")
		}
	})
}

func TestGroupCommunicators(t *testing.T) {
	// 2×2 grid: row groups {0,1} and {2,3}; column groups {0,2} and {1,3}.
	Run(4, func(c *Comm) {
		rowRanks := []int{(c.Rank() / 2) * 2, (c.Rank()/2)*2 + 1}
		row := c.Group(rowRanks)
		if row == nil {
			t.Error("rank missing from its own row group")
			return
		}
		sum := row.Allreduce([]float64{float64(c.Rank())})
		want := float64(rowRanks[0] + rowRanks[1])
		if sum[0] != want {
			t.Errorf("row allreduce = %v, want %v", sum[0], want)
		}
		colRanks := []int{c.Rank() % 2, c.Rank()%2 + 2}
		col := c.Group(colRanks)
		sum = col.Allreduce([]float64{float64(c.Rank())})
		want = float64(colRanks[0] + colRanks[1])
		if sum[0] != want {
			t.Errorf("col allreduce = %v, want %v", sum[0], want)
		}
	})
}

func TestGroupReturnsNilForNonMembers(t *testing.T) {
	Run(3, func(c *Comm) {
		g := c.Group([]int{0, 1})
		if c.Rank() == 2 && g != nil {
			t.Error("non-member got a group communicator")
		}
		if c.Rank() != 2 && g == nil {
			t.Error("member did not get a group communicator")
		}
		if c.Rank() != 2 {
			g.Barrier()
		}
	})
}

func TestCountersVolumeOptimality(t *testing.T) {
	// Per-rank bcast volume must stay O(n), not O(n·p): with p = 8 and
	// n = 8000 words, no rank may send more than ~2n words (+ small headers).
	n := 8000
	cs := Run(8, func(c *Comm) {
		var in []float64
		if c.Rank() == 0 {
			in = seq(n, 0)
		}
		c.Bcast(in, 0)
	})
	maxBytes := MaxCounters(cs).BytesSent
	if maxBytes > int64(8*2*n+8*64) {
		t.Fatalf("bcast max per-rank volume %d bytes exceeds 2n words", maxBytes)
	}
	if maxBytes < int64(8*n/2) {
		t.Fatalf("bcast volume %d suspiciously low — counters broken?", maxBytes)
	}
	// Allreduce ≈ 2n per rank.
	cs = Run(8, func(c *Comm) { c.Allreduce(seq(n, 0)) })
	maxBytes = MaxCounters(cs).BytesSent
	if maxBytes > int64(8*3*n) {
		t.Fatalf("allreduce max per-rank volume %d too high", maxBytes)
	}
}

func TestCountersAndNetModel(t *testing.T) {
	cs := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, seq(100, 0))
		} else {
			c.Recv(0)
		}
	})
	if cs[0].BytesSent != 800 || cs[0].MsgsSent != 1 {
		t.Fatalf("sender counters %+v", cs[0])
	}
	if cs[1].BytesSent != 0 {
		t.Fatalf("receiver counters %+v", cs[1])
	}
	total := TotalCounters(cs)
	if total.BytesSent != 800 {
		t.Fatal("TotalCounters wrong")
	}
	m := NetModel{Alpha: 1e-6, Beta: 1e-9}
	want := 1e-6 + 800e-9
	if math.Abs(m.Time(cs[0])-want) > 1e-15 {
		t.Fatalf("NetModel.Time = %v, want %v", m.Time(cs[0]), want)
	}
	if CrayAries().Alpha <= 0 || CrayAries().Beta <= 0 {
		t.Fatal("CrayAries parameters must be positive")
	}
}

func TestNewWorldRejectsBadSize(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Fatal("expected error for p=0")
	}
	if _, err := NewWorld(-3); err == nil {
		t.Fatal("expected error for negative p")
	}
}

func TestAllreduceOpMaxMin(t *testing.T) {
	for _, p := range []int{2, 3, 5} {
		Run(p, func(c *Comm) {
			data := []float64{float64(c.Rank()), -float64(c.Rank()), 7}
			mx := c.AllreduceOp(data, OpMax)
			if mx[0] != float64(p-1) || mx[1] != 0 || mx[2] != 7 {
				t.Errorf("p=%d max = %v", p, mx)
			}
			mn := c.AllreduceOp(data, OpMin)
			if mn[0] != 0 || mn[1] != -float64(p-1) || mn[2] != 7 {
				t.Errorf("p=%d min = %v", p, mn)
			}
		})
	}
}

func TestReduceScatterOpMax(t *testing.T) {
	Run(4, func(c *Comm) {
		data := make([]float64, 8)
		for i := range data {
			data[i] = float64(c.Rank()*10 + i)
		}
		mine := c.ReduceScatterOp(data, OpMax)
		bounds := chunkBounds(8, 4)
		for i, v := range mine {
			want := float64(30 + bounds[c.Rank()] + i) // rank 3 dominates
			if v != want {
				t.Errorf("rank %d rsmax[%d] = %v want %v", c.Rank(), i, v, want)
			}
		}
	})
}
