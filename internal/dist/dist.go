// Package dist is the simulated distributed-memory runtime substituting for
// MPI on Piz Daint (see DESIGN.md §2): each rank is a goroutine, point-to-
// point messages travel over buffered channels, and collectives are
// implemented with volume-optimal ring algorithms (scatter + ring allgather
// broadcast, ring reduce-scatter, reduce-scatter + allgather allreduce) so
// the per-rank communication volume matches what an MPI implementation
// would move — the quantity the paper's BSP analysis (Section 7) bounds.
//
// Every rank's bytes sent, message count and communication rounds are
// recorded in Counters; an α-β network model converts them into modeled
// network time for the scaling figures.
//
// The runtime is fault-aware (docs/ROBUSTNESS.md): a World built with
// Options carries a deterministic fault injector (internal/dist/faults),
// deadline-based receive timeouts and bounded send retry. When a rank fails
// — injected crash, receive timeout, or retry exhaustion — the failure is
// broadcast to the whole world, every blocked rank unwinds with an error
// wrapping ErrRankFailed instead of deadlocking, and TryRun reports the
// per-rank outcomes so a training loop can rebuild the world and resume
// from its last checkpoint.
package dist

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"agnn/internal/dist/faults"
	distnet "agnn/internal/dist/net"
	"agnn/internal/obs"
	"agnn/internal/obs/causal"
	"agnn/internal/obs/flight"
	"agnn/internal/obs/metrics"
)

// Counters accumulates per-rank communication statistics.
type Counters struct {
	BytesSent int64 // 8 bytes per float64 word
	MsgsSent  int64
	Rounds    int64 // communication rounds (BSP supersteps entered)
}

// Add merges two counter sets.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		BytesSent: c.BytesSent + o.BytesSent,
		MsgsSent:  c.MsgsSent + o.MsgsSent,
		Rounds:    c.Rounds + o.Rounds,
	}
}

// NetModel is an α-β communication-time model: each message costs Alpha
// seconds of latency and each byte Beta seconds of bandwidth time.
type NetModel struct {
	Alpha float64 // seconds per message
	Beta  float64 // seconds per byte
}

// CrayAries returns parameters approximating the paper's Piz Daint
// interconnect: ~1.5 µs latency, ~10 GB/s injection bandwidth per node.
func CrayAries() NetModel { return NetModel{Alpha: 1.5e-6, Beta: 1e-10} }

// Time converts counters to modeled network seconds.
func (m NetModel) Time(c Counters) float64 {
	return m.Alpha*float64(c.MsgsSent) + m.Beta*float64(c.BytesSent)
}

// Failure sentinels. Every error produced by the runtime's fault paths
// wraps ErrRankFailed, so callers can match the whole class with one
// errors.Is; ErrRecvTimeout additionally tags deadline expiries.
var (
	ErrRankFailed  = errors.New("dist: rank failed")
	ErrRecvTimeout = errors.New("receive timed out")
)

// Options configures a World's fault-tolerance behavior. The zero value —
// no injector, no timeout, no retries — reproduces the fault-free runtime.
type Options struct {
	// Faults is the deterministic fault injector consulted on every send
	// and round entry. Nil injects nothing.
	Faults *faults.Injector
	// RecvTimeout bounds every point-to-point receive (and therefore every
	// collective, which is built from receives). Zero disables deadlines.
	RecvTimeout time.Duration
	// SendRetries is the number of retransmissions attempted after an
	// injected transient send failure before the rank declares itself
	// failed. It must exceed the spec's largest drop max for bounded
	// retransmission to succeed; DefaultSendRetries when zero.
	SendRetries int
	// RetryBackoff is the base sleep between retransmissions (scaled
	// linearly by attempt). DefaultRetryBackoff when zero.
	RetryBackoff time.Duration
	// StragglerFactor flags a rank as a straggler when its superstep wait
	// exceeds this multiple of the cross-rank median wait.
	// DefaultStragglerFactor when zero.
	StragglerFactor float64
	// StragglerFloor is the minimum superstep wait ever flagged as a
	// straggler, filtering scheduler jitter on fast supersteps.
	// DefaultStragglerFloor when zero.
	StragglerFloor time.Duration
}

// Defaults for Options.
const (
	DefaultSendRetries  = 4
	DefaultRetryBackoff = 200 * time.Microsecond
)

func (o Options) sendRetries() int {
	if o.SendRetries > 0 {
		return o.SendRetries
	}
	return DefaultSendRetries
}

func (o Options) retryBackoff() time.Duration {
	if o.RetryBackoff > 0 {
		return o.RetryBackoff
	}
	return DefaultRetryBackoff
}

// World owns the transport endpoints and counters of a p-rank run. The
// transport seam (internal/dist/net) decides what a rank is: with the
// in-process channel world all p ranks are goroutines sharing one World
// (local == -1); with a wire transport each OS process holds a World whose
// endpoints slice is populated only at its own rank (local >= 0).
type World struct {
	P        int
	opts     Options
	eps      []distnet.Endpoint         // eps[rank]; only eps[local] in a net world
	inbox    [][]<-chan distnet.Message // inbox[to][from], cached so Recv keeps direct channel selects
	local    int                        // -1: all ranks in-process; else this process's rank
	counters []Counters
	mu       []sync.Mutex // protects counters[i] against torn reads in MaxCounters

	// Failure broadcast: the first rank to fail records itself and closes
	// failCh; every rank blocked in Send/Recv selects on failCh and unwinds
	// with ErrRankFailed instead of deadlocking.
	failCh    chan struct{}
	failOnce  sync.Once
	failed    atomic.Bool
	failRank  int
	failCause error

	// Live-registry instruments, resolved once per rank at construction so
	// the per-message fast path is two atomic adds.
	mBytes, mMsgs, mRounds []*metrics.Counter
	totalBytes             atomic.Int64 // world-wide cumulative, for the trace timeline

	// Straggler diagnostics (straggler.go): per-rank wait histograms and
	// straggler counters, the flight-recorder lanes, and the per-superstep
	// wait accumulators the Recv hot path feeds.
	mWait    []*metrics.Histogram
	mStrag   []*metrics.Counter
	flanes   []*flight.Lane
	waitNs   []atomic.Int64 // wait accumulated during the current superstep
	lastWait []atomic.Int64 // wait of the last completed superstep

	// Causal stamping (internal/obs/causal): per-rank Lamport clocks,
	// send sequence numbers and current superstep. The atomics are
	// always on — they are the message headers' source of truth — while
	// the per-rank causal logs are resolved at construction from the
	// process-wide causal.Log and stay nil when causal tracing is off.
	clock   []atomic.Uint64
	sendSeq []atomic.Uint64
	stepNow []atomic.Int64
	clog    *causal.Log
	clogs   []*causal.RankLog

	tracer  *obs.Tracer  // nil when tracing is off
	tracks  []*obs.Track // one per rank when tracing
	gmu     sync.Mutex   // guards gtracks
	gtracks []*obs.Track // per-rank gather tracks, created on first chunked gather
}

// NewWorld creates a fault-free p-rank world.
func NewWorld(p int) (*World, error) { return NewWorldOpts(p, Options{}) }

// NewWorldOpts creates a p-rank in-process world with fault-tolerance
// options: all ranks are goroutines exchanging messages over the channel
// transport.
func NewWorldOpts(p int, opts Options) (*World, error) {
	cw, err := distnet.NewChanWorld(p)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	w := newWorldShell(p, -1, opts)
	for r := 0; r < p; r++ {
		w.eps[r] = cw.Endpoint(r)
		w.wireRank(r)
	}
	w.cacheInboxes()
	return w, nil
}

// NewNetWorld wraps one bootstrapped transport endpoint (one OS process =
// one rank, e.g. net.DialTCP) in a World. Only the endpoint's own rank is
// wired: counters, metric instruments and diagnostics exist for the local
// rank, and peer failures detected by the transport (heartbeat silence,
// connection loss, FAIL frames) feed the world's usual ErrRankFailed
// broadcast.
func NewNetWorld(ep distnet.Endpoint, opts Options) (*World, error) {
	p := ep.Size()
	if p < 1 {
		return nil, fmt.Errorf("dist: world size %d, want >= 1", p)
	}
	local := ep.Rank()
	if local < 0 || local >= p {
		return nil, fmt.Errorf("dist: local rank %d of world %d", local, p)
	}
	w := newWorldShell(p, local, opts)
	w.eps[local] = ep
	w.wireRank(local)
	w.cacheInboxes()
	ep.SetFailureHandler(func(rank int, cause error) {
		w.fail(rank, fmt.Errorf("%w: %v", ErrRankFailed, cause))
	})
	return w, nil
}

// newWorldShell allocates the per-rank state shared by both constructors.
func newWorldShell(p, local int, opts Options) *World {
	w := &World{
		P: p, opts: opts, local: local,
		counters: make([]Counters, p),
		mu:       make([]sync.Mutex, p),
		failCh:   make(chan struct{}),
	}
	w.eps = make([]distnet.Endpoint, p)
	w.inbox = make([][]<-chan distnet.Message, p)
	w.mBytes = make([]*metrics.Counter, p)
	w.mMsgs = make([]*metrics.Counter, p)
	w.mRounds = make([]*metrics.Counter, p)
	w.mWait = make([]*metrics.Histogram, p)
	w.mStrag = make([]*metrics.Counter, p)
	w.flanes = make([]*flight.Lane, p)
	w.waitNs = make([]atomic.Int64, p)
	w.lastWait = make([]atomic.Int64, p)
	w.clock = make([]atomic.Uint64, p)
	w.sendSeq = make([]atomic.Uint64, p)
	w.stepNow = make([]atomic.Int64, p)
	if cl := causal.Get(); cl != nil {
		w.clog = cl
		w.clogs = make([]*causal.RankLog, p)
	}
	return w
}

// wireRank resolves the live-registry instruments, flight lane and causal
// log of one locally hosted rank, so the per-message fast path is a couple
// of atomic adds on pre-resolved handles.
func (w *World) wireRank(rank int) {
	r := strconv.Itoa(rank)
	w.mBytes[rank] = metrics.CommBytesTotal.With(r)
	w.mMsgs[rank] = metrics.CommMsgsTotal.With(r)
	w.mRounds[rank] = metrics.CommRoundsTotal.With(r)
	w.mWait[rank] = metrics.RankWaitSeconds.With(r)
	w.mStrag[rank] = metrics.StragglersTotal.With(r)
	w.flanes[rank] = flight.Default.Lane(rank)
	if w.clogs != nil {
		w.clogs[rank] = w.clog.Rank(rank)
	}
}

// cacheInboxes resolves the receive channels of every locally hosted rank
// once, keeping the Recv hot path a direct channel select.
func (w *World) cacheInboxes() {
	for to := 0; to < w.P; to++ {
		if w.eps[to] == nil {
			continue
		}
		w.inbox[to] = make([]<-chan distnet.Message, w.P)
		for from := 0; from < w.P; from++ {
			w.inbox[to][from] = w.eps[to].Inbox(from)
		}
	}
}

// localEndpoint returns an endpoint through which this process can reach
// the transport (any in-process endpoint, or the net world's own).
func (w *World) localEndpoint() distnet.Endpoint {
	if w.local >= 0 {
		return w.eps[w.local]
	}
	if len(w.eps) > 0 {
		return w.eps[0]
	}
	return nil
}

// fail records the world's first failure and broadcasts it. failRank and
// failCause are published before failCh closes, so readers that observe the
// close (or failed == true) see them consistently.
func (w *World) fail(rank int, cause error) {
	w.failOnce.Do(func() {
		w.failRank = rank
		w.failCause = cause
		w.failed.Store(true)
		metrics.RankFailuresTotal.Inc()
		w.mu[rank].Lock()
		lastRound := w.counters[rank].Rounds
		w.mu[rank].Unlock()
		// Postmortem: leave a failure event on the rank's lane and, when a
		// dump directory is configured, write the black-box artifact naming
		// the failed rank and its last superstep before survivors unwind.
		flight.OnRankFailure(rank, lastRound, cause)
		close(w.failCh)
		// Poison the transport so blocked senders unwind, and (on a wire
		// transport) broadcast the failure to peer processes.
		if ep := w.localEndpoint(); ep != nil {
			ep.Abort(rank, cause)
		}
	})
}

// Failed reports whether any rank has failed, with the first failure's rank
// and cause.
func (w *World) Failed() (bool, int, error) {
	if !w.failed.Load() {
		return false, 0, nil
	}
	return true, w.failRank, w.failCause
}

// survivorErr is the error a non-failing rank unwinds with once the world
// is marked failed.
func (w *World) survivorErr() error {
	return fmt.Errorf("%w: aborted after failure on rank %d: %v", ErrRankFailed, w.failRank, w.failCause)
}

// rankFailure is the internal unwind sentinel: Comm methods panic with it
// when the rank must abort its superstep, and the Run harnesses (plus the
// chunked-gather helper) recover it into a per-rank error. Any other panic
// value is a genuine bug and is re-raised.
type rankFailure struct {
	rank int
	err  error
}

// abort marks this rank failed (broadcasting to the world) and unwinds.
func (c *Comm) abort(cause error) {
	c.w.fail(c.global, cause)
	panic(rankFailure{rank: c.global, err: cause})
}

// abortSurvivor unwinds this rank because another rank failed first.
func (c *Comm) abortSurvivor() {
	panic(rankFailure{rank: c.global, err: c.w.survivorErr()})
}

// EnableTracing attaches one trace track per rank ("rank 0" … "rank p-1")
// to the world. Rank goroutines started by Run/RunTraced bind themselves to
// their track, so both the collective spans recorded by Comm and any kernel
// spans fired inside rank code land on the rank's timeline.
func (w *World) EnableTracing(t *obs.Tracer) {
	if t == nil {
		return
	}
	w.tracer = t
	w.tracks = make([]*obs.Track, w.P)
	w.gtracks = make([]*obs.Track, w.P)
	for r := 0; r < w.P; r++ {
		w.tracks[r] = t.Track(fmt.Sprintf("rank %d", r))
	}
}

// gatherTrack returns rank's gather trace track, creating it on first use.
// Chunked gathers run concurrently with rank compute, so their spans get a
// sibling track ("rank N gather") — both timelines stay well-nested and the
// trace shows the gather and compute tracks interleaved. Lazy creation
// keeps traces of non-overlapped runs free of empty tracks.
func (w *World) gatherTrack(rank int) *obs.Track {
	if w.tracer == nil {
		return nil
	}
	w.gmu.Lock()
	defer w.gmu.Unlock()
	if w.gtracks[rank] == nil {
		w.gtracks[rank] = w.tracer.Track(fmt.Sprintf("rank %d gather", rank))
	}
	return w.gtracks[rank]
}

// Run executes f on every rank of a fresh fault-free p-rank world
// concurrently and returns the per-rank communication counters. When
// process-wide tracing is enabled (obs.Enable), every rank gets its own
// track automatically. Run is the SPMD test/benchmark harness: an invalid
// world size panics; use TryRun for recoverable failure handling.
func Run(p int, f func(c *Comm)) []Counters {
	return RunTraced(p, obs.Get(), f)
}

// RunTraced is Run with an explicit tracer (nil disables tracing).
func RunTraced(p int, tr *obs.Tracer, f func(c *Comm)) []Counters {
	cs, errs, err := tryRunTraced(p, Options{}, tr, func(c *Comm) error {
		f(c)
		return nil
	})
	if err != nil {
		panic(err) // invalid world size: static caller bug in the SPMD harness
	}
	for _, e := range errs {
		if e != nil {
			// Without fault options no runtime path aborts, so a rank error
			// here is unreachable; keep the harness loud just in case.
			panic(e)
		}
	}
	return cs
}

// TryRun executes f on every rank of a fresh world built with opts and
// returns the per-rank counters and the per-rank outcomes (errs[r] is nil
// for ranks that completed). The final error reports world construction
// problems only; rank failures — injected crashes, timeouts, retry
// exhaustion, and the survivors they abort — land in errs, every one
// matching errors.Is(err, ErrRankFailed).
func TryRun(p int, opts Options, f func(c *Comm) error) ([]Counters, []error, error) {
	return tryRunTraced(p, opts, obs.Get(), f)
}

func tryRunTraced(p int, opts Options, tr *obs.Tracer, f func(c *Comm) error) ([]Counters, []error, error) {
	w, err := NewWorldOpts(p, opts)
	if err != nil {
		return nil, nil, err
	}
	w.EnableTracing(tr)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if rf, ok := rec.(rankFailure); ok {
						errs[rank] = rf.err
						return
					}
					panic(rec)
				}
			}()
			if w.tracer != nil {
				w.tracer.BindGoroutine(w.tracks[rank])
				defer w.tracer.UnbindGoroutine()
			}
			errs[rank] = f(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	return w.Counters(), errs, nil
}

// TryRunLocal executes f on the net world's own rank — the per-process
// counterpart of TryRun. On clean completion the endpoint says goodbye so
// peers treat the teardown as benign; rank failures (local aborts and
// survivor unwinds triggered by peer failures) return as errors wrapping
// ErrRankFailed.
func (w *World) TryRunLocal(f func(c *Comm) error) (Counters, error) {
	if w.local < 0 {
		return Counters{}, errors.New("dist: TryRunLocal requires a net-backed world (use TryRun for in-process worlds)")
	}
	var err error
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				if rf, ok := rec.(rankFailure); ok {
					err = rf.err
					return
				}
				panic(rec)
			}
		}()
		c := w.Comm(w.local)
		if w.tracer != nil {
			w.tracer.BindGoroutine(w.tracks[w.local])
			defer w.tracer.UnbindGoroutine()
		}
		err = f(c)
	}()
	if err == nil {
		w.eps[w.local].Goodbye()
	}
	w.mu[w.local].Lock()
	out := w.counters[w.local]
	w.mu[w.local].Unlock()
	return out, err
}

// LocalRank returns the world's locally hosted rank (-1 when all ranks are
// in-process).
func (w *World) LocalRank() int { return w.local }

// FirstError returns the first non-nil error of a per-rank error slice.
func FirstError(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Comm returns the world communicator of a rank (group = all ranks).
func (w *World) Comm(rank int) *Comm {
	group := make([]int, w.P)
	for i := range group {
		group[i] = i
	}
	c := &Comm{w: w, global: rank, group: group, me: rank}
	if w.tracks != nil {
		c.track = w.tracks[rank]
	}
	return c
}

// Counters returns a snapshot of all per-rank counters.
func (w *World) Counters() []Counters {
	out := make([]Counters, w.P)
	for i := range out {
		w.mu[i].Lock()
		out[i] = w.counters[i]
		w.mu[i].Unlock()
	}
	return out
}

// MaxCounters returns the element-wise maximum over ranks — the BSP
// "maximum words sent by any processor" of Section 7.
func MaxCounters(cs []Counters) Counters {
	var m Counters
	for _, c := range cs {
		if c.BytesSent > m.BytesSent {
			m.BytesSent = c.BytesSent
		}
		if c.MsgsSent > m.MsgsSent {
			m.MsgsSent = c.MsgsSent
		}
		if c.Rounds > m.Rounds {
			m.Rounds = c.Rounds
		}
	}
	return m
}

// TotalCounters sums counters over ranks.
func TotalCounters(cs []Counters) Counters {
	var t Counters
	for _, c := range cs {
		t = t.Add(c)
	}
	return t
}

// Comm is a communicator: a rank's endpoint within a group of ranks. The
// world communicator spans all ranks; Group derives row/column
// sub-communicators for the 2D process grid.
type Comm struct {
	w      *World
	global int        // my global rank
	group  []int      // global ranks of the group, in group order
	me     int        // my index within group
	track  *obs.Track // this rank's trace track (nil when tracing is off)
	med    []int64    // median scratch for superstep wait stats, lazily sized to P

	// curColl is the flight code of the collective currently executing on
	// this communicator (0 between collectives); sends stamp it into the
	// causal log so path segments name their collective hop. Nested
	// collectives (allreduce = reduce-scatter + allgather) stack codes so
	// the innermost wins. Owned by the rank goroutine — the concurrent
	// chunked-gather helper passes its code explicitly instead.
	curColl   uint32
	collStack []uint32
}

// Rank returns the caller's rank within the communicator's group.
func (c *Comm) Rank() int { return c.me }

// Size returns the group size.
func (c *Comm) Size() int { return len(c.group) }

// GlobalRank returns the world rank.
func (c *Comm) GlobalRank() int { return c.global }

// Group returns a sub-communicator over the given group-local ranks. All
// listed members must call Group with the same list (SPMD convention).
// Callers not in the list receive nil.
func (c *Comm) Group(local []int) *Comm {
	globals := make([]int, len(local))
	me := -1
	for i, l := range local {
		globals[i] = c.group[l]
		if l == c.me {
			me = i
		}
	}
	if me < 0 {
		return nil
	}
	return &Comm{w: c.w, global: c.global, group: globals, me: me, track: c.track}
}

// Send transfers a copy of data to group rank `to`. It never blocks as long
// as fewer than mailboxCap messages are outstanding on the (from, to) pair.
// Under an injector, sends may be delayed (stragglers) or transiently
// dropped; drops are retransmitted with linear backoff up to the world's
// retry budget, after which the rank aborts. If another rank has already
// failed, Send unwinds with ErrRankFailed instead of queueing into a dead
// world.
func (c *Comm) Send(to int, data []float64) { c.sendCoded(to, data, c.curColl) }

// sendCoded is Send with an explicit causal/flight code naming the
// enclosing collective; the chunked-gather helper goroutine uses it to
// avoid racing on the rank's curColl.
func (c *Comm) sendCoded(to int, data []float64, code uint32) {
	if inj := c.w.opts.Faults; inj != nil {
		for attempt := 1; ; attempt++ {
			act := inj.OnSend(c.global, attempt)
			if act.Delay > 0 {
				metrics.FaultsInjectedTotal.With("delay").Inc()
				time.Sleep(act.Delay)
			}
			if !act.Drop {
				break
			}
			metrics.FaultsInjectedTotal.With("drop").Inc()
			if attempt > c.w.opts.sendRetries() {
				c.abort(fmt.Errorf("%w: rank %d: send to rank %d still failing after %d attempts",
					ErrRankFailed, c.global, c.group[to], attempt))
			}
			metrics.CommRetriesTotal.Inc()
			time.Sleep(c.w.opts.retryBackoff() * time.Duration(attempt))
		}
	}
	if c.w.failed.Load() {
		c.abortSurvivor()
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	bytes := int64(8 * len(data))
	c.w.mu[c.global].Lock()
	c.w.counters[c.global].BytesSent += bytes
	c.w.counters[c.global].MsgsSent++
	c.w.mu[c.global].Unlock()
	c.w.mBytes[c.global].Add(bytes)
	c.w.mMsgs[c.global].Inc()
	c.w.totalBytes.Add(bytes)
	// Causal stamp: sequence and Lamport ticks are always-on atomics; the
	// header rides the channel message by value. Log/flight/flow records
	// fire only when causal tracing is enabled.
	hdr := causal.Header{
		Src:   int32(c.global),
		Seq:   c.w.sendSeq[c.global].Add(1),
		Step:  c.w.stepNow[c.global].Load(),
		Clock: c.w.clock[c.global].Add(1),
	}
	if c.w.clogs != nil {
		c.w.clogs[c.global].Send(c.w.clog.Now(), hdr, int32(c.group[to]), bytes, code)
		c.w.flanes[c.global].Record(flight.KindCausalSend, code,
			int64(hdr.Seq), int64(c.group[to]), hdr.Step)
		if c.track != nil {
			c.track.FlowOut(flowName(code), hdr.FlowID())
		}
	}
	if err := c.w.eps[c.global].Send(c.group[to], distnet.Message{Data: cp, Hdr: hdr}); err != nil {
		c.sendFailed(c.group[to], err)
	}
}

// sendFailed maps a transport send error to the runtime's unwind paths: a
// poisoned world means some rank already failed (unwind as a survivor); any
// other transport error blames the unreachable peer and broadcasts it.
func (c *Comm) sendFailed(to int, err error) {
	if errors.Is(err, distnet.ErrWorldDown) && c.w.failed.Load() {
		c.abortSurvivor()
	}
	cause := fmt.Errorf("%w: rank %d: send to rank %d: %v", ErrRankFailed, c.global, to, err)
	c.w.fail(to, cause)
	panic(rankFailure{rank: c.global, err: cause})
}

// flowName names a message's Chrome-trace flow arrow after its enclosing
// collective ("msg" outside any collective).
func flowName(code uint32) string {
	if n := flight.CodeName(code); n != "" {
		return n
	}
	return "msg"
}

// Recv blocks until a message from group rank `from` arrives, the world's
// receive deadline expires (the rank then aborts with ErrRecvTimeout), or
// another rank fails (the rank unwinds with ErrRankFailed).
func (c *Comm) Recv(from int) []float64 { return c.recvCoded(from, c.curColl) }

// recvCoded is Recv with an explicit causal/flight code (see sendCoded).
func (c *Comm) recvCoded(from int, code uint32) []float64 {
	if c.w.failed.Load() {
		c.abortSurvivor()
	}
	box := c.w.inbox[c.global][c.group[from]]
	// Fast path: a queued message costs no wait and no clock reads.
	select {
	case m := <-box:
		return c.accept(m, time.Time{}, code)
	default:
	}
	t0 := time.Now()
	defer func() { c.w.noteWait(c.global, time.Since(t0).Nanoseconds()) }()
	if d := c.w.opts.RecvTimeout; d > 0 {
		timer := acquireTimer(d)
		defer releaseTimer(timer)
		select {
		case m := <-box:
			return c.accept(m, t0, code)
		case <-c.w.failCh:
			c.abortSurvivor()
		case <-timer.C:
			c.abort(fmt.Errorf("%w: rank %d: %w waiting for rank %d after %v",
				ErrRankFailed, c.global, ErrRecvTimeout, c.group[from], d))
		}
		panic("unreachable")
	}
	select {
	case m := <-box:
		return c.accept(m, t0, code)
	case <-c.w.failCh:
		c.abortSurvivor()
		panic("unreachable")
	}
}

// recvTimers pools the deadline timers of blocked receives. Arming a
// receive deadline used to allocate a fresh runtime timer per blocked
// receive; the pool amortizes that to zero on the steady state while
// staying safe for the concurrent receives a rank's chunked-gather helper
// performs alongside it.
var recvTimers = sync.Pool{New: func() any { return time.NewTimer(time.Hour) }}

// acquireTimer returns a pooled timer armed with deadline d. Timers in the
// pool are guaranteed stopped and drained, so Reset is race-free.
func acquireTimer(d time.Duration) *time.Timer {
	t := recvTimers.Get().(*time.Timer)
	t.Reset(d)
	return t
}

// releaseTimer disarms t, drains a concurrent or consumed expiry, and
// returns it to the pool in the stopped-and-drained state acquireTimer
// relies on.
func releaseTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	recvTimers.Put(t)
}

// accept finishes one receive: it merges the sender's Lamport clock into
// this rank's (always on — the clocks order events across ranks even when
// logging is off) and, under causal tracing, records the arrival with its
// blocked interval. t0 is when the receiver started blocking (zero Time
// for the queued-message fast path). Allocation-free.
func (c *Comm) accept(m distnet.Message, t0 time.Time, code uint32) []float64 {
	clk := &c.w.clock[c.global]
	for {
		cur := clk.Load()
		next := cur
		if m.Hdr.Clock > next {
			next = m.Hdr.Clock
		}
		if clk.CompareAndSwap(cur, next+1) {
			break
		}
	}
	if c.w.clogs != nil {
		t1 := c.w.clog.Now()
		t0ns := t1
		var waited int64
		if !t0.IsZero() {
			waited = time.Since(t0).Nanoseconds()
			t0ns = t1 - waited
		}
		c.w.clogs[c.global].Recv(t0ns, t1, m.Hdr, int64(8*len(m.Data)), code)
		c.w.flanes[c.global].Record(flight.KindCausalRecv, code,
			int64(m.Hdr.Seq), int64(m.Hdr.Src), waited)
		if c.track != nil && m.Hdr.Seq != 0 {
			c.track.FlowIn(flowName(code), m.Hdr.FlowID())
		}
	}
	return m.Data
}

// round records one communication round (BSP superstep), closes the rank's
// straggler-diagnostic window (straggler.go), and gives the fault injector
// its crash point: a rank scheduled to crash at round r halts here,
// broadcasting the failure to the world.
func (c *Comm) round() {
	c.w.mu[c.global].Lock()
	c.w.counters[c.global].Rounds++
	rounds := c.w.counters[c.global].Rounds
	c.w.mu[c.global].Unlock()
	c.w.mRounds[c.global].Inc()
	c.w.stepNow[c.global].Store(rounds)
	if c.med == nil {
		c.med = make([]int64, c.w.P) // first superstep on this communicator
	}
	c.w.superstep(c.global, rounds, c.med)
	if inj := c.w.opts.Faults; inj != nil && inj.CrashNow(c.global, rounds) {
		metrics.FaultsInjectedTotal.With("crash").Inc()
		c.abort(fmt.Errorf("%w: injected crash on rank %d at round %d", ErrRankFailed, c.global, rounds))
	}
}

// StartSpan begins a span on this rank's trace track. It is a no-op (one
// nil check) when tracing is off, so engines can instrument compute steps
// unconditionally.
func (c *Comm) StartSpan(name string) obs.Span { return c.track.Start(name) }

// snapshot returns this rank's current counters.
func (c *Comm) snapshot() Counters {
	c.w.mu[c.global].Lock()
	out := c.w.counters[c.global]
	c.w.mu[c.global].Unlock()
	return out
}

// beginCollective opens a span for a collective and snapshots the counters
// so endCollective can attach the bytes/messages moved by this call. The
// snapshot is taken even with tracing off: the per-call byte delta feeds
// the live per-collective histogram in the metrics registry.
func (c *Comm) beginCollective(name string) (obs.Span, Counters) {
	var sp obs.Span
	if c.track != nil {
		sp = c.track.Start(name)
	}
	// Stack the collective's code for causal stamping: nested collectives
	// (allreduce wraps reduce-scatter) restore the outer code on end.
	c.collStack = append(c.collStack, c.curColl)
	c.curColl = flight.Code(name)
	return sp, c.snapshot()
}

// endCollective completes one collective call: it records the per-call
// byte delta into the collective's latency-style histogram (the "words per
// rank per superstep" distribution the Section 7 BSP analysis bounds),
// samples the world-wide cumulative byte count onto the trace's "comm
// bytes" counter timeline, and — when tracing — attaches the byte and
// message deltas as span attributes.
func (c *Comm) endCollective(name string, sp obs.Span, before Counters) {
	if n := len(c.collStack); n > 0 {
		c.curColl = c.collStack[n-1]
		c.collStack = c.collStack[:n-1]
	} else {
		c.curColl = 0
	}
	after := c.snapshot()
	bytes := after.BytesSent - before.BytesSent
	metrics.CollectiveBytes.With(name).Observe(float64(bytes))
	c.w.flanes[c.global].Record(flight.KindComm, flight.Code(name),
		bytes, after.MsgsSent-before.MsgsSent, 0)
	if sp.Active() {
		obs.Sample("comm bytes", c.w.totalBytes.Load())
		sp.End(obs.Int64("bytes", bytes),
			obs.Int64("msgs", after.MsgsSent-before.MsgsSent))
	}
}
