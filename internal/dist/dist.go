// Package dist is the simulated distributed-memory runtime substituting for
// MPI on Piz Daint (see DESIGN.md §2): each rank is a goroutine, point-to-
// point messages travel over buffered channels, and collectives are
// implemented with volume-optimal ring algorithms (scatter + ring allgather
// broadcast, ring reduce-scatter, reduce-scatter + allgather allreduce) so
// the per-rank communication volume matches what an MPI implementation
// would move — the quantity the paper's BSP analysis (Section 7) bounds.
//
// Every rank's bytes sent, message count and communication rounds are
// recorded in Counters; an α-β network model converts them into modeled
// network time for the scaling figures.
package dist

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"agnn/internal/obs"
	"agnn/internal/obs/metrics"
)

// message is one point-to-point transfer. Data is copied on send so ranks
// never alias each other's buffers.
type message struct {
	data []float64
}

// Counters accumulates per-rank communication statistics.
type Counters struct {
	BytesSent int64 // 8 bytes per float64 word
	MsgsSent  int64
	Rounds    int64 // communication rounds (BSP supersteps entered)
}

// Add merges two counter sets.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		BytesSent: c.BytesSent + o.BytesSent,
		MsgsSent:  c.MsgsSent + o.MsgsSent,
		Rounds:    c.Rounds + o.Rounds,
	}
}

// NetModel is an α-β communication-time model: each message costs Alpha
// seconds of latency and each byte Beta seconds of bandwidth time.
type NetModel struct {
	Alpha float64 // seconds per message
	Beta  float64 // seconds per byte
}

// CrayAries returns parameters approximating the paper's Piz Daint
// interconnect: ~1.5 µs latency, ~10 GB/s injection bandwidth per node.
func CrayAries() NetModel { return NetModel{Alpha: 1.5e-6, Beta: 1e-10} }

// Time converts counters to modeled network seconds.
func (m NetModel) Time(c Counters) float64 {
	return m.Alpha*float64(c.MsgsSent) + m.Beta*float64(c.BytesSent)
}

// World owns the mailboxes and counters of a p-rank simulation.
type World struct {
	P        int
	mailbox  [][]chan message // mailbox[to][from]
	counters []Counters
	mu       []sync.Mutex // protects counters[i] against torn reads in MaxCounters

	// Live-registry instruments, resolved once per rank at construction so
	// the per-message fast path is two atomic adds.
	mBytes, mMsgs, mRounds []*metrics.Counter
	totalBytes             atomic.Int64 // world-wide cumulative, for the trace timeline

	tracer  *obs.Tracer  // nil when tracing is off
	tracks  []*obs.Track // one per rank when tracing
	gmu     sync.Mutex   // guards gtracks
	gtracks []*obs.Track // per-rank gather tracks, created on first chunked gather
}

// mailboxCap bounds in-flight messages per (sender, receiver) pair. Ring
// collectives keep at most a couple of messages in flight; the slack covers
// pipelined point-to-point phases.
const mailboxCap = 1024

// NewWorld creates a p-rank world.
func NewWorld(p int) *World {
	if p < 1 {
		panic(fmt.Sprintf("dist: world size %d", p))
	}
	w := &World{P: p, counters: make([]Counters, p), mu: make([]sync.Mutex, p)}
	w.mailbox = make([][]chan message, p)
	w.mBytes = make([]*metrics.Counter, p)
	w.mMsgs = make([]*metrics.Counter, p)
	w.mRounds = make([]*metrics.Counter, p)
	for to := 0; to < p; to++ {
		w.mailbox[to] = make([]chan message, p)
		for from := 0; from < p; from++ {
			w.mailbox[to][from] = make(chan message, mailboxCap)
		}
		r := strconv.Itoa(to)
		w.mBytes[to] = metrics.CommBytesTotal.With(r)
		w.mMsgs[to] = metrics.CommMsgsTotal.With(r)
		w.mRounds[to] = metrics.CommRoundsTotal.With(r)
	}
	return w
}

// EnableTracing attaches one trace track per rank ("rank 0" … "rank p-1")
// to the world. Rank goroutines started by Run/RunTraced bind themselves to
// their track, so both the collective spans recorded by Comm and any kernel
// spans fired inside rank code land on the rank's timeline.
func (w *World) EnableTracing(t *obs.Tracer) {
	if t == nil {
		return
	}
	w.tracer = t
	w.tracks = make([]*obs.Track, w.P)
	w.gtracks = make([]*obs.Track, w.P)
	for r := 0; r < w.P; r++ {
		w.tracks[r] = t.Track(fmt.Sprintf("rank %d", r))
	}
}

// gatherTrack returns rank's gather trace track, creating it on first use.
// Chunked gathers run concurrently with rank compute, so their spans get a
// sibling track ("rank N gather") — both timelines stay well-nested and the
// trace shows the gather and compute tracks interleaved. Lazy creation
// keeps traces of non-overlapped runs free of empty tracks.
func (w *World) gatherTrack(rank int) *obs.Track {
	if w.tracer == nil {
		return nil
	}
	w.gmu.Lock()
	defer w.gmu.Unlock()
	if w.gtracks[rank] == nil {
		w.gtracks[rank] = w.tracer.Track(fmt.Sprintf("rank %d gather", rank))
	}
	return w.gtracks[rank]
}

// Run executes f on every rank of a fresh p-rank world concurrently and
// returns the per-rank communication counters. When process-wide tracing is
// enabled (obs.Enable), every rank gets its own track automatically.
func Run(p int, f func(c *Comm)) []Counters {
	return RunTraced(p, obs.Get(), f)
}

// RunTraced is Run with an explicit tracer (nil disables tracing).
func RunTraced(p int, tr *obs.Tracer, f func(c *Comm)) []Counters {
	w := NewWorld(p)
	w.EnableTracing(tr)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if w.tracer != nil {
				w.tracer.BindGoroutine(w.tracks[rank])
				defer w.tracer.UnbindGoroutine()
			}
			f(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	return w.Counters()
}

// Comm returns the world communicator of a rank (group = all ranks).
func (w *World) Comm(rank int) *Comm {
	group := make([]int, w.P)
	for i := range group {
		group[i] = i
	}
	c := &Comm{w: w, global: rank, group: group, me: rank}
	if w.tracks != nil {
		c.track = w.tracks[rank]
	}
	return c
}

// Counters returns a snapshot of all per-rank counters.
func (w *World) Counters() []Counters {
	out := make([]Counters, w.P)
	for i := range out {
		w.mu[i].Lock()
		out[i] = w.counters[i]
		w.mu[i].Unlock()
	}
	return out
}

// MaxCounters returns the element-wise maximum over ranks — the BSP
// "maximum words sent by any processor" of Section 7.
func MaxCounters(cs []Counters) Counters {
	var m Counters
	for _, c := range cs {
		if c.BytesSent > m.BytesSent {
			m.BytesSent = c.BytesSent
		}
		if c.MsgsSent > m.MsgsSent {
			m.MsgsSent = c.MsgsSent
		}
		if c.Rounds > m.Rounds {
			m.Rounds = c.Rounds
		}
	}
	return m
}

// TotalCounters sums counters over ranks.
func TotalCounters(cs []Counters) Counters {
	var t Counters
	for _, c := range cs {
		t = t.Add(c)
	}
	return t
}

// Comm is a communicator: a rank's endpoint within a group of ranks. The
// world communicator spans all ranks; Group derives row/column
// sub-communicators for the 2D process grid.
type Comm struct {
	w      *World
	global int        // my global rank
	group  []int      // global ranks of the group, in group order
	me     int        // my index within group
	track  *obs.Track // this rank's trace track (nil when tracing is off)
}

// Rank returns the caller's rank within the communicator's group.
func (c *Comm) Rank() int { return c.me }

// Size returns the group size.
func (c *Comm) Size() int { return len(c.group) }

// GlobalRank returns the world rank.
func (c *Comm) GlobalRank() int { return c.global }

// Group returns a sub-communicator over the given group-local ranks. All
// listed members must call Group with the same list (SPMD convention).
// Callers not in the list receive nil.
func (c *Comm) Group(local []int) *Comm {
	globals := make([]int, len(local))
	me := -1
	for i, l := range local {
		globals[i] = c.group[l]
		if l == c.me {
			me = i
		}
	}
	if me < 0 {
		return nil
	}
	return &Comm{w: c.w, global: c.global, group: globals, me: me, track: c.track}
}

// Send transfers a copy of data to group rank `to`. It never blocks as long
// as fewer than mailboxCap messages are outstanding on the (from, to) pair.
func (c *Comm) Send(to int, data []float64) {
	cp := make([]float64, len(data))
	copy(cp, data)
	bytes := int64(8 * len(data))
	c.w.mu[c.global].Lock()
	c.w.counters[c.global].BytesSent += bytes
	c.w.counters[c.global].MsgsSent++
	c.w.mu[c.global].Unlock()
	c.w.mBytes[c.global].Add(bytes)
	c.w.mMsgs[c.global].Inc()
	c.w.totalBytes.Add(bytes)
	c.w.mailbox[c.group[to]][c.global] <- message{data: cp}
}

// Recv blocks until a message from group rank `from` arrives.
func (c *Comm) Recv(from int) []float64 {
	m := <-c.w.mailbox[c.global][c.group[from]]
	return m.data
}

// round records one communication round (BSP superstep).
func (c *Comm) round() {
	c.w.mu[c.global].Lock()
	c.w.counters[c.global].Rounds++
	c.w.mu[c.global].Unlock()
	c.w.mRounds[c.global].Inc()
}

// StartSpan begins a span on this rank's trace track. It is a no-op (one
// nil check) when tracing is off, so engines can instrument compute steps
// unconditionally.
func (c *Comm) StartSpan(name string) obs.Span { return c.track.Start(name) }

// snapshot returns this rank's current counters.
func (c *Comm) snapshot() Counters {
	c.w.mu[c.global].Lock()
	out := c.w.counters[c.global]
	c.w.mu[c.global].Unlock()
	return out
}

// beginCollective opens a span for a collective and snapshots the counters
// so endCollective can attach the bytes/messages moved by this call. The
// snapshot is taken even with tracing off: the per-call byte delta feeds
// the live per-collective histogram in the metrics registry.
func (c *Comm) beginCollective(name string) (obs.Span, Counters) {
	var sp obs.Span
	if c.track != nil {
		sp = c.track.Start(name)
	}
	return sp, c.snapshot()
}

// endCollective completes one collective call: it records the per-call
// byte delta into the collective's latency-style histogram (the "words per
// rank per superstep" distribution the Section 7 BSP analysis bounds),
// samples the world-wide cumulative byte count onto the trace's "comm
// bytes" counter timeline, and — when tracing — attaches the byte and
// message deltas as span attributes.
func (c *Comm) endCollective(name string, sp obs.Span, before Counters) {
	after := c.snapshot()
	bytes := after.BytesSent - before.BytesSent
	metrics.CollectiveBytes.With(name).Observe(float64(bytes))
	if sp.Active() {
		obs.Sample("comm bytes", c.w.totalBytes.Load())
		sp.End(obs.Int64("bytes", bytes),
			obs.Int64("msgs", after.MsgsSent-before.MsgsSent))
	}
}
