package dist

import (
	"errors"
	gonet "net"
	"strings"
	"sync"
	"testing"
	"time"

	distnet "agnn/internal/dist/net"
)

// dialTCPWorld brings up a p-rank TCP transport world over loopback, all
// endpoints hosted in this test process (the multi-process topology without
// the processes).
func dialTCPWorld(t *testing.T, p int) []*distnet.TCPEndpoint {
	t.Helper()
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rdv := ln.Addr().String()
	ln.Close()

	eps := make([]*distnet.TCPEndpoint, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eps[r], errs[r] = distnet.DialTCP(distnet.TCPConfig{
				Rank: r, Size: p, Rendezvous: rdv,
				DialBackoff:      2 * time.Millisecond,
				HeartbeatEvery:   10 * time.Millisecond,
				PeerTimeout:      400 * time.Millisecond,
				BootstrapTimeout: 10 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d bootstrap: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			if ep != nil {
				ep.Close()
			}
		}
	})
	return eps
}

// TestNetWorldTCPMatchesInProcess: the same collective program produces
// bitwise-identical results over the TCP transport and the in-process
// channel transport.
func TestNetWorldTCPMatchesInProcess(t *testing.T) {
	const p = 4
	body := func(c *Comm) ([]float64, []float64) {
		ar := c.Allreduce([]float64{float64(c.Rank() + 1), 2.5 * float64(c.Rank())})
		ag := c.Allgather([]float64{float64(c.Rank() * c.Rank())})
		c.Barrier()
		return ar, ag
	}

	wantAR := make([][]float64, p)
	wantAG := make([][]float64, p)
	Run(p, func(c *Comm) {
		wantAR[c.Rank()], wantAG[c.Rank()] = body(c)
	})

	eps := dialTCPWorld(t, p)
	gotAR := make([][]float64, p)
	gotAG := make([][]float64, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w, err := NewNetWorld(eps[r], Options{RecvTimeout: 20 * time.Second})
			if err != nil {
				errs[r] = err
				return
			}
			if w.LocalRank() != r {
				t.Errorf("LocalRank() = %d, want %d", w.LocalRank(), r)
			}
			_, errs[r] = w.TryRunLocal(func(c *Comm) error {
				gotAR[r], gotAG[r] = body(c)
				return nil
			})
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		for i := range wantAR[r] {
			if gotAR[r][i] != wantAR[r][i] {
				t.Errorf("rank %d allreduce[%d] = %v, want %v", r, i, gotAR[r][i], wantAR[r][i])
			}
		}
		for i := range wantAG[r] {
			if gotAG[r][i] != wantAG[r][i] {
				t.Errorf("rank %d allgather[%d] = %v, want %v", r, i, gotAG[r][i], wantAG[r][i])
			}
		}
	}
}

// TestNetWorldPeerCrashUnwindsSurvivors: a peer process dying abruptly
// (endpoint closed, no goodbye) is detected by heartbeat silence; every
// survivor unwinds its blocked collective with ErrRankFailed naming the
// dead rank instead of deadlocking.
func TestNetWorldPeerCrashUnwindsSurvivors(t *testing.T) {
	const p, victim = 3, 2
	eps := dialTCPWorld(t, p)
	eps[victim].Close() // crash: no BYE, no FAIL — survivors must detect it

	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		if r == victim {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w, err := NewNetWorld(eps[r], Options{RecvTimeout: 20 * time.Second})
			if err != nil {
				errs[r] = err
				return
			}
			_, errs[r] = w.TryRunLocal(func(c *Comm) error {
				c.Allreduce([]float64{1}) // blocks on the victim's contribution
				return nil
			})
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("survivors never unwound after peer crash")
	}
	for r := 0; r < p; r++ {
		if r == victim {
			continue
		}
		if errs[r] == nil {
			t.Fatalf("rank %d: nil error, want ErrRankFailed", r)
		}
		if !errors.Is(errs[r], ErrRankFailed) {
			t.Errorf("rank %d: %v does not wrap ErrRankFailed", r, errs[r])
		}
		if !strings.Contains(errs[r].Error(), "rank 2") {
			t.Errorf("rank %d error does not name the dead rank: %v", r, errs[r])
		}
	}
}

// TestRecvTimerPoolNoAlloc: the deadline timers of blocked receives come
// from a pool — repeated acquire/release cycles must not allocate a fresh
// runtime timer each time (the regression this guards was one
// time.NewTimer per blocked receive).
func TestRecvTimerPoolNoAlloc(t *testing.T) {
	tm := acquireTimer(time.Millisecond)
	releaseTimer(tm) // prime the pool
	allocs := testing.AllocsPerRun(1000, func() {
		tm := acquireTimer(time.Hour)
		releaseTimer(tm)
	})
	// A GC sweep may empty the pool mid-run; anything near one alloc per
	// cycle means the pool is not being reused at all.
	if allocs > 0.5 {
		t.Errorf("timer acquire/release allocates %.2f objects per cycle, want ~0", allocs)
	}
}

// TestRecvTimeoutTimerReuse: pooled timers must carry no stale state — a
// long sequence of timed receives that all succeed, followed by one that
// must expire, still times out at the configured deadline.
func TestRecvTimeoutTimerReuse(t *testing.T) {
	const p = 2
	opts := Options{RecvTimeout: 500 * time.Millisecond}
	start := time.Now()
	_, errs, err := TryRun(p, opts, func(c *Comm) error {
		other := 1 - c.Rank()
		for i := 0; i < 100; i++ { // exercise timer reuse on the timed path
			c.Send(other, []float64{float64(i)})
			c.Recv(other)
		}
		if c.Rank() == 0 {
			c.Recv(other) // never sent: must expire, not hang
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	first := FirstError(errs)
	if first == nil || !errors.Is(first, ErrRecvTimeout) {
		t.Fatalf("FirstError = %v, want ErrRecvTimeout", first)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("timeout took %v — stale timer state suspected", elapsed)
	}
}
