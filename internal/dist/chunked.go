package dist

import (
	"fmt"
	"sync/atomic"

	"agnn/internal/obs"
	"agnn/internal/obs/flight"
	"agnn/internal/obs/metrics"
)

// Chunked (asynchronous) allgather: the communication half of compute/
// communication overlap. Instead of blocking until the whole ring has
// circulated, AllgatherChunks returns immediately with the rank's own chunk
// available and streams the remaining chunks over a channel as each ring
// hop completes, so the engine can run arrival-gated plan fragments (see
// fuse.Partition) while the collective is still in flight. Volume, message
// and round accounting is identical to the blocking Allgather — one round
// and one chunk-sized message per ring hop — but attributed per chunk, so
// the BSP counters and the per-collective byte histogram expose the
// pipelined structure instead of one opaque call.

// codeGatherHop stamps the chunked ring's messages; it matches the
// "gather.hop" span name so path attribution classifies hops as
// collective time.
var codeGatherHop = flight.Code("gather.hop")

// Chunk announces that a contiguous word range of the gather output has
// landed and may be read.
type Chunk struct {
	Step int // arrival step: 0 = rank-resident chunk, t = t-th ring hop
	Src  int // group rank that contributed the range
	Lo   int // word offsets into Out(), half-open [Lo, Hi)
	Hi   int
}

// ChunkedGather is an in-flight chunked allgather. Out is the full
// concatenation buffer; a range of it is safe to read only after the
// corresponding Chunk has been received from Chunks. The channel is closed
// when the collective completes; callers must drain it before issuing any
// other collective on the same communicator (the ring shares the rank's
// mailboxes). Under fault injection the injector may permute notification
// order (the data behind every announced range is always in place), and a
// rank failure mid-ring closes the channel early with Err() set — consumers
// must check Err after the channel closes.
type ChunkedGather struct {
	out []float64
	ch  chan Chunk
	err atomic.Pointer[error]
}

// Chunks returns the arrival stream: exactly Size() chunks (own chunk
// first), then close — fewer if the ring aborted (see Err).
func (cg *ChunkedGather) Chunks() <-chan Chunk { return cg.ch }

// Out returns the gather output buffer (concatenation in group-rank order).
func (cg *ChunkedGather) Out() []float64 { return cg.out }

// Err reports why the gather terminated early (wrapping ErrRankFailed), or
// nil after a complete gather. Meaningful once Chunks is closed.
func (cg *ChunkedGather) Err() error {
	if p := cg.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Wait drains any undelivered chunks and returns the completed output —
// the blocking-Allgather view of a chunked gather. The error is non-nil
// when a rank failure aborted the ring before completion.
func (cg *ChunkedGather) Wait() ([]float64, error) {
	for range cg.ch {
	}
	return cg.out, cg.Err()
}

// AllgatherChunks starts a chunked ring allgather. lens[r] is the word
// count contributed by group rank r (the SPMD-agreed layout — unlike
// Allgather there is no length-exchange ring, so the caller supplies it);
// data is this rank's contribution of length lens[Rank()]. Layout
// mismatches are reported as errors — under fault injection a runtime
// must not turn a caller bug into a process abort.
//
// The ring runs on a helper goroutine: Send/Recv, counters and metrics are
// all safe under the concurrent rank compute the caller is expected to do.
// Arrival order for rank me is deterministic: me, me-1, me-2, … (mod size),
// one chunk per ring hop — the order fuse.Partition's arrival schedule
// mirrors — unless a reorder fault swaps adjacent notifications. If a rank
// fails mid-ring (its own abort or a world-wide failure broadcast), the
// helper recovers the unwind, records it on the gather, and closes the
// stream so the consumer unblocks with Err() != nil.
func (c *Comm) AllgatherChunks(data []float64, lens []int) (*ChunkedGather, error) {
	g := c.Size()
	if len(lens) != g {
		return nil, fmt.Errorf("dist: AllgatherChunks lens has %d entries for group size %d", len(lens), g)
	}
	if len(data) != lens[c.me] {
		return nil, fmt.Errorf("dist: AllgatherChunks rank %d contributes %d words, lens says %d", c.me, len(data), lens[c.me])
	}
	bounds := make([]int, g+1)
	for i, l := range lens {
		bounds[i+1] = bounds[i] + l
	}
	cg := &ChunkedGather{
		out: make([]float64, bounds[g]),
		// Buffered for every chunk: the ring never blocks on a slow
		// consumer, so communication progresses at full speed even when the
		// engine is deep in a compute fragment.
		ch: make(chan Chunk, g),
	}
	copy(cg.out[bounds[c.me]:bounds[c.me+1]], data)
	cg.ch <- Chunk{Step: 0, Src: c.me, Lo: bounds[c.me], Hi: bounds[c.me+1]}
	if g == 1 {
		close(cg.ch)
		return cg, nil
	}

	right := (c.me + 1) % g
	left := (c.me - 1 + g) % g
	inj := c.w.opts.Faults
	go func() {
		defer close(cg.ch)
		defer func() {
			if rec := recover(); rec != nil {
				rf, ok := rec.(rankFailure)
				if !ok {
					panic(rec) // genuine bug: re-raise
				}
				cg.err.Store(&rf.err)
			}
		}()
		track := c.w.gatherTrack(c.global)
		whole := track.Start("allgather_chunks")
		before := c.snapshot()
		var held *Chunk // reorder fault: notification held back one hop
		for t := 0; t < g-1; t++ {
			sendIdx := (c.me - t + g) % g
			recvIdx := (c.me - 1 - t + 2*g) % g
			c.round()
			hop := track.Start("gather.hop")
			// Explicit causal code: the helper runs concurrently with rank
			// compute, so it must not read the rank-owned curColl.
			c.sendCoded(right, cg.out[bounds[sendIdx]:bounds[sendIdx+1]], codeGatherHop)
			chunk := c.recvCoded(left, codeGatherHop)
			copy(cg.out[bounds[recvIdx]:bounds[recvIdx+1]], chunk)
			bytes := int64(8 * len(chunk))
			metrics.CollectiveBytes.With("allgather_chunk").Observe(float64(bytes))
			if hop.Active() {
				hop.End(obs.Int64("bytes", bytes), obs.Int64("src", int64(recvIdx)))
			}
			note := Chunk{Step: t + 1, Src: recvIdx, Lo: bounds[recvIdx], Hi: bounds[recvIdx+1]}
			switch {
			case held != nil:
				// Deliver the newer chunk first, then the held-back one —
				// the injected out-of-order arrival.
				cg.ch <- note
				cg.ch <- *held
				held = nil
			case inj != nil && t+1 < g-1 && inj.ReorderChunk(c.global):
				metrics.FaultsInjectedTotal.With("reorder").Inc()
				h := note
				held = &h
			default:
				cg.ch <- note
			}
		}
		if held != nil {
			cg.ch <- *held
		}
		if whole.Active() {
			after := c.snapshot()
			obs.Sample("comm bytes", c.w.totalBytes.Load())
			whole.End(obs.Int64("bytes", after.BytesSent-before.BytesSent),
				obs.Int64("msgs", after.MsgsSent-before.MsgsSent))
		}
	}()
	return cg, nil
}
