// Package grb provides a small GraphBLAS-flavored interface over the sparse
// substrate — the integration surface the paper emphasizes ("our global
// formulations could easily be used with GraphBLAS implementations such as
// Combinatorial BLAS, GraphMat, or GraphBLAST"). It offers the core
// GraphBLAS verbs — mxm, mxv, vxm, eWiseAdd, eWiseMult, apply, reduce,
// select — over arbitrary float64 semirings with optional structural masks,
// enough to express both classic linear-algebra graph algorithms (BFS,
// SSSP, triangle counting; see the tests) and the A-GNN Ψ pipelines.
package grb

import (
	"fmt"
	"math"

	"agnn/internal/par"
	"agnn/internal/semiring"
	"agnn/internal/sparse"
)

// Semiring is the scalar semiring used by the matrix verbs.
type Semiring = semiring.Semiring[float64]

// Standard semirings re-exported for convenience.
var (
	PlusTimes = semiring.Real()
	MinPlus   = semiring.TropicalMin()
	MaxPlus   = semiring.TropicalMax()
)

// Vector is a dense GraphBLAS vector; entries equal to the ambient
// semiring's Zero are treated as structurally absent by masked operations.
type Vector struct {
	Data []float64
}

// NewVector returns a vector of n copies of fill.
func NewVector(n int, fill float64) *Vector {
	v := &Vector{Data: make([]float64, n)}
	for i := range v.Data {
		v.Data[i] = fill
	}
	return v
}

// Len returns the dimension.
func (v *Vector) Len() int { return len(v.Data) }

// Clone copies the vector.
func (v *Vector) Clone() *Vector {
	return &Vector{Data: append([]float64(nil), v.Data...)}
}

// NVals counts entries different from zero (structural presence for the
// given identity value).
func (v *Vector) NVals(zero float64) int {
	n := 0
	for _, x := range v.Data {
		if x != zero && !(math.IsNaN(x) && math.IsNaN(zero)) {
			n++
		}
	}
	return n
}

// Mask restricts writes: nil means no mask. Complement inverts it
// (GraphBLAS GrB_COMP).
type Mask struct {
	Keep       []bool
	Complement bool
}

// allows reports whether index i may be written.
func (m *Mask) allows(i int) bool {
	if m == nil {
		return true
	}
	k := m.Keep[i]
	if m.Complement {
		return !k
	}
	return k
}

// MxV computes w = A ⊕.⊗ u over the semiring, honoring the mask: masked-out
// positions keep Zero. Missing matrix entries contribute nothing; the
// matrix value is passed through edge (e.g. map stored weights into the
// semiring domain), identity if nil.
func MxV(a *sparse.CSR, u *Vector, sr Semiring, mask *Mask, edge func(float64) float64) *Vector {
	if a.Cols != u.Len() {
		panic(fmt.Sprintf("grb: MxV dimension mismatch %d×%d · %d", a.Rows, a.Cols, u.Len()))
	}
	if edge == nil {
		edge = func(v float64) float64 { return v }
	}
	w := NewVector(a.Rows, sr.Zero)
	par.RangeWeighted(a.Rows, func(i int) int64 { return int64(a.RowNNZ(i)) }, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if !mask.allows(i) {
				continue
			}
			acc := sr.Zero
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				acc = sr.Plus(acc, sr.Times(edge(a.Val[p]), u.Data[a.Col[p]]))
			}
			w.Data[i] = acc
		}
	})
	return w
}

// VxM computes w = uᵀ ⊕.⊗ A (push direction).
func VxM(u *Vector, a *sparse.CSR, sr Semiring, mask *Mask, edge func(float64) float64) *Vector {
	if a.Rows != u.Len() {
		panic(fmt.Sprintf("grb: VxM dimension mismatch %d · %d×%d", u.Len(), a.Rows, a.Cols))
	}
	// Gather formulation over Aᵀ keeps the operation race-free.
	return MxV(a.Transpose(), u, sr, mask, edge)
}

// MxM computes C = A ⊕.⊗ B over the semiring with an optional structural
// output mask M (compute only positions present in M — the masked mxm of
// triangle counting). With a mask the result has M's pattern; without one
// it has the full product's pattern (row-merge Gustavson algorithm).
func MxM(a, b *sparse.CSR, sr Semiring, outMask *sparse.CSR) *sparse.CSR {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("grb: MxM dimension mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if outMask != nil {
		// Masked: evaluate only the mask's non-zero positions. For each
		// (i, j) in the mask, compute ⊕_t a_it ⊗ b_tj by merging row i of A
		// with column j of B — done via B's transpose rows.
		bt := b.Transpose()
		vals := make([]float64, outMask.NNZ())
		par.RangeWeighted(outMask.Rows, func(i int) int64 { return int64(outMask.RowNNZ(i)) }, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				for p := outMask.RowPtr[i]; p < outMask.RowPtr[i+1]; p++ {
					j := outMask.Col[p]
					vals[p] = dotRows(a, i, bt, int(j), sr)
				}
			}
		})
		return outMask.WithValues(vals)
	}
	// Unmasked Gustavson: per output row, scatter-accumulate.
	coo := sparse.NewCOO(a.Rows, b.Cols, a.NNZ())
	accVal := make([]float64, b.Cols)
	accSet := make([]bool, b.Cols)
	var touched []int32
	for i := 0; i < a.Rows; i++ {
		touched = touched[:0]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			av := a.Val[p]
			t := a.Col[p]
			for q := b.RowPtr[t]; q < b.RowPtr[t+1]; q++ {
				j := b.Col[q]
				prod := sr.Times(av, b.Val[q])
				if !accSet[j] {
					accSet[j] = true
					accVal[j] = prod
					touched = append(touched, j)
				} else {
					accVal[j] = sr.Plus(accVal[j], prod)
				}
			}
		}
		for _, j := range touched {
			coo.AppendVal(int32(i), j, accVal[j])
			accSet[j] = false
		}
	}
	return sparse.FromCOO(coo)
}

// dotRows computes ⊕_t a[i,t] ⊗ btRow[j,t] by merging two sorted sparse rows.
func dotRows(a *sparse.CSR, i int, bt *sparse.CSR, j int, sr Semiring) float64 {
	pa, ea := a.RowPtr[i], a.RowPtr[i+1]
	pb, eb := bt.RowPtr[j], bt.RowPtr[j+1]
	acc := sr.Zero
	for pa < ea && pb < eb {
		switch {
		case a.Col[pa] < bt.Col[pb]:
			pa++
		case a.Col[pa] > bt.Col[pb]:
			pb++
		default:
			acc = sr.Plus(acc, sr.Times(a.Val[pa], bt.Val[pb]))
			pa++
			pb++
		}
	}
	return acc
}

// EWiseAdd combines two vectors with the semiring's Plus.
func EWiseAdd(u, v *Vector, sr Semiring) *Vector {
	if u.Len() != v.Len() {
		panic("grb: EWiseAdd length mismatch")
	}
	w := NewVector(u.Len(), sr.Zero)
	for i := range w.Data {
		w.Data[i] = sr.Plus(u.Data[i], v.Data[i])
	}
	return w
}

// EWiseMult combines two vectors with the semiring's Times.
func EWiseMult(u, v *Vector, sr Semiring) *Vector {
	if u.Len() != v.Len() {
		panic("grb: EWiseMult length mismatch")
	}
	w := NewVector(u.Len(), sr.Zero)
	for i := range w.Data {
		w.Data[i] = sr.Times(u.Data[i], v.Data[i])
	}
	return w
}

// Apply maps f over the vector.
func Apply(u *Vector, f func(float64) float64) *Vector {
	w := &Vector{Data: make([]float64, u.Len())}
	for i, x := range u.Data {
		w.Data[i] = f(x)
	}
	return w
}

// Reduce folds the vector with the semiring's Plus.
func Reduce(u *Vector, sr Semiring) float64 {
	acc := sr.Zero
	for _, x := range u.Data {
		acc = sr.Plus(acc, x)
	}
	return acc
}

// ReduceMatrix folds all stored matrix values with the semiring's Plus.
func ReduceMatrix(a *sparse.CSR, sr Semiring) float64 {
	acc := sr.Zero
	for _, v := range a.Val {
		acc = sr.Plus(acc, v)
	}
	return acc
}

// Select keeps matrix entries satisfying pred (GraphBLAS GrB_select), e.g.
// the strict lower triangle for triangle counting.
func Select(a *sparse.CSR, pred func(i, j int32, v float64) bool) *sparse.CSR {
	coo := sparse.NewCOO(a.Rows, a.Cols, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if pred(int32(i), a.Col[p], a.Val[p]) {
				coo.AppendVal(int32(i), a.Col[p], a.Val[p])
			}
		}
	}
	return sparse.FromCOO(coo)
}
