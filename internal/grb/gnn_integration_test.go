package grb

import (
	"math"
	"math/rand"
	"testing"

	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// TestMaskedMxMIsSDDMM substantiates the paper's integration claim: the
// g-SDDMM at the heart of the A-GNN Ψ computations is expressible as a
// GraphBLAS masked mxm — Ψ = A ⊙ (H·Hᵀ) = MxM(H, Hᵀ, ⊕.⊗, mask A). The
// dedicated sparse.SDDMM kernel and the GraphBLAS route must agree exactly.
func TestMaskedMxMIsSDDMM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, k := 30, 6
	// Random symmetric pattern.
	c := sparse.NewCOO(n, n, 4*n)
	for e := 0; e < 3*n; e++ {
		i, j := int32(rng.Intn(n)), int32(rng.Intn(n))
		if i != j {
			c.Append(i, j)
			c.Append(j, i)
		}
	}
	a := sparse.FromCOO(c)
	h := tensor.RandN(n, k, 1, rng)

	// GraphBLAS route: H as a sparse matrix, masked plus-times mxm.
	hs := sparse.FromDense(h)
	viaGrb := MxM(hs, hs.Transpose(), PlusTimes, a)
	// Kernel route.
	viaKernel := sparse.SDDMM(a, h, h)
	for p := range viaGrb.Val {
		if math.Abs(viaGrb.Val[p]-viaKernel.Val[p]) > 1e-10 {
			t.Fatalf("masked MxM != SDDMM at entry %d: %v vs %v",
				p, viaGrb.Val[p], viaKernel.Val[p])
		}
	}
}

// TestVAPsiThroughGraphBLAS builds VA's full Ψ (including the softmax-free
// variant's aggregation) through GraphBLAS verbs only and compares with the
// model pipeline: Z = Ψ·H with Ψ = A ⊙ (H·Hᵀ).
func TestVAPsiThroughGraphBLAS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, k := 20, 4
	c := sparse.NewCOO(n, n, 3*n)
	for e := 0; e < 2*n; e++ {
		i, j := int32(rng.Intn(n)), int32(rng.Intn(n))
		if i != j {
			c.Append(i, j)
		}
	}
	a := sparse.FromCOO(c)
	h := tensor.RandN(n, k, 1, rng)
	hs := sparse.FromDense(h)

	psi := MxM(hs, hs.Transpose(), PlusTimes, a)
	// Aggregate column c of H through MxV, column by column.
	z := tensor.NewDense(n, k)
	for col := 0; col < k; col++ {
		u := NewVector(n, 0)
		for i := 0; i < n; i++ {
			u.Data[i] = h.At(i, col)
		}
		w := MxV(psi, u, PlusTimes, nil, nil)
		for i := 0; i < n; i++ {
			z.Set(i, col, w.Data[i])
		}
	}
	want := sparse.SDDMM(a, h, h).MulDense(h)
	if !z.ApproxEqual(want, 1e-10) {
		t.Fatalf("GraphBLAS VA pipeline differs by %g", z.MaxAbsDiff(want))
	}
}

func TestFromDenseRoundtrip(t *testing.T) {
	d := tensor.NewDenseFrom(2, 3, []float64{1, 0, 2, 0, 0, 3})
	s := sparse.FromDense(d)
	if s.NNZ() != 3 {
		t.Fatalf("nnz = %d", s.NNZ())
	}
	if !s.ToDense().ApproxEqual(d, 0) {
		t.Fatal("FromDense roundtrip mismatch")
	}
}
