package grb

import (
	"math"

	"agnn/internal/sparse"
)

// Classic linear-algebra graph algorithms built from the GraphBLAS verbs.
// They serve two purposes: exercising the semiring machinery the GNN
// aggregations rely on (Section 4.3 uses the same tropical semirings), and
// demonstrating that the repository's sparse substrate is a general
// irregular-computation substrate in the sense of the paper's related-work
// section.

// BFSLevels computes BFS levels from source over the boolean-ish structure
// of a (any non-zero is an edge): level[v] is the hop distance, -1 if
// unreachable. Each step is one masked VxM over (∨, ∧).
func BFSLevels(a *sparse.CSR, source int) []int {
	n := a.Rows
	levels := make([]int, n)
	for i := range levels {
		levels[i] = -1
	}
	levels[source] = 0
	frontier := NewVector(n, 0)
	frontier.Data[source] = 1
	visited := make([]bool, n)
	visited[source] = true

	for depth := 1; ; depth++ {
		// next = frontierᵀ · A, masked to unvisited vertices.
		next := VxM(frontier, a, PlusTimes, &Mask{Keep: visited, Complement: true},
			func(float64) float64 { return 1 })
		any := false
		for v, x := range next.Data {
			if x != 0 && !visited[v] {
				visited[v] = true
				levels[v] = depth
				any = true
			} else {
				next.Data[v] = 0
			}
		}
		if !any {
			return levels
		}
		frontier = next
	}
}

// SSSP computes single-source shortest paths over the min-plus (tropical)
// semiring with Bellman-Ford-style relaxation: dist' = min(dist, Aᵀ ⊕.⊗
// dist). Edge weights are the stored matrix values; +Inf marks
// unreachable.
func SSSP(a *sparse.CSR, source int) []float64 {
	n := a.Rows
	dist := NewVector(n, math.Inf(1))
	dist.Data[source] = 0
	at := a.Transpose() // relax along incoming edges of each vertex
	for iter := 0; iter < n; iter++ {
		relaxed := MxV(at, dist, MinPlus, nil, nil)
		changed := false
		for v := range dist.Data {
			if relaxed.Data[v] < dist.Data[v] {
				dist.Data[v] = relaxed.Data[v]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist.Data
}

// TriangleCount returns the number of triangles in an undirected graph
// using the masked-mxm formulation: with L the strict lower triangle,
// #triangles = reduce(L ⊙ (L·Lᵀ)) — one masked MxM plus a reduce.
func TriangleCount(a *sparse.CSR) int {
	l := Select(a, func(i, j int32, _ float64) bool { return j < i })
	ones := l.Apply(func(float64) float64 { return 1 })
	c := MxM(ones, ones.Transpose(), PlusTimes, ones)
	return int(ReduceMatrix(c, PlusTimes))
}

// ConnectedComponents labels vertices of an undirected graph by repeated
// min-label propagation over the (min, min) style semiring (implemented as
// min-plus with zero edge cost). Returns component ids in [0, n).
func ConnectedComponents(a *sparse.CSR) []int {
	n := a.Rows
	label := NewVector(n, 0)
	for i := range label.Data {
		label.Data[i] = float64(i)
	}
	for {
		prop := MxV(a, label, MinPlus, nil, func(float64) float64 { return 0 })
		changed := false
		for v := range label.Data {
			if prop.Data[v] < label.Data[v] {
				label.Data[v] = prop.Data[v]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := make([]int, n)
	for i, l := range label.Data {
		out[i] = int(l)
	}
	return out
}

// PageRank computes the classic damped PageRank with dangling-mass
// redistribution, expressed as repeated VxM over (+, ×).
func PageRank(a *sparse.CSR, damping float64, iters int) []float64 {
	n := a.Rows
	deg := a.RowSums()
	rank := NewVector(n, 1/float64(n))
	for it := 0; it < iters; it++ {
		// Push: contribution of v is rank[v]/deg[v] along out-edges.
		contrib := NewVector(n, 0)
		dangling := 0.0
		for v := range contrib.Data {
			if deg[v] > 0 {
				contrib.Data[v] = rank.Data[v] / deg[v]
			} else {
				dangling += rank.Data[v]
			}
		}
		next := VxM(contrib, a, PlusTimes, nil, nil)
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := range next.Data {
			next.Data[v] = base + damping*next.Data[v]
		}
		rank = next
	}
	return rank.Data
}

// BetweennessCentrality computes exact betweenness for unweighted graphs
// with the linear-algebra Brandes formulation (cf. the paper's reference to
// communication-efficient betweenness via sparse matrix products): per
// source, a breadth-first sweep of masked VxM operations accumulates
// shortest-path counts σ, and a reverse sweep accumulates dependencies δ.
// sources selects the pivots (nil = all vertices, exact BC).
func BetweennessCentrality(a *sparse.CSR, sources []int) []float64 {
	n := a.Rows
	if sources == nil {
		sources = make([]int, n)
		for i := range sources {
			sources[i] = i
		}
	}
	bc := make([]float64, n)
	for _, s := range sources {
		// Forward phase: levels and path counts.
		sigma := NewVector(n, 0)
		sigma.Data[s] = 1
		level := make([]int, n)
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		var frontiers [][]int
		frontier := []int{s}
		visited := make([]bool, n)
		visited[s] = true
		for depth := 1; len(frontier) > 0; depth++ {
			frontiers = append(frontiers, frontier)
			// σ contribution of the current frontier pushed along edges.
			fvec := NewVector(n, 0)
			for _, v := range frontier {
				fvec.Data[v] = sigma.Data[v]
			}
			pushed := VxM(fvec, a, PlusTimes, &Mask{Keep: visited, Complement: true},
				func(float64) float64 { return 1 })
			var next []int
			for v, x := range pushed.Data {
				if x != 0 && !visited[v] {
					level[v] = depth
					sigma.Data[v] += x
					next = append(next, v)
				}
			}
			for _, v := range next {
				visited[v] = true
			}
			frontier = next
		}
		// Backward phase: dependency accumulation level by level.
		delta := make([]float64, n)
		for d := len(frontiers) - 1; d >= 1; d-- {
			// For each vertex u at level d-1: δ_u += Σ over successors w at
			// level d of (σ_u/σ_w)(1+δ_w). Push (1+δ_w)/σ_w from level d
			// backwards along incoming edges, then scale by σ_u.
			wvec := NewVector(n, 0)
			for _, w := range frontiers[d] {
				wvec.Data[w] = (1 + delta[w]) / sigma.Data[w]
			}
			keep := make([]bool, n)
			for _, u := range frontiers[d-1] {
				keep[u] = true
			}
			pulled := MxV(a, wvec, PlusTimes, &Mask{Keep: keep},
				func(float64) float64 { return 1 })
			for _, u := range frontiers[d-1] {
				delta[u] += sigma.Data[u] * pulled.Data[u]
			}
		}
		for v := range delta {
			if v != s {
				bc[v] += delta[v]
			}
		}
	}
	return bc
}
