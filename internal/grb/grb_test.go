package grb

import (
	"math"
	"testing"

	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// pathWeighted builds a weighted directed path 0→1→2→…→n-1 with weight w.
func pathWeighted(n int, w float64) *sparse.CSR {
	c := sparse.NewCOO(n, n, n-1)
	for i := 0; i < n-1; i++ {
		c.AppendVal(int32(i), int32(i+1), w)
	}
	return sparse.FromCOO(c)
}

func undirected(edges [][2]int32, n int) *sparse.CSR {
	c := sparse.NewCOO(n, n, 2*len(edges))
	for _, e := range edges {
		c.Append(e[0], e[1])
		c.Append(e[1], e[0])
	}
	return sparse.FromCOO(c)
}

func TestVectorBasics(t *testing.T) {
	v := NewVector(4, 7)
	if v.Len() != 4 || v.Data[3] != 7 {
		t.Fatal("NewVector wrong")
	}
	c := v.Clone()
	c.Data[0] = 0
	if v.Data[0] != 7 {
		t.Fatal("Clone aliases")
	}
	if c.NVals(0) != 3 {
		t.Fatalf("NVals = %d", c.NVals(0))
	}
}

func TestMxVPlusTimesMatchesDense(t *testing.T) {
	a := pathWeighted(4, 2)
	u := &Vector{Data: []float64{1, 2, 3, 4}}
	w := MxV(a, u, PlusTimes, nil, nil)
	// Row i has entry 2 at column i+1 → w[i] = 2·u[i+1].
	want := []float64{4, 6, 8, 0}
	for i := range want {
		if w.Data[i] != want[i] {
			t.Fatalf("MxV[%d] = %v want %v", i, w.Data[i], want[i])
		}
	}
}

func TestMxVMask(t *testing.T) {
	a := pathWeighted(3, 1)
	u := &Vector{Data: []float64{1, 1, 1}}
	keep := []bool{true, false, true}
	w := MxV(a, u, PlusTimes, &Mask{Keep: keep}, nil)
	if w.Data[0] != 1 || w.Data[1] != 0 {
		t.Fatalf("masked MxV = %v", w.Data)
	}
	wc := MxV(a, u, PlusTimes, &Mask{Keep: keep, Complement: true}, nil)
	if wc.Data[0] != 0 || wc.Data[1] != 1 {
		t.Fatalf("complement-masked MxV = %v", wc.Data)
	}
}

func TestVxMIsTransposedMxV(t *testing.T) {
	a := pathWeighted(4, 3)
	u := &Vector{Data: []float64{1, 2, 3, 4}}
	w := VxM(u, a, PlusTimes, nil, nil)
	want := MxV(a.Transpose(), u, PlusTimes, nil, nil)
	for i := range w.Data {
		if w.Data[i] != want.Data[i] {
			t.Fatal("VxM != MxV over Aᵀ")
		}
	}
}

func TestMxMUnmaskedMatchesDense(t *testing.T) {
	a := undirected([][2]int32{{0, 1}, {1, 2}, {0, 2}}, 4)
	c := MxM(a, a, PlusTimes, nil)
	want := tensor.MM(a.ToDense(), a.ToDense())
	if !c.ToDense().ApproxEqual(want, 1e-12) {
		t.Fatalf("MxM mismatch:\n%v\nvs\n%v", c.ToDense(), want)
	}
}

func TestMxMMaskedMatchesDenseAtMask(t *testing.T) {
	a := undirected([][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}}, 4)
	c := MxM(a, a, PlusTimes, a) // A ⊙ (A·A)
	full := tensor.MM(a.ToDense(), a.ToDense())
	cd := c.ToDense()
	ad := a.ToDense()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if ad.At(i, j) != 0 {
				want = full.At(i, j)
			}
			if cd.At(i, j) != want {
				t.Fatalf("masked MxM (%d,%d) = %v want %v", i, j, cd.At(i, j), want)
			}
		}
	}
}

func TestMxMMinPlusIsAPSPStep(t *testing.T) {
	// One min-plus squaring of the weighted adjacency gives 2-hop shortest
	// path candidates.
	c := sparse.NewCOO(3, 3, 2)
	c.AppendVal(0, 1, 5)
	c.AppendVal(1, 2, 7)
	a := sparse.FromCOO(c)
	sq := MxM(a, a, MinPlus, nil)
	if sq.ToDense().At(0, 2) != 12 {
		t.Fatalf("min-plus square (0,2) = %v, want 12", sq.ToDense().At(0, 2))
	}
}

func TestEWiseAndApplyAndReduce(t *testing.T) {
	u := &Vector{Data: []float64{1, 2, 3}}
	v := &Vector{Data: []float64{10, 20, 30}}
	if w := EWiseAdd(u, v, PlusTimes); w.Data[2] != 33 {
		t.Fatal("EWiseAdd wrong")
	}
	if w := EWiseMult(u, v, PlusTimes); w.Data[1] != 40 {
		t.Fatal("EWiseMult wrong")
	}
	if w := EWiseAdd(u, v, MinPlus); w.Data[0] != 1 {
		t.Fatal("min EWiseAdd wrong")
	}
	if w := Apply(u, func(x float64) float64 { return -x }); w.Data[0] != -1 {
		t.Fatal("Apply wrong")
	}
	if Reduce(u, PlusTimes) != 6 {
		t.Fatal("Reduce wrong")
	}
	if Reduce(u, MaxPlus) != 3 {
		t.Fatal("max Reduce wrong")
	}
}

func TestSelect(t *testing.T) {
	a := undirected([][2]int32{{0, 1}, {1, 2}}, 3)
	lower := Select(a, func(i, j int32, _ float64) bool { return j < i })
	if lower.NNZ() != 2 { // (1,0) and (2,1)
		t.Fatalf("lower triangle nnz = %d", lower.NNZ())
	}
}

func TestShapePanics(t *testing.T) {
	a := pathWeighted(3, 1)
	for name, f := range map[string]func(){
		"MxV":       func() { MxV(a, NewVector(5, 0), PlusTimes, nil, nil) },
		"VxM":       func() { VxM(NewVector(5, 0), a, PlusTimes, nil, nil) },
		"MxM":       func() { MxM(a, pathWeighted(4, 1), PlusTimes, nil) },
		"EWiseAdd":  func() { EWiseAdd(NewVector(2, 0), NewVector(3, 0), PlusTimes) },
		"EWiseMult": func() { EWiseMult(NewVector(2, 0), NewVector(3, 0), PlusTimes) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// ------------------------------ algorithms -------------------------------

func TestBFSLevels(t *testing.T) {
	// 0-1-2-3 path plus isolated 4.
	a := undirected([][2]int32{{0, 1}, {1, 2}, {2, 3}}, 5)
	lv := BFSLevels(a, 0)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if lv[i] != want[i] {
			t.Fatalf("BFS level[%d] = %d want %d", i, lv[i], want[i])
		}
	}
}

func TestSSSP(t *testing.T) {
	// 0→1 (5), 0→2 (2), 2→1 (1), 1→3 (1): dist = [0, 3, 2, 4].
	c := sparse.NewCOO(5, 5, 4)
	c.AppendVal(0, 1, 5)
	c.AppendVal(0, 2, 2)
	c.AppendVal(2, 1, 1)
	c.AppendVal(1, 3, 1)
	a := sparse.FromCOO(c)
	d := SSSP(a, 0)
	want := []float64{0, 3, 2, 4, math.Inf(1)}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("SSSP[%d] = %v want %v", i, d[i], want[i])
		}
	}
}

func TestTriangleCount(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 → exactly 1 triangle.
	a := undirected([][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}}, 4)
	if got := TriangleCount(a); got != 1 {
		t.Fatalf("triangles = %d, want 1", got)
	}
	// K4 has 4 triangles.
	k4 := undirected([][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, 4)
	if got := TriangleCount(k4); got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
	// Triangle-free bipartite square → 0.
	sq := undirected([][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 4)
	if got := TriangleCount(sq); got != 0 {
		t.Fatalf("C4 triangles = %d, want 0", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} and {3,4}; isolated 5.
	a := undirected([][2]int32{{0, 1}, {1, 2}, {3, 4}}, 6)
	cc := ConnectedComponents(a)
	if cc[0] != 0 || cc[1] != 0 || cc[2] != 0 {
		t.Fatalf("component of 0-2: %v", cc)
	}
	if cc[3] != 3 || cc[4] != 3 {
		t.Fatalf("component of 3-4: %v", cc)
	}
	if cc[5] != 5 {
		t.Fatalf("isolated vertex component: %v", cc)
	}
}

func TestPageRank(t *testing.T) {
	// Star: hub 0 connected to 1..3 (undirected). Hub must rank highest.
	a := undirected([][2]int32{{0, 1}, {0, 2}, {0, 3}}, 4)
	pr := PageRank(a, 0.85, 50)
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PageRank mass %v, want 1", sum)
	}
	for v := 1; v < 4; v++ {
		if pr[0] <= pr[v] {
			t.Fatalf("hub rank %v not above leaf %v", pr[0], pr[v])
		}
	}
	// Dangling vertex handling: directed edge into a sink keeps mass = 1.
	c := sparse.NewCOO(2, 2, 1)
	c.AppendVal(0, 1, 1)
	pr = PageRank(sparse.FromCOO(c), 0.85, 30)
	if math.Abs(pr[0]+pr[1]-1) > 1e-9 {
		t.Fatalf("dangling mass lost: %v", pr)
	}
}

func TestBetweennessCentralityPath(t *testing.T) {
	// Path 0-1-2-3-4: exact BC (undirected counts both directions as
	// separate source sweeps) is 2·[0, 3, 4, 3, 0].
	a := undirected([][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, 5)
	bc := BetweennessCentrality(a, nil)
	want := []float64{0, 6, 8, 6, 0}
	for i := range want {
		if math.Abs(bc[i]-want[i]) > 1e-9 {
			t.Fatalf("BC[%d] = %v, want %v (full %v)", i, bc[i], want[i], bc)
		}
	}
}

func TestBetweennessCentralityStar(t *testing.T) {
	// Star with hub 0 and leaves 1..4: hub lies on all leaf-pair paths:
	// directed-pair count = 4·3 = 12; leaves have 0.
	a := undirected([][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, 5)
	bc := BetweennessCentrality(a, nil)
	if math.Abs(bc[0]-12) > 1e-9 {
		t.Fatalf("hub BC = %v, want 12", bc[0])
	}
	for v := 1; v < 5; v++ {
		if bc[v] != 0 {
			t.Fatalf("leaf BC[%d] = %v", v, bc[v])
		}
	}
}

func TestBetweennessCentralitySigmaSplit(t *testing.T) {
	// Diamond 0-1-3, 0-2-3: two shortest paths 0→3; each middle vertex gets
	// dependency 1/2 per direction of each endpoint pair... exact values:
	// pairs (0,3) and (3,0) each contribute 0.5 to vertices 1 and 2.
	// By symmetry every vertex also carries the (1,2)/(2,1) pairs' split
	// through 0 and 3, so all four vertices end with BC = 1.
	a := undirected([][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, 4)
	bc := BetweennessCentrality(a, nil)
	for v := range bc {
		if math.Abs(bc[v]-1) > 1e-9 {
			t.Fatalf("diamond BC = %v, want all 1", bc)
		}
	}
}

func TestBetweennessSampledSources(t *testing.T) {
	a := undirected([][2]int32{{0, 1}, {1, 2}}, 3)
	// Only source 0: path 0→2 passes through 1 → δ contribution 1.
	bc := BetweennessCentrality(a, []int{0})
	if math.Abs(bc[1]-1) > 1e-9 || bc[0] != 0 || bc[2] != 0 {
		t.Fatalf("sampled BC = %v", bc)
	}
}
