package tensor

import (
	"fmt"

	"agnn/internal/par"
)

// MM returns the dense product A·B (the MM kernel of Table 2). The loop
// order (i, t, j) with the inner loop over B's rows keeps all accesses
// sequential; rows of A are distributed over workers.
func MM(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MM inner dimension mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	MMInto(out, a, b)
	return out
}

// MMInto computes out = A·B into pre-allocated out. B's columns are tiled
// to the cache budget (TileCols): each worker sweeps its row range once per
// k×w block of B, so the block stays L2-resident across rows instead of B
// being streamed in full for every row. Tiling splits output columns only —
// each out[i,j] accumulates over t in the same order as the untiled loop,
// so the result is bitwise-identical.
func MMInto(out, a, b *Dense) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MMInto shape mismatch out %d×%d = %d×%d · %d×%d",
			out.Rows, out.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	tile := TileCols(k, m, 8)
	par.Range(n, func(_, lo, hi int) {
		for j0 := 0; j0 < m; j0 += tile {
			j1 := min(j0+tile, m)
			for i := lo; i < hi; i++ {
				arow := a.Data[i*k : (i+1)*k]
				orow := out.Data[i*m+j0 : i*m+j1]
				clear(orow)
				for t := 0; t < k; t++ {
					av := arow[t]
					if av == 0 {
						continue
					}
					brow := b.Data[t*m+j0 : t*m+j1]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	})
}

// MMT returns A·Bᵀ without materializing the transpose. This is the X× =
// X·Xᵀ pattern of Table 2 when a == b.
func MMT(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MMT inner dimension mismatch %d×%d · (%d×%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Rows
	out := NewDense(n, m)
	par.Range(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*m : (i+1)*m]
			for j := 0; j < m; j++ {
				brow := b.Data[j*k : (j+1)*k]
				s := 0.0
				for t, av := range arow {
					s += av * brow[t]
				}
				orow[j] = s
			}
		}
	})
	return out
}

// TMM returns Aᵀ·B without materializing the transpose. This is the
// projection-gradient pattern Hᵀ·G used throughout the backward passes.
// Workers accumulate into private k×m buffers that are then summed, so the
// result is deterministic for a fixed worker count.
func TMM(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: TMM inner dimension mismatch (%d×%d)ᵀ · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	w := par.Workers()
	partials := make([]*Dense, w)
	par.Range(n, func(worker, lo, hi int) {
		acc := partials[worker]
		if acc == nil {
			acc = NewDense(k, m)
			partials[worker] = acc
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			brow := b.Data[i*m : (i+1)*m]
			for t, av := range arow {
				if av == 0 {
					continue
				}
				crow := acc.Data[t*m : (t+1)*m]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
	out := NewDense(k, m)
	for _, p := range partials {
		if p != nil {
			out.AddInPlace(p)
		}
	}
	return out
}

// MMTAccumulate computes out += A·Bᵀ without materializing the transpose
// and without allocating; rows of out are owned by workers, so no partial
// buffers are needed.
func MMTAccumulate(out, a, b *Dense) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MMTAccumulate shape mismatch out %d×%d += %d×%d · (%d×%d)ᵀ",
			out.Rows, out.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Rows
	par.Range(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*m : (i+1)*m]
			for j := 0; j < m; j++ {
				brow := b.Data[j*k : (j+1)*k]
				s := 0.0
				for t, av := range arow {
					s += av * brow[t]
				}
				orow[j] += s
			}
		}
	})
}

// TMMScratch holds the per-worker partial accumulators TMMAccumulate needs
// to parallelize over rows without races. The buffers are kept zeroed
// between calls, so a scratch that has warmed up to the current worker
// count makes TMMAccumulate allocation-free — the property the compiled
// plans rely on.
type TMMScratch struct {
	partials []*Dense
}

// ensure grows the scratch to the current worker count (plus one: the
// weighted scheduler may emit one extra chunk) and the requested shape.
func (s *TMMScratch) ensure(k, m int) []*Dense {
	need := par.Workers() + 1
	if len(s.partials) < need {
		grown := make([]*Dense, need)
		copy(grown, s.partials)
		s.partials = grown
	}
	for i, p := range s.partials {
		if p != nil && (p.Rows != k || p.Cols != m) {
			s.partials[i] = nil
		}
	}
	return s.partials
}

// TMMAccumulate computes out += Aᵀ·B without materializing the transpose,
// accumulating per-worker partials from scratch (allocated lazily on first
// use and when the worker count grows). Pass nil scratch for one-shot use.
func TMMAccumulate(out, a, b *Dense, scratch *TMMScratch) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: TMMAccumulate shape mismatch out %d×%d += (%d×%d)ᵀ · %d×%d",
			out.Rows, out.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if scratch == nil {
		scratch = &TMMScratch{}
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	partials := scratch.ensure(k, m)
	par.Range(n, func(worker, lo, hi int) {
		acc := partials[worker]
		if acc == nil {
			acc = NewDense(k, m)
			partials[worker] = acc
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			brow := b.Data[i*m : (i+1)*m]
			for t, av := range arow {
				if av == 0 {
					continue
				}
				crow := acc.Data[t*m : (t+1)*m]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
	// Fold the partials in and re-zero them, restoring the invariant that
	// scratch buffers are zero between calls.
	for _, p := range partials {
		if p != nil {
			out.AddInPlace(p)
			p.Zero()
		}
	}
}

// MatVecInto computes out = A·x into a pre-allocated slice.
func MatVecInto(out []float64, a *Dense, x []float64) {
	if len(x) != a.Cols || len(out) != a.Rows {
		panic(fmt.Sprintf("tensor: MatVecInto dimension mismatch %d = %d×%d · %d", len(out), a.Rows, a.Cols, len(x)))
	}
	par.Range(a.Rows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*a.Cols : (i+1)*a.Cols]
			s := 0.0
			for t, v := range row {
				s += v * x[t]
			}
			out[i] = s
		}
	})
}

// VecMatAccumulate computes out += xᵀ·A serially (the output is a short
// k-vector; the backward passes that use it are dominated by their sparse
// products).
func VecMatAccumulate(out, x []float64, a *Dense) {
	if len(x) != a.Rows || len(out) != a.Cols {
		panic(fmt.Sprintf("tensor: VecMatAccumulate dimension mismatch %d += %d · %d×%d", len(out), len(x), a.Rows, a.Cols))
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			out[j] += xv * v
		}
	}
}

// MatVec returns A·x for a column vector x (len(x) == A.Cols).
func MatVec(a *Dense, x []float64) []float64 {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %d×%d · %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	par.Range(a.Rows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*a.Cols : (i+1)*a.Cols]
			s := 0.0
			for t, v := range row {
				s += v * x[t]
			}
			out[i] = s
		}
	})
	return out
}

// VecMat returns xᵀ·A for a vector x (len(x) == A.Rows), i.e. the column
// combination Σ_i x_i · A[i,:].
func VecMat(x []float64, a *Dense) []float64 {
	if len(x) != a.Rows {
		panic(fmt.Sprintf("tensor: VecMat dimension mismatch %d · %d×%d", len(x), a.Rows, a.Cols))
	}
	out := make([]float64, a.Cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			out[j] += xv * v
		}
	}
	return out
}

// Outer returns the outer product x·yᵀ as a len(x)×len(y) matrix
// (the rep building block generalized to arbitrary y).
func Outer(x, y []float64) *Dense {
	out := NewDense(len(x), len(y))
	par.Range(len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := out.Data[i*len(y) : (i+1)*len(y)]
			xv := x[i]
			for j, yv := range y {
				row[j] = xv * yv
			}
		}
	})
	return out
}

// AddOuterInPlace accumulates alpha·x·yᵀ into m.
func AddOuterInPlace(m *Dense, alpha float64, x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("tensor: AddOuterInPlace shape mismatch %d×%d += %d·%d", m.Rows, m.Cols, len(x), len(y)))
	}
	par.Range(len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			s := alpha * x[i]
			if s == 0 {
				continue
			}
			for j, yv := range y {
				row[j] += s * yv
			}
		}
	})
}
