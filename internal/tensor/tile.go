package tensor

import "sync/atomic"

// Cache tiling for the bandwidth-bound kernels. The dense MM path and the
// CSR SpMM path both stream a k-wide (or m-wide) operand per row; once that
// operand outgrows L2 the inner loops fall off the roofline that
// BENCH_*.json measures. Tiling the feature/column dimension keeps the hot
// operand block resident: MM re-uses a k×w block of B across a worker's
// row range, SpMM confines the randomly indexed X rows to an n×w column
// stripe. Tiling splits only the *output* columns — every output element
// still accumulates its contributions in the original order, so tiled
// kernels are bitwise-identical to the untiled loops.

// defaultTileBudget is a conservative per-core L2 working-set target.
// Modern x86/ARM server cores carry 512 KiB–2 MiB of private L2; half of a
// small L2 leaves room for the streamed operand and the output rows.
const defaultTileBudget = 256 << 10

var tileBudget atomic.Int64

func init() { tileBudget.Store(defaultTileBudget) }

// SetTileBudget overrides the per-core cache budget (bytes) used to size
// kernel tiles; the -tile flag on the CLIs lands here. budget <= 0 restores
// the default.
func SetTileBudget(budget int64) {
	if budget <= 0 {
		budget = defaultTileBudget
	}
	tileBudget.Store(budget)
}

// TileBudget returns the current per-core cache budget in bytes.
func TileBudget() int64 { return tileBudget.Load() }

// TileCols sizes a column tile so that rows×tile elements of width
// elemSize stay within the cache budget. The result is clamped to
// [minTileCols, cols] and rounded to a multiple of 8 so tiles stay
// line-aligned; when the whole operand fits, it returns cols and the
// kernel degenerates to its untiled single-pass form.
func TileCols(rows, cols int, elemSize int64) int {
	const minTileCols = 8
	if cols <= minTileCols || rows <= 0 {
		return cols
	}
	w := int(tileBudget.Load() / (int64(rows) * elemSize))
	if w >= cols {
		return cols
	}
	if w <= minTileCols {
		return minTileCols
	}
	return w &^ 7
}
