package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMM is the reference O(n³) product used to validate all fast paths.
func naiveMM(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for t := 0; t < a.Cols; t++ {
				s += a.At(i, t) * b.At(t, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMMAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range [][3]int{{1, 1, 1}, {2, 3, 4}, {16, 16, 16}, {65, 33, 17}, {300, 5, 300}} {
		a, b := randMat(d[0], d[1], rng), randMat(d[1], d[2], rng)
		if got, want := MM(a, b), naiveMM(a, b); !got.ApproxEqual(want, 1e-10) {
			t.Fatalf("MM %v mismatch: %g", d, got.MaxAbsDiff(want))
		}
	}
}

func TestMMTAndTMMAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, d := range [][3]int{{2, 3, 4}, {33, 7, 12}, {100, 16, 100}} {
		a := randMat(d[0], d[1], rng)
		b := randMat(d[2], d[1], rng) // for MMT: a·bᵀ
		if got, want := MMT(a, b), naiveMM(a, b.T()); !got.ApproxEqual(want, 1e-10) {
			t.Fatalf("MMT mismatch: %g", got.MaxAbsDiff(want))
		}
		c := randMat(d[0], d[2], rng) // for TMM: aᵀ·c
		if got, want := TMM(a, c), naiveMM(a.T(), c); !got.ApproxEqual(want, 1e-9) {
			t.Fatalf("TMM mismatch: %g", got.MaxAbsDiff(want))
		}
	}
}

func TestMMIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(20, 20, rng)
	id := NewDense(20, 20)
	for i := 0; i < 20; i++ {
		id.Set(i, i, 1)
	}
	if !MM(a, id).ApproxEqual(a, 0) || !MM(id, a).ApproxEqual(a, 0) {
		t.Fatal("A·I != A or I·A != A")
	}
}

func TestMMAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		k := 2 + r.Intn(12)
		m := 2 + r.Intn(12)
		q := 2 + r.Intn(12)
		a, b, c := randMat(n, k, r), randMat(k, m, r), randMat(m, q, r)
		left := MM(MM(a, b), c)
		right := MM(a, MM(b, c))
		return left.ApproxEqual(right, 1e-8)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMMTransposeProperty(t *testing.T) {
	// (A·B)ᵀ == Bᵀ·Aᵀ
	rng := rand.New(rand.NewSource(7))
	a, b := randMat(13, 9, rng), randMat(9, 21, rng)
	if !MM(a, b).T().ApproxEqual(MM(b.T(), a.T()), 1e-10) {
		t.Fatal("(AB)ᵀ != BᵀAᵀ")
	}
}

func TestMMShapePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MM":  func() { MM(NewDense(2, 3), NewDense(4, 2)) },
		"MMT": func() { MMT(NewDense(2, 3), NewDense(4, 2)) },
		"TMM": func() { TMM(NewDense(2, 3), NewDense(4, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMatVecVecMat(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	got := MatVec(a, x)
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MatVec = %v", got)
	}
	y := []float64{1, 2}
	got = VecMat(y, a)
	if got[0] != 9 || got[1] != 12 || got[2] != 15 {
		t.Fatalf("VecMat = %v", got)
	}
}

func TestOuterAndAddOuter(t *testing.T) {
	x, y := []float64{1, 2}, []float64{3, 4, 5}
	o := Outer(x, y)
	want := NewDenseFrom(2, 3, []float64{3, 4, 5, 6, 8, 10})
	if !o.ApproxEqual(want, 0) {
		t.Fatalf("Outer = %v", o)
	}
	m := NewDense(2, 3)
	AddOuterInPlace(m, 2, x, y)
	if !m.ApproxEqual(want.Scale(2), 0) {
		t.Fatalf("AddOuterInPlace = %v", m)
	}
}

func TestMatVecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatVec(NewDense(2, 3), []float64{1})
}
