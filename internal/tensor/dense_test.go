package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randMat(r, c int, rng *rand.Rand) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape %d×%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("NewDense not zeroed")
		}
	}
}

func TestNewDensePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseFromPanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDenseFrom(2, 2, []float64{1, 2, 3})
}

func TestAtSetRow(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("At/Set roundtrip failed")
	}
	row := m.Row(1)
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must alias storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {64, 64}, {65, 130}, {200, 7}} {
		m := randMat(dims[0], dims[1], rng)
		mt := m.T()
		if mt.Rows != m.Cols || mt.Cols != m.Rows {
			t.Fatalf("transpose shape %d×%d", mt.Rows, mt.Cols)
		}
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if mt.At(j, i) != m.At(i, j) {
					t.Fatalf("T mismatch at (%d,%d)", i, j)
				}
			}
		}
		// Involution.
		if !mt.T().ApproxEqual(m, 0) {
			t.Fatal("(Xᵀ)ᵀ != X")
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFrom(2, 2, []float64{10, 20, 30, 40})

	if got := a.Add(b); !got.ApproxEqual(NewDenseFrom(2, 2, []float64{11, 22, 33, 44}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); !got.ApproxEqual(NewDenseFrom(2, 2, []float64{9, 18, 27, 36}), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Hadamard(b); !got.ApproxEqual(NewDenseFrom(2, 2, []float64{10, 40, 90, 160}), 0) {
		t.Fatalf("Hadamard = %v", got)
	}
	if got := a.Scale(2); !got.ApproxEqual(NewDenseFrom(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatalf("Scale = %v", got)
	}
	c := a.Clone()
	c.AxpyInPlace(0.5, b)
	if !c.ApproxEqual(NewDenseFrom(2, 2, []float64{6, 12, 18, 24}), 1e-15) {
		t.Fatalf("Axpy = %v", c)
	}
	d := a.Apply(func(v float64) float64 { return v * v })
	if !d.ApproxEqual(NewDenseFrom(2, 2, []float64{1, 4, 9, 16}), 0) {
		t.Fatalf("Apply = %v", d)
	}
}

func TestInPlaceVariantsMatchPure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randMat(17, 9, rng), randMat(17, 9, rng)

	x := a.Clone()
	x.AddInPlace(b)
	if !x.ApproxEqual(a.Add(b), 0) {
		t.Fatal("AddInPlace != Add")
	}
	x = a.Clone()
	x.HadamardInPlace(b)
	if !x.ApproxEqual(a.Hadamard(b), 0) {
		t.Fatal("HadamardInPlace != Hadamard")
	}
	x = a.Clone()
	x.ScaleInPlace(3)
	if !x.ApproxEqual(a.Scale(3), 0) {
		t.Fatal("ScaleInPlace != Scale")
	}
	x = a.Clone()
	x.ApplyInPlace(math.Abs)
	if !x.ApproxEqual(a.Apply(math.Abs), 0) {
		t.Fatal("ApplyInPlace != Apply")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := NewDense(2, 2), NewDense(2, 3)
	for name, f := range map[string]func(){
		"Add":      func() { a.Add(b) },
		"Hadamard": func() { a.Hadamard(b) },
		"CopyFrom": func() { a.CopyFrom(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic on shape mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestSliceRows(t *testing.T) {
	m := NewDenseFrom(4, 2, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	s := m.SliceRows(1, 3)
	if s.Rows != 2 || s.At(0, 0) != 3 || s.At(1, 1) != 6 {
		t.Fatalf("SliceRows bad content %v", s)
	}
	s.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Fatal("SliceRows must alias parent")
	}
}

func TestFrobeniusNormAndMaxAbsDiff(t *testing.T) {
	m := NewDenseFrom(1, 2, []float64{3, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("FrobeniusNorm = %v", got)
	}
	b := NewDenseFrom(1, 2, []float64{3, 7})
	if got := m.MaxAbsDiff(b); got != 3 {
		t.Fatalf("MaxAbsDiff = %v", got)
	}
	if m.ApproxEqual(NewDense(2, 1), 1) {
		t.Fatal("ApproxEqual must be false for different shapes")
	}
}

func TestZeroAndFill(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	m.Fill(7)
	for _, v := range m.Data {
		if v != 7 {
			t.Fatal("Fill failed")
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}
