package tensor

import "testing"

func TestArenaRecyclesByShape(t *testing.T) {
	a := NewArena()
	m := a.AcquireDense(4, 3)
	m.Fill(7)
	a.ReleaseDense(m)
	m2 := a.AcquireDense(4, 3)
	if m2 != m {
		t.Fatal("same-shape acquire did not recycle the released buffer")
	}
	for _, v := range m2.Data {
		if v != 0 {
			t.Fatal("recycled buffer not zeroed")
		}
	}
	if m3 := a.AcquireDense(3, 4); m3 == m {
		t.Fatal("different shape must not recycle")
	}
	if a.Bytes() != (4*3+3*4)*8 {
		t.Fatalf("Bytes = %d", a.Bytes())
	}
}

func TestArenaFloats(t *testing.T) {
	a := NewArena()
	s := a.AcquireFloats(10)
	s[0] = 1
	a.ReleaseFloats(s)
	s2 := a.AcquireFloats(10)
	if &s2[0] != &s[0] {
		t.Fatal("floats not recycled")
	}
	if s2[0] != 0 {
		t.Fatal("recycled floats not zeroed")
	}
	if a.Live() != 1 {
		t.Fatalf("Live = %d", a.Live())
	}
}

func TestArenaSteadyStateDoesNotAllocate(t *testing.T) {
	a := NewArena()
	a.ReleaseDense(a.AcquireDense(8, 8))
	allocs := testing.AllocsPerRun(100, func() {
		m := a.AcquireDense(8, 8)
		a.ReleaseDense(m)
	})
	if allocs > 0 {
		t.Fatalf("steady-state acquire/release allocated %v times", allocs)
	}
}
