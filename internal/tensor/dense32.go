package tensor

import "fmt"

// Dense32 is the float32 twin of Dense: a dense row-major single-precision
// matrix. It is deliberately minimal — the float32 path exists only inside
// compiled plans (internal/fuse), which cast at the plan boundary and run
// dedicated f32 kernels in between; the public model API stays Dense.
type Dense32 struct {
	Rows, Cols int
	Data       []float32
}

// NewDense32 returns a zeroed r×c single-precision matrix.
func NewDense32(r, c int) *Dense32 {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %d×%d", r, c))
	}
	return &Dense32{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero sets all elements to 0 in place and returns the receiver.
func (m *Dense32) Zero() *Dense32 {
	clear(m.Data)
	return m
}

// SliceRows returns the sub-matrix of rows [lo, hi) sharing storage with m.
func (m *Dense32) SliceRows(lo, hi int) *Dense32 {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of %d rows", lo, hi, m.Rows))
	}
	return &Dense32{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// CopyFromDense rounds the float64 matrix src into the receiver. This is
// the plan-boundary downcast (inputs and parameter shadows).
func (m *Dense32) CopyFromDense(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFromDense shape mismatch %d×%d vs %d×%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		m.Data[i] = float32(v)
	}
}

// CopyToDense widens the receiver into the float64 matrix dst. This is the
// plan-boundary upcast (outputs and input cotangents).
func (m *Dense32) CopyToDense(dst *Dense) {
	if m.Rows != dst.Rows || m.Cols != dst.Cols {
		panic(fmt.Sprintf("tensor: CopyToDense shape mismatch %d×%d vs %d×%d", m.Rows, m.Cols, dst.Rows, dst.Cols))
	}
	for i, v := range m.Data {
		dst.Data[i] = float64(v)
	}
}

// Floats32To64 widens src into dst (equal lengths).
func Floats32To64(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Floats32To64 length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// Floats64To32 rounds src into dst (equal lengths).
func Floats64To32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Floats64To32 length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}
