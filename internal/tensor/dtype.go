package tensor

import "fmt"

// DType selects the element width of a compiled numeric path. The public
// tensor API stays float64 (Dense); F32 switches the compiled-plan
// internals (internal/fuse) to float32 buffers and kernels, halving memory
// traffic on every bandwidth-bound op. The zero value is F64, so every
// existing call site keeps its bitwise-identical float64 behavior.
type DType uint8

const (
	// F64 is the default double-precision path.
	F64 DType = iota
	// F32 is the single-precision path used by f32-compiled plans.
	F32
)

// Size returns the element width in bytes (8 for F64, 4 for F32), the
// factor the roofline byte accounting and the α-β wire model scale by.
func (d DType) Size() int64 {
	if d == F32 {
		return 4
	}
	return 8
}

// String returns the CLI spelling ("f64" / "f32").
func (d DType) String() string {
	if d == F32 {
		return "f32"
	}
	return "f64"
}

// ParseDType parses the CLI spelling accepted by the -dtype flag.
func ParseDType(s string) (DType, error) {
	switch s {
	case "f64", "float64", "fp64", "":
		return F64, nil
	case "f32", "float32", "fp32":
		return F32, nil
	}
	return F64, fmt.Errorf("tensor: unknown dtype %q (want f32 or f64)", s)
}
