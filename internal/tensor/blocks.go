package tensor

import (
	"math"
	"math/rand"

	"agnn/internal/par"
)

// This file implements the tensor-algebra building blocks of Table 2 in the
// paper: replication (rep), row summation (sum), their composition (rs),
// ones vectors, and the row-norm vector n used by AGNN. Expressing these as
// first-class kernels is what lets every A-GNN be written purely in tensor
// algebra.

// Ones returns a vector of n ones (the blue 1 vectors of Table 1).
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Rep replicates the column vector x i times: rep_i(x) = x·1ᵀ ∈ R^{len(x)×i}.
func Rep(x []float64, i int) *Dense {
	return Outer(x, Ones(i))
}

// RepT replicates the row vector x i times: rep_iᵀ(x) = 1·xᵀ ∈ R^{i×len(x)}.
func RepT(x []float64, i int) *Dense {
	return Outer(Ones(i), x)
}

// Sum computes sum(X) = X·1, the vector of row sums.
func Sum(m *Dense) []float64 {
	out := make([]float64, m.Rows)
	par.Range(m.Rows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			s := 0.0
			for _, v := range row {
				s += v
			}
			out[i] = s
		}
	})
	return out
}

// SumT computes sumᵀ(X) = 1ᵀ·X, the vector of column sums.
func SumT(m *Dense) []float64 {
	w := par.Workers()
	partials := make([][]float64, w)
	par.Range(m.Rows, func(worker, lo, hi int) {
		acc := partials[worker]
		if acc == nil {
			acc = make([]float64, m.Cols)
			partials[worker] = acc
		}
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j, v := range row {
				acc[j] += v
			}
		}
	})
	out := make([]float64, m.Cols)
	for _, p := range partials {
		if p == nil {
			continue
		}
		for j, v := range p {
			out[j] += v
		}
	}
	return out
}

// RS computes rs_i(X) = rep_i(sum(X)), equivalent to multiplying X by an
// all-ones matrix. Note that in the actual GNN implementations this matrix
// is never materialized (cf. the softmax in sparse.RowSoftmax); RS exists to
// make the algebraic formulation executable and testable.
func RS(m *Dense, i int) *Dense {
	return Rep(Sum(m), i)
}

// RowNorms returns the vector n with n_i = ‖X[i,:]‖₂ (AGNN's normalizer).
func RowNorms(m *Dense) []float64 {
	out := make([]float64, m.Rows)
	par.Range(m.Rows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			s := 0.0
			for _, v := range row {
				s += v * v
			}
			out[i] = math.Sqrt(s)
		}
	})
	return out
}

// Dot returns the dot product of two equal-length vectors.
func Dot(x, y []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// RandN fills a new r×c matrix with i.i.d. N(0, std²) entries drawn from a
// deterministic source. Every weight initialization in the repository goes
// through this so experiments are reproducible for a fixed seed.
func RandN(r, c int, std float64, rng *rand.Rand) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// RandUniform fills a new r×c matrix with i.i.d. U[lo, hi) entries.
func RandUniform(r, c int, lo, hi float64, rng *rand.Rand) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return m
}

// GlorotInit returns the Xavier/Glorot initialization used for GNN weight
// matrices: U(-s, s) with s = sqrt(6/(fanIn+fanOut)).
func GlorotInit(fanIn, fanOut int, rng *rand.Rand) *Dense {
	s := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(fanIn, fanOut, -s, s, rng)
}
