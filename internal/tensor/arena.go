package tensor

import "fmt"

// Arena is a shape-keyed buffer pool: the workspace substrate of the
// compiled execution plans (internal/fuse). A plan acquires every
// intermediate it needs once, at compile time, and reuses the buffers on
// every subsequent step, so steady-state training does no per-step
// allocations on the hot path. Buffers released back to the arena are
// recycled for later acquisitions of the same shape, which lets
// non-overlapping intermediates share storage.
//
// An Arena is not safe for concurrent use; plans acquire at compile time
// and execute single-threaded op lists (the kernels themselves parallelize
// internally).
type Arena struct {
	freeDense  map[[2]int][]*Dense
	freeFloats map[int][][]float64

	denseOut  int // dense buffers handed out and not released
	floatsOut int
	words     int64 // total float64 words ever allocated by this arena
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{
		freeDense:  make(map[[2]int][]*Dense),
		freeFloats: make(map[int][][]float64),
	}
}

// AcquireDense returns a zeroed r×c matrix, recycling a released buffer of
// the same shape when one is available.
func (a *Arena) AcquireDense(r, c int) *Dense {
	a.denseOut++
	key := [2]int{r, c}
	if l := a.freeDense[key]; len(l) > 0 {
		m := l[len(l)-1]
		a.freeDense[key] = l[:len(l)-1]
		return m.Zero()
	}
	a.words += int64(r) * int64(c)
	return NewDense(r, c)
}

// ReleaseDense returns m to the shape-keyed free list for reuse.
func (a *Arena) ReleaseDense(m *Dense) {
	if m == nil {
		return
	}
	a.denseOut--
	key := [2]int{m.Rows, m.Cols}
	a.freeDense[key] = append(a.freeDense[key], m)
}

// AcquireFloats returns a zeroed length-n slice, recycling when possible.
func (a *Arena) AcquireFloats(n int) []float64 {
	a.floatsOut++
	if l := a.freeFloats[n]; len(l) > 0 {
		s := l[len(l)-1]
		a.freeFloats[n] = l[:len(l)-1]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	a.words += int64(n)
	return make([]float64, n)
}

// ReleaseFloats returns s to the free list for reuse.
func (a *Arena) ReleaseFloats(s []float64) {
	if s == nil {
		return
	}
	a.floatsOut--
	a.freeFloats[len(s)] = append(a.freeFloats[len(s)], s)
}

// Bytes returns the total workspace footprint allocated through the arena.
func (a *Arena) Bytes() int64 { return a.words * 8 }

// Live returns the number of buffers currently held by acquirers.
func (a *Arena) Live() int { return a.denseOut + a.floatsOut }

// String summarizes the arena for workspace reports.
func (a *Arena) String() string {
	return fmt.Sprintf("arena{%d live buffers, %d KiB}", a.Live(), a.Bytes()/1024)
}
