package tensor

import (
	"fmt"

	"agnn/internal/obs"
	"agnn/internal/obs/metrics"
)

// Arena is a shape-keyed buffer pool: the workspace substrate of the
// compiled execution plans (internal/fuse). A plan acquires every
// intermediate it needs once, at compile time, and reuses the buffers on
// every subsequent step, so steady-state training does no per-step
// allocations on the hot path. Buffers released back to the arena are
// recycled for later acquisitions of the same shape, which lets
// non-overlapping intermediates share storage.
//
// An Arena is not safe for concurrent use; plans acquire at compile time
// and execute single-threaded op lists (the kernels themselves parallelize
// internally).
type Arena struct {
	freeDense  map[[2]int][]*Dense
	freeFloats map[int][][]float64

	denseOut  int // dense buffers handed out and not released
	floatsOut int
	words     int64 // total float64 words ever allocated by this arena
	liveWords int64 // words currently held by acquirers
}

// trackLive mirrors this arena's held-buffer delta into the process-wide
// workspace gauges (live and peak bytes) and, when tracing is on, the
// "arena bytes" counter timeline of the Chrome trace.
func (a *Arena) trackLive(deltaWords int64) {
	a.liveWords += deltaWords
	metrics.ArenaLiveBytes.Add(float64(8 * deltaWords))
	live := metrics.ArenaLiveBytes.Value()
	metrics.ArenaPeakBytes.SetMax(live)
	obs.Sample("arena bytes", int64(live))
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{
		freeDense:  make(map[[2]int][]*Dense),
		freeFloats: make(map[int][][]float64),
	}
}

// AcquireDense returns a zeroed r×c matrix, recycling a released buffer of
// the same shape when one is available.
func (a *Arena) AcquireDense(r, c int) *Dense {
	a.denseOut++
	a.trackLive(int64(r) * int64(c))
	key := [2]int{r, c}
	if l := a.freeDense[key]; len(l) > 0 {
		m := l[len(l)-1]
		a.freeDense[key] = l[:len(l)-1]
		return m.Zero()
	}
	a.words += int64(r) * int64(c)
	return NewDense(r, c)
}

// ReleaseDense returns m to the shape-keyed free list for reuse.
func (a *Arena) ReleaseDense(m *Dense) {
	if m == nil {
		return
	}
	a.denseOut--
	a.trackLive(-int64(m.Rows) * int64(m.Cols))
	key := [2]int{m.Rows, m.Cols}
	a.freeDense[key] = append(a.freeDense[key], m)
}

// AcquireFloats returns a zeroed length-n slice, recycling when possible.
func (a *Arena) AcquireFloats(n int) []float64 {
	a.floatsOut++
	a.trackLive(int64(n))
	if l := a.freeFloats[n]; len(l) > 0 {
		s := l[len(l)-1]
		a.freeFloats[n] = l[:len(l)-1]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	a.words += int64(n)
	return make([]float64, n)
}

// ReleaseFloats returns s to the free list for reuse.
func (a *Arena) ReleaseFloats(s []float64) {
	if s == nil {
		return
	}
	a.floatsOut--
	a.trackLive(-int64(len(s)))
	a.freeFloats[len(s)] = append(a.freeFloats[len(s)], s)
}

// Bytes returns the total workspace footprint allocated through the arena.
func (a *Arena) Bytes() int64 { return a.words * 8 }

// LiveBytes returns the bytes currently held by acquirers of this arena.
func (a *Arena) LiveBytes() int64 { return a.liveWords * 8 }

// Live returns the number of buffers currently held by acquirers.
func (a *Arena) Live() int { return a.denseOut + a.floatsOut }

// String summarizes the arena for workspace reports.
func (a *Arena) String() string {
	return fmt.Sprintf("arena{%d live buffers, %d KiB}", a.Live(), a.Bytes()/1024)
}
