package tensor

import (
	"fmt"

	"agnn/internal/obs"
	"agnn/internal/obs/metrics"
)

// Arena is a shape-keyed buffer pool: the workspace substrate of the
// compiled execution plans (internal/fuse). A plan acquires every
// intermediate it needs once, at compile time, and reuses the buffers on
// every subsequent step, so steady-state training does no per-step
// allocations on the hot path. Buffers released back to the arena are
// recycled for later acquisitions of the same shape, which lets
// non-overlapping intermediates share storage. Float32 buffers (f32
// compiled plans) live in their own pools and are tracked at their true
// 4-byte element width.
//
// An Arena is not safe for concurrent use; plans acquire at compile time
// and execute single-threaded op lists (the kernels themselves parallelize
// internally).
type Arena struct {
	freeDense    map[[2]int][]*Dense
	freeFloats   map[int][][]float64
	freeDense32  map[[2]int][]*Dense32
	freeFloats32 map[int][][]float32

	denseOut  int // buffers handed out and not released (all pools)
	floatsOut int
	bytes     int64 // total bytes ever allocated by this arena
	liveBytes int64 // bytes currently held by acquirers
}

// trackLive mirrors this arena's held-buffer delta into the process-wide
// workspace gauges (live and peak bytes) and, when tracing is on, the
// "arena bytes" counter timeline of the Chrome trace.
func (a *Arena) trackLive(deltaBytes int64) {
	a.liveBytes += deltaBytes
	metrics.ArenaLiveBytes.Add(float64(deltaBytes))
	live := metrics.ArenaLiveBytes.Value()
	metrics.ArenaPeakBytes.SetMax(live)
	obs.Sample("arena bytes", int64(live))
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{
		freeDense:    make(map[[2]int][]*Dense),
		freeFloats:   make(map[int][][]float64),
		freeDense32:  make(map[[2]int][]*Dense32),
		freeFloats32: make(map[int][][]float32),
	}
}

// AcquireDense returns a zeroed r×c matrix, recycling a released buffer of
// the same shape when one is available.
func (a *Arena) AcquireDense(r, c int) *Dense {
	a.denseOut++
	a.trackLive(8 * int64(r) * int64(c))
	key := [2]int{r, c}
	if l := a.freeDense[key]; len(l) > 0 {
		m := l[len(l)-1]
		a.freeDense[key] = l[:len(l)-1]
		return m.Zero()
	}
	a.bytes += 8 * int64(r) * int64(c)
	return NewDense(r, c)
}

// ReleaseDense returns m to the shape-keyed free list for reuse.
func (a *Arena) ReleaseDense(m *Dense) {
	if m == nil {
		return
	}
	a.denseOut--
	a.trackLive(-8 * int64(m.Rows) * int64(m.Cols))
	key := [2]int{m.Rows, m.Cols}
	a.freeDense[key] = append(a.freeDense[key], m)
}

// AcquireFloats returns a zeroed length-n slice, recycling when possible.
func (a *Arena) AcquireFloats(n int) []float64 {
	a.floatsOut++
	a.trackLive(8 * int64(n))
	if l := a.freeFloats[n]; len(l) > 0 {
		s := l[len(l)-1]
		a.freeFloats[n] = l[:len(l)-1]
		clear(s)
		return s
	}
	a.bytes += 8 * int64(n)
	return make([]float64, n)
}

// ReleaseFloats returns s to the free list for reuse.
func (a *Arena) ReleaseFloats(s []float64) {
	if s == nil {
		return
	}
	a.floatsOut--
	a.trackLive(-8 * int64(len(s)))
	a.freeFloats[len(s)] = append(a.freeFloats[len(s)], s)
}

// AcquireDense32 returns a zeroed r×c float32 matrix, recycling when
// possible. f32 workspace is tracked at 4 bytes per element, so the arena
// gauges and PeakArenaBytes reflect the halved footprint of f32 plans.
func (a *Arena) AcquireDense32(r, c int) *Dense32 {
	a.denseOut++
	a.trackLive(4 * int64(r) * int64(c))
	key := [2]int{r, c}
	if l := a.freeDense32[key]; len(l) > 0 {
		m := l[len(l)-1]
		a.freeDense32[key] = l[:len(l)-1]
		return m.Zero()
	}
	a.bytes += 4 * int64(r) * int64(c)
	return NewDense32(r, c)
}

// ReleaseDense32 returns m to the shape-keyed free list for reuse.
func (a *Arena) ReleaseDense32(m *Dense32) {
	if m == nil {
		return
	}
	a.denseOut--
	a.trackLive(-4 * int64(m.Rows) * int64(m.Cols))
	key := [2]int{m.Rows, m.Cols}
	a.freeDense32[key] = append(a.freeDense32[key], m)
}

// AcquireFloats32 returns a zeroed length-n float32 slice, recycling when
// possible.
func (a *Arena) AcquireFloats32(n int) []float32 {
	a.floatsOut++
	a.trackLive(4 * int64(n))
	if l := a.freeFloats32[n]; len(l) > 0 {
		s := l[len(l)-1]
		a.freeFloats32[n] = l[:len(l)-1]
		clear(s)
		return s
	}
	a.bytes += 4 * int64(n)
	return make([]float32, n)
}

// ReleaseFloats32 returns s to the free list for reuse.
func (a *Arena) ReleaseFloats32(s []float32) {
	if s == nil {
		return
	}
	a.floatsOut--
	a.trackLive(-4 * int64(len(s)))
	a.freeFloats32[len(s)] = append(a.freeFloats32[len(s)], s)
}

// Bytes returns the total workspace footprint allocated through the arena.
func (a *Arena) Bytes() int64 { return a.bytes }

// LiveBytes returns the bytes currently held by acquirers of this arena.
func (a *Arena) LiveBytes() int64 { return a.liveBytes }

// Live returns the number of buffers currently held by acquirers.
func (a *Arena) Live() int { return a.denseOut + a.floatsOut }

// String summarizes the arena for workspace reports.
func (a *Arena) String() string {
	return fmt.Sprintf("arena{%d live buffers, %d KiB}", a.Live(), a.Bytes()/1024)
}
