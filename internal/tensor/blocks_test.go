package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestOnes(t *testing.T) {
	v := Ones(5)
	for _, x := range v {
		if x != 1 {
			t.Fatal("Ones not all ones")
		}
	}
}

func TestRepMatchesDefinition(t *testing.T) {
	// rep_i(x) = x·1ᵀ
	x := []float64{1, 2, 3}
	r := Rep(x, 4)
	if r.Rows != 3 || r.Cols != 4 {
		t.Fatalf("Rep shape %d×%d", r.Rows, r.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if r.At(i, j) != x[i] {
				t.Fatalf("Rep(%d,%d) = %v", i, j, r.At(i, j))
			}
		}
	}
	// Transposition identity from Table 2: (rep_i(x))ᵀ == rep_iᵀ(x).
	if !r.T().ApproxEqual(RepT(x, 4), 0) {
		t.Fatal("(rep(x))ᵀ != repᵀ(x)")
	}
}

func TestSumMatchesMatVecWithOnes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randMat(30, 7, rng)
	got := Sum(m)
	want := MatVec(m, Ones(7))
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Sum[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestSumTMatchesVecMatWithOnes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randMat(500, 9, rng) // large enough to exercise parallel partials
	got := SumT(m)
	want := VecMat(Ones(500), m)
	for j := range got {
		if math.Abs(got[j]-want[j]) > 1e-9 {
			t.Fatalf("SumT[%d] = %v want %v", j, got[j], want[j])
		}
	}
}

func TestRSEqualsOnesMatrixProduct(t *testing.T) {
	// rs_i(X) is equivalent to multiplication by a matrix of ones (Table 2).
	rng := rand.New(rand.NewSource(10))
	m := randMat(6, 5, rng)
	onesMat := NewDense(5, 4).Fill(1)
	if !RS(m, 4).ApproxEqual(MM(m, onesMat), 1e-12) {
		t.Fatal("rs_i(X) != X·1(matrix)")
	}
}

func TestRowNorms(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{3, 4, 0, 0})
	n := RowNorms(m)
	if n[0] != 5 || n[1] != 0 {
		t.Fatalf("RowNorms = %v", n)
	}
}

func TestDotAxpy(t *testing.T) {
	x, y := []float64{1, 2, 3}, []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("Axpy = %v", y)
	}
}

func TestRandDeterminism(t *testing.T) {
	a := RandN(4, 4, 1, rand.New(rand.NewSource(42)))
	b := RandN(4, 4, 1, rand.New(rand.NewSource(42)))
	if !a.ApproxEqual(b, 0) {
		t.Fatal("RandN not deterministic for fixed seed")
	}
	c := RandUniform(4, 4, -1, 1, rand.New(rand.NewSource(42)))
	for _, v := range c.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("RandUniform out of range: %v", v)
		}
	}
}

func TestGlorotInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := GlorotInit(16, 32, rng)
	bound := math.Sqrt(6.0 / 48.0)
	for _, v := range w.Data {
		if v < -bound || v > bound {
			t.Fatalf("Glorot value %v outside ±%v", v, bound)
		}
	}
	if w.Rows != 16 || w.Cols != 32 {
		t.Fatalf("Glorot shape %d×%d", w.Rows, w.Cols)
	}
}
