package tensor

import (
	"math/rand"
	"testing"
)

func TestDTypeSizeAndString(t *testing.T) {
	if F64.Size() != 8 || F32.Size() != 4 {
		t.Fatalf("sizes: f64=%d f32=%d", F64.Size(), F32.Size())
	}
	if F64.String() != "f64" || F32.String() != "f32" {
		t.Fatalf("strings: %q %q", F64, F32)
	}
	var zero DType
	if zero != F64 {
		t.Fatal("zero value must be F64 so dtype-unaware callers stay on the f64 path")
	}
}

func TestParseDType(t *testing.T) {
	for _, s := range []string{"f64", "float64", "fp64", ""} {
		if dt, err := ParseDType(s); err != nil || dt != F64 {
			t.Errorf("ParseDType(%q) = %v, %v", s, dt, err)
		}
	}
	for _, s := range []string{"f32", "float32", "fp32"} {
		if dt, err := ParseDType(s); err != nil || dt != F32 {
			t.Errorf("ParseDType(%q) = %v, %v", s, dt, err)
		}
	}
	if _, err := ParseDType("f16"); err == nil {
		t.Error("ParseDType(f16) should fail")
	}
}

func TestSetTileBudget(t *testing.T) {
	defer SetTileBudget(0)
	SetTileBudget(1 << 20)
	if got := TileBudget(); got != 1<<20 {
		t.Fatalf("TileBudget = %d after SetTileBudget(1MiB)", got)
	}
	// Non-positive restores the default.
	SetTileBudget(-1)
	if got := TileBudget(); got != 256<<10 {
		t.Fatalf("TileBudget = %d after SetTileBudget(-1), want default", got)
	}
}

func TestTileCols(t *testing.T) {
	defer SetTileBudget(0)

	// Small column counts are never split.
	if got := TileCols(1000000, 8, 8); got != 8 {
		t.Errorf("cols=8: tile %d, want 8", got)
	}
	// When the whole operand fits in the budget the kernel degenerates to
	// its untiled single-pass form.
	SetTileBudget(1 << 20)
	if got := TileCols(64, 100, 8); got != 100 {
		t.Errorf("operand fits: tile %d, want 100", got)
	}
	// Otherwise the tile is sized to the budget, rounded down to a multiple
	// of 8 and clamped below by the minimum.
	SetTileBudget(64 << 10)
	rows := 1024
	got := TileCols(rows, 256, 8)
	if got%8 != 0 || got < 8 || got > 256 {
		t.Fatalf("tile %d not a multiple of 8 within [8,256]", got)
	}
	if int64(rows)*int64(got)*8 > 64<<10 {
		t.Fatalf("tile %d overruns the 64KiB budget (%d bytes)", got, rows*got*8)
	}
	// Tiny budgets clamp to the minimum rather than degenerating to 0.
	SetTileBudget(1)
	if got := TileCols(1024, 256, 8); got != 8 {
		t.Errorf("tiny budget: tile %d, want 8", got)
	}
}

// TestMMIntoTiledBitwiseIdentical pins down the tiling contract documented
// in tile.go: splitting output columns must not change a single bit,
// because every output element still accumulates its contributions in the
// original order.
func TestMMIntoTiledBitwiseIdentical(t *testing.T) {
	defer SetTileBudget(0)
	rng := rand.New(rand.NewSource(41))
	a := RandN(37, 96, 1, rng)
	b := RandN(96, 120, 1, rng)

	SetTileBudget(0) // default: 96×120 f64 fits, single pass
	want := MM(a, b)
	SetTileBudget(1) // clamp to the minimum tile: 15 passes over B
	got := MM(a, b)

	if got.MaxAbsDiff(want) != 0 {
		t.Fatalf("tiled MM deviates from untiled by %g, want bitwise identity", got.MaxAbsDiff(want))
	}
}

func TestDense32RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := RandN(7, 5, 1, rng)
	m := NewDense32(7, 5)
	m.CopyFromDense(src)
	back := NewDense(7, 5)
	m.CopyToDense(back)
	for i, v := range src.Data {
		if back.Data[i] != float64(float32(v)) {
			t.Fatalf("elem %d: %v round-tripped to %v", i, v, back.Data[i])
		}
	}

	// The slice helpers are the same cast on raw slices.
	xs32 := make([]float32, len(src.Data))
	Floats64To32(xs32, src.Data)
	xs64 := make([]float64, len(src.Data))
	Floats32To64(xs64, xs32)
	for i := range xs64 {
		if xs64[i] != float64(float32(src.Data[i])) {
			t.Fatalf("slice elem %d: %v -> %v", i, src.Data[i], xs64[i])
		}
	}
}

func TestDense32ShapeMismatchPanics(t *testing.T) {
	m := NewDense32(2, 3)
	d := NewDense(3, 2)
	for name, f := range map[string]func(){
		"CopyFromDense": func() { m.CopyFromDense(d) },
		"CopyToDense":   func() { m.CopyToDense(d) },
		"Floats64To32":  func() { Floats64To32(make([]float32, 2), make([]float64, 3)) },
		"Floats32To64":  func() { Floats32To64(make([]float64, 2), make([]float32, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: shape mismatch must panic", name)
				}
			}()
			f()
		}()
	}
}
