// Package tensor implements the dense-tensor substrate of the global GNN
// formulations: row-major float64 matrices, parallel matrix products, and
// the algebraic building blocks of Table 2 in the paper (replication rep,
// row summation sum, their composition rs, Hadamard products, and row
// norms). The paper's implementation delegates these to NumPy/CuPy; here
// they are written from scratch on goroutine-parallel blocked loops.
package tensor

import (
	"fmt"
	"math"

	"agnn/internal/par"
)

// Dense is a dense row-major matrix. A feature matrix H ∈ R^{n×k} stores the
// feature vector of vertex i contiguously in Data[i*Cols : (i+1)*Cols],
// matching the paper's convention of row feature vectors.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %d×%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewDenseFrom wraps data as an r×c matrix without copying.
// len(data) must equal r*c.
func NewDenseFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: data length %d != %d×%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// At returns the (i, j) element.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the (i, j) element.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets all elements to 0 in place and returns the receiver.
func (m *Dense) Zero() *Dense {
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// Fill sets all elements to v in place and returns the receiver.
func (m *Dense) Fill(v float64) *Dense {
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// CopyFrom copies src into the receiver; shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

// T returns a newly allocated transpose.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	// Blocked transpose for cache friendliness.
	const bs = 64
	par.Range((m.Rows+bs-1)/bs, func(_, blo, bhi int) {
		for bi := blo; bi < bhi; bi++ {
			i0, i1 := bi*bs, (bi+1)*bs
			if i1 > m.Rows {
				i1 = m.Rows
			}
			for j0 := 0; j0 < m.Cols; j0 += bs {
				j1 := j0 + bs
				if j1 > m.Cols {
					j1 = m.Cols
				}
				for i := i0; i < i1; i++ {
					row := m.Data[i*m.Cols:]
					for j := j0; j < j1; j++ {
						out.Data[j*m.Rows+i] = row[j]
					}
				}
			}
		}
	})
	return out
}

// Add returns m + b.
func (m *Dense) Add(b *Dense) *Dense {
	m.mustSameShape(b, "Add")
	out := m.Clone()
	out.AddInPlace(b)
	return out
}

// AddInPlace accumulates b into the receiver.
func (m *Dense) AddInPlace(b *Dense) *Dense {
	m.mustSameShape(b, "AddInPlace")
	par.Range(len(m.Data), func(_, lo, hi int) {
		md, bd := m.Data[lo:hi], b.Data[lo:hi]
		for i := range md {
			md[i] += bd[i]
		}
	})
	return m
}

// Sub returns m - b.
func (m *Dense) Sub(b *Dense) *Dense {
	m.mustSameShape(b, "Sub")
	out := NewDense(m.Rows, m.Cols)
	par.Range(len(m.Data), func(_, lo, hi int) {
		od, md, bd := out.Data[lo:hi], m.Data[lo:hi], b.Data[lo:hi]
		for i := range od {
			od[i] = md[i] - bd[i]
		}
	})
	return out
}

// AxpyInPlace computes m += alpha*b.
func (m *Dense) AxpyInPlace(alpha float64, b *Dense) *Dense {
	m.mustSameShape(b, "AxpyInPlace")
	par.Range(len(m.Data), func(_, lo, hi int) {
		md, bd := m.Data[lo:hi], b.Data[lo:hi]
		for i := range md {
			md[i] += alpha * bd[i]
		}
	})
	return m
}

// Scale returns alpha*m.
func (m *Dense) Scale(alpha float64) *Dense {
	out := NewDense(m.Rows, m.Cols)
	par.Range(len(m.Data), func(_, lo, hi int) {
		od, md := out.Data[lo:hi], m.Data[lo:hi]
		for i := range od {
			od[i] = alpha * md[i]
		}
	})
	return out
}

// ScaleInPlace computes m *= alpha.
func (m *Dense) ScaleInPlace(alpha float64) *Dense {
	par.Range(len(m.Data), func(_, lo, hi int) {
		md := m.Data[lo:hi]
		for i := range md {
			md[i] *= alpha
		}
	})
	return m
}

// Hadamard returns the element-wise product m ⊙ b.
func (m *Dense) Hadamard(b *Dense) *Dense {
	m.mustSameShape(b, "Hadamard")
	out := NewDense(m.Rows, m.Cols)
	par.Range(len(m.Data), func(_, lo, hi int) {
		od, md, bd := out.Data[lo:hi], m.Data[lo:hi], b.Data[lo:hi]
		for i := range od {
			od[i] = md[i] * bd[i]
		}
	})
	return out
}

// HadamardInPlace computes m ⊙= b.
func (m *Dense) HadamardInPlace(b *Dense) *Dense {
	m.mustSameShape(b, "HadamardInPlace")
	par.Range(len(m.Data), func(_, lo, hi int) {
		md, bd := m.Data[lo:hi], b.Data[lo:hi]
		for i := range md {
			md[i] *= bd[i]
		}
	})
	return m
}

// Apply returns f applied element-wise.
func (m *Dense) Apply(f func(float64) float64) *Dense {
	out := NewDense(m.Rows, m.Cols)
	par.Range(len(m.Data), func(_, lo, hi int) {
		od, md := out.Data[lo:hi], m.Data[lo:hi]
		for i := range od {
			od[i] = f(md[i])
		}
	})
	return out
}

// ApplyInPlace applies f element-wise in place.
func (m *Dense) ApplyInPlace(f func(float64) float64) *Dense {
	par.Range(len(m.Data), func(_, lo, hi int) {
		md := m.Data[lo:hi]
		for i := range md {
			md[i] = f(md[i])
		}
	})
	return m
}

// MaxAbsDiff returns max |m - b| element-wise; useful in tests.
func (m *Dense) MaxAbsDiff(b *Dense) float64 {
	m.mustSameShape(b, "MaxAbsDiff")
	d := 0.0
	for i := range m.Data {
		v := math.Abs(m.Data[i] - b.Data[i])
		if v > d {
			d = v
		}
	}
	return d
}

// ApproxEqual reports whether every element differs by at most tol.
func (m *Dense) ApproxEqual(b *Dense, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	return m.MaxAbsDiff(b) <= tol
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// SliceRows returns the sub-matrix of rows [lo, hi) sharing storage with m.
func (m *Dense) SliceRows(lo, hi int) *Dense {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of %d rows", lo, hi, m.Rows))
	}
	return &Dense{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// String renders small matrices for debugging.
func (m *Dense) String() string {
	if m.Rows*m.Cols > 400 {
		return fmt.Sprintf("Dense{%d×%d}", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Dense{%d×%d\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		s += fmt.Sprintf("  %v\n", m.Row(i))
	}
	return s + "}"
}

func (m *Dense) mustSameShape(b *Dense, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %d×%d vs %d×%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}
