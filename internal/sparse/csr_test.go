package sparse

import (
	"math"
	"math/rand"
	"testing"

	"agnn/internal/tensor"
)

// randSparse builds a random rows×cols CSR with approximately density·rows·cols
// non-zeros and N(0,1) values.
func randSparse(rows, cols int, density float64, rng *rand.Rand) *CSR {
	c := NewCOO(rows, cols, int(density*float64(rows*cols))+1)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				c.AppendVal(int32(i), int32(j), rng.NormFloat64())
			}
		}
	}
	return FromCOO(c)
}

// randPattern builds a random binary pattern with at least one entry per row.
func randPattern(rows, cols int, density float64, rng *rand.Rand) *CSR {
	c := NewCOO(rows, cols, int(density*float64(rows*cols))+rows)
	for i := 0; i < rows; i++ {
		c.Append(int32(i), int32(rng.Intn(cols)))
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				c.Append(int32(i), int32(j))
			}
		}
	}
	return FromCOO(c)
}

func TestFromCOOSortsAndDedups(t *testing.T) {
	c := NewCOO(3, 3, 4)
	c.AppendVal(2, 1, 5)
	c.AppendVal(0, 2, 1)
	c.AppendVal(2, 1, 3) // duplicate, summed
	c.AppendVal(1, 0, 7)
	s := FromCOO(c)
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", s.NNZ())
	}
	d := s.ToDense()
	want := tensor.NewDenseFrom(3, 3, []float64{0, 0, 1, 7, 0, 0, 0, 8, 0})
	if !d.ApproxEqual(want, 0) {
		t.Fatalf("FromCOO dense = %v", d)
	}
}

func TestFromCOOPatternDedup(t *testing.T) {
	c := NewCOO(2, 2, 4)
	c.Append(0, 1)
	c.Append(0, 1) // duplicate pattern entry collapses to a single 1
	c.Append(1, 0)
	s := FromCOO(c)
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", s.NNZ())
	}
	if s.ToDense().At(0, 1) != 1 {
		t.Fatal("pattern entry should have value 1")
	}
}

func TestFromCOOOutOfRangePanics(t *testing.T) {
	c := NewCOO(2, 2, 1)
	c.Append(0, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromCOO(c)
}

func TestCOOAppendMixingPanics(t *testing.T) {
	c := NewCOO(2, 2, 2)
	c.Append(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AppendVal(1, 1, 2)
}

func TestIdentity(t *testing.T) {
	s := Identity(4)
	d := s.ToDense()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if d.At(i, j) != want {
				t.Fatalf("Identity(%d,%d) = %v", i, j, d.At(i, j))
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randSparse(13, 29, 0.2, rng)
	st := s.Transpose()
	if !st.ToDense().ApproxEqual(s.ToDense().T(), 0) {
		t.Fatal("Transpose dense mismatch")
	}
	// Involution.
	if !st.Transpose().ToDense().ApproxEqual(s.ToDense(), 0) {
		t.Fatal("(Sᵀ)ᵀ != S")
	}
}

func TestWithValuesSharesPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randSparse(5, 5, 0.4, rng)
	v := make([]float64, s.NNZ())
	b := s.WithValues(v)
	if !s.SamePattern(b) {
		t.Fatal("WithValues must share pattern")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong length")
		}
	}()
	s.WithValues(make([]float64, s.NNZ()+1))
}

func TestSamePattern(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randSparse(10, 10, 0.3, rng)
	// Deep-equal but not shared pattern.
	c := s.Clone()
	if !s.SamePattern(c) {
		t.Fatal("clone must have same pattern")
	}
	other := randSparse(10, 10, 0.3, rand.New(rand.NewSource(99)))
	if s.NNZ() == other.NNZ() && s.SamePattern(other) {
		t.Fatal("different random patterns reported equal")
	}
}

func TestApplyExpScale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randSparse(8, 8, 0.3, rng)
	e := s.Exp()
	for p := range e.Val {
		if math.Abs(e.Val[p]-math.Exp(s.Val[p])) > 1e-15 {
			t.Fatal("Exp value mismatch")
		}
	}
	sc := s.Scale(-2)
	for p := range sc.Val {
		if sc.Val[p] != -2*s.Val[p] {
			t.Fatal("Scale value mismatch")
		}
	}
}

func TestHadamardAndAddSamePattern(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randSparse(10, 12, 0.3, rng)
	b := s.WithValues(make([]float64, s.NNZ()))
	for p := range b.Val {
		b.Val[p] = float64(p)
	}
	h := s.HadamardSamePattern(b)
	a := s.AddSamePattern(b)
	for p := range s.Val {
		if h.Val[p] != s.Val[p]*b.Val[p] || a.Val[p] != s.Val[p]+b.Val[p] {
			t.Fatal("Hadamard/Add value mismatch")
		}
	}
}

func TestHadamardPatternMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randSparse(6, 6, 0.5, rng)
	o := randSparse(6, 6, 0.1, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.HadamardSamePattern(o)
}

func TestAddGeneralMergesPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randSparse(15, 15, 0.2, rng)
	b := randSparse(15, 15, 0.2, rng)
	got := a.Add(b).ToDense()
	want := a.ToDense().Add(b.ToDense())
	if !got.ApproxEqual(want, 1e-14) {
		t.Fatalf("general Add mismatch: %g", got.MaxAbsDiff(want))
	}
}

func TestAddTransposeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := randSparse(20, 20, 0.15, rng)
	got := s.AddTranspose().ToDense()
	want := s.ToDense().Add(s.ToDense().T())
	if !got.ApproxEqual(want, 1e-14) {
		t.Fatal("X₊ = X + Xᵀ mismatch")
	}
}

func TestRowColSumsAndMax(t *testing.T) {
	c := NewCOO(3, 3, 4)
	c.AppendVal(0, 0, 1)
	c.AppendVal(0, 2, 3)
	c.AppendVal(2, 1, -5)
	s := FromCOO(c)
	rs := s.RowSums()
	if rs[0] != 4 || rs[1] != 0 || rs[2] != -5 {
		t.Fatalf("RowSums = %v", rs)
	}
	cs := s.ColSums()
	if cs[0] != 1 || cs[1] != -5 || cs[2] != 3 {
		t.Fatalf("ColSums = %v", cs)
	}
	rm := s.RowMax()
	if rm[0] != 3 || !math.IsInf(rm[1], -1) || rm[2] != -5 {
		t.Fatalf("RowMax = %v", rm)
	}
}

func TestColSumsLargeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := randSparse(2000, 37, 0.05, rng)
	got := s.ColSums()
	want := tensor.SumT(s.ToDense())
	for j := range got {
		if math.Abs(got[j]-want[j]) > 1e-10 {
			t.Fatalf("ColSums[%d] = %v want %v", j, got[j], want[j])
		}
	}
}

func TestScaleRowsCols(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := randSparse(6, 7, 0.4, rng)
	r := make([]float64, 6)
	c := make([]float64, 7)
	for i := range r {
		r[i] = float64(i + 1)
	}
	for j := range c {
		c[j] = float64(j) - 3
	}
	got := s.ScaleRowsCols(r, c).ToDense()
	want := tensor.NewDense(6, 7)
	for i := 0; i < 6; i++ {
		for j := 0; j < 7; j++ {
			want.Set(i, j, s.ToDense().At(i, j)*r[i]*c[j])
		}
	}
	if !got.ApproxEqual(want, 1e-14) {
		t.Fatal("ScaleRowsCols mismatch")
	}
	// ScaleRows only.
	got2 := s.ScaleRows(r).ToDense()
	for i := 0; i < 6; i++ {
		for j := 0; j < 7; j++ {
			if math.Abs(got2.At(i, j)-s.ToDense().At(i, j)*r[i]) > 1e-14 {
				t.Fatal("ScaleRows mismatch")
			}
		}
	}
}

func TestRowNNZAndMaxRowNNZ(t *testing.T) {
	c := NewCOO(3, 5, 5)
	c.Append(0, 1)
	c.Append(0, 2)
	c.Append(0, 3)
	c.Append(2, 0)
	s := FromCOO(c)
	if s.RowNNZ(0) != 3 || s.RowNNZ(1) != 0 || s.RowNNZ(2) != 1 {
		t.Fatal("RowNNZ wrong")
	}
	if s.MaxRowNNZ() != 3 {
		t.Fatal("MaxRowNNZ wrong")
	}
}

func TestIsSymmetricPattern(t *testing.T) {
	c := NewCOO(3, 3, 4)
	c.Append(0, 1)
	c.Append(1, 0)
	c.Append(2, 2)
	if !FromCOO(c).IsSymmetricPattern() {
		t.Fatal("symmetric pattern not detected")
	}
	c2 := NewCOO(3, 3, 1)
	c2.Append(0, 1)
	if FromCOO(c2).IsSymmetricPattern() {
		t.Fatal("asymmetric pattern reported symmetric")
	}
	if FromCOO(NewCOO(2, 3, 0)).IsSymmetricPattern() {
		t.Fatal("non-square matrix cannot be symmetric")
	}
}

func TestToCOORoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	s := randSparse(25, 19, 0.2, rng)
	back := FromCOO(s.ToCOO())
	if !back.SamePattern(s) {
		t.Fatal("ToCOO/FromCOO changed the pattern")
	}
	for p := range s.Val {
		if back.Val[p] != s.Val[p] {
			t.Fatal("ToCOO/FromCOO changed values")
		}
	}
}
