package sparse

import "math"

// Fingerprint returns a 64-bit content hash of the matrix: dimensions,
// sparsity pattern (RowPtr, Col) and values. Two CSR matrices with equal
// fingerprints and equal (Rows, NNZ) are, for caching purposes, the same
// operand: a compiled plan built against one computes bitwise-identical
// results against the other, because the plan reads only the pattern and
// values hashed here.
//
// The hash is word-granular FNV-1a — one multiply per int64/float64 word
// rather than per byte — which keeps a rebind-time fingerprint of a
// multi-million-edge adjacency in the tens of milliseconds. It is a cache
// key, not a cryptographic digest; the plan cache additionally keys on
// Rows, NNZ and the layer signature, so a collision requires matching all
// of those at once.
//
// The receiver is read-only: Fingerprint does not mutate or memoize on the
// CSR (callers such as the per-layer plan handles memoize per adjacency
// pointer instead).
func (a *CSR) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(a.Rows))
	mix(uint64(a.Cols))
	for _, p := range a.RowPtr {
		mix(uint64(p))
	}
	for _, c := range a.Col {
		mix(uint64(uint32(c)))
	}
	for _, v := range a.Val {
		mix(math.Float64bits(v))
	}
	return h
}
