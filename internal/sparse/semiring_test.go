package sparse

import (
	"math"
	"math/rand"
	"testing"

	"agnn/internal/semiring"
	"agnn/internal/tensor"
)

// threeStarGraph: vertex 0 has neighbors 1, 2, 3.
func threeStarGraph() *CSR {
	c := NewCOO(4, 4, 3)
	c.Append(0, 1)
	c.Append(0, 2)
	c.Append(0, 3)
	return FromCOO(c)
}

func TestMulDenseMinMax(t *testing.T) {
	a := threeStarGraph()
	h := tensor.NewDenseFrom(4, 2, []float64{
		0, 0, // vertex 0 (ignored)
		3, -1, // vertex 1
		5, 2, // vertex 2
		-4, 7, // vertex 3
	})
	mn := a.MulDenseMin(h)
	if mn.At(0, 0) != -4 || mn.At(0, 1) != -1 {
		t.Fatalf("min aggregation = %v %v", mn.At(0, 0), mn.At(0, 1))
	}
	mx := a.MulDenseMax(h)
	if mx.At(0, 0) != 5 || mx.At(0, 1) != 7 {
		t.Fatalf("max aggregation = %v %v", mx.At(0, 0), mx.At(0, 1))
	}
	// Neighborless vertices: identity elements (∞ / -∞), per the tropical
	// semiring definition with off-diagonal zeros mapped to el₁.
	if !math.IsInf(mn.At(1, 0), 1) || !math.IsInf(mx.At(1, 0), -1) {
		t.Fatal("empty neighborhoods must yield semiring identities")
	}
}

func TestMulDenseMean(t *testing.T) {
	a := threeStarGraph()
	h := tensor.NewDenseFrom(4, 1, []float64{0, 3, 5, -2})
	m := a.MulDenseMean(h)
	if math.Abs(m.At(0, 0)-2) > 1e-12 {
		t.Fatalf("mean aggregation = %v, want 2", m.At(0, 0))
	}
	if m.At(1, 0) != 0 {
		t.Fatal("empty neighborhood mean must be 0")
	}
}

func TestMulDenseMeanWeighted(t *testing.T) {
	c := NewCOO(2, 2, 2)
	c.AppendVal(0, 0, 1)
	c.AppendVal(0, 1, 3)
	a := FromCOO(c)
	h := tensor.NewDenseFrom(2, 1, []float64{10, 2})
	m := a.MulDenseMean(h)
	// (1·10 + 3·2)/(1+3) = 4
	if math.Abs(m.At(0, 0)-4) > 1e-12 {
		t.Fatalf("weighted mean = %v, want 4", m.At(0, 0))
	}
}

func TestMulDenseRealMatchesSpecialized(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	s := randSparse(60, 60, 0.1, rng)
	x := randDense(60, 7, rng)
	if !s.MulDenseReal(x).ApproxEqual(s.MulDense(x), 1e-12) {
		t.Fatal("generic real-semiring SpMM != specialized SpMM")
	}
}

func TestSpMMSemiringBoolean(t *testing.T) {
	// One BFS step over the boolean semiring: frontier {0} reaches {1,2}.
	c := NewCOO(3, 3, 2)
	c.Append(1, 0)
	c.Append(2, 0)
	a := FromCOO(c)
	sr := semiring.Boolean()
	frontier := []bool{true, false, false}
	next := SpMMSemiring(a, frontier, 1, sr, func(float64) bool { return true })
	if next[0] || !next[1] || !next[2] {
		t.Fatalf("boolean step = %v", next)
	}
}

func TestSpMMSemiringTropicalShortestPath(t *testing.T) {
	// One relaxation step of min-plus: dist' = min over edges (w + dist).
	c := NewCOO(2, 2, 1)
	c.AppendVal(0, 1, 2.5) // edge 0←1 with weight 2.5
	a := FromCOO(c)
	sr := semiring.TropicalMin()
	dist := []float64{math.Inf(1), 1.0}
	next := SpMMSemiring(a, dist, 1, sr, func(w float64) float64 { return w })
	if next[0] != 3.5 {
		t.Fatalf("min-plus relaxation = %v, want 3.5", next[0])
	}
	if !math.IsInf(next[1], 1) {
		t.Fatal("vertex with no in-edges keeps ∞")
	}
}

func TestSpMMSemiringLengthPanics(t *testing.T) {
	a := Identity(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SpMMSemiring(a, []float64{1, 2}, 1, semiring.Real(), func(v float64) float64 { return v })
}

func TestMeanMatchesRealRatio(t *testing.T) {
	// Property: mean aggregation equals (S·X) ⊘ rowsums(S) wherever the row
	// sum is non-zero.
	rng := rand.New(rand.NewSource(31))
	s := randPattern(25, 25, 0.2, rng)
	x := randDense(25, 3, rng)
	mean := s.MulDenseMean(x)
	sum := s.MulDense(x)
	deg := s.RowSums()
	for i := 0; i < 25; i++ {
		if deg[i] == 0 {
			continue
		}
		for j := 0; j < 3; j++ {
			if math.Abs(mean.At(i, j)-sum.At(i, j)/deg[i]) > 1e-9 {
				t.Fatalf("mean(%d,%d) = %v, want %v", i, j, mean.At(i, j), sum.At(i, j)/deg[i])
			}
		}
	}
}
