// Package sparse implements the sparse-tensor substrate: COO and CSR
// matrices, the SpMM / SDDMM kernels of Table 2, semiring-generalized
// sparse-dense products (Section 4.3), pattern-restricted element-wise
// operations, and the global graph-softmax formulation (Section 4.2).
//
// All matrices in this package use 32-bit column indices; graphs are
// limited to 2^31-1 vertices and non-zeros, far beyond what a single
// simulated node processes in this reproduction.
package sparse

import (
	"fmt"
	"slices"
)

// COO is a coordinate-format sparse matrix. Val may be nil, in which case
// every stored entry has the implicit value 1 (a pattern/adjacency matrix).
type COO struct {
	Rows, Cols int
	Row, Col   []int32
	Val        []float64
}

// NewCOO returns an empty COO with the given shape and capacity hint.
func NewCOO(rows, cols, capHint int) *COO {
	return &COO{
		Rows: rows,
		Cols: cols,
		Row:  make([]int32, 0, capHint),
		Col:  make([]int32, 0, capHint),
	}
}

// Len returns the number of stored entries (before deduplication).
func (c *COO) Len() int { return len(c.Row) }

// Append adds a pattern entry (i, j). Mixing Append and AppendVal on the
// same COO is not allowed.
func (c *COO) Append(i, j int32) {
	if c.Val != nil {
		panic("sparse: Append on a COO with explicit values")
	}
	c.Row = append(c.Row, i)
	c.Col = append(c.Col, j)
}

// AppendVal adds an entry (i, j, v).
func (c *COO) AppendVal(i, j int32, v float64) {
	if c.Val == nil && len(c.Row) > 0 {
		panic("sparse: AppendVal on a pattern COO")
	}
	if c.Val == nil {
		c.Val = make([]float64, 0, cap(c.Row))
	}
	c.Row = append(c.Row, i)
	c.Col = append(c.Col, j)
	c.Val = append(c.Val, v)
}

// sortEntries orders entries by (row, col). Entries are packed into uint64
// keys so the sort runs on flat integers rather than through an index
// permutation — generated graphs reach tens of millions of entries.
func (c *COO) sortEntries() {
	n := c.Len()
	if c.Val == nil {
		keys := make([]uint64, n)
		for p := 0; p < n; p++ {
			keys[p] = uint64(uint32(c.Row[p]))<<32 | uint64(uint32(c.Col[p]))
		}
		slices.Sort(keys)
		for p, k := range keys {
			c.Row[p] = int32(k >> 32)
			c.Col[p] = int32(uint32(k))
		}
		return
	}
	type entry struct {
		key uint64
		val float64
	}
	es := make([]entry, n)
	for p := 0; p < n; p++ {
		es[p] = entry{uint64(uint32(c.Row[p]))<<32 | uint64(uint32(c.Col[p])), c.Val[p]}
	}
	slices.SortFunc(es, func(a, b entry) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		default:
			return 0
		}
	})
	for p, e := range es {
		c.Row[p] = int32(e.key >> 32)
		c.Col[p] = int32(uint32(e.key))
		c.Val[p] = e.val
	}
}

// validate panics on out-of-range indices.
func (c *COO) validate() {
	for p := range c.Row {
		if c.Row[p] < 0 || int(c.Row[p]) >= c.Rows || c.Col[p] < 0 || int(c.Col[p]) >= c.Cols {
			panic(fmt.Sprintf("sparse: entry (%d,%d) outside %d×%d", c.Row[p], c.Col[p], c.Rows, c.Cols))
		}
	}
}
