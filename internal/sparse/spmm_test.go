package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"agnn/internal/tensor"
)

func randDense(r, c int, rng *rand.Rand) *tensor.Dense {
	m := tensor.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestSpMMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{1, 1, 1}, {5, 7, 3}, {50, 40, 16}, {300, 300, 8}} {
		s := randSparse(dims[0], dims[1], 0.15, rng)
		x := randDense(dims[1], dims[2], rng)
		got := s.MulDense(x)
		want := tensor.MM(s.ToDense(), x)
		if !got.ApproxEqual(want, 1e-10) {
			t.Fatalf("SpMM %v mismatch %g", dims, got.MaxAbsDiff(want))
		}
	}
}

func TestSpMMEmptyRows(t *testing.T) {
	c := NewCOO(4, 4, 1)
	c.AppendVal(1, 2, 3)
	s := FromCOO(c)
	x := randDense(4, 5, rand.New(rand.NewSource(12)))
	got := s.MulDense(x)
	for j := 0; j < 5; j++ {
		if got.At(0, j) != 0 || got.At(2, j) != 0 || got.At(3, j) != 0 {
			t.Fatal("empty rows must yield zeros")
		}
		if math.Abs(got.At(1, j)-3*x.At(2, j)) > 1e-15 {
			t.Fatal("single-entry row wrong")
		}
	}
}

func TestSpMMAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := randSparse(20, 20, 0.2, rng)
	x := randDense(20, 4, rng)
	base := randDense(20, 4, rng)
	out := base.Clone()
	s.MulDenseAccumulate(out, x)
	want := base.Add(s.MulDense(x))
	if !out.ApproxEqual(want, 1e-12) {
		t.Fatal("MulDenseAccumulate mismatch")
	}
}

func TestSpMV(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	s := randSparse(30, 25, 0.2, rng)
	x := make([]float64, 25)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := s.MulVec(x)
	want := tensor.MatVec(s.ToDense(), x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("SpMV[%d] mismatch", i)
		}
	}
}

func TestSDDMMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pat := randPattern(25, 30, 0.1, rng)
	x := randDense(25, 8, rng)
	y := randDense(30, 8, rng)
	got := SDDMM(pat, x, y).ToDense()
	// Reference: pattern ⊙ (X·Yᵀ).
	full := tensor.MMT(x, y)
	want := tensor.NewDense(25, 30)
	pd := pat.ToDense()
	for i := 0; i < 25; i++ {
		for j := 0; j < 30; j++ {
			if pd.At(i, j) != 0 {
				want.Set(i, j, full.At(i, j))
			}
		}
	}
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("SDDMM mismatch %g", got.MaxAbsDiff(want))
	}
}

func TestSDDMMScaledUsesPatternValues(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	pat := randSparse(10, 10, 0.3, rng) // non-unit values
	x := randDense(10, 4, rng)
	y := randDense(10, 4, rng)
	got := SDDMMScaled(pat, x, y)
	plain := SDDMM(pat, x, y)
	for p := range got.Val {
		if math.Abs(got.Val[p]-plain.Val[p]*pat.Val[p]) > 1e-12 {
			t.Fatal("SDDMMScaled must multiply by pattern values")
		}
	}
}

func TestSDDMMShapePanics(t *testing.T) {
	pat := Identity(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SDDMM(pat, tensor.NewDense(3, 2), tensor.NewDense(3, 5))
}

func TestSpMMSDDMMCompositionProperty(t *testing.T) {
	// Property: for random sparse A and dense H,
	// SDDMM(A,H,H)·H == (A ⊙ H·Hᵀ)·H computed densely — the VA Ψ-then-
	// aggregate pipeline.
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		k := 1 + r.Intn(6)
		a := randPattern(n, n, 0.25, r)
		h := randDense(n, k, r)
		got := SDDMM(a, h, h).MulDense(h)
		dense := a.ToDense().Hadamard(tensor.MMT(h, h))
		want := tensor.MM(dense, h)
		return got.ApproxEqual(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSpMMShapePanics(t *testing.T) {
	s := Identity(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.MulDense(tensor.NewDense(4, 2))
}
