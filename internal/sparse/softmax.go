package sparse

import (
	"math"

	"agnn/internal/obs"
	"agnn/internal/par"
)

// RowSoftmax implements the graph softmax of Section 4.2:
//
//	sm(X) = exp(X) ⊘ rs_n(exp(X))
//
// applied over each vertex neighborhood (each row of the sparse score
// matrix). As in the paper's implementation, the n×n replication matrix
// rs_n is never created; each row is normalized by its own exp-sum. For
// numerical robustness the row maximum is subtracted before
// exponentiation, which is algebraically identical to the paper's
// formulation (the factor exp(-max) cancels).
func RowSoftmax(s *CSR) *CSR {
	vals := make([]float64, s.NNZ())
	RowSoftmaxInto(vals, s)
	return s.WithValues(vals)
}

// RowSoftmaxInto computes the row softmax of s's values into a
// pre-allocated value buffer (same pattern as s).
func RowSoftmaxInto(vals []float64, s *CSR) {
	defer obs.Start("row_softmax").End()
	if len(vals) != s.NNZ() {
		panic("sparse: RowSoftmaxInto value length mismatch")
	}
	par.RangeWeighted(s.Rows, func(i int) int64 { return int64(s.RowNNZ(i)) }, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			b, e := s.RowPtr[i], s.RowPtr[i+1]
			if b == e {
				continue
			}
			m := math.Inf(-1)
			for p := b; p < e; p++ {
				if s.Val[p] > m {
					m = s.Val[p]
				}
			}
			sum := 0.0
			for p := b; p < e; p++ {
				v := math.Exp(s.Val[p] - m)
				vals[p] = v
				sum += v
			}
			inv := 1 / sum
			for p := b; p < e; p++ {
				vals[p] *= inv
			}
		}
	})
}

// RowSoftmaxBackward computes the vector-Jacobian product of RowSoftmax:
// given P = RowSoftmax(S) and the upstream gradient Ḡ (same pattern), it
// returns S̄ with
//
//	S̄_ij = P_ij · (Ḡ_ij − ρ_i),   ρ_i = Σ_j Ḡ_ij · P_ij
//
// which is the per-neighborhood softmax Jacobian restricted to the sparsity
// pattern. This is the Γ sub-expression shared by the AGNN and GAT backward
// passes.
func RowSoftmaxBackward(p, g *CSR) *CSR {
	vals := make([]float64, p.NNZ())
	RowSoftmaxBackwardInto(vals, p, g)
	return p.WithValues(vals)
}

// RowSoftmaxBackwardInto computes the softmax VJP into a pre-allocated
// value buffer (same pattern as p).
func RowSoftmaxBackwardInto(vals []float64, p, g *CSR) {
	if !p.SamePattern(g) {
		panic("sparse: RowSoftmaxBackward pattern mismatch")
	}
	defer obs.Start("row_softmax_bwd").End()
	if len(vals) != p.NNZ() {
		panic("sparse: RowSoftmaxBackwardInto value length mismatch")
	}
	par.RangeWeighted(p.Rows, func(i int) int64 { return int64(p.RowNNZ(i)) }, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			b, e := p.RowPtr[i], p.RowPtr[i+1]
			rho := 0.0
			for q := b; q < e; q++ {
				rho += g.Val[q] * p.Val[q]
			}
			for q := b; q < e; q++ {
				vals[q] = p.Val[q] * (g.Val[q] - rho)
			}
		}
	})
}

// RowSoftmaxUnstable is the literal transcription of the paper's global
// softmax formulation — exp, row-sum via multiplication with 1, Hadamard
// division — without the max-subtraction stabilization. It exists to test
// that the stabilized kernel is algebraically identical, and as the
// unfused ablation target.
func RowSoftmaxUnstable(s *CSR) *CSR {
	e := s.Exp()
	sums := e.RowSums() // exp(X)·1
	inv := make([]float64, len(sums))
	for i, v := range sums {
		if v != 0 {
			inv[i] = 1 / v
		}
	}
	return e.ScaleRows(inv) // ⊘ rep(sum): division by the virtual rs_n matrix
}
