package sparse

import (
	"math/rand"
	"testing"

	"agnn/internal/par"
	"agnn/internal/tensor"
)

func randCSRWide(n, nnzPerRow, k int, seed int64) (*CSR, *tensor.Dense) {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(n, n, n*nnzPerRow)
	for i := 0; i < n; i++ {
		for e := 0; e < nnzPerRow; e++ {
			coo.AppendVal(int32(i), int32(rng.Intn(n)), 0.25+rng.Float64())
		}
	}
	return FromCOO(coo), tensor.RandN(n, k, 1, rng)
}

// TestMulDenseIntoTiledBitwiseIdentical: confining the SpMM sweep to column
// stripes must not change a single output bit — each out[i,j] accumulates
// its nnz contributions in the original row order either way.
func TestMulDenseIntoTiledBitwiseIdentical(t *testing.T) {
	defer tensor.SetTileBudget(0)
	s, x := randCSRWide(80, 6, 48, 61)

	tensor.SetTileBudget(0)
	want := s.MulDense(x)
	tensor.SetTileBudget(1) // minimum stripe width: 6 passes
	got := s.MulDense(x)
	if got.MaxAbsDiff(want) != 0 {
		t.Fatalf("tiled SpMM deviates by %g, want bitwise identity", got.MaxAbsDiff(want))
	}

	// Accumulate twice under the tiny budget vs twice untiled: both add the
	// same terms in the same per-element order, so they too match bitwise.
	acc := tensor.NewDense(s.Rows, x.Cols)
	s.MulDenseAccumulate(acc, x)
	s.MulDenseAccumulate(acc, x)
	tensor.SetTileBudget(0)
	acc2 := tensor.NewDense(s.Rows, x.Cols)
	s.MulDenseAccumulate(acc2, x)
	s.MulDenseAccumulate(acc2, x)
	if acc.MaxAbsDiff(acc2) != 0 {
		t.Fatalf("tiled accumulate deviates by %g, want bitwise identity", acc.MaxAbsDiff(acc2))
	}
}

// TestTilingAddsNoAllocations: the column-striped sweep must not allocate
// tile buffers — tiling is pure loop restructuring over the caller's
// storage. The only per-call allocation either way is the escaping
// parallel-range closure (the compiled plans prebuild theirs once, which is
// what their zero-alloc steady-state tests pin down), so tiled and untiled
// counts must be identical and must not scale with the stripe count.
func TestTilingAddsNoAllocations(t *testing.T) {
	old := par.Workers()
	par.SetWorkers(1)
	defer par.SetWorkers(old)
	defer tensor.SetTileBudget(0)

	s, x := randCSRWide(64, 4, 32, 62)
	out := tensor.NewDense(s.Rows, x.Cols)
	s.MulDenseAccumulate(out, x) // warm up

	tensor.SetTileBudget(0) // whole stripe fits: single pass
	af64 := testing.AllocsPerRun(20, func() { s.MulDenseAccumulate(out, x) })
	tensor.SetTileBudget(1) // minimum stripe width: 4 passes
	afTiled := testing.AllocsPerRun(20, func() { s.MulDenseAccumulate(out, x) })
	if afTiled != af64 {
		t.Errorf("tiling changed allocations: %.1f untiled vs %.1f tiled objects/op", af64, afTiled)
	}
	if afTiled > 2 {
		t.Errorf("tiled MulDenseAccumulate allocates %.1f objects/op, want at most the range closures", afTiled)
	}
}
