package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	s := randSparse(40, 40, 0.15, rng)
	p := RowSoftmax(s)
	sums := p.RowSums()
	for i, v := range sums {
		if s.RowNNZ(i) == 0 {
			if v != 0 {
				t.Fatalf("empty row %d sums to %v", i, v)
			}
			continue
		}
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("row %d softmax sums to %v", i, v)
		}
	}
}

func TestRowSoftmaxMatchesUnstable(t *testing.T) {
	// Stabilized kernel must be algebraically identical to the literal
	// global formulation exp(X) ⊘ rs_n(exp(X)) for moderate values.
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(15)
		s := randSparse(n, n, 0.3, r)
		a := RowSoftmax(s)
		b := RowSoftmaxUnstable(s)
		for p := range a.Val {
			if math.Abs(a.Val[p]-b.Val[p]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestRowSoftmaxStability(t *testing.T) {
	// Large scores overflow the unstable version but not the stable one.
	c := NewCOO(1, 2, 2)
	c.AppendVal(0, 0, 1000)
	c.AppendVal(0, 1, 999)
	s := FromCOO(c)
	p := RowSoftmax(s)
	if math.IsNaN(p.Val[0]) || math.IsInf(p.Val[0], 0) {
		t.Fatal("stable softmax produced non-finite value")
	}
	want0 := 1 / (1 + math.Exp(-1))
	if math.Abs(p.Val[0]-want0) > 1e-12 {
		t.Fatalf("softmax(1000,999)[0] = %v want %v", p.Val[0], want0)
	}
}

func TestRowSoftmaxUniformScores(t *testing.T) {
	// Equal scores → uniform attention = 1/degree.
	c := NewCOO(2, 3, 4)
	c.AppendVal(0, 0, 2.5)
	c.AppendVal(0, 1, 2.5)
	c.AppendVal(0, 2, 2.5)
	c.AppendVal(1, 1, -7)
	s := FromCOO(c)
	p := RowSoftmax(s)
	for q := 0; q < 3; q++ {
		if math.Abs(p.Val[q]-1.0/3) > 1e-12 {
			t.Fatalf("uniform softmax = %v", p.Val[q])
		}
	}
	if p.Val[3] != 1 {
		t.Fatalf("single-neighbor softmax = %v", p.Val[3])
	}
}

func TestRowSoftmaxShiftInvariance(t *testing.T) {
	// softmax(x + c) == softmax(x) per row.
	rng := rand.New(rand.NewSource(22))
	s := randSparse(20, 20, 0.2, rng)
	shifted := s.Apply(func(v float64) float64 { return v + 123.456 })
	a, b := RowSoftmax(s), RowSoftmax(shifted)
	for p := range a.Val {
		if math.Abs(a.Val[p]-b.Val[p]) > 1e-12 {
			t.Fatal("softmax not shift-invariant")
		}
	}
}

// numericalSoftmaxJacobian checks RowSoftmaxBackward against central finite
// differences of RowSoftmax.
func TestRowSoftmaxBackwardFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := randSparse(8, 8, 0.4, rng)
	p := RowSoftmax(s)
	// Random upstream gradient on the same pattern.
	g := s.WithValues(make([]float64, s.NNZ()))
	for q := range g.Val {
		g.Val[q] = rng.NormFloat64()
	}
	back := RowSoftmaxBackward(p, g)

	const eps = 1e-6
	for q := 0; q < s.NNZ(); q++ {
		plus := s.Clone()
		plus.Val[q] += eps
		minus := s.Clone()
		minus.Val[q] -= eps
		pp, pm := RowSoftmax(plus), RowSoftmax(minus)
		// loss = Σ g ⊙ softmax(s); d(loss)/d(s_q) numerically:
		num := 0.0
		for r := range g.Val {
			num += g.Val[r] * (pp.Val[r] - pm.Val[r]) / (2 * eps)
		}
		if math.Abs(num-back.Val[q]) > 1e-5 {
			t.Fatalf("softmax backward[%d] = %v, finite diff %v", q, back.Val[q], num)
		}
	}
}

func TestRowSoftmaxBackwardPatternMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randSparse(5, 5, 0.5, rng)
	b := randSparse(5, 5, 0.1, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RowSoftmaxBackward(a, b)
}
