package sparse

import (
	"fmt"

	"agnn/internal/par"
	"agnn/internal/semiring"
	"agnn/internal/tensor"
)

// SpMMSemiring computes the generalized sparse-dense product of Section 4.3
// over an arbitrary semiring: Y[i,c] = ⊕_{j ∈ row i} (edge(S_ij) ⊗ X[j,c]).
//
// x is a row-major Rows(S.Cols)×xCols matrix of semiring elements; edge maps
// each stored adjacency value into the semiring domain (e.g. identity for
// the real semiring, 0-on-edge for tropical semirings, or LiftEdge for the
// averaging semiring). Structural zeros contribute the Plus-identity, i.e.
// they are skipped — exactly the effect of setting off-diagonal zeros to
// the semiring's el₁ (∞ for min, −∞ for max) as the paper prescribes.
func SpMMSemiring[T any](s *CSR, x []T, xCols int, sr semiring.Semiring[T], edge func(v float64) T) []T {
	if len(x) != s.Cols*xCols {
		panic(fmt.Sprintf("sparse: SpMMSemiring X length %d != %d×%d", len(x), s.Cols, xCols))
	}
	out := make([]T, s.Rows*xCols)
	par.RangeWeighted(s.Rows, func(i int) int64 { return int64(s.RowNNZ(i)) }, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out[i*xCols : (i+1)*xCols]
			for c := range orow {
				orow[c] = sr.Zero
			}
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				ev := edge(s.Val[p])
				xrow := x[int(s.Col[p])*xCols : (int(s.Col[p])+1)*xCols]
				for c, xv := range xrow {
					orow[c] = sr.Plus(orow[c], sr.Times(ev, xv))
				}
			}
		}
	})
	return out
}

// MulDenseMin computes per-feature min aggregation over neighborhoods using
// the tropical-min semiring: Y[i,c] = min_{j ∈ N(i)} X[j,c]. Rows with no
// neighbors yield +Inf.
func (s *CSR) MulDenseMin(x *tensor.Dense) *tensor.Dense {
	sr := semiring.TropicalMin()
	out := SpMMSemiring(s, x.Data, x.Cols, sr, func(float64) float64 { return 0 })
	return tensor.NewDenseFrom(s.Rows, x.Cols, out)
}

// MulDenseMax computes per-feature max aggregation via the tropical-max
// semiring: Y[i,c] = max_{j ∈ N(i)} X[j,c]. Rows with no neighbors yield
// -Inf.
func (s *CSR) MulDenseMax(x *tensor.Dense) *tensor.Dense {
	sr := semiring.TropicalMax()
	out := SpMMSemiring(s, x.Data, x.Cols, sr, func(float64) float64 { return 0 })
	return tensor.NewDenseFrom(s.Rows, x.Cols, out)
}

// MulDenseMean computes edge-weighted average aggregation via the paper's
// ℝ² averaging semiring: Y[i,c] = Σ_j S_ij·X[j,c] / Σ_j S_ij. Rows with no
// neighbors yield 0.
func (s *CSR) MulDenseMean(x *tensor.Dense) *tensor.Dense {
	sr := semiring.Average()
	lifted := make([]semiring.Pair, len(x.Data))
	for i, v := range x.Data {
		lifted[i] = semiring.LiftFeature(v)
	}
	pairs := SpMMSemiring(s, lifted, x.Cols, sr, semiring.LiftEdge)
	out := tensor.NewDense(s.Rows, x.Cols)
	for i, p := range pairs {
		out.Data[i] = p.V
	}
	return out
}

// MulDenseReal computes Y = S·X through the generic semiring kernel with
// the real semiring. It must agree with the specialized MulDense; the
// difference in throughput is the "generic vs specialized" ablation of
// DESIGN.md.
func (s *CSR) MulDenseReal(x *tensor.Dense) *tensor.Dense {
	sr := semiring.Real()
	out := SpMMSemiring(s, x.Data, x.Cols, sr, func(v float64) float64 { return v })
	return tensor.NewDenseFrom(s.Rows, x.Cols, out)
}
