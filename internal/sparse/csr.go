package sparse

import (
	"fmt"
	"math"

	"agnn/internal/par"
	"agnn/internal/tensor"
)

// CSR is a compressed-sparse-row matrix. By convention throughout this
// repository, CSR pattern slices (RowPtr, Col) are immutable after
// construction and may be shared among matrices with the same sparsity
// structure (adjacency matrix, attention scores, softmax output, gradients
// of all of these); only Val differs. This is the concrete realization of
// the paper's observation that "the output almost always has the same
// sparsity pattern as the adjacency matrix".
type CSR struct {
	Rows, Cols int
	RowPtr     []int64 // len Rows+1
	Col        []int32 // len NNZ
	Val        []float64
}

// NNZ returns the number of stored entries.
func (s *CSR) NNZ() int { return len(s.Col) }

// FromCOO builds a CSR from a COO, sorting entries and summing duplicates.
// A nil-valued (pattern) COO yields unit values with duplicates collapsed.
func FromCOO(c *COO) *CSR {
	c.validate()
	c.sortEntries()
	n := c.Len()
	out := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int64, c.Rows+1)}
	out.Col = make([]int32, 0, n)
	out.Val = make([]float64, 0, n)
	lastRow, lastCol := int32(-1), int32(-1)
	for p := 0; p < n; p++ {
		i, j := c.Row[p], c.Col[p]
		v := 1.0
		if c.Val != nil {
			v = c.Val[p]
		}
		if i == lastRow && j == lastCol {
			if c.Val != nil {
				out.Val[len(out.Val)-1] += v // sum duplicates of weighted matrices
			}
			continue
		}
		out.Col = append(out.Col, j)
		out.Val = append(out.Val, v)
		out.RowPtr[i+1]++
		lastRow, lastCol = i, j
	}
	for i := 0; i < c.Rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	return out
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	s := &CSR{Rows: n, Cols: n, RowPtr: make([]int64, n+1), Col: make([]int32, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		s.RowPtr[i+1] = int64(i + 1)
		s.Col[i] = int32(i)
		s.Val[i] = 1
	}
	return s
}

// Clone returns a deep copy (pattern included).
func (s *CSR) Clone() *CSR {
	out := &CSR{Rows: s.Rows, Cols: s.Cols,
		RowPtr: append([]int64(nil), s.RowPtr...),
		Col:    append([]int32(nil), s.Col...),
		Val:    append([]float64(nil), s.Val...)}
	return out
}

// WithValues returns a matrix sharing the receiver's pattern with the given
// values. len(vals) must equal NNZ. The pattern slices are shared, honoring
// the package's immutable-pattern convention.
func (s *CSR) WithValues(vals []float64) *CSR {
	if len(vals) != s.NNZ() {
		panic(fmt.Sprintf("sparse: WithValues length %d != nnz %d", len(vals), s.NNZ()))
	}
	return &CSR{Rows: s.Rows, Cols: s.Cols, RowPtr: s.RowPtr, Col: s.Col, Val: vals}
}

// ZeroLike returns a same-pattern matrix with zero values.
func (s *CSR) ZeroLike() *CSR { return s.WithValues(make([]float64, s.NNZ())) }

// SamePattern reports whether two matrices share an identical sparsity
// structure. It is O(1) when the slices are literally shared and O(nnz)
// otherwise.
func (s *CSR) SamePattern(b *CSR) bool {
	if s.Rows != b.Rows || s.Cols != b.Cols || s.NNZ() != b.NNZ() {
		return false
	}
	if len(s.RowPtr) > 0 && len(b.RowPtr) > 0 && &s.RowPtr[0] == &b.RowPtr[0] &&
		(len(s.Col) == 0 || &s.Col[0] == &b.Col[0]) {
		return true
	}
	for i := range s.RowPtr {
		if s.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range s.Col {
		if s.Col[i] != b.Col[i] {
			return false
		}
	}
	return true
}

// Transpose returns Sᵀ in CSR form (counting-sort construction, O(nnz)).
func (s *CSR) Transpose() *CSR {
	out := &CSR{Rows: s.Cols, Cols: s.Rows,
		RowPtr: make([]int64, s.Cols+1),
		Col:    make([]int32, s.NNZ()),
		Val:    make([]float64, s.NNZ())}
	for _, j := range s.Col {
		out.RowPtr[j+1]++
	}
	for i := 0; i < s.Cols; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	next := append([]int64(nil), out.RowPtr[:s.Cols]...)
	for i := 0; i < s.Rows; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			j := s.Col[p]
			q := next[j]
			next[j]++
			out.Col[q] = int32(i)
			out.Val[q] = s.Val[p]
		}
	}
	return out
}

// TransposePerm returns the value permutation of Transpose: entry p of s
// lands at position perm[p] of Sᵀ's value array. Computing the permutation
// once lets callers re-transpose a same-pattern matrix's values into a
// pre-allocated buffer with PermuteVals — the compiled plans use this to
// run Ψᵀ·G products every step without rebuilding the transpose.
func (s *CSR) TransposePerm() []int64 {
	rowPtr := make([]int64, s.Cols+1)
	for _, j := range s.Col {
		rowPtr[j+1]++
	}
	for i := 0; i < s.Cols; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	perm := make([]int64, s.NNZ())
	next := rowPtr[:s.Cols]
	for i := 0; i < s.Rows; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			j := s.Col[p]
			perm[p] = next[j]
			next[j]++
		}
	}
	return perm
}

// PermuteVals scatters src through perm into dst: dst[perm[p]] = src[p].
// With perm = TransposePerm, dst becomes the transposed value array.
func PermuteVals(dst, src []float64, perm []int64) {
	if len(dst) != len(src) || len(perm) != len(src) {
		panic("sparse: PermuteVals length mismatch")
	}
	for p, v := range src {
		dst[perm[p]] = v
	}
}

// IsSymmetricPattern reports whether the sparsity pattern equals that of the
// transpose (the usual case for the undirected graphs that dominate GNN
// workloads; cf. Section 5.2).
func (s *CSR) IsSymmetricPattern() bool {
	if s.Rows != s.Cols {
		return false
	}
	return s.SamePattern(s.Transpose())
}

// Apply returns a same-pattern matrix with f applied to every value.
func (s *CSR) Apply(f func(float64) float64) *CSR {
	vals := make([]float64, s.NNZ())
	par.Range(s.NNZ(), func(_, lo, hi int) {
		for p := lo; p < hi; p++ {
			vals[p] = f(s.Val[p])
		}
	})
	return s.WithValues(vals)
}

// Exp returns exp(S) restricted to the pattern (step (1) of the global
// softmax formulation).
func (s *CSR) Exp() *CSR { return s.Apply(math.Exp) }

// Scale returns alpha·S.
func (s *CSR) Scale(alpha float64) *CSR {
	return s.Apply(func(v float64) float64 { return alpha * v })
}

// HadamardSamePattern returns S ⊙ B for two matrices sharing a pattern.
func (s *CSR) HadamardSamePattern(b *CSR) *CSR {
	if !s.SamePattern(b) {
		panic("sparse: HadamardSamePattern on different patterns")
	}
	vals := make([]float64, s.NNZ())
	par.Range(s.NNZ(), func(_, lo, hi int) {
		for p := lo; p < hi; p++ {
			vals[p] = s.Val[p] * b.Val[p]
		}
	})
	return s.WithValues(vals)
}

// AddSamePattern returns S + B for two matrices sharing a pattern.
func (s *CSR) AddSamePattern(b *CSR) *CSR {
	if !s.SamePattern(b) {
		panic("sparse: AddSamePattern on different patterns")
	}
	vals := make([]float64, s.NNZ())
	par.Range(s.NNZ(), func(_, lo, hi int) {
		for p := lo; p < hi; p++ {
			vals[p] = s.Val[p] + b.Val[p]
		}
	})
	return s.WithValues(vals)
}

// Add returns S + B with a merged (union) pattern. This implements the X₊ =
// X + Xᵀ building block of Table 2 in the general case; when the patterns
// coincide the cheaper AddSamePattern path is taken automatically.
func (s *CSR) Add(b *CSR) *CSR {
	if s.Rows != b.Rows || s.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: Add shape mismatch %d×%d + %d×%d", s.Rows, s.Cols, b.Rows, b.Cols))
	}
	if s.SamePattern(b) {
		return s.AddSamePattern(b)
	}
	out := &CSR{Rows: s.Rows, Cols: s.Cols, RowPtr: make([]int64, s.Rows+1)}
	// Two passes: count, then fill.
	for i := 0; i < s.Rows; i++ {
		out.RowPtr[i+1] = out.RowPtr[i] + int64(mergedRowLen(s, b, i))
	}
	out.Col = make([]int32, out.RowPtr[s.Rows])
	out.Val = make([]float64, out.RowPtr[s.Rows])
	par.Range(s.Rows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			q := out.RowPtr[i]
			pa, ea := s.RowPtr[i], s.RowPtr[i+1]
			pb, eb := b.RowPtr[i], b.RowPtr[i+1]
			for pa < ea || pb < eb {
				switch {
				case pb >= eb || (pa < ea && s.Col[pa] < b.Col[pb]):
					out.Col[q], out.Val[q] = s.Col[pa], s.Val[pa]
					pa++
				case pa >= ea || b.Col[pb] < s.Col[pa]:
					out.Col[q], out.Val[q] = b.Col[pb], b.Val[pb]
					pb++
				default:
					out.Col[q], out.Val[q] = s.Col[pa], s.Val[pa]+b.Val[pb]
					pa++
					pb++
				}
				q++
			}
		}
	})
	return out
}

func mergedRowLen(a, b *CSR, i int) int {
	pa, ea := a.RowPtr[i], a.RowPtr[i+1]
	pb, eb := b.RowPtr[i], b.RowPtr[i+1]
	n := 0
	for pa < ea || pb < eb {
		switch {
		case pb >= eb || (pa < ea && a.Col[pa] < b.Col[pb]):
			pa++
		case pa >= ea || b.Col[pb] < a.Col[pa]:
			pb++
		default:
			pa++
			pb++
		}
		n++
	}
	return n
}

// AddTranspose returns S + Sᵀ (the X₊ building block).
func (s *CSR) AddTranspose() *CSR { return s.Add(s.Transpose()) }

// RowSums returns the vector of row sums (sum(X) = X·1 on the pattern).
func (s *CSR) RowSums() []float64 {
	out := make([]float64, s.Rows)
	par.Range(s.Rows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := 0.0
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				acc += s.Val[p]
			}
			out[i] = acc
		}
	})
	return out
}

// ColSums returns the vector of column sums (sumᵀ(X) = 1ᵀ·X).
func (s *CSR) ColSums() []float64 {
	w := par.Workers()
	partials := make([][]float64, w)
	par.Range(s.Rows, func(worker, lo, hi int) {
		acc := partials[worker]
		if acc == nil {
			acc = make([]float64, s.Cols)
			partials[worker] = acc
		}
		for i := lo; i < hi; i++ {
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				acc[s.Col[p]] += s.Val[p]
			}
		}
	})
	out := make([]float64, s.Cols)
	for _, pp := range partials {
		if pp == nil {
			continue
		}
		for j, v := range pp {
			out[j] += v
		}
	}
	return out
}

// RowMax returns per-row maxima; empty rows yield -Inf.
func (s *CSR) RowMax() []float64 {
	out := make([]float64, s.Rows)
	par.Range(s.Rows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			m := math.Inf(-1)
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				if s.Val[p] > m {
					m = s.Val[p]
				}
			}
			out[i] = m
		}
	})
	return out
}

// ScaleRows returns diag(r)·S (row i scaled by r[i]).
func (s *CSR) ScaleRows(r []float64) *CSR {
	if len(r) != s.Rows {
		panic("sparse: ScaleRows length mismatch")
	}
	vals := make([]float64, s.NNZ())
	par.Range(s.Rows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			ri := r[i]
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				vals[p] = s.Val[p] * ri
			}
		}
	})
	return s.WithValues(vals)
}

// ScaleRowsCols returns diag(r)·S·diag(c): entry (i,j) scaled by r[i]·c[j].
// With r = c = 1⊘n this is the Hadamard division by the virtual outer
// product n·nᵀ used by AGNN's cosine normalization — the n×n matrix is
// never formed.
func (s *CSR) ScaleRowsCols(r, c []float64) *CSR {
	if len(r) != s.Rows || len(c) != s.Cols {
		panic("sparse: ScaleRowsCols length mismatch")
	}
	vals := make([]float64, s.NNZ())
	par.Range(s.Rows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			ri := r[i]
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				vals[p] = s.Val[p] * ri * c[s.Col[p]]
			}
		}
	})
	return s.WithValues(vals)
}

// ToDense materializes the matrix; for tests and tiny examples only.
func (s *CSR) ToDense() *tensor.Dense {
	out := tensor.NewDense(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			out.Set(i, int(s.Col[p]), out.At(i, int(s.Col[p]))+s.Val[p])
		}
	}
	return out
}

// FromDense converts a dense matrix to CSR, dropping exact zeros.
func FromDense(d *tensor.Dense) *CSR {
	coo := NewCOO(d.Rows, d.Cols, d.Rows)
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j, v := range row {
			if v != 0 {
				coo.AppendVal(int32(i), int32(j), v)
			}
		}
	}
	return FromCOO(coo)
}

// ToCOO converts back to coordinate format (entries in row-major order).
func (s *CSR) ToCOO() *COO {
	c := NewCOO(s.Rows, s.Cols, s.NNZ())
	for i := 0; i < s.Rows; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			c.AppendVal(int32(i), s.Col[p], s.Val[p])
		}
	}
	return c
}

// RowNNZ returns the number of stored entries in row i.
func (s *CSR) RowNNZ(i int) int { return int(s.RowPtr[i+1] - s.RowPtr[i]) }

// MaxRowNNZ returns the maximum row degree d of the pattern.
func (s *CSR) MaxRowNNZ() int {
	d := 0
	for i := 0; i < s.Rows; i++ {
		if r := s.RowNNZ(i); r > d {
			d = r
		}
	}
	return d
}
