package sparse

import (
	"math/rand"
	"testing"
)

func randomCSR(n, m int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	c := NewCOO(n, n, m)
	for i := 0; i < m; i++ {
		c.Row = append(c.Row, int32(rng.Intn(n)))
		c.Col = append(c.Col, int32(rng.Intn(n)))
		c.Val = append(c.Val, rng.Float64())
	}
	return FromCOO(c)
}

func TestFingerprintDeterministic(t *testing.T) {
	a := randomCSR(64, 512, 1)
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint is not deterministic")
	}
	b := a.Clone()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("clone fingerprint differs from original")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := randomCSR(64, 512, 1)
	fp := a.Fingerprint()

	// Different pattern (another seed) must differ.
	if randomCSR(64, 512, 2).Fingerprint() == fp {
		t.Fatal("distinct random matrices share a fingerprint")
	}

	// Same pattern, one perturbed value must differ: values are part of
	// the contract (weighted adjacencies compile to different constants).
	v := a.Clone()
	v.Val[len(v.Val)/2] += 1e-9
	if v.Fingerprint() == fp {
		t.Fatal("value perturbation did not change the fingerprint")
	}

	// Same nnz and values, different dimensions must differ.
	d := a.Clone()
	d.Cols++
	if d.Fingerprint() == fp {
		t.Fatal("dimension change did not change the fingerprint")
	}
}

func TestFingerprintEmpty(t *testing.T) {
	a := FromCOO(NewCOO(4, 4, 0))
	b := FromCOO(NewCOO(5, 5, 0))
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("empty matrices of different sizes share a fingerprint")
	}
}
