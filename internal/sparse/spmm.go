package sparse

import (
	"fmt"

	"agnn/internal/obs"
	"agnn/internal/par"
	"agnn/internal/tensor"
)

// MulDense computes the SpMM kernel Y = S·X (sparse × tall-dense). Rows are
// distributed over workers with nnz-balanced chunks, mirroring the paper's
// grid-stride CUDA kernels.
func (s *CSR) MulDense(x *tensor.Dense) *tensor.Dense {
	out := tensor.NewDense(s.Rows, x.Cols)
	s.MulDenseInto(out, x)
	return out
}

// MulDenseInto computes out = S·X into pre-allocated out. The feature
// dimension is tiled to the cache budget (tensor.TileCols): each pass over
// a worker's row range touches only an n×w column stripe of X, so the
// randomly indexed X rows stay L2-resident even when k·8 bytes per row
// would not. Tiling splits output columns only — every output element
// accumulates its nnz contributions in the original order, so the tiled
// kernel is bitwise-identical to the single-pass loop (which it degenerates
// to when the stripe fits).
func (s *CSR) MulDenseInto(out, x *tensor.Dense) {
	if s.Cols != x.Rows || out.Rows != s.Rows || out.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: SpMM shape mismatch out %d×%d = %d×%d · %d×%d",
			out.Rows, out.Cols, s.Rows, s.Cols, x.Rows, x.Cols))
	}
	defer obs.Start("spmm").End()
	k := x.Cols
	tc := tensor.TileCols(x.Rows, k, 8)
	par.RangeWeighted(s.Rows, func(i int) int64 { return int64(s.RowNNZ(i)) }, func(_, lo, hi int) {
		clear(out.Data[lo*k : hi*k])
		for c0 := 0; c0 < k; c0 += tc {
			c1 := min(c0+tc, k)
			for i := lo; i < hi; i++ {
				orow := out.Data[i*k+c0 : i*k+c1]
				for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
					v := s.Val[p]
					xrow := x.Data[int(s.Col[p])*k+c0 : int(s.Col[p])*k+c1]
					for t, xv := range xrow {
						orow[t] += v * xv
					}
				}
			}
		}
	})
}

// MulDenseAccumulate computes out += S·X, column-tiled like MulDenseInto.
func (s *CSR) MulDenseAccumulate(out, x *tensor.Dense) {
	if s.Cols != x.Rows || out.Rows != s.Rows || out.Cols != x.Cols {
		panic("sparse: MulDenseAccumulate shape mismatch")
	}
	k := x.Cols
	tc := tensor.TileCols(x.Rows, k, 8)
	par.RangeWeighted(s.Rows, func(i int) int64 { return int64(s.RowNNZ(i)) }, func(_, lo, hi int) {
		for c0 := 0; c0 < k; c0 += tc {
			c1 := min(c0+tc, k)
			for i := lo; i < hi; i++ {
				orow := out.Data[i*k+c0 : i*k+c1]
				for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
					v := s.Val[p]
					xrow := x.Data[int(s.Col[p])*k+c0 : int(s.Col[p])*k+c1]
					for t, xv := range xrow {
						orow[t] += v * xv
					}
				}
			}
		}
	})
}

// MulVec computes the SpMV y = S·x.
func (s *CSR) MulVec(x []float64) []float64 {
	if len(x) != s.Cols {
		panic("sparse: SpMV dimension mismatch")
	}
	out := make([]float64, s.Rows)
	par.RangeWeighted(s.Rows, func(i int) int64 { return int64(s.RowNNZ(i)) }, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := 0.0
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				acc += s.Val[p] * x[s.Col[p]]
			}
			out[i] = acc
		}
	})
	return out
}

// SDDMM computes the sampled dense-dense matrix product: a matrix with the
// pattern of pat whose value at (i, j) is X[i,:]·Y[j,:] (i.e. pat ⊙ X·Yᵀ,
// with the n×n dense product never materialized — it is the virtual matrix
// of Table 1). For VA this yields Ψ = A ⊙ H·Hᵀ directly.
func SDDMM(pat *CSR, x, y *tensor.Dense) *CSR {
	if x.Rows != pat.Rows || y.Rows != pat.Cols || x.Cols != y.Cols {
		panic(fmt.Sprintf("sparse: SDDMM shape mismatch pat %d×%d, X %d×%d, Y %d×%d",
			pat.Rows, pat.Cols, x.Rows, x.Cols, y.Rows, y.Cols))
	}
	defer obs.Start("sddmm").End()
	k := x.Cols
	vals := make([]float64, pat.NNZ())
	par.RangeWeighted(pat.Rows, func(i int) int64 { return int64(pat.RowNNZ(i)) }, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			xrow := x.Data[i*k : (i+1)*k]
			for p := pat.RowPtr[i]; p < pat.RowPtr[i+1]; p++ {
				yrow := y.Data[int(pat.Col[p])*k : int(pat.Col[p])*k+k]
				acc := 0.0
				for t, xv := range xrow {
					acc += xv * yrow[t]
				}
				vals[p] = acc
			}
		}
	})
	return pat.WithValues(vals)
}

// SDDMMScaled computes pat ⊙ (X·Yᵀ) with every stored value additionally
// multiplied by pat's own value — i.e. the true Hadamard pat ⊙ X·Yᵀ when pat
// carries non-unit weights.
func SDDMMScaled(pat *CSR, x, y *tensor.Dense) *CSR {
	out := SDDMM(pat, x, y)
	par.Range(out.NNZ(), func(_, lo, hi int) {
		for p := lo; p < hi; p++ {
			out.Val[p] *= pat.Val[p]
		}
	})
	return out
}
