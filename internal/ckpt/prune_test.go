package ckpt

import (
	"os"
	"path/filepath"
	"testing"
)

// fakeCkpt drops an empty file under the canonical checkpoint name — Prune
// selects by filename only, so content is irrelevant.
func fakeCkpt(t *testing.T, dir string, epoch int64) string {
	t.Helper()
	p := Path(dir, epoch)
	if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func listCkpts(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.agnn"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestPruneKeepsLastN: pruning removes exactly the oldest files beyond the
// keep window and reports what it removed.
func TestPruneKeepsLastN(t *testing.T) {
	dir := t.TempDir()
	for ep := int64(1); ep <= 6; ep++ {
		fakeCkpt(t, dir, ep)
	}
	removed, err := Prune(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 {
		t.Fatalf("removed %d files, want 3: %v", len(removed), removed)
	}
	for _, ep := range []int64{1, 2, 3} {
		if _, err := os.Stat(Path(dir, ep)); !os.IsNotExist(err) {
			t.Errorf("epoch %d survived pruning", ep)
		}
	}
	for _, ep := range []int64{4, 5, 6} {
		if _, err := os.Stat(Path(dir, ep)); err != nil {
			t.Errorf("epoch %d was pruned away: %v", ep, err)
		}
	}
	// Idempotent: a second prune at the same window removes nothing.
	removed, err = Prune(dir, 3)
	if err != nil || len(removed) != 0 {
		t.Fatalf("second prune: removed=%v err=%v", removed, err)
	}
}

// TestPruneNeverDeletesLatest: keep < 1 is clamped to 1 — the newest
// checkpoint always survives.
func TestPruneNeverDeletesLatest(t *testing.T) {
	dir := t.TempDir()
	for _, ep := range []int64{3, 11, 7} {
		fakeCkpt(t, dir, ep)
	}
	for _, keep := range []int{0, -5} {
		if _, err := Prune(dir, keep); err != nil {
			t.Fatal(err)
		}
	}
	left := listCkpts(t, dir)
	if len(left) != 1 || left[0] != Path(dir, 11) {
		t.Fatalf("after keep<1 prune: %v, want only epoch 11", left)
	}
}

// TestPruneIgnoresStrays: non-checkpoint files and subdirectories are
// untouched, and empty/missing directories are benign.
func TestPruneIgnoresStrays(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(stray, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	for ep := int64(1); ep <= 4; ep++ {
		fakeCkpt(t, dir, ep)
	}
	if _, err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); err != nil {
		t.Errorf("stray file was pruned: %v", err)
	}
	if removed, err := Prune(filepath.Join(dir, "missing"), 2); err != nil || removed != nil {
		t.Errorf("missing dir: removed=%v err=%v", removed, err)
	}
}

// TestSaveAutoPrunes (satellite): a long run writing a checkpoint per epoch
// retains only the DefaultRetain most recent, and Latest() still resolves
// to a loadable checkpoint afterwards.
func TestSaveAutoPrunes(t *testing.T) {
	dir := t.TempDir()
	ps := testParams(t, 450)
	const epochs = 6
	for ep := int64(1); ep <= epochs; ep++ {
		if _, err := Save(dir, State{Epoch: ep, Seed: 450, World: 4}, ps); err != nil {
			t.Fatal(err)
		}
	}
	left := listCkpts(t, dir)
	if len(left) != DefaultRetain {
		t.Fatalf("%d checkpoints on disk after %d saves, want %d: %v",
			len(left), epochs, DefaultRetain, left)
	}
	path, ep, ok, err := Latest(dir)
	if err != nil || !ok {
		t.Fatalf("Latest after pruning: ok=%v err=%v", ok, err)
	}
	if ep != epochs {
		t.Fatalf("Latest epoch = %d, want %d", ep, epochs)
	}
	st, err := Load(path, testParams(t, 451))
	if err != nil {
		t.Fatalf("latest checkpoint unloadable after pruning: %v", err)
	}
	if st.Epoch != epochs || st.World != 4 {
		t.Fatalf("loaded state %+v", st)
	}
}

// TestCheckpointWorldRoundTrip: the CKP2 world-size stamp survives the
// save/load cycle — elastic recovery reads it to know the snapshot's
// provenance even though the payload itself is world-size independent.
func TestCheckpointWorldRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ps := testParams(t, 460)
	path, err := Save(dir, State{Epoch: 2, Seed: 460, World: 9}, ps)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Load(path, testParams(t, 461))
	if err != nil {
		t.Fatal(err)
	}
	if st.World != 9 {
		t.Fatalf("World = %d after round trip, want 9", st.World)
	}
}
