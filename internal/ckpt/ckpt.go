// Package ckpt provides atomic, checksummed full-training-state
// checkpoints: model weights, optimizer moments and step counter, the
// epoch reached and the construction RNG seed. A checkpoint is everything
// needed to resume training bitwise-identically after a crash — restoring
// weights alone is not enough, because momentum/Adam updates depend on the
// accumulated moments and (for bias correction) the step count.
//
// Files are written atomically: the state is serialized to a temp file in
// the destination directory, fsynced, then renamed over the final path, so
// a crash mid-write never leaves a truncated checkpoint under the real
// name. The whole payload carries a trailing CRC-32C, so a torn or
// bit-flipped file is rejected on load rather than silently resuming from
// garbage.
package ckpt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"agnn/internal/gnn"
	"agnn/internal/obs/metrics"
	"agnn/internal/tensor"
)

// Two on-disk generations: CKP2 adds the world size the snapshot was taken
// at (informational — replicated weights make checkpoints world-size
// independent, which is what lets elastic recovery repartition on restore).
// CKP1 files still load, reporting WorldSize 0 (unknown).
const (
	magic   = "AGNNCKP2"
	magicV1 = "AGNNCKP1"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// DefaultRetain is how many most-recent checkpoints Save keeps on disk;
// older ones are pruned after each successful write.
const DefaultRetain = 3

// State is the resumable training position. Opt may be nil when the
// optimizer is stateless (or training hasn't started).
type State struct {
	Epoch int64         // epochs fully completed before this snapshot
	Seed  int64         // construction seed — resume must rebuild the same model
	World int64         // rank count the snapshot was taken at (0 = unknown / single-node)
	Opt   *gnn.OptState // optimizer moments + step, aligned with the params sequence
}

type crcWriter struct {
	w io.Writer
	h hash.Hash32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if n > 0 {
		c.h.Write(p[:n])
	}
	return n, err
}

type crcReader struct {
	r  io.Reader
	h  hash.Hash32
	on bool
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 && c.on {
		c.h.Write(p[:n])
	}
	return n, err
}

// Path returns the canonical checkpoint filename for an epoch.
func Path(dir string, epoch int64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%08d.agnn", epoch))
}

// Save atomically writes a checkpoint for the given state and parameter
// sequence to Path(dir, st.Epoch) and returns that path.
func Save(dir string, st State, params []*gnn.Param) (string, error) {
	t0 := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	final := Path(dir, st.Epoch)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename

	if err := write(tmp, st, params); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmpName, final); err != nil {
		return "", err
	}
	// Persist the rename itself (directory entry) where the platform allows.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	// Retention: now that the new checkpoint is durable, drop the oldest
	// ones beyond the keep window. Best-effort — a prune error must not
	// fail the save that just succeeded.
	Prune(dir, DefaultRetain)
	metrics.CheckpointSeconds.Observe(time.Since(t0).Seconds())
	return final, nil
}

// Prune removes all but the keep highest-epoch checkpoint files in dir and
// returns the removed paths. keep < 1 is treated as 1 — pruning never
// deletes the latest checkpoint.
func Prune(dir string, keep int) ([]string, error) {
	if keep < 1 {
		keep = 1
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type ck struct {
		epoch int64
		name  string
	}
	var cks []ck
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var ep int64
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d.agnn", &ep); err != nil {
			continue
		}
		cks = append(cks, ck{epoch: ep, name: e.Name()})
	}
	if len(cks) <= keep {
		return nil, nil
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].epoch > cks[j].epoch })
	var removed []string
	var firstErr error
	for _, c := range cks[keep:] {
		p := filepath.Join(dir, c.name)
		if err := os.Remove(p); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		removed = append(removed, p)
	}
	return removed, firstErr
}

func write(w io.Writer, st State, params []*gnn.Param) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw, h: crc32.New(crcTable)}
	if _, err := io.WriteString(cw, magic); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, []int64{st.Epoch, st.Seed, st.World}); err != nil {
		return err
	}
	if err := writeOptState(cw, st.Opt); err != nil {
		return err
	}
	// Weights ride as a length-prefixed embedded AGNNWTS2 blob, so the gnn
	// serializer stays the single source of truth for the weight format.
	var wbuf bytes.Buffer
	if err := gnn.SaveParams(&wbuf, params); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, int64(wbuf.Len())); err != nil {
		return err
	}
	if _, err := cw.Write(wbuf.Bytes()); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.h.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n < 0 || n > 1<<16 {
		return "", fmt.Errorf("ckpt: corrupt string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeOptState(w io.Writer, st *gnn.OptState) error {
	if st == nil {
		return binary.Write(w, binary.LittleEndian, byte(0))
	}
	if err := binary.Write(w, binary.LittleEndian, byte(1)); err != nil {
		return err
	}
	if err := writeString(w, st.Algo); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, st.Step); err != nil {
		return err
	}
	names := make([]string, 0, len(st.Slots))
	for name := range st.Slots {
		names = append(names, name)
	}
	sort.Strings(names) // map order must not leak into the file bytes
	if err := binary.Write(w, binary.LittleEndian, int64(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		if err := writeString(w, name); err != nil {
			return err
		}
		slot := st.Slots[name]
		if err := binary.Write(w, binary.LittleEndian, int64(len(slot))); err != nil {
			return err
		}
		for _, tns := range slot {
			hdr := []int64{int64(tns.Rows), int64(tns.Cols)}
			if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, tns.Data); err != nil {
				return err
			}
		}
	}
	return nil
}

func readOptState(r io.Reader) (*gnn.OptState, error) {
	var present byte
	if err := binary.Read(r, binary.LittleEndian, &present); err != nil {
		return nil, fmt.Errorf("ckpt: truncated optimizer section: %w", err)
	}
	if present == 0 {
		return nil, nil
	}
	algo, err := readString(r)
	if err != nil {
		return nil, err
	}
	st := &gnn.OptState{Algo: algo, Slots: make(map[string][]*tensor.Dense)}
	if err := binary.Read(r, binary.LittleEndian, &st.Step); err != nil {
		return nil, err
	}
	var nslots int64
	if err := binary.Read(r, binary.LittleEndian, &nslots); err != nil {
		return nil, err
	}
	if nslots < 0 || nslots > 16 {
		return nil, fmt.Errorf("ckpt: corrupt slot count %d", nslots)
	}
	for s := int64(0); s < nslots; s++ {
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		var ntensors int64
		if err := binary.Read(r, binary.LittleEndian, &ntensors); err != nil {
			return nil, err
		}
		if ntensors < 0 || ntensors > 1<<20 {
			return nil, fmt.Errorf("ckpt: corrupt tensor count %d in slot %q", ntensors, name)
		}
		slot := make([]*tensor.Dense, ntensors)
		for i := range slot {
			var hdr [2]int64
			if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
				return nil, err
			}
			if hdr[0] < 0 || hdr[1] < 0 || hdr[0]*hdr[1] > 1<<30 {
				return nil, fmt.Errorf("ckpt: corrupt tensor shape %d×%d", hdr[0], hdr[1])
			}
			tns := tensor.NewDense(int(hdr[0]), int(hdr[1]))
			if err := binary.Read(r, binary.LittleEndian, tns.Data); err != nil {
				return nil, err
			}
			slot[i] = tns
		}
		st.Slots[name] = slot
	}
	return st, nil
}

// Load reads a checkpoint, restores the weights into params (which must
// match the saved parameter inventory) and returns the training state. The
// caller imports st.Opt into its optimizer.
func Load(path string, params []*gnn.Param) (State, error) {
	f, err := os.Open(path)
	if err != nil {
		return State{}, err
	}
	defer f.Close()
	return read(f, params)
}

func read(r io.Reader, params []*gnn.Param) (State, error) {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br, h: crc32.New(crcTable), on: true}
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(cr, got); err != nil {
		return State{}, fmt.Errorf("ckpt: truncated header: %w", err)
	}
	if string(got) != magic && string(got) != magicV1 {
		return State{}, fmt.Errorf("ckpt: bad magic %q", got)
	}
	var st State
	var hdr [2]int64
	if err := binary.Read(cr, binary.LittleEndian, &hdr); err != nil {
		return State{}, fmt.Errorf("ckpt: truncated header: %w", err)
	}
	st.Epoch, st.Seed = hdr[0], hdr[1]
	if string(got) == magic {
		if err := binary.Read(cr, binary.LittleEndian, &st.World); err != nil {
			return State{}, fmt.Errorf("ckpt: truncated header: %w", err)
		}
	}
	opt, err := readOptState(cr)
	if err != nil {
		return State{}, err
	}
	st.Opt = opt
	var wlen int64
	if err := binary.Read(cr, binary.LittleEndian, &wlen); err != nil {
		return State{}, fmt.Errorf("ckpt: truncated weights section: %w", err)
	}
	if wlen < 0 || wlen > 1<<34 {
		return State{}, fmt.Errorf("ckpt: corrupt weights length %d", wlen)
	}
	wblob := make([]byte, wlen)
	if _, err := io.ReadFull(cr, wblob); err != nil {
		return State{}, fmt.Errorf("ckpt: truncated weights section: %w", err)
	}
	cr.on = false
	var want uint32
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return State{}, fmt.Errorf("ckpt: missing checksum trailer: %w", err)
	}
	if sum := cr.h.Sum32(); sum != want {
		return State{}, fmt.Errorf("ckpt: checksum mismatch (file %08x, computed %08x)", want, sum)
	}
	// Only install the weights once the whole file has verified — a corrupt
	// checkpoint must not half-mutate the model.
	if err := gnn.LoadParams(bytes.NewReader(wblob), params); err != nil {
		return State{}, err
	}
	return st, nil
}

// Latest scans dir for checkpoint files and returns the path with the
// highest epoch. ok is false when the directory holds no checkpoints (or
// does not exist) — that is the cold-start case, not an error.
func Latest(dir string) (path string, epoch int64, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return "", 0, false, nil
	}
	if err != nil {
		return "", 0, false, err
	}
	best := int64(-1)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var ep int64
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d.agnn", &ep); err != nil {
			continue
		}
		if ep > best {
			best = ep
			path = filepath.Join(dir, e.Name())
		}
	}
	if best < 0 {
		return "", 0, false, nil
	}
	return path, best, true, nil
}
