package ckpt

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agnn/internal/gnn"
	"agnn/internal/tensor"
)

func testParams(t *testing.T, seed int64) []*gnn.Param {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := []string{"layer0/W", "layer0/a", "layer1/W"}
	ps := make([]*gnn.Param, len(names))
	for i, name := range names {
		ps[i] = &gnn.Param{
			Name:  name,
			Value: tensor.RandN(4, 3, 1, rng),
			Grad:  tensor.NewDense(4, 3),
		}
	}
	return ps
}

func step(ps []*gnn.Param, opt gnn.Optimizer, rng *rand.Rand) {
	for _, p := range ps {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.NormFloat64()
		}
	}
	opt.Step(ps)
}

func TestCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	ps := testParams(t, 400)
	opt := gnn.NewAdam(0.01)
	rng := rand.New(rand.NewSource(401))
	for i := 0; i < 3; i++ {
		step(ps, opt, rng)
	}
	st := State{Epoch: 7, Seed: 400, Opt: opt.ExportState(ps)}
	path, err := Save(dir, st, ps)
	if err != nil {
		t.Fatal(err)
	}
	if path != Path(dir, 7) {
		t.Fatalf("Save returned %q, want %q", path, Path(dir, 7))
	}

	fresh := testParams(t, 999) // different values, same inventory
	got, err := Load(path, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 7 || got.Seed != 400 {
		t.Fatalf("loaded state %+v", got)
	}
	for i := range ps {
		for j := range ps[i].Value.Data {
			if fresh[i].Value.Data[j] != ps[i].Value.Data[j] {
				t.Fatalf("param %d word %d: %v vs %v", i, j, fresh[i].Value.Data[j], ps[i].Value.Data[j])
			}
		}
	}

	// The optimizer state must resume bitwise: lockstep continuation.
	resumed := gnn.NewAdam(0.01)
	if err := resumed.ImportState(fresh, got.Opt); err != nil {
		t.Fatal(err)
	}
	rngA := rand.New(rand.NewSource(402))
	rngB := rand.New(rand.NewSource(402))
	for i := 0; i < 3; i++ {
		step(ps, opt, rngA)
		step(fresh, resumed, rngB)
	}
	for i := range ps {
		for j := range ps[i].Value.Data {
			if fresh[i].Value.Data[j] != ps[i].Value.Data[j] {
				t.Fatalf("post-resume divergence at param %d word %d", i, j)
			}
		}
	}
}

func TestCheckpointNilOptimizerState(t *testing.T) {
	dir := t.TempDir()
	ps := testParams(t, 410)
	path, err := Save(dir, State{Epoch: 0, Seed: 410}, ps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, testParams(t, 411))
	if err != nil {
		t.Fatal(err)
	}
	if got.Opt != nil {
		t.Fatalf("expected nil optimizer state, got %+v", got.Opt)
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	ps := testParams(t, 420)
	opt := gnn.NewSGD(0.1, 0.9)
	step(ps, opt, rand.New(rand.NewSource(421)))
	path, err := Save(dir, State{Epoch: 3, Seed: 420, Opt: opt.ExportState(ps)}, ps)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Bit flips anywhere must be rejected, and params must stay untouched.
	for _, pos := range []int{0, 10, len(raw) / 2, len(raw) - 6, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x10
		badPath := filepath.Join(dir, "bad.agnn")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		target := testParams(t, 422)
		before := append([]float64(nil), target[0].Value.Data...)
		if _, err := Load(badPath, target); err == nil {
			t.Errorf("bit flip at byte %d accepted", pos)
		}
		for j, v := range before {
			if target[0].Value.Data[j] != v {
				t.Fatalf("failed load mutated model params (flip at %d)", pos)
			}
		}
	}
	// Truncations must be rejected.
	for _, cut := range []int{4, len(raw) / 3, len(raw) - 2} {
		badPath := filepath.Join(dir, "trunc.agnn")
		if err := os.WriteFile(badPath, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(badPath, testParams(t, 423)); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestLatest(t *testing.T) {
	dir := t.TempDir()
	// Empty / missing directories are cold starts, not errors.
	if _, _, ok, err := Latest(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if _, _, ok, err := Latest(filepath.Join(dir, "nope")); err != nil || ok {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
	ps := testParams(t, 430)
	for _, ep := range []int64{2, 9, 5} {
		if _, err := Save(dir, State{Epoch: ep, Seed: 430}, ps); err != nil {
			t.Fatal(err)
		}
	}
	// Stray files must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	path, ep, ok, err := Latest(dir)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if ep != 9 || !strings.HasSuffix(path, "ckpt-00000009.agnn") {
		t.Fatalf("Latest = %q epoch %d", path, ep)
	}
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	ps := testParams(t, 440)
	if _, err := Save(dir, State{Epoch: 1, Seed: 440}, ps); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
}
