package fuse_test

import (
	"math"
	"math/rand"
	"testing"

	"agnn/internal/fuse"
	"agnn/internal/par"
	"agnn/internal/tensor"
)

// cloneParam deep-copies a ParamRef so two plans can accumulate gradients
// independently.
func cloneParam(p fuse.ParamRef) fuse.ParamRef {
	return fuse.ParamRef{Name: p.Name, Value: p.Value.Clone(), Grad: p.Grad.Clone()}
}

// maxRelDiff is the elementwise relative deviation max |a-b| / (1+|b|),
// the metric the f32-vs-f64 differential tolerances are stated in.
func maxRelDiff(a, b *tensor.Dense) float64 {
	worst := 0.0
	for i := range a.Data {
		d := math.Abs(a.Data[i]-b.Data[i]) / (1 + math.Abs(b.Data[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestPlanF32ForwardMatchesF64: the f32 compilation of each attention DAG
// must track the f64 plan within single-precision rounding — the mixed
// precision contract (f64 master weights, f32 kernels) changes memory
// traffic, not the math.
func TestPlanF32ForwardMatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	a := weightedGraph(40, 160, 91)
	const k = 5
	w := randParam(rng, "W", k, k)
	beta := randParam(rng, "beta", 1, 1)
	a1 := randParam(rng, "a1", k, 1)
	a2 := randParam(rng, "a2", k, 1)
	h := randDense(rng, a.Rows, k)

	cases := []struct {
		name  string
		build func() *fuse.Graph
	}{
		{"va", func() *fuse.Graph { return buildVA(a, w, k) }},
		{"agnn", func() *fuse.Graph { return buildAGNN(a, w, beta, k) }},
		{"gat", func() *fuse.Graph { return buildGAT(a, w, a1, a2, k, 0.2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.build().MustCompile(fuse.Options{}).Forward(h)
			got := tc.build().MustCompile(fuse.Options{DType: tensor.F32}).Forward(h)
			if d := maxRelDiff(got, want); d > 1e-5 {
				t.Fatalf("f32 forward deviates from f64 by %.3g relative, want <= 1e-5", d)
			}
		})
	}
}

// TestPlanF32BackwardGradsMatchF64: the reverse-derived f32 op list flushes
// its gradients into the f64 accumulators; they must agree with the f64
// plan's gradients to a few f32 rounding steps.
func TestPlanF32BackwardGradsMatchF64(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	a := weightedGraph(40, 160, 93)
	const k = 4
	w64 := randParam(rng, "W", k, k)
	beta64 := randParam(rng, "beta", 1, 1)
	w32, beta32 := cloneParam(w64), cloneParam(beta64)
	h := randDense(rng, a.Rows, k)
	gOut := randDense(rng, a.Rows, k)

	p64 := buildAGNN(a, w64, beta64, k).MustCompile(fuse.Options{Train: true})
	p64.Forward(h)
	in64 := p64.Backward(gOut)

	p32 := buildAGNN(a, w32, beta32, k).MustCompile(fuse.Options{Train: true, DType: tensor.F32})
	p32.Forward(h)
	in32 := p32.Backward(gOut)

	const tol = 1e-3
	if d := maxRelDiff(in32, in64); d > tol {
		t.Errorf("input cotangent deviates by %.3g relative, want <= %g", d, tol)
	}
	if d := maxRelDiff(w32.Grad, w64.Grad); d > tol {
		t.Errorf("W grad deviates by %.3g relative, want <= %g", d, tol)
	}
	if d := maxRelDiff(beta32.Grad, beta64.Grad); d > tol {
		t.Errorf("beta grad deviates by %.3g relative, want <= %g", d, tol)
	}
}

// TestPlanF32SteadyStateAllocs: f32 plans must be as allocation-free in
// steady state as the f64 plans — including the fused-attention inference
// op, whose score rows live in per-worker scratch.
func TestPlanF32SteadyStateAllocs(t *testing.T) {
	old := par.Workers()
	par.SetWorkers(1)
	defer par.SetWorkers(old)

	rng := rand.New(rand.NewSource(94))
	a := weightedGraph(64, 256, 95)
	const k = 8
	w := randParam(rng, "W", k, k)
	beta := randParam(rng, "beta", 1, 1)
	h := randDense(rng, a.Rows, k)
	r := randDense(rng, a.Rows, k)

	infer := buildAGNN(a, w, beta, k).MustCompile(fuse.Options{DType: tensor.F32})
	if infer.Stats().AttnFused == 0 {
		t.Fatal("f32 inference plan did not fuse the attention chain")
	}
	infer.Forward(h) // warm up per-worker scratch
	if af := testing.AllocsPerRun(20, func() { infer.Forward(h) }); af != 0 {
		t.Errorf("f32 fused inference Forward allocates %.1f objects/op, want 0", af)
	}

	train := buildAGNN(a, w, beta, k).MustCompile(fuse.Options{Train: true, DType: tensor.F32})
	train.Forward(h)
	train.Backward(r)
	if af := testing.AllocsPerRun(20, func() { train.Forward(h) }); af != 0 {
		t.Errorf("f32 training Forward allocates %.1f objects/op, want 0", af)
	}
	if ab := testing.AllocsPerRun(20, func() { train.Backward(r) }); ab != 0 {
		t.Errorf("f32 training Backward allocates %.1f objects/op, want 0", ab)
	}
}

// TestAttnFusedBitwiseIdenticalF64: the fused SDDMM+softmax+SpMM sweep must
// reproduce the unfused opSample→opSoftmax→opSpMM sequence bit for bit, in
// both the training shape (scores written to the value buffer mid-sweep)
// and the inference shape (scores confined to per-worker scratch).
func TestAttnFusedBitwiseIdenticalF64(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	a := weightedGraph(48, 200, 97)
	const k = 5
	w := randParam(rng, "W", k, k)
	beta := randParam(rng, "beta", 1, 1)
	a1 := randParam(rng, "a1", k, 1)
	a2 := randParam(rng, "a2", k, 1)
	h := randDense(rng, a.Rows, k)
	gOut := randDense(rng, a.Rows, k)

	cases := []struct {
		name  string
		build func(w fuse.ParamRef) *fuse.Graph
	}{
		{"va", func(wp fuse.ParamRef) *fuse.Graph { return buildVA(a, wp, k) }},
		{"agnn", func(wp fuse.ParamRef) *fuse.Graph { return buildAGNN(a, wp, beta, k) }},
		{"gat", func(wp fuse.ParamRef) *fuse.Graph { return buildGAT(a, wp, a1, a2, k, 0.2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/inference", func(t *testing.T) {
			fused := tc.build(w).MustCompile(fuse.Options{})
			unfused := tc.build(w).MustCompile(fuse.Options{NoAttnFuse: true})
			if fused.Stats().AttnFused == 0 {
				t.Fatal("default compile did not fuse the attention chain")
			}
			if unfused.Stats().AttnFused != 0 {
				t.Fatal("NoAttnFuse plan still reports fused chains")
			}
			if d := fused.Forward(h).MaxAbsDiff(unfused.Forward(h)); d != 0 {
				t.Fatalf("fused inference deviates by %g, want bitwise identity", d)
			}
		})
		t.Run(tc.name+"/train", func(t *testing.T) {
			wf, wu := cloneParam(w), cloneParam(w)
			fused := tc.build(wf).MustCompile(fuse.Options{Train: true})
			unfused := tc.build(wu).MustCompile(fuse.Options{Train: true, NoAttnFuse: true})
			if d := fused.Forward(h).MaxAbsDiff(unfused.Forward(h)); d != 0 {
				t.Fatalf("fused training forward deviates by %g, want bitwise identity", d)
			}
			if d := fused.Backward(gOut).MaxAbsDiff(unfused.Backward(gOut)); d != 0 {
				t.Fatalf("fused backward input grad deviates by %g, want bitwise identity", d)
			}
			if d := wf.Grad.MaxAbsDiff(wu.Grad); d != 0 {
				t.Fatalf("fused backward W grad deviates by %g, want bitwise identity", d)
			}
		})
	}
}
