package fuse

import (
	"fmt"
	"time"

	"agnn/internal/obs/flight"
	"agnn/internal/obs/metrics"
	"agnn/internal/par"
	"agnn/internal/tensor"
)

// Plan partitioning: the compile-time half of compute/communication
// overlap. A per-rank plan normally runs only after the full feature
// allgather has landed, putting the whole Θ(nk) collective on the critical
// path. But most rows of the rank's block depend only on feature rows that
// are already resident (the rank's own chunk) or arrive early in the ring:
// Partition splits every row-divisible op of the forward op list by
// row-dependency footprint into per-arrival-step fragments, so the engine
// can run step t's fragments the moment chunk t lands — local work first,
// halo-dependent rows draining as their inputs arrive.
//
// Correctness: every op's `each` body executes the exact per-row arithmetic
// of its sequential sweep, rows are mutually independent within an op, and
// fragments preserve the plan's topological op order within each step.
// A row is assigned to the step at which the *last* of its dependencies
// becomes available, so no fragment reads a feature row before its chunk
// has landed. Partitioned execution is therefore bitwise-identical to
// Plan.Forward (the differential tests in internal/distgnn pin this down).

// RowRange is a half-open [Lo, Hi) interval of global input (feature) rows.
type RowRange struct{ Lo, Hi int }

// Len returns the number of rows in the range.
func (r RowRange) Len() int { return r.Hi - r.Lo }

// PartitionedPlan is a compiled plan re-grouped into arrival-gated steps.
// Bind the input once, then call RunStep(t) after the t-th chunk of the
// collective has landed; after the last step the plan's output buffer holds
// exactly what Plan.Forward would have produced.
type PartitionedPlan struct {
	p     *Plan
	steps [][]ppFrag // steps[t]: op fragments, plan topological order

	// accNs accumulates each op's fragment wall time (indexed like p.fwd)
	// across the steps of one execution; the final step flushes the sums
	// into the op instruments, so an overlapped execution accounts exactly
	// like an unfragmented Plan.Forward.
	accNs []int64

	patRows   int // total pattern (block) rows
	localRows int // pattern rows executable at step 0
}

// ppFrag is one op's row fragment for one arrival step.
type ppFrag struct {
	idx int // index into p.fwd, for the per-op time accumulator
	run func()
}

// Partition splits the plan's forward op list by row-dependency footprint.
// avail[t] is the range of global input rows that becomes readable once
// step t's chunk has landed; avail[0] is the rank-resident chunk. The
// ranges must disjointly cover [0, inputRows).
//
// Two row domains exist in a per-rank plan: *global-domain* ops sweep the
// full input height (e.g. the H·W projection) and are simply re-ranged to
// avail[t] at step t; *pattern-domain* ops sweep the rank's block rows and
// are bucketed by the latest-arriving row they read — the row's own global
// index (score closures read the row side) joined with its adjacency
// column set. An error is returned when any forward op is row-indivisible
// (e.g. semiring aggregation); callers fall back to the sequential path.
func (p *Plan) Partition(avail []RowRange) (*PartitionedPlan, error) {
	if p.released {
		return nil, fmt.Errorf("fuse: Partition on a released plan")
	}
	if p.f32 != nil {
		return nil, fmt.Errorf("fuse: Partition requires an f64 plan (f32 plans cast at the Forward boundary and cannot rebind arrival fragments)")
	}
	if len(avail) == 0 {
		return nil, fmt.Errorf("fuse: Partition needs at least one arrival step")
	}
	n := p.input.rows
	pat := p.pat
	if pat.Cols != n {
		return nil, fmt.Errorf("fuse: pattern cols %d != input rows %d; cannot map columns to arrival steps", pat.Cols, n)
	}

	stepOf := make([]int32, n)
	for i := range stepOf {
		stepOf[i] = -1
	}
	for t, r := range avail {
		if r.Lo < 0 || r.Hi > n || r.Lo > r.Hi {
			return nil, fmt.Errorf("fuse: arrival range %d [%d,%d) out of bounds [0,%d)", t, r.Lo, r.Hi, n)
		}
		for i := r.Lo; i < r.Hi; i++ {
			if stepOf[i] != -1 {
				return nil, fmt.Errorf("fuse: input row %d in two arrival ranges", i)
			}
			stepOf[i] = int32(t)
		}
	}
	for i, s := range stepOf {
		if s == -1 {
			return nil, fmt.Errorf("fuse: input row %d not covered by any arrival range", i)
		}
	}

	for i := range p.fwd {
		op := &p.fwd[i]
		if op.each == nil {
			return nil, fmt.Errorf("fuse: plan %q: op %q (%s) is row-indivisible", p.Name, op.op, op.span)
		}
		if op.rows != pat.Rows && op.rows != n {
			return nil, fmt.Errorf("fuse: plan %q: op %q sweeps %d rows — neither pattern (%d) nor input (%d) domain",
				p.Name, op.op, op.rows, pat.Rows, n)
		}
	}

	// Bucket pattern rows by the arrival step of their latest dependency.
	// The bucket is shared by every pattern-domain op: it joins everything
	// any of them can read for row i (the row's own global index, for the
	// score closures' row side, plus the adjacency column set).
	rowStep := make([]int32, pat.Rows)
	buckets := make([][]int32, len(avail))
	for i := 0; i < pat.Rows; i++ {
		st := stepOf[i+p.rowOff]
		for q := pat.RowPtr[i]; q < pat.RowPtr[i+1]; q++ {
			if s := stepOf[pat.Col[q]]; s > st {
				st = s
			}
		}
		rowStep[i] = st
		buckets[st] = append(buckets[st], int32(i))
	}

	pp := &PartitionedPlan{
		p:         p,
		steps:     make([][]ppFrag, len(avail)),
		accNs:     make([]int64, len(p.fwd)),
		patRows:   pat.Rows,
		localRows: len(buckets[0]),
	}
	for t := range avail {
		for i := range p.fwd {
			op := &p.fwd[i]
			var frag func()
			if op.rows == pat.Rows { // pattern domain (conservative when equal to n)
				if list := buckets[t]; len(list) > 0 {
					frag = listRun(list, op.each)
				}
			} else if r := avail[t]; r.Len() > 0 { // global domain: re-range to the chunk
				frag = rangeRun(r.Lo, r.Hi, op.each)
			}
			if frag != nil {
				pp.steps[t] = append(pp.steps[t], ppFrag{idx: i, run: frag})
			}
		}
	}
	return pp, nil
}

// listRun builds a prebuilt parallel sweep of each over an explicit row
// list. Closures are created here, once, so RunStep allocates nothing.
func listRun(list []int32, each func(i int)) func() {
	body := func(_, lo, hi int) {
		for x := lo; x < hi; x++ {
			each(int(list[x]))
		}
	}
	return func() { par.Range(len(list), body) }
}

// rangeRun builds a prebuilt parallel sweep of each over [lo, hi).
func rangeRun(lo, hi int, each func(i int)) func() {
	n := hi - lo
	body := func(_, l, h int) {
		for i := l + lo; i < h+lo; i++ {
			each(i)
		}
	}
	return func() { par.Range(n, body) }
}

// Steps returns the number of arrival steps.
func (pp *PartitionedPlan) Steps() int { return len(pp.steps) }

// LocalFraction reports the fraction of the rank's block rows executable at
// step 0 — the compute the overlap can hide behind the collective.
func (pp *PartitionedPlan) LocalFraction() float64 {
	if pp.patRows == 0 {
		return 0
	}
	return float64(pp.localRows) / float64(pp.patRows)
}

// Bind attaches the input feature matrix for the coming stepped execution.
// Rows beyond avail[0] may still be unfilled: RunStep(t) only reads rows
// whose chunks the caller has declared landed.
func (pp *PartitionedPlan) Bind(h *tensor.Dense) {
	p := pp.p
	if p.released {
		panic("fuse: Bind on a released plan")
	}
	if h.Rows != p.input.rows || h.Cols != p.input.cols {
		panic(fmt.Sprintf("fuse: plan %q input shape %d×%d, got %d×%d",
			p.Name, p.input.rows, p.input.cols, h.Rows, h.Cols))
	}
	p.input.dense = h
}

// RunStep executes step t's op fragments (plan topological order inside the
// step). Call only after the rows of avail[t] are present in the bound
// input. Individual fragment latencies are never observed — a partial sweep
// would skew the per-op histograms — but each op's fragment times are
// accumulated and flushed as one whole-sweep observation (plus the static
// roofline bytes/flops and a flight span) when the final step completes, so
// overlapped executions account exactly like Plan.Forward.
func (pp *PartitionedPlan) RunStep(t int) {
	for _, f := range pp.steps[t] {
		t0 := time.Now()
		f.run()
		pp.accNs[f.idx] += time.Since(t0).Nanoseconds()
	}
	if t == len(pp.steps)-1 {
		pp.flush()
		pp.p.ranForward = true
	}
}

// flush credits one full stepped execution to the plan's op instruments.
// Atomics only — no allocations on the overlap critical path.
func (pp *PartitionedPlan) flush() {
	for i := range pp.p.fwd {
		op := &pp.p.fwd[i]
		ns := pp.accNs[i]
		pp.accNs[i] = 0
		op.lat.Observe(float64(ns) / 1e9)
		op.ops.Inc()
		op.flopsC.Add(op.flops)
		op.bytesC.Add(op.bytes)
		metrics.PlanFlopsTotal.Add(op.flops)
		metrics.PlanBytesTotal.Add(op.bytes)
		metrics.PlanNNZTotal.Add(op.nnz)
		op.lane.Record(flight.KindSpan, op.fcode, ns, op.bytes, op.flops)
	}
}

// Output returns the plan's output buffer — valid after the last step has
// run, owned by the plan and overwritten by the next execution.
func (pp *PartitionedPlan) Output() *tensor.Dense { return pp.p.output.dense }
