package fuse

// Prebuilt execution DAGs of the three A-GNN forward and backward passes,
// mirroring Figure 5 of the paper. The tests run Analyze over them and
// check that the derived fusion groups coincide with the kernels
// implemented by hand in internal/kernels and internal/gnn.

// VAForward builds the VA forward DAG: Ψ = A ⊙ (H·Hᵀ), Z = Ψ·(H·W).
func VAForward() *DAG {
	d := NewDAG("va-forward")
	a := d.Input("A", Sparse)
	h := d.Input("H", Dense)
	w := d.Input("W", Param)
	hht := d.Add("HHt", "mmt", Virtual, h, h) // n×n virtual
	psi := d.Add("Psi", "mask", Sparse, a, hht)
	hw := d.Add("HW", "mm", Dense, h, w)
	z := d.Add("Z", "spmm", Dense, psi, hw)
	d.Add("Hout", "sigma", Dense, z)
	return d
}

// AGNNForward builds the AGNN forward DAG: Ψ = sm(β·(A ⊙ H·Hᵀ) ⊘ n·nᵀ).
func AGNNForward() *DAG {
	d := NewDAG("agnn-forward")
	a := d.Input("A", Sparse)
	h := d.Input("H", Dense)
	w := d.Input("W", Param)
	beta := d.Input("beta", Param)
	norms := d.Add("n", "rownorm", Vector, h)
	hht := d.Add("HHt", "mmt", Virtual, h, h)
	nnt := d.Add("nnT", "outer", Virtual, norms, norms)
	cos := d.Add("C", "divide", Virtual, hht, nnt)
	scaled := d.Add("betaC", "scale", Virtual, cos, beta)
	masked := d.Add("S", "mask", Sparse, a, scaled)
	psi := d.Add("Psi", "softmax", Sparse, masked)
	hw := d.Add("HW", "mm", Dense, h, w)
	z := d.Add("Z", "spmm", Dense, psi, hw)
	d.Add("Hout", "sigma", Dense, z)
	return d
}

// GATForward builds the GAT forward DAG of Figure 2: C = u·1ᵀ + 1·vᵀ,
// Ψ = sm(A ⊙ LeakyReLU(C)), Z = Ψ·H'.
func GATForward() *DAG {
	d := NewDAG("gat-forward")
	a := d.Input("A", Sparse)
	h := d.Input("H", Dense)
	w := d.Input("W", Param)
	a1 := d.Input("a1", Param)
	a2 := d.Input("a2", Param)
	hp := d.Add("Hp", "mm", Dense, h, w)
	u := d.Add("u", "matvec", Vector, hp, a1)
	v := d.Add("v", "matvec", Vector, hp, a2)
	repU := d.Add("u1T", "rep", Virtual, u)
	repV := d.Add("1vT", "repT", Virtual, v)
	c := d.Add("C", "add", Virtual, repU, repV)
	lr := d.Add("lreluC", "lrelu", Virtual, c)
	e := d.Add("E", "mask", Sparse, a, lr)
	psi := d.Add("Psi", "softmax", Sparse, e)
	z := d.Add("Z", "spmm", Dense, psi, hp)
	d.Add("Hout", "sigma", Dense, z)
	return d
}

// VABackward builds the VA backward DAG (Eq. 11–13): M = G·Wᵀ,
// N = A ⊙ (M·Hᵀ), Γ = N₊·H + Ψᵀ·M, Y = Hᵀ·Ψᵀ·G.
func VABackward() *DAG {
	d := NewDAG("va-backward")
	a := d.Input("A", Sparse)
	h := d.Input("H", Dense)
	w := d.Input("W", Param)
	g := d.Input("G", Dense)
	psiT := d.Input("PsiT", Sparse) // cached from forward, transposed
	m := d.Add("M", "mm", Dense, g, w)
	mht := d.Add("MHt", "mmt", Virtual, m, h)
	nmat := d.Add("N", "mask", Sparse, a, mht)
	nplus := d.Add("Nplus", "add-transpose", Sparse, nmat)
	t1 := d.Add("NplusH", "spmm", Dense, nplus, h)
	t2 := d.Add("PsiTM", "spmm", Dense, psiT, m)
	gamma := d.Add("Gamma", "add", Dense, t1, t2)
	d.Add("Gprev", "sigma-vjp", Dense, gamma)
	d.Add("Y", "mspmm", Param, h, psiT, g)
	return d
}

// GATBackward builds the GAT backward DAG: the softmax VJP feeds the
// virtual LeakyReLU-derivative mask (re-evaluating C = u·1ᵀ + 1·vᵀ), whose
// row/column sums produce ū and v̄.
func GATBackward() *DAG {
	d := NewDAG("gat-backward")
	a := d.Input("A", Sparse)
	hp := d.Input("Hp", Dense)
	g := d.Input("G", Dense)
	psi := d.Input("Psi", Sparse)
	u := d.Input("u", Vector)
	v := d.Input("v", Vector)
	ghpT := d.Add("GHpT", "mmt", Virtual, g, hp)
	psiBar := d.Add("PsiBar", "mask", Sparse, a, ghpT)
	eBar := d.Add("EBar", "softmax-vjp", Sparse, psi, psiBar)
	// lrelu'(C) is itself virtual (re-evaluated from u, v per non-zero).
	repU := d.Add("u1T", "rep", Virtual, u)
	repV := d.Add("1vT", "repT", Virtual, v)
	c := d.Add("C", "add", Virtual, repU, repV)
	dmask := d.Add("lreluPrimeC", "lrelu-deriv", Virtual, c)
	cBar := d.Add("CBar", "mask", Sparse, eBar, dmask)
	d.Add("uBar", "rowsum", Vector, cBar)
	d.Add("vBar", "colsum", Vector, cBar)
	psiT := d.Add("PsiT", "transpose", Sparse, psi)
	d.Add("HpBar", "spmm", Dense, psiT, g)
	return d
}
