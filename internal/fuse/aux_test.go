package fuse_test

import (
	"math/rand"
	"testing"

	"agnn/internal/fuse"
	"agnn/internal/tensor"
)

// buildTwoSided builds the 2D grid engines' VA block graph: scores read the
// primary input on the rows and the auxiliary input on the columns,
// Ψ = A ⊙ (Hrow·Hcolᵀ), Z = Ψ·(Hcol·W).
func buildTwoSided(t *testing.T, k, out int, w fuse.ParamRef) *fuse.Graph {
	t.Helper()
	a := weightedGraph(24, 140, 77)
	g := fuse.NewGraph("two-sided", a)
	hRow := g.InputDense("HRow", a.Rows, k)
	hCol := g.InputDenseAux("HCol", a.Rows, k)
	wn := g.ParamNode("W", w)
	psi := g.Mask("Psi", g.DotScores("HHt", hRow, hCol), true)
	g.SetOutput(g.SpMM("Z", psi, g.MM("HW", hCol, wn)))
	return g
}

// TestAuxDenseInput checks that a plan with an auxiliary dense input
// reproduces the reference two-sided computation exactly, and that
// rebinding the aux input takes effect on the next Forward.
func TestAuxDenseInput(t *testing.T) {
	const k, out = 5, 4
	rng := rand.New(rand.NewSource(78))
	w := randParam(rng, "W", k, out)
	g := buildTwoSided(t, k, out, w)
	a := weightedGraph(24, 140, 77)
	p, err := g.Compile(fuse.Options{})
	if err != nil {
		t.Fatal(err)
	}

	hRow := randDense(rng, 24, k)
	for trial := 0; trial < 2; trial++ { // second trial rebinds a new HCol
		hCol := randDense(rng, 24, k)
		p.BindDense("HCol", hCol)
		got := p.Forward(hRow)

		hw := tensor.MM(hCol, w.Value)
		want := tensor.NewDense(24, out)
		for i := 0; i < a.Rows; i++ {
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				j := a.Col[q]
				dot := 0.0
				for c := 0; c < k; c++ {
					dot += hRow.Row(i)[c] * hCol.Row(int(j))[c]
				}
				psi := a.Val[q] * dot
				for c := 0; c < out; c++ {
					want.Row(i)[c] += psi * hw.Row(int(j))[c]
				}
			}
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d: word %d: got %v want %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestAuxDenseInputTrainRejected: auxiliary inputs are inference-only.
func TestAuxDenseInputTrainRejected(t *testing.T) {
	const k, out = 5, 4
	rng := rand.New(rand.NewSource(79))
	w := randParam(rng, "W", k, out)
	g := buildTwoSided(t, k, out, w)
	if _, err := g.Compile(fuse.Options{Train: true}); err == nil {
		t.Fatal("Compile(Train) accepted a graph with auxiliary inputs")
	}
}

// TestBindDensePanics: unknown ids and shape mismatches are programming
// errors and must panic.
func TestBindDensePanics(t *testing.T) {
	const k, out = 5, 4
	rng := rand.New(rand.NewSource(80))
	w := randParam(rng, "W", k, out)
	p := buildTwoSided(t, k, out, w).MustCompile(fuse.Options{})
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("unknown id", func() { p.BindDense("nope", randDense(rng, 24, k)) })
	mustPanic("bad shape", func() { p.BindDense("HCol", randDense(rng, 24, k+1)) })
}
