package fuse

import (
	"fmt"
	"sort"
	"time"

	"agnn/internal/obs"
	"agnn/internal/obs/flight"
	"agnn/internal/obs/metrics"
	"agnn/internal/par"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// Options configures plan compilation.
type Options struct {
	// Train derives the backward pass by reverse traversal of the op list
	// and allocates cotangent buffers for every node. Inference plans skip
	// both.
	Train bool
	// SpanPrefix prefixes the obs span emitted around every executed op,
	// e.g. "va.l0." → spans "va.l0.Psi", "va.l0.Psi.bwd".
	SpanPrefix string
	// Workspace is the buffer arena the plan acquires its intermediates
	// from. Sharing one arena across recompilations (adjacency rebinds)
	// recycles the old plan's buffers. Nil allocates a private arena.
	Workspace *tensor.Arena
	// DType selects the element width of the compiled kernels. F64 (the
	// zero value) is the default double-precision path, bitwise-identical
	// to the pre-dtype runtime. F32 compiles the plan against float32
	// buffers and kernels: inputs, parameters and cotangents are cast at
	// the plan boundary, parameter gradients are flushed back into the
	// float64 Grad accumulators after each backward pass.
	DType tensor.DType
	// NoAttnFuse disables the fused SDDMM+softmax+SpMM attention rule.
	// The fused op executes score sampling, normalization and aggregation
	// in one sweep per row block and is therefore row-indivisible; callers
	// that partition plans into arrival-gated fragments (the overlapped
	// RowEngine) must keep the unfused op sequence.
	NoAttnFuse bool
}

// PlanStats describes a compiled plan: the audit trail connecting the
// runtime back to the Section 6.2 analysis, and the measured op counts the
// cost model consumes instead of closed-form guesses.
type PlanStats struct {
	ForwardOps     int            // kernels launched per forward step
	BackwardOps    int            // kernels launched per backward step
	FusedVirtual   int            // virtual nodes folded into samplers
	SoftmaxFused   int            // mask→softmax pairs peephole-fused beyond the paper's rule
	AttnFused      int            // score→softmax→aggregate chains fused into single sweeps
	Groups         []string       // fusion groups, Analyze formatting
	OpCounts       map[string]int // forward op vocabulary histogram
	WorkspaceWords int64          // elements of workspace held by the plan (width per DType)
	DType          tensor.DType   // element width the plan was compiled for
	ForwardFlops   int64          // estimated flops per forward step (opCost sums)
	ForwardBytes   int64          // estimated bytes moved per forward step (opBytes sums)
	BackwardFlops  int64          // estimated flops per backward step
	BackwardBytes  int64          // estimated bytes moved per backward step
}

// WorkspaceBytes returns the plan's held workspace in bytes, at the
// element width the plan was compiled for.
func (s PlanStats) WorkspaceBytes() int64 { return s.DType.Size() * s.WorkspaceWords }

// Plan is a compiled, reusable executable form of a Graph: an ordered op
// list over preallocated buffers. Forward binds the input feature matrix
// and runs the op list; Backward (training plans) runs the reverse-derived
// VJP list and returns the input cotangent. All returned tensors are owned
// by the plan and are overwritten by the next step.
type Plan struct {
	Name   string
	train  bool
	rowOff int

	pat           *sparse.CSR // the sparsity pattern every sparse op runs over
	input, output *spec
	aux           map[string]*spec // additional dense inputs, bound via BindDense
	fwd, bwd      []planOp

	zeroDense []*tensor.Dense // cotangent buffers zeroed before each backward
	zeroVecs  [][]float64

	denseBufs []*tensor.Dense // everything acquired from the workspace,
	floatBufs [][]float64     // for Release

	f32 *planF32 // float32 execution state (DType == F32 plans only)

	ws    *tensor.Arena
	stats PlanStats

	ranForward bool
	released   bool
}

// Compile lowers the graph into an executable plan: it runs the Section 6.2
// fusion analysis, fuses mask→softmax pairs into single sampling sweeps (a
// peephole beyond the paper's rule, matching the hand-written
// FusedSoftmaxScores kernel), allocates every intermediate once from the
// workspace arena, composes the virtual score closures, and emits the
// forward op list plus — for training plans — the reverse-traversal
// backward op list.
func (g *Graph) Compile(opt Options) (*Plan, error) {
	if g.output == nil {
		return nil, fmt.Errorf("fuse: graph %q has no output", g.Name)
	}
	if g.input == nil {
		return nil, fmt.Errorf("fuse: graph %q has no dense input", g.Name)
	}
	if opt.DType == tensor.F32 {
		return g.compile32(opt)
	}
	if opt.Train && g.rowOff != 0 {
		return nil, fmt.Errorf("fuse: graph %q: row-offset plans are inference-only", g.Name)
	}
	if opt.Train && len(g.aux) > 0 {
		return nil, fmt.Errorf("fuse: graph %q: auxiliary dense inputs are inference-only", g.Name)
	}
	cons := g.dag.consumers()
	if opt.Train {
		for _, n := range g.dag.Nodes() {
			if n == g.adj || (n.Kind != Sparse && n.Kind != Virtual) {
				continue
			}
			if len(cons[n]) > 1 {
				return nil, fmt.Errorf("fuse: graph %q: %s node %q has %d consumers; training plans require single-consumer sparse/virtual nodes",
					g.Name, n.Kind, n.ID, len(cons[n]))
			}
		}
		for _, n := range g.dag.Nodes() {
			switch n.Op {
			case "spmm-max", "spmm-min", "spmm-mean":
				return nil, fmt.Errorf("fuse: graph %q: semiring aggregation %q is inference-only", g.Name, n.ID)
			}
		}
	}

	groups := Analyze(g.dag) // panics if a virtual escapes — a builder bug

	// Peephole: a softmax whose only producer chain is a single-consumer
	// mask compiles to one fused sampling sweep; the mask's value buffer is
	// never materialized (its cotangent still is, for training).
	fusedMask := make(map[*Node]bool)
	for _, n := range g.dag.Nodes() {
		if n.Op == "softmax" {
			if in := n.Inputs[0]; in.Op == "mask" && len(cons[in]) == 1 {
				fusedMask[in] = true
			}
		}
	}

	// Attention-fusion rule: an spmm whose sparse operand is a
	// single-consumer softmax over a fused mask (score→softmax→aggregate,
	// the GAT/AGNN shape) or a single-consumer mask directly (score→
	// aggregate, the VA shape) compiles to ONE sweep per row block that
	// samples the composed scores, normalizes and aggregates while the row
	// is hot. Training plans still write the normalized scores into the
	// sparse node's value buffer inside the same sweep, so the derived
	// backward pass is unchanged; inference plans never materialize a
	// per-edge score tensor at all. Per-row arithmetic order matches the
	// unfused sample-then-spmm sequence exactly, so fused plans are
	// bitwise-identical to unfused ones.
	attnAgg, attnSrc := attnFusion(g, cons, fusedMask, opt.NoAttnFuse)

	ws := opt.Workspace
	if ws == nil {
		ws = tensor.NewArena()
	}
	p := &Plan{Name: g.Name, train: opt.Train, rowOff: g.rowOff, pat: g.pat,
		input: g.sp(g.input), output: g.sp(g.output), ws: ws}
	auxSet := make(map[*Node]bool, len(g.aux))
	if len(g.aux) > 0 {
		p.aux = make(map[string]*spec, len(g.aux))
		for _, n := range g.aux {
			auxSet[n] = true
			p.aux[n.ID] = g.sp(n)
		}
	}

	var words int64
	dense := func(r, c int) *tensor.Dense {
		m := ws.AcquireDense(r, c)
		p.denseBufs = append(p.denseBufs, m)
		words += int64(r) * int64(c)
		return m
	}
	floats := func(n int) []float64 {
		s := ws.AcquireFloats(n)
		p.floatBufs = append(p.floatBufs, s)
		words += int64(n)
		return s
	}

	pat := g.pat
	nnz := pat.NNZ()
	// The nnz-balanced chunk boundaries every sparse sweep uses, computed
	// once per pattern here so steady-state ops pay zero scan cost.
	cuts := par.NewCuts(pat.Rows, nnzWeight(pat))

	// Allocate buffers and compose virtual score closures, in topological
	// (insertion) order so every node's inputs are ready.
	for _, n := range g.dag.Nodes() {
		s := g.sp(n)
		switch {
		case n == g.adj:
			// pattern view already set
		case n == g.input:
			if opt.Train {
				s.gdense = dense(s.rows, s.cols)
				p.zeroDense = append(p.zeroDense, s.gdense)
			}
		case auxSet[n]:
			// dense bound per execution via BindDense; no buffer
		case s.hasParam:
			// dense aliases the parameter value; gradients go to param.Grad
		case n.Kind == Virtual:
			s.score = composeScore(g, n)
			if opt.Train {
				s.gvals = floats(nnz)
			}
		case n.Kind == Sparse:
			// Attention-fused sparse nodes materialize values only for
			// training (the backward pass reads them); inference keeps the
			// scores in per-row scratch inside the fused sweep.
			if !fusedMask[n] && !(attnSrc[n] && !opt.Train) {
				s.vals = floats(nnz)
				s.view = pat.WithValues(s.vals)
			}
			if opt.Train {
				s.gvals = floats(nnz)
			}
		case n.Kind == Vector:
			s.vec = floats(s.rows)
			if opt.Train {
				s.gvec = floats(s.rows)
				p.zeroVecs = append(p.zeroVecs, s.gvec)
			}
		default: // dense compute node
			s.dense = dense(s.rows, s.cols)
			if opt.Train {
				s.gdense = dense(s.rows, s.cols)
				p.zeroDense = append(p.zeroDense, s.gdense)
			}
		}
	}

	// Shared transpose machinery for the backward pass: Sᵀ·X products run
	// over the transposed pattern, permuting the sparse node's current
	// values into a shared scratch. The adjacency transpose carries A's own
	// values, so adjacency SpMM backward needs no permutation.
	var patT *sparse.CSR
	var cutsT *par.Cuts
	var perm []int64
	var tvals []float64
	if opt.Train {
		patT = pat.Transpose()
		cutsT = par.NewCuts(patT.Rows, nnzWeight(patT))
		perm = pat.TransposePerm()
		tvals = floats(nnz)
	}

	rowOff := int32(g.rowOff)
	lane := flight.Process()
	emit := func(list *[]planOp, n *Node, suffix, op string, f opFns) {
		backward := suffix != ""
		flops, swept := opCost(g, n, op, nnz, backward)
		span := opt.SpanPrefix + n.ID + suffix
		*list = append(*list, planOp{
			span:   span,
			op:     op,
			run:    f.run,
			each:   f.each,
			rows:   f.rows,
			lat:    metrics.PlanOpSeconds.With(op),
			ops:    metrics.PlanOpsTotal.With(op),
			flopsC: metrics.OpFlopsTotal.With(op),
			bytesC: metrics.OpBytesTotal.With(op),
			lane:   lane,
			fcode:  flight.Code(span),
			flops:  flops,
			bytes:  opBytes(g, n, op, nnz, backward, 8),
			nnz:    swept,
		})
	}
	bare := func(run func()) opFns { return opFns{run: run} }

	// Forward op list, in topological order. Virtual nodes and fused masks
	// emit nothing — they live inside their sampler's sweep.
	for _, n := range g.dag.Nodes() {
		s := g.sp(n)
		switch n.Op {
		case "input":
			continue
		case "mask":
			if fusedMask[n] || attnSrc[n] {
				continue
			}
			virt := g.sp(n.Inputs[1])
			emit(&p.fwd, n, "", "mask",
				opSample(pat, cuts, s.vals, virt.score, maskWeights(pat, s), rowOff, false))
		case "softmax":
			if attnSrc[n] {
				continue
			}
			in := n.Inputs[0]
			if fusedMask[in] {
				m := g.sp(in)
				virt := g.sp(in.Inputs[1])
				emit(&p.fwd, n, "", "fused-softmax",
					opSample(pat, cuts, s.vals, virt.score, maskWeights(pat, m), rowOff, true))
			} else {
				emit(&p.fwd, n, "", "softmax", opRowSoftmax(pat, cuts, g.sp(in).vals, s.vals))
			}
		case "spmm":
			if src, ok := attnAgg[n]; ok {
				maskN := src
				softmax := false
				if src.Op == "softmax" {
					maskN = src.Inputs[0]
					softmax = true
				}
				m := g.sp(maskN)
				virt := g.sp(maskN.Inputs[1])
				emit(&p.fwd, n, "", "fused-attn",
					opAttnFused(pat, cuts, g.sp(src).vals, virt.score, maskWeights(pat, m),
						rowOff, softmax, g.sp(n.Inputs[1]), s))
				continue
			}
			sv := g.sp(n.Inputs[0]).view
			emit(&p.fwd, n, "", "spmm", opSpMM(sv, cuts, g.sp(n.Inputs[1]), s))
		case "spmm-max", "spmm-min", "spmm-mean":
			sv := g.sp(n.Inputs[0]).view
			emit(&p.fwd, n, "", n.Op, opSemiring(sv, g.sp(n.Inputs[1]), s, s.agg))
		case "mm":
			emit(&p.fwd, n, "", "mm", opMM(g.sp(n.Inputs[0]), g.sp(n.Inputs[1]), s))
		case "matvec":
			emit(&p.fwd, n, "", "matvec", opMatVec(g.sp(n.Inputs[0]), g.sp(n.Inputs[1]), s))
		case "rownorm":
			emit(&p.fwd, n, "", "rownorm", opRowNorms(g.sp(n.Inputs[0]), s))
		case "sigma":
			emit(&p.fwd, n, "", "sigma", opSigma(g.sp(n.Inputs[0]), s, s.act.F))
		case "gin-combine":
			emit(&p.fwd, n, "", "gin-combine",
				opGINCombine(g.sp(n.Inputs[0]), g.sp(n.Inputs[1]), g.sp(n.Inputs[2]), s))
		default:
			if n.Kind == Virtual {
				continue
			}
			return nil, fmt.Errorf("fuse: graph %q: no executable lowering for op %q (node %q)", g.Name, n.Op, n.ID)
		}
	}

	// Backward op list: reverse traversal of the same node order. Dense and
	// vector cotangents accumulate (+=) into zeroed buffers; sparse and
	// virtual cotangents are overwritten by their single consumer.
	if opt.Train {
		nodes := g.dag.Nodes()
		for idx := len(nodes) - 1; idx >= 0; idx-- {
			n := nodes[idx]
			s := g.sp(n)
			switch n.Op {
			case "input":
				continue
			case "sigma":
				emit(&p.bwd, n, ".bwd", "sigma",
					bare(opSigmaVJP(g.sp(n.Inputs[0]), s, s.act.DF)))
			case "mm":
				emit(&p.bwd, n, ".bwd", "mm",
					bare(opMMVJP(g.sp(n.Inputs[0]), g.sp(n.Inputs[1]), s, &partialsScratch{})))
			case "matvec":
				emit(&p.bwd, n, ".bwd", "matvec",
					bare(opMatVecVJP(g.sp(n.Inputs[0]), g.sp(n.Inputs[1]), s)))
			case "rownorm":
				emit(&p.bwd, n, ".bwd", "rownorm", bare(opRowNormsVJP(g.sp(n.Inputs[0]), s)))
			case "gin-combine":
				emit(&p.bwd, n, ".bwd", "gin-combine",
					bare(opGINCombineVJP(g.sp(n.Inputs[0]), g.sp(n.Inputs[1]), g.sp(n.Inputs[2]), s, &redScratch{})))
			case "spmm":
				sam := g.sp(n.Inputs[0])
				x := g.sp(n.Inputs[1])
				if n.Inputs[0] == g.adj {
					emit(&p.bwd, n, ".bwd", "spmm",
						bare(opSpMMVJP(pat, patT, cuts, cutsT, nil, nil, perm, tvals, x, s)))
				} else {
					emit(&p.bwd, n, ".bwd", "spmm",
						bare(opSpMMVJP(pat, patT, cuts, cutsT, sam.vals, sam.gvals, perm, tvals, x, s)))
				}
			case "softmax":
				in := g.sp(n.Inputs[0])
				emit(&p.bwd, n, ".bwd", "softmax",
					bare(opSoftmaxVJP(pat, cuts, s.vals, s.gvals, in.gvals)))
			case "mask":
				virt := g.sp(n.Inputs[1])
				emit(&p.bwd, n, ".bwd", "mask", bare(opMaskVJP(s.gvals, virt.gvals, maskWeights(pat, s))))
			case "mmt":
				emit(&p.bwd, n, ".bwd", "mmt",
					bare(opDotVJP(pat, patT, cuts, cutsT, s.gvals, perm, tvals, g.sp(n.Inputs[0]), g.sp(n.Inputs[1]))))
			case "outer":
				emit(&p.bwd, n, ".bwd", "outer",
					bare(opOuterVJP(pat, patT, cuts, cutsT, s.gvals, perm, tvals, g.sp(n.Inputs[0]), g.sp(n.Inputs[1]))))
			case "divide":
				emit(&p.bwd, n, ".bwd", "divide",
					bare(opDivVJP(pat, cuts, s.gvals, g.sp(n.Inputs[0]), g.sp(n.Inputs[1]))))
			case "scale":
				emit(&p.bwd, n, ".bwd", "scale",
					bare(opScaleVJP(pat, cuts, s.gvals, g.sp(n.Inputs[0]), g.sp(n.Inputs[1]).param, &redScratch{})))
			case "rep":
				emit(&p.bwd, n, ".bwd", "rep", bare(opRepVJP(pat, cuts, s.gvals, g.sp(n.Inputs[0]))))
			case "repT":
				emit(&p.bwd, n, ".bwd", "repT",
					bare(opRepTVJP(patT, cutsT, s.gvals, perm, tvals, g.sp(n.Inputs[0]))))
			case "add":
				emit(&p.bwd, n, ".bwd", "add",
					bare(opAddVJP(s.gvals, g.sp(n.Inputs[0]), g.sp(n.Inputs[1]))))
			case "lrelu":
				emit(&p.bwd, n, ".bwd", "lrelu",
					bare(opLReLUVJP(pat, cuts, s.gvals, g.sp(n.Inputs[0]), s.slope)))
			default:
				return nil, fmt.Errorf("fuse: graph %q: no VJP for op %q (node %q)", g.Name, n.Op, n.ID)
			}
		}
	}

	p.stats = PlanStats{
		ForwardOps:     len(p.fwd),
		BackwardOps:    len(p.bwd),
		SoftmaxFused:   len(fusedMask),
		AttnFused:      len(attnAgg),
		OpCounts:       make(map[string]int),
		WorkspaceWords: words,
	}
	for _, grp := range groups {
		p.stats.FusedVirtual += len(grp.Virtual)
		p.stats.Groups = append(p.stats.Groups, grp.String())
	}
	for _, op := range p.fwd {
		p.stats.OpCounts[op.op]++
		p.stats.ForwardFlops += op.flops
		p.stats.ForwardBytes += op.bytes
	}
	for _, op := range p.bwd {
		p.stats.BackwardFlops += op.flops
		p.stats.BackwardBytes += op.bytes
	}
	return p, nil
}

// MustCompile is Compile panicking on error — for the layer constructors,
// whose graphs are built by the library itself.
func (g *Graph) MustCompile(opt Options) *Plan {
	p, err := g.Compile(opt)
	if err != nil {
		panic(err)
	}
	return p
}

func maskWeights(pat *sparse.CSR, mask *spec) []float64 {
	if mask.weighted {
		return pat.Val
	}
	return nil
}

// attnFusion finds the spmm nodes the attention-fusion rule applies to:
// those whose sparse operand is a single-consumer softmax over a
// peephole-fused mask, or a single-consumer mask directly. It returns the
// spmm→folded-sparse-node map and the set of folded sparse nodes (which
// emit no standalone forward op).
func attnFusion(g *Graph, cons map[*Node][]*Node, fusedMask map[*Node]bool, disabled bool) (map[*Node]*Node, map[*Node]bool) {
	agg := make(map[*Node]*Node)
	src := make(map[*Node]bool)
	if disabled {
		return agg, src
	}
	for _, n := range g.dag.Nodes() {
		if n.Op != "spmm" {
			continue
		}
		in := n.Inputs[0]
		if in == g.adj || len(cons[in]) != 1 {
			continue
		}
		switch in.Op {
		case "softmax":
			if m := in.Inputs[0]; m.Op == "mask" && fusedMask[m] {
				agg[n], src[in] = in, true
			}
		case "mask":
			agg[n], src[in] = in, true
		}
	}
	return agg, src
}

// composeScore builds the closure evaluating one entry of a virtual node by
// composing its inputs' evaluators — the runtime realization of "evaluate
// the virtual values on the fly inside the sampler's sweep".
func composeScore(g *Graph, n *Node) ScoreFunc {
	switch n.Op {
	case "mmt":
		xs, ys := g.sp(n.Inputs[0]), g.sp(n.Inputs[1])
		return func(i, j int32) float64 {
			xd, yd := xs.dense, ys.dense
			k := xd.Cols
			xrow := xd.Data[int(i)*k : int(i)*k+k]
			yrow := yd.Data[int(j)*k : int(j)*k+k]
			acc := 0.0
			for t, v := range xrow {
				acc += v * yrow[t]
			}
			return acc
		}
	case "outer":
		as, bs := g.sp(n.Inputs[0]), g.sp(n.Inputs[1])
		return func(i, j int32) float64 { return as.vec[i] * bs.vec[j] }
	case "divide":
		num, den := g.sp(n.Inputs[0]), g.sp(n.Inputs[1])
		return func(i, j int32) float64 {
			d := den.score(i, j)
			if d == 0 {
				return 0
			}
			return num.score(i, j) / d
		}
	case "scale":
		xs := g.sp(n.Inputs[0])
		beta := g.sp(n.Inputs[1]).param
		return func(i, j int32) float64 { return beta.Value.Data[0] * xs.score(i, j) }
	case "rep":
		us := g.sp(n.Inputs[0])
		return func(i, _ int32) float64 { return us.vec[i] }
	case "repT":
		vs := g.sp(n.Inputs[0])
		return func(_, j int32) float64 { return vs.vec[j] }
	case "add":
		as, bs := g.sp(n.Inputs[0]), g.sp(n.Inputs[1])
		return func(i, j int32) float64 { return as.score(i, j) + bs.score(i, j) }
	case "lrelu":
		xs := g.sp(n.Inputs[0])
		slope := g.sp(n).slope
		return func(i, j int32) float64 {
			s := xs.score(i, j)
			if s < 0 {
				s *= slope
			}
			return s
		}
	}
	panic(fmt.Sprintf("fuse: no score composition for virtual op %q (node %q)", n.Op, n.ID))
}

// Stats returns the plan's compile-time statistics.
func (p *Plan) Stats() PlanStats { return p.stats }

// Train reports whether the plan carries a backward pass.
func (p *Plan) Train() bool { return p.train }

// InputDims returns the expected input shape.
func (p *Plan) InputDims() (rows, cols int) { return p.input.rows, p.input.cols }

// BindDense binds an auxiliary dense input (declared with InputDenseAux)
// for subsequent Forward calls. The binding persists until rebound.
func (p *Plan) BindDense(id string, h *tensor.Dense) {
	s, ok := p.aux[id]
	if !ok {
		panic(fmt.Sprintf("fuse: plan %q has no auxiliary input %q", p.Name, id))
	}
	if h.Rows != s.rows || h.Cols != s.cols {
		panic(fmt.Sprintf("fuse: plan %q aux %q shape %d×%d, got %d×%d",
			p.Name, id, s.rows, s.cols, h.Rows, h.Cols))
	}
	s.dense = h
}

// Forward binds h as the input feature matrix and executes the op list.
// The returned matrix is owned by the plan and overwritten by the next
// step.
func (p *Plan) Forward(h *tensor.Dense) *tensor.Dense {
	if p.released {
		panic("fuse: Forward on a released plan")
	}
	if h.Rows != p.input.rows || h.Cols != p.input.cols {
		panic(fmt.Sprintf("fuse: plan %q input shape %d×%d, got %d×%d",
			p.Name, p.input.rows, p.input.cols, h.Rows, h.Cols))
	}
	if p.f32 != nil {
		return p.forward32(h)
	}
	p.input.dense = h
	runOps(p.fwd)
	p.ranForward = true
	return p.output.dense
}

// runOps executes an op list, recording each op's wall time into its
// latency histogram, its estimated flop/byte/nnz cost into the process and
// per-op-class roofline totals, and a span event into the flight
// recorder. Only atomic operations touch the instruments — no allocations
// (every handle and flight code is resolved at compile time).
func runOps(list []planOp) {
	for i := range list {
		op := &list[i]
		sp := obs.Start(op.span)
		t0 := time.Now()
		op.run()
		d := time.Since(t0)
		op.lat.Observe(d.Seconds())
		sp.End()
		op.ops.Inc()
		op.flopsC.Add(op.flops)
		op.bytesC.Add(op.bytes)
		metrics.PlanFlopsTotal.Add(op.flops)
		metrics.PlanBytesTotal.Add(op.bytes)
		metrics.PlanNNZTotal.Add(op.nnz)
		op.lane.Record(flight.KindSpan, op.fcode, d.Nanoseconds(), op.bytes, op.flops)
	}
}

// opCost estimates, from compile-time shapes, the floating-point operations
// and sparse non-zeros one execution of an op sweeps — the Section 6 op
// counts, made concrete per compiled op. Backward variants approximately
// double the forward work (two sweeps: operand cotangent + parameter/value
// cotangent).
func opCost(g *Graph, n *Node, op string, nnz int, backward bool) (flops, swept int64) {
	s := g.sp(n)
	r, c := int64(s.rows), int64(s.cols)
	nz := int64(nnz)
	switch op {
	case "mm":
		k := int64(g.sp(n.Inputs[0]).cols)
		flops = 2 * r * k * c
	case "spmm", "spmm-max", "spmm-min", "spmm-mean":
		flops, swept = 2*nz*c, nz
	case "mask":
		flops, swept = 2*nz, nz
	case "softmax":
		flops, swept = 5*nz, nz
	case "fused-softmax":
		flops, swept = 9*nz, nz
	case "fused-attn":
		// Score sampling (+softmax for the GAT/AGNN shape) plus the
		// aggregation, all in one sweep.
		if n.Inputs[0].Op == "softmax" {
			flops = 9*nz + 2*nz*c
		} else {
			flops = 2*nz + 2*nz*c
		}
		swept = nz
	case "matvec", "rownorm":
		k := int64(g.sp(n.Inputs[0]).cols)
		flops = 2 * r * k
	case "sigma":
		flops = r * c
	case "gin-combine":
		flops = 3 * r * c
	default:
		// Virtual-node VJPs (mmt, outer, divide, scale, rep, repT, add,
		// lrelu): one pattern sweep re-evaluating scores entry-wise.
		flops, swept = 4*nz, nz
	}
	if backward {
		flops *= 2
	}
	return flops, swept
}

// Backward executes the reverse-derived VJP op list for the cotangent g of
// the plan's output, accumulates parameter gradients into their Grad
// buffers, and returns the cotangent of the input (owned by the plan).
func (p *Plan) Backward(g *tensor.Dense) *tensor.Dense {
	if !p.train {
		panic(fmt.Sprintf("fuse: plan %q is inference-only", p.Name))
	}
	if !p.ranForward {
		panic(fmt.Sprintf("fuse: plan %q: Backward before Forward", p.Name))
	}
	if g.Rows != p.output.rows || g.Cols != p.output.cols {
		panic(fmt.Sprintf("fuse: plan %q output shape %d×%d, got cotangent %d×%d",
			p.Name, p.output.rows, p.output.cols, g.Rows, g.Cols))
	}
	if p.f32 != nil {
		return p.backward32(g)
	}
	for _, m := range p.zeroDense {
		d := m.Data
		for i := range d {
			d[i] = 0
		}
	}
	for _, v := range p.zeroVecs {
		for i := range v {
			v[i] = 0
		}
	}
	copy(p.output.gdense.Data, g.Data)
	runOps(p.bwd)
	return p.input.gdense
}

// Release returns every buffer the plan holds to its workspace arena. The
// plan is unusable afterwards; recompiling against the same arena (an
// adjacency rebind, say) recycles the storage.
func (p *Plan) Release() {
	if p.released {
		return
	}
	p.released = true
	for _, m := range p.denseBufs {
		p.ws.ReleaseDense(m)
	}
	for _, s := range p.floatBufs {
		p.ws.ReleaseFloats(s)
	}
	p.denseBufs, p.floatBufs = nil, nil
	if f := p.f32; f != nil {
		for _, m := range f.denseBufs {
			p.ws.ReleaseDense32(m)
		}
		for _, s := range f.floatBufs {
			p.ws.ReleaseFloats32(s)
		}
		f.denseBufs, f.floatBufs = nil, nil
	}
}

// String renders a compact plan summary.
func (p *Plan) String() string {
	mode := "infer"
	if p.train {
		mode = "train"
	}
	ops := make([]string, 0, len(p.stats.OpCounts))
	for op := range p.stats.OpCounts {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	s := fmt.Sprintf("plan %q (%s): %d fwd ops, %d bwd ops, %d KiB workspace\n",
		p.Name, mode, p.stats.ForwardOps, p.stats.BackwardOps, p.stats.WorkspaceBytes()/1024)
	for _, op := range ops {
		s += fmt.Sprintf("  %-14s ×%d\n", op, p.stats.OpCounts[op])
	}
	return s
}
