package fuse

import (
	"fmt"

	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// This file adds the executable half of the package: a Graph builder that
// co-constructs the analysis DAG of fuse.go together with the execution
// metadata (shapes, parameters, activation functions, score closures)
// needed to compile it into a runnable Plan. The builder's op vocabulary
// mirrors the prebuilt model DAGs of models.go, so the fusion analysis and
// the runtime always see the same graph.

// ScoreFunc evaluates one entry (i, j) of a virtual score matrix; it is the
// same contract as kernels.ScoreFunc (i and j are global vertex indices).
type ScoreFunc = func(i, j int32) float64

// ParamRef points at a trainable tensor and its gradient accumulator
// without importing the gnn package (which imports fuse). The plan reads
// Value on every step (so optimizer updates are observed) and accumulates
// into Grad during Backward.
type ParamRef struct {
	Name        string
	Value, Grad *tensor.Dense
}

// Act is an element-wise non-linearity with its derivative, both evaluated
// at the pre-activation value (the gnn.Activation contract).
type Act struct {
	Name string
	F    func(float64) float64
	DF   func(float64) float64
}

// spec carries the execution-level state of one DAG node: its shape, its
// buffers (allocated once at compile time from the plan's arena), the
// composed score closure for virtual nodes, and the cotangent buffers used
// by the derived backward pass.
type spec struct {
	node       *Node
	rows, cols int // dense shape; rows doubles as vector length

	param    ParamRef // param leaves
	hasParam bool
	act      Act     // sigma nodes
	slope    float64 // lrelu nodes
	weighted bool    // mask nodes: multiply A's stored values in
	agg      string  // spmm nodes: "" (real), "max", "min", "mean"

	dense *tensor.Dense // dense value (params alias Value; input bound per call)
	vec   []float64     // vector value
	vals  []float64     // sparse value buffer on the pattern
	view  *sparse.CSR   // pattern view over vals
	score ScoreFunc     // virtual evaluator, composed at compile time

	gdense *tensor.Dense // cotangent buffers (training plans only)
	gvec   []float64
	gvals  []float64
	gview  *sparse.CSR
}

// Graph is a buildable, compilable execution DAG over one sparsity pattern.
// All sparse and virtual nodes live on the pattern of the adjacency matrix
// passed to NewGraph (the repo-wide shared-pattern convention).
type Graph struct {
	Name   string
	dag    *DAG
	pat    *sparse.CSR
	rowOff int
	specs  map[*Node]*spec
	adj    *Node
	input  *Node
	aux    []*Node // additional dense inputs (InputDenseAux), bound per call
	output *Node
}

// NewGraph starts a graph over adjacency pattern (and values) pat.
func NewGraph(name string, pat *sparse.CSR) *Graph {
	g := &Graph{Name: name, dag: NewDAG(name), pat: pat, specs: make(map[*Node]*spec)}
	g.adj = g.dag.Input("A", Sparse)
	g.specs[g.adj] = &spec{node: g.adj, rows: pat.Rows, cols: pat.Cols, view: pat}
	return g
}

// DAG exposes the co-constructed analysis DAG (for Analyze / KernelCount).
func (g *Graph) DAG() *DAG { return g.dag }

// Adj returns the adjacency leaf.
func (g *Graph) Adj() *Node { return g.adj }

// SetRowOffset declares that the pattern's rows are a block of a larger
// global matrix starting at global row off — the 1.5D row-distributed
// case. Score closures receive global row indices; dense inputs must then
// be full-height. Row offsets are inference-only.
func (g *Graph) SetRowOffset(off int) { g.rowOff = off }

func (g *Graph) sp(v *Node) *spec {
	s, ok := g.specs[v]
	if !ok {
		panic(fmt.Sprintf("fuse: node %q does not belong to graph %q", v.ID, g.Name))
	}
	return s
}

func (g *Graph) add(id, op string, kind Kind, s *spec, inputs ...*Node) *Node {
	n := g.dag.Add(id, op, kind, inputs...)
	s.node = n
	g.specs[n] = s
	return n
}

// InputDense declares the single dense input tensor (the feature matrix H,
// bound anew on every Plan.Forward call).
func (g *Graph) InputDense(id string, rows, cols int) *Node {
	if g.input != nil {
		panic("fuse: graph already has a dense input")
	}
	n := g.dag.Input(id, Dense)
	g.specs[n] = &spec{node: n, rows: rows, cols: cols}
	g.input = n
	return n
}

// InputDenseAux declares an additional dense input bound per execution via
// Plan.BindDense — the second operand the 2D grid engines need (a block
// plan reads the row-broadcast block on the score rows and the column-
// broadcast block on the columns). Aux inputs are inference-only.
func (g *Graph) InputDenseAux(id string, rows, cols int) *Node {
	n := g.dag.Input(id, Dense)
	g.specs[n] = &spec{node: n, rows: rows, cols: cols}
	g.aux = append(g.aux, n)
	return n
}

// ParamNode declares a trainable parameter leaf.
func (g *Graph) ParamNode(id string, p ParamRef) *Node {
	n := g.dag.Input(id, Param)
	g.specs[n] = &spec{node: n, rows: p.Value.Rows, cols: p.Value.Cols,
		param: p, hasParam: true, dense: p.Value}
	return n
}

func (g *Graph) virtual(id, op string, s *spec, inputs ...*Node) *Node {
	s.rows, s.cols = g.pat.Rows, g.pat.Cols
	return g.add(id, op, Virtual, s, inputs...)
}

// DotScores builds the virtual X·Yᵀ score matrix (op "mmt"): entry (i, j)
// is X[i,:]·Y[j,:].
func (g *Graph) DotScores(id string, x, y *Node) *Node {
	xs, ys := g.sp(x), g.sp(y)
	if xs.cols != ys.cols {
		panic(fmt.Sprintf("fuse: DotScores inner dim mismatch %d vs %d", xs.cols, ys.cols))
	}
	return g.virtual(id, "mmt", &spec{}, x, y)
}

// OuterScores builds the virtual outer product a·bᵀ of two vectors.
func (g *Graph) OuterScores(id string, a, b *Node) *Node {
	g.wantKind(a, Vector, "OuterScores")
	g.wantKind(b, Vector, "OuterScores")
	return g.virtual(id, "outer", &spec{}, a, b)
}

// DivScores builds the virtual element-wise quotient num ⊘ den; entries
// with a zero denominator evaluate to 0 (the zero-norm guard).
func (g *Graph) DivScores(id string, num, den *Node) *Node {
	g.wantKind(num, Virtual, "DivScores")
	g.wantKind(den, Virtual, "DivScores")
	return g.virtual(id, "divide", &spec{}, num, den)
}

// ScaleScores multiplies a virtual matrix by a scalar parameter (AGNN's β).
func (g *Graph) ScaleScores(id string, x, beta *Node) *Node {
	g.wantKind(x, Virtual, "ScaleScores")
	bs := g.sp(beta)
	if !bs.hasParam || bs.rows != 1 || bs.cols != 1 {
		panic("fuse: ScaleScores needs a 1×1 parameter")
	}
	return g.virtual(id, "scale", &spec{}, x, beta)
}

// RepRow broadcasts vector u over columns: the virtual u·1ᵀ (op "rep").
func (g *Graph) RepRow(id string, u *Node) *Node {
	g.wantKind(u, Vector, "RepRow")
	return g.virtual(id, "rep", &spec{}, u)
}

// RepCol broadcasts vector v over rows: the virtual 1·vᵀ (op "repT").
func (g *Graph) RepCol(id string, v *Node) *Node {
	g.wantKind(v, Vector, "RepCol")
	return g.virtual(id, "repT", &spec{}, v)
}

// AddScores builds the virtual element-wise sum of two virtual matrices.
func (g *Graph) AddScores(id string, a, b *Node) *Node {
	g.wantKind(a, Virtual, "AddScores")
	g.wantKind(b, Virtual, "AddScores")
	return g.virtual(id, "add", &spec{}, a, b)
}

// LReLUScores applies LeakyReLU with the given negative slope to a virtual
// matrix (GAT's score non-linearity).
func (g *Graph) LReLUScores(id string, x *Node, slope float64) *Node {
	g.wantKind(x, Virtual, "LReLUScores")
	return g.virtual(id, "lrelu", &spec{slope: slope}, x)
}

// Mask samples a virtual matrix through the adjacency pattern — the
// SDDMM-like sparse node that terminates a fusion group. With weighted,
// each sampled score is multiplied by A's stored value (the true Hadamard
// A ⊙ C); without, only the pattern is used (GAT's convention).
func (g *Graph) Mask(id string, virt *Node, weighted bool) *Node {
	g.wantKind(virt, Virtual, "Mask")
	s := &spec{rows: g.pat.Rows, cols: g.pat.Cols, weighted: weighted}
	return g.add(id, "mask", Sparse, s, g.adj, virt)
}

// Softmax applies the per-row (per-neighborhood) softmax to a sparse node.
func (g *Graph) Softmax(id string, s *Node) *Node {
	g.wantKind(s, Sparse, "Softmax")
	sp := &spec{rows: g.pat.Rows, cols: g.pat.Cols}
	return g.add(id, "softmax", Sparse, sp, s)
}

// RowNormsNode computes the row L2 norms of a dense node.
func (g *Graph) RowNormsNode(id string, x *Node) *Node {
	xs := g.sp(x)
	return g.add(id, "rownorm", Vector, &spec{rows: xs.rows}, x)
}

// MatVecNode computes X·a for a k×1 parameter a (GAT's u = H'·a₁).
func (g *Graph) MatVecNode(id string, x, a *Node) *Node {
	xs, as := g.sp(x), g.sp(a)
	if !as.hasParam || as.rows != xs.cols || as.cols != 1 {
		panic(fmt.Sprintf("fuse: MatVecNode needs a %d×1 parameter", xs.cols))
	}
	return g.add(id, "matvec", Vector, &spec{rows: xs.rows}, x, a)
}

// MM multiplies a dense node by a parameter: X·W.
func (g *Graph) MM(id string, x, w *Node) *Node {
	xs, ws := g.sp(x), g.sp(w)
	if !ws.hasParam {
		panic("fuse: MM weight must be a parameter node")
	}
	if xs.cols != ws.rows {
		panic(fmt.Sprintf("fuse: MM inner dim mismatch %d vs %d", xs.cols, ws.rows))
	}
	return g.add(id, "mm", Dense, &spec{rows: xs.rows, cols: ws.cols}, x, w)
}

// SpMM aggregates a dense node through a sparse node (or the adjacency
// leaf) over the real semiring: Ψ·X.
func (g *Graph) SpMM(id string, s, x *Node) *Node {
	g.wantKind(s, Sparse, "SpMM")
	xs := g.sp(x)
	if xs.rows != g.pat.Cols {
		panic(fmt.Sprintf("fuse: SpMM feature height %d != pattern cols %d", xs.rows, g.pat.Cols))
	}
	return g.add(id, "spmm", Dense, &spec{rows: g.pat.Rows, cols: xs.cols}, s, x)
}

// SpMMSemiring aggregates over a non-real semiring ("max", "min", "mean" —
// Section 4.3). Semiring aggregations are forward-only.
func (g *Graph) SpMMSemiring(id string, s, x *Node, kind string) *Node {
	switch kind {
	case "max", "min", "mean":
	default:
		panic(fmt.Sprintf("fuse: unknown semiring %q", kind))
	}
	g.wantKind(s, Sparse, "SpMMSemiring")
	xs := g.sp(x)
	sp := &spec{rows: g.pat.Rows, cols: xs.cols, agg: kind}
	return g.add(id, "spmm-"+kind, Dense, sp, s, x)
}

// GINCombine builds GIN's pre-MLP combination agg + (1+ε)·h with a scalar
// parameter ε.
func (g *Graph) GINCombine(id string, agg, h, eps *Node) *Node {
	as, hs := g.sp(agg), g.sp(h)
	es := g.sp(eps)
	if as.rows != hs.rows || as.cols != hs.cols {
		panic("fuse: GINCombine shape mismatch")
	}
	if !es.hasParam || es.rows != 1 || es.cols != 1 {
		panic("fuse: GINCombine needs a 1×1 parameter ε")
	}
	return g.add(id, "gin-combine", Dense, &spec{rows: as.rows, cols: as.cols}, agg, h, eps)
}

// Sigma applies an element-wise activation to a dense node.
func (g *Graph) Sigma(id string, z *Node, act Act) *Node {
	zs := g.sp(z)
	return g.add(id, "sigma", Dense, &spec{rows: zs.rows, cols: zs.cols, act: act}, z)
}

// SetOutput marks the graph's output node (must be dense).
func (g *Graph) SetOutput(v *Node) {
	g.wantKind(v, Dense, "SetOutput")
	g.output = v
}

func (g *Graph) wantKind(v *Node, k Kind, op string) {
	if g.sp(v).node.Kind != k {
		panic(fmt.Sprintf("fuse: %s wants a %s node, got %s %q", op, k, v.Kind, v.ID))
	}
}
