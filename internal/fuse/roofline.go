package fuse

// Roofline accounting: each compiled op carries a static estimate of the
// bytes it moves to and from memory, derived from compile-time shapes the
// same way opCost derives flops. flops/bytes is the op's arithmetic
// intensity, which together with the measured op latency places each op
// class on a roofline plot (GF/s vs intensity) — the Section 7 cost-model
// view, made measurable per kernel. The model counts algorithmic traffic
// (every word touched once per pass), not cache-aware traffic: it is an
// upper bound on compulsory misses and a stable denominator for
// regression-gating bytes-moved-per-edge in CI.

// Bytes per element of the two storage types the kernels touch.
const (
	floatBytes = 8 // float64 values, dense and sparse
	indexBytes = 4 // int32 CSR column indices
)

// opBytes estimates, from compile-time shapes, the memory traffic of one
// execution of an op: CSR traffic (values + column indices + one gathered
// feature row per non-zero) for sparse sweeps, operand reads + result
// writes for dense kernels. Backward variants approximately double the
// forward traffic, mirroring opCost.
func opBytes(g *Graph, n *Node, op string, nnz int, backward bool) int64 {
	s := g.sp(n)
	r, c := int64(s.rows), int64(s.cols)
	nz := int64(nnz)
	var b int64
	switch op {
	case "mm":
		k := int64(g.sp(n.Inputs[0]).cols)
		b = floatBytes * (r*k + k*c + r*c)
	case "spmm", "spmm-max", "spmm-min", "spmm-mean":
		// Values + indices in, one gathered X row per non-zero, output out.
		b = (floatBytes+indexBytes)*nz + floatBytes*(nz*c+r*c)
	case "mask":
		// Pattern sweep: indices in, two composed-score operands per entry
		// (the dominant shape), values out.
		b = indexBytes*nz + 3*floatBytes*nz
	case "softmax":
		// Three passes over the row values: max (read), exp+sum
		// (read+write), normalize (read+write).
		b = 5 * floatBytes * nz
	case "fused-softmax":
		// Sampling sweep (indices + two score operands in, values out)
		// plus the in-place softmax passes over the freshly written values.
		b = indexBytes*nz + 7*floatBytes*nz
	case "matvec":
		k := int64(g.sp(n.Inputs[0]).cols)
		b = floatBytes * (r*k + k + r)
	case "rownorm":
		k := int64(g.sp(n.Inputs[0]).cols)
		b = floatBytes * (r*k + r)
	case "sigma":
		b = 2 * floatBytes * r * c
	case "gin-combine":
		b = 3 * floatBytes * r * c
	default:
		// Virtual-node VJP sweeps: one pattern pass re-evaluating scores
		// entry-wise (indices + two operands in, cotangent out).
		b = indexBytes*nz + 3*floatBytes*nz
	}
	if backward {
		b *= 2
	}
	return b
}
