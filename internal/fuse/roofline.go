package fuse

// Roofline accounting: each compiled op carries a static estimate of the
// bytes it moves to and from memory, derived from compile-time shapes the
// same way opCost derives flops. flops/bytes is the op's arithmetic
// intensity, which together with the measured op latency places each op
// class on a roofline plot (GF/s vs intensity) — the Section 7 cost-model
// view, made measurable per kernel. The model counts algorithmic traffic
// (every word touched once per pass), not cache-aware traffic: it is an
// upper bound on compulsory misses and a stable denominator for
// regression-gating bytes-moved-per-edge in CI.

// indexBytes is the width of the int32 CSR column indices, the one storage
// type whose width does not change with the plan dtype.
const indexBytes = 4

// opBytes estimates, from compile-time shapes, the memory traffic of one
// execution of an op: CSR traffic (values + column indices + one gathered
// feature row per non-zero) for sparse sweeps, operand reads + result
// writes for dense kernels. fb is the float element width of the plan's
// dtype (8 for f64, 4 for f32) — the lever that halves every value-traffic
// term on the f32 path. Backward variants approximately double the forward
// traffic, mirroring opCost.
func opBytes(g *Graph, n *Node, op string, nnz int, backward bool, fb int64) int64 {
	s := g.sp(n)
	r, c := int64(s.rows), int64(s.cols)
	nz := int64(nnz)
	var b int64
	switch op {
	case "mm":
		k := int64(g.sp(n.Inputs[0]).cols)
		b = fb * (r*k + k*c + r*c)
	case "spmm", "spmm-max", "spmm-min", "spmm-mean":
		// Values + indices in, one gathered X row per non-zero, output out.
		b = (fb+indexBytes)*nz + fb*(nz*c+r*c)
	case "mask":
		// Pattern sweep: indices in, two composed-score operands per entry
		// (the dominant shape), values out.
		b = indexBytes*nz + 3*fb*nz
	case "softmax":
		// Three passes over the row values: max (read), exp+sum
		// (read+write), normalize (read+write).
		b = 5 * fb * nz
	case "fused-softmax":
		// Sampling sweep (indices + two score operands in, values out)
		// plus the in-place softmax passes over the freshly written values.
		b = indexBytes*nz + 7*fb*nz
	case "fused-attn":
		// One sweep: indices + two score operands in, one gathered X row
		// per non-zero, output rows out. Softmax passes run over the
		// row's scores while they are cache-hot; training plans
		// additionally write the normalized scores to the value buffer
		// (inference never materializes them — the fusion's saving).
		b = indexBytes*nz + 2*fb*nz + fb*(nz*c+r*c)
		if n.Inputs[0].Op == "softmax" {
			b += 2 * fb * nz
		}
		if g.sp(n.Inputs[0]).vals != nil {
			b += fb * nz
		}
	case "matvec":
		k := int64(g.sp(n.Inputs[0]).cols)
		b = fb * (r*k + k + r)
	case "rownorm":
		k := int64(g.sp(n.Inputs[0]).cols)
		b = fb * (r*k + r)
	case "sigma":
		b = 2 * fb * r * c
	case "gin-combine":
		b = 3 * fb * r * c
	default:
		// Virtual-node VJP sweeps: one pattern pass re-evaluating scores
		// entry-wise (indices + two operands in, cotangent out).
		b = indexBytes*nz + 3*fb*nz
	}
	if backward {
		b *= 2
	}
	return b
}
