package fuse_test

import (
	"math/rand"
	"testing"

	"agnn/internal/fuse"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// ringArrival emulates the simulated ring allgather's arrival order for a
// rank owning chunk me of g equal chunks over n rows: own chunk at step 0,
// then me-1, me-2, … (mod g) — the order dist.AllgatherChunks delivers.
func ringArrival(n, g, me int) []fuse.RowRange {
	bounds := make([]int, g+1)
	for i := 0; i <= g; i++ {
		bounds[i] = i * n / g
	}
	avail := make([]fuse.RowRange, g)
	for t := 0; t < g; t++ {
		c := ((me-t)%g + g) % g
		avail[t] = fuse.RowRange{Lo: bounds[c], Hi: bounds[c+1]}
	}
	return avail
}

// buildRankGAT builds the per-rank row-offset GAT plan shape (global-domain
// mm/matvec feeding pattern-domain mask/softmax/spmm/sigma) — the RowEngine
// execution shape the partitioner must reproduce bitwise.
func buildRankGAT(full *sparse.CSR, lo, hi, k int, w, a1, a2 fuse.ParamRef) *fuse.Graph {
	rows := sliceRows(full, lo, hi)
	g := fuse.NewGraph("gat-rank", rows)
	g.SetRowOffset(lo)
	hn := g.InputDense("H", full.Rows, k)
	wn := g.ParamNode("W", w)
	a1n := g.ParamNode("a1", a1)
	a2n := g.ParamNode("a2", a2)
	hp := g.MM("Hp", hn, wn)
	u := g.MatVecNode("u", hp, a1n)
	v := g.MatVecNode("v", hp, a2n)
	c := g.AddScores("C", g.RepRow("u1T", u), g.RepCol("1vT", v))
	e := g.Mask("E", g.LReLUScores("lreluC", c, 0.2), false)
	psi := g.Softmax("Psi", e)
	z := g.SpMM("Z", psi, hp)
	g.SetOutput(g.Sigma("Hout", z, tanhAct))
	return g
}

// TestPartitionBitwiseIdentical checks that stepped execution with
// incrementally revealed input rows produces a bitwise-identical output to
// the sequential Forward, across rank positions and chunk counts. The input
// buffer is only filled range-by-range right before each RunStep, so any
// fragment reading a row before its arrival step shows up as a corrupted
// (zero-fed) output, not a silent pass.
func TestPartitionBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	full := weightedGraph(64, 300, 23)
	const k = 5
	w := randParam(rng, "W", k, k)
	a1 := randParam(rng, "a1", k, 1)
	a2 := randParam(rng, "a2", k, 1)
	h := randDense(rng, full.Rows, k)

	for _, g := range []int{4, 8} {
		for me := 0; me < g; me++ {
			lo, hi := me*full.Rows/g, (me+1)*full.Rows/g
			graph := buildRankGAT(full, lo, hi, k, w, a1, a2)
			plan := graph.MustCompile(fuse.Options{NoAttnFuse: true})

			want := tensor.NewDense(hi-lo, k)
			want.CopyFrom(plan.Forward(h))

			avail := ringArrival(full.Rows, g, me)
			pp, err := plan.Partition(avail)
			if err != nil {
				t.Fatalf("g=%d me=%d: Partition: %v", g, me, err)
			}
			if lf := pp.LocalFraction(); lf < 0 || lf > 1 {
				t.Fatalf("g=%d me=%d: LocalFraction %v out of [0,1]", g, me, lf)
			}

			staged := tensor.NewDense(full.Rows, k)
			pp.Bind(staged)
			for st := 0; st < pp.Steps(); st++ {
				r := avail[st]
				copy(staged.Data[r.Lo*k:r.Hi*k], h.Data[r.Lo*k:r.Hi*k])
				pp.RunStep(st)
			}
			got := pp.Output()
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("g=%d me=%d: partitioned output differs at %d: %v vs %v",
						g, me, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestPartitionAGNNBitwiseIdentical covers the AGNN shape: a global-domain
// rownorm feeding composed virtual scores through softmax.
func TestPartitionAGNNBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	full := weightedGraph(60, 280, 29)
	const k = 4
	w := randParam(rng, "W", k, k)
	beta := randParam(rng, "beta", 1, 1)
	h := randDense(rng, full.Rows, k)

	const g, me = 4, 2
	lo, hi := me*full.Rows/g, (me+1)*full.Rows/g
	rows := sliceRows(full, lo, hi)
	gr := fuse.NewGraph("agnn-rank", rows)
	gr.SetRowOffset(lo)
	hn := gr.InputDense("H", full.Rows, k)
	wn := gr.ParamNode("W", w)
	bn := gr.ParamNode("beta", beta)
	norms := gr.RowNormsNode("n", hn)
	cos := gr.DivScores("C", gr.DotScores("HHt", hn, hn), gr.OuterScores("nnT", norms, norms))
	s := gr.Mask("S", gr.ScaleScores("betaC", cos, bn), true)
	psi := gr.Softmax("Psi", s)
	z := gr.SpMM("Z", psi, gr.MM("HW", hn, wn))
	gr.SetOutput(gr.Sigma("Hout", z, tanhAct))
	plan := gr.MustCompile(fuse.Options{NoAttnFuse: true})

	want := tensor.NewDense(hi-lo, k)
	want.CopyFrom(plan.Forward(h))

	avail := ringArrival(full.Rows, g, me)
	pp, err := plan.Partition(avail)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	staged := tensor.NewDense(full.Rows, k)
	pp.Bind(staged)
	for st := 0; st < pp.Steps(); st++ {
		r := avail[st]
		copy(staged.Data[r.Lo*k:r.Hi*k], h.Data[r.Lo*k:r.Hi*k])
		pp.RunStep(st)
	}
	got := pp.Output()
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("partitioned AGNN output differs at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestPartitionErrors pins the rejection paths: row-indivisible ops and
// malformed arrival coverage.
func TestPartitionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := weightedGraph(32, 120, 43)
	const k = 3
	w := randParam(rng, "W", k, k)

	t.Run("semiring is row-indivisible", func(t *testing.T) {
		g := fuse.NewGraph("sr", a)
		h := g.InputDense("H", a.Rows, k)
		wn := g.ParamNode("W", w)
		psi := g.Mask("Psi", g.DotScores("HHt", h, h), true)
		z := g.SpMMSemiring("Z", psi, g.MM("HW", h, wn), "max")
		g.SetOutput(g.Sigma("Hout", z, tanhAct))
		p := g.MustCompile(fuse.Options{NoAttnFuse: true})
		if _, err := p.Partition([]fuse.RowRange{{Lo: 0, Hi: a.Rows}}); err == nil {
			t.Fatal("expected row-indivisible error for semiring plan")
		}
	})

	t.Run("coverage gaps and overlaps", func(t *testing.T) {
		p := buildVA(a, w, k).MustCompile(fuse.Options{NoAttnFuse: true})
		if _, err := p.Partition([]fuse.RowRange{{Lo: 0, Hi: a.Rows - 1}}); err == nil {
			t.Fatal("expected error for uncovered row")
		}
		if _, err := p.Partition([]fuse.RowRange{{Lo: 0, Hi: 20}, {Lo: 16, Hi: a.Rows}}); err == nil {
			t.Fatal("expected error for overlapping ranges")
		}
		if _, err := p.Partition(nil); err == nil {
			t.Fatal("expected error for empty arrival list")
		}
	})
}
