package fuse

import (
	"math/rand"
	"sync"
	"testing"

	"agnn/internal/obs/metrics"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

func cacheTestCSR(n, m int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	c := sparse.NewCOO(n, n, m)
	for i := 0; i < m; i++ {
		c.Row = append(c.Row, int32(rng.Intn(n)))
		c.Col = append(c.Col, int32(rng.Intn(n)))
		c.Val = append(c.Val, 1)
	}
	return sparse.FromCOO(c)
}

// spmmBuilder compiles the smallest useful plan (one SpMM) against a.
func spmmBuilder(a *sparse.CSR, in int, compiles *int) func(ws *tensor.Arena) *Plan {
	return func(ws *tensor.Arena) *Plan {
		if compiles != nil {
			*compiles++
		}
		g := NewGraph("cachetest", a)
		h := g.InputDense("H", a.Rows, in)
		g.SetOutput(g.SpMM("Z", g.Adj(), h))
		return g.MustCompile(Options{SpanPrefix: "cachetest.", Workspace: ws})
	}
}

func TestPlanCacheHitMiss(t *testing.T) {
	c := NewPlanCache(0) // unlimited
	a := cacheTestCSR(32, 128, 1)
	key := KeyFor(a, 4, tensor.F64, "spmm-test")
	compiles := 0
	build := spmmBuilder(a, 4, &compiles)

	hits0, misses0 := metrics.PlanCacheHits.Value(), metrics.PlanCacheMisses.Value()

	l1 := c.Get(key, build)
	if compiles != 1 {
		t.Fatalf("first Get compiled %d times, want 1", compiles)
	}
	// Same key while l1 is leased: plans are exclusive, so a second plan
	// must be compiled rather than shared.
	l2 := c.Get(key, build)
	if compiles != 2 {
		t.Fatalf("concurrent Get compiled %d times total, want 2", compiles)
	}
	p1, p2 := l1.Plan(), l2.Plan()
	if p1 == p2 {
		t.Fatal("two live leases returned the same plan")
	}
	l1.Release()
	l2.Release()
	if got := c.Len(); got != 2 {
		t.Fatalf("idle plans after release = %d, want 2", got)
	}

	// Now both are idle: the next two Gets must be hits, no compiles.
	l3 := c.Get(key, build)
	l4 := c.Get(key, build)
	if compiles != 2 {
		t.Fatalf("hit path compiled (total %d compiles)", compiles)
	}
	if l3.Plan() != p2 || l4.Plan() != p1 {
		t.Fatal("hits did not return the pooled plans (LIFO order)")
	}
	l3.Release()
	l4.Release()

	if d := metrics.PlanCacheMisses.Value() - misses0; d != 2 {
		t.Fatalf("agnn_plancache_misses delta = %d, want 2", d)
	}
	if d := metrics.PlanCacheHits.Value() - hits0; d != 2 {
		t.Fatalf("agnn_plancache_hits delta = %d, want 2", d)
	}

	// Release is idempotent.
	l3.Release()
	if got := c.Len(); got != 2 {
		t.Fatalf("idle plans after double release = %d, want 2", got)
	}

	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 || c.Leased() != 0 {
		t.Fatalf("purge left len=%d bytes=%d leased=%d", c.Len(), c.Bytes(), c.Leased())
	}
	if live := c.arenaLive(); live != 0 {
		t.Fatalf("arena buffers outstanding after purge: %d", live)
	}
}

func TestPlanCacheDistinctKeys(t *testing.T) {
	c := NewPlanCache(0)
	const K = 6
	compiles := 0
	adjs := make([]*sparse.CSR, K)
	keys := make([]CacheKey, K)
	for i := range adjs {
		adjs[i] = cacheTestCSR(32, 96, int64(100+i))
		keys[i] = KeyFor(adjs[i], 4, tensor.F64, "spmm-test")
	}
	// Two sweeps: the first compiles each key once, the second hits.
	for sweep := 0; sweep < 2; sweep++ {
		for i := range keys {
			l := c.Get(keys[i], spmmBuilder(adjs[i], 4, &compiles))
			l.Release()
		}
	}
	if compiles != K {
		t.Fatalf("compiled %d plans over 2 sweeps of %d keys, want %d", compiles, K, K)
	}
	// Same adjacency content under a different signature is a different plan.
	l := c.Get(KeyFor(adjs[0], 4, tensor.F64, "other-sig"), spmmBuilder(adjs[0], 4, &compiles))
	l.Release()
	if compiles != K+1 {
		t.Fatalf("distinct signature did not compile (total %d)", compiles)
	}
	c.Purge()
	if live := c.arenaLive(); live != 0 {
		t.Fatalf("arena buffers outstanding after purge: %d", live)
	}
}

func TestPlanCacheBudgetEviction(t *testing.T) {
	c := NewPlanCache(1) // 1 byte: nothing fits, everything evicts on release
	a := cacheTestCSR(32, 128, 2)
	key := KeyFor(a, 8, tensor.F64, "spmm-test")
	ev0 := metrics.PlanCacheEvictions.Value()

	l := c.Get(key, spmmBuilder(a, 8, nil))
	if c.Bytes() != 0 {
		t.Fatalf("leased plan counted as resident: %d bytes", c.Bytes())
	}
	l.Release()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("budget not enforced: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if d := metrics.PlanCacheEvictions.Value() - ev0; d != 1 {
		t.Fatalf("agnn_plancache_evictions delta = %d, want 1", d)
	}
	if live := c.arenaLive(); live != 0 {
		t.Fatalf("arena buffers outstanding after eviction: %d", live)
	}

	// Raising the budget makes plans resident again.
	c.SetBudget(0)
	l = c.Get(key, spmmBuilder(a, 8, nil))
	l.Release()
	if c.Len() != 1 || c.Bytes() == 0 {
		t.Fatalf("unlimited budget did not retain plan: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	// Shrinking the budget evicts retroactively.
	c.SetBudget(1)
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("SetBudget did not evict: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

// TestPlanCacheConcurrentHammer drives get/release/evict from many
// goroutines under a deliberately tiny budget so eviction churns
// constantly. Run under -race in CI. The invariant at full drain: every
// workspace buffer went back to its arena exactly once (Live == 0 — a
// double release would drive it negative, a leak positive).
func TestPlanCacheConcurrentHammer(t *testing.T) {
	c := NewPlanCache(64 << 10)
	const (
		K     = 5
		G     = 8
		iters = 200
	)
	adjs := make([]*sparse.CSR, K)
	keys := make([]CacheKey, K)
	for i := range adjs {
		adjs[i] = cacheTestCSR(24, 64, int64(200+i))
		keys[i] = KeyFor(adjs[i], 4, tensor.F64, "hammer")
	}
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			held := make([]Lease, 0, 4)
			for i := 0; i < iters; i++ {
				k := rng.Intn(K)
				l := c.Get(keys[k], spmmBuilder(adjs[k], 4, nil))
				held = append(held, l)
				if len(held) > 3 || rng.Intn(2) == 0 {
					j := rng.Intn(len(held))
					held[j].Release()
					held[j] = held[len(held)-1]
					held = held[:len(held)-1]
				}
			}
			for i := range held {
				held[i].Release()
			}
		}(int64(g))
	}
	wg.Wait()

	if leased := c.Leased(); leased != 0 {
		t.Fatalf("plans still leased after drain: %d", leased)
	}
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("purge left len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if live := c.arenaLive(); live != 0 {
		t.Fatalf("workspace release imbalance after drain: arena live = %d", live)
	}
}

// TestPlanCacheHitAllocs pins the hit path at zero allocations: a warm
// get/release cycle must not allocate (the property that keeps cached
// rebinds off the garbage collector's ledger).
func TestPlanCacheHitAllocs(t *testing.T) {
	c := NewPlanCache(0)
	a := cacheTestCSR(32, 128, 3)
	key := KeyFor(a, 4, tensor.F64, "alloc-test")
	l := c.Get(key, spmmBuilder(a, 4, nil))
	l.Release()
	mustNotCompile := func(ws *tensor.Arena) *Plan {
		panic("cache hit expected; compile reached")
	}
	allocs := testing.AllocsPerRun(100, func() {
		h := c.Get(key, mustNotCompile)
		h.Release()
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates: %.1f allocs/op, want 0", allocs)
	}
}
