package fuse_test

import (
	"math/rand"
	"testing"

	"agnn/internal/fuse"
	"agnn/internal/obs/flight"
	"agnn/internal/obs/metrics"
	"agnn/internal/sparse"
)

func opFamilySum(fam map[string]int64) int64 {
	var s int64
	for _, v := range fam {
		s += v
	}
	return s
}

// TestPlanRooflineAccounting checks that the static traffic model is wired
// end to end: Stats totals, the process byte/flop counters, and the
// per-op-class roofline families all agree after one forward+backward
// step, and the flight recorder holds a span event per executed op.
func TestPlanRooflineAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := weightedGraph(40, 160, 21)
	const k = 4
	w := randParam(rng, "W", k, k)
	beta := randParam(rng, "beta", 1, 1)
	h := randDense(rng, a.Rows, k)
	r := randDense(rng, a.Rows, k)

	p := buildAGNN(a, w, beta, k).MustCompile(fuse.Options{Train: true, SpanPrefix: "roofline."})
	st := p.Stats()
	if st.ForwardBytes <= 0 || st.BackwardBytes <= 0 || st.ForwardFlops <= 0 || st.BackwardFlops <= 0 {
		t.Fatalf("roofline stats empty: %+v", st)
	}
	// Sparse sweeps dominate this graph; bytes must at least cover the CSR
	// value traffic of the spmm (8·nnz·k) to be a credible denominator.
	if st.ForwardBytes < int64(8*a.NNZ()*k) {
		t.Fatalf("ForwardBytes %d implausibly small for nnz=%d k=%d", st.ForwardBytes, a.NNZ(), k)
	}

	before := metrics.Default.Snapshot()
	bytes0 := metrics.PlanBytesTotal.Value()
	flops0 := metrics.PlanFlopsTotal.Value()
	spans0 := flight.Process().Recorded()

	p.Forward(h)
	p.Backward(r)

	after := metrics.Default.Snapshot()
	wantBytes := st.ForwardBytes + st.BackwardBytes
	wantFlops := st.ForwardFlops + st.BackwardFlops
	if got := metrics.PlanBytesTotal.Value() - bytes0; got != wantBytes {
		t.Errorf("PlanBytesTotal delta = %d, want %d", got, wantBytes)
	}
	if got := metrics.PlanFlopsTotal.Value() - flops0; got != wantFlops {
		t.Errorf("PlanFlopsTotal delta = %d, want %d", got, wantFlops)
	}

	diffFam := func(name string) map[string]int64 {
		b, a := before.CounterFamily(name), after.CounterFamily(name)
		out := map[string]int64{}
		for op, v := range a {
			if d := v - b[op]; d != 0 {
				out[op] = d
			}
		}
		return out
	}
	byBytes := diffFam("agnn_op_bytes_total")
	byFlops := diffFam("agnn_op_flops_total")
	if got := opFamilySum(byBytes); got != wantBytes {
		t.Errorf("per-op byte family sums to %d, want %d (%v)", got, wantBytes, byBytes)
	}
	if got := opFamilySum(byFlops); got != wantFlops {
		t.Errorf("per-op flop family sums to %d, want %d (%v)", got, wantFlops, byFlops)
	}
	for _, op := range []string{"spmm", "mm", "fused-attn", "sigma"} {
		if byBytes[op] <= 0 || byFlops[op] <= 0 {
			t.Errorf("op class %q missing from roofline families (bytes=%d flops=%d)", op, byBytes[op], byFlops[op])
		}
	}

	// Every executed op left a span event on the process flight lane
	// carrying its bytes/flops payload.
	wantSpans := uint64(st.ForwardOps + st.BackwardOps)
	if got := flight.Process().Recorded() - spans0; got != wantSpans {
		t.Errorf("flight span events = %d, want %d", got, wantSpans)
	}
	found := false
	for _, ev := range flight.Process().Events() {
		if ev.Kind == "span" && ev.Name == "roofline.Z" && ev.B > 0 && ev.C > 0 {
			found = true
		}
	}
	if !found {
		t.Error("spmm span event with bytes/flops payload not found in flight lane")
	}
}

// TestOpBytesModelShapes pins the relative structure of the traffic model:
// sparse sweeps scale with nnz·k, dense kernels with r·k·c, and backward
// doubles forward.
func TestOpBytesModelShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const k = 4
	small := weightedGraph(30, 90, 22)
	big := weightedGraph(30, 360, 23)

	stFor := func(a *sparse.CSR) fuse.PlanStats {
		g := buildVA(a, randParam(rng, "W", k, k), k)
		return g.MustCompile(fuse.Options{Train: true}).Stats()
	}
	s0, s1 := stFor(small), stFor(big)
	if s1.ForwardBytes <= s0.ForwardBytes {
		t.Errorf("4× denser pattern must move more bytes: %d vs %d", s1.ForwardBytes, s0.ForwardBytes)
	}
	if s0.BackwardBytes < s0.ForwardBytes {
		t.Errorf("backward traffic %d below forward %d; VJP model should dominate", s0.BackwardBytes, s0.ForwardBytes)
	}
}
