package fuse

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"agnn/internal/obs/metrics"
	"agnn/internal/sparse"
	"agnn/internal/tensor"
)

// The process-wide compiled-plan cache. A compiled plan is the expensive
// artifact of the global tensor formulation: building it walks the operator
// DAG, fuses virtual-node chains and reserves every intermediate buffer
// from a workspace arena. The cache makes that cost a per-structure
// one-off: any consumer — a layer rebinding to a mini-batch subgraph, a
// per-rank row engine, a serving endpoint fanning out over ego networks —
// that asks for a plan with the same adjacency content, input width and
// layer signature gets the plan that was already compiled.
//
// Concurrency model: plans are stateful (their intermediate buffers are
// written by Forward), so a cached plan is leased to exactly one caller at
// a time. Get hands out an idle plan or compiles a fresh one; Release
// returns it to the idle pool. Two goroutines requesting the same key
// concurrently each get their own plan — correctness never depends on
// exclusion, only memory does, and memory is bounded by the byte budget:
// idle plans are evicted least-recently-used, their workspaces released
// back to the owning shard's arena. Exclusive leasing also makes workspace
// double-release structurally impossible: only the cache ever calls
// (*Plan).Release, and only on plans it has taken back.

// CacheKey identifies one compiled plan shape. Two keys are equal exactly
// when a plan compiled for one executes bitwise-identically for the other:
// same adjacency content (fingerprint over pattern and values, guarded by
// Rows and NNZ), same input feature width, and same layer signature (layer
// kind, options, parameter identities, train mode, row offset).
type CacheKey struct {
	Adj   uint64       // sparse.CSR.Fingerprint of the adjacency operand
	Rows  int          // adjacency rows (fingerprint collision guard)
	NNZ   int          // adjacency non-zeros (fingerprint collision guard)
	In    int          // input feature width
	DType tensor.DType // element width the plan was compiled for
	Sig   string       // layer signature: kind, options, param identities
}

// KeyFor builds the cache key for one adjacency × input width × dtype ×
// signature combination. It hashes the adjacency (O(nnz)); callers that
// rebind frequently should memoize per adjacency pointer.
func KeyFor(a *sparse.CSR, in int, dt tensor.DType, sig string) CacheKey {
	return CacheKey{Adj: a.Fingerprint(), Rows: a.Rows, NNZ: a.NNZ(), In: in, DType: dt, Sig: sig}
}

const cacheShards = 8

// DefaultBudgetBytes is the default byte budget of the shared cache:
// generous enough that full training runs never evict, small enough that a
// serving process sweeping thousands of distinct ego subgraphs stays
// bounded.
const DefaultBudgetBytes = 256 << 20

// PlanCache is a sharded, size-bounded, concurrency-safe pool of compiled
// plans. The zero value is not usable; use NewPlanCache or the process-wide
// Shared instance.
type PlanCache struct {
	budget atomic.Int64 // total byte budget across shards; <= 0 is unlimited
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[CacheKey]*cacheEntry
	lru     list.List // *cacheEntry; front = most recently used
	arena   *tensor.Arena
	bytes   int64 // workspace bytes of idle (evictable) plans
}

// cacheEntry is the per-key pool: idle plans ready to lease plus the count
// of plans currently checked out. An entry stays registered while any plan
// is out (so releases always find their pool) and is dropped once it is
// both idle-empty and lease-free.
type cacheEntry struct {
	key       CacheKey
	elem      *list.Element
	idle      []*Plan
	out       int
	planBytes int64 // workspace bytes of one plan for this key
}

// NewPlanCache returns an empty cache with the given total byte budget
// (<= 0 means unlimited).
func NewPlanCache(budgetBytes int64) *PlanCache {
	c := &PlanCache{}
	c.budget.Store(budgetBytes)
	for i := range c.shards {
		c.shards[i].entries = make(map[CacheKey]*cacheEntry)
		c.shards[i].arena = tensor.NewArena()
	}
	return c
}

// Shared is the process-wide plan cache every layer, row engine and serving
// endpoint resolves plans through.
var Shared = NewPlanCache(DefaultBudgetBytes)

// SetBudget replaces the total byte budget (<= 0 means unlimited) and
// immediately enforces it.
func (c *PlanCache) SetBudget(bytes int64) {
	c.budget.Store(bytes)
	limit := c.shardLimit()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.enforce(limit)
		s.mu.Unlock()
	}
}

// Budget returns the current total byte budget (<= 0 means unlimited).
func (c *PlanCache) Budget() int64 { return c.budget.Load() }

// shardLimit is the per-shard share of the budget. Keys hash uniformly
// across shards, so enforcing budget/shards per shard enforces the total
// within a shard-imbalance factor.
func (c *PlanCache) shardLimit() int64 {
	b := c.budget.Load()
	if b <= 0 {
		return math.MaxInt64
	}
	return b / cacheShards
}

// shard selects the shard for a key via FNV-1a over all key fields.
func (c *PlanCache) shard(k CacheKey) *cacheShard {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(k.Adj)
	mix(uint64(k.Rows))
	mix(uint64(k.NNZ))
	mix(uint64(k.In))
	mix(uint64(k.DType))
	for i := 0; i < len(k.Sig); i++ {
		h ^= uint64(k.Sig[i])
		h *= prime64
	}
	return &c.shards[h%cacheShards]
}

// Lease is one checked-out plan. The holder has exclusive use of the plan
// until Release, which returns it to the cache's idle pool (or frees it if
// the budget demands). A Lease is a value; store it where it stays
// addressable and call Release exactly once (extra calls are no-ops).
type Lease struct {
	c    *PlanCache
	s    *cacheShard
	e    *cacheEntry
	plan *Plan
	done bool
}

// Plan returns the leased plan (nil for the zero Lease).
func (l *Lease) Plan() *Plan { return l.plan }

// Get leases a plan for key: an idle cached plan when one exists (a hit),
// otherwise build is invoked with the shard's workspace arena to compile a
// fresh one (a miss). The hit path performs no allocations. Build runs
// under the shard lock — compiles for keys on the same shard serialize,
// which is what keeps the shard arena single-threaded.
func (c *PlanCache) Get(key CacheKey, build func(ws *tensor.Arena) *Plan) Lease {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e != nil && len(e.idle) > 0 {
		p := e.idle[len(e.idle)-1]
		e.idle[len(e.idle)-1] = nil
		e.idle = e.idle[:len(e.idle)-1]
		e.out++
		s.bytes -= e.planBytes
		metrics.PlanCacheBytes.Add(-float64(e.planBytes))
		s.lru.MoveToFront(e.elem)
		metrics.PlanCacheHits.Inc()
		return Lease{c: c, s: s, e: e, plan: p}
	}
	metrics.PlanCacheMisses.Inc()
	p := build(s.arena)
	if e == nil {
		e = &cacheEntry{key: key, planBytes: p.Stats().WorkspaceBytes()}
		e.elem = s.lru.PushFront(e)
		s.entries[key] = e
	} else {
		s.lru.MoveToFront(e.elem)
	}
	e.out++
	return Lease{c: c, s: s, e: e, plan: p}
}

// Release returns the leased plan to the cache's idle pool and enforces
// the byte budget (possibly evicting this very plan when the budget is
// tight). Safe to call on the zero Lease and idempotent.
func (l *Lease) Release() {
	if l.plan == nil || l.done {
		return
	}
	l.done = true
	s := l.s
	s.mu.Lock()
	defer s.mu.Unlock()
	e := l.e
	e.out--
	e.idle = append(e.idle, l.plan)
	s.bytes += e.planBytes
	metrics.PlanCacheBytes.Add(float64(e.planBytes))
	s.lru.MoveToFront(e.elem)
	s.enforce(l.c.shardLimit())
	l.plan = nil
}

// enforce evicts idle plans least-recently-used-first until the shard's
// idle bytes fit under limit. Checked-out plans are the lease holders'
// business, not the cache's; an entry with live leases keeps its map slot
// (so releases find their pool) but contributes no evictable bytes.
// Callers hold s.mu.
func (s *cacheShard) enforce(limit int64) {
	for el := s.lru.Back(); el != nil && s.bytes > limit; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		for len(e.idle) > 0 && s.bytes > limit {
			p := e.idle[len(e.idle)-1]
			e.idle[len(e.idle)-1] = nil
			e.idle = e.idle[:len(e.idle)-1]
			p.Release()
			s.bytes -= e.planBytes
			metrics.PlanCacheBytes.Add(-float64(e.planBytes))
			metrics.PlanCacheEvictions.Inc()
		}
		if len(e.idle) == 0 && e.out == 0 {
			delete(s.entries, e.key)
			s.lru.Remove(el)
			e.elem = nil
		}
		el = prev
	}
}

// Purge evicts every idle plan regardless of budget, releasing their
// workspaces back to the shard arenas. Plans currently leased are
// untouched; their entries are dropped once released under a tight enough
// budget or a later Purge.
func (c *PlanCache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.enforce(0)
		s.mu.Unlock()
	}
}

// Bytes returns the workspace bytes of idle plans currently resident (the
// evictable set — the quantity bounded by the budget and exported as
// agnn_plancache_bytes).
func (c *PlanCache) Bytes() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.bytes
		s.mu.Unlock()
	}
	return total
}

// Len returns the number of idle plans resident across all shards.
func (c *PlanCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.entries {
			n += len(e.idle)
		}
		s.mu.Unlock()
	}
	return n
}

// Leased returns the number of plans currently checked out across all
// shards (diagnostic; used by tests to assert full drain).
func (c *PlanCache) Leased() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.entries {
			n += e.out
		}
		s.mu.Unlock()
	}
	return n
}

// arenaLive returns the number of workspace buffers checked out of the
// shard arenas. After every lease is released and the cache purged, this
// must be zero: any other value means a workspace was double-released or
// leaked.
func (c *PlanCache) arenaLive() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.arena.Live()
		s.mu.Unlock()
	}
	return n
}
