// Package fuse implements the execution-DAG analysis of Section 6.2 and
// Figure 5: given a model's tensor-operation DAG annotated with tensor
// kinds (dense, sparse, virtual, vector, scalar), it finds the fusion
// groups the paper's rule produces — "traverse the DAG until an edge whose
// output is a virtual matrix; continue until an edge whose output is a
// sparse intermediate that samples the virtual results on the path; fuse
// all operations on this path into an SDDMM-like kernel".
//
// The hand-fused kernels of internal/kernels are exactly the groups this
// analysis derives from the forward DAGs of VA, AGNN and GAT; the tests
// assert that correspondence, making the fusion choices auditable rather
// than folklore.
package fuse

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a DAG node's output tensor, matching the color code of
// Table 1.
type Kind int

// Tensor kinds. Virtual marks n×n dense intermediates that must never be
// materialized (the gray matrices of Table 1).
const (
	Dense Kind = iota
	Sparse
	Virtual
	Vector
	Scalar
	Param
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Dense:
		return "dense"
	case Sparse:
		return "sparse"
	case Virtual:
		return "virtual"
	case Vector:
		return "vector"
	case Scalar:
		return "scalar"
	case Param:
		return "param"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is one tensor operation (or input tensor) in the execution DAG.
type Node struct {
	ID     string
	Op     string // "input" for leaves
	Kind   Kind
	Inputs []*Node
}

// DAG is a model's execution graph.
type DAG struct {
	Name  string
	nodes []*Node
	byID  map[string]*Node
}

// NewDAG creates an empty DAG.
func NewDAG(name string) *DAG {
	return &DAG{Name: name, byID: make(map[string]*Node)}
}

// Input declares a leaf tensor.
func (d *DAG) Input(id string, kind Kind) *Node {
	return d.Add(id, "input", kind)
}

// Add appends an operation node. IDs must be unique.
func (d *DAG) Add(id, op string, kind Kind, inputs ...*Node) *Node {
	if _, dup := d.byID[id]; dup {
		panic(fmt.Sprintf("fuse: duplicate node id %q", id))
	}
	n := &Node{ID: id, Op: op, Kind: kind, Inputs: inputs}
	d.nodes = append(d.nodes, n)
	d.byID[id] = n
	return n
}

// Node looks up a node by id.
func (d *DAG) Node(id string) *Node { return d.byID[id] }

// Nodes returns all nodes in insertion order.
func (d *DAG) Nodes() []*Node { return d.nodes }

// consumers builds the reverse adjacency.
func (d *DAG) consumers() map[*Node][]*Node {
	out := make(map[*Node][]*Node)
	for _, n := range d.nodes {
		for _, in := range n.Inputs {
			out[in] = append(out[in], n)
		}
	}
	return out
}

// Group is one fusion group: the virtual operations on the path plus the
// sparse Sampler node that materializes the result — together they compile
// to a single SDDMM-like kernel iterating over the sampler's non-zeros.
type Group struct {
	Virtual []*Node // virtual intermediates, topological order
	Sampler *Node   // sparse node that samples them
}

// String renders the group as "virt1+virt2 -> sampler".
func (g Group) String() string {
	ids := make([]string, len(g.Virtual))
	for i, n := range g.Virtual {
		ids[i] = n.ID
	}
	return strings.Join(ids, "+") + " -> " + g.Sampler.ID
}

// Analyze applies the Section 6.2 rule: every maximal connected set of
// virtual nodes, together with the sparse node that consumes it, forms one
// fusion group. It returns the groups sorted by sampler id, and panics if a
// virtual node escapes into a dense or vector consumer without passing
// through a sparse sampler — that would force materializing an n×n matrix,
// which the design forbids.
func Analyze(d *DAG) []Group {
	cons := d.consumers()
	assigned := make(map[*Node]*Node) // virtual node -> sampler
	var groups []Group

	// Walk from each sparse node backwards over contiguous virtual inputs.
	for _, n := range d.nodes {
		if n.Kind != Sparse {
			continue
		}
		var virt []*Node
		seen := make(map[*Node]bool)
		var collect func(m *Node)
		collect = func(m *Node) {
			for _, in := range m.Inputs {
				if in.Kind == Virtual && !seen[in] {
					seen[in] = true
					collect(in)
					virt = append(virt, in)
				}
			}
		}
		collect(n)
		if len(virt) == 0 {
			continue
		}
		for _, v := range virt {
			assigned[v] = n
		}
		groups = append(groups, Group{Virtual: virt, Sampler: n})
	}

	// Safety: every virtual node must be consumed exclusively through its
	// group's sampler chain (virtual→virtual or virtual→sparse edges only).
	for _, n := range d.nodes {
		if n.Kind != Virtual {
			continue
		}
		for _, c := range cons[n] {
			if c.Kind != Virtual && c.Kind != Sparse {
				panic(fmt.Sprintf("fuse: virtual node %q consumed by %s node %q — would require materialization",
					n.ID, c.Kind, c.ID))
			}
		}
		if assigned[n] == nil {
			panic(fmt.Sprintf("fuse: virtual node %q is never sampled by a sparse operation", n.ID))
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Sampler.ID < groups[j].Sampler.ID })
	return groups
}

// KernelCount returns how many kernel launches the DAG costs after fusion:
// every non-input node runs one kernel, except virtual nodes, which are
// folded into their group's sampler.
func KernelCount(d *DAG) int {
	groups := Analyze(d)
	fused := 0
	for _, g := range groups {
		fused += len(g.Virtual)
	}
	n := 0
	for _, node := range d.nodes {
		if node.Op != "input" {
			n++
		}
	}
	return n - fused
}
