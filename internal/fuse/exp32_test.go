package fuse

import (
	"math"
	"testing"
)

// TestExp32Accuracy sweeps the argument range the f32 softmax kernels
// actually use — max-subtracted scores, so (-inf, 0] — and checks the
// minimax polynomial against the correctly-rounded float32 exponential.
// The Cephes scheme is good to ~2 ulp; 1e-6 relative is ~8 ulp of slack.
func TestExp32Accuracy(t *testing.T) {
	maxRel := 0.0
	for x := -87.3; x <= 0; x += 0.0037 {
		got := float64(exp32(float32(x)))
		want := math.Exp(float64(float32(x)))
		rel := math.Abs(got-want) / want
		if rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 1e-6 {
		t.Fatalf("exp32 max relative error %.3g on [-87.3, 0], want <= 1e-6", maxRel)
	}
	// A few positive arguments too: the attention kernels never pass them,
	// but the function must stay correct for any composed score.
	for _, x := range []float32{0.5, 1, 3.25, 10, 42, 80} {
		got := float64(exp32(x))
		want := math.Exp(float64(x))
		if rel := math.Abs(got-want) / want; rel > 1e-6 {
			t.Errorf("exp32(%v) = %g, want %g (rel %.3g)", x, got, want, rel)
		}
	}
}

func TestExp32Boundaries(t *testing.T) {
	if got := exp32(0); got != 1 {
		t.Errorf("exp32(0) = %v, want 1", got)
	}
	// Below float32's denormal floor the result flushes to zero instead of
	// producing garbage from the exponent bit arithmetic.
	if got := exp32(-88); got != 0 {
		t.Errorf("exp32(-88) = %v, want 0", got)
	}
	if got := exp32(-200); got != 0 {
		t.Errorf("exp32(-200) = %v, want 0", got)
	}
	// Above float32's max exponent it saturates to +Inf like expf.
	if got := exp32(89); !math.IsInf(float64(got), 1) {
		t.Errorf("exp32(89) = %v, want +Inf", got)
	}
}
